# Empty dependencies file for bench_table1_operators.
# This may be replaced when dependencies are built.
