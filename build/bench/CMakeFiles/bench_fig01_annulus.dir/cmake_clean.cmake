file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_annulus.dir/bench_fig01_annulus.cpp.o"
  "CMakeFiles/bench_fig01_annulus.dir/bench_fig01_annulus.cpp.o.d"
  "bench_fig01_annulus"
  "bench_fig01_annulus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_annulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
