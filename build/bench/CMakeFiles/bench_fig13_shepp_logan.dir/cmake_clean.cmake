file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_shepp_logan.dir/bench_fig13_shepp_logan.cpp.o"
  "CMakeFiles/bench_fig13_shepp_logan.dir/bench_fig13_shepp_logan.cpp.o.d"
  "bench_fig13_shepp_logan"
  "bench_fig13_shepp_logan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_shepp_logan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
