# Empty dependencies file for bench_fig13_shepp_logan.
# This may be replaced when dependencies are built.
