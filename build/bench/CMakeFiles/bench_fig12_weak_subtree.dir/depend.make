# Empty dependencies file for bench_fig12_weak_subtree.
# This may be replaced when dependencies are built.
