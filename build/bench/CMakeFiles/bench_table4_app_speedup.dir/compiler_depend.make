# Empty compiler generated dependencies file for bench_table4_app_speedup.
# This may be replaced when dependencies are built.
