# Empty dependencies file for bench_block_apply.
# This may be replaced when dependencies are built.
