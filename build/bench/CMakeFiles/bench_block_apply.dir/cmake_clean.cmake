file(REMOVE_RECURSE
  "CMakeFiles/bench_block_apply.dir/bench_block_apply.cpp.o"
  "CMakeFiles/bench_block_apply.dir/bench_block_apply.cpp.o.d"
  "bench_block_apply"
  "bench_block_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
