# Empty dependencies file for bench_fig09_strong_illum.
# This may be replaced when dependencies are built.
