file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_weak_illum.dir/bench_fig11_weak_illum.cpp.o"
  "CMakeFiles/bench_fig11_weak_illum.dir/bench_fig11_weak_illum.cpp.o.d"
  "bench_fig11_weak_illum"
  "bench_fig11_weak_illum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_weak_illum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
