# Empty dependencies file for bench_fig02_limited_angle.
# This may be replaced when dependencies are built.
