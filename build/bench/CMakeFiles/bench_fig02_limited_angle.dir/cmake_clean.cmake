file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_limited_angle.dir/bench_fig02_limited_angle.cpp.o"
  "CMakeFiles/bench_fig02_limited_angle.dir/bench_fig02_limited_angle.cpp.o.d"
  "bench_fig02_limited_angle"
  "bench_fig02_limited_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_limited_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
