# Empty compiler generated dependencies file for bench_fig10_strong_subtree.
# This may be replaced when dependencies are built.
