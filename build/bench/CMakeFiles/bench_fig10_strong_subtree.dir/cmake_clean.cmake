file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_strong_subtree.dir/bench_fig10_strong_subtree.cpp.o"
  "CMakeFiles/bench_fig10_strong_subtree.dir/bench_fig10_strong_subtree.cpp.o.d"
  "bench_fig10_strong_subtree"
  "bench_fig10_strong_subtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_strong_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
