# Empty dependencies file for gauss_newton_test.
# This may be replaced when dependencies are built.
