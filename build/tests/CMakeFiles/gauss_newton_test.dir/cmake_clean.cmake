file(REMOVE_RECURSE
  "CMakeFiles/gauss_newton_test.dir/gauss_newton_test.cpp.o"
  "CMakeFiles/gauss_newton_test.dir/gauss_newton_test.cpp.o.d"
  "gauss_newton_test"
  "gauss_newton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_newton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
