# Empty dependencies file for bessel_test.
# This may be replaced when dependencies are built.
