file(REMOVE_RECURSE
  "CMakeFiles/bessel_test.dir/bessel_test.cpp.o"
  "CMakeFiles/bessel_test.dir/bessel_test.cpp.o.d"
  "bessel_test"
  "bessel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bessel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
