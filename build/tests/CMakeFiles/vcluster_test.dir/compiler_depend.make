# Empty compiler generated dependencies file for vcluster_test.
# This may be replaced when dependencies are built.
