file(REMOVE_RECURSE
  "CMakeFiles/vcluster_test.dir/vcluster_test.cpp.o"
  "CMakeFiles/vcluster_test.dir/vcluster_test.cpp.o.d"
  "vcluster_test"
  "vcluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
