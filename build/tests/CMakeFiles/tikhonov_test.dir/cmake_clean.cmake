file(REMOVE_RECURSE
  "CMakeFiles/tikhonov_test.dir/tikhonov_test.cpp.o"
  "CMakeFiles/tikhonov_test.dir/tikhonov_test.cpp.o.d"
  "tikhonov_test"
  "tikhonov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tikhonov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
