# Empty compiler generated dependencies file for tikhonov_test.
# This may be replaced when dependencies are built.
