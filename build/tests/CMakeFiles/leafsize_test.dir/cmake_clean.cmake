file(REMOVE_RECURSE
  "CMakeFiles/leafsize_test.dir/leafsize_test.cpp.o"
  "CMakeFiles/leafsize_test.dir/leafsize_test.cpp.o.d"
  "leafsize_test"
  "leafsize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leafsize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
