# Empty compiler generated dependencies file for leafsize_test.
# This may be replaced when dependencies are built.
