file(REMOVE_RECURSE
  "CMakeFiles/parallel_dbim_test.dir/parallel_dbim_test.cpp.o"
  "CMakeFiles/parallel_dbim_test.dir/parallel_dbim_test.cpp.o.d"
  "parallel_dbim_test"
  "parallel_dbim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_dbim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
