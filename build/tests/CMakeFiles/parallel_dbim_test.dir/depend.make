# Empty dependencies file for parallel_dbim_test.
# This may be replaced when dependencies are built.
