# Empty compiler generated dependencies file for forward_mie_test.
# This may be replaced when dependencies are built.
