file(REMOVE_RECURSE
  "CMakeFiles/forward_mie_test.dir/forward_mie_test.cpp.o"
  "CMakeFiles/forward_mie_test.dir/forward_mie_test.cpp.o.d"
  "forward_mie_test"
  "forward_mie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_mie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
