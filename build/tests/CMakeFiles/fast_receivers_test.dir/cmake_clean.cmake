file(REMOVE_RECURSE
  "CMakeFiles/fast_receivers_test.dir/fast_receivers_test.cpp.o"
  "CMakeFiles/fast_receivers_test.dir/fast_receivers_test.cpp.o.d"
  "fast_receivers_test"
  "fast_receivers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_receivers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
