# Empty dependencies file for fast_receivers_test.
# This may be replaced when dependencies are built.
