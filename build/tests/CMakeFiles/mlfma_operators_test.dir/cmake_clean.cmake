file(REMOVE_RECURSE
  "CMakeFiles/mlfma_operators_test.dir/mlfma_operators_test.cpp.o"
  "CMakeFiles/mlfma_operators_test.dir/mlfma_operators_test.cpp.o.d"
  "mlfma_operators_test"
  "mlfma_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlfma_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
