# Empty dependencies file for mlfma_operators_test.
# This may be replaced when dependencies are built.
