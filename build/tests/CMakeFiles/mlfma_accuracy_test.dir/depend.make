# Empty dependencies file for mlfma_accuracy_test.
# This may be replaced when dependencies are built.
