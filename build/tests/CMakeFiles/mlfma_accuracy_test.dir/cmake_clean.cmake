file(REMOVE_RECURSE
  "CMakeFiles/mlfma_accuracy_test.dir/mlfma_accuracy_test.cpp.o"
  "CMakeFiles/mlfma_accuracy_test.dir/mlfma_accuracy_test.cpp.o.d"
  "mlfma_accuracy_test"
  "mlfma_accuracy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlfma_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
