# Empty dependencies file for block_apply_test.
# This may be replaced when dependencies are built.
