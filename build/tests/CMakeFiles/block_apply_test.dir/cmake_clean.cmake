file(REMOVE_RECURSE
  "CMakeFiles/block_apply_test.dir/block_apply_test.cpp.o"
  "CMakeFiles/block_apply_test.dir/block_apply_test.cpp.o.d"
  "block_apply_test"
  "block_apply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_apply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
