# Empty compiler generated dependencies file for mlfma_engine_test.
# This may be replaced when dependencies are built.
