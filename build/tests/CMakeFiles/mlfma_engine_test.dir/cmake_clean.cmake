file(REMOVE_RECURSE
  "CMakeFiles/mlfma_engine_test.dir/mlfma_engine_test.cpp.o"
  "CMakeFiles/mlfma_engine_test.dir/mlfma_engine_test.cpp.o.d"
  "mlfma_engine_test"
  "mlfma_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlfma_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
