# Empty dependencies file for block_bicgstab_test.
# This may be replaced when dependencies are built.
