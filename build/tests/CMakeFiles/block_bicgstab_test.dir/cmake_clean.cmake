file(REMOVE_RECURSE
  "CMakeFiles/block_bicgstab_test.dir/block_bicgstab_test.cpp.o"
  "CMakeFiles/block_bicgstab_test.dir/block_bicgstab_test.cpp.o.d"
  "block_bicgstab_test"
  "block_bicgstab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_bicgstab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
