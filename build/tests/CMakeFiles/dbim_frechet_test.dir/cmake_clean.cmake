file(REMOVE_RECURSE
  "CMakeFiles/dbim_frechet_test.dir/dbim_frechet_test.cpp.o"
  "CMakeFiles/dbim_frechet_test.dir/dbim_frechet_test.cpp.o.d"
  "dbim_frechet_test"
  "dbim_frechet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbim_frechet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
