# Empty compiler generated dependencies file for dbim_frechet_test.
# This may be replaced when dependencies are built.
