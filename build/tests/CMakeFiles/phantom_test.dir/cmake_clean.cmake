file(REMOVE_RECURSE
  "CMakeFiles/phantom_test.dir/phantom_test.cpp.o"
  "CMakeFiles/phantom_test.dir/phantom_test.cpp.o.d"
  "phantom_test"
  "phantom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
