# Empty dependencies file for transceivers_test.
# This may be replaced when dependencies are built.
