file(REMOVE_RECURSE
  "CMakeFiles/transceivers_test.dir/transceivers_test.cpp.o"
  "CMakeFiles/transceivers_test.dir/transceivers_test.cpp.o.d"
  "transceivers_test"
  "transceivers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transceivers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
