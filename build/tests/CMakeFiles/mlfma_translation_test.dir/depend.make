# Empty dependencies file for mlfma_translation_test.
# This may be replaced when dependencies are built.
