file(REMOVE_RECURSE
  "CMakeFiles/mlfma_translation_test.dir/mlfma_translation_test.cpp.o"
  "CMakeFiles/mlfma_translation_test.dir/mlfma_translation_test.cpp.o.d"
  "mlfma_translation_test"
  "mlfma_translation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlfma_translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
