file(REMOVE_RECURSE
  "CMakeFiles/vcluster_stress_test.dir/vcluster_stress_test.cpp.o"
  "CMakeFiles/vcluster_stress_test.dir/vcluster_stress_test.cpp.o.d"
  "vcluster_stress_test"
  "vcluster_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcluster_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
