# Empty dependencies file for vcluster_stress_test.
# This may be replaced when dependencies are built.
