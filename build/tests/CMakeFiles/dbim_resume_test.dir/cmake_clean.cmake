file(REMOVE_RECURSE
  "CMakeFiles/dbim_resume_test.dir/dbim_resume_test.cpp.o"
  "CMakeFiles/dbim_resume_test.dir/dbim_resume_test.cpp.o.d"
  "dbim_resume_test"
  "dbim_resume_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbim_resume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
