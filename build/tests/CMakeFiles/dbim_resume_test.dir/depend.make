# Empty dependencies file for dbim_resume_test.
# This may be replaced when dependencies are built.
