file(REMOVE_RECURSE
  "CMakeFiles/dbim_test.dir/dbim_test.cpp.o"
  "CMakeFiles/dbim_test.dir/dbim_test.cpp.o.d"
  "dbim_test"
  "dbim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
