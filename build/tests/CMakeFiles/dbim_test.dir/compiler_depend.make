# Empty compiler generated dependencies file for dbim_test.
# This may be replaced when dependencies are built.
