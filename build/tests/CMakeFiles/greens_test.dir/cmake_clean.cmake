file(REMOVE_RECURSE
  "CMakeFiles/greens_test.dir/greens_test.cpp.o"
  "CMakeFiles/greens_test.dir/greens_test.cpp.o.d"
  "greens_test"
  "greens_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
