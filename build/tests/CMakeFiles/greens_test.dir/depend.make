# Empty dependencies file for greens_test.
# This may be replaced when dependencies are built.
