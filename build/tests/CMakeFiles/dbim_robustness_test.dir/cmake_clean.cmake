file(REMOVE_RECURSE
  "CMakeFiles/dbim_robustness_test.dir/dbim_robustness_test.cpp.o"
  "CMakeFiles/dbim_robustness_test.dir/dbim_robustness_test.cpp.o.d"
  "dbim_robustness_test"
  "dbim_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbim_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
