# Empty dependencies file for dbim_robustness_test.
# This may be replaced when dependencies are built.
