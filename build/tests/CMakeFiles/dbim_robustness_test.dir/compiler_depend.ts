# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dbim_robustness_test.
