
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/morton.cpp" "src/CMakeFiles/ffwtomo.dir/common/morton.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/common/morton.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/ffwtomo.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/ffwtomo.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/common/table.cpp.o.d"
  "/root/repo/src/dbim/born.cpp" "src/CMakeFiles/ffwtomo.dir/dbim/born.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/dbim/born.cpp.o.d"
  "/root/repo/src/dbim/dbim.cpp" "src/CMakeFiles/ffwtomo.dir/dbim/dbim.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/dbim/dbim.cpp.o.d"
  "/root/repo/src/dbim/frechet.cpp" "src/CMakeFiles/ffwtomo.dir/dbim/frechet.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/dbim/frechet.cpp.o.d"
  "/root/repo/src/dbim/gauss_newton.cpp" "src/CMakeFiles/ffwtomo.dir/dbim/gauss_newton.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/dbim/gauss_newton.cpp.o.d"
  "/root/repo/src/dbim/multifrequency.cpp" "src/CMakeFiles/ffwtomo.dir/dbim/multifrequency.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/dbim/multifrequency.cpp.o.d"
  "/root/repo/src/dbim/parallel_driver.cpp" "src/CMakeFiles/ffwtomo.dir/dbim/parallel_driver.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/dbim/parallel_driver.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/CMakeFiles/ffwtomo.dir/fft/fft.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/fft/fft.cpp.o.d"
  "/root/repo/src/forward/bicgstab.cpp" "src/CMakeFiles/ffwtomo.dir/forward/bicgstab.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/forward/bicgstab.cpp.o.d"
  "/root/repo/src/forward/block_bicgstab.cpp" "src/CMakeFiles/ffwtomo.dir/forward/block_bicgstab.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/forward/block_bicgstab.cpp.o.d"
  "/root/repo/src/forward/dense_ref.cpp" "src/CMakeFiles/ffwtomo.dir/forward/dense_ref.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/forward/dense_ref.cpp.o.d"
  "/root/repo/src/forward/forward.cpp" "src/CMakeFiles/ffwtomo.dir/forward/forward.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/forward/forward.cpp.o.d"
  "/root/repo/src/greens/fast_receivers.cpp" "src/CMakeFiles/ffwtomo.dir/greens/fast_receivers.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/greens/fast_receivers.cpp.o.d"
  "/root/repo/src/greens/greens.cpp" "src/CMakeFiles/ffwtomo.dir/greens/greens.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/greens/greens.cpp.o.d"
  "/root/repo/src/greens/nearfield.cpp" "src/CMakeFiles/ffwtomo.dir/greens/nearfield.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/greens/nearfield.cpp.o.d"
  "/root/repo/src/greens/transceivers.cpp" "src/CMakeFiles/ffwtomo.dir/greens/transceivers.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/greens/transceivers.cpp.o.d"
  "/root/repo/src/grid/grid.cpp" "src/CMakeFiles/ffwtomo.dir/grid/grid.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/grid/grid.cpp.o.d"
  "/root/repo/src/grid/quadtree.cpp" "src/CMakeFiles/ffwtomo.dir/grid/quadtree.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/grid/quadtree.cpp.o.d"
  "/root/repo/src/io/checkpoint.cpp" "src/CMakeFiles/ffwtomo.dir/io/checkpoint.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/io/checkpoint.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/ffwtomo.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/image.cpp" "src/CMakeFiles/ffwtomo.dir/io/image.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/io/image.cpp.o.d"
  "/root/repo/src/linalg/banded.cpp" "src/CMakeFiles/ffwtomo.dir/linalg/banded.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/linalg/banded.cpp.o.d"
  "/root/repo/src/linalg/block.cpp" "src/CMakeFiles/ffwtomo.dir/linalg/block.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/linalg/block.cpp.o.d"
  "/root/repo/src/linalg/cmatrix.cpp" "src/CMakeFiles/ffwtomo.dir/linalg/cmatrix.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/linalg/cmatrix.cpp.o.d"
  "/root/repo/src/linalg/gemm.cpp" "src/CMakeFiles/ffwtomo.dir/linalg/gemm.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/linalg/gemm.cpp.o.d"
  "/root/repo/src/linalg/kernels.cpp" "src/CMakeFiles/ffwtomo.dir/linalg/kernels.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/linalg/kernels.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/ffwtomo.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/mlfma/engine.cpp" "src/CMakeFiles/ffwtomo.dir/mlfma/engine.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/mlfma/engine.cpp.o.d"
  "/root/repo/src/mlfma/operators.cpp" "src/CMakeFiles/ffwtomo.dir/mlfma/operators.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/mlfma/operators.cpp.o.d"
  "/root/repo/src/mlfma/partitioned.cpp" "src/CMakeFiles/ffwtomo.dir/mlfma/partitioned.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/mlfma/partitioned.cpp.o.d"
  "/root/repo/src/mlfma/plan.cpp" "src/CMakeFiles/ffwtomo.dir/mlfma/plan.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/mlfma/plan.cpp.o.d"
  "/root/repo/src/parallel/parallel_for.cpp" "src/CMakeFiles/ffwtomo.dir/parallel/parallel_for.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/parallel/parallel_for.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/ffwtomo.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/perfmodel/census.cpp" "src/CMakeFiles/ffwtomo.dir/perfmodel/census.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/perfmodel/census.cpp.o.d"
  "/root/repo/src/perfmodel/predictor.cpp" "src/CMakeFiles/ffwtomo.dir/perfmodel/predictor.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/perfmodel/predictor.cpp.o.d"
  "/root/repo/src/phantom/phantom.cpp" "src/CMakeFiles/ffwtomo.dir/phantom/phantom.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/phantom/phantom.cpp.o.d"
  "/root/repo/src/phantom/resample.cpp" "src/CMakeFiles/ffwtomo.dir/phantom/resample.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/phantom/resample.cpp.o.d"
  "/root/repo/src/phantom/setup.cpp" "src/CMakeFiles/ffwtomo.dir/phantom/setup.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/phantom/setup.cpp.o.d"
  "/root/repo/src/special/bessel.cpp" "src/CMakeFiles/ffwtomo.dir/special/bessel.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/special/bessel.cpp.o.d"
  "/root/repo/src/vcluster/comm.cpp" "src/CMakeFiles/ffwtomo.dir/vcluster/comm.cpp.o" "gcc" "src/CMakeFiles/ffwtomo.dir/vcluster/comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
