file(REMOVE_RECURSE
  "libffwtomo.a"
)
