# Empty compiler generated dependencies file for ffwtomo.
# This may be replaced when dependencies are built.
