file(REMOVE_RECURSE
  "CMakeFiles/multifrequency.dir/multifrequency.cpp.o"
  "CMakeFiles/multifrequency.dir/multifrequency.cpp.o.d"
  "multifrequency"
  "multifrequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multifrequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
