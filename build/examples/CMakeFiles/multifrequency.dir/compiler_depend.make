# Empty compiler generated dependencies file for multifrequency.
# This may be replaced when dependencies are built.
