# Empty compiler generated dependencies file for tomo_cli.
# This may be replaced when dependencies are built.
