file(REMOVE_RECURSE
  "CMakeFiles/tomo_cli.dir/tomo_cli.cpp.o"
  "CMakeFiles/tomo_cli.dir/tomo_cli.cpp.o.d"
  "tomo_cli"
  "tomo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
