file(REMOVE_RECURSE
  "CMakeFiles/forward_playground.dir/forward_playground.cpp.o"
  "CMakeFiles/forward_playground.dir/forward_playground.cpp.o.d"
  "forward_playground"
  "forward_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
