# Empty compiler generated dependencies file for forward_playground.
# This may be replaced when dependencies are built.
