file(REMOVE_RECURSE
  "CMakeFiles/limited_view.dir/limited_view.cpp.o"
  "CMakeFiles/limited_view.dir/limited_view.cpp.o.d"
  "limited_view"
  "limited_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limited_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
