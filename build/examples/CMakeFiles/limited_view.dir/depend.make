# Empty dependencies file for limited_view.
# This may be replaced when dependencies are built.
