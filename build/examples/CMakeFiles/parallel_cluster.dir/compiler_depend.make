# Empty compiler generated dependencies file for parallel_cluster.
# This may be replaced when dependencies are built.
