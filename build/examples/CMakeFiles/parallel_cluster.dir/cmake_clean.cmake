file(REMOVE_RECURSE
  "CMakeFiles/parallel_cluster.dir/parallel_cluster.cpp.o"
  "CMakeFiles/parallel_cluster.dir/parallel_cluster.cpp.o.d"
  "parallel_cluster"
  "parallel_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
