// Performance-model consistency: the analytic censuses must match what
// the real code does (work census vs engine structure, comm census vs
// measured vcluster traffic), and the model must obey basic sanity laws
// (efficiencies <= ~1, monotone times, O(N) behaviour).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mlfma/partitioned.hpp"
#include "perfmodel/predictor.hpp"

namespace ffw {
namespace {

TEST(Census, CommMatchesMeasuredTraffic) {
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaParams params;
  MlfmaPlan plan(tree, params);
  for (int p : {2, 4, 8, 16}) {
    PartitionedMlfma dist(tree, params, p);
    const std::size_t n = grid.num_pixels();
    cvec x(n, cplx{0.5, -0.5});
    VCluster vc(p);
    vc.run([&](Comm& comm) {
      const std::size_t b =
          dist.leaf_begin(comm.rank()) * static_cast<std::size_t>(tree.pixels_per_leaf());
      const std::size_t sz = dist.local_pixels(comm.rank());
      cvec y(sz);
      dist.apply(comm, ccspan{x.data() + b, sz}, y);
    });
    const CommCensus census = census_halo(tree, plan, p);
    EXPECT_EQ(vc.traffic().total_bytes(), census.bytes) << "p=" << p;
    EXPECT_EQ(vc.traffic().total_messages(), census.messages) << "p=" << p;
    EXPECT_EQ(vc.traffic().max_rank_bytes(), census.max_rank_bytes)
        << "p=" << p;
  }
}

TEST(Census, WorkIsLinearInN) {
  // Sec. III-C: total work per application is O(N): quadrupling the
  // pixel count should roughly quadruple total cmacs (within 2x slack
  // for the log-free but boundary-affected constants).
  MlfmaParams params;
  double prev = 0.0;
  for (int nx : {64, 128, 256}) {
    Grid grid(nx);
    QuadTree tree(grid);
    MlfmaPlan plan(tree, params);
    const double total = census_work(tree, plan).total();
    if (prev > 0.0) {
      const double ratio = total / prev;
      EXPECT_GT(ratio, 2.5) << "nx=" << nx;
      EXPECT_LT(ratio, 6.5) << "nx=" << nx;
    }
    prev = total;
  }
}

TEST(Census, MemoryIsTinyComparedToDense) {
  Grid grid(256);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  const MemoryCensus m = census_memory(tree, plan);
  EXPECT_LT(m.operator_bytes + m.panel_bytes,
            m.dense_equivalent_bytes / 100);
}

TEST(Census, ImbalanceBounds) {
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  EXPECT_DOUBLE_EQ(census_imbalance(tree, plan, 1), 1.0);
  for (int p : {2, 4, 8, 16}) {
    const double imb = census_imbalance(tree, plan, p);
    EXPECT_GE(imb, 1.0) << "p=" << p;
    EXPECT_LT(imb, 2.0) << "p=" << p;  // Morton ranges are decently even
  }
}

TEST(Census, UnbufferedMessagesDominateBuffered) {
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  for (int p : {4, 16}) {
    const CommCensus c = census_halo(tree, plan, p);
    EXPECT_GT(c.unbuffered_messages, c.messages) << "p=" << p;
    // One aggregated message per (peer pair, level/near class) at most.
    EXPECT_LE(c.messages, c.unbuffered_messages);
  }
}

class PredictorFixture : public ::testing::Test {
 protected:
  static const ScalingModel& model() {
    static const ScalingModel m{MachineParams{}, calibrate(64, 1)};
    return m;
  }
};

TEST_F(PredictorFixture, StrongScalingEfficienciesAreSane) {
  Grid grid(256);  // stand-in for the 1M-unknown domain
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  ProblemSpec spec;
  spec.nx = 256;
  spec.transmitters = 64;
  spec.dbim_iterations = 3;
  const auto pts = model().strong_scaling_illuminations(
      spec, tree, plan, {4, 8, 16, 32, 64}, true);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().efficiency, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].time_s, pts[i - 1].time_s);       // faster with nodes
    EXPECT_LE(pts[i].efficiency, 1.0 + 1e-9);
    EXPECT_GT(pts[i].efficiency, 0.5);                 // not pathological
    // Adjusted efficiency (variation removed) >= real efficiency.
    EXPECT_GE(pts[i].adjusted_efficiency, pts[i].efficiency - 0.02);
  }
}

TEST_F(PredictorFixture, SubtreeScalingIsLessEfficientThanIllumination) {
  // The paper's headline contrast: Fig. 9 (86.1%) vs Fig. 10 (46.6%).
  Grid grid(256);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  ProblemSpec spec;
  spec.nx = 256;
  spec.transmitters = 64;
  spec.dbim_iterations = 2;
  const auto illum = model().strong_scaling_illuminations(
      spec, tree, plan, {4, 64}, true);
  const auto subtree = model().strong_scaling_subtrees(
      spec, tree, plan, 4, {4, 64}, true);
  EXPECT_GT(illum.back().efficiency, subtree.back().efficiency);
}

TEST_F(PredictorFixture, GpuFasterThanCpuAndImprovesWithSize) {
  // At 65k unknowns the modelled GPU is already faster but underfilled
  // (the Sec. V-C2 granularity effect); at 262k the speedup approaches
  // the roofline ceiling. Both behaviours are intentional.
  Grid small(256), big(512);
  QuadTree tree_s(small), tree_b(big);
  MlfmaPlan plan_s(tree_s, {}), plan_b(tree_b, {});
  const double ratio_s = model().mlfma_apply_time(tree_s, plan_s, 1, false) /
                         model().mlfma_apply_time(tree_s, plan_s, 1, true);
  const double ratio_b = model().mlfma_apply_time(tree_b, plan_b, 1, false) /
                         model().mlfma_apply_time(tree_b, plan_b, 1, true);
  EXPECT_GT(ratio_s, 1.2);
  EXPECT_GT(ratio_b, ratio_s);    // less underfill at larger N
  EXPECT_LT(ratio_b, 7.0);        // bounded by the per-phase ceilings
}

TEST_F(PredictorFixture, AdjustedWeakScalingBeatsReal) {
  Grid grid(256);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  ProblemSpec base;
  base.nx = 256;
  base.dbim_iterations = 2;
  const auto pts = model().weak_scaling_illuminations(base, tree, plan,
                                                      {4, 16, 64}, true);
  for (const auto& p : pts) {
    EXPECT_GE(p.adjusted_efficiency, p.efficiency - 1e-9);
  }
}

TEST_F(PredictorFixture, CalibratedRatesArePositive) {
  const CalibratedRates& r = model().rates();
  for (double v : r.cmacs_per_s) EXPECT_GT(v, 0.0);
  EXPECT_GT(r.mlfma_per_solve, 2.0);
  EXPECT_LT(r.mlfma_per_solve, 200.0);
  EXPECT_GT(r.bicgs_mean, 1.0);
  EXPECT_GE(r.bicgs_std, 0.0);
}

TEST_F(PredictorFixture, PhaseScalingOverlapHelpsGpu) {
  Grid grid(256);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  const auto t = model().phase_scaling(tree, plan,
                                       MlfmaPhase::kTranslation, 16);
  // 16-node speedup vs own 1-node time.
  const double cpu_speedup = t.cpu1 / t.cpu16;
  const double gpu_speedup = t.gpu1 / t.gpu16;
  EXPECT_LE(cpu_speedup, 16.0 + 1e-9);
  EXPECT_GT(gpu_speedup, 0.0);
}

}  // namespace
}  // namespace ffw
