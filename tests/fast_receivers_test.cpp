// Fast (top-level expansion) receiver evaluation vs the dense G_R.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "greens/fast_receivers.hpp"
#include "linalg/kernels.hpp"

namespace ffw {
namespace {

class FastReceivers : public ::testing::TestWithParam<int> {};

TEST_P(FastReceivers, MatchesDenseGr) {
  const int nx = GetParam();
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const auto rx = ring_positions(24, grid.domain());
  Transceivers dense(grid, ring_positions(2, grid.domain()), rx);
  FastReceiverOperator fast(engine, rx);

  const std::size_t n = grid.num_pixels();
  Rng rng(static_cast<std::uint64_t>(nx));
  cvec x_nat(n), x_clu(n);
  rng.fill_cnormal(x_nat);
  tree.to_cluster_order(x_nat, x_clu);

  cvec y_dense(24), y_fast(24);
  dense.apply_gr(x_nat, y_dense);
  fast.apply(x_clu, y_fast);
  EXPECT_LT(rel_l2_diff(y_fast, y_dense), 1e-5) << "nx=" << nx;
}

INSTANTIATE_TEST_SUITE_P(Domains, FastReceivers,
                         ::testing::Values(32, 64, 128));

TEST(FastReceiversCost, StorageScalesWithSqrtN) {
  // Table storage is R * 16 * Q_top complex; Q_top ~ sqrt(N).
  Grid small(64), large(256);
  QuadTree ts(small), tl(large);
  MlfmaEngine es(ts), el(tl);
  const auto rx_s = ring_positions(16, small.domain());
  const auto rx_l = ring_positions(16, large.domain());
  FastReceiverOperator fs(es, rx_s), fl(el, rx_l);
  // N grows 16x; sqrt(N) grows 4x: storage should grow well under 16x.
  EXPECT_LT(static_cast<double>(fl.bytes()),
            8.0 * static_cast<double>(fs.bytes()));
}

TEST(FastReceiversCost, RefusesReceiversInsideTheDomain) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::vector<Vec2> inside = {{0.5, 0.5}};
  EXPECT_DEATH(FastReceiverOperator(engine, inside), "too close");
}

TEST(FastReceiversCost, LinearInSources) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const auto rx = ring_positions(8, grid.domain());
  FastReceiverOperator fast(engine, rx);
  const std::size_t n = grid.num_pixels();
  Rng rng(5);
  cvec a(n), b(n), ab(n), ya(8), yb(8), yab(8);
  rng.fill_cnormal(a);
  rng.fill_cnormal(b);
  const cplx w{0.3, -1.1};
  for (std::size_t i = 0; i < n; ++i) ab[i] = a[i] + w * b[i];
  fast.apply(a, ya);
  fast.apply(b, yb);
  fast.apply(ab, yab);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(std::abs(yab[r] - (ya[r] + w * yb[r])), 0.0,
                1e-12 * std::abs(yab[r]) + 1e-15);
  }
}

}  // namespace
}  // namespace ffw
