// Partitioned (distributed) MLFMA must reproduce the serial engine for
// every rank count, with communication only where the paper says it is
// needed (translation + near-field).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"
#include "mlfma/partitioned.hpp"

namespace ffw {
namespace {

class PartitionedRanks : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedRanks, MatchesSerialEngine) {
  const int p = GetParam();
  Grid grid(128);  // 3 levels, 256 leaves
  QuadTree tree(grid);
  MlfmaParams params;
  MlfmaEngine serial(tree, params);
  PartitionedMlfma dist(tree, params, p);

  const std::size_t n = grid.num_pixels();
  Rng rng(61);
  cvec x(n), y_serial(n), y_dist(n, cplx{});
  rng.fill_cnormal(x);  // cluster order
  serial.apply(x, y_serial);

  VCluster vc(p);
  vc.run([&](Comm& comm) {
    const std::size_t b = dist.leaf_begin(comm.rank()) *
                          static_cast<std::size_t>(tree.pixels_per_leaf());
    const std::size_t sz = dist.local_pixels(comm.rank());
    cvec y_local(sz);
    dist.apply(comm, ccspan{x.data() + b, sz}, y_local);
    std::copy(y_local.begin(), y_local.end(), y_dist.begin() + b);
  });

  EXPECT_LT(rel_l2_diff(y_dist, y_serial), 1e-12) << "ranks=" << p;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PartitionedRanks,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Partitioned, HermitianMatchesSerial) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaParams params;
  MlfmaEngine serial(tree, params);
  PartitionedMlfma dist(tree, params, 4);

  const std::size_t n = grid.num_pixels();
  Rng rng(62);
  cvec x(n), y_serial(n), y_dist(n, cplx{});
  rng.fill_cnormal(x);
  serial.apply_herm(x, y_serial);

  VCluster vc(4);
  vc.run([&](Comm& comm) {
    const std::size_t b =
        dist.leaf_begin(comm.rank()) * static_cast<std::size_t>(tree.pixels_per_leaf());
    const std::size_t sz = dist.local_pixels(comm.rank());
    cvec y_local(sz);
    dist.apply_herm(comm, ccspan{x.data() + b, sz}, y_local);
    std::copy(y_local.begin(), y_local.end(), y_dist.begin() + b);
  });
  EXPECT_LT(rel_l2_diff(y_dist, y_serial), 1e-12);
}

TEST(Partitioned, SingleRankNeedsNoCommunication) {
  Grid grid(64);
  QuadTree tree(grid);
  PartitionedMlfma dist(tree, {}, 1);
  VCluster vc(1);
  const std::size_t n = grid.num_pixels();
  Rng rng(63);
  cvec x(n), y(n);
  rng.fill_cnormal(x);
  vc.run([&](Comm& comm) { dist.apply(comm, x, y); });
  EXPECT_EQ(vc.traffic().total_messages(), 0u);
}

TEST(Partitioned, CommunicationOnlyAtTranslationAndNearField) {
  // Traffic volume must equal the sum over levels of (ghost clusters x
  // Q_l) plus near-field ghosts x 64 — i.e., aggregation and
  // disaggregation add nothing (the paper's key claim in Sec. IV-A).
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaParams params;
  PartitionedMlfma dist(tree, params, 4);
  MlfmaPlan plan(tree, params);

  const std::size_t n = grid.num_pixels();
  cvec x(n, cplx{1.0, -1.0});
  VCluster vc(4);
  vc.run([&](Comm& comm) {
    const std::size_t b =
        dist.leaf_begin(comm.rank()) * static_cast<std::size_t>(tree.pixels_per_leaf());
    const std::size_t sz = dist.local_pixels(comm.rank());
    cvec y(sz);
    dist.apply(comm, ccspan{x.data() + b, sz}, y);
  });

  // Independently count required ghosts from the interaction lists.
  auto owner = [&](int level, std::size_t c) {
    return static_cast<int>(c * 4 / tree.level(level).num_clusters);
  };
  std::uint64_t expected_cplx = 0;
  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    std::set<std::pair<int, std::uint32_t>> ghosts;  // (dest rank, src)
    for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const std::uint32_t s = lvl.far[e].src;
        if (owner(l, s) != owner(l, c))
          ghosts.insert({owner(l, c), s});
      }
    }
    expected_cplx += ghosts.size() *
                     static_cast<std::uint64_t>(plan.level(l).samples);
  }
  {
    std::set<std::pair<int, std::uint32_t>> ghosts;
    for (std::size_t c = 0; c < tree.num_leaves(); ++c) {
      for (std::uint32_t e = tree.near_begin()[c];
           e < tree.near_begin()[c + 1]; ++e) {
        const std::uint32_t s = tree.near()[e].src;
        if (owner(0, s) != owner(0, c)) ghosts.insert({owner(0, c), s});
      }
    }
    expected_cplx += ghosts.size() * static_cast<std::size_t>(tree.pixels_per_leaf());
  }
  EXPECT_EQ(vc.traffic().total_bytes(), expected_cplx * sizeof(cplx));
}

}  // namespace
}  // namespace ffw
