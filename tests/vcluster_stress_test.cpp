// Stress and ordering tests for the virtual cluster under concurrent
// many-to-many traffic — the regime the distributed DBIM actually
// creates (every rank sending on several tags while others compute).
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "vcluster/comm.hpp"

namespace ffw {
namespace {

TEST(VClusterStress, AllToAllStorm) {
  const int p = 8;
  const int rounds = 40;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    Rng rng(static_cast<std::uint64_t>(c.rank()) + 1);
    // Everyone sends `rounds` messages to everyone else, interleaved,
    // then receives and checks all of them in order.
    for (int r = 0; r < rounds; ++r) {
      for (int dst = 0; dst < p; ++dst) {
        if (dst == c.rank()) continue;
        const double payload[2] = {static_cast<double>(c.rank() * 1000 + r),
                                   rng.uniform()};
        c.send(dst, 5, std::span<const double>(payload, 2));
      }
    }
    for (int src = 0; src < p; ++src) {
      if (src == c.rank()) continue;
      for (int r = 0; r < rounds; ++r) {
        const auto msg = c.recv<double>(src, 5);
        ASSERT_EQ(msg.size(), 2u);
        EXPECT_DOUBLE_EQ(msg[0], static_cast<double>(src * 1000 + r));
      }
    }
  });
  EXPECT_EQ(vc.traffic().total_messages(),
            static_cast<std::uint64_t>(p) * (p - 1) * rounds);
}

TEST(VClusterStress, InterleavedCollectivesAndPointToPoint) {
  const int p = 6;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    for (int round = 0; round < 10; ++round) {
      // Point-to-point ring shift.
      const int next = (c.rank() + 1) % p;
      const int prev = (c.rank() + p - 1) % p;
      const double v[1] = {static_cast<double>(c.rank() + round)};
      c.send(next, 77, std::span<const double>(v, 1));
      // Collective in the middle of outstanding sends.
      cvec sum(3, cplx{1.0, static_cast<double>(c.rank())});
      c.allreduce_sum(cspan{sum});
      EXPECT_NEAR(sum[0].real(), static_cast<double>(p), 1e-12);
      EXPECT_NEAR(sum[0].imag(), p * (p - 1) / 2.0, 1e-12);
      // Now drain the ring message.
      const auto got = c.recv<double>(prev, 77);
      EXPECT_DOUBLE_EQ(got[0], static_cast<double>(prev + round));
    }
  });
}

TEST(VClusterStress, ConcurrentGroupCollectivesDoNotInterfere) {
  // Two disjoint subgroups reduce concurrently with the same internal
  // tags; disjoint rank pairs keep them independent.
  const int p = 8;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    std::vector<int> group;
    const int base = (c.rank() < 4) ? 0 : 4;
    for (int r = 0; r < 4; ++r) group.push_back(base + r);
    for (int round = 0; round < 25; ++round) {
      double v[1] = {static_cast<double>(c.rank())};
      c.group_allreduce_sum(rspan{v, 1}, group);
      const double want = base == 0 ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7;
      ASSERT_DOUBLE_EQ(v[0], want) << "round " << round;
    }
  });
}

TEST(VClusterStress, LargePayloads) {
  VCluster vc(2);
  const std::size_t big = 1 << 20;  // 16 MB of complex
  vc.run([&](Comm& c) {
    if (c.rank() == 0) {
      cvec data(big);
      for (std::size_t i = 0; i < big; ++i)
        data[i] = cplx(static_cast<double>(i & 1023), 0.0);
      c.send(1, 9, ccspan{data});
    } else {
      const cvec got = c.recv<cplx>(0, 9);
      ASSERT_EQ(got.size(), big);
      EXPECT_EQ(got[12345], cplx(static_cast<double>(12345 & 1023), 0.0));
    }
  });
  EXPECT_EQ(vc.traffic().total_bytes(), big * sizeof(cplx));
}

TEST(VClusterStress, ManySmallBarriers) {
  const int p = 5;
  VCluster vc(p);
  std::atomic<int> counter{0};
  std::atomic<bool> ok{true};
  vc.run([&](Comm& c) {
    for (int i = 0; i < 200; ++i) {
      counter.fetch_add(1);
      c.barrier();
      // Between the two barriers the counter is frozen at exactly
      // (i+1)*p: everyone has incremented for round i and nobody can
      // start round i+1 until the second barrier releases.
      if (counter.load() != (i + 1) * p) ok = false;
      c.barrier();
    }
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter.load(), 200 * p);
}

}  // namespace
}  // namespace ffw
