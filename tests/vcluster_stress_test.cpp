// Stress and ordering tests for the virtual cluster under concurrent
// many-to-many traffic — the regime the distributed DBIM actually
// creates (every rank sending on several tags while others compute).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "vcluster/comm.hpp"

namespace ffw {
namespace {

TEST(VClusterStress, AllToAllStorm) {
  const int p = 8;
  const int rounds = 40;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    Rng rng(static_cast<std::uint64_t>(c.rank()) + 1);
    // Everyone sends `rounds` messages to everyone else, interleaved,
    // then receives and checks all of them in order.
    for (int r = 0; r < rounds; ++r) {
      for (int dst = 0; dst < p; ++dst) {
        if (dst == c.rank()) continue;
        const double payload[2] = {static_cast<double>(c.rank() * 1000 + r),
                                   rng.uniform()};
        c.send(dst, 5, std::span<const double>(payload, 2));
      }
    }
    for (int src = 0; src < p; ++src) {
      if (src == c.rank()) continue;
      for (int r = 0; r < rounds; ++r) {
        const auto msg = c.recv<double>(src, 5);
        ASSERT_EQ(msg.size(), 2u);
        EXPECT_DOUBLE_EQ(msg[0], static_cast<double>(src * 1000 + r));
      }
    }
  });
  EXPECT_EQ(vc.traffic().total_messages(),
            static_cast<std::uint64_t>(p) * (p - 1) * rounds);
}

TEST(VClusterStress, InterleavedCollectivesAndPointToPoint) {
  const int p = 6;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    for (int round = 0; round < 10; ++round) {
      // Point-to-point ring shift.
      const int next = (c.rank() + 1) % p;
      const int prev = (c.rank() + p - 1) % p;
      const double v[1] = {static_cast<double>(c.rank() + round)};
      c.send(next, 77, std::span<const double>(v, 1));
      // Collective in the middle of outstanding sends.
      cvec sum(3, cplx{1.0, static_cast<double>(c.rank())});
      c.allreduce_sum(cspan{sum});
      EXPECT_NEAR(sum[0].real(), static_cast<double>(p), 1e-12);
      EXPECT_NEAR(sum[0].imag(), p * (p - 1) / 2.0, 1e-12);
      // Now drain the ring message.
      const auto got = c.recv<double>(prev, 77);
      EXPECT_DOUBLE_EQ(got[0], static_cast<double>(prev + round));
    }
  });
}

TEST(VClusterStress, ConcurrentGroupCollectivesDoNotInterfere) {
  // Two disjoint subgroups reduce concurrently with the same internal
  // tags; disjoint rank pairs keep them independent.
  const int p = 8;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    std::vector<int> group;
    const int base = (c.rank() < 4) ? 0 : 4;
    for (int r = 0; r < 4; ++r) group.push_back(base + r);
    for (int round = 0; round < 25; ++round) {
      double v[1] = {static_cast<double>(c.rank())};
      c.group_allreduce_sum(rspan{v, 1}, group);
      const double want = base == 0 ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7;
      ASSERT_DOUBLE_EQ(v[0], want) << "round " << round;
    }
  });
}

TEST(VClusterStress, LargePayloads) {
  VCluster vc(2);
  const std::size_t big = 1 << 20;  // 16 MB of complex
  vc.run([&](Comm& c) {
    if (c.rank() == 0) {
      cvec data(big);
      for (std::size_t i = 0; i < big; ++i)
        data[i] = cplx(static_cast<double>(i & 1023), 0.0);
      c.send(1, 9, ccspan{data});
    } else {
      const cvec got = c.recv<cplx>(0, 9);
      ASSERT_EQ(got.size(), big);
      EXPECT_EQ(got[12345], cplx(static_cast<double>(12345 & 1023), 0.0));
    }
  });
  EXPECT_EQ(vc.traffic().total_bytes(), big * sizeof(cplx));
}

// --- wait_any fairness ---------------------------------------------------
//
// Regression for the starvation bug: wait_any used to scan its key list
// from index 0 on every call, so whenever several keys were ready the
// lowest-index peer always won. Under sustained arrivals (every queue
// kept non-empty — exactly the overlapped apply's drain regime) the
// high-index peers were never serviced until the low-index queues ran
// dry, degenerating arrival-order draining into a fixed drain order.

TEST(VClusterStress, WaitAnyServicesEveryReadyKey) {
  const int p = 5, tag = 7;
  const int per_producer = 6;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < per_producer; ++i) {
        const double v[1] = {static_cast<double>(c.rank() * 100 + i)};
        c.send(0, tag, std::span<const double>(v, 1));
      }
      c.barrier();
      return;
    }
    c.barrier();  // all queues are now full: every key is ready
    std::vector<std::pair<int, int>> keys;
    for (int src = 1; src < p; ++src) keys.emplace_back(src, tag);
    // With every key ready the first p-1 services must hit p-1
    // *distinct* keys. Pre-fix, all of them hit key 0.
    std::set<std::size_t> first;
    for (int i = 0; i < p - 1; ++i) {
      const std::size_t hit = c.wait_any(keys);
      first.insert(hit);
      (void)c.recv<double>(keys[hit].first, tag);
    }
    EXPECT_EQ(first.size(), static_cast<std::size_t>(p - 1))
        << "wait_any kept servicing the same key while others were ready";
    // Drain the rest so no messages outlive the test.
    for (int i = 0; i < (p - 1) * (per_producer - 1); ++i) {
      const std::size_t hit = c.wait_any(keys);
      (void)c.recv<double>(keys[hit].first, tag);
    }
  });
}

TEST(VClusterStress, WaitAnyNeverStarvesUnderContinuousLoad) {
  // Continuous load: every queue is pre-filled deep enough that all keys
  // stay ready for the whole drain. No key may go unserviced for more
  // than one full rotation of the key list.
  const int p = 5, tag = 9;
  const int per_producer = 32;
  const int nk = p - 1;
  VCluster vc(p);
  vc.run([&](Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < per_producer; ++i) {
        const double v[1] = {static_cast<double>(i)};
        c.send(0, tag, std::span<const double>(v, 1));
      }
      c.barrier();
      return;
    }
    c.barrier();
    std::vector<std::pair<int, int>> keys;
    for (int src = 1; src < p; ++src) keys.emplace_back(src, tag);
    std::vector<int> serviced(static_cast<std::size_t>(nk), 0);
    std::vector<int> last_seen(static_cast<std::size_t>(nk), -1);
    const int total = nk * per_producer;
    for (int i = 0; i < total; ++i) {
      const std::size_t hit = c.wait_any(keys);
      (void)c.recv<double>(keys[hit].first, tag);
      ++serviced[hit];
      // While every queue is still non-empty, a key must not wait more
      // than 2*nk services between visits (one full round-robin plus
      // slack for the rotation phase).
      if (i < total - nk * 2) {
        EXPECT_LE(i - last_seen[hit], 2 * nk)
            << "key " << hit << " starved at service " << i;
      }
      last_seen[hit] = i;
    }
    for (int k = 0; k < nk; ++k) {
      EXPECT_EQ(serviced[static_cast<std::size_t>(k)], per_producer)
          << "key " << k;
    }
  });
}

// --- Collectives at non-power-of-two rank counts -------------------------
//
// The recursive-doubling allreduce folds the ranks beyond the largest
// power-of-two prefix into the prefix first (standard MPI algorithm).
// These tests pin both the values and the wire traffic at p = 3, 5, 6,
// 12, cross-checking the per-rank obs wire-byte counters against the
// vcluster ledger and the analytic message count — so the fold-in
// traffic pattern itself is asserted, not just the reduced numbers.

/// Expected allreduce_sum payload-message count: 2*rem fold-in/out
/// messages plus p2*log2(p2) doubling-phase messages.
std::uint64_t allreduce_messages(int p) {
  const int p2 = 1 << (std::bit_width(static_cast<unsigned>(p)) - 1);
  const int rem = p - p2;
  return static_cast<std::uint64_t>(2 * rem) +
         static_cast<std::uint64_t>(p2) *
             static_cast<std::uint64_t>(std::countr_zero(
                 static_cast<unsigned>(p2)));
}

std::uint64_t wire_bytes(int rank) {
  return obs::counter_totals(
      rank)[static_cast<std::size_t>(obs::Counter::kWireBytes)];
}

TEST(VClusterCollectives, AllreduceSumNonPowerOfTwoRanks) {
  for (const int p : {3, 5, 6, 12}) {
    const std::size_t n = 17;  // deliberately not a round number
    obs::set_enabled(false);
    obs::reset();
    obs::set_enabled(true);
    VCluster vc(p);
    vc.run([&](Comm& c) {
      rvec v(n);
      for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i + 1);
      c.allreduce_sum(rspan{v});
      // sum_r (r+1) = p(p+1)/2, scaled by (i+1) per element.
      const double ranks_sum = p * (p + 1) / 2.0;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(v[i], ranks_sum * static_cast<double>(i + 1))
            << "p=" << p << " i=" << i;
      }
    });
    obs::set_enabled(false);

    const std::uint64_t expect_bytes =
        allreduce_messages(p) * n * sizeof(double);
    EXPECT_EQ(vc.traffic().total_bytes(), expect_bytes) << "p=" << p;
    EXPECT_EQ(vc.traffic().total_messages(), allreduce_messages(p))
        << "p=" << p;

    // Per-rank wire bytes from the obs bridge: fold-in ranks (>= p2)
    // send exactly one payload; prefix ranks send one per doubling round
    // plus the fold-back if they own an extra rank.
    const int p2 = 1 << (std::bit_width(static_cast<unsigned>(p)) - 1);
    const int rem = p - p2;
    const int rounds = std::countr_zero(static_cast<unsigned>(p2));
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r) {
      const std::uint64_t sends =
          r >= p2 ? 1
                  : static_cast<std::uint64_t>(rounds) + (r < rem ? 1 : 0);
      EXPECT_EQ(wire_bytes(r), sends * n * sizeof(double))
          << "p=" << p << " rank=" << r;
      total += wire_bytes(r);
    }
    EXPECT_EQ(total, vc.traffic().total_bytes()) << "p=" << p;
    obs::reset();
  }
}

TEST(VClusterCollectives, AllreduceMaxBinomialTraffic) {
  // allreduce_max = binomial reduce to rank 0 + binomial broadcast:
  // exactly 2(p-1) one-double messages, and rank 0's incident edge count
  // is ceil(log2 p) per phase — the star gather it replaced put p-1
  // messages on rank 0's edges in each direction. The per-edge pattern
  // below is computed by replaying the tree schedules analytically.
  for (const int p : {3, 5, 6, 12}) {
    obs::set_enabled(false);
    obs::reset();
    obs::set_enabled(true);
    VCluster vc(p);
    vc.run([&](Comm& c) {
      // Distinct values; the max lives at a non-root rank.
      const double mine = c.rank() == p - 1 ? 100.0 : static_cast<double>(c.rank());
      ASSERT_DOUBLE_EQ(c.allreduce_max(mine), 100.0) << "p=" << p;
    });
    obs::set_enabled(false);

    // Analytic per-edge message counts.
    std::vector<std::uint64_t> expect_msgs(
        static_cast<std::size_t>(p) * static_cast<std::size_t>(p), 0);
    const auto edge = [&](int s, int d) -> std::uint64_t& {
      return expect_msgs[static_cast<std::size_t>(s) * p + d];
    };
    for (int r = 1; r < p; ++r) {        // reduce: each non-root sends once,
      for (int mask = 1; mask < p; mask <<= 1) {
        if ((r & mask) != 0) {           // up the lowest-set-bit edge
          edge(r, r ^ mask) += 1;
          break;
        }
      }
    }
    for (int mask = 1; mask < p; mask <<= 1) {  // broadcast from rank 0
      for (int r = 0; r < mask && r + mask < p; ++r) edge(r, r + mask) += 1;
    }

    const TrafficStats t = vc.traffic();
    EXPECT_EQ(t.total_messages(), static_cast<std::uint64_t>(2 * (p - 1)))
        << "p=" << p;
    EXPECT_EQ(t.total_bytes(),
              static_cast<std::uint64_t>(2 * (p - 1)) * sizeof(double))
        << "p=" << p;
    std::uint64_t rank0_incident = 0;
    for (int s = 0; s < p; ++s) {
      for (int d = 0; d < p; ++d) {
        EXPECT_EQ(t.messages[static_cast<std::size_t>(s) * p + d],
                  edge(s, d))
            << "p=" << p << " edge " << s << "->" << d;
        if (s == 0 || d == 0)
          rank0_incident += t.messages[static_cast<std::size_t>(s) * p + d];
      }
    }
    // ceil(log2 p) recvs in the reduce + ceil(log2 p) sends in the bcast.
    const std::uint64_t logp = static_cast<std::uint64_t>(
        std::bit_width(static_cast<unsigned>(p - 1)));
    EXPECT_EQ(rank0_incident, 2 * logp) << "p=" << p;

    // Per-rank obs wire counters agree with the ledger.
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r) total += wire_bytes(r);
    EXPECT_EQ(total, t.total_bytes()) << "p=" << p;
    obs::reset();
  }
}

TEST(VClusterCollectives, BcastNonPowerOfTwoRanks) {
  for (const int p : {3, 5, 6, 12}) {
    for (const int root : {0, p - 1}) {
      const std::size_t n = 9;
      obs::set_enabled(false);
      obs::reset();
      obs::set_enabled(true);
      VCluster vc(p);
      vc.run([&](Comm& c) {
        cvec v(n);
        if (c.rank() == root) {
          for (std::size_t i = 0; i < n; ++i)
            v[i] = cplx{static_cast<double>(i), -1.0};
        }
        c.bcast(cspan{v}, root);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(v[i], (cplx{static_cast<double>(i), -1.0}))
              << "p=" << p << " root=" << root << " rank=" << c.rank();
        }
      });
      obs::set_enabled(false);
      // Binomial tree: exactly p-1 payload messages, cross-checked
      // against the summed per-rank obs counters.
      EXPECT_EQ(vc.traffic().total_messages(),
                static_cast<std::uint64_t>(p - 1))
          << "p=" << p << " root=" << root;
      std::uint64_t total = 0;
      for (int r = 0; r < p; ++r) total += wire_bytes(r);
      EXPECT_EQ(total, static_cast<std::uint64_t>(p - 1) * n * sizeof(cplx))
          << "p=" << p << " root=" << root;
      EXPECT_EQ(total, vc.traffic().total_bytes());
      // Leaves of the tree send nothing; the root always sends.
      EXPECT_GT(wire_bytes(root), 0u);
      obs::reset();
    }
  }
}

TEST(VClusterCollectives, GroupAllreduceNonPowerOfTwoGroups) {
  // p = 12 split into groups of 5, 4, 3 reducing concurrently.
  const int p = 12;
  const std::vector<std::vector<int>> groups = {
      {0, 1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11}};
  const std::size_t n = 5;
  obs::set_enabled(false);
  obs::reset();
  obs::set_enabled(true);
  VCluster vc(p);
  vc.run([&](Comm& c) {
    const auto& mine = *std::find_if(
        groups.begin(), groups.end(), [&](const std::vector<int>& g) {
          return std::find(g.begin(), g.end(), c.rank()) != g.end();
        });
    rvec v(n, static_cast<double>(c.rank()));
    c.group_allreduce_sum(rspan{v}, mine);
    const double want = std::accumulate(mine.begin(), mine.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(v[i], want) << "rank " << c.rank();
    }
  });
  obs::set_enabled(false);
  // Leader gather + leader broadcast: 2*(g-1) messages per group. The
  // obs counters localise it: each member sends once, the leader g-1
  // times.
  std::uint64_t expect_msgs = 0;
  for (const auto& g : groups) {
    expect_msgs += 2 * (g.size() - 1);
    EXPECT_EQ(wire_bytes(g[0]), (g.size() - 1) * n * sizeof(double))
        << "leader " << g[0];
    for (std::size_t i = 1; i < g.size(); ++i) {
      EXPECT_EQ(wire_bytes(g[i]), n * sizeof(double)) << "member " << g[i];
    }
  }
  EXPECT_EQ(vc.traffic().total_messages(), expect_msgs);
  EXPECT_EQ(vc.traffic().total_bytes(), expect_msgs * n * sizeof(double));
  obs::reset();
}

TEST(VClusterStress, ManySmallBarriers) {
  const int p = 5;
  VCluster vc(p);
  std::atomic<int> counter{0};
  std::atomic<bool> ok{true};
  vc.run([&](Comm& c) {
    for (int i = 0; i < 200; ++i) {
      counter.fetch_add(1);
      c.barrier();
      // Between the two barriers the counter is frozen at exactly
      // (i+1)*p: everyone has incremented for round i and nobody can
      // start round i+1 until the second barrier releases.
      if (counter.load() != (i + 1) * p) ok = false;
      c.barrier();
    }
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter.load(), 200 * p);
}

}  // namespace
}  // namespace ffw
