// Image/CSV output round trips (parse back what we wrote).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/image.hpp"
#include "phantom/phantom.hpp"

namespace ffw {
namespace {

struct Pgm {
  int w = 0, h = 0, maxval = 0;
  std::vector<unsigned char> pixels;
};

Pgm read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Pgm p;
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  in >> p.w >> p.h >> p.maxval;
  in.get();  // single whitespace after header
  p.pixels.resize(static_cast<std::size_t>(p.w) * p.h);
  in.read(reinterpret_cast<char*>(p.pixels.data()),
          static_cast<std::streamsize>(p.pixels.size()));
  return p;
}

TEST(Image, PgmRoundTrip) {
  Grid grid(16);
  cvec v(grid.num_pixels(), cplx{});
  // Gradient along x: pixel (ix, iy) value = ix.
  for (int iy = 0; iy < 16; ++iy)
    for (int ix = 0; ix < 16; ++ix)
      v[grid.pixel_index(ix, iy)] = static_cast<double>(ix);
  const std::string path = "/tmp/ffw_io_test.pgm";
  ASSERT_TRUE(write_pgm(path, grid, v, 0.0, 15.0));
  const Pgm p = read_pgm(path);
  EXPECT_EQ(p.w, 16);
  EXPECT_EQ(p.h, 16);
  EXPECT_EQ(p.maxval, 255);
  // Leftmost column maps to 0, rightmost to 255.
  EXPECT_EQ(p.pixels[0], 0);
  EXPECT_EQ(p.pixels[15], 255);
  // Row flip: PGM row 0 is our top row (iy = 15) — same gradient.
  EXPECT_EQ(p.pixels[static_cast<std::size_t>(15) * 16 + 15], 255);
  std::remove(path.c_str());
}

TEST(Image, AutoScaleUsesDataRange) {
  Grid grid(8);
  cvec v(grid.num_pixels(), cplx{5.0, 0.0});
  v[0] = cplx{1.0, 0.0};  // min
  v[1] = cplx{9.0, 0.0};  // max
  const std::string path = "/tmp/ffw_io_test2.pgm";
  ASSERT_TRUE(write_pgm(path, grid, v));
  const Pgm p = read_pgm(path);
  // Pixel 0 and 1 are in our bottom row = last PGM row.
  const std::size_t last_row = static_cast<std::size_t>(7) * 8;
  EXPECT_EQ(p.pixels[last_row + 0], 0);
  EXPECT_EQ(p.pixels[last_row + 1], 255);
  std::remove(path.c_str());
}

TEST(Image, MagnitudeVariant) {
  Grid grid(8);
  cvec v(grid.num_pixels(), cplx{});
  v[10] = cplx{3.0, 4.0};  // |v| = 5
  const std::string path = "/tmp/ffw_io_test3.pgm";
  ASSERT_TRUE(write_pgm_magnitude(path, grid, v));
  const Pgm p = read_pgm(path);
  unsigned char mx = 0;
  for (auto c : p.pixels) mx = std::max(mx, c);
  EXPECT_EQ(mx, 255);
  std::remove(path.c_str());
}

TEST(Csv, RoundTrip) {
  const std::string path = "/tmp/ffw_io_test.csv";
  ASSERT_TRUE(write_csv(path, {{"nodes", {64, 128, 256}},
                               {"time", {1.5, 0.75, 0.4}}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "nodes,time");
  std::getline(in, line);
  EXPECT_EQ(line, "64,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "128,0.75");
  std::remove(path.c_str());
}

TEST(Csv, RaggedColumnsPadWithEmpty) {
  const std::string path = "/tmp/ffw_io_test2.csv";
  ASSERT_TRUE(write_csv(path, {{"a", {1, 2}}, {"b", {7}}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "1,7");
  std::getline(in, line);
  EXPECT_EQ(line, "2,");
  std::remove(path.c_str());
}

TEST(Csv, EmptyColumnsRejected) {
  EXPECT_FALSE(write_csv("/tmp/ffw_io_never.csv", {}));
}

}  // namespace
}  // namespace ffw
