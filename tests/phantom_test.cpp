// Phantom generators and image metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "phantom/phantom.hpp"

namespace ffw {
namespace {

TEST(Phantom, SheppLoganPeakNormalisation) {
  Grid grid(128);
  const cvec p = shepp_logan(grid, 0.02);
  double peak = 0.0;
  for (const auto& v : p) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 0.02, 1e-12);
}

TEST(Phantom, SheppLoganSupportAndBackground) {
  Grid grid(64);
  const cvec p = shepp_logan(grid, 1.0);
  const int nx = grid.nx();
  // Background outside the skull ellipse is exactly zero; the brain
  // interior is nonzero.
  const double scale = 0.9 * 0.5 * grid.domain();
  for (int iy = 0; iy < nx; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Vec2 q = grid.pixel_center(ix, iy);
      const double x = q.x / scale, y = q.y / scale;
      if ((x * x) / (0.69 * 0.69) + (y * y) / (0.92 * 0.92) > 1.05) {
        EXPECT_EQ(p[grid.pixel_index(ix, iy)], cplx{});
      }
    }
  }
  EXPECT_NE(p[grid.pixel_index(nx / 2, nx / 2)], cplx{});
}

TEST(Phantom, SheppLoganHasInteriorStructure) {
  Grid grid(128);
  const cvec p = shepp_logan(grid, 0.02);
  // More than two distinct values: skull, brain, ventricles, tumours.
  std::set<long long> quantised;
  for (const auto& v : p)
    quantised.insert(static_cast<long long>(std::round(v.real() * 1e9)));
  EXPECT_GE(quantised.size(), 4u);
}

TEST(Phantom, AnnulusAreaMatchesGeometry) {
  Grid grid(64);
  const double r_in = 1.0, r_out = 2.0;
  const cvec a = annulus(grid, r_in, r_out, cplx{1.0, 0.0});
  std::size_t count = 0;
  for (const auto& v : a) count += (v != cplx{});
  const double area = static_cast<double>(count) * grid.h() * grid.h();
  const double want = pi * (r_out * r_out - r_in * r_in);
  EXPECT_NEAR(area, want, 0.05 * want);  // staircase tolerance
}

TEST(Phantom, DisksOverwriteInOrder) {
  Grid grid(32);
  const cvec d = disks(grid, {{Vec2{0, 0}, 1.0, cplx{1.0, 0.0}},
                              {Vec2{0, 0}, 0.5, cplx{2.0, 0.0}}});
  // Centre pixel gets the later disk's value.
  EXPECT_EQ(d[grid.pixel_index(16, 16)], (cplx{2.0, 0.0}));
}

TEST(Phantom, ContrastScalesByK0Squared) {
  Grid grid(16);
  cvec de(grid.num_pixels(), cplx{0.01, 0.0});
  const cvec o = contrast_from_permittivity(grid, de);
  const double k2 = grid.k0() * grid.k0();
  EXPECT_NEAR(o[0].real(), 0.01 * k2, 1e-12);
}

TEST(Phantom, RmseBasics) {
  cvec a{{1, 0}, {0, 0}}, b{{1, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(image_rmse(a, b), 0.0);
  cvec c{{2, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(image_rmse(c, a), 1.0);
}

TEST(Phantom, GaussianBlobPeakAtCenter) {
  Grid grid(32);
  const cvec g = gaussian_blob(grid, Vec2{0.0, 0.0}, 0.4, cplx{0.05, 0.0});
  double peak = 0.0;
  std::size_t arg = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (std::abs(g[i]) > peak) {
      peak = std::abs(g[i]);
      arg = i;
    }
  }
  // Peak at one of the four centre pixels.
  const int ix = static_cast<int>(arg) % grid.nx();
  const int iy = static_cast<int>(arg) / grid.nx();
  EXPECT_GE(ix, grid.nx() / 2 - 1);
  EXPECT_LE(ix, grid.nx() / 2);
  EXPECT_GE(iy, grid.nx() / 2 - 1);
  EXPECT_LE(iy, grid.nx() / 2);
}

}  // namespace
}  // namespace ffw
