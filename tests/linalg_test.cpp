// Dense/banded/diagonal linear-algebra substrate tests.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/banded.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/gemm.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"

namespace ffw {
namespace {

CMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  CMatrix m(r, c);
  for (std::size_t j = 0; j < c; ++j)
    for (std::size_t i = 0; i < r; ++i) m(i, j) = rng.cnormal();
  return m;
}

void naive_gemm(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
                CMatrix& c) {
  for (std::size_t j = 0; j < b.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) {
      cplx acc{};
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = beta * c(i, j) + alpha * acc;
    }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n * 100 + k));
  const CMatrix a = random_matrix(static_cast<std::size_t>(m),
                                  static_cast<std::size_t>(k), rng);
  const CMatrix b = random_matrix(static_cast<std::size_t>(k),
                                  static_cast<std::size_t>(n), rng);
  CMatrix c1 = random_matrix(static_cast<std::size_t>(m),
                             static_cast<std::size_t>(n), rng);
  CMatrix c2 = c1;
  const cplx alpha{1.3, -0.4}, beta{0.2, 0.9};
  gemm(alpha, a, b, beta, c1);
  naive_gemm(alpha, a, b, beta, c2);
  double err = 0.0;
  for (std::size_t j = 0; j < c1.cols(); ++j)
    for (std::size_t i = 0; i < c1.rows(); ++i)
      err = std::max(err, std::abs(c1(i, j) - c2(i, j)));
  EXPECT_LT(err, 1e-11 * static_cast<double>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{4, 2, 128},
                      std::tuple{5, 3, 7}, std::tuple{64, 64, 64},
                      std::tuple{74, 9, 64}, std::tuple{13, 1, 250},
                      std::tuple{8, 2, 129}, std::tuple{3, 5, 2}));

TEST(Gemm, HermitianVariantMatchesNaive) {
  Rng rng(99);
  const CMatrix a = random_matrix(37, 12, rng);
  const CMatrix b = random_matrix(37, 5, rng);
  CMatrix c(12, 5);
  gemm_herm_a(cplx{1.0}, a, b, cplx{0.0}, c);
  const CMatrix ah = a.hermitian();
  CMatrix ref(12, 5);
  naive_gemm(cplx{1.0}, ah, b, cplx{0.0}, ref);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 12; ++i)
      EXPECT_NEAR(std::abs(c(i, j) - ref(i, j)), 0.0, 1e-12);
}

TEST(Lu, SolveRandomSystem) {
  Rng rng(5);
  const std::size_t n = 40;
  const CMatrix a = random_matrix(n, n, rng);
  cvec x_true(n);
  rng.fill_cnormal(x_true);
  cvec b(n);
  matvec(a, x_true, b);
  const cvec x = lu_solve(a, b);
  EXPECT_LT(rel_l2_diff(x, x_true), 1e-10);
}

TEST(Lu, HermitianSolve) {
  Rng rng(6);
  const std::size_t n = 25;
  const CMatrix a = random_matrix(n, n, rng);
  LuFactors lu(a);
  cvec x_true(n), b(n);
  rng.fill_cnormal(x_true);
  // b = A^H x_true
  const CMatrix ah = a.hermitian();
  matvec(ah, x_true, b);
  const cvec x = lu.solve_herm(b);
  EXPECT_LT(rel_l2_diff(x, x_true), 1e-10);
}

TEST(Lu, PivotRatioDetectsConditioning) {
  CMatrix ident(8, 8);
  for (std::size_t i = 0; i < 8; ++i) ident(i, i) = 1.0;
  LuFactors lu(std::move(ident));
  EXPECT_DOUBLE_EQ(lu.pivot_ratio(), 1.0);
}

TEST(Banded, ApplyMatchesDense) {
  // A 12->20 periodic band matrix with random band coefficients.
  Rng rng(7);
  PeriodicBandMatrix w(20, 12, 5);
  for (std::size_t r = 0; r < 20; ++r) {
    w.set_first(r, (r * 3 + 5) % 12);
    for (std::size_t j = 0; j < 5; ++j) w.coeff(r, j) = rng.uniform(-1, 1);
  }
  cvec x(12), y(20);
  rng.fill_cnormal(x);
  w.apply(x, y);
  const auto dense = w.to_dense();
  for (std::size_t r = 0; r < 20; ++r) {
    cplx acc{};
    for (std::size_t c = 0; c < 12; ++c) acc += dense[r][c] * x[c];
    EXPECT_NEAR(std::abs(y[r] - acc), 0.0, 1e-13);
  }
}

TEST(Banded, AdjointIsTranspose) {
  Rng rng(8);
  PeriodicBandMatrix w(16, 10, 4);
  for (std::size_t r = 0; r < 16; ++r) {
    w.set_first(r, (2 * r) % 10);
    for (std::size_t j = 0; j < 4; ++j) w.coeff(r, j) = rng.uniform(-1, 1);
  }
  cvec x(10), y(16), wx(16), wty(10);
  rng.fill_cnormal(x);
  rng.fill_cnormal(y);
  w.apply(x, wx);
  w.apply_adjoint(y, wty);
  // <W x, y> == <x, W^T y> for real coefficients.
  EXPECT_NEAR(std::abs(cdot(wx, y) - cdot(x, wty)), 0.0, 1e-12);
}

TEST(Kernels, DotNormAxpy) {
  cvec x{{1, 2}, {3, -1}}, y{{0, 1}, {2, 2}};
  const cplx d = cdot(x, y);
  // conj(1+2i)*(0+i) + conj(3-i)*(2+2i) = (1-2i)(i) + (3+i)(2+2i)
  // = (2 + i) + (4 + 8i) = 6 + 9i
  EXPECT_NEAR(std::abs(d - cplx(6, 9)), 0.0, 1e-14);
  EXPECT_NEAR(nrm2(x), std::sqrt(15.0), 1e-14);
  axpy(cplx{2.0}, x, y);
  EXPECT_NEAR(std::abs(y[0] - cplx(2, 5)), 0.0, 1e-14);
}

TEST(Kernels, DiagOps) {
  cvec d{{2, 0}, {0, 1}}, x{{1, 1}, {3, 0}}, y(2);
  diag_mul(d, x, y);
  EXPECT_NEAR(std::abs(y[0] - cplx(2, 2)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - cplx(0, 3)), 0.0, 1e-14);
  diag_mul_conj(d, x, y);
  EXPECT_NEAR(std::abs(y[1] - cplx(0, -3)), 0.0, 1e-14);
}

TEST(Matrix, HermitianTranspose) {
  Rng rng(9);
  const CMatrix a = random_matrix(6, 4, rng);
  const CMatrix ah = a.hermitian();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(ah(j, i), std::conj(a(i, j)));
}

}  // namespace
}  // namespace ffw
