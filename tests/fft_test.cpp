// FFT substrate: radix-2 and Bluestein paths against the O(N^2) DFT,
// round trips, Parseval, and spectral resampling of band-limited signals
// (the exact-interpolation oracle used by the MLFMA interp tests).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "linalg/kernels.hpp"

namespace ffw {
namespace {

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesReferenceDft) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Rng rng(n);
  cvec x(n);
  rng.fill_cnormal(x);
  const cvec ref = dft_reference(x);
  cvec got(x.begin(), x.end());
  fft(got);
  EXPECT_LT(rel_l2_diff(got, ref), 1e-11) << "n=" << n;
}

TEST_P(FftSizes, RoundTrip) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Rng rng(n + 1);
  cvec x(n);
  rng.fill_cnormal(x);
  cvec y(x.begin(), x.end());
  fft(y);
  ifft(y);
  EXPECT_LT(rel_l2_diff(y, x), 1e-12) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16, 30, 64,
                                           74, 100, 110, 127, 128, 254));

TEST(Fft, ParsevalPow2) {
  Rng rng(3);
  cvec x(64);
  rng.fill_cnormal(x);
  const double tx = nrm2(x);
  cvec y(x.begin(), x.end());
  fft(y);
  EXPECT_NEAR(nrm2(y), tx * 8.0, 1e-10);  // ||X|| = sqrt(N) ||x||
}

TEST(Fft, DeltaTransformsToConstant) {
  cvec x(16, cplx{});
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx{1.0}), 0.0, 1e-13);
}

TEST(SpectralResample, ExactForBandLimited) {
  // A signal band-limited to |m| <= 5, sampled at 16 points, resampled to
  // 38 points, must match the analytic evaluation exactly.
  const int band = 5;
  Rng rng(17);
  cvec coeff(static_cast<std::size_t>(2 * band + 1));
  rng.fill_cnormal(coeff);
  auto eval = [&](double theta) {
    cplx acc{};
    for (int m = -band; m <= band; ++m) {
      acc += coeff[static_cast<std::size_t>(m + band)] *
             cplx{std::cos(m * theta), std::sin(m * theta)};
    }
    return acc;
  };
  const std::size_t n = 16, m = 38;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = eval(2.0 * pi * static_cast<double>(i) / n);
  const cvec up = spectral_resample(x, m);
  for (std::size_t i = 0; i < m; ++i) {
    const cplx want = eval(2.0 * pi * static_cast<double>(i) / m);
    EXPECT_NEAR(std::abs(up[i] - want), 0.0, 1e-11);
  }
}

TEST(SpectralResample, DownsampleBandLimited) {
  const int band = 3;
  Rng rng(18);
  cvec coeff(static_cast<std::size_t>(2 * band + 1));
  rng.fill_cnormal(coeff);
  auto eval = [&](double theta) {
    cplx acc{};
    for (int mm = -band; mm <= band; ++mm) {
      acc += coeff[static_cast<std::size_t>(mm + band)] *
             cplx{std::cos(mm * theta), std::sin(mm * theta)};
    }
    return acc;
  };
  const std::size_t n = 40, m = 9;  // 9 > 2*3+1 = 7: no aliasing
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = eval(2.0 * pi * static_cast<double>(i) / n);
  const cvec down = spectral_resample(x, m);
  for (std::size_t i = 0; i < m; ++i) {
    const cplx want = eval(2.0 * pi * static_cast<double>(i) / m);
    EXPECT_NEAR(std::abs(down[i] - want), 0.0, 1e-11);
  }
}

}  // namespace
}  // namespace ffw
