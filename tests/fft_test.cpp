// FFT substrate: radix-2 and Bluestein paths against the O(N^2) DFT,
// round trips, Parseval, and spectral resampling of band-limited signals
// (the exact-interpolation oracle used by the MLFMA interp tests).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/fft2.hpp"
#include "linalg/kernels.hpp"

namespace ffw {
namespace {

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesReferenceDft) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Rng rng(n);
  cvec x(n);
  rng.fill_cnormal(x);
  const cvec ref = dft_reference(x);
  cvec got(x.begin(), x.end());
  fft(got);
  EXPECT_LT(rel_l2_diff(got, ref), 1e-11) << "n=" << n;
}

TEST_P(FftSizes, RoundTrip) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Rng rng(n + 1);
  cvec x(n);
  rng.fill_cnormal(x);
  cvec y(x.begin(), x.end());
  fft(y);
  ifft(y);
  EXPECT_LT(rel_l2_diff(y, x), 1e-12) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16, 30, 64,
                                           74, 100, 110, 127, 128, 254));

TEST(Fft, ParsevalPow2) {
  Rng rng(3);
  cvec x(64);
  rng.fill_cnormal(x);
  const double tx = nrm2(x);
  cvec y(x.begin(), x.end());
  fft(y);
  EXPECT_NEAR(nrm2(y), tx * 8.0, 1e-10);  // ||X|| = sqrt(N) ||x||
}

TEST(Fft, DeltaTransformsToConstant) {
  cvec x(16, cplx{});
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx{1.0}), 0.0, 1e-13);
}

TEST(SpectralResample, ExactForBandLimited) {
  // A signal band-limited to |m| <= 5, sampled at 16 points, resampled to
  // 38 points, must match the analytic evaluation exactly.
  const int band = 5;
  Rng rng(17);
  cvec coeff(static_cast<std::size_t>(2 * band + 1));
  rng.fill_cnormal(coeff);
  auto eval = [&](double theta) {
    cplx acc{};
    for (int m = -band; m <= band; ++m) {
      acc += coeff[static_cast<std::size_t>(m + band)] *
             cplx{std::cos(m * theta), std::sin(m * theta)};
    }
    return acc;
  };
  const std::size_t n = 16, m = 38;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = eval(2.0 * pi * static_cast<double>(i) / n);
  const cvec up = spectral_resample(x, m);
  for (std::size_t i = 0; i < m; ++i) {
    const cplx want = eval(2.0 * pi * static_cast<double>(i) / m);
    EXPECT_NEAR(std::abs(up[i] - want), 0.0, 1e-11);
  }
}

TEST(SpectralResample, DownsampleBandLimited) {
  const int band = 3;
  Rng rng(18);
  cvec coeff(static_cast<std::size_t>(2 * band + 1));
  rng.fill_cnormal(coeff);
  auto eval = [&](double theta) {
    cplx acc{};
    for (int mm = -band; mm <= band; ++mm) {
      acc += coeff[static_cast<std::size_t>(mm + band)] *
             cplx{std::cos(mm * theta), std::sin(mm * theta)};
    }
    return acc;
  };
  const std::size_t n = 40, m = 9;  // 9 > 2*3+1 = 7: no aliasing
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = eval(2.0 * pi * static_cast<double>(i) / n);
  const cvec down = spectral_resample(x, m);
  for (std::size_t i = 0; i < m; ++i) {
    const cplx want = eval(2.0 * pi * static_cast<double>(i) / m);
    EXPECT_NEAR(std::abs(down[i] - want), 0.0, 1e-11);
  }
}

// 2-D oracle: the row-column transform must equal the tensor product of
// 1-D reference DFTs — transform every row with dft_reference, then
// every column of the result.
cvec dft2_reference(const cvec& x, std::size_t rows, std::size_t cols) {
  cvec out(x.begin(), x.end());
  for (std::size_t r = 0; r < rows; ++r) {
    const cvec row = dft_reference(
        cvec(out.begin() + static_cast<std::ptrdiff_t>(r * cols),
             out.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols)));
    std::copy(row.begin(), row.end(),
              out.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  for (std::size_t c = 0; c < cols; ++c) {
    cvec col(rows);
    for (std::size_t r = 0; r < rows; ++r) col[r] = out[r * cols + c];
    col = dft_reference(col);
    for (std::size_t r = 0; r < rows; ++r) out[r * cols + c] = col[r];
  }
  return out;
}

class Fft2Sizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Fft2Sizes, MatchesTensorProductReference) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 131 + cols);
  cvec x(rows * cols);
  rng.fill_cnormal(x);
  const cvec want = dft2_reference(x, rows, cols);
  Fft2Plan<double> plan(rows, cols);
  cvec got(x.begin(), x.end());
  plan.forward(got);
  EXPECT_LT(rel_l2_diff(got, want), 1e-11) << rows << "x" << cols;
  plan.inverse(got);
  EXPECT_LT(rel_l2_diff(got, x), 1e-12) << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Fft2Sizes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      // Rectangular and non-power-of-two (Bluestein rows
                      // and/or columns).
                      std::pair<std::size_t, std::size_t>{8, 12},
                      std::pair<std::size_t, std::size_t>{12, 8},
                      std::pair<std::size_t, std::size_t>{7, 7},
                      std::pair<std::size_t, std::size_t>{15, 27},
                      std::pair<std::size_t, std::size_t>{30, 10}));

TEST(Fft2, ParsevalOnPaddedPanel) {
  const std::size_t rows = 32, cols = 32;
  Rng rng(91);
  cvec x(rows * cols);
  rng.fill_cnormal(x);
  const double tx = nrm2(x);
  Fft2Plan<double> plan(rows, cols);
  plan.forward(x);
  EXPECT_NEAR(nrm2(x), tx * std::sqrt(static_cast<double>(rows * cols)),
              1e-9 * tx);
}

TEST(Fft2, BatchedPanelsMatchIndividualTransforms) {
  const std::size_t rows = 16, cols = 16, count = 5;
  Rng rng(92);
  cvec batch(rows * cols * count);
  rng.fill_cnormal(batch);
  Fft2Plan<double> plan(rows, cols);
  cvec singles(batch.begin(), batch.end());
  for (std::size_t p = 0; p < count; ++p) {
    plan.forward(
        std::span{singles.data() + p * plan.size(), plan.size()});
  }
  plan.forward(batch, count);
  EXPECT_LT(rel_l2_diff(batch, singles), 1e-13);
  plan.inverse(batch, count);
  for (std::size_t p = 0; p < count; ++p) {
    plan.inverse(std::span{singles.data() + p * plan.size(), plan.size()});
  }
  EXPECT_LT(rel_l2_diff(batch, singles), 1e-13);
}

// The fp32 plan instantiation used by Precision::kMixed backends: same
// math, float-level accuracy.
TEST(Fft2, FloatPlanMatchesDoubleReference) {
  const std::size_t rows = 16, cols = 24;
  Rng rng(93);
  cvec x(rows * cols);
  rng.fill_cnormal(x);
  const cvec want = dft2_reference(x, rows, cols);
  std::vector<std::complex<float>> xf(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xf[i] = std::complex<float>(static_cast<float>(x[i].real()),
                                static_cast<float>(x[i].imag()));
  }
  Fft2Plan<float> plan(rows, cols);
  plan.forward(std::span{xf});
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += std::norm(cplx{xf[i].real(), xf[i].imag()} - want[i]);
    den += std::norm(want[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-5);
}

// Satellite regression: fft()/ifft() now route through a memoized
// per-length plan cache — repeated transforms of one length must be one
// miss and the rest hits, and the cache stays bounded.
TEST(FftPlanCache, RepeatLengthsHitTheCache) {
  fft_plan_cache_clear();
  Rng rng(94);
  cvec x(96);  // non-pow2: the expensive Bluestein setup is what caching saves
  rng.fill_cnormal(x);
  for (int rep = 0; rep < 8; ++rep) {
    cvec y(x.begin(), x.end());
    fft(y);
    ifft(y);
    EXPECT_LT(rel_l2_diff(y, x), 1e-11);
  }
  const FftPlanCacheStats st = fft_plan_cache_stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 15u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(FftPlanCache, EvictionKeepsCacheBounded) {
  fft_plan_cache_clear();
  // Touch far more distinct lengths than the LRU capacity holds.
  for (std::size_t n = 1; n <= 200; ++n) (void)fft_plan(n);
  const FftPlanCacheStats st = fft_plan_cache_stats();
  EXPECT_EQ(st.misses, 200u);
  EXPECT_LE(st.entries, 64u);
  // Evicted plans rebuild correctly (and a held shared_ptr stays valid).
  const auto plan = fft_plan(1);
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->size(), 1u);
  cvec x{cplx{2.5, -1.0}};
  plan->forward(x);
  EXPECT_NEAR(std::abs(x[0] - cplx{2.5, -1.0}), 0.0, 1e-15);
}

}  // namespace
}  // namespace ffw
