// Transmitter/receiver operator tests: geometry, dense-vs-matrix-free
// G_R paths, adjoint identity, incident fields.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "greens/transceivers.hpp"
#include "linalg/kernels.hpp"

namespace ffw {
namespace {

TEST(Ring, FullRingGeometry) {
  const auto pos = ring_positions(8, 2.0);
  ASSERT_EQ(pos.size(), 8u);
  EXPECT_NEAR(pos[0].x, 2.0, 1e-14);
  EXPECT_NEAR(pos[0].y, 0.0, 1e-14);
  EXPECT_NEAR(pos[2].x, 0.0, 1e-13);
  EXPECT_NEAR(pos[2].y, 2.0, 1e-13);
  for (const auto& p : pos) EXPECT_NEAR(norm(p), 2.0, 1e-13);
}

TEST(Ring, LimitedArc) {
  // Quarter arc on the right side (paper Fig. 2 style).
  const auto pos = ring_positions(5, 3.0, -pi / 4, pi / 4);
  for (const auto& p : pos) {
    EXPECT_GT(p.x, 0.0);
    const double a = angle_of(p);
    EXPECT_GE(a, -pi / 4 - 1e-12);
    EXPECT_LT(a, pi / 4);
  }
}

TEST(Transceivers, DenseAndMatrixFreePathsAgree) {
  Grid grid(32);
  const auto tx = ring_positions(4, grid.domain());
  const auto rx = ring_positions(16, grid.domain());
  Transceivers dense(grid, tx, rx);              // default budget: cached
  Transceivers lazy(grid, tx, rx, /*budget=*/0); // forced matrix-free
  EXPECT_TRUE(dense.gr_materialized());
  EXPECT_FALSE(lazy.gr_materialized());

  Rng rng(51);
  cvec x(grid.num_pixels());
  rng.fill_cnormal(x);
  cvec y1(16), y2(16);
  dense.apply_gr(x, y1);
  lazy.apply_gr(x, y2);
  EXPECT_LT(rel_l2_diff(y1, y2), 1e-13);

  cvec u(16), g1(grid.num_pixels()), g2(grid.num_pixels());
  rng.fill_cnormal(u);
  dense.apply_gr_herm(u, g1);
  lazy.apply_gr_herm(u, g2);
  EXPECT_LT(rel_l2_diff(g1, g2), 1e-13);
}

TEST(Transceivers, GrAdjointIdentity) {
  Grid grid(32);
  Transceivers trx(grid, ring_positions(2, grid.domain()),
                   ring_positions(10, grid.domain()));
  Rng rng(52);
  cvec x(grid.num_pixels()), u(10), gx(10), ghu(grid.num_pixels());
  rng.fill_cnormal(x);
  rng.fill_cnormal(u);
  trx.apply_gr(x, gx);
  trx.apply_gr_herm(u, ghu);
  EXPECT_NEAR(std::abs(cdot(u, gx) - cdot(ghu, x)), 0.0,
              1e-12 * std::abs(cdot(u, gx)));
}

TEST(Transceivers, IncidentFieldIsLineSourceKernel) {
  Grid grid(16);
  const auto tx = ring_positions(3, grid.domain());
  Transceivers trx(grid, tx, ring_positions(4, grid.domain()));
  const cvec inc = trx.incident_field(1);
  // Spot check a pixel against the raw kernel.
  const Vec2 p = grid.pixel_center(3, 7);
  const cplx want = g0_point(grid.k0(), norm(p - tx[1]));
  EXPECT_NEAR(std::abs(inc[grid.pixel_index(3, 7)] - want), 0.0, 1e-14);
}

TEST(Transceivers, ReceiverKernelIncludesSourceFactor) {
  Grid grid(16);
  const auto rx = ring_positions(4, grid.domain());
  Transceivers trx(grid, ring_positions(2, grid.domain()), rx);
  // Apply G_R to a delta at one pixel: result must be sf * g0.
  cvec x(grid.num_pixels(), cplx{});
  x[grid.pixel_index(5, 5)] = 1.0;
  cvec y(4);
  trx.apply_gr(x, y);
  const Vec2 p = grid.pixel_center(5, 5);
  for (int r = 0; r < 4; ++r) {
    const cplx want = source_factor(grid) *
                      g0_point(grid.k0(), norm(rx[static_cast<std::size_t>(r)] - p));
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(r)] - want), 0.0, 1e-14);
  }
}

}  // namespace
}  // namespace ffw
