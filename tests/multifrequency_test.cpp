// Frequency as the third parallel axis (ROADMAP item 3): the
// multifrequency option-threading and noise-seed regressions, the
// continuation driver (per-band stopping, checkpoint/resume), and the
// band-parallel ladder (dbim/continuation_parallel.hpp) against the
// serial one.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "common/rng.hpp"
#include "dbim/continuation.hpp"
#include "dbim/continuation_parallel.hpp"
#include "dbim/multifrequency.hpp"
#include "obs/obs.hpp"
#include "perfmodel/freq_model.hpp"
#include "phantom/phantom.hpp"

namespace ffw {
namespace {

std::uint64_t counter(obs::Counter c) {
  return obs::counter_totals(0)[static_cast<std::size_t>(c)];
}

// ---------------------------------------------------------------------
// Regression (dropped options): the ladder used to construct default
// DbimOptions per stage, silently discarding the caller's backend
// routing, precision and regularisation choices. The caller's options
// must demonstrably act inside every stage.

TEST(MultiFrequencyOptionsBug, BackendRoutingReachesEveryStage) {
  obs::set_enabled(true);
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.2, 0.1}, 0.5, cplx{0.01, 0.0});

  MultiFrequencyOptions opts;
  opts.dbim.backend = BackendKind::kAuto;  // starts every solve on CBS
  const std::uint64_t cbs0 = counter(obs::Counter::kCbsIterations);
  const MultiFrequencyResult mf =
      multifrequency_reconstruct(cfg, truth, {{1, 2}, {0, 2}}, opts);
  const std::uint64_t cbs1 = counter(obs::Counter::kCbsIterations);
  obs::set_enabled(false);

  ASSERT_EQ(mf.stage_history.size(), 2u);
  for (const DbimHistory& h : mf.stage_history) {
    EXPECT_EQ(h.backend, BackendKind::kAuto);
  }
  // The routing actually ran: CBS iterations were spent inside the
  // ladder's stages (zero pre-fix, when stages rebuilt default options).
  EXPECT_GT(cbs1, cbs0);
}

TEST(MultiFrequencyOptionsBug, MixedPrecisionRunsInsideTheLadder) {
  obs::set_enabled(true);
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{-0.2, 0.2}, 0.5, cplx{0.01, 0.0});

  MultiFrequencyOptions opts;
  opts.mixed_precision = true;
  const std::uint64_t rr0 = counter(obs::Counter::kRefinementRounds);
  const MultiFrequencyResult mf =
      multifrequency_reconstruct(cfg, truth, {{1, 2}, {0, 2}}, opts);
  const std::uint64_t rr1 = counter(obs::Counter::kRefinementRounds);
  obs::set_enabled(false);

  ASSERT_EQ(mf.stage_residuals.size(), 2u);
  // Iterative-refinement rounds prove the fp32 engine carried the
  // Krylov sweeps inside the stages.
  EXPECT_GT(rr1, rr0);
}

// ---------------------------------------------------------------------
// Regression (correlated noise): every stage used to synthesise its
// measurements from the one ScenarioConfig::noise_seed, so the
// "independent experiments per frequency" shared a noise realization.

TEST(MultiFrequencyNoiseBug, PerStageSeedsDecorrelateStages) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  cfg.measurement_noise = 0.05;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.0, 0.3}, 0.5, cplx{0.01, 0.0});

  // Reference: one 5-iteration run. Its history[4] is the residual of
  // the 4-times-updated contrast against the seed-42 measurements.
  MultiFrequencyOptions legacy;
  legacy.per_stage_noise_seeds = false;
  const MultiFrequencyResult one =
      multifrequency_reconstruct(cfg, truth, {{0, 5}}, legacy);
  ASSERT_EQ(one.stage_residuals[0].size(), 5u);
  const double ref = one.stage_residuals[0][4];

  // Legacy seeds: an equal-nx two-stage split sees the *same* data in
  // both stages (the bug), so stage 1's initial residual reproduces the
  // one-run trajectory.
  const MultiFrequencyResult corr =
      multifrequency_reconstruct(cfg, truth, {{0, 4}, {0, 4}}, legacy);
  ASSERT_FALSE(corr.stage_residuals[1].empty());
  EXPECT_NEAR(corr.stage_residuals[1][0], ref, 2e-3 * ref);

  // Per-stage seeds (the fix, default): stage 1 measures a fresh noise
  // realization, so the image fitted to stage 0's realization starts
  // visibly off the correlated trajectory. Fails pre-fix.
  const MultiFrequencyResult decorr =
      multifrequency_reconstruct(cfg, truth, {{0, 4}, {0, 4}});
  ASSERT_FALSE(decorr.stage_residuals[1].empty());
  EXPECT_GT(std::abs(decorr.stage_residuals[1][0] - ref), 1e-2 * ref);
}

TEST(MultiFrequencyNoiseBug, MixSeedSeparatesAndIsDeterministic) {
  EXPECT_NE(mix_seed(42, 0), mix_seed(42, 1));
  EXPECT_NE(mix_seed(42, 0), 42u);
  EXPECT_EQ(mix_seed(42, 3), mix_seed(42, 3));
  EXPECT_NE(mix_seed(42, 1), mix_seed(43, 1));
}

// ---------------------------------------------------------------------
// Regression (equal-nx drift): the verbatim hand-off. Pre-fix the
// warm start round-tripped contrast -> delta_eps -> contrast through a
// divide/multiply by k0^2, drifting equal-resolution repeats by an ulp.

TEST(MultiFrequencyWarmStartBug, EqualResolutionHandOffIsBitExact) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.3, 0.0}, 0.5, cplx{0.01, 0.0});

  const MultiFrequencyResult a =
      multifrequency_reconstruct(cfg, truth, {{0, 4}});
  // A trailing zero-iteration stage must hand the image through
  // untouched: same permittivity to the bit.
  const MultiFrequencyResult b =
      multifrequency_reconstruct(cfg, truth, {{0, 4}, {0, 0}});
  ASSERT_EQ(a.permittivity.size(), b.permittivity.size());
  EXPECT_EQ(0, std::memcmp(a.permittivity.data(), b.permittivity.data(),
                           a.permittivity.size() * sizeof(cplx)));
}

TEST(ContinuationWarmStart, EqualNxIsVerbatimAndUpsampleRescales) {
  Rng rng(7);
  cvec c(64 * 64);
  rng.fill_cnormal(c);
  const cvec same = continuation_warm_start(c, 64, 64, 39.5, 157.9);
  ASSERT_EQ(same.size(), c.size());
  EXPECT_EQ(0, std::memcmp(same.data(), c.data(), c.size() * sizeof(cplx)));

  const cvec up = continuation_warm_start(c, 64, 128, 10.0, 40.0);
  EXPECT_EQ(up.size(), std::size_t{128} * 128);
  // delta_eps is conserved: contrast scales by k2_next / k2_prev = 4 at
  // the coincident coarse sample points.
  EXPECT_NEAR(std::abs(up[0]), std::abs(c[0]) * 4.0, 1e-9 * std::abs(c[0]));
}

// ---------------------------------------------------------------------
// Continuation driver: stopping rules, ladder-vs-single quality and
// checkpoint/resume.

TEST(Continuation, PlateauAndStopReason) {
  EXPECT_FALSE(continuation_plateau({1.0, 0.5, 0.25}, 0, 0.02));
  EXPECT_FALSE(continuation_plateau({1.0, 0.5}, 2, 0.02));     // too short
  EXPECT_FALSE(continuation_plateau({1.0, 0.5, 0.25}, 2, 0.02));
  EXPECT_TRUE(continuation_plateau({1.0, 0.5, 0.499, 0.498}, 2, 0.02));

  FrequencyBand band;
  band.max_iterations = 4;
  band.residual_tol = 0.1;
  band.plateau_window = 2;
  band.plateau_rtol = 0.02;
  EXPECT_EQ(continuation_stop_reason({1.0, 0.5, 0.05}, band),
            StageStop::kResidualTol);
  EXPECT_EQ(continuation_stop_reason({1.0, 0.9, 0.89, 0.889}, band),
            StageStop::kPlateau);
  EXPECT_EQ(continuation_stop_reason({1.0, 0.8, 0.6, 0.4}, band),
            StageStop::kIterations);
  band.residual_tol = 0.0;
  band.plateau_window = 0;
  EXPECT_EQ(continuation_stop_reason({1.0, 0.8}, band),
            StageStop::kDegenerate);
}

TEST(Continuation, PlateauCutsABandShort) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.1, -0.2}, 0.5, cplx{0.01, 0.0});

  FrequencyLadder ladder;
  ladder.bands.push_back({0, 20, 0.0, 1, 0.9});  // "progress < 90%" stop
  const ContinuationResult res = continuation_reconstruct(cfg, truth, ladder);
  ASSERT_EQ(res.stages.size(), 1u);
  EXPECT_EQ(res.stages[0].stop, StageStop::kPlateau);
  EXPECT_LT(res.stages[0].iterations, 20);
}

TEST(Continuation, LadderBeatsSingleFrequencyAtHighContrast) {
  ScenarioConfig cfg;
  cfg.nx = 64;
  cfg.num_transmitters = 8;
  cfg.num_receivers = 24;
  Grid grid(cfg.nx);
  const cvec truth = disks(grid, {{Vec2{0.0, 0.0}, 1.4, cplx{0.08, 0.0}}});

  const FrequencyLadder ladder = FrequencyLadder::geometric(2, 8);
  const ContinuationResult mf = continuation_reconstruct(cfg, truth, ladder);
  ASSERT_EQ(mf.stages.size(), 2u);
  EXPECT_TRUE(mf.completed);

  Scenario scene(cfg, truth);
  DbimOptions opts;
  opts.max_iterations = 8;
  const DbimResult single = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);

  const cvec mf_contrast = contrast_from_permittivity(grid, mf.permittivity);
  EXPECT_LT(image_rmse(mf_contrast, scene.true_contrast()),
            image_rmse(single.contrast, scene.true_contrast()));
}

TEST(Continuation, ResumeMidLadderIsBitIdentical) {
  const char* path = "/tmp/ffw_freq_resume.ckpt";
  std::remove(path);
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  cfg.measurement_noise = 0.03;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.2, -0.1}, 0.5, cplx{0.015, 0.0});
  FrequencyLadder ladder;
  ladder.bands.push_back({1, 4});
  ladder.bands.push_back({0, 4});

  const ContinuationResult ref = continuation_reconstruct(cfg, truth, ladder);
  ASSERT_TRUE(ref.completed);

  ContinuationOptions crash;
  crash.checkpoint_path = path;
  crash.stop_after_stage = 0;
  const ContinuationResult partial =
      continuation_reconstruct(cfg, truth, ladder, crash);
  EXPECT_FALSE(partial.completed);
  ASSERT_EQ(partial.stages.size(), 1u);

  ContinuationOptions resume;
  resume.checkpoint_path = path;
  resume.resume_from_checkpoint = true;
  const ContinuationResult resumed =
      continuation_reconstruct(cfg, truth, ladder, resume);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.first_stage, 1);
  ASSERT_EQ(resumed.stages.size(), 1u);
  EXPECT_EQ(resumed.stages[0].band, 1);

  ASSERT_EQ(resumed.permittivity.size(), ref.permittivity.size());
  EXPECT_EQ(0, std::memcmp(resumed.permittivity.data(),
                           ref.permittivity.data(),
                           ref.permittivity.size() * sizeof(cplx)));
  std::remove(path);
}

// ---------------------------------------------------------------------
// The frequency partition and the band-parallel driver.

TEST(FreqPartition, AutoShapesAndOwnership) {
  const FreqPartition p = make_freq_partition(4, 2);
  ASSERT_EQ(p.num_groups(), 2);
  EXPECT_EQ(p.nranks(), 4);
  EXPECT_EQ(p.groups[0].base, 0);
  EXPECT_EQ(p.groups[1].base, 2);
  EXPECT_EQ(p.groups[0].size(), 2);
  EXPECT_EQ(p.group_of(0), 0);
  EXPECT_EQ(p.group_of(1), 0);
  EXPECT_EQ(p.group_of(3), 1);
  EXPECT_EQ(p.owner_of_band(0), 0);
  EXPECT_EQ(p.owner_of_band(1), 1);
  EXPECT_EQ(p.owner_of_band(2), 0);
  EXPECT_EQ(p.ranks(1), (std::vector<int>{2, 3}));

  // More ranks than bands: the auto shape never exceeds the band count.
  const FreqPartition q = make_freq_partition(8, 2);
  EXPECT_EQ(q.num_groups(), 2);
  EXPECT_EQ(q.groups[0].size(), 4);

  // Explicit 3-D shape: 2 groups x (2 illum x 2 tree).
  const FreqPartition r = make_freq_partition(8, 4, 2, 2);
  ASSERT_EQ(r.num_groups(), 2);
  EXPECT_EQ(r.groups[0].illum_groups, 2);
  EXPECT_EQ(r.groups[0].tree_ranks, 2);
}

class BandParallel : public ::testing::TestWithParam<int> {};

TEST_P(BandParallel, MatchesSerialLadder) {
  const int p = GetParam();
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  cfg.leaf_pixel_side = 4;  // coarse rungs (nx=16) need a far-field level
  cfg.measurement_noise = 0.05;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.25, 0.1}, 0.5, cplx{0.015, 0.0});

  // Four bands (two coarse rungs, two fine) so p in {2, 4} maps to
  // single-rank band groups: the parallel arithmetic is then the serial
  // arithmetic, band-by-band, and must agree to reduction-order
  // rounding.
  FrequencyLadder ladder;
  ladder.bands.push_back({1, 3});
  ladder.bands.push_back({1, 2});
  ladder.bands.push_back({0, 3});
  ladder.bands.push_back({0, 2});

  const ContinuationResult serial = continuation_reconstruct(cfg, truth,
                                                             ladder);

  VCluster vc(p);
  const ContinuationResult par =
      continuation_reconstruct_parallel(vc, cfg, truth, ladder);

  ASSERT_EQ(par.stages.size(), serial.stages.size());
  for (std::size_t s = 0; s < serial.stages.size(); ++s) {
    EXPECT_EQ(par.stages[s].nx, serial.stages[s].nx);
    EXPECT_EQ(par.stages[s].iterations, serial.stages[s].iterations)
        << "band " << s;
    EXPECT_EQ(par.stages[s].stop, serial.stages[s].stop);
  }
  ASSERT_EQ(par.permittivity.size(), serial.permittivity.size());
  EXPECT_LE(image_rmse(par.permittivity, serial.permittivity), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Pools, BandParallel, ::testing::Values(2, 4));

TEST(BandParallel, TwoDimensionalWindowsReconstruct) {
  // 2 band groups x (1 illum x 2 tree ranks): exercises the windowed
  // 2-D driver inside band groups. Krylov trajectories differ from the
  // serial ladder's (blocked solves split differently), so parity is at
  // reconstruction accuracy, not bit level.
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  cfg.leaf_pixel_side = 4;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{-0.1, 0.2}, 0.5, cplx{0.01, 0.0});
  FrequencyLadder ladder;
  ladder.bands.push_back({1, 3});
  ladder.bands.push_back({0, 3});

  const ContinuationResult serial = continuation_reconstruct(cfg, truth,
                                                             ladder);
  VCluster vc(4);
  BandParallelOptions opts;
  opts.freq_groups = 2;
  opts.tree_ranks = 2;
  const ContinuationResult par =
      continuation_reconstruct_parallel(vc, cfg, truth, ladder, opts);
  ASSERT_EQ(par.stages.size(), 2u);
  EXPECT_LT(image_rmse(par.permittivity, serial.permittivity), 1e-3);
}

TEST(BandParallel, ResumeSkipsCompletedBands) {
  const char* path = "/tmp/ffw_freq_par_resume.ckpt";
  std::remove(path);
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  cfg.leaf_pixel_side = 4;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.0, -0.3}, 0.5, cplx{0.012, 0.0});
  FrequencyLadder ladder;
  ladder.bands.push_back({1, 3});
  ladder.bands.push_back({0, 3});

  // Serial run writes the stage-0 checkpoint, then "crashes".
  ContinuationOptions crash;
  crash.checkpoint_path = path;
  crash.stop_after_stage = 0;
  continuation_reconstruct(cfg, truth, ladder, crash);

  // The band-parallel driver resumes the same file: band 0 is skipped,
  // band 1 runs, and the result matches the uninterrupted serial run.
  const ContinuationResult ref = continuation_reconstruct(cfg, truth, ladder);
  VCluster vc(2);
  BandParallelOptions opts;
  opts.continuation.checkpoint_path = path;
  opts.continuation.resume_from_checkpoint = true;
  const ContinuationResult par =
      continuation_reconstruct_parallel(vc, cfg, truth, ladder, opts);
  EXPECT_EQ(par.first_stage, 1);
  ASSERT_EQ(par.stages.size(), 1u);
  EXPECT_EQ(par.stages[0].band, 1);
  EXPECT_LE(image_rmse(par.permittivity, ref.permittivity), 1e-10);
  std::remove(path);
}

// ---------------------------------------------------------------------
// The 3-D partition model.

TEST(FreqModel, ChoosesAValidPartitionAndPipelinesHelp) {
  CalibratedRates rates;
  rates.cmacs_per_s.fill(1.0e9);
  const ScalingModel model(MachineParams{}, rates);

  std::vector<FreqBandSpec> bands{{32, 8, 4}, {64, 8, 4}};
  const Freq3dChoice choice = choose_freq_partition(model, bands, 4, false);
  EXPECT_EQ(choice.freq_groups * choice.illum_groups * choice.tree_ranks, 4);
  EXPECT_LE(choice.freq_groups, 2);
  EXPECT_GT(choice.time_s, 0.0);
  // The chosen split is no slower than forcing everything through one
  // band group of pure illumination parallelism.
  EXPECT_LE(choice.time_s,
            freq_pipeline_time(model, bands, 1, 4, 1, false) + 1e-12);

  // Overlapping a second band group hides the second band's setup: the
  // pipeline is never slower than the one-group serial chain on the
  // same per-band resources (the warm-start link is microseconds, the
  // hidden setup is not).
  EXPECT_LE(freq_pipeline_time(model, bands, 2, 1, 1, false),
            freq_pipeline_time(model, bands, 1, 1, 1, false));
}

}  // namespace
}  // namespace ffw
