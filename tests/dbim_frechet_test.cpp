// Frechet operator validation: directional finite differences of the
// exact nonlinear forward map, and the adjoint inner-product identity.
// This is the part where the paper's eq. (6) typo would bite — the tests
// pin the correct variational form.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dbim/frechet.hpp"
#include "greens/transceivers.hpp"
#include "linalg/kernels.hpp"
#include "phantom/phantom.hpp"

namespace ffw {
namespace {

struct FrechetFixture {
  Grid grid{32};
  QuadTree tree{grid};
  MlfmaEngine engine{tree};
  Transceivers trx{grid, ring_positions(3, grid.domain()),
                   ring_positions(12, grid.domain())};
  cvec contrast;

  FrechetFixture() {
    const cvec de =
        gaussian_blob(grid, Vec2{0.2, 0.1}, 0.7, cplx{0.03, 0.0});
    contrast = contrast_from_permittivity(grid, de);
  }
};

/// phi_sca(O) for one illumination at high accuracy.
cvec scattered_field(FrechetFixture& s, ccspan contrast, int t) {
  BicgstabOptions opts;
  opts.tol = 1e-11;
  ForwardSolver fs(s.engine, opts);
  fs.set_contrast(contrast);
  const cvec inc = s.trx.incident_field(t);
  cvec phi(s.grid.num_pixels(), cplx{});
  copy(inc, phi);
  FFW_CHECK(fs.solve(inc, phi).converged);
  cvec ophi(phi.size());
  diag_mul(contrast, phi, ophi);
  cvec out(static_cast<std::size_t>(s.trx.num_receivers()));
  s.trx.apply_gr(ophi, out);
  return out;
}

TEST(Frechet, MatchesCentralFiniteDifference) {
  FrechetFixture s;
  const std::size_t n = s.grid.num_pixels();
  Rng rng(41);
  cvec v(n);
  rng.fill_cnormal(v);

  BicgstabOptions opts;
  opts.tol = 1e-11;
  ForwardSolver fs(s.engine, opts);
  fs.set_contrast(s.contrast);
  const cvec inc = s.trx.incident_field(0);
  cvec phi_b(n, cplx{});
  copy(inc, phi_b);
  ASSERT_TRUE(fs.solve(inc, phi_b).converged);

  FrechetOperator f(fs, s.trx, phi_b);
  cvec fv(static_cast<std::size_t>(s.trx.num_receivers()));
  f.apply(v, fv);

  // Central difference along v with a real step.
  const double h = 1e-4;
  cvec op(n), om(n);
  for (std::size_t i = 0; i < n; ++i) {
    op[i] = s.contrast[i] + h * v[i];
    om[i] = s.contrast[i] - h * v[i];
  }
  const cvec sp = scattered_field(s, op, 0);
  const cvec sm = scattered_field(s, om, 0);
  cvec fd(sp.size());
  for (std::size_t i = 0; i < fd.size(); ++i)
    fd[i] = (sp[i] - sm[i]) / (2.0 * h);

  EXPECT_LT(rel_l2_diff(fv, fd), 1e-5);
}

TEST(Frechet, AdjointInnerProductIdentity) {
  FrechetFixture s;
  const std::size_t n = s.grid.num_pixels();
  const std::size_t r = static_cast<std::size_t>(s.trx.num_receivers());
  Rng rng(43);
  cvec v(n), u(r);
  rng.fill_cnormal(v);
  rng.fill_cnormal(u);

  BicgstabOptions opts;
  opts.tol = 1e-11;
  ForwardSolver fs(s.engine, opts);
  fs.set_contrast(s.contrast);
  const cvec inc = s.trx.incident_field(1);
  cvec phi_b(n, cplx{});
  copy(inc, phi_b);
  ASSERT_TRUE(fs.solve(inc, phi_b).converged);

  FrechetOperator f(fs, s.trx, phi_b);
  cvec fv(r), fhu(n);
  f.apply(v, fv);
  f.apply_adjoint(u, fhu);
  const cplx lhs = cdot(u, fv);   // <u, F v>
  const cplx rhs = cdot(fhu, v);  // <F^H u, v>
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8 * std::abs(lhs));
}

// At zero background the Frechet operator reduces to the Born operator
// G_R diag(phi_inc).
TEST(Frechet, ReducesToBornAtZeroBackground) {
  FrechetFixture s;
  const std::size_t n = s.grid.num_pixels();
  Rng rng(44);
  cvec v(n);
  rng.fill_cnormal(v);

  ForwardSolver fs(s.engine);
  fs.set_contrast(cvec(n, cplx{}));
  const cvec inc = s.trx.incident_field(2);
  cvec phi_b(inc.begin(), inc.end());  // free space: phi_b == phi_inc

  FrechetOperator f(fs, s.trx, phi_b);
  cvec fv(static_cast<std::size_t>(s.trx.num_receivers()));
  f.apply(v, fv);

  cvec vphi(n), born(fv.size());
  diag_mul(v, ccspan{phi_b.data(), n}, vphi);
  s.trx.apply_gr(vphi, born);
  EXPECT_LT(rel_l2_diff(fv, born), 1e-8);
}

}  // namespace
}  // namespace ffw
