// The 2-D parallel DBIM driver must reproduce the serial driver for any
// (illumination groups x tree ranks) decomposition — same residual
// trajectory (up to floating-point ordering) and the same image.
#include <gtest/gtest.h>

#include "dbim/parallel_driver.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

struct SceneFixture {
  ScenarioConfig cfg;
  std::unique_ptr<Scenario> scene;

  SceneFixture() {
    cfg.nx = 32;
    cfg.num_transmitters = 8;
    cfg.num_receivers = 24;
    Grid grid(cfg.nx);
    scene = std::make_unique<Scenario>(
        cfg, gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));
  }
};

class Decompositions
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Decompositions, MatchesSerialDriver) {
  const auto [ig, tr] = GetParam();
  SceneFixture f;

  DbimOptions opts;
  opts.max_iterations = 6;
  const DbimResult serial = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);

  ParallelDbimConfig pcfg;
  pcfg.illum_groups = ig;
  pcfg.tree_ranks = tr;
  pcfg.dbim = opts;
  VCluster vc(ig * tr);
  const DbimResult par = dbim_reconstruct_parallel(
      vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
      pcfg);

  ASSERT_EQ(par.history.relative_residual.size(),
            serial.history.relative_residual.size());
  for (std::size_t i = 0; i < serial.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(par.history.relative_residual[i],
                serial.history.relative_residual[i],
                0.02 * serial.history.relative_residual[i])
        << "iteration " << i << " (ig=" << ig << ", tr=" << tr << ")";
  }
  EXPECT_LT(image_rmse(par.contrast, serial.contrast), 0.05)
      << "ig=" << ig << " tr=" << tr;
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Decompositions,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{4, 1},
                      std::pair{1, 4}, std::pair{2, 2}, std::pair{4, 4}));

TEST(ParallelDbim, IlluminationSyncTrafficIsTwicePerIteration) {
  // With tree_ranks = 1 the only communication is the two global
  // combines per DBIM iteration (gradient + step/cost scalars): message
  // count must scale with iterations, not with forward solves.
  SceneFixture f;
  ParallelDbimConfig pcfg;
  pcfg.illum_groups = 4;
  pcfg.tree_ranks = 1;
  pcfg.dbim.max_iterations = 3;
  VCluster vc(4);
  dbim_reconstruct_parallel(vc, f.scene->tree(), f.scene->transceivers(),
                            f.scene->measurements(), pcfg);
  const TrafficStats t = vc.traffic();
  EXPECT_GT(t.total_messages(), 0u);
  // Gradient combine: gather+bcast over 4 ranks = 6 msgs; cost and denom
  // allreduce (recursive doubling, 4 ranks): 8 msgs each; step scalar via
  // the same pattern. Bound: well under 100 messages per iteration, and
  // zero MLFMA halo bytes (tree not partitioned).
  EXPECT_LT(t.total_messages(), 100u * 3u);
}

}  // namespace
}  // namespace ffw
