// The 2-D parallel DBIM driver must reproduce the serial driver for any
// (illumination groups x tree ranks) decomposition — same residual
// trajectory (up to floating-point ordering) and the same image.
#include <gtest/gtest.h>

#include <cstdio>

#include "dbim/parallel_driver.hpp"
#include "phantom/setup.hpp"
#include "vcluster/fault.hpp"

namespace ffw {
namespace {

struct SceneFixture {
  ScenarioConfig cfg;
  std::unique_ptr<Scenario> scene;

  SceneFixture() {
    cfg.nx = 32;
    cfg.num_transmitters = 8;
    cfg.num_receivers = 24;
    Grid grid(cfg.nx);
    scene = std::make_unique<Scenario>(
        cfg, gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));
  }
};

class Decompositions
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Decompositions, MatchesSerialDriver) {
  const auto [ig, tr] = GetParam();
  SceneFixture f;

  DbimOptions opts;
  opts.max_iterations = 6;
  const DbimResult serial = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);

  ParallelDbimConfig pcfg;
  pcfg.illum_groups = ig;
  pcfg.tree_ranks = tr;
  pcfg.dbim = opts;
  VCluster vc(ig * tr);
  const DbimResult par = dbim_reconstruct_parallel(
      vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
      pcfg);

  ASSERT_EQ(par.history.relative_residual.size(),
            serial.history.relative_residual.size());
  for (std::size_t i = 0; i < serial.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(par.history.relative_residual[i],
                serial.history.relative_residual[i],
                0.02 * serial.history.relative_residual[i])
        << "iteration " << i << " (ig=" << ig << ", tr=" << tr << ")";
  }
  EXPECT_LT(image_rmse(par.contrast, serial.contrast), 0.05)
      << "ig=" << ig << " tr=" << tr;
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Decompositions,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{4, 1},
                      std::pair{1, 4}, std::pair{2, 2}, std::pair{4, 4}));

TEST(ParallelDbim, IlluminationSyncTrafficIsTwicePerIteration) {
  // With tree_ranks = 1 the only communication is the two global
  // combines per DBIM iteration (gradient + step/cost scalars): message
  // count must scale with iterations, not with forward solves.
  SceneFixture f;
  ParallelDbimConfig pcfg;
  pcfg.illum_groups = 4;
  pcfg.tree_ranks = 1;
  pcfg.dbim.max_iterations = 3;
  VCluster vc(4);
  dbim_reconstruct_parallel(vc, f.scene->tree(), f.scene->transceivers(),
                            f.scene->measurements(), pcfg);
  const TrafficStats t = vc.traffic();
  EXPECT_GT(t.total_messages(), 0u);
  // Gradient combine: gather+bcast over 4 ranks = 6 msgs; cost and denom
  // allreduce (recursive doubling, 4 ranks): 8 msgs each; step scalar via
  // the same pattern. Bound: well under 100 messages per iteration, and
  // zero MLFMA halo bytes (tree not partitioned).
  EXPECT_LT(t.total_messages(), 100u * 3u);
}

TEST(ParallelDbim, SurvivesInjectedCrashesViaCheckpointRestart) {
  // End-to-end crash recovery: two injected rank crashes mid-run must
  // leave the reconstruction indistinguishable from the fault-free one.
  // The driver's supervisor catches each RankFailure, recovers the
  // cluster and resumes from the last atomically-saved checkpoint.
  SceneFixture f;
  DbimOptions opts;
  opts.max_iterations = 6;
  // Warm-started background fields are deliberately not checkpointed
  // (they are re-derived on resume); with warm starts off every iterate
  // is a pure function of the checkpointed outer-loop state, so the
  // crashed run must match the fault-free run to rounding.
  opts.warm_start_fields = false;

  ParallelDbimConfig pcfg;
  pcfg.illum_groups = 2;
  pcfg.tree_ranks = 2;
  pcfg.dbim = opts;
  pcfg.checkpoint_path = "/tmp/ffw_dbim_e2e_ref.ckpt";

  constexpr int p = 4;
  VCluster vc_ref(p);
  const DbimResult ref = dbim_reconstruct_parallel(
      vc_ref, f.scene->tree(), f.scene->transceivers(),
      f.scene->measurements(), pcfg);

  // Place the crashes from the fault-free run's per-rank send totals:
  // rank 1 dies ~40% in, rank 2 ~70% in. The 1-based send counters are
  // cumulative across recoveries and every value is eventually reached,
  // so any at_send below the clean-run total is guaranteed to fire.
  const TrafficStats t = vc_ref.traffic();
  const auto sends_of = [&t](int r) {
    std::uint64_t s = 0;
    for (int d = 0; d < p; ++d) s += t.messages[r * p + d];
    return s;
  };
  ASSERT_GT(sends_of(1), 10u);
  ASSERT_GT(sends_of(2), 10u);

  FaultPlan plan;
  plan.crashes.push_back({1, sends_of(1) * 2 / 5});
  plan.crashes.push_back({2, sends_of(2) * 7 / 10});

  pcfg.checkpoint_path = "/tmp/ffw_dbim_e2e_crash.ckpt";
  pcfg.max_restarts = 2;
  VCluster vc_crash(p);
  vc_crash.install_fault_plan(plan);
  const DbimResult crashed = dbim_reconstruct_parallel(
      vc_crash, f.scene->tree(), f.scene->transceivers(),
      f.scene->measurements(), pcfg);

  EXPECT_EQ(vc_crash.fault_stats().crashes, 2u);
  ASSERT_EQ(crashed.history.relative_residual.size(),
            ref.history.relative_residual.size());
  for (std::size_t i = 0; i < ref.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(crashed.history.relative_residual[i],
                ref.history.relative_residual[i],
                1e-10 * ref.history.relative_residual[i])
        << "iteration " << i;
  }
  EXPECT_LE(image_rmse(crashed.contrast, ref.contrast), 1e-10);
  std::remove("/tmp/ffw_dbim_e2e_ref.ckpt");
  std::remove("/tmp/ffw_dbim_e2e_crash.ckpt");
}

TEST(ParallelDbim, CrashBeforeFirstCheckpointRestartsFromScratch) {
  // A crash before any iteration completes finds no checkpoint on disk;
  // the supervisor must rerun from scratch and still converge.
  SceneFixture f;
  ParallelDbimConfig pcfg;
  pcfg.illum_groups = 2;
  pcfg.tree_ranks = 1;
  pcfg.dbim.max_iterations = 3;
  pcfg.dbim.warm_start_fields = false;
  pcfg.checkpoint_path = "/tmp/ffw_dbim_e2e_early.ckpt";
  pcfg.max_restarts = 1;

  VCluster vc_ref(2);
  const DbimResult ref = dbim_reconstruct_parallel(
      vc_ref, f.scene->tree(), f.scene->transceivers(),
      f.scene->measurements(), pcfg);
  std::remove("/tmp/ffw_dbim_e2e_early.ckpt");

  FaultPlan plan;
  plan.crashes.push_back({1, 1});  // rank 1 dies on its very first send
  VCluster vc(2);
  vc.install_fault_plan(plan);
  const DbimResult got = dbim_reconstruct_parallel(
      vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
      pcfg);
  EXPECT_EQ(vc.fault_stats().crashes, 1u);
  EXPECT_LE(image_rmse(got.contrast, ref.contrast), 1e-12);
  std::remove("/tmp/ffw_dbim_e2e_early.ckpt");
}

TEST(ParallelDbim, ExhaustedRestartBudgetPropagatesTheFailure) {
  // With max_restarts = 0 the supervisor must not mask the failure.
  SceneFixture f;
  ParallelDbimConfig pcfg;
  pcfg.illum_groups = 2;
  pcfg.tree_ranks = 1;
  pcfg.dbim.max_iterations = 2;
  FaultPlan plan;
  plan.crashes.push_back({1, 1});
  VCluster vc(2);
  vc.install_fault_plan(plan);
  EXPECT_THROW(dbim_reconstruct_parallel(vc, f.scene->tree(),
                                         f.scene->transceivers(),
                                         f.scene->measurements(), pcfg),
               RankFailure);
}

}  // namespace
}  // namespace ffw
