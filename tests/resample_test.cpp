// Grid resampling used by the multi-frequency DBIM extension.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/kernels.hpp"
#include "phantom/phantom.hpp"
#include "phantom/resample.hpp"

namespace ffw {
namespace {

TEST(Resample, DownsampleAveragesBlocks) {
  // 4x4 map with known 2x2 block means.
  cvec v(16);
  for (int i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] = i;
  const cvec d = downsample2(v, 4);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_NEAR(d[0].real(), (0 + 1 + 4 + 5) / 4.0, 1e-14);
  EXPECT_NEAR(d[1].real(), (2 + 3 + 6 + 7) / 4.0, 1e-14);
  EXPECT_NEAR(d[2].real(), (8 + 9 + 12 + 13) / 4.0, 1e-14);
  EXPECT_NEAR(d[3].real(), (10 + 11 + 14 + 15) / 4.0, 1e-14);
}

TEST(Resample, DownsamplePreservesConstant) {
  cvec v(64, cplx{3.0, -1.0});
  const cvec d = downsample2(v, 8);
  for (const auto& x : d) EXPECT_NEAR(std::abs(x - cplx(3.0, -1.0)), 0, 1e-14);
}

TEST(Resample, UpsamplePreservesConstant) {
  cvec v(16, cplx{2.0, 5.0});
  const cvec u = upsample2(v, 4);
  ASSERT_EQ(u.size(), 64u);
  for (const auto& x : u) EXPECT_NEAR(std::abs(x - cplx(2.0, 5.0)), 0, 1e-14);
}

TEST(Resample, UpsampleReproducesLinearRamp) {
  // Bilinear interpolation is exact for affine functions (away from the
  // clamped boundary).
  const int nc = 8;
  cvec v(static_cast<std::size_t>(nc) * nc);
  for (int iy = 0; iy < nc; ++iy)
    for (int ix = 0; ix < nc; ++ix)
      v[static_cast<std::size_t>(iy) * nc + ix] = 2.0 * ix - 3.0 * iy;
  const cvec u = upsample2(v, nc);
  const int nf = 2 * nc;
  for (int iy = 2; iy < nf - 2; ++iy) {
    for (int ix = 2; ix < nf - 2; ++ix) {
      // Fine-pixel centre in coarse coordinates: (ix - 0.5) / 2.
      const double cx = (ix - 0.5) / 2.0, cy = (iy - 0.5) / 2.0;
      const double want = 2.0 * cx - 3.0 * cy;
      EXPECT_NEAR(u[static_cast<std::size_t>(iy) * nf + ix].real(), want,
                  1e-12)
          << ix << "," << iy;
    }
  }
}

TEST(Resample, RoundTripIsNearIdentityForSmoothMaps) {
  Grid grid(32);
  const cvec smooth = gaussian_blob(grid, Vec2{0.2, -0.3}, 0.8,
                                    cplx{1.0, 0.0});
  const cvec down = downsample2(smooth, 32);
  const cvec up = upsample2(down, 16);
  EXPECT_LT(rel_l2_diff(up, smooth), 0.08);
}

TEST(Resample, UpsampleThenDownsampleIsExactOnAverage) {
  Rng rng(91);
  cvec v(16 * 16);
  rng.fill_cnormal(v);
  const cvec u = upsample2(v, 16);
  // Mean is preserved by both operations.
  cplx mv{}, mu{};
  for (const auto& x : v) mv += x;
  for (const auto& x : u) mu += x;
  mv /= static_cast<double>(v.size());
  mu /= static_cast<double>(u.size());
  EXPECT_NEAR(std::abs(mv - mu), 0.0, 0.02 * std::abs(mv) + 1e-3);
}

}  // namespace
}  // namespace ffw
