// Transport-layer tests (DESIGN.md Sec. 16): wire-record framing, the
// cross-backend ledger-parity contract (payload ledgers byte-identical
// over inproc / shm-ring / tcp), backpressure on a full ring, and the
// dead-peer regression — a receiver over a polled transport must fire
// DeadlineExceeded with the wait-for diagnosis instead of hanging in a
// blocking read when its peer goes silent. `ctest -L transport`.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.hpp"
#include "perfmodel/linkbench.hpp"
#include "vcluster/comm.hpp"
#include "vcluster/shm_ring.hpp"

namespace ffw {
namespace {

std::vector<unsigned char> pattern(int seed, std::size_t n) {
  std::vector<unsigned char> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<unsigned char>((seed * 167 + static_cast<int>(i)) & 0xFF);
  return v;
}

// ---- Wire-record framing -------------------------------------------------

TEST(FrameParserTest, RecordsSurviveArbitraryChunking) {
  // Three frames (empty, tiny, large) encoded back-to-back must decode
  // identically no matter how the byte stream is sliced — rings and
  // sockets both deliver in arbitrary chunks.
  std::vector<WireFrame> in;
  in.push_back({-5001, 1, 0xDEADBEEFu, {}});
  in.push_back({7, 42, 0x12345678u, pattern(1, 3)});
  in.push_back({-2000, 900, 0x0u, pattern(2, 4096)});
  std::vector<unsigned char> stream;
  for (const WireFrame& f : in) wire_encode(f, stream);
  ASSERT_EQ(stream.size(), wire_record_bytes(0) + wire_record_bytes(3) +
                               wire_record_bytes(4096));

  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{4095}, stream.size()}) {
    FrameParser parser;
    std::vector<WireFrame> out;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      parser.feed(stream.data() + off, n,
                  [&](WireFrame f) { out.push_back(std::move(f)); });
    }
    ASSERT_EQ(out.size(), in.size()) << "chunk=" << chunk;
    EXPECT_EQ(parser.pending_bytes(), 0u);
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i].tag, in[i].tag);
      EXPECT_EQ(out[i].seq, in[i].seq);
      EXPECT_EQ(out[i].crc, in[i].crc);
      EXPECT_EQ(out[i].payload, in[i].payload);
    }
  }
}

// ---- Ledger parity across backends ---------------------------------------

// A workload touching every traffic source: mixed-size point-to-point,
// the recursive-doubling / binomial collectives, a subgroup allreduce
// and barriers. The per-tag payload ledger it produces must not depend
// on which transport moved the bytes.
void ledger_workload(Comm& c) {
  const int next = (c.rank() + 1) % c.size();
  const int prev = (c.rank() + c.size() - 1) % c.size();
  for (int i = 0; i < 6; ++i) {
    const std::vector<unsigned char> v = pattern(c.rank(), 1 + 37 * i);
    c.send(next, 7, std::span<const unsigned char>(v));
  }
  for (int i = 0; i < 6; ++i) {
    const std::vector<unsigned char> got = c.recv<unsigned char>(prev, 7);
    ASSERT_EQ(got, pattern(prev, 1 + 37 * i));
  }
  c.barrier();

  std::vector<cplx> v(64, cplx{1.0 + c.rank(), -0.5});
  c.allreduce_sum(cspan(v));
  EXPECT_EQ(c.allreduce_max(static_cast<double>(c.rank())),
            static_cast<double>(c.size() - 1));
  c.bcast(cspan(v), c.size() - 1);

  // Subgroup allreduce: lower half vs upper half of the world.
  std::vector<int> group;
  const int half = c.size() / 2;
  const int lo = c.rank() < half ? 0 : half;
  const int hi = c.rank() < half ? half : c.size();
  for (int r = lo; r < hi; ++r) group.push_back(r);
  std::vector<cplx> g(16, cplx{1.0, 2.0});
  c.group_allreduce_sum(cspan(g), std::span<const int>(group));
  c.barrier();
}

struct LedgerSnapshot {
  TrafficStats traffic;
  std::map<int, TagTraffic> by_tag;
  std::uint64_t overhead = 0;
};

LedgerSnapshot run_ledger(const std::string& backend, int p) {
  VCluster vc(p, make_transport(backend, p));
  vc.run(ledger_workload);
  return {vc.traffic(), vc.traffic_by_tag(), vc.frame_overhead_bytes()};
}

TEST(TransportParity, PayloadLedgersBitIdenticalAcrossBackends) {
  // The contract the perf model depends on: a transport moves bytes, it
  // never changes what the algorithm put on the wire. Both polled
  // backends must reproduce the in-process per-edge and per-tag ledgers
  // bit for bit — including at odd / non-power-of-two world sizes where
  // the collectives take their irregular paths. This is also the
  // envelope regression: the tcp length prefix and the ring record
  // envelope must not leak into the payload ledger (they are wire_bytes).
  for (int p : {3, 5, 6, 12}) {
    const LedgerSnapshot ref = run_ledger("inproc", p);
    ASSERT_GT(ref.traffic.total_bytes(), 0u);
    for (const char* backend : {"shm", "tcp"}) {
      const LedgerSnapshot got = run_ledger(backend, p);
      EXPECT_EQ(ref.traffic.bytes, got.traffic.bytes)
          << backend << " p=" << p;
      EXPECT_EQ(ref.traffic.messages, got.traffic.messages)
          << backend << " p=" << p;
      EXPECT_EQ(ref.by_tag, got.by_tag) << backend << " p=" << p;
      EXPECT_EQ(ref.overhead, got.overhead) << backend << " p=" << p;
    }
  }
}

TEST(TransportParity, EnvelopeBytesCountedAsWireNotPayload) {
  // 5 x 100-byte messages over shm rings: the payload ledger and frame
  // overhead match the in-process numbers exactly, while the transport's
  // physical counter sees the full wire records (8-byte envelope +
  // 12-byte header + payload). Double-counting the envelope into the
  // per-tag ledger is the bug this pins down.
  auto transport = make_transport("shm", 2);
  VCluster vc(2, transport);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<unsigned char> v = pattern(0, 100);
      for (int i = 0; i < 5; ++i)
        c.send(1, 1, std::span<const unsigned char>(v));
    } else {
      for (int i = 0; i < 5; ++i) (void)c.recv<unsigned char>(0, 1);
    }
  });
  EXPECT_EQ(vc.traffic().total_bytes(), 500u);
  EXPECT_EQ(vc.tag_traffic(1).bytes, 500u);
  EXPECT_EQ(vc.frame_overhead_bytes(), 5u * VCluster::kFrameBytes);
  EXPECT_EQ(transport->counters().wire_bytes, 5u * wire_record_bytes(100));
}

TEST(TransportParity, InProcBackendReportsZeroPhysicalCost) {
  // The mailbox backend moves no physical bytes: its counters stay zero
  // (that contrast against shm/tcp is what makes wire_bytes meaningful).
  auto transport = make_transport("inproc", 4);
  VCluster vc(4, transport);
  vc.run(ledger_workload);
  const TransportCounters tc = transport->counters();
  EXPECT_EQ(tc.wire_bytes, 0u);
  EXPECT_EQ(tc.syscalls, 0u);
  EXPECT_EQ(tc.ring_full_stalls, 0u);
}

// ---- Dead / silent peer regression (polled transports) -------------------

// The regression this pins down: recv over a socket or ring used to be
// a blocking read, so a peer that died (or simply never sent) before
// the deadline left the receiver hung forever. The polled wait loop
// must arm the deadline, time out, and produce the wait-for diagnosis
// naming the missing (src, tag) key — same contract as the in-process
// backend.
void expect_deadline_on_silent_peer(const char* backend) {
  VCluster vc(2, make_transport(backend, 2));
  vc.set_comm_options(CommOptions{300});
  bool threw = false;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    vc.run([](Comm& c) {
      if (c.rank() == 0) (void)c.recv<int>(1, 5);  // rank 1 never sends
    });
  } catch (const DeadlineExceeded& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("(src=1, tag=5)"),
              std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(threw) << backend;
  EXPECT_LT(elapsed.count(), 10000) << backend << ": hung past the deadline";
}

TEST(DeadPeerTest, ShmRecvFiresDeadlineInsteadOfHanging) {
  expect_deadline_on_silent_peer("shm");
}

TEST(DeadPeerTest, TcpRecvFiresDeadlineInsteadOfHanging) {
  expect_deadline_on_silent_peer("tcp");
}

// ---- Ring backpressure ---------------------------------------------------

TEST(ShmRingTest, FullRingBackpressuresWithoutLosingFrames) {
  // A 512-byte ring carrying 1000-byte frames: every record is larger
  // than the ring, so the producer must stream it through in pieces
  // while the consumer drains — bounded-backoff stalls, never a torn or
  // lost frame. The consumer starts late to guarantee pressure.
  auto transport = std::make_shared<ShmRingTransport>(2, 512);
  VCluster vc(2, transport);
  constexpr int kN = 50;
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        const std::vector<unsigned char> v = pattern(i, 1000);
        c.send(1, 2, std::span<const unsigned char>(v));
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      for (int i = 0; i < kN; ++i) {
        ASSERT_EQ(c.recv<unsigned char>(0, 2), pattern(i, 1000)) << i;
      }
    }
  });
  EXPECT_GT(transport->counters().ring_full_stalls, 0u);
  EXPECT_EQ(vc.traffic().total_bytes(), static_cast<std::uint64_t>(kN) * 1000u);
}

// ---- recover() over a polled transport -----------------------------------

TEST(TransportRecovery, RecoverDropsUndeliveredRingBytes) {
  // Run 1 leaves two undelivered frames in the 0->1 ring when rank 1
  // fails. recover() must reset the transport (rings, parser staging)
  // along with the sequence space: the rerun's first frame is seq 0
  // again, and stale bytes surfacing from the ring would commit the old
  // payloads instead of the new one.
  VCluster vc(2, make_transport("shm", 2));
  EXPECT_THROW(vc.run([](Comm& c) {
                 if (c.rank() == 0) {
                   for (int i = 0; i < 3; ++i) {
                     const int v[1] = {100 + i};
                     c.send(1, 9, std::span<const int>(v, 1));
                   }
                 } else {
                   EXPECT_EQ(c.recv<int>(0, 9).at(0), 100);
                   throw RankFailure(1, "injected failure after one recv");
                 }
               }),
               RankFailure);
  vc.recover();
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const int v[1] = {42};
      c.send(1, 9, std::span<const int>(v, 1));
    } else {
      EXPECT_EQ(c.recv<int>(0, 9).at(0), 42);
      EXPECT_FALSE(c.probe(0, 9));  // stale frames must not resurface
    }
  });
}

// ---- Fault layer over a polled transport (spot check) --------------------

TEST(TransportFaults, CrcAndDedupLiveAboveTheTransport) {
  // The full `fault` label re-runs over shm as fault_test_shm; this is
  // the in-binary spot check that injection still bites when frames
  // travel through rings: 100% duplication stays invisible (seq dedup)
  // and corruption is caught by the CRC at recv.
  VCluster vc(2, make_transport("shm", 2));
  FaultPlan plan;
  plan.all.duplicate = 1.0;
  vc.install_fault_plan(plan);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) {
        const int v[1] = {i};
        c.send(1, 4, std::span<const int>(v, 1));
      }
    } else {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(c.recv<int>(0, 4).at(0), i);
      EXPECT_FALSE(c.probe(0, 4));
    }
  });
  EXPECT_EQ(vc.fault_stats().duplicates, 8u);

  VCluster corrupt(2, make_transport("shm", 2));
  FaultPlan cplan;
  cplan.per_edge[{0, 1}] = FaultSpec{0.0, 0.0, 0.0, 1.0};
  corrupt.install_fault_plan(cplan);
  EXPECT_THROW(corrupt.run([](Comm& c) {
                 if (c.rank() == 0) {
                   const std::vector<unsigned char> v = pattern(9, 512);
                   c.send(1, 3, std::span<const unsigned char>(v));
                 } else {
                   (void)c.recv<unsigned char>(0, 3);
                 }
               }),
               CorruptMessage);
}

// ---- Link self-benchmark -> machine model --------------------------------

TEST(LinkBench, MeasuredLinkFeedsTheMachineModel) {
  // The ping-pong must produce a sane link on every backend (positive
  // latency, positive finite bandwidth), and apply_measured_link must
  // swap the documented Gemini constants for the measurement while
  // leaving unmeasured fields at their defaults.
  LinkBenchOptions fast;
  fast.warmup_round_trips = 4;
  fast.latency_round_trips = 20;
  fast.bandwidth_bytes = std::size_t{1} << 16;
  fast.bandwidth_transfers = 3;
  for (const char* backend : {"inproc", "shm", "tcp"}) {
    VCluster vc(2, make_transport(backend, 2));
    const LinkParams link = measure_link(vc, fast);
    EXPECT_GT(link.latency_s, 0.0) << backend;
    EXPECT_GT(link.bandwidth_bps, 0.0) << backend;
    EXPECT_LT(link.latency_s, 1.0) << backend;  // a local hop, not a WAN
  }

  MachineParams machine;
  const double doc_bw = machine.net_bandwidth_bps;
  machine.apply_measured_link(LinkParams{2.5e-7, 0.0});
  EXPECT_EQ(machine.net_latency_s, 2.5e-7);
  EXPECT_EQ(machine.net_bandwidth_bps, doc_bw);  // unmeasured -> default
  machine.apply_measured_link(LinkParams{0.0, 1.25e10});
  EXPECT_EQ(machine.net_latency_s, 2.5e-7);
  EXPECT_EQ(machine.net_bandwidth_bps, 1.25e10);
}

// ---- Checkpoint temp-file isolation (satellite fix) ----------------------

TEST(CheckpointTmp, SaveUsesPidQualifiedTempName) {
  // Regression for the shared ".tmp" clobber: with real-process ranks,
  // two briefly-overlapping supervisor restarts can both run a rank 0
  // saving the same checkpoint path. The temp file must be
  // pid-qualified, so a stranger's "<path>.tmp" is never opened,
  // truncated, or renamed into place. The sentinel below survives a
  // save byte-for-byte under the fix; the old code renamed it (or its
  // truncation) over the checkpoint.
  const std::string path = "/tmp/ffw_ckpt_tmp_test.ckpt";
  const std::string legacy_tmp = path + ".tmp";
  std::remove(path.c_str());
  {
    std::FILE* f = std::fopen(legacy_tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("sentinel: not a checkpoint", f);
    std::fclose(f);
  }

  Checkpoint ck;
  const cvec data{cplx{1.0, -2.0}, cplx{3.5, 0.0}};
  ck.put("contrast", data);
  ASSERT_TRUE(ck.save(path));

  Checkpoint back;
  ASSERT_TRUE(back.load(path));
  EXPECT_EQ(back.get("contrast"), data);

  std::FILE* f = std::fopen(legacy_tmp.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "save() consumed the legacy .tmp name";
  char buf[64] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "sentinel: not a checkpoint");
  std::remove(path.c_str());
  std::remove(legacy_tmp.c_str());
}

}  // namespace
}  // namespace ffw
