// Virtual-cluster runtime: point-to-point semantics, collectives built on
// them, and the traffic accounting the performance model consumes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "vcluster/comm.hpp"

namespace ffw {
namespace {

TEST(VCluster, PingPong) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double msg[3] = {1.0, 2.0, 3.0};
      c.send(1, 7, std::span<const double>(msg, 3));
      const auto back = c.recv<double>(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[0], 2.0);
    } else {
      auto got = c.recv<double>(0, 7);
      for (auto& v : got) v *= 2.0;
      c.send(0, 8, std::span<const double>(got));
    }
  });
}

TEST(VCluster, FifoOrderingPerTag) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        const double v[1] = {static_cast<double>(i)};
        c.send(1, 3, std::span<const double>(v, 1));
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(c.recv<double>(0, 3)[0], static_cast<double>(i));
      }
    }
  });
}

TEST(VCluster, TagsAreIndependent) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double a[1] = {1.0}, b[1] = {2.0};
      c.send(1, 10, std::span<const double>(a, 1));
      c.send(1, 20, std::span<const double>(b, 1));
    } else {
      // Receive in reverse send order: tags must match independently.
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 20)[0], 2.0);
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 10)[0], 1.0);
    }
  });
}

class AllreduceSizes : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSizes, SumMatchesSerial) {
  const int p = GetParam();
  VCluster vc(p);
  vc.run([p](Comm& c) {
    cvec v(17);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = cplx(static_cast<double>(c.rank()), static_cast<double>(i));
    c.allreduce_sum(cspan{v});
    const double rank_sum = p * (p - 1) / 2.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(v[i].real(), rank_sum, 1e-12);
      EXPECT_NEAR(v[i].imag(), static_cast<double>(i) * p, 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(VCluster, AllreduceMaxAndScalarSum) {
  VCluster vc(6);
  vc.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), 5.0);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.5), 9.0);
  });
}

class BcastRoots : public ::testing::TestWithParam<int> {};

TEST_P(BcastRoots, EveryRankGetsRootData) {
  const int root = GetParam();
  VCluster vc(5);
  vc.run([root](Comm& c) {
    cvec v(8, cplx{});
    if (c.rank() == root) {
      for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = cplx(static_cast<double>(i), 42.0);
    }
    c.bcast(v, root);
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_DOUBLE_EQ(v[i].real(), static_cast<double>(i));
      EXPECT_DOUBLE_EQ(v[i].imag(), 42.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Roots, BcastRoots, ::testing::Values(0, 1, 4));

TEST(VCluster, BarrierOrdersPhases) {
  VCluster vc(4);
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  vc.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != 4) ok = false;
    c.barrier();
  });
  EXPECT_TRUE(ok.load());
}

TEST(VCluster, TrafficAccounting) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const cplx v[4] = {};
      c.send(1, 1, std::span<const cplx>(v, 4));
    } else {
      c.recv<cplx>(0, 1);
    }
  });
  const TrafficStats t = vc.traffic();
  EXPECT_EQ(t.total_messages(), 1u);
  EXPECT_EQ(t.total_bytes(), 4 * sizeof(cplx));
  EXPECT_EQ(t.bytes[0 * 2 + 1], 4 * sizeof(cplx));
  EXPECT_EQ(t.bytes[1 * 2 + 0], 0u);
  vc.reset_traffic();
  EXPECT_EQ(vc.traffic().total_bytes(), 0u);
}

TEST(VCluster, PerTagTrafficCounters) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const cplx v[4] = {};
      c.send(1, 1, std::span<const cplx>(v, 4));
      c.send(1, 5, std::span<const cplx>(v, 2));
      c.send(1, 5, std::span<const cplx>(v, 3));
    } else {
      c.recv<cplx>(0, 5);
      c.recv<cplx>(0, 1);
      c.recv<cplx>(0, 5);
    }
  });
  EXPECT_EQ(vc.tag_traffic(1).bytes, 4 * sizeof(cplx));
  EXPECT_EQ(vc.tag_traffic(1).messages, 1u);
  EXPECT_EQ(vc.tag_traffic(5).bytes, 5 * sizeof(cplx));
  EXPECT_EQ(vc.tag_traffic(5).messages, 2u);
  EXPECT_EQ(vc.tag_traffic(99).messages, 0u);
  const auto by_tag = vc.traffic_by_tag();
  EXPECT_EQ(by_tag.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& [tag, tt] : by_tag) total += tt.bytes;
  EXPECT_EQ(total, vc.traffic().total_bytes());
  vc.reset_traffic();
  EXPECT_EQ(vc.tag_traffic(1).messages, 0u);
}

TEST(VCluster, WaitAnyReturnsAReadyKey) {
  VCluster vc(3);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      // Rank 2's message is sent first; rank 1's only after a barrier
      // that rank 0 joins *after* its wait_any returned.
      const std::pair<int, int> keys[2] = {{1, 4}, {2, 4}};
      const std::size_t hit = c.wait_any(keys);
      EXPECT_EQ(hit, 1u);  // only rank 2 has sent yet
      EXPECT_DOUBLE_EQ(c.recv<double>(2, 4)[0], 2.0);
      c.barrier();
      EXPECT_EQ(c.wait_any(keys), 0u);
      EXPECT_DOUBLE_EQ(c.recv<double>(1, 4)[0], 1.0);
    } else if (c.rank() == 1) {
      c.barrier();
      const double v[1] = {1.0};
      c.send(0, 4, std::span<const double>(v, 1));
    } else {
      const double v[1] = {2.0};
      c.send(0, 4, std::span<const double>(v, 1));
      c.barrier();
    }
  });
}

TEST(VCluster, DelayedSendsDeliverEventually) {
  VCluster vc(2);
  vc.set_send_delay([](int, int, int tag) { return tag == 2 ? 3000 : 0; });
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double a[1] = {1.0}, b[1] = {2.0};
      c.send(1, 2, std::span<const double>(a, 1));  // delayed 3 ms
      c.send(1, 3, std::span<const double>(b, 1));  // immediate
      c.barrier();
    } else {
      c.barrier();  // the undelayed tag-3 message must already be here,
      EXPECT_TRUE(c.probe(0, 3));
      // ... while the delayed one still arrives via blocking recv.
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 2)[0], 1.0);
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 3)[0], 2.0);
    }
  });
  // Delay must not change accounting.
  EXPECT_EQ(vc.traffic().total_messages(), 2u);
  vc.set_send_delay(nullptr);
}

TEST(VCluster, FifoHoldsUnderInvertedDelays) {
  // Regression: two in-flight messages on one (src, dst, tag) triple with
  // deliberately inverted delays — the first send crawls (20 ms), the
  // second flies (0 ms). Pre-fix the second message *arrived* first and
  // recv returned them inverted; the per-edge sequence numbers stamped at
  // deposit now make the receiver's reorder buffer hold the early
  // arrival until the gap fills, so FIFO order is restored without any
  // barrier() fencing.
  VCluster vc(2);
  std::atomic<int> nth{0};
  vc.set_send_delay([&nth](int, int, int tag) {
    if (tag != 6) return 0;
    return nth++ == 0 ? 20000 : 0;  // first message slow, rest instant
  });
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        const double v[1] = {static_cast<double>(i)};
        c.send(1, 6, std::span<const double>(v, 1));
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(c.recv<double>(0, 6)[0], static_cast<double>(i));
      }
    }
  });
  vc.set_send_delay(nullptr);
}

TEST(VCluster, ProbeHonorsCommitOrderUnderDelays) {
  // probe/wait_any must not see a held out-of-order frame: until the slow
  // first message lands, the queue reads as empty even though the fast
  // second message has physically arrived.
  VCluster vc(2);
  std::atomic<int> nth{0};
  vc.set_send_delay([&nth](int, int, int tag) {
    if (tag != 6) return 0;
    return nth++ == 0 ? 30000 : 0;
  });
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double a[1] = {1.0}, b[1] = {2.0};
      c.send(1, 6, std::span<const double>(a, 1));  // delayed 30 ms
      c.send(1, 6, std::span<const double>(b, 1));  // immediate
      c.barrier();
    } else {
      c.barrier();  // the fast frame has arrived, but is held out of order
      EXPECT_FALSE(c.probe(0, 6));
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 6)[0], 1.0);
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 6)[0], 2.0);
    }
  });
  vc.set_send_delay(nullptr);
}

TEST(VCluster, ProbeSeesQueuedMessage) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double v[1] = {3.14};
      c.send(1, 9, std::span<const double>(v, 1));
      c.barrier();
    } else {
      c.barrier();  // after barrier the message must be deposited
      EXPECT_TRUE(c.probe(0, 9));
      EXPECT_FALSE(c.probe(0, 10));
      c.recv<double>(0, 9);
      EXPECT_FALSE(c.probe(0, 9));
    }
  });
}

}  // namespace
}  // namespace ffw
