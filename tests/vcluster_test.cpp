// Virtual-cluster runtime: point-to-point semantics, collectives built on
// them, and the traffic accounting the performance model consumes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "vcluster/comm.hpp"

namespace ffw {
namespace {

TEST(VCluster, PingPong) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double msg[3] = {1.0, 2.0, 3.0};
      c.send(1, 7, std::span<const double>(msg, 3));
      const auto back = c.recv<double>(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[0], 2.0);
    } else {
      auto got = c.recv<double>(0, 7);
      for (auto& v : got) v *= 2.0;
      c.send(0, 8, std::span<const double>(got));
    }
  });
}

TEST(VCluster, FifoOrderingPerTag) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        const double v[1] = {static_cast<double>(i)};
        c.send(1, 3, std::span<const double>(v, 1));
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(c.recv<double>(0, 3)[0], static_cast<double>(i));
      }
    }
  });
}

TEST(VCluster, TagsAreIndependent) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double a[1] = {1.0}, b[1] = {2.0};
      c.send(1, 10, std::span<const double>(a, 1));
      c.send(1, 20, std::span<const double>(b, 1));
    } else {
      // Receive in reverse send order: tags must match independently.
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 20)[0], 2.0);
      EXPECT_DOUBLE_EQ(c.recv<double>(0, 10)[0], 1.0);
    }
  });
}

class AllreduceSizes : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSizes, SumMatchesSerial) {
  const int p = GetParam();
  VCluster vc(p);
  vc.run([p](Comm& c) {
    cvec v(17);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = cplx(static_cast<double>(c.rank()), static_cast<double>(i));
    c.allreduce_sum(cspan{v});
    const double rank_sum = p * (p - 1) / 2.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(v[i].real(), rank_sum, 1e-12);
      EXPECT_NEAR(v[i].imag(), static_cast<double>(i) * p, 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

TEST(VCluster, AllreduceMaxAndScalarSum) {
  VCluster vc(6);
  vc.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), 5.0);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.5), 9.0);
  });
}

class BcastRoots : public ::testing::TestWithParam<int> {};

TEST_P(BcastRoots, EveryRankGetsRootData) {
  const int root = GetParam();
  VCluster vc(5);
  vc.run([root](Comm& c) {
    cvec v(8, cplx{});
    if (c.rank() == root) {
      for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = cplx(static_cast<double>(i), 42.0);
    }
    c.bcast(v, root);
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_DOUBLE_EQ(v[i].real(), static_cast<double>(i));
      EXPECT_DOUBLE_EQ(v[i].imag(), 42.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Roots, BcastRoots, ::testing::Values(0, 1, 4));

TEST(VCluster, BarrierOrdersPhases) {
  VCluster vc(4);
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  vc.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != 4) ok = false;
    c.barrier();
  });
  EXPECT_TRUE(ok.load());
}

TEST(VCluster, TrafficAccounting) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const cplx v[4] = {};
      c.send(1, 1, std::span<const cplx>(v, 4));
    } else {
      c.recv<cplx>(0, 1);
    }
  });
  const TrafficStats t = vc.traffic();
  EXPECT_EQ(t.total_messages(), 1u);
  EXPECT_EQ(t.total_bytes(), 4 * sizeof(cplx));
  EXPECT_EQ(t.bytes[0 * 2 + 1], 4 * sizeof(cplx));
  EXPECT_EQ(t.bytes[1 * 2 + 0], 0u);
  vc.reset_traffic();
  EXPECT_EQ(vc.traffic().total_bytes(), 0u);
}

TEST(VCluster, ProbeSeesQueuedMessage) {
  VCluster vc(2);
  vc.run([](Comm& c) {
    if (c.rank() == 0) {
      const double v[1] = {3.14};
      c.send(1, 9, std::span<const double>(v, 1));
      c.barrier();
    } else {
      c.barrier();  // after barrier the message must be deposited
      EXPECT_TRUE(c.probe(0, 9));
      EXPECT_FALSE(c.probe(0, 10));
      c.recv<double>(0, 9);
      EXPECT_FALSE(c.probe(0, 9));
    }
  });
}

}  // namespace
}  // namespace ffw
