// Block BiCGStab: lockstep recurrences over nrhs columns must
// reproduce the single-vector solver exactly — same iterates, same
// iteration/matvec counts, same convergence decisions — including when
// columns converge at different iterations.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "forward/block_bicgstab.hpp"
#include "forward/forward.hpp"
#include "linalg/kernels.hpp"

namespace ffw {
namespace {

// Well-conditioned dense test operator A = I + eps * R.
struct DenseOp {
  std::size_t n;
  cvec r;  // n x n column-major perturbation
  double eps;

  DenseOp(std::size_t n_, std::uint64_t seed, double eps_)
      : n(n_), r(n_ * n_), eps(eps_) {
    Rng rng(seed);
    rng.fill_cnormal(r);
  }

  void apply(ccspan x, cspan y) const {
    for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
    for (std::size_t j = 0; j < n; ++j) {
      const cplx xj = eps * x[j];
      const cplx* col = r.data() + j * n;
      for (std::size_t i = 0; i < n; ++i) y[i] += col[i] * xj;
    }
  }

  // Column-major block apply (BlockLayout{n, nrhs, 1}).
  void apply_block(ccspan x, cspan y, std::size_t nrhs) const {
    for (std::size_t c = 0; c < nrhs; ++c)
      apply(ccspan{x.data() + c * n, n}, cspan{y.data() + c * n, n});
  }
};

TEST(BlockBicgstab, MatchesSingleSolverPerColumn) {
  const std::size_t n = 48, nrhs = 4;
  const DenseOp op(n, 5, 0.05);
  const BlockLayout lo{n, nrhs, 1};
  Rng rng(6);
  cvec b(lo.size()), x(lo.size(), cplx{});
  rng.fill_cnormal(b);

  BicgstabOptions opts;
  opts.tol = 1e-10;
  opts.max_iterations = 200;

  cvec xb(x);
  const BlockBicgstabResult blk = block_bicgstab(
      [&](ccspan in, cspan out) { op.apply_block(in, out, nrhs); }, b, xb,
      lo, opts);
  ASSERT_TRUE(blk.converged);
  ASSERT_EQ(blk.rhs.size(), nrhs);

  for (std::size_t c = 0; c < nrhs; ++c) {
    cvec xs(n, cplx{});
    const BicgstabResult single =
        bicgstab([&](ccspan in, cspan out) { op.apply(in, out); },
                 ccspan{b.data() + c * n, n}, xs, opts);
    ASSERT_TRUE(single.converged);
    EXPECT_EQ(blk.rhs[c].iterations, single.iterations) << "col=" << c;
    EXPECT_EQ(blk.rhs[c].matvecs, single.matvecs) << "col=" << c;
    // The recurrences are identical; only last-bit rounding may differ
    // (the batched reductions compile separately from cdot/nrm2).
    EXPECT_NEAR(blk.rhs[c].relres, single.relres, 1e-8 * single.relres)
        << "col=" << c;
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      num += std::norm(xb[c * n + i] - xs[i]);
      den += std::norm(xs[i]);
    }
    EXPECT_LT(std::sqrt(num), 1e-12 * std::sqrt(den)) << "col=" << c;
  }
}

TEST(BlockBicgstab, MixedConvergenceFreezesColumnsCorrectly) {
  // Column 0: zero RHS (converged before any work). Column 1: initial
  // guess already solves the system (converged at the initial residual
  // check). Column 2: a hard column that needs real iterations. All
  // must end exactly where the single-vector solver would leave them.
  const std::size_t n = 40, nrhs = 3;
  const DenseOp op(n, 9, 0.08);
  const BlockLayout lo{n, nrhs, 1};
  Rng rng(11);

  cvec b(lo.size(), cplx{}), x(lo.size(), cplx{});
  cvec exact(n);
  rng.fill_cnormal(exact);
  op.apply(exact, cspan{b.data() + 1 * n, n});  // b_1 = A * exact
  std::copy(exact.begin(), exact.end(), x.begin() + static_cast<std::ptrdiff_t>(n));
  rng.fill_cnormal(cspan{b.data() + 2 * n, n});
  // Poison column 0's initial guess: a zero-b column must come back 0.
  for (std::size_t i = 0; i < n; ++i) x[i] = cplx{3.0, -4.0};

  BicgstabOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 200;

  const BlockBicgstabResult blk = block_bicgstab(
      [&](ccspan in, cspan out) { op.apply_block(in, out, nrhs); }, b, x,
      lo, opts);
  ASSERT_TRUE(blk.converged);

  EXPECT_TRUE(blk.rhs[0].converged);
  EXPECT_EQ(blk.rhs[0].iterations, 0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], cplx{});

  EXPECT_TRUE(blk.rhs[1].converged);
  EXPECT_EQ(blk.rhs[1].iterations, 0);  // initial residual below tol
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[n + i], exact[i]);

  EXPECT_TRUE(blk.rhs[2].converged);
  EXPECT_GT(blk.rhs[2].iterations, 0);
  cvec xs(n, cplx{});
  const BicgstabResult single =
      bicgstab([&](ccspan in, cspan out) { op.apply(in, out); },
               ccspan{b.data() + 2 * n, n}, xs, opts);
  EXPECT_EQ(blk.rhs[2].iterations, single.iterations);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += std::norm(x[2 * n + i] - xs[i]);
    den += std::norm(xs[i]);
  }
  EXPECT_LT(std::sqrt(num), 1e-12 * std::sqrt(den));

  // The block keeps iterating only as long as the hardest column needs.
  EXPECT_EQ(blk.iterations, single.iterations);
}

TEST(BlockBicgstab, ForwardSolverBlockMatchesPerColumnSolve) {
  Grid grid(32);
  QuadTree tree(grid);
  const std::size_t n = grid.num_pixels();
  Rng rng(31);

  cvec contrast(n);
  for (std::size_t i = 0; i < n; ++i)
    contrast[i] = 0.3 * std::exp(cplx{0.0, 0.4 * static_cast<double>(i % 7)});

  BicgstabOptions opts;
  opts.tol = 1e-8;
  opts.max_iterations = 300;

  const std::size_t nrhs = 3;
  cvec rhs(n * nrhs);
  rng.fill_cnormal(rhs);

  MlfmaEngine eng_blk(tree);
  ForwardSolver blk(eng_blk, opts);
  blk.set_contrast(contrast);
  cvec phi_blk(n * nrhs, cplx{});
  const BlockBicgstabResult bres = blk.solve_block(rhs, phi_blk, nrhs);
  ASSERT_TRUE(bres.converged);
  EXPECT_EQ(blk.stats().solves, nrhs);
  EXPECT_EQ(blk.stats().per_solve_iterations.size(), nrhs);

  MlfmaEngine eng_one(tree);
  ForwardSolver one(eng_one, opts);
  one.set_contrast(contrast);
  for (std::size_t c = 0; c < nrhs; ++c) {
    cvec phi(n, cplx{});
    const BicgstabResult sres =
        one.solve(ccspan{rhs.data() + c * n, n}, phi);
    ASSERT_TRUE(sres.converged);
    EXPECT_EQ(bres.rhs[c].iterations, sres.iterations) << "col=" << c;
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      num += std::norm(phi_blk[c * n + i] - phi[i]);
      den += std::norm(phi[i]);
    }
    EXPECT_LT(std::sqrt(num), 1e-10 * std::sqrt(den)) << "col=" << c;
  }
}

}  // namespace
}  // namespace ffw
