// Validates the diagonal 2-D translation operator: the plane-wave
// quadrature
//   (1/Q) sum_q T_L(alpha_q; X) e^{i k_hat(alpha_q) . d}
// must reproduce H0^(1)(k |X + d|) to the excess-bandwidth accuracy for
// every |d| up to the cluster diagonal and every X in the 40-offset set.
// This pins down the sign conventions of the addition theorem the whole
// MLFMA rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "mlfma/operators.hpp"
#include "special/bessel.hpp"

namespace ffw {
namespace {

double translation_error(double k, Vec2 x, Vec2 d, int truncation,
                         int samples) {
  const cvec t = make_translation_diag(k, x, truncation, samples);
  cplx acc{};
  for (int q = 0; q < samples; ++q) {
    const double alpha = 2.0 * pi * q / samples;
    const double phase = k * (std::cos(alpha) * d.x + std::sin(alpha) * d.y);
    acc += t[static_cast<std::size_t>(q)] * cplx{std::cos(phase), std::sin(phase)};
  }
  acc /= static_cast<double>(samples);
  // The identity delivered by this T convention is H0(k|X - d|); the
  // engine compensates by building T with X = c_src - c_dest (see
  // operators.hpp).
  const double r = norm(x - d);
  const cplx exact{bessel_j0(k * r), bessel_y0(k * r)};
  return std::abs(acc - exact) / std::abs(exact);
}

TEST(Translation, MatchesH0AtLeafScale) {
  const double k = 2.0 * pi;
  const double w = 0.8;  // leaf cluster width (wavelengths)
  const int trunc = truncation_order(k, w, 6.0);
  const int samples = 2 * (2 * trunc + 1);
  // All 40 offsets, with d = u - v spanning up to the worst *realisable*
  // case: pixel centres sit at +-0.4375 w inside a leaf (8 pixels of
  // w/8), so each component of d reaches +-0.875 w.
  for (auto [ox, oy] : QuadTree::translation_offsets()) {
    const Vec2 x{ox * w, oy * w};
    for (double fx : {-0.875, -0.5, 0.0, 0.5, 0.875}) {
      for (double fy : {-0.875, 0.0, 0.875}) {
        const Vec2 d{fx * w, fy * w};
        // Pointwise error at the absolute corner-to-corner extreme
        // (|d| -> w*sqrt(2)) is allowed a small grace factor: the
        // excess-bandwidth rule targets the aggregate matvec error
        // (which tests/mlfma_accuracy_test.cpp verifies at 1e-5), not
        // the single worst pixel pair, and real pixel pairs are
        // strictly inside the clusters.
        const double tol = (std::abs(fx) + std::abs(fy) >= 1.7) ? 2e-4 : 1e-5;
        const double err = translation_error(k, x, d, trunc, samples);
        EXPECT_LT(err, tol) << "offset (" << ox << "," << oy << ") d=("
                            << d.x << "," << d.y << ")";
      }
    }
    // Moderate separations should be comfortably below target.
    EXPECT_LT(translation_error(k, x, Vec2{0.4 * w, -0.3 * w}, trunc, samples),
              1e-6);
  }
}

TEST(Translation, MatchesH0AtHigherLevels) {
  const double k = 2.0 * pi;
  for (double w : {1.6, 3.2, 6.4}) {
    const int trunc = truncation_order(k, w, 6.0);
    const int samples = 2 * (2 * trunc + 1);
    const Vec2 x{2.0 * w, 1.0 * w};  // a (2,1) offset
    const Vec2 d{0.45 * w, -0.48 * w};
    EXPECT_LT(translation_error(k, x, d, trunc, samples), 1e-6) << "w=" << w;
  }
}

TEST(Translation, AccuracyImprovesWithTruncation) {
  const double k = 2.0 * pi;
  const double w = 0.8;
  const Vec2 x{2.0 * w, 0.0};
  const Vec2 d{0.45 * w, 0.4 * w};
  double prev = 1.0;
  for (double digits : {2.0, 4.0, 6.0}) {
    const int trunc = truncation_order(k, w, digits);
    const int samples = 2 * (2 * trunc + 1);
    const double err = translation_error(k, x, d, trunc, samples);
    EXPECT_LT(err, prev);
    prev = err;
  }
  EXPECT_LT(prev, 1e-6);
}

// Reciprocity: T for offset -X equals T for X evaluated at alpha + pi.
TEST(Translation, Reciprocity) {
  const double k = 2.0 * pi;
  const double w = 0.8;
  const int trunc = truncation_order(k, w, 5.0);
  const int samples = 4 * trunc + 2;  // even count so alpha+pi lands on grid
  const Vec2 x{2.0 * w, 3.0 * w};
  const cvec tp = make_translation_diag(k, x, trunc, samples);
  const cvec tm = make_translation_diag(k, Vec2{-x.x, -x.y}, trunc, samples);
  for (int q = 0; q < samples; ++q) {
    const int qpi = (q + samples / 2) % samples;
    EXPECT_NEAR(std::abs(tm[static_cast<std::size_t>(q)] -
                         tp[static_cast<std::size_t>(qpi)]),
                0.0, 1e-9 * std::abs(tp[static_cast<std::size_t>(qpi)]) + 1e-9);
  }
}

}  // namespace
}  // namespace ffw
