// Tracing & counters subsystem (src/obs): span recording, nesting,
// ring-buffer overflow accounting, the disabled fast path, counter
// attribution per vcluster rank, chrome://tracing export validity, and
// the cross-rank summary collective.
//
// Tests restore the obs global state (disabled + reset) on exit so the
// other suites in this binary see a quiet subsystem.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "json_check.hpp"
#include "obs/obs.hpp"
#include "obs/summary.hpp"
#include "vcluster/comm.hpp"

namespace ffw {
namespace {

/// RAII guard: every test records from a clean slate and leaves the
/// subsystem disabled and empty.
struct ObsSession {
  ObsSession() {
    obs::set_enabled(false);
    obs::reset();
    obs::set_ring_capacity(std::size_t{1} << 15);
    obs::set_enabled(true);
  }
  ~ObsSession() {
    obs::set_enabled(false);
    obs::reset();
    obs::set_ring_capacity(std::size_t{1} << 15);
  }
};

/// Events recorded by the calling thread's rank since the session began.
std::vector<obs::detail::SpanEvent> my_rank_events(int rank = 0) {
  std::vector<obs::detail::SpanEvent> out;
  for (const obs::ThreadSnapshot& s : obs::snapshot()) {
    if (s.rank != rank) continue;
    out.insert(out.end(), s.events.begin(), s.events.end());
  }
  return out;
}

TEST(Obs, DisabledRecordsNothing) {
  ObsSession session;
  obs::set_enabled(false);
  {
    FFW_TRACE_SPAN("should_not_appear");
    obs::add(obs::Counter::kWireBytes, 1234);
  }
  obs::set_enabled(true);
  EXPECT_TRUE(my_rank_events().empty());
  EXPECT_EQ(obs::counter_totals(0)[static_cast<std::size_t>(
                obs::Counter::kWireBytes)],
            0u);
}

TEST(Obs, SpansRecordNameArgAndNesting) {
  ObsSession session;
  {
    FFW_TRACE_SPAN("outer", 7);
    {
      FFW_TRACE_SPAN("inner");
    }
  }
  const auto events = my_rank_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].arg, obs::kNoArg);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[1].arg, 7);
  // The outer span fully contains the inner one.
  EXPECT_LE(events[1].begin_ns, events[0].begin_ns);
  EXPECT_GE(events[1].end_ns, events[0].end_ns);
}

TEST(Obs, SpanDurationAccumulatesIntoCounter) {
  ObsSession session;
  {
    obs::SpanScope span("timed", obs::kNoArg, obs::Counter::kComputeNs);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto totals = obs::counter_totals(0);
  EXPECT_GE(totals[static_cast<std::size_t>(obs::Counter::kComputeNs)],
            1'000'000u);  // at least 1 ms of the 2 ms sleep
}

TEST(Obs, RingOverwritesOldestAndCountsDrops) {
  ObsSession session;
  obs::set_ring_capacity(8);
  for (int i = 0; i < 20; ++i) {
    FFW_TRACE_SPAN("ring", i);
  }
  std::uint64_t dropped = 0;
  std::size_t events = 0;
  for (const obs::ThreadSnapshot& s : obs::snapshot()) {
    if (s.rank != 0) continue;
    dropped += s.dropped;
    events += s.events.size();
  }
  EXPECT_EQ(events, 8u);
  EXPECT_EQ(dropped, 12u);
  // The survivors are the 8 newest spans (args 12..19 in some rotation).
  for (const auto& ev : my_rank_events()) EXPECT_GE(ev.arg, 12);
}

TEST(Obs, ResetClearsEventsAndCounters) {
  ObsSession session;
  {
    FFW_TRACE_SPAN("gone");
  }
  obs::add(obs::Counter::kMlfmaApplications, 3);
  obs::reset();
  EXPECT_TRUE(my_rank_events().empty());
  EXPECT_EQ(obs::counter_totals(0)[static_cast<std::size_t>(
                obs::Counter::kMlfmaApplications)],
            0u);
}

TEST(Obs, PhaseTotalsSumPerName) {
  ObsSession session;
  for (int i = 0; i < 3; ++i) {
    FFW_TRACE_SPAN("phase_a");
  }
  {
    FFW_TRACE_SPAN("phase_b");
  }
  const auto totals = obs::phase_totals(0);
  ASSERT_EQ(totals.size(), 2u);  // sorted by name
  EXPECT_EQ(totals[0].name, "phase_a");
  EXPECT_EQ(totals[0].count, 3u);
  EXPECT_EQ(totals[1].name, "phase_b");
  EXPECT_EQ(totals[1].count, 1u);
}

TEST(Obs, RankThreadsAttributeToTheirRank) {
  ObsSession session;
  const int p = 4;
  VCluster vc(p);
  vc.run([](Comm& comm) {
    FFW_TRACE_SPAN("rank_work", comm.rank());
    obs::add(obs::Counter::kBicgstabIterations,
             static_cast<std::uint64_t>(comm.rank() + 1));
  });
  for (int r = 0; r < p; ++r) {
    const auto totals = obs::counter_totals(r);
    EXPECT_EQ(totals[static_cast<std::size_t>(
                  obs::Counter::kBicgstabIterations)],
              static_cast<std::uint64_t>(r + 1))
        << "rank " << r;
    const auto phases = obs::phase_totals(r);
    ASSERT_EQ(phases.size(), 1u) << "rank " << r;
    EXPECT_EQ(phases[0].name, "rank_work");
    EXPECT_EQ(phases[0].count, 1u);
  }
}

TEST(Obs, WireBytesBridgeFromVcluster) {
  ObsSession session;
  const int p = 2;
  VCluster vc(p);
  vc.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const double payload[16] = {};
      comm.send(1, 3, std::span<const double>(payload, 16));
    } else {
      (void)comm.recv<double>(0, 3);
    }
  });
  // Sender's counter carries the bytes; the ledger agrees.
  EXPECT_EQ(obs::counter_totals(0)[static_cast<std::size_t>(
                obs::Counter::kWireBytes)],
            16u * sizeof(double));
  EXPECT_EQ(obs::counter_totals(1)[static_cast<std::size_t>(
                obs::Counter::kWireBytes)],
            0u);
  EXPECT_EQ(vc.traffic().total_bytes(), 16u * sizeof(double));
}

TEST(Obs, ChromeTraceExportIsValidJson) {
  ObsSession session;
  const int p = 3;
  VCluster vc(p);
  vc.run([](Comm& comm) {
    FFW_TRACE_SPAN("apply", comm.rank());
    {
      FFW_TRACE_SPAN("translate", 0);
    }
  });
  const std::string path = "/tmp/ffw_obs_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::remove(path.c_str());

  EXPECT_TRUE(testing::json_valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // One process metadata record per rank, plus the recorded spans.
  for (int r = 0; r < p; ++r) {
    EXPECT_NE(text.find("rank " + std::to_string(r)), std::string::npos);
  }
  EXPECT_NE(text.find("\"translate\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsSummary, CollectsMinMedianMaxAcrossRanks) {
  ObsSession session;
  const int p = 4;
  VCluster vc(p);
  // Every rank records the same phase names (the SPMD contract) but
  // different durations and counter values.
  vc.run([](Comm& comm) {
    {
      obs::SpanScope span("work", obs::kNoArg, obs::Counter::kComputeNs);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1 + comm.rank()));
    }
    obs::add(obs::Counter::kMlfmaApplications,
             static_cast<std::uint64_t>(10 * (comm.rank() + 1)));
  });
  obs::set_enabled(false);  // keep the collection itself out of the data
  obs::ClusterSummary sum;
  vc.run([&](Comm& comm) {
    obs::ClusterSummary s = obs::collect_summary(comm);
    if (comm.rank() == 0) sum = std::move(s);
  });
  obs::set_enabled(true);

  EXPECT_EQ(sum.nranks, p);
  ASSERT_EQ(sum.phases.size(), 1u);
  EXPECT_EQ(sum.phases[0].name, "work");
  EXPECT_EQ(sum.phases[0].count, static_cast<std::uint64_t>(p));
  EXPECT_GT(sum.phases[0].min_ms, 0.0);
  EXPECT_LE(sum.phases[0].min_ms, sum.phases[0].med_ms);
  EXPECT_LE(sum.phases[0].med_ms, sum.phases[0].max_ms);

  const auto& apps = sum.counters[static_cast<std::size_t>(
      obs::Counter::kMlfmaApplications)];
  EXPECT_EQ(apps.min, 10u);
  EXPECT_EQ(apps.max, static_cast<std::uint64_t>(10 * p));
  EXPECT_EQ(apps.total, 10u + 20u + 30u + 40u);

  // The formatted table mentions the phase and the counter by name.
  const std::string table = obs::format_summary(sum);
  EXPECT_NE(table.find("work"), std::string::npos);
  EXPECT_NE(table.find("mlfma_applications"), std::string::npos);
}

TEST(ObsSummary, UnionsAsymmetricSpanSetsAcrossRanks) {
  // Regression: ranks can legitimately record different span sets (a
  // rank whose halos all arrive during local work never parks in
  // wait_any, so it records no halo-wait span). The summary must union
  // the names with zero rows for absent phases, not abort.
  ObsSession session;
  const int p = 3;
  VCluster vc(p);
  vc.run([](Comm& comm) {
    {
      FFW_TRACE_SPAN("common");
    }
    if (comm.rank() == 1) {
      FFW_TRACE_SPAN("only_rank1");
    }
  });
  obs::set_enabled(false);
  obs::ClusterSummary sum;
  vc.run([&](Comm& comm) {
    obs::ClusterSummary s = obs::collect_summary(comm);
    if (comm.rank() == 0) sum = std::move(s);
  });
  obs::set_enabled(true);

  ASSERT_EQ(sum.phases.size(), 2u);
  EXPECT_EQ(sum.phases[0].name, "common");
  EXPECT_EQ(sum.phases[0].count, static_cast<std::uint64_t>(p));
  EXPECT_EQ(sum.phases[1].name, "only_rank1");
  EXPECT_EQ(sum.phases[1].count, 1u);
  // Two of the three ranks never entered only_rank1: min (and median)
  // across ranks is exactly zero, max is the recording rank's time.
  EXPECT_EQ(sum.phases[1].min_ms, 0.0);
  EXPECT_EQ(sum.phases[1].med_ms, 0.0);
  EXPECT_GT(sum.phases[1].max_ms, 0.0);
}

TEST(ObsSummary, CompatibleWithComputeVsHaloWaitCounters) {
  // The partitioned apply pattern: compute spans and halo-wait spans
  // feed disjoint nanosecond counters whose sum tracks wall time.
  ObsSession session;
  {
    obs::SpanScope span("compute", obs::kNoArg, obs::Counter::kComputeNs);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    obs::SpanScope span("wait", obs::kNoArg, obs::Counter::kHaloWaitNs);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto totals = obs::counter_totals(0);
  const auto compute =
      totals[static_cast<std::size_t>(obs::Counter::kComputeNs)];
  const auto wait =
      totals[static_cast<std::size_t>(obs::Counter::kHaloWaitNs)];
  EXPECT_GE(compute, 1'000'000u);
  EXPECT_GE(wait, 500'000u);
}

}  // namespace
}  // namespace ffw
