// Extension features: Jacobi-preconditioned forward solves (the paper's
// Sec. VIII future-work item) and multi-frequency DBIM.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dbim/multifrequency.hpp"
#include "forward/dense_ref.hpp"
#include "forward/forward.hpp"
#include "linalg/kernels.hpp"
#include "phantom/phantom.hpp"

namespace ffw {
namespace {

TEST(JacobiPrecond, SolutionUnchanged) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const cvec deps = gaussian_blob(grid, Vec2{0.2, 0.1}, 0.6, cplx{0.08, 0.0});
  const cvec contrast = contrast_from_permittivity(grid, deps);

  BicgstabOptions opts;
  opts.tol = 1e-9;
  Rng rng(101);
  cvec rhs(grid.num_pixels());
  rng.fill_cnormal(rhs);

  ForwardSolver plain(engine, opts);
  plain.set_contrast(contrast);
  cvec x_plain(grid.num_pixels(), cplx{});
  ASSERT_TRUE(plain.solve(rhs, x_plain).converged);

  ForwardSolver prec(engine, opts);
  prec.set_jacobi_preconditioner(true);
  prec.set_contrast(contrast);
  EXPECT_TRUE(prec.jacobi_preconditioner());
  cvec x_prec(grid.num_pixels(), cplx{});
  ASSERT_TRUE(prec.solve(rhs, x_prec).converged);

  EXPECT_LT(rel_l2_diff(x_prec, x_plain), 1e-6);
}

TEST(JacobiPrecond, MatchesDenseReferenceAtHighContrast) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  // Strong, lossy contrast: the regime the preconditioner targets.
  const cvec deps = gaussian_blob(grid, Vec2{0.0, 0.0}, 0.7,
                                  cplx{0.15, -0.05});
  const cvec contrast = contrast_from_permittivity(grid, deps);

  BicgstabOptions opts;
  opts.tol = 1e-9;
  ForwardSolver fs(engine, opts);
  fs.set_jacobi_preconditioner(true);
  fs.set_contrast(contrast);

  Rng rng(102);
  cvec rhs(grid.num_pixels());
  rng.fill_cnormal(rhs);
  cvec phi(grid.num_pixels(), cplx{});
  ASSERT_TRUE(fs.solve(rhs, phi).converged);

  DenseForwardSolver dense(grid, contrast);
  EXPECT_LT(rel_l2_diff(phi, dense.solve(rhs)), 1e-6);
}

TEST(JacobiPrecond, HelpsOrAtLeastDoesNotHurtIterations) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const cvec deps = gaussian_blob(grid, Vec2{0.0, 0.0}, 0.8,
                                  cplx{0.2, 0.0});
  const cvec contrast = contrast_from_permittivity(grid, deps);
  Rng rng(103);
  cvec rhs(grid.num_pixels());
  rng.fill_cnormal(rhs);

  BicgstabOptions opts;
  opts.tol = 1e-8;
  ForwardSolver plain(engine, opts);
  plain.set_contrast(contrast);
  cvec x1(grid.num_pixels(), cplx{});
  const auto r_plain = plain.solve(rhs, x1);

  ForwardSolver prec(engine, opts);
  prec.set_jacobi_preconditioner(true);
  prec.set_contrast(contrast);
  cvec x2(grid.num_pixels(), cplx{});
  const auto r_prec = prec.solve(rhs, x2);

  ASSERT_TRUE(r_plain.converged && r_prec.converged);
  EXPECT_LE(r_prec.iterations, r_plain.iterations + 2);
}

TEST(MultiFrequency, SingleStageEqualsPlainDbim) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  const cvec truth =
      gaussian_blob(grid, Vec2{0.3, 0.0}, 0.5, cplx{0.01, 0.0});

  const MultiFrequencyResult mf =
      multifrequency_reconstruct(cfg, truth, {{0, 8}});

  Scenario scene(cfg, truth);
  DbimOptions opts;
  opts.max_iterations = 8;
  const DbimResult plain = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);

  // Same algorithm, same seed-free deterministic pipeline.
  cvec mf_contrast = contrast_from_permittivity(grid, mf.permittivity);
  EXPECT_LT(image_rmse(mf_contrast, plain.contrast), 1e-8);
}

TEST(MultiFrequency, CoarseStageSeedsFineStage) {
  ScenarioConfig cfg;
  cfg.nx = 64;
  cfg.num_transmitters = 8;
  cfg.num_receivers = 24;
  Grid grid(cfg.nx);
  const cvec truth = annulus(grid, 1.0, 1.8, cplx{0.02, 0.0});

  const MultiFrequencyResult mf =
      multifrequency_reconstruct(cfg, truth, {{1, 6}, {0, 6}});
  ASSERT_EQ(mf.stage_residuals.size(), 2u);
  ASSERT_EQ(mf.permittivity.size(), grid.num_pixels());

  // The fine stage starts from the upsampled coarse image, so its
  // *initial* residual must already be far below 1 (a zero start).
  ASSERT_FALSE(mf.stage_residuals[1].empty());
  EXPECT_LT(mf.stage_residuals[1].front(), 0.75);
  // And it must end better than it started.
  EXPECT_LT(mf.stage_residuals[1].back(), mf.stage_residuals[1].front());
}

TEST(MultiFrequency, BeatsSingleFrequencyAtEqualFineIterations) {
  // High contrast: single-frequency DBIM converges slowly from zero;
  // a coarse stage first gets closer for the same fine-grid effort.
  ScenarioConfig cfg;
  cfg.nx = 64;
  cfg.num_transmitters = 8;
  cfg.num_receivers = 24;
  Grid grid(cfg.nx);
  const cvec truth = disks(grid, {{Vec2{0.0, 0.0}, 1.4, cplx{0.08, 0.0}}});

  const MultiFrequencyResult mf =
      multifrequency_reconstruct(cfg, truth, {{1, 10}, {0, 8}});

  Scenario scene(cfg, truth);
  DbimOptions opts;
  opts.max_iterations = 8;
  const DbimResult single = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);

  const cvec mf_contrast = contrast_from_permittivity(grid, mf.permittivity);
  EXPECT_LT(image_rmse(mf_contrast, scene.true_contrast()),
            image_rmse(single.contrast, scene.true_contrast()));
}

}  // namespace
}  // namespace ffw
