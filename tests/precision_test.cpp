// Mixed-precision (Precision::kMixed) MLFMA: fp32 operator tables,
// spectra panels and halo wire format must reproduce the fp64 engine to
// the fp32 error budget (~3e-6 relative L2 — table rounding plus fp32
// streaming accumulation), halve the operator footprint and the on-wire
// halo bytes, and reach fp64-level solver tolerances through the
// iterative-refinement outer loop.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "forward/forward.hpp"
#include "linalg/block.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"
#include "mlfma/partitioned.hpp"

namespace ffw {
namespace {

// Tags used by PartitionedMlfma (mirrored so the wire-format test can
// assert per-tag traffic): near-field halo = 1, level-l halo = 10 + l.
constexpr int kTagNear = 1;
constexpr int kTagLevel = 10;

// Relative L2 budget of the fp32 path: ~6e-8 per rounded table entry
// plus fp32 accumulation over the streamed phases (see DESIGN.md
// Sec. 10).
constexpr double kMixedTol = 3e-6;

MlfmaEngine make_engine(const QuadTree& tree, Precision p) {
  MlfmaParams params;
  params.precision = p;
  return MlfmaEngine(tree, params);
}

double rel_l2(ccspan got, ccspan want) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    num += std::norm(got[i] - want[i]);
    den += std::norm(want[i]);
  }
  return std::sqrt(num / den);
}

class MixedApplySweep : public ::testing::TestWithParam<int> {};

TEST_P(MixedApplySweep, SingleApplyMatchesFp64WithinBudget) {
  const int nx = GetParam();
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine f64 = make_engine(tree, Precision::kDouble);
  MlfmaEngine mix = make_engine(tree, Precision::kMixed);
  EXPECT_EQ(mix.precision(), Precision::kMixed);

  const std::size_t n = grid.num_pixels();
  Rng rng(static_cast<std::uint64_t>(nx));
  cvec x(n), want(n), got(n);
  rng.fill_cnormal(x);
  f64.apply(x, want);
  mix.apply(x, got);
  EXPECT_LT(rel_l2(got, want), kMixedTol) << "nx=" << nx;
}

TEST_P(MixedApplySweep, BlockApplyMatchesFp64PerColumn) {
  const int nx = GetParam();
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine f64 = make_engine(tree, Precision::kDouble);
  MlfmaEngine mix = make_engine(tree, Precision::kMixed);

  const std::size_t nrhs = 5;
  const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                       tree.num_leaves()};
  Rng rng(static_cast<std::uint64_t>(10 * nx));
  cvec x(lo.size()), want(lo.size()), got(lo.size());
  rng.fill_cnormal(x);
  f64.apply_block(x, want, nrhs);
  mix.apply_block(x, got, nrhs);

  const std::size_t n = grid.num_pixels();
  cvec wc(n), gc(n);
  for (std::size_t r = 0; r < nrhs; ++r) {
    block_col_get(lo, want, r, wc);
    block_col_get(lo, got, r, gc);
    EXPECT_LT(rel_l2(gc, wc), kMixedTol) << "nx=" << nx << " col=" << r;
  }
}

TEST_P(MixedApplySweep, HermBlockApplyMatchesFp64) {
  const int nx = GetParam();
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine f64 = make_engine(tree, Precision::kDouble);
  MlfmaEngine mix = make_engine(tree, Precision::kMixed);

  const std::size_t nrhs = 3;
  const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                       tree.num_leaves()};
  Rng rng(static_cast<std::uint64_t>(20 * nx));
  cvec x(lo.size()), want(lo.size()), got(lo.size());
  rng.fill_cnormal(x);
  f64.apply_herm_block(x, want, nrhs);
  mix.apply_herm_block(x, got, nrhs);
  EXPECT_LT(rel_l2(got, want), kMixedTol) << "nx=" << nx;
}

INSTANTIATE_TEST_SUITE_P(Trees, MixedApplySweep, ::testing::Values(64, 128));

TEST(MixedPrecision, TablesHalveOperatorFootprint) {
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaEngine f64 = make_engine(tree, Precision::kDouble);
  MlfmaEngine mix = make_engine(tree, Precision::kMixed);

  // Tables are built in fp64, rounded once, and the fp64 copies dropped:
  // the table footprint must land at half (small slack for the
  // band-start index arrays, which stay integer-width).
  const std::size_t ops64 = f64.operators().bytes();
  const std::size_t ops32 = mix.operators().bytes();
  EXPECT_LT(ops32, (55 * ops64) / 100);
  EXPECT_GT(ops32, (40 * ops64) / 100);

  const std::size_t near64 = f64.nearfield().bytes();
  const std::size_t near32 = mix.nearfield().bytes();
  EXPECT_EQ(near32, near64 / 2);
}

TEST(MixedPrecision, ShrinkWorkspaceReleasesPanelsAndStaysCorrect) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine = make_engine(tree, Precision::kMixed);
  const std::size_t n = grid.num_pixels();
  const std::size_t nrhs = 16;
  const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                       tree.num_leaves()};
  Rng rng(5);
  cvec xb(lo.size()), yb(lo.size());
  rng.fill_cnormal(xb);
  engine.apply_block(xb, yb, nrhs);
  const std::size_t wide = engine.bytes();
  engine.shrink_workspace();
  EXPECT_LT(engine.bytes(), wide);

  // The next apply re-reserves what it needs and matches a fresh engine.
  cvec x(n), y1(n), y2(n);
  rng.fill_cnormal(x);
  engine.apply(x, y1);
  MlfmaEngine fresh = make_engine(tree, Precision::kMixed);
  fresh.apply(x, y2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(MixedPrecision, ApplicationsCounterAdvancesByNrhs) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine = make_engine(tree, Precision::kMixed);
  const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), 4,
                       tree.num_leaves()};
  cvec x(lo.size(), cplx{1.0, 0.0}), y(lo.size());
  const std::uint64_t before = engine.phase_times().applications;
  engine.apply_block(x, y, 4);
  EXPECT_EQ(engine.phase_times().applications, before + 4);
}

/// Smooth, well-conditioned test contrast (no resonance): the refined
/// solve must converge without the fp64 fallback.
cvec smooth_contrast(const Grid& grid, double amplitude) {
  const int nx = grid.nx();
  cvec o(grid.num_pixels());
  for (int j = 0; j < nx; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double u = (i + 0.5) / nx - 0.5, v = (j + 0.5) / nx - 0.5;
      const double r2 = u * u + v * v;
      o[static_cast<std::size_t>(j) * nx + i] =
          amplitude * std::exp(-40.0 * r2);
    }
  }
  return o;
}

TEST(MixedRefinement, ReachesFp64ToleranceInFewRounds) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine f64 = make_engine(tree, Precision::kDouble);
  MlfmaEngine mix = make_engine(tree, Precision::kMixed);

  BicgstabOptions fw;
  fw.tol = 1e-8;
  fw.max_iterations = 400;
  ForwardSolver solver(f64, fw);
  solver.set_contrast(smooth_contrast(grid, 0.05));
  solver.set_mixed_engine(&mix);
  ASSERT_EQ(solver.mixed_engine(), &mix);

  const std::size_t n = grid.num_pixels(), nrhs = 4;
  Rng rng(91);
  cvec b(n * nrhs), x(n * nrhs, cplx{});
  rng.fill_cnormal(b);

  RefinedOptions opts;
  opts.tol = 1e-8;
  const RefinedResult res = solver.solve_block_refined(b, x, nrhs, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.fell_back);
  EXPECT_LE(res.relres, 1e-8);
  // Each round gains ~max(inner tol 1e-4, fp32 error 3e-6): 1e-8 from
  // O(1) takes 2-3 rounds; more means refinement is not contracting.
  EXPECT_LE(res.refinements, 4);

  // The fp64 residual of the returned solution really is at tolerance.
  cvec ax(n * nrhs);
  for (std::size_t r = 0; r < nrhs; ++r) {
    solver.apply_system(ccspan{x.data() + r * n, n},
                        cspan{ax.data() + r * n, n});
    EXPECT_LT(rel_l2(ccspan{ax.data() + r * n, n}, ccspan{b.data() + r * n, n}),
              2e-8)
        << "col=" << r;
  }

  // Matches the pure-fp64 block solve to the shared tolerance.
  cvec x64(n * nrhs, cplx{});
  const BlockBicgstabResult ref = solver.solve_block(b, x64, nrhs);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(rel_l2(x, x64), 1e-6);
}

TEST(MixedRefinement, AdjointSolveReachesFp64Tolerance) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine f64 = make_engine(tree, Precision::kDouble);
  MlfmaEngine mix = make_engine(tree, Precision::kMixed);

  BicgstabOptions fw;
  fw.tol = 1e-8;
  fw.max_iterations = 400;
  ForwardSolver solver(f64, fw);
  solver.set_contrast(smooth_contrast(grid, 0.05));
  solver.set_mixed_engine(&mix);

  const std::size_t n = grid.num_pixels(), nrhs = 3;
  Rng rng(92);
  cvec b(n * nrhs), x(n * nrhs, cplx{});
  rng.fill_cnormal(b);

  RefinedOptions opts;
  opts.tol = 1e-8;
  const RefinedResult res =
      solver.solve_adjoint_block_refined(b, x, nrhs, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.relres, 1e-8);

  cvec x64(n * nrhs, cplx{});
  const BlockBicgstabResult ref = solver.solve_adjoint_block(b, x64, nrhs);
  ASSERT_TRUE(ref.converged);
  EXPECT_LT(rel_l2(x, x64), 1e-6);
}

/// Gathers the partitioned blocked apply into a full vector.
cvec distributed_apply(const QuadTree& tree, const PartitionedMlfma& dist,
                       VCluster& vc, ccspan x, std::size_t nrhs) {
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  cvec y(x.size(), cplx{});
  vc.run([&](Comm& comm) {
    const std::size_t b = dist.leaf_begin(comm.rank()) * np * nrhs;
    const std::size_t sz = dist.local_pixels(comm.rank()) * nrhs;
    cvec y_local(sz);
    dist.apply_block(comm, ccspan{x.data() + b, sz}, y_local, nrhs, 0,
                     ApplySchedule::kOverlapped);
    std::copy(y_local.begin(), y_local.end(), y.begin() + b);
  });
  return y;
}

TEST(MixedPartitioned, HaloBytesExactlyHalveAndResultMatches) {
  Grid grid(128);
  QuadTree tree(grid);
  const int ranks = 4;
  const std::size_t nrhs = 4;
  MlfmaParams p64, p32;
  p32.precision = Precision::kMixed;
  PartitionedMlfma d64(tree, p64, ranks);
  PartitionedMlfma d32(tree, p32, ranks);

  const std::size_t n = grid.num_pixels() * nrhs;
  Rng rng(31);
  cvec x(n);
  rng.fill_cnormal(x);

  VCluster vc64(ranks);
  const cvec y64 = distributed_apply(tree, d64, vc64, x, nrhs);
  VCluster vc32(ranks);
  const cvec y32 = distributed_apply(tree, d32, vc32, x, nrhs);

  // fp32 spectra on the wire: exactly half the bytes of the fp64 run on
  // every tag, in the same number of messages.
  const auto tags64 = vc64.traffic_by_tag();
  const auto tags32 = vc32.traffic_by_tag();
  ASSERT_EQ(tags64.size(), tags32.size());
  ASSERT_TRUE(tags64.count(kTagNear) == 1);
  ASSERT_TRUE(tags64.count(kTagLevel) == 1);
  for (const auto& [tag, t64] : tags64) {
    const TagTraffic t32 = tags32.at(tag);
    EXPECT_EQ(t64.bytes, 2 * t32.bytes) << "tag=" << tag;
    EXPECT_EQ(t64.messages, t32.messages) << "tag=" << tag;
  }
  EXPECT_EQ(vc64.traffic().total_bytes(), 2 * vc32.traffic().total_bytes());

  // And the mixed partitioned result still matches fp64 to the budget,
  // column by column.
  const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                       tree.num_leaves()};
  const std::size_t npix = grid.num_pixels();
  cvec wc(npix), gc(npix);
  for (std::size_t r = 0; r < nrhs; ++r) {
    block_col_get(lo, y64, r, wc);
    block_col_get(lo, y32, r, gc);
    EXPECT_LT(rel_l2(gc, wc), kMixedTol) << "col=" << r;
  }
}

}  // namespace
}  // namespace ffw
