// Iteration-reduction layer (ISSUE 6): near-field block-Jacobi
// preconditioning, Eisenstat-Walker forcing, Krylov recycling, and the
// refined-solver stall fallback — correctness, determinism (serial,
// parallel rerun, crash-recovery) and observability.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "dbim/parallel_driver.hpp"
#include "forward/forward.hpp"
#include "forward/precond.hpp"
#include "forward/recycle.hpp"
#include "linalg/kernels.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"
#include "phantom/setup.hpp"
#include "vcluster/fault.hpp"

namespace ffw {
namespace {

// Dense per-leaf system M_c = I - A_self diag(O_c) for verification.
CMatrix leaf_system(const CMatrix& self, ccspan o_leaf) {
  const std::size_t np = self.rows();
  CMatrix m(np, np);
  for (std::size_t j = 0; j < np; ++j)
    for (std::size_t i = 0; i < np; ++i)
      m(i, j) = (i == j ? cplx{1.0} : cplx{}) - self(i, j) * o_leaf[j];
  return m;
}

struct LeafFixture {
  Grid grid{32};
  QuadTree tree{grid};
  MlfmaEngine engine{tree};
  cvec o_clu;
  std::size_t np, nleaf;

  LeafFixture() {
    const cvec deps =
        gaussian_blob(grid, Vec2{0.2, -0.1}, 0.6, cplx{0.05, 0.01});
    const cvec o_nat = contrast_from_permittivity(grid, deps);
    o_clu.assign(o_nat.size(), cplx{});
    tree.to_cluster_order(o_nat, o_clu);
    np = static_cast<std::size_t>(tree.pixels_per_leaf());
    nleaf = tree.num_leaves();
  }
};

TEST(NearFieldBlockJacobi, InvertsLeafSelfBlocks) {
  LeafFixture f;
  const CMatrix& self = f.engine.nearfield().type(4);
  NearFieldBlockJacobi p(self, f.o_clu);
  EXPECT_EQ(p.block_dim(), f.np);
  EXPECT_EQ(p.num_blocks(), f.nleaf);
  EXPECT_GT(p.bytes(), 0u);

  const BlockLayout lo{f.np, 2, f.nleaf};
  Rng rng(71);
  cvec x(lo.size()), z(lo.size());
  rng.fill_cnormal(x);
  p.apply(x, z, lo);
  // Verify M_c z = x block by block against the dense leaf system.
  cvec mz(f.np), zl(f.np), xl(f.np);
  for (std::size_t c = 0; c < f.nleaf; ++c) {
    const CMatrix m =
        leaf_system(self, ccspan{f.o_clu.data() + c * f.np, f.np});
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      std::copy_n(z.data() + lo.at(c, r), f.np, zl.begin());
      std::copy_n(x.data() + lo.at(c, r), f.np, xl.begin());
      matvec(m, zl, mz);
      EXPECT_LT(rel_l2_diff(mz, xl), 1e-12) << "leaf " << c << " rhs " << r;
    }
  }

  // Hermitian apply: M_c^H z = x.
  p.apply_herm(x, z, lo);
  for (std::size_t c = 0; c < f.nleaf; ++c) {
    const CMatrix m =
        leaf_system(self, ccspan{f.o_clu.data() + c * f.np, f.np});
    CMatrix mh(f.np, f.np);
    for (std::size_t j = 0; j < f.np; ++j)
      for (std::size_t i = 0; i < f.np; ++i) mh(i, j) = std::conj(m(j, i));
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      std::copy_n(z.data() + lo.at(c, r), f.np, zl.begin());
      std::copy_n(x.data() + lo.at(c, r), f.np, xl.begin());
      matvec(mh, zl, mz);
      EXPECT_LT(rel_l2_diff(mz, xl), 1e-12) << "leaf " << c << " rhs " << r;
    }
  }
}

TEST(NearFieldBlockJacobi, MixedStorageSolvesToFp32Accuracy) {
  LeafFixture f;
  const CMatrix& self = f.engine.nearfield().type(4);
  NearFieldBlockJacobi p64(self, f.o_clu, Precision::kDouble);
  NearFieldBlockJacobi p32(self, f.o_clu, Precision::kMixed);
  EXPECT_LT(p32.bytes(), p64.bytes());  // fp32 factors: about half

  const BlockLayout lo{f.np, 1, f.nleaf};
  Rng rng(72);
  cvec x(lo.size()), z64(lo.size()), z32(lo.size());
  rng.fill_cnormal(x);
  p64.apply(x, z64, lo);
  p32.apply(x, z32, lo);
  const double d = rel_l2_diff(z32, z64);
  EXPECT_LT(d, 1e-4);   // fp32 triangular solves
  EXPECT_GT(d, 1e-12);  // and they really are fp32, not fp64 copies
}

// The preconditioner must not move the answer: with a tight tolerance
// every preconditioned solve path agrees with the unpreconditioned one
// to 1e-10 on a homogeneous cylinder, while spending fewer iterations.
TEST(PrecondForward, MatchesUnpreconditionedSolvesOnCylinder) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const cvec deps =
      disks(grid, {Disk{Vec2{0.1, -0.1}, 0.5, cplx{0.1, 0.0}}});
  const cvec contrast = contrast_from_permittivity(grid, deps);
  const std::size_t n = grid.num_pixels();

  BicgstabOptions opts;
  opts.tol = 1e-12;
  ForwardSolver plain(engine, opts), pre(engine, opts);
  plain.set_contrast(contrast);
  pre.set_near_preconditioner(true);
  pre.set_contrast(contrast);
  ASSERT_NE(pre.near_preconditioner(), nullptr);
  EXPECT_GT(pre.stats().precond_setup_seconds, 0.0);

  Rng rng(73);
  cvec rhs(n);
  rng.fill_cnormal(rhs);

  cvec phi_a(n, cplx{}), phi_b(n, cplx{});
  const auto ra = plain.solve(rhs, phi_a);
  const auto rb = pre.solve(rhs, phi_b);
  ASSERT_TRUE(ra.converged && rb.converged);
  EXPECT_LT(rel_l2_diff(phi_b, phi_a), 1e-10);
  EXPECT_LT(rb.iterations, ra.iterations) << "preconditioner saved nothing";

  cvec psi_a(n, cplx{}), psi_b(n, cplx{});
  ASSERT_TRUE(plain.solve_adjoint(rhs, psi_a).converged);
  ASSERT_TRUE(pre.solve_adjoint(rhs, psi_b).converged);
  EXPECT_LT(rel_l2_diff(psi_b, psi_a), 1e-10);

  const std::size_t nrhs = 3;
  cvec brhs(n * nrhs), xa(n * nrhs, cplx{}), xb(n * nrhs, cplx{});
  rng.fill_cnormal(brhs);
  const auto ba = plain.solve_block(brhs, xa, nrhs);
  const auto bb = pre.solve_block(brhs, xb, nrhs);
  ASSERT_TRUE(ba.converged && bb.converged);
  EXPECT_LT(rel_l2_diff(xb, xa), 1e-10);
  EXPECT_LT(bb.total_iterations(), ba.total_iterations());

  std::fill(xa.begin(), xa.end(), cplx{});
  std::fill(xb.begin(), xb.end(), cplx{});
  ASSERT_TRUE(plain.solve_adjoint_block(brhs, xa, nrhs).converged);
  ASSERT_TRUE(pre.solve_adjoint_block(brhs, xb, nrhs).converged);
  EXPECT_LT(rel_l2_diff(xb, xa), 1e-10);
}

// Regression (pre-fix the final residual could be WORSE than the best
// iterate): an inner "solver" with the wrong operator sign makes every
// refinement round double the residual; with the fallback capped at zero
// iterations the solve must still return the best iterate seen (x = 0,
// relres = 1), not the stalled one (x = -b, relres = 2).
TEST(Refined, StallFallbackNeverWorsensTheResidual) {
  const BlockLayout lo{8, 2, 1};
  const auto identity = [](ccspan in, cspan out) { copy(in, out); };
  const auto negated = [](ccspan in, cspan out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = -in[i];
  };
  cvec b(lo.size(), cplx{1.0}), x(lo.size(), cplx{});
  RefinedOptions ro;
  ro.tol = 1e-12;
  ro.fallback_max_iterations = 0;
  const RefinedResult res =
      refined_block_bicgstab(identity, negated, b, x, lo, ro);
  EXPECT_TRUE(res.fell_back);
  EXPECT_FALSE(res.converged);
  EXPECT_NEAR(res.relres, 1.0, 1e-14);
  for (const cplx& v : x) EXPECT_EQ(v, cplx{});
}

// At tolerances far above the fp32 operator error the refined solver
// must bypass the fp64 scaffolding entirely: no outer applies, no
// refinement rounds — just the inner solve (the Eisenstat-Walker
// forced regime of DBIM).
TEST(Refined, LooseToleranceSolvesDirectlyOnInnerOperator) {
  const BlockLayout lo{8, 2, 1};
  bool outer_called = false;
  const auto outer = [&](ccspan in, cspan out) {
    outer_called = true;
    copy(in, out);
  };
  const auto inner = [](ccspan in, cspan out) { copy(in, out); };
  Rng rng(75);
  cvec b(lo.size()), x(lo.size(), cplx{});
  rng.fill_cnormal(b);
  RefinedOptions ro;
  ro.tol = 1e-3;  // >= direct_tol default 3e-4
  const RefinedResult res = refined_block_bicgstab(outer, inner, b, x, lo, ro);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.fell_back);
  EXPECT_EQ(res.refinements, 0);
  EXPECT_FALSE(outer_called);
  EXPECT_LT(rel_l2_diff(x, b), 1e-10);  // identity system: x = b

  // Forcing the refinement path back on (direct_tol = 0) uses the
  // outer operator again.
  std::fill(x.begin(), x.end(), cplx{});
  ro.direct_tol = 0.0;
  refined_block_bicgstab(outer, inner, b, x, lo, ro);
  EXPECT_TRUE(outer_called);
}

TEST(KrylovRecycler, SeedsFromRetainedSolvesDeterministically) {
  Rng rng(74);
  const std::size_t n = 32, nrhs = 2;
  const BlockLayout lo{8, nrhs, 4};
  CMatrix a(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) a(i, j) = 0.05 * rng.cnormal();
    a(j, j) += 2.0;
  }
  const LuFactors lu(a);

  KrylovRecycler rec(RecycleOptions{2, 1e-12});
  EXPECT_EQ(rec.size(), 0u);

  // Solve and retain two block systems with slowly drifting rhs.
  cvec b0(lo.size()), x0(lo.size());
  rng.fill_cnormal(b0);
  cvec col(n);
  for (std::size_t r = 0; r < nrhs; ++r) {
    block_col_get(lo, b0, r, col);
    block_col_set(lo, x0, r, lu.solve(col));
  }
  rec.store(b0, x0, lo);
  EXPECT_EQ(rec.size(), 1u);

  // New rhs close to the retained one: the seed must capture most of it.
  cvec b1(lo.size()), noise(lo.size()), x_seed(lo.size());
  rng.fill_cnormal(noise);
  for (std::size_t i = 0; i < lo.size(); ++i)
    b1[i] = 1.01 * b0[i] + 0.001 * noise[i];
  EXPECT_EQ(rec.seed(b1, x_seed, lo), nrhs);

  // Residual of the seeded guess: ||b1 - A x_seed|| << ||b1||.
  cvec ax(n);
  for (std::size_t r = 0; r < nrhs; ++r) {
    block_col_get(lo, x_seed, r, col);
    matvec(a, col, ax);
    block_col_get(lo, b1, r, col);
    double rn2 = 0.0, bn2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rn2 += std::norm(col[i] - ax[i]);
      bn2 += std::norm(col[i]);
    }
    EXPECT_LT(std::sqrt(rn2 / bn2), 0.05) << "column " << r;
  }

  // Rerunning the seed is bit-identical.
  cvec x_seed2(lo.size(), cplx{1.0});
  EXPECT_EQ(rec.seed(b1, x_seed2, lo), nrhs);
  EXPECT_EQ(std::memcmp(x_seed.data(), x_seed2.data(),
                        x_seed.size() * sizeof(cplx)),
            0);

  // Depth eviction and unseedable (zero-history) columns.
  rec.store(b1, x_seed, lo);
  rec.store(b0, x0, lo);
  rec.store(b1, x_seed, lo);
  EXPECT_EQ(rec.size(), 2u);
  rec.clear();
  cvec xz(lo.size(), cplx{1.0});
  EXPECT_EQ(rec.seed(b1, xz, lo), 0u);
  for (const cplx& v : xz) EXPECT_EQ(v, cplx{});  // zeroed, not stale
}

struct AccelScene {
  ScenarioConfig cfg;
  std::unique_ptr<Scenario> scene;

  AccelScene() {
    cfg.nx = 32;
    cfg.num_transmitters = 8;
    cfg.num_receivers = 24;
    Grid grid(cfg.nx);
    scene = std::make_unique<Scenario>(
        cfg, gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));
  }

  DbimOptions accel_options(int iters) const {
    DbimOptions o;
    o.max_iterations = iters;
    o.near_precondition = true;
    o.adaptive_forcing = true;
    o.recycle_depth = 2;
    return o;
  }
};

// The full acceleration stack (preconditioner + forcing + recycling)
// must cut Krylov iterations without degrading the reconstruction, and
// a rerun must be bit-identical (all recycling/forcing state is a pure
// function of the deterministic outer loop).
TEST(DbimAccel, SerialAccelerationCutsIterationsAndIsDeterministic) {
  AccelScene f;
  DbimOptions base;
  base.max_iterations = 5;
  const DbimResult ref = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      base);

  const DbimOptions accel = f.accel_options(5);
  const DbimResult a1 = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      accel);
  const DbimResult a2 = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      accel);

  ASSERT_EQ(a1.contrast.size(), a2.contrast.size());
  EXPECT_EQ(std::memcmp(a1.contrast.data(), a2.contrast.data(),
                        a1.contrast.size() * sizeof(cplx)),
            0);
  EXPECT_EQ(a1.history.relative_residual, a2.history.relative_residual);
  EXPECT_EQ(a1.history.bicgstab_iterations, a2.history.bicgstab_iterations);

  EXPECT_LT(a1.history.bicgstab_iterations, ref.history.bicgstab_iterations)
      << "acceleration stack saved no Krylov iterations";
  // Same reconstruction quality (the looser forced tolerances only relax
  // solves whose accuracy the outer residual cannot see).
  EXPECT_LT(a1.history.relative_residual.back(),
            1.5 * ref.history.relative_residual.back());
}

TEST(DbimAccel, ObsCountersTrackThePipeline) {
  obs::set_enabled(true);
  obs::reset();
  AccelScene f;
  dbim_reconstruct(f.scene->engine(), f.scene->transceivers(),
                   f.scene->measurements(), f.accel_options(3));
  const auto totals = obs::counter_totals(0);
  obs::set_enabled(false);
  const auto at = [&](obs::Counter c) {
    return totals[static_cast<std::size_t>(c)];
  };
  EXPECT_GT(at(obs::Counter::kBicgstabTotalIters), 0u);
  EXPECT_GT(at(obs::Counter::kPrecondSetupNs), 0u);
  EXPECT_GT(at(obs::Counter::kPrecondApplyNs), 0u);
  // Gradient/step recyclers have snapshots from iteration 2 onward.
  EXPECT_GT(at(obs::Counter::kRecycleHits), 0u);
}

class AccelDecompositions
    : public ::testing::TestWithParam<std::pair<int, int>> {};

// With every acceleration knob on, the parallel driver still reproduces
// the serial driver for any decomposition: identical per-column forcing
// and recycling math, just distributed.
TEST_P(AccelDecompositions, MatchesSerialDriver) {
  const auto [ig, tr] = GetParam();
  AccelScene f;
  const DbimOptions opts = f.accel_options(6);
  const DbimResult serial = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);

  ParallelDbimConfig pcfg;
  pcfg.illum_groups = ig;
  pcfg.tree_ranks = tr;
  pcfg.dbim = opts;
  VCluster vc(ig * tr);
  const DbimResult par = dbim_reconstruct_parallel(
      vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
      pcfg);

  ASSERT_EQ(par.history.relative_residual.size(),
            serial.history.relative_residual.size());
  for (std::size_t i = 0; i < serial.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(par.history.relative_residual[i],
                serial.history.relative_residual[i],
                0.02 * serial.history.relative_residual[i])
        << "iteration " << i << " (ig=" << ig << ", tr=" << tr << ")";
  }
  EXPECT_LT(image_rmse(par.contrast, serial.contrast), 0.05)
      << "ig=" << ig << " tr=" << tr;
}

INSTANTIATE_TEST_SUITE_P(Grids, AccelDecompositions,
                         ::testing::Values(std::pair{2, 1}, std::pair{1, 2},
                                           std::pair{2, 2}));

class AccelCrashRecovery
    : public ::testing::TestWithParam<std::pair<int, int>> {};

// Crash recovery with the acceleration stack on: the forcing tolerance
// is re-derived from the checkpointed residual history and the recycle
// state resets with the background fields, so a crash-recovered run must
// match the fault-free accelerated run to rounding.
TEST_P(AccelCrashRecovery, SurvivesInjectedCrashesBitIdentically) {
  const auto [ig, tr] = GetParam();
  const int p = ig * tr;
  AccelScene f;
  DbimOptions opts = f.accel_options(6);
  opts.warm_start_fields = false;  // iterates pure in checkpointed state

  ParallelDbimConfig pcfg;
  pcfg.illum_groups = ig;
  pcfg.tree_ranks = tr;
  pcfg.dbim = opts;
  const std::string ref_path =
      "/tmp/ffw_precond_e2e_ref_" + std::to_string(p) + ".ckpt";
  const std::string crash_path =
      "/tmp/ffw_precond_e2e_crash_" + std::to_string(p) + ".ckpt";
  pcfg.checkpoint_path = ref_path;

  VCluster vc_ref(p);
  const DbimResult ref = dbim_reconstruct_parallel(
      vc_ref, f.scene->tree(), f.scene->transceivers(),
      f.scene->measurements(), pcfg);

  const TrafficStats t = vc_ref.traffic();
  const auto sends_of = [&](int r) {
    std::uint64_t s = 0;
    for (int d = 0; d < p; ++d) s += t.messages[r * p + d];
    return s;
  };
  ASSERT_GT(sends_of(1), 10u);

  FaultPlan plan;
  plan.crashes.push_back({1, sends_of(1) / 2});

  pcfg.checkpoint_path = crash_path;
  pcfg.max_restarts = 2;
  VCluster vc_crash(p);
  vc_crash.install_fault_plan(plan);
  const DbimResult crashed = dbim_reconstruct_parallel(
      vc_crash, f.scene->tree(), f.scene->transceivers(),
      f.scene->measurements(), pcfg);

  EXPECT_EQ(vc_crash.fault_stats().crashes, 1u);
  ASSERT_EQ(crashed.history.relative_residual.size(),
            ref.history.relative_residual.size());
  for (std::size_t i = 0; i < ref.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(crashed.history.relative_residual[i],
                ref.history.relative_residual[i],
                1e-10 * ref.history.relative_residual[i])
        << "iteration " << i << " (ig=" << ig << ", tr=" << tr << ")";
  }
  EXPECT_LE(image_rmse(crashed.contrast, ref.contrast), 1e-10);
  std::remove(ref_path.c_str());
  std::remove(crash_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccelCrashRecovery,
                         ::testing::Values(std::pair{2, 1}, std::pair{2, 2}));

}  // namespace
}  // namespace ffw
