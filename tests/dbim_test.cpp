// End-to-end inverse solver tests: DBIM reconstructs small phantoms, the
// residual history behaves like the paper describes, and the nonlinear
// (multiple-scattering) reconstruction beats the linear Born baseline at
// high contrast — the mechanism behind paper Figs. 1 and 2.
#include <gtest/gtest.h>

#include "dbim/born.hpp"
#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig c;
  c.nx = 32;  // 3.2 lambda domain, 1024 pixels
  c.num_transmitters = 8;
  c.num_receivers = 24;
  return c;
}

TEST(Dbim, ReconstructsWeakBlob) {
  ScenarioConfig cfg = small_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));

  DbimOptions opts;
  opts.max_iterations = 12;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);

  ASSERT_FALSE(res.history.relative_residual.empty());
  const double first = res.history.relative_residual.front();
  const double last = res.history.relative_residual.back();
  EXPECT_LT(last, 0.05 * first);  // two orders of magnitude-ish drop
  EXPECT_LT(image_rmse(res.contrast, scene.true_contrast()), 0.5);
}

TEST(Dbim, ThreeForwardSolvesPerIterationPerTransmitter) {
  ScenarioConfig cfg = small_config();
  cfg.num_transmitters = 4;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5, cplx{0.005, 0.0}));

  DbimOptions opts;
  opts.max_iterations = 5;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  // Paper Fig. 4: residual + gradient + step = 3 solves per transmitter
  // per iteration.
  EXPECT_EQ(res.history.forward_solves,
            static_cast<std::uint64_t>(3 * 4 * 5));
  EXPECT_GT(res.history.operator_applications, res.history.forward_solves);
}

TEST(Dbim, ResidualDecreasesMonotonically) {
  ScenarioConfig cfg = small_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg, annulus(grid, 0.5, 0.9, cplx{0.01, 0.0}));

  DbimOptions opts;
  opts.max_iterations = 8;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  const auto& hist = res.history.relative_residual;
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_LE(hist[i], hist[i - 1] * 1.05)
        << "residual increased at iteration " << i;
  }
}

TEST(Dbim, EarlyStopOnResidualTol) {
  ScenarioConfig cfg = small_config();
  cfg.num_transmitters = 4;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.6, cplx{0.004, 0.0}));
  DbimOptions opts;
  opts.max_iterations = 30;
  opts.residual_tol = 0.2;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  EXPECT_LT(res.history.relative_residual.size(), 30u);
  EXPECT_LT(res.history.relative_residual.back(), 0.2);
}

TEST(Dbim, WarmStartFromTruthConvergesImmediately) {
  ScenarioConfig cfg = small_config();
  cfg.num_transmitters = 4;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.1, 0.2}, 0.5, cplx{0.008, 0.0}));
  DbimOptions opts;
  opts.max_iterations = 1;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts, {},
      scene.true_contrast());
  // Starting from the true object, the initial residual reflects only
  // forward-solver tolerance (both solves at 1e-4).
  EXPECT_LT(res.history.relative_residual.front(), 1e-2);
}

// The Fig. 1 mechanism: at high contrast the Born (single-scattering)
// image degrades while DBIM stays accurate.
TEST(Dbim, BeatsBornAtHighContrast) {
  ScenarioConfig cfg = small_config();
  cfg.num_transmitters = 12;
  cfg.num_receivers = 32;
  Grid grid(cfg.nx);
  Scenario scene(cfg, annulus(grid, 0.5, 0.9, cplx{0.05, 0.0}));

  DbimOptions opts;
  opts.max_iterations = 15;
  const DbimResult dbim = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);

  BornOptions bopts;
  bopts.max_iterations = 25;
  const BornResult born = born_reconstruct(
      scene.grid(), scene.transceivers(), scene.measurements(), bopts);

  const double dbim_rmse = image_rmse(dbim.contrast, scene.true_contrast());
  const double born_rmse = image_rmse(born.contrast, scene.true_contrast());
  EXPECT_LT(dbim_rmse, born_rmse);
}

TEST(Born, RecoversVeryWeakScatterer) {
  // In the true Born regime the linear inverse is accurate.
  ScenarioConfig cfg = small_config();
  cfg.num_transmitters = 12;
  cfg.num_receivers = 32;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.6, cplx{0.002, 0.0}));
  BornOptions bopts;
  bopts.max_iterations = 30;
  const BornResult born = born_reconstruct(
      scene.grid(), scene.transceivers(), scene.measurements(), bopts);
  EXPECT_LT(image_rmse(born.contrast, scene.true_contrast()), 0.5);
  ASSERT_FALSE(born.relative_residual.empty());
  EXPECT_LT(born.relative_residual.back(),
            0.3 * born.relative_residual.front());
}

}  // namespace
}  // namespace ffw
