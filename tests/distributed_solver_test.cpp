// Distributed BiCGStab semantics: the reducer-parameterised solver over
// vcluster rank slices must match the serial solve exactly (same
// iteration count, same solution), because every scalar it computes is
// the same number.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "forward/bicgstab.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/kernels.hpp"
#include "vcluster/comm.hpp"

namespace ffw {
namespace {

/// Block-diagonal operator: rank r applies block r locally; this is the
/// simplest operator with honest distributed structure.
struct BlockOp {
  std::vector<CMatrix> blocks;
};

TEST(DistributedBicgstab, MatchesSerialSolve) {
  const int p = 4;
  const std::size_t nb = 20;  // block size
  Rng rng(81);
  BlockOp op;
  for (int r = 0; r < p; ++r) {
    CMatrix m(nb, nb);
    for (std::size_t j = 0; j < nb; ++j) {
      for (std::size_t i = 0; i < nb; ++i) m(i, j) = 0.15 * rng.cnormal();
      m(j, j) += 3.0;
    }
    op.blocks.push_back(std::move(m));
  }
  cvec b(nb * p);
  rng.fill_cnormal(b);

  // Serial reference: block-diagonal apply on the full vector.
  BicgstabOptions opts;
  opts.tol = 1e-10;
  cvec x_serial(nb * p, cplx{});
  const auto serial = bicgstab(
      [&](ccspan in, cspan out) {
        for (int r = 0; r < p; ++r) {
          matvec(op.blocks[static_cast<std::size_t>(r)],
                 ccspan{in.data() + static_cast<std::size_t>(r) * nb, nb},
                 cspan{out.data() + static_cast<std::size_t>(r) * nb, nb});
        }
      },
      b, x_serial, opts);
  ASSERT_TRUE(serial.converged);

  // Distributed: each rank owns one block slice; dots reduce over all.
  cvec x_dist(nb * p, cplx{});
  std::vector<int> iters(static_cast<std::size_t>(p), -1);
  VCluster vc(p);
  std::vector<int> all = {0, 1, 2, 3};
  vc.run([&](Comm& comm) {
    const int r = comm.rank();
    DotReducer red{
        [&comm, &all](cplx v) {
          double buf[2] = {v.real(), v.imag()};
          comm.group_allreduce_sum(rspan{buf, 2}, all);
          return cplx{buf[0], buf[1]};
        },
        [&comm, &all](double v) {
          return comm.group_allreduce_sum(v, all);
        }};
    cvec x_loc(nb, cplx{});
    const auto res = bicgstab(
        [&](ccspan in, cspan out) {
          matvec(op.blocks[static_cast<std::size_t>(r)], in, out);
        },
        ccspan{b.data() + static_cast<std::size_t>(r) * nb, nb}, x_loc,
        opts, red);
    EXPECT_TRUE(res.converged);
    iters[static_cast<std::size_t>(r)] = res.iterations;
    std::memcpy(x_dist.data() + static_cast<std::size_t>(r) * nb,
                x_loc.data(), nb * sizeof(cplx));
  });

  // Same Krylov trajectory: identical iteration counts on every rank.
  for (int r = 0; r < p; ++r) EXPECT_EQ(iters[static_cast<std::size_t>(r)],
                                        serial.iterations);
  EXPECT_LT(rel_l2_diff(x_dist, x_serial), 1e-9);
}

TEST(DistributedBicgstab, SingleRankReducerIsIdentity) {
  Rng rng(82);
  const std::size_t n = 30;
  CMatrix a(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) a(i, j) = 0.1 * rng.cnormal();
    a(j, j) += 2.0;
  }
  cvec b(n), x1(n, cplx{}), x2(n, cplx{});
  rng.fill_cnormal(b);
  const auto r1 = bicgstab(
      [&](ccspan in, cspan out) { matvec(a, in, out); }, b, x1);
  const auto r2 = bicgstab(
      [&](ccspan in, cspan out) { matvec(a, in, out); }, b, x2, {},
      DotReducer{});
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_LT(rel_l2_diff(x1, x2), 1e-14);
}

}  // namespace
}  // namespace ffw
