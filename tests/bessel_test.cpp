// Special-function substrate tests: values against high-precision
// references (Mathematica / mpmath, 16 significant digits), recurrence
// and Wronskian identities, and array-vs-scalar consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "special/bessel.hpp"

namespace ffw {
namespace {

TEST(Bessel, J0KnownValues) {
  EXPECT_NEAR(bessel_j0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(bessel_j0(1.0), 0.7651976865579666, 1e-13);
  EXPECT_NEAR(bessel_j0(2.404825557695773), 0.0, 1e-12);  // first zero
  EXPECT_NEAR(bessel_j0(5.0), -0.17759677131433830, 1e-13);
  EXPECT_NEAR(bessel_j0(10.0), -0.24593576445134835, 1e-12);
  EXPECT_NEAR(bessel_j0(13.9), 0.18357985545786959, 2e-11);  // series edge
  EXPECT_NEAR(bessel_j0(14.1), 0.15695287703260125, 2e-11);  // asym edge
  EXPECT_NEAR(bessel_j0(50.0), 0.055812327669251746, 1e-13);
  EXPECT_NEAR(bessel_j0(500.0), -0.034100556880728050, 1e-13);
}

TEST(Bessel, J1KnownValues) {
  EXPECT_NEAR(bessel_j1(0.0), 0.0, 1e-15);
  EXPECT_NEAR(bessel_j1(1.0), 0.4400505857449335, 1e-13);
  EXPECT_NEAR(bessel_j1(5.0), -0.3275791375914652, 1e-13);
  EXPECT_NEAR(bessel_j1(10.0), 0.04347274616886144, 1e-12);
  EXPECT_NEAR(bessel_j1(100.0), -0.07714535201411216, 1e-13);
  EXPECT_NEAR(bessel_j1(-1.0), -0.4400505857449335, 1e-13);  // odd function
}

TEST(Bessel, Y0KnownValues) {
  EXPECT_NEAR(bessel_y0(1.0), 0.08825696421567696, 1e-13);
  EXPECT_NEAR(bessel_y0(2.0), 0.5103756726497451, 1e-13);
  EXPECT_NEAR(bessel_y0(5.0), -0.30851762524903376, 1e-13);
  EXPECT_NEAR(bessel_y0(10.0), 0.05567116728359939, 1e-12);
  EXPECT_NEAR(bessel_y0(50.0), -0.09806499547007698, 1e-13);
  // Small argument (log singularity region).
  EXPECT_NEAR(bessel_y0(0.1), -1.5342386513503667, 1e-12);
  EXPECT_NEAR(bessel_y0(0.01), -3.0054556370836458, 1e-12);
}

TEST(Bessel, Y1KnownValues) {
  EXPECT_NEAR(bessel_y1(1.0), -0.7812128213002887, 1e-13);
  EXPECT_NEAR(bessel_y1(5.0), 0.1478631433912268, 1e-13);
  EXPECT_NEAR(bessel_y1(10.0), 0.24901542420695388, 1e-12);
  EXPECT_NEAR(bessel_y1(0.1), -6.458951094702027, 1e-11);
  EXPECT_NEAR(bessel_y1(100.0), -0.02037231200275932, 1e-13);
}

// Wronskian: J_{n+1}(x) Y_n(x) - J_n(x) Y_{n+1}(x) = 2/(pi x).
TEST(Bessel, Wronskian) {
  for (double x : {0.3, 1.0, 3.7, 7.11, 12.0, 14.5, 33.0, 120.0}) {
    const double w =
        bessel_j1(x) * bessel_y0(x) - bessel_j0(x) * bessel_y1(x);
    EXPECT_NEAR(w, 2.0 / (pi * x), 1e-12 * std::max(1.0, 2.0 / (pi * x)))
        << "x=" << x;
  }
}

TEST(Bessel, JnArrayMatchesScalars) {
  for (double x : {0.5, 3.0, 11.0, 20.0, 77.0}) {
    rvec jn(31);
    bessel_jn_array(x, jn);
    EXPECT_NEAR(jn[0], bessel_j0(x), 1e-12) << "x=" << x;
    EXPECT_NEAR(jn[1], bessel_j1(x), 1e-12) << "x=" << x;
  }
}

TEST(Bessel, JnArrayKnownHighOrders) {
  rvec jn(26);
  bessel_jn_array(10.0, jn);
  EXPECT_NEAR(jn[5], -0.23406152818679364, 1e-12);   // J5(10)
  EXPECT_NEAR(jn[10], 0.20748610663335885, 1e-12);   // J10(10)
  EXPECT_NEAR(jn[25], 7.2146349904696136e-09, 1e-16); // J25(10), deep decay
}

TEST(Bessel, JnSumIdentity) {
  // J0(x) + 2 sum_{k>=1} J_{2k}(x) = 1 for all x.
  for (double x : {1.0, 7.0, 25.0, 60.0}) {
    rvec jn(static_cast<std::size_t>(2 * x) + 40);
    bessel_jn_array(x, jn);
    double s = jn[0];
    for (std::size_t m = 2; m < jn.size(); m += 2) s += 2.0 * jn[m];
    EXPECT_NEAR(s, 1.0, 1e-12) << "x=" << x;
  }
}

TEST(Bessel, YnArrayKnownValues) {
  rvec yn(11);
  bessel_yn_array(5.0, yn);
  EXPECT_NEAR(yn[2], 0.36766288260552311, 1e-12);   // Y2(5)
  EXPECT_NEAR(yn[5], -0.45369482249110193, 1e-12);  // Y5(5)
  EXPECT_NEAR(yn[10], -25.129110095610090, 1e-9);   // Y10(5), growth regime
}

TEST(Bessel, HankelArrayConsistent) {
  cvec h(21);
  hankel1_array(9.3, h);
  rvec jn(21), yn(21);
  bessel_jn_array(9.3, jn);
  bessel_yn_array(9.3, yn);
  for (std::size_t m = 0; m < h.size(); ++m) {
    EXPECT_DOUBLE_EQ(h[m].real(), jn[m]);
    EXPECT_DOUBLE_EQ(h[m].imag(), yn[m]);
  }
}

// Recurrence consistency as a property over a parameter sweep: the
// computed arrays must satisfy C_{m-1} + C_{m+1} = (2m/x) C_m.
class BesselRecurrence : public ::testing::TestWithParam<double> {};

TEST_P(BesselRecurrence, ThreeTermRecurrence) {
  const double x = GetParam();
  const std::size_t n = 30;
  rvec jn(n), yn(n);
  bessel_jn_array(x, jn);
  bessel_yn_array(x, yn);
  for (std::size_t m = 1; m + 1 < n; ++m) {
    const double lhs_j = jn[m - 1] + jn[m + 1];
    const double rhs_j = 2.0 * m / x * jn[m];
    EXPECT_NEAR(lhs_j, rhs_j, 1e-10 * std::max(1.0, std::fabs(rhs_j)))
        << "J recurrence at m=" << m << " x=" << x;
    const double lhs_y = yn[m - 1] + yn[m + 1];
    const double rhs_y = 2.0 * m / x * yn[m];
    EXPECT_NEAR(lhs_y, rhs_y, 1e-9 * std::max(1.0, std::fabs(rhs_y)))
        << "Y recurrence at m=" << m << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(ArgSweep, BesselRecurrence,
                         ::testing::Values(0.7, 2.5, 6.2832, 9.9, 13.99, 14.01,
                                           21.3, 55.5, 201.7));

}  // namespace
}  // namespace ffw
