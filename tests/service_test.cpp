// ReconstructionService: DbimStepper trajectory identity, multi-tenant
// completion over a shared cache + rank pool, fair stepping, priority
// admission, and crash isolation (cancel / tenant crash / injected rank
// failure) leaving the surviving jobs bit-identical to fault-free runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "dbim/continuation.hpp"
#include "dbim/dbim.hpp"
#include "dbim/multifrequency.hpp"
#include "phantom/phantom.hpp"
#include "phantom/resample.hpp"
#include "phantom/setup.hpp"
#include "service/service.hpp"

namespace ffw {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 8;
  cfg.num_receivers = 24;
  return cfg;
}

/// A JobSpec that reproduces `scene`'s geometry exactly, so the service
/// and a serial reference reconstruct the same inverse problem.
JobSpec make_job(const std::string& name, const Scenario& scene,
                 int iterations = 3, int priority = 0) {
  const ScenarioConfig& cfg = scene.config();
  JobSpec spec;
  spec.name = name;
  spec.nx = cfg.nx;
  spec.leaf_pixel_side = cfg.leaf_pixel_side;
  spec.mlfma = cfg.mlfma;
  const double radius = cfg.ring_radius_factor * scene.grid().domain();
  spec.transmitters = ring_positions(cfg.num_transmitters, radius);
  spec.receivers = ring_positions(cfg.num_receivers, radius);
  spec.measured = scene.measurements();
  spec.dbim.max_iterations = iterations;
  spec.forward = cfg.forward;
  spec.priority = priority;
  return spec;
}

/// What the service does per job, minus the scheduler: same cache
/// artifacts, same incident panel, same options. The gold trajectory.
DbimResult serial_reference(OperatorTableCache& cache, const JobSpec& spec) {
  const Grid grid(spec.nx);
  const auto tables =
      cache.mlfma_tables(grid, spec.leaf_pixel_side, spec.mlfma);
  MlfmaEngine engine(tables);
  const auto tt =
      cache.transceiver_tables(grid, spec.transmitters, spec.receivers);
  DbimOptions opts = spec.dbim;
  opts.progress = nullptr;  // observers never feed back into the math
  opts.checkpoint = nullptr;
  opts.incident_panel = tt->incident();
  opts.table_cache = &cache;
  return dbim_reconstruct(engine, tt->trx, spec.measured, opts, spec.forward,
                          spec.initial_contrast);
}

void expect_bit_identical(const DbimResult& a, const DbimResult& b) {
  ASSERT_EQ(a.contrast.size(), b.contrast.size());
  EXPECT_EQ(std::memcmp(a.contrast.data(), b.contrast.data(),
                        a.contrast.size() * sizeof(cplx)),
            0);
  EXPECT_EQ(a.history.relative_residual, b.history.relative_residual);
}

TEST(DbimStepper, MatchesMonolithicDriver) {
  ScenarioConfig cfg = small_config();
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));
  DbimOptions opts;
  opts.max_iterations = 3;
  const DbimResult gold = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts,
      cfg.forward);

  DbimStepper stepper(scene.engine(), scene.transceivers(),
                      scene.measurements(), opts, cfg.forward);
  int steps = 0;
  while (stepper.step()) ++steps;
  EXPECT_TRUE(stepper.done());
  EXPECT_EQ(stepper.iteration(), 3);
  const DbimResult split = stepper.result();
  expect_bit_identical(gold, split);
  EXPECT_EQ(gold.history.forward_solves, split.history.forward_solves);
}

TEST(Service, CompletedJobsMatchSerialReference) {
  OperatorTableCache cache;
  ScenarioConfig cfg = small_config();
  cfg.table_cache = &cache;  // warms the same cache the service uses
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));

  ReconstructionService service(cache);
  std::vector<int> ids;
  for (int j = 0; j < 3; ++j) {
    ids.push_back(service.submit(make_job("tenant" + std::to_string(j),
                                          scene)));
  }
  VCluster vc(2);
  service.run(vc);

  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.submitted, 3u);
  EXPECT_EQ(ss.completed, 3u);
  EXPECT_EQ(ss.failed, 0u);
  const DbimResult gold = serial_reference(cache, make_job("ref", scene));
  for (const int id : ids) {
    const JobStatus st = service.status(id);
    EXPECT_EQ(st.state, JobState::kCompleted);
    EXPECT_EQ(st.iterations, 3);
    expect_bit_identical(gold, service.result(id));
  }
  // Three tenants, one configuration: the MLFMA tables and transceiver
  // panel were built once and amortised (the scenario's warm-up built
  // them; every service job hit).
  const auto cs = cache.stats();
  EXPECT_GT(cs.hits, cs.misses);
}

TEST(Service, FairStepsInterleaveTenants) {
  OperatorTableCache cache;
  ScenarioConfig cfg = small_config();
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));

  std::mutex order_mu;
  std::vector<int> order;  // job tag per progress event, in step order
  ReconstructionService service(cache);
  for (int j = 0; j < 2; ++j) {
    JobSpec spec = make_job("fair" + std::to_string(j), scene);
    spec.dbim.progress = [&order_mu, &order, j](int, double) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(j);
    };
    service.submit(std::move(spec));
  }
  VCluster vc(1);  // single worker => the pick order is observable
  service.run(vc);

  ASSERT_EQ(order.size(), 6u);
  // Least-consumed-time stepping: after job0's first step it has more
  // compute time than untouched job1, so the first two ticks touch
  // *different* tenants instead of running job0 to completion first.
  EXPECT_NE(order[0], order[1]);
  EXPECT_EQ(service.status(0).state, JobState::kCompleted);
  EXPECT_EQ(service.status(1).state, JobState::kCompleted);
}

TEST(Service, PriorityOrdersAdmission) {
  OperatorTableCache cache;
  ScenarioConfig cfg = small_config();
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));

  ServiceOptions opts;
  opts.max_active_jobs = 1;  // serialise admission to observe its order
  ReconstructionService service(cache, opts);
  std::mutex order_mu;
  std::vector<int> first_touch;
  const int priorities[3] = {0, 5, 1};
  for (int j = 0; j < 3; ++j) {
    JobSpec spec = make_job("prio" + std::to_string(j), scene, /*iterations=*/2,
                            priorities[j]);
    spec.dbim.progress = [&order_mu, &first_touch, j](int, double) {
      std::lock_guard<std::mutex> lock(order_mu);
      if (std::find(first_touch.begin(), first_touch.end(), j) ==
          first_touch.end()) {
        first_touch.push_back(j);
      }
    };
    service.submit(std::move(spec));
  }
  VCluster vc(1);
  service.run(vc);

  // Highest priority admits first; FIFO only breaks ties.
  ASSERT_EQ(first_touch.size(), 3u);
  EXPECT_EQ(first_touch[0], 1);
  EXPECT_EQ(first_touch[1], 2);
  EXPECT_EQ(first_touch[2], 0);
}

TEST(Service, CancelLeavesOtherJobsBitIdentical) {
  ScenarioConfig cfg = small_config();
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));

  // Gold: all three tenants run fault-free.
  OperatorTableCache gold_cache;
  const DbimResult gold =
      serial_reference(gold_cache, make_job("ref", scene));

  OperatorTableCache cache;
  ReconstructionService service(cache);
  const int a = service.submit(make_job("a", scene));
  const int b = service.submit(make_job("b", scene));
  JobSpec doomed = make_job("doomed", scene, /*iterations=*/5);
  doomed.dbim.progress = [&service](int iter, double) {
    if (iter == 0) service.cancel(2);  // tenant cancels itself mid-run
  };
  const int c = service.submit(std::move(doomed));

  VCluster vc(2);
  service.run(vc);

  EXPECT_EQ(service.status(c).state, JobState::kCancelled);
  EXPECT_LT(service.status(c).iterations, 5);
  EXPECT_GE(service.status(c).iterations, 1);  // partial result retained
  EXPECT_EQ(service.result(c).contrast.size(), Grid(cfg.nx).num_pixels());
  for (const int id : {a, b}) {
    ASSERT_EQ(service.status(id).state, JobState::kCompleted);
    expect_bit_identical(gold, service.result(id));
  }
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(Service, TenantCrashIsIsolated) {
  ScenarioConfig cfg = small_config();
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));
  OperatorTableCache gold_cache;
  const DbimResult gold =
      serial_reference(gold_cache, make_job("ref", scene));

  OperatorTableCache cache;
  ReconstructionService service(cache);
  const int a = service.submit(make_job("a", scene));
  const int b = service.submit(make_job("b", scene));
  JobSpec crasher = make_job("crasher", scene, /*iterations=*/5);
  crasher.dbim.progress = [](int iter, double) {
    if (iter == 1) throw std::runtime_error("tenant callback exploded");
  };
  const int c = service.submit(std::move(crasher));

  VCluster vc(2);
  service.run(vc);  // must return normally: the crash stays in job c

  const JobStatus st = service.status(c);
  EXPECT_EQ(st.state, JobState::kFailed);
  EXPECT_NE(st.error.find("exploded"), std::string::npos);
  for (const int id : {a, b}) {
    ASSERT_EQ(service.status(id).state, JobState::kCompleted);
    expect_bit_identical(gold, service.result(id));
  }
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.stats().pool_restarts, 0);
}

TEST(Service, MultiFrequencyStagesShareCachedTables) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  const cvec truth =
      gaussian_blob(Grid(cfg.nx), Vec2{0.3, 0.0}, 0.5, cplx{0.01, 0.0});
  const std::vector<FrequencyStage> stages = {{1, 2}, {0, 2}};

  const MultiFrequencyResult plain =
      multifrequency_reconstruct(cfg, truth, stages);

  OperatorTableCache cache;
  cfg.table_cache = &cache;
  const MultiFrequencyResult cached =
      multifrequency_reconstruct(cfg, truth, stages);
  // Cache routing may not change a single bit of the image.
  ASSERT_EQ(plain.permittivity.size(), cached.permittivity.size());
  EXPECT_EQ(std::memcmp(plain.permittivity.data(), cached.permittivity.data(),
                        plain.permittivity.size() * sizeof(cplx)),
            0);
  ASSERT_EQ(cached.stage_seconds.size(), stages.size());
  ASSERT_EQ(cached.stage_setup_seconds.size(), stages.size());

  // A second ladder over the same cache rebuilds nothing.
  const auto misses_after_first = cache.stats().misses;
  EXPECT_GT(misses_after_first, 0u);
  const MultiFrequencyResult again =
      multifrequency_reconstruct(cfg, truth, stages);
  EXPECT_EQ(cache.stats().misses, misses_after_first);
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_EQ(std::memcmp(plain.permittivity.data(), again.permittivity.data(),
                        plain.permittivity.size() * sizeof(cplx)),
            0);
}

TEST(Service, LadderJobMatchesManualContinuation) {
  // A multi-frequency job: two bands (nx 16 -> 32), each with its own
  // geometry and measured panel, warm-started down the ladder inside
  // the fair-share scheduler. The result must be bit-identical to
  // running the two bands by hand through the same cache.
  OperatorTableCache cache;
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  cfg.table_cache = &cache;
  const Grid fine(cfg.nx), coarse(16);
  const cvec truth =
      gaussian_blob(fine, Vec2{0.2, -0.1}, 0.5, cplx{0.012, 0.0});
  const cvec truth16 = downsample2(truth, cfg.nx);
  ScenarioConfig c16 = cfg;
  c16.nx = 16;
  Scenario s16(c16, truth16);
  Scenario s32(cfg, truth);

  const auto band_of = [&cfg](const Scenario& s, int iters) {
    JobBand b;
    b.nx = s.grid().nx();
    const double radius = cfg.ring_radius_factor * s.grid().domain();
    b.transmitters = ring_positions(cfg.num_transmitters, radius);
    b.receivers = ring_positions(cfg.num_receivers, radius);
    b.measured = s.measurements();
    b.max_iterations = iters;
    return b;
  };
  JobSpec spec;
  spec.name = "ladder";
  spec.nx = cfg.nx;
  spec.forward = cfg.forward;
  spec.bands.push_back(band_of(s16, 3));
  spec.bands.push_back(band_of(s32, 2));

  ReconstructionService service(cache);
  const int id = service.submit(spec);
  VCluster vc(2);
  service.run(vc);
  const JobStatus st = service.status(id);
  EXPECT_EQ(st.state, JobState::kCompleted);
  EXPECT_EQ(st.band, 1);
  EXPECT_EQ(st.iterations, 5);

  // Manual reference: band 0, shared warm-start arithmetic, band 1.
  JobSpec ref0 = spec;
  ref0.nx = 16;
  ref0.transmitters = spec.bands[0].transmitters;
  ref0.receivers = spec.bands[0].receivers;
  ref0.measured = spec.bands[0].measured;
  ref0.dbim.max_iterations = 3;
  ref0.bands.clear();
  const DbimResult r0 = serial_reference(cache, ref0);
  JobSpec ref1 = ref0;
  ref1.nx = 32;
  ref1.transmitters = spec.bands[1].transmitters;
  ref1.receivers = spec.bands[1].receivers;
  ref1.measured = spec.bands[1].measured;
  ref1.dbim.max_iterations = 2;
  ref1.initial_contrast = continuation_warm_start(
      r0.contrast, 16, 32, coarse.k0() * coarse.k0(), fine.k0() * fine.k0());
  const DbimResult gold = serial_reference(cache, ref1);
  expect_bit_identical(gold, service.result(id));
}

TEST(Service, InjectedRankFailureRecoversPool) {
  ScenarioConfig cfg = small_config();
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));
  OperatorTableCache gold_cache;
  const DbimResult gold =
      serial_reference(gold_cache, make_job("ref", scene));

  OperatorTableCache cache;
  ServiceOptions opts;
  opts.max_pool_restarts = 1;
  opts.inject_rank_failure_at_tick = 2;  // kills whichever job steps then
  ReconstructionService service(cache, opts);
  std::vector<int> ids;
  for (int j = 0; j < 3; ++j) {
    ids.push_back(service.submit(make_job("t" + std::to_string(j), scene)));
  }
  VCluster vc(2);
  service.run(vc);  // restarts the pool once, then drains

  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.pool_restarts, 1);
  EXPECT_EQ(ss.failed, 1u);
  EXPECT_EQ(ss.completed, 2u);
  int failed_seen = 0;
  for (const int id : ids) {
    const JobStatus st = service.status(id);
    if (st.state == JobState::kFailed) {
      ++failed_seen;
      EXPECT_NE(st.error.find("rank failure"), std::string::npos);
      continue;
    }
    // Every survivor is bit-identical to the fault-free trajectory.
    ASSERT_EQ(st.state, JobState::kCompleted);
    expect_bit_identical(gold, service.result(id));
  }
  EXPECT_EQ(failed_seen, 1);
}

}  // namespace
}  // namespace ffw
