// Minimal strict JSON syntax checker for tests: validates that emitter
// output (bench result files, chrome://tracing exports) is well-formed
// JSON, without pulling a parser dependency into the repo. Accepts
// exactly the RFC 8259 grammar (no trailing commas, no bare NaN/Inf
// tokens — the latter is precisely the regression the emitter tests
// guard against).
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>

namespace ffw::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  /// True iff the whole text is one valid JSON value (plus whitespace).
  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(peek())) return false;
    if (peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool json_valid(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace ffw::testing
