// Gauss-Newton DBIM variant: converges on small problems, and the
// paper's Sec. VI-B economics claim — nonlinear CG spends fewer total
// matrix-vector products for comparable accuracy — holds measurably.
#include <gtest/gtest.h>

#include "dbim/gauss_newton.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

struct GnFixture {
  ScenarioConfig cfg;
  std::unique_ptr<Scenario> scene;

  GnFixture() {
    cfg.nx = 32;
    cfg.num_transmitters = 6;
    cfg.num_receivers = 20;
    Grid grid(cfg.nx);
    scene = std::make_unique<Scenario>(
        cfg, gaussian_blob(grid, Vec2{0.2, -0.1}, 0.5, cplx{0.01, 0.0}));
  }
};

TEST(GaussNewton, ConvergesOnSmallProblem) {
  GnFixture f;
  GaussNewtonOptions opts;
  opts.max_iterations = 5;
  opts.cg_iterations = 4;
  const DbimResult res = gauss_newton_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);
  ASSERT_GE(res.history.relative_residual.size(), 2u);
  EXPECT_LT(res.history.relative_residual.back(),
            0.1 * res.history.relative_residual.front());
  EXPECT_LT(image_rmse(res.contrast, f.scene->true_contrast()), 0.6);
}

TEST(GaussNewton, FewerOuterIterationsThanNlcg) {
  // Per outer iteration GN makes much more progress...
  GnFixture f;
  GaussNewtonOptions gn_opts;
  gn_opts.max_iterations = 4;
  gn_opts.cg_iterations = 4;
  const DbimResult gn = gauss_newton_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      gn_opts);
  DbimOptions cg_opts;
  cg_opts.max_iterations = 4;
  const DbimResult cg = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      cg_opts);
  EXPECT_LT(gn.history.relative_residual.back(),
            cg.history.relative_residual.back());
}

TEST(GaussNewton, PerIterationCostStructure) {
  // ...but pays far more per step: an outer GN iteration costs
  // T*(2 + 2*cg_iterations) forward solves vs NLCG's fixed 3T — the
  // structural fact behind the paper's preference for NLCG.
  GnFixture f;
  const int t_count = f.cfg.num_transmitters;
  GaussNewtonOptions gn_opts;
  gn_opts.max_iterations = 2;
  gn_opts.cg_iterations = 4;
  const DbimResult gn = gauss_newton_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      gn_opts);
  const double gn_solves_per_iter =
      static_cast<double>(gn.history.forward_solves) /
      static_cast<double>(gn.history.relative_residual.size());
  // Expected: T*(2 + 2*4) = 10T per iteration.
  EXPECT_NEAR(gn_solves_per_iter, 10.0 * t_count, 1e-9);

  DbimOptions cg_opts;
  cg_opts.max_iterations = 4;
  const DbimResult cg = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      cg_opts);
  const double cg_solves_per_iter =
      static_cast<double>(cg.history.forward_solves) /
      static_cast<double>(cg.history.relative_residual.size());
  EXPECT_NEAR(cg_solves_per_iter, 3.0 * t_count, 1e-9);

  // For equal accuracy the total MLFMA budgets end up comparable on this
  // tiny warm-started problem; NLCG must at minimum not be beaten badly
  // (the paper observed a clear win at its problem sizes).
  DbimOptions match;
  match.max_iterations = 40;
  match.residual_tol = gn.history.relative_residual.back();
  const DbimResult cg2 = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      match);
  EXPECT_LT(static_cast<double>(cg2.history.operator_applications),
            1.5 * static_cast<double>(gn.history.operator_applications));
}

TEST(GaussNewton, DampingKeepsStepsBounded) {
  GnFixture f;
  GaussNewtonOptions opts;
  opts.max_iterations = 3;
  opts.cg_iterations = 3;
  opts.tikhonov = 1e-4;
  const DbimResult res = gauss_newton_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);
  EXPECT_LT(res.history.relative_residual.back(),
            res.history.relative_residual.front());
}

}  // namespace
}  // namespace ffw
