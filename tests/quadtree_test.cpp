// Quad-tree geometry invariants: level structure, interaction-list
// completeness (every cluster pair is covered exactly once across near +
// all far levels), Morton permutations, and the paper's operator-type
// counts (40 translation offsets, <= 27 far entries at non-top levels).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/morton.hpp"
#include "grid/quadtree.hpp"

namespace ffw {
namespace {

TEST(QuadTree, LevelStructure128) {
  Grid grid(128);  // 12.8 lambda, 16x16 leaves
  QuadTree tree(grid);
  ASSERT_EQ(tree.num_levels(), 3);
  EXPECT_EQ(tree.level(0).side, 16);
  EXPECT_EQ(tree.level(1).side, 8);
  EXPECT_EQ(tree.level(2).side, 4);
  EXPECT_DOUBLE_EQ(tree.level(0).width, 0.8);
  EXPECT_DOUBLE_EQ(tree.level(2).width, 3.2);
  EXPECT_EQ(tree.level(2).num_clusters, 16u);  // the paper's 16 sub-trees
}

TEST(QuadTree, FortyTranslationOffsets) {
  const auto& offs = QuadTree::translation_offsets();
  EXPECT_EQ(offs.size(), 40u);
  std::set<std::pair<int, int>> uniq(offs.begin(), offs.end());
  EXPECT_EQ(uniq.size(), 40u);
  for (auto [dx, dy] : offs) {
    EXPECT_GE(std::max(std::abs(dx), std::abs(dy)), 2);
    EXPECT_LE(std::max(std::abs(dx), std::abs(dy)), 3);
  }
}

TEST(QuadTree, InteriorClusterHas27FarEntries) {
  Grid grid(256);  // 32x32 leaves, interior clusters exist at level 0
  QuadTree tree(grid);
  const TreeLevel& lvl = tree.level(0);
  // Pick a deep-interior cluster: (8, 8) of 32.
  const std::uint32_t c = morton_encode(8, 8);
  EXPECT_EQ(lvl.far_begin[c + 1] - lvl.far_begin[c], 27u);  // paper Fig. 5
}

TEST(QuadTree, NearListsCoverNeighbours) {
  Grid grid(64);
  QuadTree tree(grid);
  // Corner leaf: 4 near entries; edge: 6; interior: 9.
  const std::uint32_t corner = morton_encode(0, 0);
  const std::uint32_t interior = morton_encode(3, 3);
  const auto& nb = tree.near_begin();
  EXPECT_EQ(nb[corner + 1] - nb[corner], 4u);
  EXPECT_EQ(nb[interior + 1] - nb[interior], 9u);
}

// Exhaustive pair coverage: for every ordered leaf pair (dest, src),
// exactly one of {leaf near list, some level's far list (between their
// ancestors)} must account for it, exactly once.
TEST(QuadTree, PairCoverageExactlyOnce) {
  Grid grid(128);
  QuadTree tree(grid);
  const std::size_t nleaf = tree.num_leaves();
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> covered;

  for (std::size_t c = 0; c < nleaf; ++c) {
    for (std::uint32_t e = tree.near_begin()[c]; e < tree.near_begin()[c + 1];
         ++e) {
      covered[{static_cast<std::uint32_t>(c), tree.near()[e].src}]++;
    }
  }
  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const std::uint32_t src = lvl.far[e].src;
        // Expand to all leaf descendants.
        const std::uint32_t width = 1u << (2 * l);
        for (std::uint32_t dl = 0; dl < width; ++dl) {
          for (std::uint32_t sl = 0; sl < width; ++sl) {
            covered[{static_cast<std::uint32_t>(c) * width + dl,
                     src * width + sl}]++;
          }
        }
      }
    }
  }
  ASSERT_EQ(covered.size(), nleaf * nleaf);
  for (const auto& [pair, count] : covered) {
    ASSERT_EQ(count, 1) << "pair (" << pair.first << "," << pair.second
                        << ") covered " << count << " times";
  }
}

TEST(QuadTree, PermutationRoundTrip) {
  Grid grid(64);
  QuadTree tree(grid);
  const std::size_t n = grid.num_pixels();
  cvec nat(n), clu(n), back(n);
  for (std::size_t i = 0; i < n; ++i) nat[i] = cplx(static_cast<double>(i), 1.0);
  tree.to_cluster_order(nat, clu);
  tree.to_natural_order(clu, back);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(back[i], nat[i]);
}

TEST(QuadTree, ClusterCenters) {
  Grid grid(128);
  QuadTree tree(grid);
  // Leaf 0 is the lower-left 8x8 block; its centre is at
  // (-D/2 + 0.4, -D/2 + 0.4).
  const Vec2 c0 = tree.cluster_center(0, 0);
  EXPECT_NEAR(c0.x, -6.4 + 0.4, 1e-12);
  EXPECT_NEAR(c0.y, -6.4 + 0.4, 1e-12);
  // Top-level cluster (Morton 3 -> (1,1) of 4): centre at (-1.6, -1.6).
  const Vec2 t3 = tree.cluster_center(2, 3);
  EXPECT_NEAR(t3.x, -1.6, 1e-12);
  EXPECT_NEAR(t3.y, -1.6, 1e-12);
}

TEST(QuadTree, LocalPixelOffsets) {
  Grid grid(64);
  QuadTree tree(grid);
  // Pixel 0 of a leaf is the lower-left corner: offset (-0.35, -0.35).
  const Vec2 p0 = tree.local_pixel_offset(0);
  EXPECT_NEAR(p0.x, -0.35, 1e-12);
  EXPECT_NEAR(p0.y, -0.35, 1e-12);
  const Vec2 p63 = tree.local_pixel_offset(63);
  EXPECT_NEAR(p63.x, 0.35, 1e-12);
  EXPECT_NEAR(p63.y, 0.35, 1e-12);
}

}  // namespace
}  // namespace ffw
