// Property tests of the individual MLFMA operator tables (Table I):
// structure, unitarity, adjoint pairing, and interpolation accuracy on
// band-limited functions against the exact spectral-resampling oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/operators.hpp"

namespace ffw {
namespace {

struct OpsFixture {
  Grid grid{128};
  QuadTree tree{grid};
  MlfmaParams params{};
  MlfmaPlan plan{tree, params};
  MlfmaOperators ops{tree, plan};
};

TEST(Plan, TruncationGrowsWithClusterSizeAndDigits) {
  const double k = 2.0 * pi;
  EXPECT_LT(truncation_order(k, 0.8, 5.0), truncation_order(k, 1.6, 5.0));
  EXPECT_LT(truncation_order(k, 1.6, 5.0), truncation_order(k, 3.2, 5.0));
  EXPECT_LT(truncation_order(k, 0.8, 3.0), truncation_order(k, 0.8, 7.0));
  // L must exceed the pure bandwidth kd (excess term positive).
  EXPECT_GT(truncation_order(k, 0.8, 5.0), k * 0.8 * std::sqrt(2.0));
}

TEST(Plan, SampleCountsRespectOversampling) {
  OpsFixture f;
  for (int l = 0; l < f.plan.num_levels(); ++l) {
    const LevelPlan& lp = f.plan.level(l);
    EXPECT_GE(lp.samples, static_cast<int>(f.params.oversample *
                                           (2 * lp.truncation + 1)) - 1);
    EXPECT_EQ(lp.samples % 2, 0);
  }
  // Sample counts increase strictly with level.
  for (int l = 0; l + 1 < f.plan.num_levels(); ++l) {
    EXPECT_LT(f.plan.level(l).samples, f.plan.level(l + 1).samples);
  }
}

TEST(Operators, ShiftDiagonalsAreUnitModulus) {
  OpsFixture f;
  for (int l = 0; l + 1 < f.ops.num_levels(); ++l) {
    const LevelOperators& ops = f.ops.level(l);
    ASSERT_EQ(ops.up_shift.size(), 4u);
    ASSERT_EQ(ops.down_shift.size(), 4u);
    for (int j = 0; j < 4; ++j) {
      for (std::size_t q = 0; q < ops.up_shift[static_cast<std::size_t>(j)].size(); ++q) {
        EXPECT_NEAR(std::abs(ops.up_shift[static_cast<std::size_t>(j)][q]),
                    1.0, 1e-13);
        // Down shift is the conjugate of the up shift (adjoint pairing).
        EXPECT_NEAR(std::abs(ops.down_shift[static_cast<std::size_t>(j)][q] -
                             std::conj(ops.up_shift[static_cast<std::size_t>(j)][q])),
                    0.0, 1e-13);
      }
    }
  }
}

TEST(Operators, ChildShiftsComeInOppositePairs) {
  // Children 0 (-x,-y) and 3 (+x,+y) are point-symmetric, so their shift
  // diagonals are conjugates; same for 1 and 2.
  OpsFixture f;
  const LevelOperators& ops = f.ops.level(0);
  for (std::size_t q = 0; q < ops.up_shift[0].size(); ++q) {
    EXPECT_NEAR(std::abs(ops.up_shift[0][q] - std::conj(ops.up_shift[3][q])),
                0.0, 1e-13);
    EXPECT_NEAR(std::abs(ops.up_shift[1][q] - std::conj(ops.up_shift[2][q])),
                0.0, 1e-13);
  }
}

TEST(Operators, ExpansionAndLocalArePairedUpToScale) {
  // R[p, q] = pref/Q0 * conj(E[q, p]) with pref the receive prefactor.
  OpsFixture f;
  const CMatrix& e = f.ops.expansion();
  const CMatrix& r = f.ops.local_expansion();
  ASSERT_EQ(e.rows(), r.cols());
  ASSERT_EQ(e.cols(), r.rows());
  const cplx scale = r(0, 0) / std::conj(e(0, 0));
  for (std::size_t q = 0; q < e.rows(); ++q) {
    for (std::size_t p = 0; p < e.cols(); ++p) {
      EXPECT_NEAR(std::abs(r(p, q) - scale * std::conj(e(q, p))), 0.0,
                  1e-13 * std::abs(scale));
    }
  }
}

TEST(Operators, InterpolationMatchesSpectralOracle) {
  // The band matrix must reproduce band-limited functions to the design
  // accuracy; the exact answer comes from FFT zero-padding.
  OpsFixture f;
  const LevelOperators& ops = f.ops.level(0);
  const int qc = ops.samples;
  const int qp = f.plan.level(1).samples;
  // Band-limited to the *physical* content of a leaf spectrum (~ k d,
  // the cluster diagonal bandwidth). The excess-bandwidth padding above
  // kd carries exponentially decaying energy in real spectra, so the
  // local Lagrange stencil only needs full accuracy on this band — that
  // is the design contract (and why critical sampling would not work,
  // see bench_ablation_interp).
  const int band = static_cast<int>(
      std::ceil(f.grid.k0() * f.tree.level(0).width * std::sqrt(2.0)));
  Rng rng(55);
  cvec coeff(static_cast<std::size_t>(2 * band + 1));
  rng.fill_cnormal(coeff);
  auto eval = [&](double theta) {
    cplx acc{};
    for (int m = -band; m <= band; ++m) {
      acc += coeff[static_cast<std::size_t>(m + band)] *
             cplx{std::cos(m * theta), std::sin(m * theta)};
    }
    return acc;
  };
  cvec x(static_cast<std::size_t>(qc));
  for (int i = 0; i < qc; ++i)
    x[static_cast<std::size_t>(i)] = eval(2.0 * pi * i / qc);
  cvec got(static_cast<std::size_t>(qp));
  ops.interp.apply(x, got);
  const cvec want = spectral_resample(x, static_cast<std::size_t>(qp));
  EXPECT_LT(rel_l2_diff(got, want), 1e-6);
}

TEST(Operators, TranslationTableShapes) {
  OpsFixture f;
  for (int l = 0; l < f.ops.num_levels(); ++l) {
    const LevelOperators& ops = f.ops.level(l);
    ASSERT_EQ(ops.translations.size(), 40u);
    for (const auto& trans : ops.translations) {
      EXPECT_EQ(trans.size(), static_cast<std::size_t>(ops.samples));
    }
  }
}

TEST(Operators, TranslationRotationSymmetry) {
  // Rotating the offset by 90 degrees permutes the diagonal samples by a
  // quarter of the angular grid (Q is a multiple of 4 by construction
  // only when Q%4==0 — check and skip otherwise).
  OpsFixture f;
  const double k = f.grid.k0();
  const LevelOperators& ops = f.ops.level(0);
  // Build a grid whose sample count is a multiple of 4 so alpha + pi/2
  // lands exactly on a grid point.
  const int q = ((ops.samples + 3) / 4) * 4;
  const double w = f.tree.level(0).width;
  const cvec t1 = make_translation_diag(k, Vec2{2 * w, 1 * w},
                                        ops.truncation, q);
  const cvec t2 = make_translation_diag(k, Vec2{-1 * w, 2 * w},
                                        ops.truncation, q);  // 90-deg rot
  for (int i = 0; i < q; ++i) {
    const int j = (i + q / 4) % q;  // alpha + pi/2
    EXPECT_NEAR(std::abs(t2[static_cast<std::size_t>(j)] -
                         t1[static_cast<std::size_t>(i)]),
                0.0, 1e-9 * std::abs(t1[static_cast<std::size_t>(i)]) + 1e-9);
  }
}

TEST(Operators, MemoryFootprintIsSmall) {
  OpsFixture f;
  // All shared tables for a 16k-unknown problem fit in ~1-2 MB.
  EXPECT_LT(f.ops.bytes(), std::size_t{4} << 20);
}

}  // namespace
}  // namespace ffw
