// Robustness properties of the inverse solver: measurement noise,
// lossy (complex-permittivity) objects, and early-termination
// regularisation behaviour.
#include <gtest/gtest.h>

#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig c;
  c.nx = 32;
  c.num_transmitters = 8;
  c.num_receivers = 24;
  return c;
}

TEST(DbimRobustness, ToleratesModerateMeasurementNoise) {
  ScenarioConfig cfg = base_config();
  Grid grid(cfg.nx);
  const cvec truth = gaussian_blob(grid, Vec2{0.2, 0.3}, 0.5,
                                   cplx{0.01, 0.0});
  cfg.measurement_noise = 0.0;
  Scenario clean(cfg, truth);
  cfg.measurement_noise = 0.02;  // 2% additive noise
  Scenario noisy(cfg, truth);

  DbimOptions opts;
  opts.max_iterations = 10;
  const DbimResult clean_res = dbim_reconstruct(
      clean.engine(), clean.transceivers(), clean.measurements(), opts);
  const DbimResult noisy_res = dbim_reconstruct(
      noisy.engine(), noisy.transceivers(), noisy.measurements(), opts);

  const double clean_rmse =
      image_rmse(clean_res.contrast, clean.true_contrast());
  const double noisy_rmse =
      image_rmse(noisy_res.contrast, noisy.true_contrast());
  EXPECT_LT(noisy_rmse, 3.0 * clean_rmse + 0.15);
  // Noise floors the residual: it cannot drop (far) below the noise
  // level, while the clean run continues descending.
  EXPECT_GT(noisy_res.history.relative_residual.back(), 0.01);
}

TEST(DbimRobustness, NoiseFloorsResidualAtNoiseLevel) {
  ScenarioConfig cfg = base_config();
  Grid grid(cfg.nx);
  const cvec truth = gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5,
                                   cplx{0.008, 0.0});
  cfg.measurement_noise = 0.05;
  Scenario scene(cfg, truth);
  DbimOptions opts;
  opts.max_iterations = 12;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  // Residual cannot beat the 5% noise floor by much.
  EXPECT_GT(res.history.relative_residual.back(), 0.02);
}

TEST(DbimRobustness, ReconstructsLossyObject) {
  // Complex permittivity (absorption): the solver is fully complex, so
  // both the real and imaginary contrast maps must come back.
  ScenarioConfig cfg = base_config();
  cfg.num_transmitters = 12;
  cfg.num_receivers = 32;
  Grid grid(cfg.nx);
  const cvec truth = gaussian_blob(grid, Vec2{0.1, -0.2}, 0.5,
                                   cplx{0.01, -0.004});
  Scenario scene(cfg, truth);
  DbimOptions opts;
  opts.max_iterations = 15;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  EXPECT_LT(image_rmse(res.contrast, scene.true_contrast()), 0.6);
  // The imaginary (loss) part must be genuinely recovered, not left zero.
  double im_num = 0.0, im_den = 0.0;
  for (std::size_t i = 0; i < res.contrast.size(); ++i) {
    im_num += std::pow(res.contrast[i].imag() -
                       scene.true_contrast()[i].imag(), 2);
    im_den += std::pow(scene.true_contrast()[i].imag(), 2);
  }
  EXPECT_LT(std::sqrt(im_num / im_den), 0.75);
}

TEST(DbimRobustness, ResidualMonotoneUnderNoiseFreeData) {
  ScenarioConfig cfg = base_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg, annulus(grid, 0.5, 0.9, cplx{0.02, 0.0}));
  DbimOptions opts;
  opts.max_iterations = 10;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  const auto& h = res.history.relative_residual;
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_LE(h[i], h[i - 1] * 1.05) << "at iteration " << i;
  }
}

TEST(DbimRobustness, SteepestDescentAlsoConvergesJustSlower) {
  ScenarioConfig cfg = base_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5, cplx{0.01, 0.0}));
  DbimOptions cg_opts;
  cg_opts.max_iterations = 10;
  DbimOptions sd_opts = cg_opts;
  sd_opts.conjugate_gradient = false;
  const DbimResult cg = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), cg_opts);
  const DbimResult sd = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), sd_opts);
  EXPECT_LT(sd.history.relative_residual.back(),
            sd.history.relative_residual.front());
  EXPECT_LE(cg.history.relative_residual.back(),
            sd.history.relative_residual.back() * 1.2);
}

TEST(DbimRobustness, ColdStartsMatchWarmStartsInResult) {
  ScenarioConfig cfg = base_config();
  cfg.num_transmitters = 4;
  Grid grid(cfg.nx);
  Scenario scene(cfg, annulus(grid, 0.5, 1.0, cplx{0.03, 0.0}));
  DbimOptions warm;
  warm.max_iterations = 6;
  DbimOptions cold = warm;
  cold.warm_start_fields = false;
  const DbimResult w = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), warm);
  const DbimResult c = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), cold);
  // Same math, different initial guesses for the inner solver: images
  // agree to solver tolerance, and warm starts never need more MLFMA
  // products (the strict improvement is quantified, on a harder scene,
  // by bench_ablation_optimizer).
  EXPECT_LT(image_rmse(w.contrast, c.contrast), 0.05);
  EXPECT_LE(w.history.operator_applications, c.history.operator_applications);
}

}  // namespace
}  // namespace ffw
