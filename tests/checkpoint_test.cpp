// Checkpoint container and DBIM-state round trips, including corruption
// handling.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/rng.hpp"
#include "io/checkpoint.hpp"
#include "linalg/kernels.hpp"

namespace ffw {
namespace {

TEST(Checkpoint, ArrayRoundTrip) {
  Rng rng(1);
  cvec a(100), b(7);
  rng.fill_cnormal(a);
  rng.fill_cnormal(b);

  Checkpoint out;
  out.put("alpha", a);
  out.put("beta", b);
  out.put_scalar("gamma", 42.5);
  const std::string path = "/tmp/ffw_ckpt_test.bin";
  ASSERT_TRUE(out.save(path));

  Checkpoint in;
  ASSERT_TRUE(in.load(path));
  EXPECT_EQ(in.size(), 3u);
  ASSERT_TRUE(in.contains("alpha"));
  EXPECT_LT(rel_l2_diff(in.get("alpha"), a), 1e-16);
  EXPECT_LT(rel_l2_diff(in.get("beta"), b), 1e-16);
  EXPECT_DOUBLE_EQ(in.get_scalar("gamma"), 42.5);
  EXPECT_FALSE(in.contains("delta"));
  std::remove(path.c_str());
}

TEST(Checkpoint, OverwriteReplaces) {
  Checkpoint ck;
  ck.put_scalar("x", 1.0);
  ck.put_scalar("x", 2.0);
  EXPECT_EQ(ck.size(), 1u);
  EXPECT_DOUBLE_EQ(ck.get_scalar("x"), 2.0);
}

TEST(Checkpoint, EmptyArraysSurvive) {
  Checkpoint out;
  out.put("empty", cvec{});
  const std::string path = "/tmp/ffw_ckpt_empty.bin";
  ASSERT_TRUE(out.save(path));
  Checkpoint in;
  ASSERT_TRUE(in.load(path));
  EXPECT_TRUE(in.contains("empty"));
  EXPECT_TRUE(in.get("empty").empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFile) {
  const std::string path = "/tmp/ffw_ckpt_corrupt.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a checkpoint at all";
  }
  Checkpoint in;
  EXPECT_FALSE(in.load(path));
  EXPECT_EQ(in.size(), 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedFile) {
  Rng rng(2);
  cvec a(64);
  rng.fill_cnormal(a);
  Checkpoint out;
  out.put("a", a);
  const std::string path = "/tmp/ffw_ckpt_trunc.bin";
  ASSERT_TRUE(out.save(path));
  // Truncate to half.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto sz = in.tellg();
    std::vector<char> buf(static_cast<std::size_t>(sz) / 2);
    in.seekg(0);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    outf.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  Checkpoint in;
  EXPECT_FALSE(in.load(path));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileFails) {
  Checkpoint in;
  EXPECT_FALSE(in.load("/tmp/ffw_ckpt_does_not_exist.bin"));
}

TEST(Checkpoint, TruncationFuzzEvery64ByteOffset) {
  // A writer killed mid-write leaves a prefix of the file. Every strict
  // prefix must be rejected by load (never half-parsed into arrays), and
  // producing the prefix elsewhere must leave the original loadable —
  // jointly with SaveIsAtomicUnderConcurrentLoad this is the "crash at
  // any byte offset loses nothing" guarantee.
  Rng rng(11);
  Checkpoint out;
  cvec a(300), b(41);
  rng.fill_cnormal(a);
  rng.fill_cnormal(b);
  out.put("a", a);
  out.put("b", b);
  out.put_scalar("iter", 9.0);
  const std::string path = "/tmp/ffw_ckpt_fuzz.bin";
  ASSERT_TRUE(out.save(path));

  std::vector<char> whole;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    whole.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(whole.data(), static_cast<std::streamsize>(whole.size()));
  }
  const std::string trunc_path = "/tmp/ffw_ckpt_fuzz_trunc.bin";
  for (std::size_t cut = 0; cut < whole.size(); cut += 64) {
    {
      std::ofstream f(trunc_path, std::ios::binary | std::ios::trunc);
      f.write(whole.data(), static_cast<std::streamsize>(cut));
    }
    Checkpoint in;
    EXPECT_FALSE(in.load(trunc_path)) << "cut=" << cut;
    EXPECT_EQ(in.size(), 0u) << "cut=" << cut;
    // The prior (complete) file is untouched by the failed writer.
    Checkpoint prior;
    ASSERT_TRUE(prior.load(path)) << "cut=" << cut;
    EXPECT_LT(rel_l2_diff(prior.get("a"), a), 1e-16);
  }
  std::remove(path.c_str());
  std::remove(trunc_path.c_str());
}

TEST(Checkpoint, SaveIsAtomicUnderConcurrentLoad) {
  // Regression for the direct-open save: while a large save is in
  // flight, a reader racing it must only ever observe the previous
  // complete checkpoint or the new complete checkpoint — never a
  // truncated in-progress file. Pre-fix, save() opened the destination
  // itself, so concurrent loads (and any crash mid-write) saw a torn
  // file; now the write lands in <path>.tmp and is renamed into place.
  const std::string path = "/tmp/ffw_ckpt_atomic.bin";
  const std::size_t n = 1u << 19;  // 8 MB payload: a wide write window
  Checkpoint old_ck;
  old_ck.put("gen", cvec(n, cplx{1.0, 0.0}));
  ASSERT_TRUE(old_ck.save(path));

  std::atomic<bool> done{false};
  std::atomic<int> bad{0}, seen{0};
  std::thread reader([&] {
    while (!done.load()) {
      Checkpoint in;
      if (!in.load(path)) {
        ++bad;  // a torn/partial file was visible
        continue;
      }
      ++seen;
      const cvec& g = in.get("gen");
      ASSERT_EQ(g.size(), n);
      const double v = g[0].real();
      EXPECT_TRUE(v == 1.0 || v == 2.0) << v;
    }
  });
  for (int rep = 0; rep < 8; ++rep) {
    Checkpoint next;
    next.put("gen", cvec(n, cplx{2.0, 0.0}));
    ASSERT_TRUE(next.save(path));
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(seen.load(), 0);
  std::remove(path.c_str());
}

TEST(Checkpoint, FailedSaveLeavesPriorFileIntact) {
  const std::string path = "/tmp/ffw_ckpt_keep.bin";
  Checkpoint good;
  good.put_scalar("x", 7.0);
  ASSERT_TRUE(good.save(path));

  // Block the temp slot with a directory: the new save cannot even open
  // its scratch file, must report failure, and must not have touched the
  // destination. The scratch name is pid-qualified (concurrent
  // supervisor restarts must not clobber each other's temp — see
  // tests/transport_test.cpp for that regression), so block this
  // process's slot.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  ASSERT_EQ(std::remove(tmp.c_str()), -1);  // no stale temp left behind
  ASSERT_EQ(mkdir(tmp.c_str(), 0700), 0);
  Checkpoint next;
  next.put_scalar("x", 8.0);
  EXPECT_FALSE(next.save(path));
  Checkpoint in;
  ASSERT_TRUE(in.load(path));
  EXPECT_DOUBLE_EQ(in.get_scalar("x"), 7.0);
  rmdir(tmp.c_str());
  std::remove(path.c_str());
}

TEST(DbimCheckpointState, RoundTrip) {
  Rng rng(3);
  DbimCheckpoint out;
  out.iteration = 17;
  out.contrast.resize(50);
  out.gradient_prev.resize(50);
  out.direction.resize(50);
  rng.fill_cnormal(out.contrast);
  rng.fill_cnormal(out.gradient_prev);
  rng.fill_cnormal(out.direction);
  out.residual_history = {1.0, 0.5, 0.25, 0.125};

  const std::string path = "/tmp/ffw_ckpt_dbim.bin";
  ASSERT_TRUE(out.save(path));
  DbimCheckpoint in;
  ASSERT_TRUE(in.load(path));
  EXPECT_EQ(in.iteration, 17);
  EXPECT_LT(rel_l2_diff(in.contrast, out.contrast), 1e-16);
  EXPECT_LT(rel_l2_diff(in.direction, out.direction), 1e-16);
  ASSERT_EQ(in.residual_history.size(), 4u);
  EXPECT_DOUBLE_EQ(in.residual_history[3], 0.125);
  std::remove(path.c_str());
}

TEST(DbimCheckpointState, PrecisionPolicyRoundTrips) {
  DbimCheckpoint out;
  out.iteration = 3;
  out.mixed_precision = true;
  out.contrast.resize(8);
  out.gradient_prev.resize(8);
  out.direction.resize(8);
  out.residual_history = {1.0};
  const std::string path = "/tmp/ffw_ckpt_dbim_mixed.bin";
  ASSERT_TRUE(out.save(path));
  DbimCheckpoint in;
  in.mixed_precision = false;
  ASSERT_TRUE(in.load(path));
  EXPECT_TRUE(in.mixed_precision);

  out.mixed_precision = false;
  ASSERT_TRUE(out.save(path));
  in.mixed_precision = true;
  ASSERT_TRUE(in.load(path));
  EXPECT_FALSE(in.mixed_precision);
  std::remove(path.c_str());
}

TEST(DbimCheckpointState, BackendPolicyRoundTrips) {
  DbimCheckpoint out;
  out.iteration = 5;
  out.contrast.resize(8);
  out.gradient_prev.resize(8);
  out.direction.resize(8);
  out.residual_history = {1.0};
  const std::string path = "/tmp/ffw_ckpt_dbim_backend.bin";
  for (const BackendKind k :
       {BackendKind::kMlfma, BackendKind::kCbs, BackendKind::kAuto}) {
    out.backend = k;
    ASSERT_TRUE(out.save(path));
    DbimCheckpoint in;
    in.backend = BackendKind::kAuto;  // stale state must be overwritten
    ASSERT_TRUE(in.load(path));
    EXPECT_EQ(in.backend, k);
  }
  std::remove(path.c_str());
}

TEST(DbimCheckpointState, LegacyFileWithoutPolicyLoadsAsFp64) {
  // Files written before the precision policy existed lack the
  // "mixed_precision" entry; they predate mixed-precision support and
  // must load as fp64 instead of failing.
  Checkpoint legacy;
  legacy.put_scalar("iteration", 2.0);
  legacy.put("contrast", cvec(4));
  legacy.put("gradient_prev", cvec(4));
  legacy.put("direction", cvec(4));
  legacy.put("residual_history", cvec{cplx{1.0, 0.0}, cplx{0.5, 0.0}});
  const std::string path = "/tmp/ffw_ckpt_dbim_legacy.bin";
  ASSERT_TRUE(legacy.save(path));
  DbimCheckpoint in;
  in.mixed_precision = true;  // stale state must be overwritten
  in.backend = BackendKind::kCbs;
  ASSERT_TRUE(in.load(path));
  EXPECT_FALSE(in.mixed_precision);
  // Pre-multi-backend files ran everything on MLFMA.
  EXPECT_EQ(in.backend, BackendKind::kMlfma);
  EXPECT_EQ(in.iteration, 2);
  std::remove(path.c_str());
}

TEST(DbimCheckpointState, RejectsWrongSchema) {
  Checkpoint ck;
  ck.put_scalar("iteration", 3.0);  // missing all the arrays
  const std::string path = "/tmp/ffw_ckpt_schema.bin";
  ASSERT_TRUE(ck.save(path));
  DbimCheckpoint in;
  EXPECT_FALSE(in.load(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ffw
