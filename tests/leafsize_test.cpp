// Tunable leaf cluster size: the tree, operators and engine must stay
// correct for 4x4, 8x8 (paper default) and 16x16-pixel leaves, and the
// partitioned engine must still match the serial one.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"
#include "mlfma/partitioned.hpp"

namespace ffw {
namespace {

class LeafSizes : public ::testing::TestWithParam<int> {};

TEST_P(LeafSizes, TreeGeometryConsistent) {
  const int leaf = GetParam();
  Grid grid(128);
  QuadTree tree(grid, leaf);
  EXPECT_EQ(tree.leaf_pixel_side(), leaf);
  EXPECT_EQ(tree.pixels_per_leaf(), leaf * leaf);
  EXPECT_EQ(tree.leaf_side(), 128 / leaf);
  EXPECT_DOUBLE_EQ(tree.level(0).width, leaf * grid.h());
  // Permutation is a bijection.
  std::vector<bool> seen(grid.num_pixels(), false);
  for (auto v : tree.perm()) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST_P(LeafSizes, MlfmaMeetsAccuracyTarget) {
  const int leaf = GetParam();
  Grid grid(64);
  QuadTree tree(grid, leaf);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(static_cast<std::uint64_t>(leaf));
  cvec x_nat(n), x(n), y(n), y_nat(n);
  rng.fill_cnormal(x_nat);
  tree.to_cluster_order(x_nat, x);
  engine.apply(x, y);
  tree.to_natural_order(y, y_nat);

  const std::size_t nrows = 768;
  std::vector<std::uint32_t> rows(nrows);
  for (auto& r : rows) r = static_cast<std::uint32_t>(rng.next_u64() % n);
  const cvec ref = dense_g0_apply_rows(grid, x_nat, rows);
  cvec sub(nrows);
  for (std::size_t i = 0; i < nrows; ++i) sub[i] = y_nat[rows[i]];
  EXPECT_LT(rel_l2_diff(sub, ref), 1e-5) << "leaf=" << leaf;
}

TEST_P(LeafSizes, PartitionedMatchesSerial) {
  const int leaf = GetParam();
  Grid grid(64);
  QuadTree tree(grid, leaf);
  if (tree.num_levels() < 1) GTEST_SKIP();
  MlfmaParams params;
  MlfmaEngine serial(tree, params);
  PartitionedMlfma dist(tree, params, 4);
  const std::size_t n = grid.num_pixels();
  Rng rng(99);
  cvec x(n), y_serial(n), y_dist(n);
  rng.fill_cnormal(x);
  serial.apply(x, y_serial);
  VCluster vc(4);
  vc.run([&](Comm& comm) {
    const std::size_t b = dist.leaf_begin(comm.rank()) *
                          static_cast<std::size_t>(tree.pixels_per_leaf());
    const std::size_t sz = dist.local_pixels(comm.rank());
    cvec y_local(sz);
    dist.apply(comm, ccspan{x.data() + b, sz}, y_local);
    std::copy(y_local.begin(), y_local.end(), y_dist.begin() + b);
  });
  EXPECT_LT(rel_l2_diff(y_dist, y_serial), 1e-12) << "leaf=" << leaf;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LeafSizes, ::testing::Values(4, 8, 16));

TEST(LeafSizes, SmallerLeavesMeanMoreLevels) {
  Grid grid(128);
  QuadTree fine(grid, 4), paper(grid, 8), coarse(grid, 16);
  EXPECT_EQ(fine.num_levels(), paper.num_levels() + 1);
  EXPECT_EQ(paper.num_levels(), coarse.num_levels() + 1);
}

TEST(LeafSizes, InvalidSizesRejected) {
  Grid grid(64);
  EXPECT_DEATH(QuadTree(grid, 5), "multiple");   // 64 % 5 != 0
  EXPECT_DEATH(QuadTree(grid, 1), "at least");   // too small
}

}  // namespace
}  // namespace ffw
