// JsonWriter (io/json.hpp) regression tests. The original bench emitter
// wrote doubles with printf %.6e: NaN/Inf produced bare `nan`/`inf`
// tokens (invalid JSON) and six significant digits silently truncated
// timings. The shared writer must emit `null` for non-finite values and
// shortest round-trip decimals for everything else.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

#include "io/json.hpp"
#include "json_check.hpp"

namespace ffw {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string emit(const std::function<void(JsonWriter&)>& body) {
  const std::string path = "/tmp/ffw_json_test.json";
  {
    JsonWriter json(path);
    EXPECT_TRUE(json.ok());
    body(json);
    json.close();
  }
  const std::string text = slurp(path);
  std::remove(path.c_str());
  return text;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string text = emit([](JsonWriter& json) {
    json.field("nan", std::numeric_limits<double>::quiet_NaN());
    json.field("pinf", std::numeric_limits<double>::infinity());
    json.field("ninf", -std::numeric_limits<double>::infinity());
    json.field("fine", 1.5);
  });
  EXPECT_TRUE(testing::json_valid(text)) << text;
  // All three non-finite fields degrade to null; no bare nan/inf token
  // (the pre-fix emitter wrote `"nan": nan` and the file would not load).
  EXPECT_NE(text.find("\"nan\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"pinf\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"ninf\": null"), std::string::npos) << text;
  EXPECT_EQ(text.find(": nan"), std::string::npos) << text;
  EXPECT_EQ(text.find(": inf"), std::string::npos) << text;
  EXPECT_EQ(text.find(": -inf"), std::string::npos) << text;
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  // Values chosen to lose digits under the old %.6e formatting.
  const double vals[] = {1.0 / 3.0,
                         6.02214076e23,
                         -7.297352569311e-3,
                         1e-300,
                         123456789.123456789,
                         std::nextafter(1.0, 2.0)};
  const std::string text = emit([&](JsonWriter& json) {
    json.begin_array("v");
    int i = 0;
    for (const double v : vals) {
      json.begin_object();
      json.field(("x" + std::to_string(i++)).c_str(), v);
      json.end();
    }
    json.end();
  });
  ASSERT_TRUE(testing::json_valid(text)) << text;
  // Parse each emitted number back with strtod: shortest round-trip
  // formatting guarantees bit-exact recovery.
  int i = 0;
  for (const double v : vals) {
    const std::string key = "\"x" + std::to_string(i++) + "\": ";
    const std::size_t at = text.find(key);
    ASSERT_NE(at, std::string::npos) << text;
    const double back = std::strtod(text.c_str() + at + key.size(), nullptr);
    EXPECT_EQ(back, v) << "value index " << i - 1;
  }
}

TEST(JsonWriter, EarlyDestructionClosesAllScopes) {
  const std::string path = "/tmp/ffw_json_early.json";
  {
    JsonWriter json(path);
    json.begin_object("outer");
    json.begin_array("rows");
    json.begin_object();
    json.field("partial", 1);
    // Writer destroyed with three scopes still open — must close them.
  }
  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_TRUE(testing::json_valid(text)) << text;
}

TEST(JsonWriter, MixedTypesProduceValidJson) {
  const std::string text = emit([](JsonWriter& json) {
    json.field("s", "hello");
    json.field("i", -42);
    json.field("u", std::uint64_t{18446744073709551615ull});
    json.field("b", true);
    json.begin_array("empty");
    json.end();
    json.begin_object("nested");
    json.field("d", 0.25);
    json.end();
  });
  EXPECT_TRUE(testing::json_valid(text)) << text;
  EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace ffw
