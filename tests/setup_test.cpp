// Scenario assembly and measurement synthesis.
#include <gtest/gtest.h>

#include "linalg/kernels.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

TEST(Scenario, GeometryMatchesConfig) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 5;
  cfg.num_receivers = 9;
  cfg.ring_radius_factor = 1.25;
  Grid grid(cfg.nx);
  Scenario scene(cfg, cvec(grid.num_pixels(), cplx{}));
  EXPECT_EQ(scene.transceivers().num_transmitters(), 5);
  EXPECT_EQ(scene.transceivers().num_receivers(), 9);
  for (const auto& p : scene.transceivers().transmitters()) {
    EXPECT_NEAR(norm(p), 1.25 * grid.domain(), 1e-12);
  }
  EXPECT_EQ(scene.measurements().rows(), 9u);
  EXPECT_EQ(scene.measurements().cols(), 5u);
}

TEST(Scenario, ZeroObjectScattersNothing) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 3;
  cfg.num_receivers = 8;
  Grid grid(cfg.nx);
  Scenario scene(cfg, cvec(grid.num_pixels(), cplx{}));
  for (std::size_t t = 0; t < scene.measurements().cols(); ++t) {
    EXPECT_LT(nrm2(scene.measurements().col(t)), 1e-14);
  }
}

TEST(Scenario, MeasurementScalesLinearlyInTheBornRegime) {
  // For a very weak scatterer, doubling the contrast ~doubles the data.
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 2;
  cfg.num_receivers = 8;
  Grid grid(cfg.nx);
  const cvec weak = gaussian_blob(grid, Vec2{0, 0}, 0.4, cplx{1e-4, 0});
  cvec strong(weak.size());
  for (std::size_t i = 0; i < weak.size(); ++i) strong[i] = 2.0 * weak[i];
  Scenario s1(cfg, weak), s2(cfg, strong);
  double n1 = 0, n2 = 0;
  for (std::size_t t = 0; t < s1.measurements().cols(); ++t) {
    n1 += nrm2(s1.measurements().col(t));
    n2 += nrm2(s2.measurements().col(t));
  }
  EXPECT_NEAR(n2 / n1, 2.0, 0.01);
}

TEST(Scenario, NoiseScalesWithRequestedLevel) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 4;
  cfg.num_receivers = 16;
  Grid grid(cfg.nx);
  const cvec truth = gaussian_blob(grid, Vec2{0, 0}, 0.4, cplx{0.01, 0});
  cfg.measurement_noise = 0.0;
  Scenario clean(cfg, truth);
  cfg.measurement_noise = 0.1;
  Scenario noisy(cfg, truth);
  double diff2 = 0.0, base2 = 0.0;
  for (std::size_t t = 0; t < clean.measurements().cols(); ++t) {
    for (std::size_t r = 0; r < clean.measurements().rows(); ++r) {
      diff2 += std::norm(noisy.measurements()(r, t) -
                         clean.measurements()(r, t));
      base2 += std::norm(clean.measurements()(r, t));
    }
  }
  const double rel = std::sqrt(diff2 / base2);
  EXPECT_GT(rel, 0.05);
  EXPECT_LT(rel, 0.2);  // requested 10%
}

TEST(Scenario, NoiseIsSeedDeterministic) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 2;
  cfg.num_receivers = 8;
  cfg.measurement_noise = 0.05;
  Grid grid(cfg.nx);
  const cvec truth = gaussian_blob(grid, Vec2{0, 0}, 0.4, cplx{0.01, 0});
  Scenario a(cfg, truth), b(cfg, truth);
  for (std::size_t t = 0; t < a.measurements().cols(); ++t) {
    EXPECT_LT(rel_l2_diff(cvec(a.measurements().col(t).begin(),
                               a.measurements().col(t).end()),
                          cvec(b.measurements().col(t).begin(),
                               b.measurements().col(t).end())),
              1e-15);
  }
}

TEST(Scenario, LimitedArcPlacesAllElementsInArc) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 7;
  cfg.num_receivers = 11;
  cfg.tx_angle_begin = -0.5;
  cfg.tx_angle_end = 0.5;
  cfg.rx_angle_begin = 1.0;
  cfg.rx_angle_end = 2.0;
  Grid grid(cfg.nx);
  Scenario scene(cfg, cvec(grid.num_pixels(), cplx{}));
  for (const auto& p : scene.transceivers().transmitters()) {
    const double a = angle_of(p);
    EXPECT_GE(a, -0.5 - 1e-12);
    EXPECT_LT(a, 0.5);
  }
  for (const auto& p : scene.transceivers().receivers()) {
    const double a = angle_of(p);
    EXPECT_GE(a, 1.0 - 1e-12);
    EXPECT_LT(a, 2.0);
  }
}

}  // namespace
}  // namespace ffw
