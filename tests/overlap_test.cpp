// Overlap-scheduled partitioned MLFMA: the arrival-order (completion-
// driven) halo draining must reproduce the serial engine even when
// messages are delayed and arrive out of order, with wire traffic
// identical to the blocking-ordered baseline and per-apply panel memory
// compacted to the owned + ghost footprint.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/rng.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"
#include "mlfma/partitioned.hpp"

namespace ffw {
namespace {

// Tags used by PartitionedMlfma (mirrored here so tests can assert
// per-tag traffic): near-field halo = 1, level-l halo = 10 + l.
constexpr int kTagNear = 1;
constexpr int kTagLevel = 10;

/// Deterministic pseudo-random per-message delay in [lo_us, hi_us):
/// splitmix64 over an atomic call counter — thread-safe, seed-stable.
int hashed_delay_us(int lo_us, int hi_us) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) *
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return lo_us + static_cast<int>(z % static_cast<std::uint64_t>(
                                          hi_us - lo_us));
}

/// Runs the distributed blocked apply over `p` ranks and gathers the
/// full result vector (leaf-interleaved layout, like the serial
/// engine's apply_block).
cvec distributed_apply(VCluster& vc, const PartitionedMlfma& dist,
                       const QuadTree& tree, ccspan x, std::size_t nrhs,
                       ApplySchedule sched) {
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  cvec y(x.size(), cplx{});
  vc.run([&](Comm& comm) {
    const std::size_t b = dist.leaf_begin(comm.rank()) * np * nrhs;
    const std::size_t sz = dist.local_pixels(comm.rank()) * nrhs;
    cvec y_local(sz);
    dist.apply_block(comm, ccspan{x.data() + b, sz}, y_local, nrhs, 0,
                     sched);
    std::copy(y_local.begin(), y_local.end(), y.begin() + b);
  });
  return y;
}

struct Case {
  int ranks;
  std::size_t nrhs;
};

class OverlapEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(OverlapEquivalence, MatchesSerialUnderRandomDelays) {
  const Case c = GetParam();
  Grid grid(128);  // 3 levels, 256 leaves
  QuadTree tree(grid);
  MlfmaParams params;
  MlfmaEngine serial(tree, params);
  PartitionedMlfma dist(tree, params, c.ranks);

  const std::size_t n = grid.num_pixels() * c.nrhs;
  Rng rng(71);
  cvec x(n), y_serial(n);
  rng.fill_cnormal(x);
  serial.apply_block(x, y_serial, c.nrhs);

  for (const ApplySchedule sched :
       {ApplySchedule::kOverlapped, ApplySchedule::kBlockingOrdered}) {
    VCluster vc(c.ranks);
    vc.set_send_delay([](int, int, int) { return hashed_delay_us(0, 700); });
    const cvec y = distributed_apply(vc, dist, tree, x, c.nrhs, sched);
    EXPECT_LT(rel_l2_diff(y, y_serial), 1e-12)
        << "ranks=" << c.ranks << " nrhs=" << c.nrhs << " sched="
        << (sched == ApplySchedule::kOverlapped ? "overlapped" : "blocking");
  }
}

INSTANTIATE_TEST_SUITE_P(RanksAndWidths, OverlapEquivalence,
                         ::testing::Values(Case{4, 1}, Case{4, 8},
                                           Case{8, 1}, Case{8, 8}));

TEST(Overlap, MatchesSerialUnderReversedArrivalOrder) {
  // Adversarial delay profile: the lower the source rank, the later its
  // messages land, so every rank's halos arrive in the exact reverse of
  // the blocking schedule's fixed drain order.
  constexpr int p = 8;
  const std::size_t nrhs = 8;
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaParams params;
  MlfmaEngine serial(tree, params);
  PartitionedMlfma dist(tree, params, p);

  const std::size_t n = grid.num_pixels() * nrhs;
  Rng rng(72);
  cvec x(n), y_serial(n);
  rng.fill_cnormal(x);
  serial.apply_block(x, y_serial, nrhs);

  VCluster vc(p);
  vc.set_send_delay([](int src, int, int) { return (p - src) * 400; });
  const cvec y =
      distributed_apply(vc, dist, tree, x, nrhs, ApplySchedule::kOverlapped);
  EXPECT_LT(rel_l2_diff(y, y_serial), 1e-12);
}

TEST(Overlap, TrafficIdenticalAcrossSchedules) {
  // Overlap moves *when* halos are drained, never what goes on the
  // wire: per-edge byte/message counts and per-tag volumes must be
  // identical between the two schedules.
  const int p = 8;
  const std::size_t nrhs = 4;
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaParams params;
  PartitionedMlfma dist(tree, params, p);

  const std::size_t n = grid.num_pixels() * nrhs;
  cvec x(n, cplx{0.5, -0.25});

  VCluster vc(p);
  distributed_apply(vc, dist, tree, x, nrhs, ApplySchedule::kBlockingOrdered);
  const TrafficStats blocking = vc.traffic();
  const auto blocking_tags = vc.traffic_by_tag();
  vc.reset_traffic();
  distributed_apply(vc, dist, tree, x, nrhs, ApplySchedule::kOverlapped);
  const TrafficStats overlapped = vc.traffic();
  const auto overlapped_tags = vc.traffic_by_tag();

  EXPECT_EQ(blocking.bytes, overlapped.bytes);        // per edge
  EXPECT_EQ(blocking.messages, overlapped.messages);  // per edge
  EXPECT_EQ(blocking_tags, overlapped_tags);          // per tag
  // Sanity: both phases of the exchange actually communicated.
  EXPECT_GT(vc.tag_traffic(kTagNear).bytes, 0u);
  for (int l = 0; l < tree.num_levels(); ++l)
    EXPECT_GT(vc.tag_traffic(kTagLevel + l).bytes, 0u);
}

TEST(Overlap, CompactPanelsHoldOwnedPlusGhostOnly) {
  // Per-apply spectra panels must be sized by the rank's owned + ghost
  // clusters (recomputed here from the interaction lists), not the
  // global tree.
  const int p = 4;
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaParams params;
  PartitionedMlfma dist(tree, params, p);
  MlfmaPlan plan(tree, params);

  for (int r = 0; r < p; ++r) {
    std::size_t expected = 0;
    for (int l = 0; l < tree.num_levels(); ++l) {
      const TreeLevel& lvl = tree.level(l);
      const std::size_t nc = lvl.num_clusters;
      const auto owner = [&](std::size_t c) {
        return static_cast<int>(c * static_cast<std::size_t>(p) / nc);
      };
      const std::size_t ob = nc * static_cast<std::size_t>(r) / p;
      const std::size_t oe = nc * (static_cast<std::size_t>(r) + 1) / p;
      std::set<std::uint32_t> ghosts;
      for (std::size_t c = ob; c < oe; ++c) {
        for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1];
             ++e) {
          if (owner(lvl.far[e].src) != r) ghosts.insert(lvl.far[e].src);
        }
      }
      // Outgoing panel: owned + ghost; incoming panel: owned only.
      expected += static_cast<std::size_t>(plan.level(l).samples) *
                  (2 * (oe - ob) + ghosts.size());
    }
    {
      const std::size_t nl = tree.num_leaves();
      const auto owner = [&](std::size_t c) {
        return static_cast<int>(c * static_cast<std::size_t>(p) / nl);
      };
      const std::size_t lb = nl * static_cast<std::size_t>(r) / p;
      const std::size_t le = nl * (static_cast<std::size_t>(r) + 1) / p;
      std::set<std::uint32_t> ghosts;
      for (std::size_t c = lb; c < le; ++c) {
        for (std::uint32_t e = tree.near_begin()[c];
             e < tree.near_begin()[c + 1]; ++e) {
          if (owner(tree.near()[e].src) != r) ghosts.insert(tree.near()[e].src);
        }
      }
      expected +=
          ghosts.size() * static_cast<std::size_t>(tree.pixels_per_leaf());
    }
    EXPECT_EQ(dist.panel_elements(r), expected) << "rank " << r;
    // The compaction claim itself: strictly below the former
    // full-size-global-panel footprint.
    EXPECT_LT(dist.panel_elements(r), dist.global_panel_elements())
        << "rank " << r;
  }
}

TEST(Overlap, ScheduleCoversEveryInteractionExactlyOnce) {
  // The dependency split is a partition: every far/near entry of an
  // owned destination appears in exactly one work list (local, or one
  // peer's group), so summed counts must match the tree's lists.
  const int p = 8;
  Grid grid(128);
  QuadTree tree(grid);
  PartitionedMlfma dist(tree, {}, p);

  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      const PhaseSchedule& ps = dist.schedule(r).levels[static_cast<std::size_t>(l)];
      total += ps.local.size();
      for (const PeerRecv& pr : ps.recvs) total += pr.work.size();
      // Ghost slot ranges tile [0, num_ghosts) without overlap.
      std::size_t covered = 0;
      for (const PeerRecv& pr : ps.recvs) covered += pr.count;
      EXPECT_EQ(covered, ps.num_ghosts);
    }
    EXPECT_EQ(total, lvl.far.size()) << "level " << l;
  }
  std::size_t total = 0;
  for (int r = 0; r < p; ++r) {
    const PhaseSchedule& ps = dist.schedule(r).near;
    total += ps.local.size();
    for (const PeerRecv& pr : ps.recvs) total += pr.work.size();
  }
  EXPECT_EQ(total, tree.near().size());
}

}  // namespace
}  // namespace ffw
