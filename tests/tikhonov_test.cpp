// Tikhonov-regularised DBIM: behaviour of the penalty term in both the
// serial and the distributed driver.
#include <gtest/gtest.h>

#include "dbim/parallel_driver.hpp"
#include "linalg/kernels.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

struct NoisyScene {
  ScenarioConfig cfg;
  std::unique_ptr<Scenario> scene;

  explicit NoisyScene(double noise) {
    cfg.nx = 32;
    cfg.num_transmitters = 8;
    cfg.num_receivers = 24;
    cfg.measurement_noise = noise;
    Grid grid(cfg.nx);
    scene = std::make_unique<Scenario>(
        cfg, gaussian_blob(grid, Vec2{0.2, -0.1}, 0.5, cplx{0.01, 0.0}));
  }
};

TEST(Tikhonov, ZeroWeightMatchesUnregularised) {
  NoisyScene f(0.0);
  DbimOptions a;
  a.max_iterations = 6;
  DbimOptions b = a;
  b.tikhonov = 0.0;
  const DbimResult ra = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(), a);
  const DbimResult rb = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(), b);
  EXPECT_LT(rel_l2_diff(ra.contrast, rb.contrast), 1e-12);
}

TEST(Tikhonov, LargeWeightSuppressesTheImage) {
  NoisyScene f(0.0);
  DbimOptions opts;
  opts.max_iterations = 6;
  opts.tikhonov = 1e6;  // absurdly strong: the minimiser is near zero
  const DbimResult res = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);
  const double truth_norm = nrm2(f.scene->true_contrast());
  EXPECT_LT(nrm2(res.contrast), 0.1 * truth_norm);
}

TEST(Tikhonov, DampsNoiseAmplification) {
  NoisyScene f(0.10);  // 10% measurement noise
  DbimOptions plain;
  plain.max_iterations = 12;
  DbimOptions reg = plain;
  // Weight scaled to the data term's magnitude (measurements are tiny).
  reg.tikhonov = 1e-7;
  const DbimResult r0 = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      plain);
  const DbimResult r1 = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      reg);
  const double rmse0 = image_rmse(r0.contrast, f.scene->true_contrast());
  const double rmse1 = image_rmse(r1.contrast, f.scene->true_contrast());
  // Regularisation must not make things notably worse, and the
  // regularised image must be no larger in norm (shrinkage).
  EXPECT_LT(rmse1, rmse0 * 1.1);
  EXPECT_LE(nrm2(r1.contrast), nrm2(r0.contrast) * 1.001);
}

TEST(Tikhonov, ParallelDriverAppliesSamePenalty) {
  NoisyScene f(0.0);
  DbimOptions opts;
  opts.max_iterations = 5;
  opts.tikhonov = 1e-6;
  const DbimResult serial = dbim_reconstruct(
      f.scene->engine(), f.scene->transceivers(), f.scene->measurements(),
      opts);

  ParallelDbimConfig pcfg;
  pcfg.illum_groups = 2;
  pcfg.tree_ranks = 2;
  pcfg.dbim = opts;
  VCluster vc(4);
  const DbimResult par = dbim_reconstruct_parallel(
      vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
      pcfg);
  EXPECT_LT(image_rmse(par.contrast, serial.contrast), 0.05);
}

}  // namespace
}  // namespace ffw
