// Multi-RHS (blocked) MLFMA apply: every column of apply_block /
// apply_herm_block must match the single-vector apply on the same
// engine, across tree depths including the degenerate near-only tree.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/block.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"

namespace ffw {
namespace {

BlockLayout engine_layout(const QuadTree& tree, std::size_t nrhs) {
  return BlockLayout{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                     tree.num_leaves()};
}

struct Case {
  int nx;
  std::size_t nrhs;
};

class BlockApplySweep : public ::testing::TestWithParam<Case> {};

TEST_P(BlockApplySweep, BlockApplyMatchesLoopedApply) {
  const Case c = GetParam();
  Grid grid(c.nx);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  const BlockLayout lo = engine_layout(tree, c.nrhs);

  Rng rng(static_cast<std::uint64_t>(100 * c.nx + c.nrhs));
  std::vector<cvec> cols(c.nrhs);
  cvec xb(lo.size()), yb(lo.size());
  for (std::size_t r = 0; r < c.nrhs; ++r) {
    cols[r].resize(n);
    rng.fill_cnormal(cols[r]);
    block_col_set(lo, xb, r, cols[r]);
  }
  engine.apply_block(xb, yb, c.nrhs);

  cvec want(n), got(n);
  for (std::size_t r = 0; r < c.nrhs; ++r) {
    engine.apply(cols[r], want);
    block_col_get(lo, yb, r, got);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      num += std::norm(got[i] - want[i]);
      den += std::norm(want[i]);
    }
    EXPECT_LT(std::sqrt(num), 1e-12 * std::sqrt(den))
        << "nx=" << c.nx << " nrhs=" << c.nrhs << " col=" << r;
  }
}

TEST_P(BlockApplySweep, HermBlockMatchesLoopedHerm) {
  const Case c = GetParam();
  Grid grid(c.nx);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  const BlockLayout lo = engine_layout(tree, c.nrhs);

  Rng rng(static_cast<std::uint64_t>(200 * c.nx + c.nrhs));
  std::vector<cvec> cols(c.nrhs);
  cvec xb(lo.size()), yb(lo.size());
  for (std::size_t r = 0; r < c.nrhs; ++r) {
    cols[r].resize(n);
    rng.fill_cnormal(cols[r]);
    block_col_set(lo, xb, r, cols[r]);
  }
  engine.apply_herm_block(xb, yb, c.nrhs);

  cvec want(n), got(n);
  for (std::size_t r = 0; r < c.nrhs; ++r) {
    engine.apply_herm(cols[r], want);
    block_col_get(lo, yb, r, got);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      num += std::norm(got[i] - want[i]);
      den += std::norm(want[i]);
    }
    EXPECT_LT(std::sqrt(num), 1e-12 * std::sqrt(den))
        << "nx=" << c.nx << " nrhs=" << c.nrhs << " col=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndWidths, BlockApplySweep,
    ::testing::Values(Case{16, 2},   // degenerate: zero far-field levels
                      Case{16, 5},   //
                      Case{32, 3},   // one translation level
                      Case{64, 2},   // multi-level
                      Case{64, 8},   //
                      Case{128, 4}));

TEST(BlockApply, Nrhs1IsBitIdenticalToApply) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(17);
  cvec x(n), y1(n), y2(n);
  rng.fill_cnormal(x);
  engine.apply(x, y1);
  engine.apply_block(x, y2, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(BlockApply, GrowingThenShrinkingWidthStaysCorrect) {
  // Block capacity only grows; a narrow apply after a wide one must not
  // read stale spectra from the over-allocated panels.
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  const BlockLayout wide = engine_layout(tree, 6);
  Rng rng(23);
  cvec xw(wide.size()), yw(wide.size());
  rng.fill_cnormal(xw);
  engine.apply_block(xw, yw, 6);

  cvec x(n), y1(n), y2(n);
  rng.fill_cnormal(x);
  engine.apply(x, y1);  // narrow apply after capacity growth
  MlfmaEngine fresh(tree);
  fresh.apply(x, y2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(BlockApply, ApplicationsCounterAdvancesByNrhs) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const BlockLayout lo = engine_layout(tree, 4);
  cvec x(lo.size(), cplx{1.0, 0.0}), y(lo.size());
  const std::uint64_t before = engine.phase_times().applications;
  engine.apply_block(x, y, 4);
  EXPECT_EQ(engine.phase_times().applications, before + 4);
}

}  // namespace
}  // namespace ffw
