// Green's-function discretisation: kernel values, Richmond disk
// integration consistency, symmetry/reciprocity, and the matrix-free
// reference paths.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "special/bessel.hpp"

namespace ffw {
namespace {

TEST(Greens, PointKernelIsQuarterIHankel) {
  const double k = 2.0 * pi;
  for (double r : {0.05, 0.3, 1.7, 9.0}) {
    const cplx g = g0_point(k, r);
    const cplx h{bessel_j0(k * r), bessel_y0(k * r)};
    EXPECT_NEAR(std::abs(g - 0.25 * iu * h), 0.0, 1e-14);
  }
}

TEST(Greens, SourceFactorApproachesPixelArea) {
  // For small ka, (2 pi a / k) J1(ka) -> pi a^2 = pixel area h^2.
  Grid grid(16);
  const double area = grid.h() * grid.h();
  EXPECT_NEAR(source_factor(grid) / area, 1.0, 0.05);
}

TEST(Greens, SelfTermMatchesNumericalDiskIntegral) {
  // Integrate g0 over the equal-area disk numerically (polar midpoint)
  // and compare to the closed form.
  Grid grid(16);
  const double k = grid.k0();
  const double a = grid.disk_radius();
  cplx quad{};
  const int nr = 2000, nt = 8;
  for (int i = 0; i < nr; ++i) {
    const double rho = (i + 0.5) * a / nr;
    for (int j = 0; j < nt; ++j) {
      quad += g0_point(k, rho) * rho;
    }
  }
  quad *= (a / nr) * (2.0 * pi / nt);
  const cplx closed = self_term(grid);
  // The integrand has a log singularity at the origin; the midpoint
  // rule converges slowly there, hence the modest tolerance.
  EXPECT_NEAR(std::abs(quad - closed), 0.0, 1e-5 * std::abs(closed));
}

TEST(Greens, PixelKernelReciprocity) {
  Grid grid(32);
  const Vec2 p1 = grid.pixel_center(3, 7);
  const Vec2 p2 = grid.pixel_center(20, 14);
  EXPECT_EQ(g0_pixel(grid, p1, p2), g0_pixel(grid, p2, p1));
}

TEST(Greens, DenseG0IsComplexSymmetric) {
  Grid grid(16);
  const CMatrix g = build_dense_g0(grid);
  for (std::size_t i = 0; i < g.rows(); i += 7) {
    for (std::size_t j = 0; j < g.cols(); j += 11) {
      EXPECT_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(Greens, MatrixFreeApplyMatchesDenseMatrix) {
  Grid grid(16);
  const CMatrix g = build_dense_g0(grid);
  Rng rng(71);
  cvec x(grid.num_pixels());
  rng.fill_cnormal(x);
  cvec y_mat(grid.num_pixels());
  matvec(g, x, y_mat);
  const cvec y_free = dense_g0_apply(grid, x);
  EXPECT_LT(rel_l2_diff(y_free, y_mat), 1e-13);
}

TEST(Greens, RowSubsetMatchesFullApply) {
  Grid grid(16);
  Rng rng(72);
  cvec x(grid.num_pixels());
  rng.fill_cnormal(x);
  const cvec full = dense_g0_apply(grid, x);
  const std::vector<std::uint32_t> rows = {0, 17, 99, 255};
  const cvec sub = dense_g0_apply_rows(grid, x, rows);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(sub[i], full[rows[i]]);
  }
}

TEST(Greens, KernelDecaysLikeInverseSqrt) {
  // |H0(kr)| ~ sqrt(2/(pi k r)) at large r: doubling r shrinks the
  // kernel by ~sqrt(2).
  const double k = 2.0 * pi;
  const double g1 = std::abs(g0_point(k, 20.0));
  const double g2 = std::abs(g0_point(k, 40.0));
  EXPECT_NEAR(g1 / g2, std::sqrt(2.0), 0.01);
}

}  // namespace
}  // namespace ffw
