// Imaging-domain grid geometry.
#include <gtest/gtest.h>

#include "grid/grid.hpp"

namespace ffw {
namespace {

TEST(Grid, PaperDiscretisation) {
  Grid grid(1024);  // the paper's 1M-unknown domain
  EXPECT_DOUBLE_EQ(grid.h(), 0.1);           // lambda/10 pixels
  EXPECT_DOUBLE_EQ(grid.domain(), 102.4);    // 102.4 lambda
  EXPECT_EQ(grid.num_pixels(), std::size_t{1} << 20);
  EXPECT_DOUBLE_EQ(grid.k0(), 2.0 * pi);
}

TEST(Grid, PixelCentersAreCellCentred) {
  Grid grid(4, 10.0);  // 0.4-lambda domain
  const Vec2 c00 = grid.pixel_center(0, 0);
  EXPECT_NEAR(c00.x, -0.15, 1e-14);
  EXPECT_NEAR(c00.y, -0.15, 1e-14);
  const Vec2 c33 = grid.pixel_center(3, 3);
  EXPECT_NEAR(c33.x, 0.15, 1e-14);
  EXPECT_NEAR(c33.y, 0.15, 1e-14);
  // Domain is centred: the centre of the grid is the origin.
  const Vec2 mid = 0.5 * (grid.pixel_center(1, 2) + grid.pixel_center(2, 1));
  EXPECT_NEAR(mid.x, 0.0, 1e-14);
  EXPECT_NEAR(mid.y, 0.0, 1e-14);
}

TEST(Grid, IndexingIsRowMajor) {
  Grid grid(8);
  EXPECT_EQ(grid.pixel_index(0, 0), 0u);
  EXPECT_EQ(grid.pixel_index(7, 0), 7u);
  EXPECT_EQ(grid.pixel_index(0, 1), 8u);
  EXPECT_EQ(grid.pixel_index(7, 7), 63u);
}

TEST(Grid, CustomSamplingDensity) {
  Grid coarse(64, 5.0);  // lambda/5 pixels
  EXPECT_DOUBLE_EQ(coarse.h(), 0.2);
  EXPECT_DOUBLE_EQ(coarse.domain(), 12.8);
}

TEST(Grid, DiskRadiusPreservesArea) {
  Grid grid(32);
  const double a = grid.disk_radius();
  EXPECT_NEAR(pi * a * a, grid.h() * grid.h(), 1e-14);
}

}  // namespace
}  // namespace ffw
