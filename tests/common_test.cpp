// Common substrate: RNG determinism and statistics, timers, table
// formatting, Vec2 arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace ffw {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRangeAndMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, ComplexNormalIsIsotropic) {
  Rng rng(10);
  cplx mean{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) mean += rng.cnormal();
  mean /= static_cast<double>(n);
  EXPECT_LT(std::abs(mean), 0.03);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double s = t.seconds();
  EXPECT_GE(s, 0.025);
  EXPECT_LT(s, 3.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.025);
}

TEST(Stopwatch, AccumulatesWindows) {
  Stopwatch w;
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  w.stop();
  const double first = w.total();
  EXPECT_GE(first, 0.010);
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  w.stop();
  EXPECT_GE(w.total(), first + 0.010);
  w.clear();
  EXPECT_EQ(w.total(), 0.0);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "bbbb"});
  t.add_row({"xxxx", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a    | bbbb"), std::string::npos);
  EXPECT_NE(s.find("xxxx | y"), std::string::npos);
  EXPECT_NE(s.find("-----+-----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1 |   | "), std::string::npos);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_speedup(4.0), "4.00x");
  EXPECT_EQ(fmt_sci(0.000123, 1), "1.2e-04");
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{3.0, 4.0}, b{1.0, -2.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 2.0}));
  EXPECT_EQ((a - b), (Vec2{2.0, 6.0}));
  EXPECT_EQ((2.0 * b), (Vec2{2.0, -4.0}));
  EXPECT_DOUBLE_EQ(dot(a, b), -5.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_NEAR(angle_of(Vec2{0.0, 1.0}), pi / 2, 1e-14);
}

}  // namespace
}  // namespace ffw
