// OperatorTableCache: single-flight builds under concurrency (the tsan
// preset's `service` label race-checks this file), LRU eviction under a
// byte budget with in-use artifacts staying valid, key separation, and
// the fp64 1-D FFT plan cache's configurable capacity + obs counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fft/fft.hpp"
#include "fft/fft2.hpp"
#include "obs/obs.hpp"
#include "service/table_cache.hpp"

namespace ffw {
namespace {

TEST(TableCache, MlfmaHitReturnsSameArtifact) {
  OperatorTableCache cache;
  Grid grid(32);
  const auto a = cache.mlfma_tables(grid, 8, {});
  const auto b = cache.mlfma_tables(grid, 8, {});
  EXPECT_EQ(a.get(), b.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, a->bytes());
  EXPECT_GT(s.build_seconds, 0.0);
}

TEST(TableCache, KeySeparatesConfigurations) {
  OperatorTableCache cache;
  Grid g32(32), g16(16);
  MlfmaParams loose;
  loose.digits = 3.0;
  const auto a = cache.mlfma_tables(g32, 8, {});
  const auto b = cache.mlfma_tables(g16, 8, {});    // different grid
  const auto c = cache.mlfma_tables(g32, 16, {});   // different leaf
  const auto d = cache.mlfma_tables(g32, 8, loose); // different accuracy
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// The tsan stress case: many threads miss the same key at once; exactly
// one build must run (single-flight) and everyone must get the same
// pointer. Unrelated keys must not serialise behind it.
TEST(TableCache, ConcurrentMissesBuildOnce) {
  OperatorTableCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const OperatorTables>> got(kThreads);
  std::vector<std::shared_ptr<const CbsTables>> got_cbs(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // maximise contention on the first lookup
      Grid grid(32);
      got[static_cast<std::size_t>(i)] = cache.mlfma_tables(grid, 8, {});
      got_cbs[static_cast<std::size_t>(i)] = cache.cbs_tables(grid);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(i)].get());
    EXPECT_EQ(got_cbs[0].get(), got_cbs[static_cast<std::size_t>(i)].get());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 2u);  // one MLFMA build + one CBS build
  EXPECT_EQ(s.hits, 2u * kThreads - 2u);
}

TEST(TableCache, EvictionRespectsBudgetAndInUseArtifacts) {
  OperatorTableCache cache;
  Grid g32(32), g16(16), g24(24);
  const auto a = cache.cbs_tables(g16);
  const std::size_t a_bytes = a->bytes();
  // Shrink the budget so only ~one CBS artifact fits, then insert more.
  cache.set_budget(a_bytes + 16);
  const auto b = cache.cbs_tables(g24);
  const auto c = cache.cbs_tables(g32);
  const auto s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.entries, 2u);
  // Evicted artifacts stay fully usable through the held shared_ptr.
  EXPECT_EQ(a->grid.nx(), 16);
  EXPECT_FALSE(a->g0hat.empty());
  EXPECT_EQ(b->grid.nx(), 24);
  // A re-request of an evicted key is a fresh miss, not a crash.
  const auto a2 = cache.cbs_tables(g16);
  EXPECT_EQ(a2->grid.nx(), 16);
}

TEST(TableCache, TransceiverPanelMatchesPerCallEvaluation) {
  OperatorTableCache cache;
  Grid grid(32);
  const double radius = grid.domain();
  const auto tx = ring_positions(4, radius);
  const auto rx = ring_positions(8, radius);
  const auto tt = cache.transceiver_tables(grid, tx, rx);
  ASSERT_EQ(tt->incident().size(), grid.num_pixels() * 4);
  for (int t = 0; t < 4; ++t) {
    const cvec direct = tt->trx.incident_field(t);
    const ccspan col = tt->incident().subspan(
        static_cast<std::size_t>(t) * grid.num_pixels(), grid.num_pixels());
    for (std::size_t i = 0; i < grid.num_pixels(); ++i) {
      ASSERT_EQ(direct[i], col[i]);  // bit-identical, not approximately
    }
  }
  // Same geometry hits; different geometry misses.
  const auto again = cache.transceiver_tables(grid, tx, rx);
  EXPECT_EQ(tt.get(), again.get());
  const auto other = cache.transceiver_tables(grid, ring_positions(5, radius),
                                              rx);
  EXPECT_NE(tt.get(), other.get());
}

TEST(TableCache, ClearDropsResidency) {
  OperatorTableCache cache;
  Grid grid(16);
  const auto a = cache.cbs_tables(grid);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_FALSE(a->g0hat.empty());  // hand-out survives
  const auto b = cache.cbs_tables(grid);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// Satellite: the fp64 1-D FFT plan cache gets a configurable capacity
// and obs counters (fft_plan_hits / fft_plan_misses).
TEST(FftPlanCache, CapacityIsConfigurableAndCounted) {
  obs::set_enabled(true);
  const auto totals0 = obs::counter_totals(0);
  fft_plan_cache_clear();
  const std::size_t prev = fft_plan_cache_set_capacity(2);
  const auto before = fft_plan_cache_stats();
  EXPECT_EQ(before.capacity, 2u);

  const auto p64 = fft_plan(64);
  const auto p128 = fft_plan(128);
  const auto p64b = fft_plan(64);  // hit
  EXPECT_EQ(p64.get(), p64b.get());
  const auto p256 = fft_plan(256);  // evicts LRU (128)
  auto s = fft_plan_cache_stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.misses, before.misses + 3);
  EXPECT_EQ(s.hits, before.hits + 1);
  // Evicted plans stay valid through their shared_ptr.
  cvec x(128, cplx{1.0, 0.0});
  p128->forward(x);

  // The same traffic is visible on the obs counters.
  const auto totals = obs::counter_totals(0);
  EXPECT_GE(totals[static_cast<std::size_t>(obs::Counter::kFftPlanMisses)] -
                totals0[static_cast<std::size_t>(obs::Counter::kFftPlanMisses)],
            3u);
  EXPECT_GE(totals[static_cast<std::size_t>(obs::Counter::kFftPlanHits)] -
                totals0[static_cast<std::size_t>(obs::Counter::kFftPlanHits)],
            1u);
  obs::set_enabled(false);

  // Shrinking to 1 evicts immediately.
  fft_plan_cache_set_capacity(1);
  EXPECT_EQ(fft_plan_cache_stats().entries, 1u);
  fft_plan_cache_set_capacity(prev);
}

}  // namespace
}  // namespace ffw
