// Engine-level edge cases and point-response checks, complementing the
// aggregate accuracy tests.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"

namespace ffw {
namespace {

TEST(MlfmaEngine, ZeroInputGivesZeroOutput) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  cvec x(grid.num_pixels(), cplx{}), y(grid.num_pixels(), cplx{1.0, 1.0});
  engine.apply(x, y);
  for (const auto& v : y) EXPECT_EQ(v, cplx{});
}

TEST(MlfmaEngine, DeltaResponseMatchesKernelColumn) {
  // Applying G0 to a delta at pixel j must return (a sampling of) the
  // j-th kernel column: far entries via MLFMA, near entries via the
  // 9-type matrices, diagonal via the self term.
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  const std::size_t j_nat = grid.pixel_index(13, 21);

  cvec x_nat(n, cplx{}), x(n), y(n), y_nat(n);
  x_nat[j_nat] = 1.0;
  tree.to_cluster_order(x_nat, x);
  engine.apply(x, y);
  tree.to_natural_order(y, y_nat);

  const Vec2 src = grid.pixel_center(13, 21);
  double max_err = 0.0;
  for (int iy = 0; iy < grid.nx(); iy += 5) {
    for (int ix = 0; ix < grid.nx(); ix += 5) {
      const std::size_t row = grid.pixel_index(ix, iy);
      const cplx want = row == j_nat
                            ? self_term(grid)
                            : source_factor(grid) *
                                  g0_point(grid.k0(),
                                           norm(grid.pixel_center(ix, iy) -
                                                src));
      max_err = std::max(max_err,
                         std::abs(y_nat[row] - want) / std::abs(want));
    }
  }
  EXPECT_LT(max_err, 1e-4);
}

TEST(MlfmaEngine, RepeatedAppliesAreBitIdentical) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(7);
  cvec x(n), y1(n), y2(n);
  rng.fill_cnormal(x);
  engine.apply(x, y1);
  engine.apply(x, y2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(MlfmaEngine, ComplexSymmetryViaReciprocity) {
  // <y, G0 x> with the *bilinear* (unconjugated) pairing is symmetric
  // because G0^T = G0.
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(8);
  cvec x(n), y(n), gx(n), gy(n);
  rng.fill_cnormal(x);
  rng.fill_cnormal(y);
  engine.apply(x, gx);
  engine.apply(y, gy);
  cplx a{}, b{};
  for (std::size_t i = 0; i < n; ++i) {
    a += y[i] * gx[i];
    b += x[i] * gy[i];
  }
  EXPECT_NEAR(std::abs(a - b), 0.0, 1e-9 * std::abs(a));
}

TEST(MlfmaEngine, NearOnlyDegenerateTreeHasNoFarPhases) {
  Grid grid(16);  // 2x2 leaves: everything adjacent, zero far levels
  QuadTree tree(grid);
  ASSERT_EQ(tree.num_levels(), 0);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  cvec x(n, cplx{1.0, 0.0}), y(n);
  engine.apply(x, y);
  const auto& t = engine.phase_times();
  EXPECT_EQ(t.seconds[static_cast<std::size_t>(MlfmaPhase::kTranslation)],
            0.0);
  EXPECT_GT(t.seconds[static_cast<std::size_t>(MlfmaPhase::kNearField)],
            0.0);
}

TEST(MlfmaEngine, MemoryReportIsPlausible) {
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  // Tables + panels for 16k unknowns: somewhere between 1 and 64 MB.
  EXPECT_GT(engine.bytes(), std::size_t{1} << 20);
  EXPECT_LT(engine.bytes(), std::size_t{64} << 20);
}

class EngineDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineDepthSweep, HermitianApplyConsistentWithApply) {
  const int nx = GetParam();
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(static_cast<std::uint64_t>(nx));
  cvec x(n), y(n), gx(n), ghy(n);
  rng.fill_cnormal(x);
  rng.fill_cnormal(y);
  engine.apply(x, gx);
  engine.apply_herm(y, ghy);
  EXPECT_NEAR(std::abs(cdot(gx, y) - cdot(x, ghy)), 0.0,
              1e-10 * std::abs(cdot(gx, y)))
      << "nx=" << nx;
}

INSTANTIATE_TEST_SUITE_P(Depths, EngineDepthSweep,
                         ::testing::Values(16, 32, 64, 128));

}  // namespace
}  // namespace ffw
