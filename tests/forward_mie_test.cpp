// Physics validation: scattering of a plane wave by a homogeneous
// dielectric cylinder has an analytic (Mie-type) series solution. The
// VIE + Richmond discretisation + MLFMA + BiCGStab pipeline must
// reproduce the analytic total field inside the cylinder to the
// staircase-discretisation accuracy (a few percent at lambda/10).
//
//   incident : e^{i k0 x} = sum_m i^m J_m(k0 r) e^{im phi}
//   inside   : sum_m i^m c_m J_m(k1 r) e^{im phi},   k1 = k0 sqrt(1+deps)
//   with   c_m = (J_m(x0) + b_m H_m(x0)) / J_m(x1),
//          b_m = -(k1 J'_m(x1) J_m(x0) - k0 J_m(x1) J'_m(x0)) /
//                 (k1 J'_m(x1) H_m(x0) - k0 J_m(x1) H'_m(x0)),
//   x0 = k0 a, x1 = k1 a (TMz continuity of phi and d(phi)/dr).
#include <gtest/gtest.h>

#include <cmath>

#include "forward/forward.hpp"
#include "phantom/phantom.hpp"
#include "special/bessel.hpp"

namespace ffw {
namespace {

/// Analytic interior total field of the dielectric cylinder at point p.
cplx mie_interior_field(double k0, double deps, double radius, Vec2 p,
                        int terms) {
  const double k1 = k0 * std::sqrt(1.0 + deps);
  const double x0 = k0 * radius, x1 = k1 * radius;
  const std::size_t nn = static_cast<std::size_t>(terms) + 2;
  rvec j0v(nn), j1v(nn), y0v(nn);
  bessel_jn_array(x0, j0v);
  bessel_jn_array(x1, j1v);
  bessel_yn_array(x0, y0v);
  auto h0 = [&](int m) { return cplx{j0v[static_cast<std::size_t>(m)],
                                     y0v[static_cast<std::size_t>(m)]}; };
  auto jp = [](const rvec& a, int m, double x) {
    // J'_m = J_{m-1} - (m/x) J_m  (works for m = 0 with J_{-1} = -J_1)
    const double jm = a[static_cast<std::size_t>(m)];
    const double jm1 = m > 0 ? a[static_cast<std::size_t>(m - 1)]
                             : -a[1];
    return jm1 - m / x * jm;
  };
  auto hp0 = [&](int m) {
    const cplx hm = h0(m);
    const cplx hm1 = m > 0 ? h0(m - 1) : -h0(1);
    return hm1 - static_cast<double>(m) / x0 * hm;
  };

  const double r = norm(p);
  const double phi = angle_of(p);
  rvec jr(nn);
  bessel_jn_array(k1 * r, jr);

  cplx total{};
  for (int m = 0; m <= terms; ++m) {
    const double j0m = j0v[static_cast<std::size_t>(m)];
    const double j1m = j1v[static_cast<std::size_t>(m)];
    const double j0p = jp(j0v, m, x0);
    const double j1p = jp(j1v, m, x1);
    const cplx num = k1 * j1p * j0m - k0 * j1m * j0p;
    const cplx den = k1 * j1p * h0(m) - k0 * j1m * hp0(m);
    const cplx bm = -num / den;
    const cplx cm = (j0m + bm * h0(m)) / j1m;
    cplx im{1.0, 0.0};  // i^m
    for (int q = 0; q < m % 4; ++q) im *= iu;
    const cplx ang{std::cos(m * phi), std::sin(m * phi)};
    cplx term = im * cm * jr[static_cast<std::size_t>(m)] * ang;
    if (m > 0) {
      // add the -m term: i^{-m} c_m J_m e^{-im phi}; with J_{-m} =
      // (-1)^m J_m and i^{-m} = (-1)^m i^m ... combined: conj symmetry
      // for real incident direction gives the factor below.
      const cplx angm{std::cos(m * phi), -std::sin(m * phi)};
      term += im * cm * jr[static_cast<std::size_t>(m)] * angm;
    }
    total += term;
  }
  return total;
}

TEST(ForwardMie, InteriorFieldMatchesAnalyticSeries) {
  Grid grid(64);  // 6.4 lambda domain
  QuadTree tree(grid);
  MlfmaEngine engine(tree);

  const double radius = 1.5;
  const double deps = 0.04;
  const cvec de = disks(grid, {{Vec2{0.0, 0.0}, radius, cplx{deps, 0.0}}});
  BicgstabOptions opts;
  opts.tol = 1e-8;
  ForwardSolver fs(engine, opts);
  fs.set_contrast(contrast_from_permittivity(grid, de));

  // Plane-wave incident field e^{i k0 x}.
  const std::size_t n = grid.num_pixels();
  cvec inc(n);
  for (int iy = 0; iy < grid.nx(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      inc[grid.pixel_index(ix, iy)] =
          cplx{std::cos(grid.k0() * p.x), std::sin(grid.k0() * p.x)};
    }
  }
  cvec phi(n, cplx{});
  ASSERT_TRUE(fs.solve(inc, phi).converged);

  // Compare inside the cylinder, away from the staircased boundary.
  const int terms = static_cast<int>(grid.k0() * radius) + 12;
  double num = 0.0, den = 0.0;
  for (int iy = 0; iy < grid.nx(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      if (norm(p) > 0.8 * radius) continue;
      const cplx want =
          mie_interior_field(grid.k0(), deps, radius, p, terms);
      const cplx got = phi[grid.pixel_index(ix, iy)];
      num += std::norm(got - want);
      den += std::norm(want);
    }
  }
  const double rel = std::sqrt(num / den);
  EXPECT_LT(rel, 0.05) << "interior field error " << rel;
  EXPECT_GT(den, 0.0);
}

}  // namespace
}  // namespace ffw
