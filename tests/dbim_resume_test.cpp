// Checkpoint/resume of the DBIM outer loop: interrupting after k
// iterations and resuming must land (numerically) where the
// uninterrupted run lands.
#include <gtest/gtest.h>

#include <cstdio>

#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

TEST(DbimResume, InterruptAndResumeMatchesStraightRun) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.2, -0.1}, 0.5, cplx{0.01, 0.0}));

  const int total_iters = 8, split = 4;

  // Uninterrupted run.
  DbimOptions straight;
  straight.max_iterations = total_iters;
  const DbimResult full = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), straight);

  // First half, checkpointing every iteration.
  DbimCheckpoint saved;
  DbimOptions first;
  first.max_iterations = split;
  first.checkpoint = [&saved](const DbimCheckpoint& s) { saved = s; };
  dbim_reconstruct(scene.engine(), scene.transceivers(),
                   scene.measurements(), first);
  ASSERT_EQ(saved.iteration, split);
  ASSERT_EQ(saved.residual_history.size(), static_cast<std::size_t>(split));

  // Round-trip the state through a file, like a real restart would.
  const std::string path = "/tmp/ffw_dbim_resume.bin";
  ASSERT_TRUE(saved.save(path));
  DbimCheckpoint restored;
  ASSERT_TRUE(restored.load(path));
  std::remove(path.c_str());

  // Second half from the restored state.
  DbimOptions second;
  second.max_iterations = total_iters;
  second.resume = &restored;
  const DbimResult resumed = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), second);

  ASSERT_EQ(resumed.history.relative_residual.size(),
            full.history.relative_residual.size());
  // The inner-solver warm starts are not part of the checkpoint, so the
  // trajectories agree to forward-solver tolerance, not bitwise.
  for (std::size_t i = 0; i < full.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(resumed.history.relative_residual[i],
                full.history.relative_residual[i],
                0.05 * full.history.relative_residual[i] + 1e-4)
        << "iteration " << i;
  }
  EXPECT_LT(image_rmse(resumed.contrast, full.contrast), 0.05);
}

TEST(DbimResume, ResumeAtMaxIterationsIsANoop) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 4;
  cfg.num_receivers = 16;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.4, cplx{0.005, 0.0}));
  DbimCheckpoint state;
  state.iteration = 5;
  state.contrast.assign(grid.num_pixels(), cplx{1.0, 0.0});
  state.residual_history = {1.0, 0.9, 0.8, 0.7, 0.6};
  DbimOptions opts;
  opts.max_iterations = 5;  // == state.iteration: nothing left to do
  opts.resume = &state;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  EXPECT_EQ(res.history.relative_residual.size(), 5u);
  EXPECT_EQ(res.contrast[0], (cplx{1.0, 0.0}));
  EXPECT_EQ(res.history.forward_solves, 0u);
}

}  // namespace
}  // namespace ffw
