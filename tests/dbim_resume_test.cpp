// Checkpoint/resume of the DBIM outer loop: interrupting after k
// iterations and resuming must land (numerically) where the
// uninterrupted run lands.
#include <gtest/gtest.h>

#include <cstdio>

#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {
namespace {

TEST(DbimResume, InterruptAndResumeMatchesStraightRun) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.2, -0.1}, 0.5, cplx{0.01, 0.0}));

  const int total_iters = 8, split = 4;

  // Uninterrupted run.
  DbimOptions straight;
  straight.max_iterations = total_iters;
  const DbimResult full = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), straight);

  // First half, checkpointing every iteration.
  DbimCheckpoint saved;
  DbimOptions first;
  first.max_iterations = split;
  first.checkpoint = [&saved](const DbimCheckpoint& s) { saved = s; };
  dbim_reconstruct(scene.engine(), scene.transceivers(),
                   scene.measurements(), first);
  ASSERT_EQ(saved.iteration, split);
  ASSERT_EQ(saved.residual_history.size(), static_cast<std::size_t>(split));

  // Round-trip the state through a file, like a real restart would.
  const std::string path = "/tmp/ffw_dbim_resume.bin";
  ASSERT_TRUE(saved.save(path));
  DbimCheckpoint restored;
  ASSERT_TRUE(restored.load(path));
  std::remove(path.c_str());

  // Second half from the restored state.
  DbimOptions second;
  second.max_iterations = total_iters;
  second.resume = &restored;
  const DbimResult resumed = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), second);

  ASSERT_EQ(resumed.history.relative_residual.size(),
            full.history.relative_residual.size());
  // The inner-solver warm starts are not part of the checkpoint, so the
  // trajectories agree to forward-solver tolerance, not bitwise.
  for (std::size_t i = 0; i < full.history.relative_residual.size(); ++i) {
    EXPECT_NEAR(resumed.history.relative_residual[i],
                full.history.relative_residual[i],
                0.05 * full.history.relative_residual[i] + 1e-4)
        << "iteration " << i;
  }
  EXPECT_LT(image_rmse(resumed.contrast, full.contrast), 0.05);
}

// Regression: the checkpoint used to drop the precision policy, so a
// run checkpointed under the mixed-precision engine silently resumed in
// pure fp64 (different cost model, different iterate path). The policy
// is now serialized and a mismatched resume dies loudly.
TEST(DbimResume, MixedModeResumeKeepsPrecisionPolicy) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 6;
  cfg.num_receivers = 20;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.2, -0.1}, 0.5, cplx{0.01, 0.0}));
  MlfmaParams mixed_params;
  mixed_params.precision = Precision::kMixed;
  MlfmaEngine mixed(scene.tree(), mixed_params);

  const int total_iters = 6, split = 3;

  // First half under the mixed engine, checkpointing every iteration.
  DbimCheckpoint saved;
  DbimOptions first;
  first.max_iterations = split;
  first.mixed_engine = &mixed;
  first.checkpoint = [&saved](const DbimCheckpoint& s) { saved = s; };
  dbim_reconstruct(scene.engine(), scene.transceivers(),
                   scene.measurements(), first);
  ASSERT_EQ(saved.iteration, split);
  EXPECT_TRUE(saved.mixed_precision);

  // The policy survives the file round trip.
  const std::string path = "/tmp/ffw_dbim_resume_mixed.bin";
  ASSERT_TRUE(saved.save(path));
  DbimCheckpoint restored;
  ASSERT_TRUE(restored.load(path));
  std::remove(path.c_str());
  EXPECT_TRUE(restored.mixed_precision);

  // Resuming under the same policy continues and converges further.
  DbimOptions second;
  second.max_iterations = total_iters;
  second.mixed_engine = &mixed;
  second.resume = &restored;
  const DbimResult resumed = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), second);
  ASSERT_EQ(resumed.history.relative_residual.size(),
            static_cast<std::size_t>(total_iters));
  EXPECT_LT(resumed.history.relative_residual.back(),
            restored.residual_history.back());
}

TEST(DbimResumeDeath, PrecisionPolicyMismatchFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 4;
  cfg.num_receivers = 16;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.4, cplx{0.005, 0.0}));

  // A checkpoint recorded under the mixed policy...
  DbimCheckpoint state;
  state.iteration = 2;
  state.mixed_precision = true;
  state.contrast.assign(grid.num_pixels(), cplx{});
  state.gradient_prev.assign(grid.num_pixels(), cplx{});
  state.direction.assign(grid.num_pixels(), cplx{});
  state.residual_history = {1.0, 0.5};

  // ...must not silently resume with the pure-fp64 engine.
  DbimOptions opts;
  opts.max_iterations = 4;
  opts.resume = &state;  // mixed_engine left null: policy mismatch
  EXPECT_DEATH(dbim_reconstruct(scene.engine(), scene.transceivers(),
                                scene.measurements(), opts),
               "precision policy");

  // The reverse direction (fp64 checkpoint, mixed resume) dies too.
  MlfmaParams mixed_params;
  mixed_params.precision = Precision::kMixed;
  MlfmaEngine mixed(scene.tree(), mixed_params);
  state.mixed_precision = false;
  opts.mixed_engine = &mixed;
  EXPECT_DEATH(dbim_reconstruct(scene.engine(), scene.transceivers(),
                                scene.measurements(), opts),
               "precision policy");
}

TEST(DbimResumeDeath, BackendPolicyMismatchFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 4;
  cfg.num_receivers = 16;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.4, cplx{0.005, 0.0}));

  // A checkpoint recorded under the CBS backend policy...
  DbimCheckpoint state;
  state.iteration = 2;
  state.backend = BackendKind::kCbs;
  state.contrast.assign(grid.num_pixels(), cplx{});
  state.gradient_prev.assign(grid.num_pixels(), cplx{});
  state.direction.assign(grid.num_pixels(), cplx{});
  state.residual_history = {1.0, 0.5};

  // ...must not silently resume onto the MLFMA routing (or any other).
  DbimOptions opts;
  opts.max_iterations = 4;
  opts.resume = &state;  // backend left at kMlfma: policy mismatch
  EXPECT_DEATH(dbim_reconstruct(scene.engine(), scene.transceivers(),
                                scene.measurements(), opts),
               "backend policy");

  state.backend = BackendKind::kMlfma;
  opts.backend = BackendKind::kAuto;
  EXPECT_DEATH(dbim_reconstruct(scene.engine(), scene.transceivers(),
                                scene.measurements(), opts),
               "backend policy");
}

TEST(DbimResume, ResumeAtMaxIterationsIsANoop) {
  ScenarioConfig cfg;
  cfg.nx = 32;
  cfg.num_transmitters = 4;
  cfg.num_receivers = 16;
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.4, cplx{0.005, 0.0}));
  DbimCheckpoint state;
  state.iteration = 5;
  state.contrast.assign(grid.num_pixels(), cplx{1.0, 0.0});
  state.residual_history = {1.0, 0.9, 0.8, 0.7, 0.6};
  DbimOptions opts;
  opts.max_iterations = 5;  // == state.iteration: nothing left to do
  opts.resume = &state;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  EXPECT_EQ(res.history.relative_residual.size(), 5u);
  EXPECT_EQ(res.contrast[0], (cplx{1.0, 0.0}));
  EXPECT_EQ(res.history.forward_solves, 0u);
}

}  // namespace
}  // namespace ffw
