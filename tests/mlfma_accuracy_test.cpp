// The paper's Sec. V-B requirement as a test: "the MLFMA parameters are
// chosen such that each matrix-vector multiplication has at most 1e-5
// error, relative to naive direct O(N^2) multiplication".
//
// We build the dense G0 reference and compare the full MLFMA apply
// (near + all far levels) on random and structured inputs, sweeping
// domain sizes (and hence tree depths) and accuracy digits.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"

namespace ffw {
namespace {

double mlfma_vs_dense_error(int nx, const MlfmaParams& params,
                            std::uint64_t seed) {
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine engine(tree, params);
  const std::size_t n = grid.num_pixels();

  Rng rng(seed);
  cvec x_nat(n), x_clu(n), y_clu(n), y_nat(n);
  rng.fill_cnormal(x_nat);
  tree.to_cluster_order(x_nat, x_clu);
  engine.apply(x_clu, y_clu);
  tree.to_natural_order(y_clu, y_nat);

  // Compare on a random row sample against the matrix-free direct
  // product (full comparison for small n).
  const std::size_t nrows = std::min<std::size_t>(n, 1024);
  std::vector<std::uint32_t> rows(nrows);
  if (nrows == n) {
    for (std::size_t i = 0; i < n; ++i) rows[i] = static_cast<std::uint32_t>(i);
  } else {
    for (std::size_t i = 0; i < nrows; ++i)
      rows[i] = static_cast<std::uint32_t>(rng.next_u64() % n);
  }
  const cvec y_ref = dense_g0_apply_rows(grid, x_nat, rows);
  cvec y_sub(nrows);
  for (std::size_t i = 0; i < nrows; ++i) y_sub[i] = y_nat[rows[i]];
  return rel_l2_diff(y_sub, y_ref);
}

// Two-level tree (64x64 pixels, 8x8 leaves).
TEST(MlfmaAccuracy, TwoLevelTreeMeetsPaperTarget) {
  MlfmaParams params;
  params.digits = 5.0;
  EXPECT_LT(mlfma_vs_dense_error(64, params, 1), 1e-5);
}

// Three-level tree (128x128 pixels = 16k unknowns, 12.8 lambda domain).
TEST(MlfmaAccuracy, ThreeLevelTreeMeetsPaperTarget) {
  MlfmaParams params;
  params.digits = 5.0;
  EXPECT_LT(mlfma_vs_dense_error(128, params, 2), 1e-5);
}

// Single-level tree (32x32 pixels): leaves are the top level.
TEST(MlfmaAccuracy, SingleLevelTree) {
  MlfmaParams params;
  params.digits = 5.0;
  EXPECT_LT(mlfma_vs_dense_error(32, params, 3), 1e-5);
}

// Near-field-only degenerate domain (16x16 pixels, 2x2 leaves, no far
// levels): MLFMA must equal dense to machine precision.
TEST(MlfmaAccuracy, NearOnlyDomainIsExact) {
  MlfmaParams params;
  EXPECT_LT(mlfma_vs_dense_error(16, params, 4), 1e-12);
}

// Accuracy digits sweep: requested digits must be (roughly) delivered.
class DigitsSweep : public ::testing::TestWithParam<double> {};

TEST_P(DigitsSweep, DeliversRequestedAccuracy) {
  const double digits = GetParam();
  MlfmaParams params;
  params.digits = digits;
  const double err = mlfma_vs_dense_error(64, params, 7);
  EXPECT_LT(err, 3.0 * std::pow(10.0, -digits)) << "digits=" << digits;
}

INSTANTIATE_TEST_SUITE_P(Digits, DigitsSweep,
                         ::testing::Values(3.0, 4.0, 5.0, 6.0));

// Adjoint identity: <G x, y> == <x, G^H y> for random vectors.
TEST(MlfmaAccuracy, AdjointIdentity) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(11);
  cvec x(n), y(n), gx(n), ghy(n);
  rng.fill_cnormal(x);
  rng.fill_cnormal(y);
  engine.apply(x, gx);
  engine.apply_herm(y, ghy);
  const cplx lhs = cdot(gx, y);        // <Gx, y>
  const cplx rhs = cdot(x, ghy);       // <x, G^H y>
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10 * std::abs(lhs));
}

// Linearity of the apply (catches workspace-reuse bugs).
TEST(MlfmaAccuracy, Linearity) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  Rng rng(13);
  cvec x1(n), x2(n), sum(n), y1(n), y2(n), ysum(n);
  rng.fill_cnormal(x1);
  rng.fill_cnormal(x2);
  const cplx a{0.7, -1.3};
  for (std::size_t i = 0; i < n; ++i) sum[i] = x1[i] + a * x2[i];
  engine.apply(x1, y1);
  engine.apply(x2, y2);
  engine.apply(sum, ysum);
  for (std::size_t i = 0; i < n; ++i) y1[i] += a * y2[i];
  EXPECT_LT(rel_l2_diff(ysum, y1), 1e-12);
}

// Phase timing bookkeeping sanity.
TEST(MlfmaAccuracy, PhaseTimesAccumulate) {
  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  cvec x(n, cplx{1.0, 0.0}), y(n);
  engine.apply(x, y);
  engine.apply(x, y);
  EXPECT_EQ(engine.phase_times().applications, 2u);
  EXPECT_GT(engine.phase_times().total(), 0.0);
  engine.clear_phase_times();
  EXPECT_EQ(engine.phase_times().applications, 0u);
}

}  // namespace
}  // namespace ffw
