// End-to-end real-process reconstruction tests (DESIGN.md Sec. 16).
//
// This binary is both the gtest driver and the worker it launches: the
// tests call launch_processes() on /proc/self/exe with FFW_PROC_WORKER
// set, and a custom main() routes the re-exec'd copies into
// worker_main() before gtest ever initialises. Each worker bootstraps
// one rank from the FFW_* environment (shm rings or a TCP loopback
// mesh), runs the 2-D parallel DBIM driver, and rank 0 dumps the raw
// contrast image for the parent to compare against a threads-mode
// in-process reference — acceptance: RMSE <= 1e-10.
//
// The kill test is the real-death version of
// ParallelDbim.SurvivesInjectedCrashesViaCheckpointRestart: a worker
// raises SIGKILL on itself (uncatchable, same as `kill -9` from
// outside) at a send count taken from the fault-free reference run.
// ffw_launch's supervisor SIGKILLs the survivors and relaunches the
// world with the attempt counter bumped; the workers resume from the
// last atomically-saved checkpoint and must land on the same image.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "dbim/parallel_driver.hpp"
#include "phantom/setup.hpp"
#include "vcluster/bootstrap.hpp"

namespace ffw {
namespace {

constexpr int kIllumGroups = 2;
constexpr int kTreeRanks = 2;
constexpr int kWorld = kIllumGroups * kTreeRanks;

// The scenario and driver config must be bit-identical between the
// threads-mode reference and every worker process: one definition,
// used by both sides of the fork.
struct SceneFixture {
  ScenarioConfig cfg;
  std::unique_ptr<Scenario> scene;

  SceneFixture() {
    cfg.nx = 32;
    cfg.num_transmitters = 8;
    cfg.num_receivers = 24;
    Grid grid(cfg.nx);
    scene = std::make_unique<Scenario>(
        cfg, gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));
  }
};

ParallelDbimConfig test_config() {
  ParallelDbimConfig pcfg;
  pcfg.illum_groups = kIllumGroups;
  pcfg.tree_ranks = kTreeRanks;
  pcfg.dbim.max_iterations = 5;
  // Resume determinism: with warm starts off every iterate is a pure
  // function of the checkpointed outer-loop state (see the threads-mode
  // crash-recovery test), so a relaunched world reproduces the
  // fault-free image to rounding.
  pcfg.dbim.warm_start_fields = false;
  return pcfg;
}

bool write_image(const std::string& path, const cvec& img) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(img.data(), sizeof(cplx), img.size(), f) == img.size();
  return (std::fclose(f) == 0) && ok;
}

bool read_image(const std::string& path, cvec& img) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  const bool ok =
      std::fread(img.data(), sizeof(cplx), img.size(), f) == img.size();
  std::fclose(f);
  return ok;
}

// The re-exec'd side: one rank of the world, driven entirely by the
// environment ffw_launch (and the parent test via extra_env) set.
int worker_main() {
  const std::optional<ProcessBootstrap> bs = bootstrap_from_env();
  if (!bs || bs->world != kWorld) return 3;
  std::unique_ptr<VCluster> vc = make_worker_cluster(*bs);

  ParallelDbimConfig pcfg = test_config();
  if (const char* ck = std::getenv("FFW_PROC_CKPT")) {
    pcfg.checkpoint_path = ck;
    pcfg.resume_from_checkpoint = bs->attempt > 0;
  }
  if (const char* kr = std::getenv("FFW_PROC_KILL_RANK")) {
    const int kill_rank = std::atoi(kr);
    const std::uint64_t kill_at =
        std::strtoull(std::getenv("FFW_PROC_KILL_AT"), nullptr, 10);
    if (bs->attempt == 0) {
      // Real `kill -9` semantics: SIGKILL is uncatchable, no unwinding,
      // no flushing — the rank just vanishes mid-DBIM. Only attempt 0
      // dies; the relaunched world runs clean from the checkpoint.
      vc->set_send_hook([kill_rank, kill_at](int rank, std::uint64_t nsend) {
        if (rank == kill_rank && nsend == kill_at) std::raise(SIGKILL);
      });
    }
  }

  SceneFixture f;
  const DbimResult result = dbim_reconstruct_parallel(
      *vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
      pcfg);
  if (bs->rank == 0) {
    if (!write_image(std::getenv("FFW_PROC_OUT"), result.contrast)) return 4;
  }
  return 0;
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  EXPECT_GT(n, 0);
  return std::string(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

// Threads-mode in-process reference, plus the per-rank send totals the
// kill test uses to place the SIGKILL (computed once, cached).
struct Reference {
  cvec image;
  std::vector<std::uint64_t> sends = std::vector<std::uint64_t>(kWorld, 0);
};

const Reference& reference() {
  static const Reference ref = [] {
    SceneFixture f;
    VCluster vc(kWorld);
    const DbimResult r = dbim_reconstruct_parallel(
        vc, f.scene->tree(), f.scene->transceivers(), f.scene->measurements(),
        test_config());
    Reference out;
    out.image = r.contrast;
    const TrafficStats t = vc.traffic();
    for (int s = 0; s < kWorld; ++s)
      for (int d = 0; d < kWorld; ++d)
        out.sends[s] += t.messages[static_cast<std::size_t>(s) * kWorld + d];
    return out;
  }();
  return ref;
}

cvec launch_and_read(LaunchOptions opts, const std::string& out_path) {
  std::remove(out_path.c_str());
  opts.world = kWorld;
  opts.extra_env.emplace_back("FFW_PROC_WORKER", "1");
  opts.extra_env.emplace_back("FFW_PROC_OUT", out_path);
  const int rc = launch_processes(opts, {self_exe()});
  EXPECT_EQ(rc, 0);
  cvec img(reference().image.size());
  EXPECT_TRUE(read_image(out_path, img)) << out_path;
  std::remove(out_path.c_str());
  return img;
}

TEST(ProcessRanks, ShmRingWorldMatchesThreadsReference) {
  // p = 4 real processes over shared-memory rings reconstruct the same
  // image as 4 threads over the in-process mailbox.
  LaunchOptions opts;
  opts.transport = "shm";
  opts.shm_name = "/ffw-test-shm-" + std::to_string(::getpid());
  const cvec img = launch_and_read(opts, "/tmp/ffw_proc_shm.img");
  EXPECT_LE(image_rmse(img, reference().image), 1e-10);
}

TEST(ProcessRanks, TcpLoopbackWorldMatchesThreadsReference) {
  LaunchOptions opts;
  opts.transport = "tcp";
  opts.base_port = 21000 + static_cast<int>(::getpid() % 20000);
  const cvec img = launch_and_read(opts, "/tmp/ffw_proc_tcp.img");
  EXPECT_LE(image_rmse(img, reference().image), 1e-10);
}

TEST(ProcessRanks, Kill9MidDbimRecoversViaCheckpointSupervisor) {
  // Rank 2 SIGKILLs itself ~60% through its reference send count —
  // deep enough that checkpoints exist, early enough that work remains.
  // The supervisor must detect the death, kill the survivors, relaunch
  // the world on a fresh shm segment, and the resumed run must land on
  // the fault-free image.
  const std::uint64_t total = reference().sends[2];
  ASSERT_GT(total, 10u);
  const std::string ckpt = "/tmp/ffw_proc_kill.ckpt";
  std::remove(ckpt.c_str());

  LaunchOptions opts;
  opts.transport = "shm";
  opts.shm_name = "/ffw-test-kill-" + std::to_string(::getpid());
  opts.max_restarts = 2;
  opts.extra_env.emplace_back("FFW_PROC_CKPT", ckpt);
  opts.extra_env.emplace_back("FFW_PROC_KILL_RANK", "2");
  opts.extra_env.emplace_back("FFW_PROC_KILL_AT",
                              std::to_string(total * 3 / 5));
  const cvec img = launch_and_read(opts, "/tmp/ffw_proc_kill.img");
  EXPECT_LE(image_rmse(img, reference().image), 1e-10);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace ffw

// Custom entry point: the launched copies of this binary must become
// workers before gtest parses argv or prints anything.
int main(int argc, char** argv) {
  if (std::getenv("FFW_PROC_WORKER")) return ffw::worker_main();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
