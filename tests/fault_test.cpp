// Fault-injection, failure-propagation and deadlock-diagnostic tests
// for the virtual cluster (DESIGN.md Sec. 12), plus the ThreadPool
// exception-surfacing regression. `ctest -L fault` runs this file; the
// tsan/asan presets include the label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "vcluster/comm.hpp"

namespace ffw {
namespace {

std::vector<unsigned char> payload(int seed, std::size_t n) {
  std::vector<unsigned char> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<unsigned char>((seed * 131 + static_cast<int>(i)) & 0xFF);
  return v;
}

// ---- CRC32 --------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // The canonical IEEE 802.3 check value.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const unsigned char*>(s), 9), 0xCBF43926u);
}

TEST(Crc32, ChainingMatchesOneShot) {
  const std::vector<unsigned char> v = payload(7, 1000);
  const std::uint32_t whole = crc32(v.data(), v.size());
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                            std::size_t{13}, std::size_t{999}}) {
    const std::uint32_t part = crc32(v.data(), split);
    EXPECT_EQ(crc32(v.data() + split, v.size() - split, part), whole);
  }
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<unsigned char> v = payload(3, 256);
  const std::uint32_t before = crc32(v.data(), v.size());
  v[100] ^= 0x01u;
  EXPECT_NE(crc32(v.data(), v.size()), before);
}

// ---- Deterministic decisions --------------------------------------------

TEST(FaultPlanTest, DecisionsReplayBitForBit) {
  FaultPlan plan;
  plan.seed = 42;
  plan.all = {0.1, 0.1, 0.1, 0.1};
  std::vector<FaultAction> first;
  for (std::uint64_t s = 0; s < 500; ++s)
    first.push_back(fault_decide(plan, 0, 1, 7, s));
  for (std::uint64_t s = 0; s < 500; ++s)
    EXPECT_EQ(fault_decide(plan, 0, 1, 7, s), first[s]) << s;
  // A different seed must give a different schedule.
  FaultPlan other = plan;
  other.seed = 43;
  int diff = 0;
  for (std::uint64_t s = 0; s < 500; ++s)
    diff += fault_decide(other, 0, 1, 7, s) != first[s];
  EXPECT_GT(diff, 0);
}

TEST(FaultPlanTest, EdgesAreIndependentStreams) {
  FaultPlan plan;
  plan.all = {0.5, 0.0, 0.0, 0.0};
  int diff = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    diff += fault_decide(plan, 0, 1, 7, s) != fault_decide(plan, 1, 0, 7, s);
  }
  EXPECT_GT(diff, 0);  // (src, dst) and (dst, src) must not mirror
}

TEST(FaultPlanTest, RatesRoughlyHonored) {
  FaultPlan plan;
  plan.all = {0.25, 0.0, 0.0, 0.0};
  int drops = 0;
  const int n = 4000;
  for (std::uint64_t s = 0; s < n; ++s)
    drops += fault_decide(plan, 2, 3, 1, s) == FaultAction::kDrop;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.05);
}

// ---- Injection through the cluster --------------------------------------

TEST(FaultInjection, DuplicatesAreInvisibleToReceiver) {
  // p = 4 ring exchange with 100% duplication: the per-edge sequence
  // dedup must deliver each message exactly once, in order.
  VCluster vc(4);
  FaultPlan plan;
  plan.all.duplicate = 1.0;
  vc.install_fault_plan(plan);
  constexpr int kN = 32;
  vc.run([&](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < kN; ++i) {
      const int v[1] = {c.rank() * 1000 + i};
      c.send(next, 5, std::span<const int>(v, 1));
    }
    for (int i = 0; i < kN; ++i) {
      const std::vector<int> got = c.recv<int>(prev, 5);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], prev * 1000 + i);
    }
    // No stray extra message may remain queued.
    EXPECT_FALSE(c.probe(prev, 5));
  });
  EXPECT_EQ(vc.fault_stats().duplicates, 4u * kN);
  // The ledger counts each send once — duplication is delivery-side.
  EXPECT_EQ(vc.traffic().total_messages(), 4u * kN);
}

TEST(FaultInjection, ReorderedFramesCommitInSendOrder) {
  VCluster vc(2);
  FaultPlan plan;
  plan.all.reorder = 0.4;
  plan.all.reorder_hold_us = 2000;
  vc.install_fault_plan(plan);
  constexpr int kN = 64;
  vc.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        const int v[1] = {i};
        c.send(1, 9, std::span<const int>(v, 1));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(c.recv<int>(0, 9).at(0), i);
      }
    }
  });
  EXPECT_GT(vc.fault_stats().reorders, 0u);
}

TEST(FaultInjection, CorruptionIsDetectedAtRecv) {
  VCluster vc(2);
  FaultPlan plan;
  plan.per_edge[{0, 1}] = FaultSpec{0.0, 0.0, 0.0, 1.0};
  vc.install_fault_plan(plan);
  bool threw = false;
  try {
    vc.run([&](Comm& c) {
      if (c.rank() == 0) {
        const std::vector<unsigned char> v = payload(1, 4096);
        c.send(1, 3, std::span<const unsigned char>(v));
      } else {
        (void)c.recv<unsigned char>(0, 3);
      }
    });
  } catch (const CorruptMessage& e) {
    threw = true;
    EXPECT_EQ(e.rank(), 1);
    EXPECT_NE(std::string(e.what()).find("tag=3"), std::string::npos);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(vc.fault_stats().corruptions, 1u);
}

TEST(FaultInjection, CrashAtNthSendFiresOnceAndIsRecoverable) {
  VCluster vc(8);
  FaultPlan plan;
  plan.crashes.push_back({3, 2});  // rank 3 dies on its 2nd send
  vc.install_fault_plan(plan);
  const auto program = [&](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < 4; ++i) {
      const int v[1] = {i};
      c.send(next, 1, std::span<const int>(v, 1));
      (void)c.recv<int>(prev, 1);
    }
  };
  bool threw = false;
  try {
    vc.run(program);
  } catch (const RankFailure& e) {
    threw = true;
    EXPECT_EQ(e.rank(), 3);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(vc.fault_stats().crashes, 1u);

  // The trigger is consumed and the send counters survive recover():
  // the rerun completes.
  vc.recover();
  vc.run(program);
  EXPECT_EQ(vc.fault_stats().crashes, 1u);
}

TEST(FaultInjection, StallDelaysButCompletes) {
  VCluster vc(2);
  FaultPlan plan;
  plan.stalls.push_back({0, 1, 20000});  // 20 ms stall at rank 0's 1st send
  vc.install_fault_plan(plan);
  vc.run([&](Comm& c) {
    if (c.rank() == 0) {
      const double v[1] = {1.5};
      c.send(1, 2, std::span<const double>(v, 1));
    } else {
      EXPECT_EQ(c.recv<double>(0, 2).at(0), 1.5);
    }
  });
  EXPECT_EQ(vc.fault_stats().stalls, 1u);
}

TEST(FaultInjection, DropSurfacesAsDiagnosedDeadline) {
  // p = 2: the only message is dropped; the receiver's deadline expires
  // and the report names the missing (src, tag) key.
  VCluster vc(2);
  FaultPlan plan;
  plan.per_edge[{0, 1}] = FaultSpec{1.0, 0.0, 0.0, 0.0};
  vc.install_fault_plan(plan);
  vc.set_comm_options(CommOptions{200});
  bool threw = false;
  try {
    vc.run([&](Comm& c) {
      if (c.rank() == 0) {
        const int v[1] = {7};
        c.send(1, 11, std::span<const int>(v, 1));
      } else {
        (void)c.recv<int>(0, 11);
      }
    });
  } catch (const DeadlineExceeded& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("(src=0, tag=11)"),
              std::string::npos);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(vc.fault_stats().drops, 1u);
}

TEST(FaultInjection, MixedChaosAtP4StillDeliversEverything) {
  // Duplication + reorder chaos (no drops/corruption) on all edges of an
  // all-to-all exchange: every payload arrives intact and in per-edge
  // order, and the traffic ledger is exactly what a fault-free run logs.
  VCluster clean(4);
  VCluster vc(4);
  FaultPlan plan;
  plan.seed = 99;
  plan.all.duplicate = 0.3;
  plan.all.reorder = 0.3;
  plan.all.reorder_hold_us = 1000;
  vc.install_fault_plan(plan);
  const auto program = [](Comm& c) {
    constexpr int kN = 16;
    for (int r = 0; r < c.size(); ++r) {
      if (r == c.rank()) continue;
      for (int i = 0; i < kN; ++i) {
        const int v[2] = {c.rank(), i};
        c.send(r, 4, std::span<const int>(v, 2));
      }
    }
    for (int r = 0; r < c.size(); ++r) {
      if (r == c.rank()) continue;
      for (int i = 0; i < kN; ++i) {
        const std::vector<int> got = c.recv<int>(r, 4);
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0], r);
        EXPECT_EQ(got[1], i);
      }
    }
  };
  clean.run(program);
  vc.run(program);
  EXPECT_GT(vc.fault_stats().total(), 0u);
  const TrafficStats a = clean.traffic(), b = vc.traffic();
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.messages, b.messages);
}

// ---- Deadline / wait-for graph ------------------------------------------

TEST(DeadlineTest, TwoRankCycleIsNamedInTheReport) {
  // The acceptance scenario: a deliberately deadlocked two-rank exchange
  // (both ranks recv first) aborts within the deadline and the dumped
  // wait-for graph names both blocked (src, tag) keys and the cycle.
  VCluster vc(2);
  vc.set_comm_options(CommOptions{250});
  bool threw = false;
  try {
    vc.run([&](Comm& c) {
      if (c.rank() == 0) {
        (void)c.recv<int>(1, 7);  // never sent
      } else {
        (void)c.recv<int>(0, 9);  // never sent
      }
    });
  } catch (const DeadlineExceeded& e) {
    threw = true;
    const std::string what = e.what();
    EXPECT_NE(what.find("(src=1, tag=7)"), std::string::npos) << what;
    EXPECT_NE(what.find("(src=0, tag=9)"), std::string::npos) << what;
    EXPECT_NE(what.find("wait-for cycle"), std::string::npos) << what;
  }
  EXPECT_TRUE(threw);
}

TEST(DeadlineTest, BarrierStragglerIsDiagnosed) {
  VCluster vc(3);
  vc.set_comm_options(CommOptions{250});
  EXPECT_THROW(vc.run([&](Comm& c) {
                 if (c.rank() != 2) c.barrier();  // rank 2 never arrives
               }),
               DeadlineExceeded);
  vc.recover();
}

TEST(DeadlineTest, SatisfiedWaitsNeverAbort) {
  VCluster vc(4);
  vc.set_comm_options(CommOptions{5000});
  vc.run([&](Comm& c) {
    c.barrier();
    const double v = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_EQ(v, 3.0);
    c.barrier();
  });
}

// ---- Poison / recovery lifecycle ----------------------------------------

TEST(RecoveryTest, FailurePoisonsBlockedPeers) {
  // Rank 1 crashes; ranks 0/2/3 are parked in recv/barrier and must
  // unwind (ClusterAborted) instead of hanging; run() rethrows the
  // primary RankFailure.
  VCluster vc(4);
  FaultPlan plan;
  plan.crashes.push_back({1, 1});
  vc.install_fault_plan(plan);
  EXPECT_THROW(vc.run([&](Comm& c) {
                 if (c.rank() == 1) {
                   const int v[1] = {0};
                   c.send(0, 1, std::span<const int>(v, 1));  // crashes here
                 } else if (c.rank() == 0) {
                   (void)c.recv<int>(1, 1);
                 } else {
                   c.barrier();
                 }
               }),
               RankFailure);

  vc.recover();
  // Cluster is fully usable again (mailboxes clean, barrier reset).
  vc.run([&](Comm& c) {
    c.barrier();
    if (c.rank() == 0) {
      const int v[1] = {42};
      c.send(2, 8, std::span<const int>(v, 1));
    }
    if (c.rank() == 2) EXPECT_EQ(c.recv<int>(0, 8).at(0), 42);
  });
}

TEST(RecoveryTest, FrameOverheadAccountedSeparately) {
  VCluster vc(2);
  vc.run([&](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<unsigned char> v = payload(0, 100);
      for (int i = 0; i < 5; ++i)
        c.send(1, 1, std::span<const unsigned char>(v));
    } else {
      for (int i = 0; i < 5; ++i) (void)c.recv<unsigned char>(0, 1);
    }
  });
  // Payload ledger: 5 x 100 bytes; framing (seq + CRC) kept out of it.
  EXPECT_EQ(vc.traffic().total_bytes(), 500u);
  EXPECT_EQ(vc.frame_overhead_bytes(), 5u * VCluster::kFrameBytes);
}

// ---- ThreadPool exception surfacing -------------------------------------

TEST(ThreadPoolErrors, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 5) throw std::runtime_error("table build failed");
    });
  }
  bool threw = false;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "table build failed");
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(ran.load(), 16);  // one failure does not cancel the rest
  pool.wait_idle();           // consumed: no rethrow on a clean pool
}

TEST(ThreadPoolErrors, DestructorRethrowsUnconsumedException) {
  bool threw = false;
  try {
    ThreadPool pool(2);
    auto fut = pool.submit([] { throw std::runtime_error("dtor path"); });
    fut.wait();  // task finished, exception captured, future discarded
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "dtor path");
  }
  EXPECT_TRUE(threw);
}

TEST(ThreadPoolErrors, KeptFutureStillObservesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("via future"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The central capture still holds it for wait_idle-style callers.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

}  // namespace
}  // namespace ffw
