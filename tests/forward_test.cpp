// Forward scattering solver: BiCGStab + MLFMA against the dense LU
// reference, adjoint solves, and solver statistics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "forward/dense_ref.hpp"
#include "forward/forward.hpp"
#include "greens/transceivers.hpp"
#include "linalg/kernels.hpp"
#include "phantom/phantom.hpp"

namespace ffw {
namespace {

TEST(Bicgstab, SolvesSmallDenseSystem) {
  // Diagonally dominant random system.
  Rng rng(21);
  const std::size_t n = 50;
  CMatrix a(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) a(i, j) = 0.1 * rng.cnormal();
    a(j, j) += 4.0;
  }
  cvec x_true(n), b(n), x(n, cplx{});
  rng.fill_cnormal(x_true);
  matvec(a, x_true, b);
  BicgstabOptions opts;
  opts.tol = 1e-10;
  const auto res = bicgstab(
      [&](ccspan in, cspan out) { matvec(a, in, out); }, b, x, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(rel_l2_diff(x, x_true), 1e-8);
  // One setup matvec plus two per full iteration; early exit at the
  // s-norm check skips the second matvec of the last iteration.
  EXPECT_TRUE(res.matvecs == 2 * res.iterations + 1 ||
              res.matvecs == 2 * res.iterations);
}

TEST(Bicgstab, ImmediateConvergenceOnExactGuess) {
  Rng rng(22);
  const std::size_t n = 20;
  CMatrix a(n, n);
  for (std::size_t j = 0; j < n; ++j) a(j, j) = 2.0;
  cvec b(n), x(n);
  rng.fill_cnormal(b);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[i] / 2.0;
  const auto res = bicgstab(
      [&](ccspan in, cspan out) { matvec(a, in, out); }, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Bicgstab, ZeroRhsGivesZeroSolution) {
  cvec b(8, cplx{}), x(8, cplx{1.0, 1.0});
  const auto res = bicgstab(
      [&](ccspan in, cspan out) { copy(in, out); }, b, x);
  EXPECT_TRUE(res.converged);
  for (const auto& v : x) EXPECT_EQ(v, cplx{});
}

class ForwardVsDense : public ::testing::TestWithParam<double> {};

TEST_P(ForwardVsDense, MatchesLuReference) {
  const double eps = GetParam();  // permittivity contrast
  Grid grid(32);                  // 1024 pixels: dense LU is fast
  QuadTree tree(grid);
  MlfmaEngine engine(tree);

  const cvec deps = gaussian_blob(grid, Vec2{0.3, -0.2}, 0.6, cplx{eps, 0.0});
  const cvec contrast = contrast_from_permittivity(grid, deps);

  BicgstabOptions opts;
  opts.tol = 1e-9;
  ForwardSolver fs(engine, opts);
  fs.set_contrast(contrast);

  Rng rng(31);
  cvec rhs(grid.num_pixels());
  rng.fill_cnormal(rhs);
  cvec phi(grid.num_pixels(), cplx{});
  const auto res = fs.solve(rhs, phi);
  ASSERT_TRUE(res.converged);

  DenseForwardSolver dense(grid, contrast);
  const cvec ref = dense.solve(rhs);
  EXPECT_LT(rel_l2_diff(phi, ref), 1e-6) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(ContrastSweep, ForwardVsDense,
                         ::testing::Values(0.005, 0.02, 0.05, 0.1));

TEST(Forward, AdjointSolveMatchesDense) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const cvec deps = gaussian_blob(grid, Vec2{0.0, 0.0}, 0.8, cplx{0.03, 0.0});
  const cvec contrast = contrast_from_permittivity(grid, deps);

  BicgstabOptions opts;
  opts.tol = 1e-9;
  ForwardSolver fs(engine, opts);
  fs.set_contrast(contrast);

  Rng rng(33);
  cvec rhs(grid.num_pixels());
  rng.fill_cnormal(rhs);
  cvec psi(grid.num_pixels(), cplx{});
  ASSERT_TRUE(fs.solve_adjoint(rhs, psi).converged);

  DenseForwardSolver dense(grid, contrast);
  const cvec ref = dense.solve_adjoint(rhs);
  EXPECT_LT(rel_l2_diff(psi, ref), 1e-6);
}

TEST(Forward, SolutionSatisfiesSystem) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const cvec deps = gaussian_blob(grid, Vec2{-0.4, 0.4}, 0.5, cplx{0.05, 0.0});
  ForwardSolver fs(engine);
  fs.set_contrast(contrast_from_permittivity(grid, deps));

  Transceivers trx(grid, ring_positions(4, grid.domain()),
                   ring_positions(8, grid.domain()));
  const cvec inc = trx.incident_field(0);
  cvec phi(grid.num_pixels(), cplx{});
  ASSERT_TRUE(fs.solve(inc, phi).converged);

  cvec resid(grid.num_pixels());
  fs.apply_system(phi, resid);
  sub(resid, inc, resid);
  EXPECT_LT(nrm2(resid) / nrm2(inc), 2e-4);  // paper tol 1e-4, plus slack
}

TEST(Forward, StatsTrackSolvesAndMlfma) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  ForwardSolver fs(engine);
  fs.set_contrast(cvec(grid.num_pixels(), cplx{0.1, 0.0}));
  Rng rng(35);
  cvec rhs(grid.num_pixels()), phi(grid.num_pixels(), cplx{});
  rng.fill_cnormal(rhs);
  fs.solve(rhs, phi);
  EXPECT_EQ(fs.stats().solves, 1u);
  EXPECT_GT(fs.stats().operator_applications, 0u);
  EXPECT_GT(fs.stats().mlfma_per_solve(), 1.0);
  fs.clear_stats();
  EXPECT_EQ(fs.stats().solves, 0u);
}

// Zero contrast: the system is the identity, phi == phi_inc, and the
// forward solve must converge instantly.
TEST(Forward, FreeSpaceIsIdentity) {
  Grid grid(32);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  ForwardSolver fs(engine);
  fs.set_contrast(cvec(grid.num_pixels(), cplx{}));
  Rng rng(36);
  cvec rhs(grid.num_pixels()), phi(grid.num_pixels(), cplx{});
  rng.fill_cnormal(rhs);
  const auto res = fs.solve(rhs, phi);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(rel_l2_diff(phi, rhs), 1e-12);
}

}  // namespace
}  // namespace ffw
