#include <gtest/gtest.h>

#include "common/morton.hpp"

namespace ffw {
namespace {

TEST(Morton, KnownCodes) {
  EXPECT_EQ(morton_encode(0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1), 2u);
  EXPECT_EQ(morton_encode(1, 1), 3u);
  EXPECT_EQ(morton_encode(2, 0), 4u);
  EXPECT_EQ(morton_encode(3, 3), 15u);
  EXPECT_EQ(morton_encode(4, 4), 48u);
}

TEST(Morton, RoundTrip) {
  for (std::uint32_t iy = 0; iy < 64; ++iy) {
    for (std::uint32_t ix = 0; ix < 64; ++ix) {
      std::uint32_t ox, oy;
      morton_decode(morton_encode(ix, iy), ox, oy);
      EXPECT_EQ(ox, ix);
      EXPECT_EQ(oy, iy);
    }
  }
}

TEST(Morton, RoundTripLarge) {
  for (std::uint32_t v : {255u, 256u, 1023u, 4095u, 65535u}) {
    std::uint32_t ox, oy;
    morton_decode(morton_encode(v, v / 3), ox, oy);
    EXPECT_EQ(ox, v);
    EXPECT_EQ(oy, v / 3);
  }
}

// The property that makes sub-tree partitioning communication-free: the
// parent of cluster c at the next level is c >> 2, and children of p are
// exactly 4p..4p+3.
TEST(Morton, ParentChildContiguity) {
  for (std::uint32_t iy = 0; iy < 32; ++iy) {
    for (std::uint32_t ix = 0; ix < 32; ++ix) {
      const std::uint32_t c = morton_encode(ix, iy);
      const std::uint32_t p = morton_encode(ix / 2, iy / 2);
      EXPECT_EQ(c >> 2, p);
      EXPECT_EQ(c & ~3u, 4 * p);
    }
  }
}

}  // namespace
}  // namespace ffw
