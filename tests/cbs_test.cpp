// Convergent Born series backend: exactness of the padded-FFT Richmond
// kernel products, physics validation against the analytic Mie
// cylinder, cross-validation against the MLFMA+BiCGStab path on the
// same discrete system, mixed-precision accuracy, and the divergence
// watchdog that the kAuto escalation policy relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dbim/dbim.hpp"
#include "forward/cbs.hpp"
#include "forward/forward.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "phantom/phantom.hpp"
#include "phantom/setup.hpp"
#include "special/bessel.hpp"

namespace ffw {
namespace {

cvec plane_wave(const Grid& grid) {
  cvec inc(grid.num_pixels());
  for (int iy = 0; iy < grid.nx(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      inc[grid.pixel_index(ix, iy)] =
          cplx{std::cos(grid.k0() * p.x), std::sin(grid.k0() * p.x)};
    }
  }
  return inc;
}

cvec blob_contrast(const Grid& grid, double eps) {
  const cvec de = gaussian_blob(grid, Vec2{0.3, -0.2}, 0.6, cplx{eps, 0.0});
  return contrast_from_permittivity(grid, de);
}

TEST(CbsG0Apply, MatchesDenseReference) {
  Grid grid(24);
  CbsEngine cbs(grid);
  const std::size_t n = grid.num_pixels();
  Rng rng(71);
  cvec x(2 * n), y(2 * n);
  rng.fill_cnormal(x);
  cbs.apply_g0_panel(x, y, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    const cvec want = dense_g0_apply(grid, ccspan{x.data() + c * n, n});
    EXPECT_LT(rel_l2_diff(cspan{y.data() + c * n, n}, want), 1e-11);
  }
  // Hermitian product: G0 is complex-symmetric, so G0^H v = conj(G0
  // conj v).
  cbs.apply_g0_herm_panel(x, y, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    cvec xc(n);
    for (std::size_t i = 0; i < n; ++i) xc[i] = std::conj(x[c * n + i]);
    cvec want = dense_g0_apply(grid, xc);
    for (cplx& v : want) v = std::conj(v);
    EXPECT_LT(rel_l2_diff(cspan{y.data() + c * n, n}, want), 1e-11);
  }
}

TEST(CbsSystemApply, MatchesDenseOperator) {
  Grid grid(24);
  const cvec contrast = blob_contrast(grid, 0.08);
  CbsEngine cbs(grid);
  cbs.set_contrast(contrast);
  const std::size_t n = grid.num_pixels();
  Rng rng(72);
  cvec x(n), y(n), t(n);
  rng.fill_cnormal(x);
  cbs.apply_system_panel(x, y, 1);
  for (std::size_t i = 0; i < n; ++i) t[i] = contrast[i] * x[i];
  const cvec g = dense_g0_apply(grid, t);
  cvec want(n);
  for (std::size_t i = 0; i < n; ++i) want[i] = x[i] - g[i];
  EXPECT_LT(rel_l2_diff(y, want), 1e-11);

  cbs.apply_system_panel(x, y, 1, /*adjoint=*/true);
  cvec xc(n);
  for (std::size_t i = 0; i < n; ++i) xc[i] = std::conj(x[i]);
  cvec gh = dense_g0_apply(grid, xc);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = x[i] - std::conj(contrast[i]) * std::conj(gh[i]);
  }
  EXPECT_LT(rel_l2_diff(y, want), 1e-11);
}

TEST(CbsSolve, ZeroContrastReturnsRhs) {
  Grid grid(32);
  CbsEngine cbs(grid);
  cbs.set_contrast(cvec(grid.num_pixels(), cplx{}));
  Rng rng(73);
  cvec rhs(grid.num_pixels()), x(grid.num_pixels(), cplx{});
  rng.fill_cnormal(rhs);
  ASSERT_TRUE(cbs.solve_panel(rhs, x, 1, 1e-10));
  EXPECT_LT(rel_l2_diff(x, rhs), 1e-8);
}

TEST(CbsSolve, WarmStartConvergesWithoutIterating) {
  Grid grid(32);
  CbsEngine cbs(grid);
  cbs.set_contrast(blob_contrast(grid, 0.05));
  const cvec rhs = plane_wave(grid);
  cvec x(grid.num_pixels(), cplx{});
  ASSERT_TRUE(cbs.solve_panel(rhs, x, 1, 1e-8));
  EXPECT_GT(cbs.last_info().iterations, 0u);
  cvec x2 = x;
  ASSERT_TRUE(cbs.solve_panel(rhs, x2, 1, 1e-8));
  EXPECT_EQ(cbs.last_info().iterations, 0u);
  EXPECT_LT(rel_l2_diff(x2, x), 1e-11);
}

// The paper-pipeline physics check, swapped onto the CBS backend: the
// interior field of a weak homogeneous cylinder must match the analytic
// Mie series to staircase accuracy (same gate as forward_mie_test).
TEST(CbsSolve, InteriorFieldMatchesMieSeries) {
  Grid grid(64);
  const double radius = 1.5;
  const double deps = 0.04;
  const cvec de = disks(grid, {{Vec2{0.0, 0.0}, radius, cplx{deps, 0.0}}});
  CbsEngine cbs(grid);
  cbs.set_contrast(contrast_from_permittivity(grid, de));
  const cvec inc = plane_wave(grid);
  cvec phi(grid.num_pixels(), cplx{});
  ASSERT_TRUE(cbs.solve_panel(inc, phi, 1, 1e-8));

  const double k0 = grid.k0();
  const double k1 = k0 * std::sqrt(1.0 + deps);
  const double x0 = k0 * radius, x1 = k1 * radius;
  const int terms = static_cast<int>(k0 * radius) + 12;
  const std::size_t nn = static_cast<std::size_t>(terms) + 2;
  rvec j0v(nn), j1v(nn), y0v(nn);
  bessel_jn_array(x0, j0v);
  bessel_jn_array(x1, j1v);
  bessel_yn_array(x0, y0v);
  auto h0 = [&](int m) {
    return cplx{j0v[static_cast<std::size_t>(m)],
                y0v[static_cast<std::size_t>(m)]};
  };
  auto jp = [](const rvec& a, int m, double x) {
    const double jm = a[static_cast<std::size_t>(m)];
    const double jm1 = m > 0 ? a[static_cast<std::size_t>(m - 1)] : -a[1];
    return jm1 - m / x * jm;
  };
  auto hp0 = [&](int m) {
    const cplx hm = h0(m);
    const cplx hm1 = m > 0 ? h0(m - 1) : -h0(1);
    return hm1 - static_cast<double>(m) / x0 * hm;
  };
  auto mie = [&](Vec2 p) {
    const double r = norm(p);
    const double ph = angle_of(p);
    rvec jr(nn);
    bessel_jn_array(k1 * r, jr);
    cplx total{};
    for (int m = 0; m <= terms; ++m) {
      const double j0m = j0v[static_cast<std::size_t>(m)];
      const double j1m = j1v[static_cast<std::size_t>(m)];
      const cplx num = k1 * jp(j1v, m, x1) * j0m - k0 * j1m * jp(j0v, m, x0);
      const cplx den = k1 * jp(j1v, m, x1) * h0(m) - k0 * j1m * hp0(m);
      const cplx cm = (j0m - num / den * h0(m)) / j1m;
      cplx im{1.0, 0.0};
      for (int q = 0; q < m % 4; ++q) im *= iu;
      const cplx ang{std::cos(m * ph), std::sin(m * ph)};
      cplx term = im * cm * jr[static_cast<std::size_t>(m)] * ang;
      if (m > 0) {
        term += im * cm * jr[static_cast<std::size_t>(m)] * std::conj(ang);
      }
      total += term;
    }
    return total;
  };

  double num = 0.0, den = 0.0;
  for (int iy = 0; iy < grid.nx(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      if (norm(p) > 0.8 * radius) continue;
      num += std::norm(phi[grid.pixel_index(ix, iy)] - mie(p));
      den += std::norm(mie(p));
    }
  }
  EXPECT_LT(std::sqrt(num / den), 0.05);
}

// Both backends discretise the same system, so their converged answers
// must agree far below the physics error — the acceptance gate for
// swapping backends mid-reconstruction.
TEST(CbsSolve, CrossValidatesAgainstMlfma) {
  Grid grid(32);
  const std::size_t n = grid.num_pixels();
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  BicgstabOptions bopts;
  bopts.tol = 1e-10;
  ForwardSolver fs(engine, bopts);
  CbsEngine cbs(grid);
  for (const double eps : {0.02, 0.12}) {
    const cvec contrast = blob_contrast(grid, eps);
    fs.set_contrast(contrast);
    cbs.set_contrast(contrast);
    const std::size_t nrhs = 4;
    Rng rng(74);
    cvec rhs(n * nrhs);
    rng.fill_cnormal(rhs);
    cvec xm(n * nrhs, cplx{}), xc(n * nrhs, cplx{});
    ASSERT_TRUE(fs.solve_panel(rhs, xm, nrhs, 1e-10));
    ASSERT_TRUE(cbs.solve_panel(rhs, xc, nrhs, 1e-10));
    EXPECT_LT(rel_l2_diff(xc, xm), 1e-6) << "eps=" << eps;

    cvec am(n * nrhs, cplx{}), ac(n * nrhs, cplx{});
    ASSERT_TRUE(fs.solve_adjoint_panel(rhs, am, nrhs, 1e-10));
    ASSERT_TRUE(cbs.solve_adjoint_panel(rhs, ac, nrhs, 1e-10));
    EXPECT_LT(rel_l2_diff(ac, am), 1e-6) << "adjoint eps=" << eps;
  }
}

TEST(CbsSolve, MixedPrecisionReachesFp64Tolerance) {
  Grid grid(32);
  const cvec contrast = blob_contrast(grid, 0.06);
  CbsOptions mo;
  mo.precision = Precision::kMixed;
  CbsEngine mixed(grid, mo);
  CbsEngine ref(grid);
  mixed.set_contrast(contrast);
  ref.set_contrast(contrast);
  const cvec rhs = plane_wave(grid);
  const std::size_t n = grid.num_pixels();
  cvec xm(n, cplx{}), xr(n, cplx{});
  ASSERT_TRUE(mixed.solve_panel(rhs, xm, 1, 1e-8));
  ASSERT_TRUE(ref.solve_panel(rhs, xr, 1, 1e-8));
  // The mixed pipeline verifies convergence against the fp64 operator,
  // so its answer matches the all-fp64 solve at the solve tolerance.
  EXPECT_LT(rel_l2_diff(xm, xr), 1e-6);
  cvec r(n);
  mixed.apply_system_panel(xm, r, 1);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += std::norm(rhs[i] - r[i]);
    den += std::norm(rhs[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 2e-8);
}

TEST(CbsSolve, DivergenceWatchdogReportsFailure) {
  Grid grid(32);
  CbsOptions opts;
  // An absurdly strict rate bound makes any realistic series look
  // stalled: the solve must give up quickly and say so, because this
  // failure path is what kAuto's MLFMA escalation consumes.
  opts.divergence_rate = 1e-3;
  opts.rate_window = 3;
  CbsEngine cbs(grid, opts);
  cbs.set_contrast(blob_contrast(grid, 0.3));
  const cvec rhs = plane_wave(grid);
  cvec x(grid.num_pixels(), cplx{});
  EXPECT_FALSE(cbs.solve_panel(rhs, x, 1, 1e-12));
  EXPECT_FALSE(cbs.last_info().converged);
  EXPECT_LE(cbs.last_info().iterations, 8u);
  EXPECT_GT(cbs.last_info().convergence_rate, opts.divergence_rate);
}

TEST(CbsStats, CountsSolvesAndOperatorApplications) {
  Grid grid(24);
  CbsEngine cbs(grid);
  cbs.set_contrast(blob_contrast(grid, 0.05));
  const std::size_t n = grid.num_pixels();
  Rng rng(75);
  cvec rhs(2 * n), x(2 * n, cplx{});
  rng.fill_cnormal(rhs);
  ASSERT_TRUE(cbs.solve_panel(rhs, x, 2, 1e-8));
  const ForwardStats& st = cbs.stats();
  EXPECT_EQ(st.solves, 2u);
  EXPECT_GT(st.bicgs_iterations, 0u);
  EXPECT_GT(st.operator_applications, 2u);
  // Deprecated aliases stay wired to the renamed field.
  EXPECT_EQ(st.mlfma_applications(), st.operator_applications);
  EXPECT_DOUBLE_EQ(st.mlfma_per_solve(), st.operator_per_solve());
  EXPECT_EQ(st.per_solve_iterations.size(), 2u);
}

ScenarioConfig dbim_config() {
  ScenarioConfig c;
  c.nx = 32;
  c.num_transmitters = 8;
  c.num_receivers = 24;
  return c;
}

TEST(CbsDbim, PureCbsBackendReconstructsWeakBlob) {
  ScenarioConfig cfg = dbim_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));
  DbimOptions opts;
  opts.max_iterations = 10;
  opts.backend = BackendKind::kCbs;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  ASSERT_FALSE(res.history.relative_residual.empty());
  EXPECT_LT(res.history.relative_residual.back(),
            0.05 * res.history.relative_residual.front());
  EXPECT_EQ(res.history.backend, BackendKind::kCbs);
  EXPECT_FALSE(res.history.cbs_escalated);
  // All three passes per iteration per transmitter ran on CBS.
  EXPECT_EQ(res.history.forward_solves, static_cast<std::uint64_t>(3 * 8 * 10));
}

// The kAuto acceptance gate: on a weak-contrast phantom the CBS-routed
// reconstruction must land on the same image as the MLFMA-only run
// (RMSE within 0.1% — both backends solve the same discrete system).
TEST(CbsDbim, AutoBackendMatchesMlfmaReconstruction) {
  ScenarioConfig cfg = dbim_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.3, -0.2}, 0.5, cplx{0.01, 0.0}));
  DbimOptions mopts;
  mopts.max_iterations = 8;
  const DbimResult mlfma = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), mopts);

  DbimOptions aopts = mopts;
  aopts.backend = BackendKind::kAuto;
  const DbimResult autob = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), aopts);

  EXPECT_FALSE(autob.history.cbs_escalated);  // stayed on CBS throughout
  const double rmse_m = image_rmse(mlfma.contrast, scene.true_contrast());
  const double rmse_a = image_rmse(autob.contrast, scene.true_contrast());
  EXPECT_LT(std::abs(rmse_a - rmse_m), 1e-3 * rmse_m);
  EXPECT_LT(rel_l2_diff(autob.contrast, mlfma.contrast), 1e-3);
}

TEST(CbsDbim, AutoEscalatesWhenConvergenceRateDegrades) {
  ScenarioConfig cfg = dbim_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5, cplx{0.01, 0.0}));
  DbimOptions opts;
  opts.max_iterations = 4;
  opts.backend = BackendKind::kAuto;
  // An unattainable rate bound makes the very first converged CBS solve
  // look "degraded": the run must hand itself to MLFMA permanently and
  // still finish the reconstruction.
  opts.auto_escalation_rate = 1e-6;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  EXPECT_TRUE(res.history.cbs_escalated);
  ASSERT_FALSE(res.history.relative_residual.empty());
  EXPECT_LT(res.history.relative_residual.back(),
            res.history.relative_residual.front());
}

TEST(CbsDbim, AutoPrefersMlfmaAtStrongContrast) {
  ScenarioConfig cfg = dbim_config();
  Grid grid(cfg.nx);
  Scenario scene(cfg,
                 gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5, cplx{0.01, 0.0}));
  DbimWorkspace ws(scene.engine(), scene.transceivers(), scene.measurements(),
                   BicgstabOptions{});
  ws.set_backend(BackendKind::kAuto, CbsOptions{}, /*contrast_threshold=*/0.25,
                 /*escalation_rate=*/0.95);
  // Weak background: CBS answers.
  const cvec weak = contrast_from_permittivity(
      grid, gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5, cplx{0.01, 0.0}));
  ws.set_background(weak, false);
  EXPECT_EQ(ws.active_backend(), BackendKind::kCbs);
  // Strong background (max|Delta eps| over the threshold): MLFMA answers,
  // but without tripping the permanent escalation latch.
  const cvec strong = contrast_from_permittivity(
      grid, gaussian_blob(grid, Vec2{0.0, 0.0}, 0.5, cplx{0.5, 0.0}));
  ws.set_background(strong, false);
  EXPECT_EQ(ws.active_backend(), BackendKind::kMlfma);
  EXPECT_FALSE(ws.cbs_escalated());
  ws.set_background(weak, false);
  EXPECT_EQ(ws.active_backend(), BackendKind::kCbs);
}

}  // namespace
}  // namespace ffw
