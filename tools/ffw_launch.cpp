// ffw_launch — run a command as p real processes, one cluster rank
// each, over a shared-memory ring or TCP transport (DESIGN.md Sec. 16).
//
//     ffw_launch -n 4 -- ./examples/parallel_cluster
//     ffw_launch -n 4 --transport tcp --hostfile hosts.txt -- ./worker
//
// The launcher sets the FFW_* bootstrap environment (rank id, world
// size, rendezvous) for every worker and supervises the tree: if any
// worker dies abnormally (crash, kill -9, nonzero exit) the survivors
// are SIGKILLed and the whole world is relaunched with
// FFW_LAUNCH_ATTEMPT bumped — workers then resume from their last
// checkpoint. See src/vcluster/bootstrap.hpp.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "vcluster/bootstrap.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: ffw_launch -n <ranks> [options] -- <command> [args...]\n"
      "  -n, --np <p>         world size (required)\n"
      "  --transport <t>      shm (default) | tcp\n"
      "  --shm-name <name>    POSIX shm segment name (default /ffw-<pid>)\n"
      "  --ring-bytes <n>     per-edge ring capacity (default 1 MiB)\n"
      "  --hostfile <path>    tcp: host:port per rank (default: generated "
      "loopback)\n"
      "  --base-port <p>      tcp: first port when generating the hostfile\n"
      "  --max-restarts <k>   world relaunches after a dead rank "
      "(default 2)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ffw::LaunchOptions opts;
  opts.world = 0;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--") {
      ++i;
      break;
    } else if (a == "-n" || a == "--np") {
      opts.world = std::atoi(next());
    } else if (a == "--transport") {
      opts.transport = next();
    } else if (a == "--shm-name") {
      opts.shm_name = next();
    } else if (a == "--ring-bytes") {
      opts.ring_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--hostfile") {
      opts.hostfile = next();
    } else if (a == "--base-port") {
      opts.base_port = std::atoi(next());
    } else if (a == "--max-restarts") {
      opts.max_restarts = std::atoi(next());
    } else {
      std::fprintf(stderr, "ffw_launch: unknown option %s\n", a.c_str());
      usage();
      return 2;
    }
  }
  if (opts.world < 1 || i >= argc) {
    usage();
    return 2;
  }
  if (opts.transport != "shm" && opts.transport != "tcp") {
    std::fprintf(stderr, "ffw_launch: --transport must be shm or tcp\n");
    return 2;
  }
  std::vector<std::string> command;
  for (; i < argc; ++i) command.emplace_back(argv[i]);
  return ffw::launch_processes(opts, command);
}
