// Frequency as the third parallel axis (ROADMAP item 3): run a
// four-band frequency-hopping ladder with the bands themselves
// distributed across the cluster (dbim/continuation_parallel.hpp), then
// check the result against the serial continuation driver on rank 0.
//
// Threads mode (ranks are threads of this process):
//     ./build/examples/freq_pipeline [ranks]
//
// Process mode (ranks are real processes over shm rings or TCP; this
// binary detects the ffw_launch bootstrap environment):
//     ./build/tools/ffw_launch -n 4 -- ./build/examples/freq_pipeline
//
// With at most as many ranks as bands every band group is a single
// rank, and the band-parallel ladder reproduces the serial one
// bit-for-bit (checked below at 1e-10); with more ranks the groups run
// the windowed 2-D driver inside each band and parity holds at
// reconstruction accuracy.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dbim/continuation.hpp"
#include "dbim/continuation_parallel.hpp"
#include "phantom/phantom.hpp"
#include "phantom/setup.hpp"
#include "vcluster/bootstrap.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const std::optional<ProcessBootstrap> bs = bootstrap_from_env();
  const int ranks = bs ? bs->world : (argc > 1 ? std::atoi(argv[1]) : 4);

  ScenarioConfig config;
  config.nx = 64;
  config.leaf_pixel_side = 4;  // the nx=16 rung still needs a far field
  config.num_transmitters = 8;
  config.num_receivers = 24;
  config.measurement_noise = 0.02;  // per-band realizations (mix_seed)
  Grid grid(config.nx);
  const cvec truth = shepp_logan(grid, 0.02);

  // Quarter -> half -> half -> full frequency, five DBIM iterations per
  // band. More bands than the usual octave ladder, so a 4-rank cluster
  // pipelines band setup behind reconstruction.
  FrequencyLadder ladder;
  ladder.bands.push_back({2, 5});
  ladder.bands.push_back({1, 5});
  ladder.bands.push_back({1, 5});
  ladder.bands.push_back({0, 5});
  const int nbands = static_cast<int>(ladder.bands.size());

  std::unique_ptr<VCluster> cluster_owned;
  if (bs) {
    cluster_owned = make_worker_cluster(*bs);
  } else {
    cluster_owned = std::make_unique<VCluster>(ranks);
  }
  VCluster& cluster = *cluster_owned;
  const bool chatty = !bs || bs->rank == 0;

  const FreqPartition part = make_freq_partition(ranks, nbands);
  if (chatty) {
    std::printf("%s cluster: %d ranks, %d bands -> %d band groups "
                "(transport: %s)\n",
                bs ? "process" : "virtual", ranks, nbands, part.num_groups(),
                cluster.transport().name());
    for (int g = 0; g < part.num_groups(); ++g) {
      const BandGroup& bg = part.groups[static_cast<std::size_t>(g)];
      std::printf("  group %d: ranks [%d, %d) = %d illum x %d tree\n", g,
                  bg.base, bg.base + bg.size(), bg.illum_groups,
                  bg.tree_ranks);
    }
  }

  const ContinuationResult par =
      continuation_reconstruct_parallel(cluster, config, truth, ladder);

  // In process mode only rank 0 holds the assembled image; the other
  // workers are done.
  if (!chatty) return 0;

  for (const StageReport& s : par.stages) {
    std::printf("band %d: nx %3d (k0 %.2f), %d iterations, stop=%s, "
                "RMSE %.4f\n",
                s.band, s.nx, s.k0, s.iterations, to_string(s.stop), s.rmse);
  }

  // Cross-check against the serial continuation driver: identical
  // measurements (same per-band seeds), identical warm-start chain.
  const ContinuationResult serial =
      continuation_reconstruct(config, truth, ladder);
  const double parity = image_rmse(par.permittivity, serial.permittivity);
  const double tol = ranks <= nbands ? 1e-10 : 1e-3;
  std::printf("parity vs serial ladder: RMSE %.2e (gate %.0e)\n", parity,
              tol);
  FFW_CHECK_MSG(parity <= tol,
                "band-parallel ladder diverged from the serial driver");

  const cvec recon = contrast_from_permittivity(grid, par.permittivity);
  const cvec gold = contrast_from_permittivity(grid, truth);
  std::printf("image RMSE vs truth: %.3f\n", image_rmse(recon, gold));
  return 0;
}
