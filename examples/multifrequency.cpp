// Multi-frequency (frequency-hopping) DBIM: reconstruct a
// strongly-scattering object by climbing through operating frequencies
// — the coarse (low-frequency) stage is nearly linear and lands close
// to the truth, then seeds the fine stage for resolution. Compare with
// a single-frequency reconstruction of the same fine-grid effort.
//
// Run: ./build/examples/multifrequency [contrast]
#include <cstdio>
#include <cstdlib>

#include "dbim/multifrequency.hpp"
#include "io/image.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.08;

  ScenarioConfig config;
  config.nx = 64;
  config.num_transmitters = 8;
  config.num_receivers = 24;
  Grid grid(config.nx);
  const cvec truth = disks(grid, {{Vec2{0.0, 0.0}, 1.4, cplx{eps, 0.0}}});

  std::printf("object: 2.8-lambda disk, permittivity contrast %.3f\n", eps);

  std::printf("\nfrequency hopping (half frequency first, then full):\n");
  const MultiFrequencyResult mf =
      multifrequency_reconstruct(config, truth, {{1, 10}, {0, 8}});
  for (std::size_t s = 0; s < mf.stage_residuals.size(); ++s) {
    std::printf("  stage %zu: residual %.4f -> %.4f over %zu iterations, "
                "image RMSE %.3f\n", s, mf.stage_residuals[s].front(),
                mf.stage_residuals[s].back(), mf.stage_residuals[s].size(),
                mf.stage_rmse[s]);
  }

  std::printf("\nsingle-frequency baseline (same fine-grid iterations):\n");
  Scenario scene(config, truth);
  DbimOptions opts;
  opts.max_iterations = 8;
  const DbimResult single = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  std::printf("  residual %.4f -> %.4f, image RMSE %.3f\n",
              single.history.relative_residual.front(),
              single.history.relative_residual.back(),
              image_rmse(single.contrast, scene.true_contrast()));

  const cvec mf_contrast = contrast_from_permittivity(grid, mf.permittivity);
  std::printf("\nmulti-frequency RMSE %.3f vs single-frequency %.3f\n",
              image_rmse(mf_contrast, scene.true_contrast()),
              image_rmse(single.contrast, scene.true_contrast()));
  write_pgm("multifrequency_truth.pgm", grid, scene.true_contrast());
  write_pgm("multifrequency_image.pgm", grid, mf_contrast);
  write_pgm("multifrequency_single.pgm", grid, single.contrast);
  std::printf("wrote multifrequency_{truth,image,single}.pgm\n");
  return 0;
}
