// tomo_cli — a complete command-line tomographic reconstruction tool on
// top of the library's public API: pick a phantom, geometry, method and
// noise level; get images, a residual log, and a run report.
//
//   ./build/examples/tomo_cli --phantom shepp --nx 64 --tx 16 --rx 32
//       --method dbim --iters 15 --noise 0.01 --out run1
//
// Methods: born (linear baseline), dbim (the paper's solver),
// multifreq (frequency-hopping extension). With --checkpoint the DBIM
// outer loop saves resumable state each iteration and auto-resumes if
// the file already exists.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/timer.hpp"
#include "dbim/born.hpp"
#include "dbim/multifrequency.hpp"
#include "io/checkpoint.hpp"
#include "io/csv.hpp"
#include "io/image.hpp"

using namespace ffw;

namespace {

struct CliOptions {
  std::string phantom = "shepp";  // shepp | annulus | disks | blob
  int nx = 64;
  int tx = 16;
  int rx = 32;
  std::string method = "dbim";  // born | dbim | multifreq
  int iterations = 15;
  double contrast = 0.02;
  double noise = 0.0;
  double arc_degrees = 360.0;
  double tikhonov = 0.0;
  std::string out = "tomo";
  std::string checkpoint;
  int leaf = QuadTree::kDefaultLeafPixelSide;
  bool quiet = false;
};

void usage() {
  std::printf(
      "usage: tomo_cli [options]\n"
      "  --phantom shepp|annulus|disks|blob   object to image (default shepp)\n"
      "  --nx N          pixels per side, N/leaf a power of two (64)\n"
      "  --tx N          transmitters (16)        --rx N   receivers (32)\n"
      "  --method M      born|dbim|multifreq (dbim)\n"
      "  --iters N       outer iterations (15)\n"
      "  --contrast C    peak permittivity contrast (0.02)\n"
      "  --noise S       measurement noise, relative std (0)\n"
      "  --arc DEG       array arc in degrees, centred on +x (360)\n"
      "  --tikhonov L    regularisation weight (0)\n"
      "  --leaf N        MLFMA leaf pixels per side (8)\n"
      "  --checkpoint F  save/resume DBIM state in file F\n"
      "  --out PREFIX    output file prefix (tomo)\n"
      "  --quiet         suppress per-iteration output\n");
}

bool parse(int argc, char** argv, CliOptions& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--help" || a == "-h") return false;
    if (a == "--quiet") {
      o.quiet = true;
      continue;
    }
    const char* v = next();
    if (!v) {
      std::fprintf(stderr, "missing value for %s\n", a.c_str());
      return false;
    }
    if (a == "--phantom") o.phantom = v;
    else if (a == "--nx") o.nx = std::atoi(v);
    else if (a == "--tx") o.tx = std::atoi(v);
    else if (a == "--rx") o.rx = std::atoi(v);
    else if (a == "--method") o.method = v;
    else if (a == "--iters") o.iterations = std::atoi(v);
    else if (a == "--contrast") o.contrast = std::atof(v);
    else if (a == "--noise") o.noise = std::atof(v);
    else if (a == "--arc") o.arc_degrees = std::atof(v);
    else if (a == "--tikhonov") o.tikhonov = std::atof(v);
    else if (a == "--leaf") o.leaf = std::atoi(v);
    else if (a == "--checkpoint") o.checkpoint = v;
    else if (a == "--out") o.out = v;
    else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

cvec make_phantom(const Grid& grid, const CliOptions& o) {
  const cplx c{o.contrast, 0.0};
  const double d = grid.domain();
  if (o.phantom == "shepp") return shepp_logan(grid, o.contrast);
  if (o.phantom == "annulus") return annulus(grid, 0.19 * d, 0.31 * d, c);
  if (o.phantom == "disks") {
    return disks(grid, {{Vec2{0.19 * d, 0.13 * d}, 0.11 * d, c},
                        {Vec2{-0.16 * d, -0.08 * d}, 0.14 * d, c}});
  }
  if (o.phantom == "blob")
    return gaussian_blob(grid, Vec2{0.1 * d, -0.1 * d}, 0.12 * d, c);
  std::fprintf(stderr, "unknown phantom '%s'\n", o.phantom.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions o;
  if (!parse(argc, argv, o)) {
    usage();
    return 1;
  }

  ScenarioConfig cfg;
  cfg.nx = o.nx;
  cfg.num_transmitters = o.tx;
  cfg.num_receivers = o.rx;
  cfg.leaf_pixel_side = o.leaf;
  cfg.measurement_noise = o.noise;
  const double half = 0.5 * o.arc_degrees * pi / 180.0;
  cfg.tx_angle_begin = -half;
  cfg.tx_angle_end = half;
  cfg.rx_angle_begin = -half;
  cfg.rx_angle_end = half;

  if (o.method != "born" && o.method != "dbim" && o.method != "multifreq") {
    std::fprintf(stderr, "unknown method '%s'\n", o.method.c_str());
    return 2;
  }

  Grid grid(cfg.nx);
  const cvec truth = make_phantom(grid, o);

  std::printf("tomo_cli: %s phantom, %.1f-lambda domain (%zu px), "
              "%d Tx / %d Rx on a %.0f-degree arc, method %s\n",
              o.phantom.c_str(), grid.domain(), grid.num_pixels(), o.tx,
              o.rx, o.arc_degrees, o.method.c_str());

  Timer timer;
  cvec image;
  std::vector<double> residuals;

  if (o.method == "multifreq") {
    const MultiFrequencyResult mf = multifrequency_reconstruct(
        cfg, truth, {{1, (o.iterations + 1) / 2}, {0, o.iterations / 2}});
    image = contrast_from_permittivity(grid, mf.permittivity);
    for (const auto& stage : mf.stage_residuals)
      residuals.insert(residuals.end(), stage.begin(), stage.end());
  } else {
    Scenario scene(cfg, truth);
    if (o.method == "born") {
      BornOptions bopts;
      bopts.max_iterations = o.iterations;
      const BornResult res = born_reconstruct(
          scene.grid(), scene.transceivers(), scene.measurements(), bopts);
      image = res.contrast;
      residuals = res.relative_residual;
    } else if (o.method == "dbim") {
      DbimOptions dopts;
      dopts.max_iterations = o.iterations;
      dopts.tikhonov = o.tikhonov;
      if (!o.quiet) {
        dopts.progress = [](int it, double r) {
          std::printf("  iteration %2d: relative residual %.4f\n", it, r);
        };
      }
      DbimCheckpoint resume_state;
      if (!o.checkpoint.empty()) {
        if (resume_state.load(o.checkpoint)) {
          std::printf("resuming from %s at iteration %d\n",
                      o.checkpoint.c_str(), resume_state.iteration);
          dopts.resume = &resume_state;
        }
        dopts.checkpoint = [&o](const DbimCheckpoint& s) {
          s.save(o.checkpoint);
        };
      }
      const DbimResult res = dbim_reconstruct(
          scene.engine(), scene.transceivers(), scene.measurements(), dopts);
      image = res.contrast;
      residuals = res.history.relative_residual;
      std::printf("forward solves: %llu, MLFMA products: %llu\n",
                  static_cast<unsigned long long>(res.history.forward_solves),
                  static_cast<unsigned long long>(
                      res.history.operator_applications));
    } else {
      std::fprintf(stderr, "unknown method '%s'\n", o.method.c_str());
      return 2;
    }
  }

  // Report.
  const cvec true_contrast = contrast_from_permittivity(grid, truth);
  const double rmse = image_rmse(image, true_contrast);
  std::printf("\ndone in %.1f s\n", timer.seconds());
  if (!residuals.empty()) {
    std::printf("residual: %.4f -> %.4f over %zu iterations\n",
                residuals.front(), residuals.back(), residuals.size());
  }
  std::printf("image RMSE vs truth: %.3f\n", rmse);

  write_pgm(o.out + "_truth.pgm", grid, true_contrast);
  write_pgm(o.out + "_image.pgm", grid, image);
  std::vector<double> iters(residuals.size());
  for (std::size_t i = 0; i < iters.size(); ++i)
    iters[i] = static_cast<double>(i);
  write_csv(o.out + "_residual.csv",
            {{"iteration", iters}, {"relative_residual", residuals}});
  std::printf("wrote %s_truth.pgm, %s_image.pgm, %s_residual.csv\n",
              o.out.c_str(), o.out.c_str(), o.out.c_str());
  return 0;
}
