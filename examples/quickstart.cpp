// Quickstart: reconstruct a small synthetic object end to end.
//
//   1. define the imaging domain (a 6.4-lambda square, lambda/10 pixels)
//   2. place transmitter/receiver rings around it (paper Fig. 3)
//   3. make a phantom and synthesise the measured scattered field
//   4. run the DBIM inverse solver (MLFMA-accelerated forward solves)
//   5. inspect the residual history and save the image
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dbim/dbim.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

int main() {
  // --- 1. Scene: domain, arrays, phantom, synthetic measurements.
  ScenarioConfig config;
  config.nx = 64;               // 64x64 pixels = 6.4 x 6.4 wavelengths
  config.num_transmitters = 16; // T illuminations (paper: up to 1,024)
  config.num_receivers = 32;    // R receivers    (paper: up to 2,048)

  Grid grid(config.nx);
  const cvec phantom =
      disks(grid, {{Vec2{1.0, 0.8}, 0.7, cplx{0.02, 0.0}},
                   {Vec2{-1.0, -0.5}, 0.9, cplx{0.015, 0.0}}});

  std::printf("synthesising measurements (%d illuminations)...\n",
              config.num_transmitters);
  Scenario scene(config, phantom);

  // --- 2. Reconstruct with DBIM (3 forward solves per transmitter per
  // iteration; each solve is BiCGStab with O(N) MLFMA products).
  DbimOptions options;
  options.max_iterations = 15;
  options.progress = [](int iteration, double residual) {
    std::printf("  DBIM iteration %2d: relative residual %.4f\n", iteration,
                residual);
  };

  std::printf("reconstructing...\n");
  const DbimResult result = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), options);

  // --- 3. Report.
  std::printf("\nimage RMSE vs ground truth: %.3f\n",
              image_rmse(result.contrast, scene.true_contrast()));
  std::printf("forward solves: %llu (3 per transmitter per iteration)\n",
              static_cast<unsigned long long>(result.history.forward_solves));
  std::printf("MLFMA products: %llu (%.1f per solve; paper reports 13.4)\n",
              static_cast<unsigned long long>(
                  result.history.operator_applications),
              static_cast<double>(result.history.operator_applications) /
                  static_cast<double>(result.history.forward_solves));
  write_pgm("quickstart_truth.pgm", grid, scene.true_contrast());
  write_pgm("quickstart_image.pgm", grid, result.contrast);
  std::printf("wrote quickstart_truth.pgm / quickstart_image.pgm\n");
  return 0;
}
