// The paper's two-dimensional parallelisation (Fig. 6) on the virtual
// cluster: distribute illuminations across groups and the MLFMA tree
// across ranks within each group, then reconstruct and report the
// communication profile (who talked to whom, and how much).
//
// Run: ./build/examples/parallel_cluster [illum_groups] [tree_ranks]
#include <cstdio>
#include <cstdlib>

#include "dbim/parallel_driver.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const int illum_groups = argc > 1 ? std::atoi(argv[1]) : 4;
  const int tree_ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  ScenarioConfig config;
  config.nx = 64;
  config.num_transmitters = 16;
  config.num_receivers = 32;
  Grid grid(config.nx);
  Scenario scene(config, shepp_logan(grid, 0.02));

  std::printf("virtual cluster: %d ranks = %d illumination groups x %d "
              "MLFMA sub-tree ranks\n", illum_groups * tree_ranks,
              illum_groups, tree_ranks);

  ParallelDbimConfig pconfig;
  pconfig.illum_groups = illum_groups;
  pconfig.tree_ranks = tree_ranks;
  pconfig.dbim.max_iterations = 10;
  pconfig.dbim.progress = [](int iteration, double residual) {
    std::printf("  iteration %2d: relative residual %.4f\n", iteration,
                residual);
  };

  VCluster cluster(illum_groups * tree_ranks);
  const DbimResult result = dbim_reconstruct_parallel(
      cluster, scene.tree(), scene.transceivers(), scene.measurements(),
      pconfig);

  std::printf("\nimage RMSE vs truth: %.3f\n",
              image_rmse(result.contrast, scene.true_contrast()));
  write_pgm("parallel_cluster_image.pgm", grid, result.contrast);

  // Communication profile (what an MPI run would put on the wire).
  const TrafficStats traffic = cluster.traffic();
  std::printf("\ncommunication totals: %.2f MB in %llu messages\n",
              static_cast<double>(traffic.total_bytes()) / 1048576.0,
              static_cast<unsigned long long>(traffic.total_messages()));
  std::printf("busiest rank moved %.2f MB\n",
              static_cast<double>(traffic.max_rank_bytes()) / 1048576.0);
  std::printf("per-edge matrix (MB):\n        ");
  for (int d = 0; d < cluster.size(); ++d) std::printf(" to %-3d", d);
  std::printf("\n");
  for (int s = 0; s < cluster.size(); ++s) {
    std::printf("from %-3d", s);
    for (int d = 0; d < cluster.size(); ++d) {
      std::printf(" %6.2f",
                  static_cast<double>(
                      traffic.bytes[static_cast<std::size_t>(s) *
                                        cluster.size() + d]) / 1048576.0);
    }
    std::printf("\n");
  }
  std::printf("\nnote: tree-halo traffic stays inside each illumination "
              "group; gradient combines cross groups twice per iteration "
              "(paper Fig. 4).\n");
  return 0;
}
