// The paper's two-dimensional parallelisation (Fig. 6) on the virtual
// cluster: distribute illuminations across groups and the MLFMA tree
// across ranks within each group, then reconstruct and report the
// communication profile (who talked to whom, and how much).
//
// Threads mode (ranks are threads of this process):
//     ./build/examples/parallel_cluster [illum_groups] [tree_ranks]
//
// Process mode (ranks are real processes over shm rings or TCP; this
// binary detects the ffw_launch bootstrap environment):
//     ./build/tools/ffw_launch -n 4 -- \
//         ./build/examples/parallel_cluster 2 2
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dbim/parallel_driver.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"
#include "vcluster/bootstrap.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const int illum_groups = argc > 1 ? std::atoi(argv[1]) : 4;
  const int tree_ranks = argc > 2 ? std::atoi(argv[2]) : 4;

  ScenarioConfig config;
  config.nx = 64;
  config.num_transmitters = 16;
  config.num_receivers = 32;
  Grid grid(config.nx);
  Scenario scene(config, shepp_logan(grid, 0.02));

  // Under ffw_launch this process hosts exactly one rank; otherwise all
  // of them as threads. Same cluster API either way.
  const std::optional<ProcessBootstrap> bs = bootstrap_from_env();
  std::unique_ptr<VCluster> cluster_owned;
  if (bs) {
    FFW_CHECK_MSG(bs->world == illum_groups * tree_ranks,
                  "ffw_launch -n must equal illum_groups * tree_ranks");
    cluster_owned = make_worker_cluster(*bs);
  } else {
    cluster_owned = std::make_unique<VCluster>(illum_groups * tree_ranks);
  }
  VCluster& cluster = *cluster_owned;
  const bool chatty = !bs || bs->rank == 0;

  if (chatty) {
    std::printf("%s cluster: %d ranks = %d illumination groups x %d "
                "MLFMA sub-tree ranks (transport: %s)\n",
                bs ? "process" : "virtual", illum_groups * tree_ranks,
                illum_groups, tree_ranks, cluster.transport().name());
  }

  ParallelDbimConfig pconfig;
  pconfig.illum_groups = illum_groups;
  pconfig.tree_ranks = tree_ranks;
  pconfig.dbim.max_iterations = 10;
  if (bs) {
    // Crash recovery across relaunches: every worker checkpoints via
    // rank 0 and resumes from it when ffw_launch restarts the world.
    pconfig.checkpoint_path = "parallel_cluster.ckpt";
    pconfig.resume_from_checkpoint = bs->attempt > 0;
  }
  if (chatty) {
    pconfig.dbim.progress = [](int iteration, double residual) {
      std::printf("  iteration %2d: relative residual %.4f\n", iteration,
                  residual);
    };
  }

  const DbimResult result = dbim_reconstruct_parallel(
      cluster, scene.tree(), scene.transceivers(), scene.measurements(),
      pconfig);

  // In process mode only rank 0 holds the assembled image; the other
  // workers are done.
  if (!chatty) return 0;
  std::printf("\nimage RMSE vs truth: %.3f\n",
              image_rmse(result.contrast, scene.true_contrast()));
  write_pgm("parallel_cluster_image.pgm", grid, result.contrast);

  // Communication profile (what an MPI run would put on the wire). In
  // process mode each instance ledgers only the frames its own rank
  // sent, so this reports rank 0's rows plus the transport's physical
  // cost counters.
  const TrafficStats traffic = cluster.traffic();
  std::printf("\ncommunication totals: %.2f MB in %llu messages\n",
              static_cast<double>(traffic.total_bytes()) / 1048576.0,
              static_cast<unsigned long long>(traffic.total_messages()));
  std::printf("busiest rank moved %.2f MB\n",
              static_cast<double>(traffic.max_rank_bytes()) / 1048576.0);
  const TransportCounters tc = cluster.transport().counters();
  if (tc.wire_bytes > 0) {
    std::printf("transport: %.2f MB on the wire, %llu syscalls, %llu "
                "full-ring stalls\n",
                static_cast<double>(tc.wire_bytes) / 1048576.0,
                static_cast<unsigned long long>(tc.syscalls),
                static_cast<unsigned long long>(tc.ring_full_stalls));
  }
  if (!bs) {
    std::printf("per-edge matrix (MB):\n        ");
    for (int d = 0; d < cluster.size(); ++d) std::printf(" to %-3d", d);
    std::printf("\n");
    for (int s = 0; s < cluster.size(); ++s) {
      std::printf("from %-3d", s);
      for (int d = 0; d < cluster.size(); ++d) {
        std::printf(" %6.2f",
                    static_cast<double>(
                        traffic.bytes[static_cast<std::size_t>(s) *
                                          cluster.size() + d]) / 1048576.0);
      }
      std::printf("\n");
    }
  }
  std::printf("\nnote: tree-halo traffic stays inside each illumination "
              "group; gradient combines cross groups twice per iteration "
              "(paper Fig. 4).\n");
  return 0;
}
