// Forward-solver playground: shine a plane wave on a dielectric
// cylinder, solve the volume integral equation with MLFMA+BiCGStab, and
// dump the total-field magnitude — the classic "shadow and focusing"
// picture. Also prints the per-phase MLFMA time breakdown (the data
// behind the paper's Table III row structure).
//
// Run: ./build/examples/forward_playground [contrast] [radius_lambda]
#include <cstdio>
#include <cstdlib>

#include "forward/forward.hpp"
#include "io/image.hpp"
#include "phantom/phantom.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const double contrast = argc > 1 ? std::atof(argv[1]) : 0.05;
  const double radius = argc > 2 ? std::atof(argv[2]) : 2.0;

  Grid grid(128);  // 12.8 x 12.8 wavelengths
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  ForwardSolver solver(engine);
  solver.set_contrast(contrast_from_permittivity(
      grid, disks(grid, {{Vec2{0.0, 0.0}, radius, cplx{contrast, 0.0}}})));

  // Plane wave incident from the left.
  const std::size_t n = grid.num_pixels();
  cvec incident(n);
  for (int iy = 0; iy < grid.nx(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      incident[grid.pixel_index(ix, iy)] =
          cplx{std::cos(grid.k0() * p.x), std::sin(grid.k0() * p.x)};
    }
  }

  cvec field(n, cplx{});
  const BicgstabResult result = solver.solve(incident, field);
  std::printf("cylinder: radius %.1f lambda, permittivity contrast %.3f\n",
              radius, contrast);
  std::printf("BiCGStab: %d iterations, relative residual %.2e, %d MLFMA "
              "products\n", result.iterations, result.relres,
              result.matvecs);

  write_pgm_magnitude("forward_field.pgm", grid, field);
  std::printf("wrote forward_field.pgm (total-field magnitude)\n");

  const PhaseTimes& times = engine.phase_times();
  std::printf("\nMLFMA phase breakdown over %llu applications:\n",
              static_cast<unsigned long long>(times.applications));
  for (int p = 0; p < static_cast<int>(MlfmaPhase::kCount); ++p) {
    std::printf("  %-24s %6.1f ms (%4.1f%%)\n",
                phase_name(static_cast<MlfmaPhase>(p)),
                1e3 * times.seconds[static_cast<std::size_t>(p)],
                100.0 * times.seconds[static_cast<std::size_t>(p)] /
                    times.total());
  }
  return 0;
}
