// Limited-view imaging (the paper's Fig. 2 scenario, also ref. [12]
// "Seeing the invisible"): transmitters and receivers cover a limited
// arc on one side, so single-scattered waves from the object's far side
// never reach the detectors. With a strongly scattering extended object,
// multiple scattering redirects energy from the hidden side into the
// arrays — the nonlinear (DBIM) image recovers what the linear (Born)
// image cannot.
//
// Run: ./build/examples/limited_view [arc_degrees]   (default 180)
#include <cstdio>
#include <cstdlib>

#include "dbim/born.hpp"
#include "dbim/dbim.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const double arc_deg = argc > 1 ? std::atof(argv[1]) : 180.0;
  const double half = 0.5 * arc_deg * pi / 180.0;

  ScenarioConfig config;
  config.nx = 64;
  config.num_transmitters = 16;
  config.num_receivers = 40;
  config.tx_angle_begin = -half;
  config.tx_angle_end = half;
  config.rx_angle_begin = -half;
  config.rx_angle_end = half;

  Grid grid(config.nx);
  // One extended, strongly scattering object; its -x half is hidden from
  // the arrays. (Backscatter-only geometries — arcs well below 180
  // degrees — are nearly information-free for *both* methods: a tiny
  // contrast map fits the data. Try arc 90 to see that, too.)
  const cvec phantom = disks(grid, {{Vec2{0.0, 0.0}, 2.0, cplx{0.12, 0.0}}});

  std::printf("arrays cover a %.0f-degree arc on the +x side\n", arc_deg);
  Scenario scene(config, phantom);

  BornOptions born_options;
  born_options.max_iterations = 40;
  const BornResult linear = born_reconstruct(
      scene.grid(), scene.transceivers(), scene.measurements(), born_options);

  DbimOptions dbim_options;
  dbim_options.max_iterations = 30;
  const DbimResult nonlinear = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(),
      dbim_options);

  std::printf("linear (single-scattering) RMSE:    %.3f\n",
              image_rmse(linear.contrast, scene.true_contrast()));
  std::printf("nonlinear (multiple-scattering) RMSE: %.3f\n",
              image_rmse(nonlinear.contrast, scene.true_contrast()));
  write_pgm("limited_view_truth.pgm", grid, scene.true_contrast());
  write_pgm("limited_view_linear.pgm", grid, linear.contrast);
  write_pgm("limited_view_nonlinear.pgm", grid, nonlinear.contrast);
  std::printf("wrote limited_view_{truth,linear,nonlinear}.pgm\n");
  return 0;
}
