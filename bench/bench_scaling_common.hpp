// Shared machinery for the scaling benches (Figs. 9-12, Tables III-IV):
// one calibration of the performance model per binary, and a printer
// that places the model's series next to the paper's reported numbers.
//
// Provenance reminder (DESIGN.md Sec. 2): kernel rates and solver shape
// are measured on this host with the real engine/solver; work and
// communication volumes are analytic censuses of the real interaction
// lists at paper scale (byte-identical to the virtual cluster's measured
// traffic); node/GPU/network constants are the documented MachineParams.
#pragma once

#include <memory>

#include "bench_common.hpp"
#include "perfmodel/predictor.hpp"

namespace ffw::bench {

inline const ScalingModel& calibrated_model() {
  static const ScalingModel model = [] {
    std::printf("calibrating on this host (real MLFMA + real small DBIM "
                "runs)...\n");
    Timer t;
    CalibratedRates rates = calibrate();
    std::printf("  per-phase rates (Mcmac/s):");
    for (double r : rates.cmacs_per_s) std::printf(" %.0f", r / 1e6);
    std::printf("\n  host-measured solver shape (6.4-lambda scene): "
                "%.1f MLFMA/solve, BiCGS iters %.1f +- %.1f\n",
                rates.mlfma_per_solve, rates.bicgs_mean, rates.bicgs_std);
    // Solver-shape statistics do NOT transfer from a 6.4-lambda host
    // problem to the paper's 102.4-lambda one: iteration counts grow
    // with the optical depth of the scatterer (that is the whole
    // multiple-scattering point). At paper scale we therefore use the
    // paper's own reported average (13.4 MLFMA products per solve ~ 6.5
    // BiCGS iterations) and a 5% relative spread consistent with its
    // Fig. 9; the kernel *rates* stay host-measured. Documented in
    // DESIGN.md Sec. 2 and EXPERIMENTS.md.
    rates.mlfma_per_solve = 13.4;
    rates.bicgs_mean = 6.5;
    rates.bicgs_std = 0.33;        // per-solve fluctuation (5%)
    rates.bicgs_illum_std = 0.45;  // persistent per-illumination spread (7%)
    std::printf("  paper-scale solver shape (from paper Sec. V-F): "
                "13.4 MLFMA/solve, iters %.1f +- %.2f\n"
                "  calibration took %.1f s\n\n",
                rates.bicgs_mean, rates.bicgs_std, t.seconds());
    return ScalingModel{MachineParams{}, rates};
  }();
  return model;
}

/// Tree/plan cache for paper-scale domains (1M/4M/16M unknowns).
struct PaperTree {
  Grid grid;
  QuadTree tree;
  MlfmaPlan plan;
  explicit PaperTree(int nx) : grid(nx), tree(grid), plan(tree, {}) {}
};

inline std::unique_ptr<PaperTree> make_paper_tree(int nx) {
  Timer t;
  auto out = std::make_unique<PaperTree>(nx);
  std::printf("built paper-scale tree: %.1f lambda, %.1fM unknowns, %d "
              "levels (%.1f s)\n", nx / 10.0,
              out->grid.num_pixels() / 1048576.0, out->tree.num_levels(),
              t.seconds());
  return out;
}

inline void print_scaling(const char* csv_name,
                          const std::vector<ScalingPoint>& pts,
                          const std::vector<double>& paper_times,
                          bool weak) {
  Table t({"nodes", "model time", "model eff.", "model adj. eff.",
           "paper time", "paper eff."});
  std::vector<double> nodes_col, time_col, eff_col, adj_col;
  const double paper_base =
      paper_times.empty() ? 0.0 : paper_times.front();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::string paper_t = "-", paper_e = "-";
    if (i < paper_times.size() && paper_times[i] > 0.0) {
      paper_t = fmt_fixed(paper_times[i], 0) + " s";
      const double eff =
          weak ? paper_base / paper_times[i]
               : paper_base * pts.front().nodes /
                     (paper_times[i] * pts[i].nodes);
      paper_e = fmt_fixed(100.0 * eff, 1) + "%";
    }
    t.add_row({std::to_string(pts[i].nodes),
               fmt_fixed(pts[i].time_s, 1) + " s",
               fmt_fixed(100.0 * pts[i].efficiency, 1) + "%",
               fmt_fixed(100.0 * pts[i].adjusted_efficiency, 1) + "%",
               paper_t, paper_e});
    nodes_col.push_back(pts[i].nodes);
    time_col.push_back(pts[i].time_s);
    eff_col.push_back(pts[i].efficiency);
    adj_col.push_back(pts[i].adjusted_efficiency);
  }
  std::printf("%s\n", t.to_string().c_str());
  write_csv(csv_name, {{"nodes", nodes_col},
                       {"model_time_s", time_col},
                       {"model_efficiency", eff_col},
                       {"model_adjusted_efficiency", adj_col}});
}

}  // namespace ffw::bench
