// Ablation: optimiser and warm-start choices in the DBIM outer loop.
//
//  (a) nonlinear conjugate-gradient vs steepest-descent directions —
//      the paper (Sec. VI-B): "We prefer nonlinear conjugate-gradient
//      iterations because they take fewer total matrix-vector
//      multiplications".
//  (b) warm-starting each residual-pass forward solve from the previous
//      iteration's background field vs restarting from the incident
//      field — an implementation choice behind the paper's low
//      MLFMA-per-solve count.
#include "bench_common.hpp"
#include "dbim/dbim.hpp"
#include "dbim/gauss_newton.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

namespace {

struct RunStats {
  double final_residual;
  std::uint64_t mlfma;
};

RunStats run(Scenario& scene, bool cg, bool warm, int iterations) {
  DbimOptions opts;
  opts.max_iterations = iterations;
  opts.conjugate_gradient = cg;
  opts.warm_start_fields = warm;
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);
  return {res.history.relative_residual.back(),
          res.history.operator_applications};
}

}  // namespace

int main() {
  bench::banner("Ablation — DBIM optimiser and warm starts",
                "paper Sec. VI-B (CG vs steepest descent) and the "
                "forward-solve warm-start strategy");
  Timer total;

  ScenarioConfig cfg;
  cfg.nx = 64;  // nx/8 must be a power of two
  cfg.num_transmitters = 6;
  cfg.num_receivers = 24;
  Grid grid(cfg.nx);
  Scenario scene(cfg, annulus(grid, 0.8, 1.6, cplx{0.03, 0.0}));

  const int iterations = 12;
  const RunStats cg_warm = run(scene, true, true, iterations);
  const RunStats sd_warm = run(scene, false, true, iterations);
  const RunStats cg_cold = run(scene, true, false, iterations);
  // Newton-type comparator (Sec. VI-B): 3 Gauss-Newton linearisations
  // with 4 CGNR steps each — about the same wall budget.
  GaussNewtonOptions gn_opts;
  gn_opts.max_iterations = 3;
  gn_opts.cg_iterations = 4;
  const DbimResult gn_res = gauss_newton_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), gn_opts);
  const RunStats gauss_newton{gn_res.history.relative_residual.back(),
                              gn_res.history.operator_applications};

  Table t({"configuration", "final rel. residual", "MLFMA products",
           "products / residual decade"});
  auto decades = [](const RunStats& s) {
    const double d = -std::log10(s.final_residual);
    return d > 0 ? static_cast<double>(s.mlfma) / d : 1e99;
  };
  t.add_row({"nonlinear CG + warm start", fmt_sci(cg_warm.final_residual, 2),
             std::to_string(cg_warm.mlfma), fmt_fixed(decades(cg_warm), 0)});
  t.add_row({"steepest descent + warm start",
             fmt_sci(sd_warm.final_residual, 2), std::to_string(sd_warm.mlfma),
             fmt_fixed(decades(sd_warm), 0)});
  t.add_row({"nonlinear CG + cold start", fmt_sci(cg_cold.final_residual, 2),
             std::to_string(cg_cold.mlfma), fmt_fixed(decades(cg_cold), 0)});
  t.add_row({"Gauss-Newton (3 outer x 4 CGNR)",
             fmt_sci(gauss_newton.final_residual, 2),
             std::to_string(gauss_newton.mlfma),
             fmt_fixed(decades(gauss_newton), 0)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("paper claims reproduced:\n");
  std::printf("  CG reaches a lower residual than steepest descent for the "
              "same iteration budget: %s (%.2e vs %.2e)\n",
              cg_warm.final_residual < sd_warm.final_residual ? "YES" : "NO",
              cg_warm.final_residual, sd_warm.final_residual);
  std::printf("  warm starts cut MLFMA products at equal accuracy: %s "
              "(%llu vs %llu products)\n",
              cg_warm.mlfma < cg_cold.mlfma ? "YES" : "NO",
              static_cast<unsigned long long>(cg_warm.mlfma),
              static_cast<unsigned long long>(cg_cold.mlfma));
  const double ratio = decades(cg_warm) / decades(gauss_newton);
  std::printf("  NLCG vs Newton-type products per residual decade: "
              "%.0f vs %.0f (%s)\n", decades(cg_warm),
              decades(gauss_newton),
              ratio < 0.9 ? "NLCG clearly cheaper, as the paper reports"
              : ratio < 1.15
                  ? "comparable at this small warm-started scale; the "
                    "paper reports a clear NLCG win at 1M unknowns, where "
                    "each extra inner solve is far more expensive"
                  : "Newton-type cheaper here");
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
