// Ablation: the band-diagonal interpolation design (paper Sec. IV-D,
// "more accuracy yields a thicker band").
//
// The local Lagrange interpolation between level sample grids only
// reaches the target accuracy if the angular grids are oversampled;
// exact (FFT) resampling would allow critical sampling but destroy the
// band-diagonal structure the paper's GPU kernels rely on. This bench
// sweeps (oversampling factor, stencil width) and reports the measured
// full-matvec error against the direct product plus the matvec time —
// the accuracy/cost trade-off behind the design choice.
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"

using namespace ffw;

namespace {

struct Point {
  double oversample;
  int width;
  double error;
  double millis;
};

Point measure(double oversample, int width) {
  Grid grid(128);
  QuadTree tree(grid);
  MlfmaParams params;
  params.digits = 5.0;
  params.oversample = oversample;
  params.interp_width = width;
  MlfmaEngine engine(tree, params);
  const std::size_t n = grid.num_pixels();
  Rng rng(7777);
  cvec x_nat(n), x(n), y(n), y_nat(n);
  rng.fill_cnormal(x_nat);
  tree.to_cluster_order(x_nat, x);

  engine.apply(x, y);  // warm-up
  Timer t;
  engine.apply(x, y);
  const double ms = 1e3 * t.seconds();
  tree.to_natural_order(y, y_nat);

  std::vector<std::uint32_t> rows(1024);
  for (auto& r : rows) r = static_cast<std::uint32_t>(rng.next_u64() % n);
  const cvec ref = dense_g0_apply_rows(grid, x_nat, rows);
  cvec sub(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) sub[i] = y_nat[rows[i]];
  return {oversample, width, rel_l2_diff(sub, ref), ms};
}

}  // namespace

int main() {
  bench::banner("Ablation — interpolation oversampling and band width",
                "paper Sec. IV-D design choice (band-diagonal "
                "interpolation/anterpolation operators)");
  Timer total;

  Table t({"oversample", "stencil width", "matvec rel. error",
           "matvec time", "meets 1e-5"});
  std::vector<double> os_col, w_col, e_col, t_col;
  for (double os : {1.2, 1.5, 2.0, 2.5}) {
    for (int w : {4, 6, 10, 14}) {
      const Point p = measure(os, w);
      t.add_row({fmt_fixed(p.oversample, 1), std::to_string(p.width),
                 fmt_sci(p.error, 2), fmt_fixed(p.millis, 1) + " ms",
                 p.error < 1e-5 ? "yes" : "no"});
      os_col.push_back(p.oversample);
      w_col.push_back(p.width);
      e_col.push_back(p.error);
      t_col.push_back(p.millis);
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "reading: at critical-ish sampling (1.2x) no affordable stencil\n"
      "reaches 1e-5; at 2x the default width-10 stencil does, which is\n"
      "why the library defaults to (2.0, width from digits). Wider bands\n"
      "buy accuracy at linear cost in interpolation time — the paper's\n"
      "\"more accuracy yields a thicker band\".\n");
  write_csv("ablation_interp.csv", {{"oversample", os_col},
                                    {"width", w_col},
                                    {"error", e_col},
                                    {"millis", t_col}});
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
