// Multi-tenant service throughput: N reconstruction jobs sharing a
// handful of operator configurations, run (a) serially with cold
// operator tables per job — the one-tenant-at-a-time deployment — and
// (b) through ReconstructionService over a shared OperatorTableCache
// and vcluster rank pool. Reports jobs/sec for both, the speedup
// (gated: the shared-cache path must be >= 3x), the cache hit rate and
// the amortised table-build seconds per job.
//
// The tenant mix leans on table-heavy configurations (16x16-pixel MLFMA
// leaves make the near-field assembly quadratic in leaf area), so the
// cold-table baseline pays the dominant build cost once *per job* while
// the service pays it once *per configuration*.
//
// Writes BENCH_service.json (see FFW_BENCH_JSON_DIR) and re-validates
// the emitted file with the RFC 8259 checker shared with the tests.
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "dbim/dbim.hpp"
#include "json_check.hpp"
#include "phantom/phantom.hpp"
#include "phantom/setup.hpp"
#include "service/service.hpp"

namespace ffw {
namespace {

constexpr int kJobs = 24;       // >= 8 per the gate; round-robin configs
constexpr int kRanks = 2;       // service worker pool size
constexpr int kIterations = 2;  // DBIM iterations per job

struct TenantConfig {
  ScenarioConfig scenario;
  CMatrix measured;
};

/// The two shared operator configurations of the tenant mix.
std::vector<TenantConfig> make_configs() {
  std::vector<TenantConfig> configs;
  {
    ScenarioConfig cfg;
    cfg.nx = 32;
    cfg.leaf_pixel_side = 16;  // table-heavy: near-field ~ leaf^2/pixel
    cfg.num_transmitters = 4;
    cfg.num_receivers = 16;
    configs.push_back({cfg, {}});
  }
  {
    ScenarioConfig cfg;
    cfg.nx = 32;
    cfg.leaf_pixel_side = 8;  // the paper's 0.8-lambda leaf
    cfg.num_transmitters = 4;
    cfg.num_receivers = 16;
    configs.push_back({cfg, {}});
  }
  for (auto& c : configs) {
    Scenario scene(c.scenario,
                   gaussian_blob(Grid(c.scenario.nx), Vec2{0.3, -0.2}, 0.5,
                                 cplx{0.01, 0.0}));
    c.measured = scene.measurements();
  }
  return configs;
}

JobSpec make_job(const TenantConfig& c, int index) {
  const ScenarioConfig& cfg = c.scenario;
  JobSpec spec;
  spec.name = "tenant" + std::to_string(index);
  spec.nx = cfg.nx;
  spec.leaf_pixel_side = cfg.leaf_pixel_side;
  spec.mlfma = cfg.mlfma;
  const double radius = cfg.ring_radius_factor * Grid(cfg.nx).domain();
  spec.transmitters = ring_positions(cfg.num_transmitters, radius);
  spec.receivers = ring_positions(cfg.num_receivers, radius);
  spec.measured = c.measured;
  spec.dbim.max_iterations = kIterations;
  spec.forward = cfg.forward;
  return spec;
}

/// One job, the service's exact per-job path, against `cache`.
DbimResult run_one(OperatorTableCache& cache, const JobSpec& spec) {
  const Grid grid(spec.nx);
  const auto tables =
      cache.mlfma_tables(grid, spec.leaf_pixel_side, spec.mlfma);
  MlfmaEngine engine(tables);
  const auto tt =
      cache.transceiver_tables(grid, spec.transmitters, spec.receivers);
  DbimOptions opts = spec.dbim;
  opts.incident_panel = tt->incident();
  opts.table_cache = &cache;
  return dbim_reconstruct(engine, tt->trx, spec.measured, opts, spec.forward,
                          spec.initial_contrast);
}

bool bit_identical(const DbimResult& a, const DbimResult& b) {
  return a.contrast.size() == b.contrast.size() &&
         std::memcmp(a.contrast.data(), b.contrast.data(),
                     a.contrast.size() * sizeof(cplx)) == 0 &&
         a.history.relative_residual == b.history.relative_residual;
}

}  // namespace
}  // namespace ffw

int main(int argc, char** argv) {
  using namespace ffw;
  auto trace = bench::parse_trace_flag(argc, argv);
  bench::banner("Multi-tenant reconstruction service",
                "service layer throughput (DESIGN.md Sec. 15): shared "
                "OperatorTableCache + fair scheduler vs cold-table serial");

  const auto configs = make_configs();
  std::vector<JobSpec> specs;
  for (int j = 0; j < kJobs; ++j) {
    specs.push_back(make_job(configs[static_cast<std::size_t>(j) %
                                     configs.size()],
                             j));
  }

  // Baseline: one tenant at a time, cold tables for every job (each job
  // gets a fresh cache, so every build cost is paid again).
  std::printf("baseline: %d jobs, cold tables per job...\n", kJobs);
  std::vector<DbimResult> baseline(specs.size());
  double baseline_build_seconds = 0.0;
  Timer baseline_timer;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    OperatorTableCache cold;
    baseline[j] = run_one(cold, specs[j]);
    baseline_build_seconds += cold.stats().build_seconds;
  }
  const double baseline_seconds = baseline_timer.seconds();

  // Service: same jobs through the shared cache + rank pool.
  std::printf("service: %d jobs over %d ranks, shared cache...\n", kJobs,
              kRanks);
  OperatorTableCache cache;
  ReconstructionService service(cache);
  std::vector<int> ids;
  for (auto& spec : specs) ids.push_back(service.submit(spec));
  VCluster vc(kRanks);
  Timer service_timer;
  service.run(vc);
  const double service_seconds = service_timer.seconds();

  // Every tenant's image must be bit-identical to its cold-table run:
  // sharing immutable tables may not change a single ulp.
  bool identical = true;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    if (service.status(ids[j]).state != JobState::kCompleted ||
        !bit_identical(baseline[j], service.result(ids[j]))) {
      identical = false;
    }
  }
  FFW_CHECK_MSG(identical,
                "service results diverged from the cold-table baseline");

  const auto cs = cache.stats();
  const auto ss = service.stats();
  const double baseline_jps = kJobs / baseline_seconds;
  const double service_jps = kJobs / service_seconds;
  const double speedup = baseline_seconds / service_seconds;
  const double hit_rate =
      cs.hits + cs.misses > 0
          ? static_cast<double>(cs.hits) / static_cast<double>(cs.hits +
                                                               cs.misses)
          : 0.0;

  Table t({"mode", "seconds", "jobs/sec", "table-build s", "build s/job"});
  t.add_row({"serial, cold tables", fmt_fixed(baseline_seconds, 2),
             fmt_fixed(baseline_jps, 2), fmt_fixed(baseline_build_seconds, 2),
             fmt_fixed(baseline_build_seconds / kJobs, 3)});
  t.add_row({"service, shared cache", fmt_fixed(service_seconds, 2),
             fmt_fixed(service_jps, 2), fmt_fixed(cs.build_seconds, 2),
             fmt_fixed(cs.build_seconds / kJobs, 3)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("\nspeedup: %.2fx   cache hit rate: %.1f%%   results: "
              "bit-identical\n",
              speedup, 100.0 * hit_rate);

  {
    bench::JsonWriter json("BENCH_service");
    json.field("bench", "service");
    json.field("jobs", static_cast<std::uint64_t>(kJobs));
    json.field("configs", static_cast<std::uint64_t>(configs.size()));
    json.field("ranks", static_cast<std::uint64_t>(kRanks));
    json.field("dbim_iterations", static_cast<std::uint64_t>(kIterations));
    json.begin_object("baseline");
    json.field("seconds", baseline_seconds);
    json.field("jobs_per_sec", baseline_jps);
    json.field("table_build_seconds", baseline_build_seconds);
    json.end();
    json.begin_object("service");
    json.field("seconds", service_seconds);
    json.field("jobs_per_sec", service_jps);
    json.field("table_build_seconds", cs.build_seconds);
    json.field("amortized_build_seconds_per_job", cs.build_seconds / kJobs);
    json.field("cache_hits", cs.hits);
    json.field("cache_misses", cs.misses);
    json.field("cache_hit_rate", hit_rate);
    json.field("scheduler_steps", ss.steps);
    json.end();
    json.field("speedup", speedup);
    json.field("bit_identical", true);
  }

  // RFC 8259 sanity of the emitted file, with the checker the test
  // suite uses on the JSON subsystem.
  {
    std::ifstream in(bench::json_output_path("BENCH_service"));
    std::stringstream buf;
    buf << in.rdbuf();
    FFW_CHECK_MSG(testing::json_valid(buf.str()),
                  "BENCH_service.json is not valid RFC 8259 JSON");
    std::printf("BENCH_service.json: valid JSON\n");
  }

  // The whole point of the shared cache: the gate the issue sets.
  FFW_CHECK_MSG(speedup >= 3.0,
                "service speedup fell below the 3x acceptance gate");

  if (trace.enabled) bench::write_trace(trace);
  return 0;
}
