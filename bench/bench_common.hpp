// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of the paper: it runs the
// real solver (and, where the paper's scale exceeds this machine, the
// calibrated performance model — see DESIGN.md Sec. 2), prints the same
// rows/series the paper reports side by side with the paper's values,
// and writes a CSV next to the binary for external plotting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "obs/obs.hpp"

namespace ffw::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Destination for a benchmark's machine-readable JSON result file.
/// The directory is the FFW_BENCH_JSON_DIR CMake cache variable
/// (default ".", i.e. the working directory of the run).
inline std::string json_output_path(const std::string& name) {
#ifdef FFW_BENCH_JSON_DIR
  std::string dir = FFW_BENCH_JSON_DIR;
#else
  std::string dir = ".";
#endif
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + name + ".json";
}

/// Benchmark result emitter: the shared ffw::JsonWriter (io/json.hpp —
/// valid-on-early-return scoping, round-trip doubles, `null` for
/// non-finite values) opened at the bench's json_output_path.
class JsonWriter : public ffw::JsonWriter {
 public:
  explicit JsonWriter(const std::string& name)
      : ffw::JsonWriter(json_output_path(name)) {}
};

/// `--trace <out.json>` support shared by the bench binaries: when the
/// flag is present, the obs subsystem records the run and the bench
/// writes a chrome://tracing file at exit (see write_trace()).
struct TraceOptions {
  bool enabled = false;
  std::string path;
};

/// Strips `--trace <path>` (or `--trace=path`) from argv, compacting
/// the remaining positional arguments in place so the benches' existing
/// positional parsing is untouched, and turns tracing on when present.
inline TraceOptions parse_trace_flag(int& argc, char** argv) {
  TraceOptions t;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) {
      t.path = argv[++i];
      t.enabled = true;
    } else if (a.rfind("--trace=", 0) == 0) {
      t.path = a.substr(8);
      t.enabled = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  if (t.enabled) obs::set_enabled(true);
  return t;
}

/// Strips a boolean `flag` (e.g. "--chaos") from argv, compacting the
/// remaining positional arguments like parse_trace_flag. Returns true
/// when the flag was present.
inline bool parse_bool_flag(int& argc, char** argv, const char* flag) {
  bool found = false;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      found = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return found;
}

/// Stops recording and writes the chrome://tracing file (no-op when
/// --trace was absent). Call after the traced workload — and after any
/// obs summary collection, which reads the same buffers.
inline void write_trace(const TraceOptions& t) {
  if (!t.enabled) return;
  obs::set_enabled(false);
  if (obs::write_chrome_trace(t.path)) {
    std::printf("trace: %s\n", t.path.c_str());
  } else {
    std::printf("trace: could not write %s\n", t.path.c_str());
  }
}

}  // namespace ffw::bench
