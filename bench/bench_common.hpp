// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of the paper: it runs the
// real solver (and, where the paper's scale exceeds this machine, the
// calibrated performance model — see DESIGN.md Sec. 2), prints the same
// rows/series the paper reports side by side with the paper's values,
// and writes a CSV next to the binary for external plotting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"

namespace ffw::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Destination for a benchmark's machine-readable JSON result file.
/// The directory is the FFW_BENCH_JSON_DIR CMake cache variable
/// (default ".", i.e. the working directory of the run).
inline std::string json_output_path(const std::string& name) {
#ifdef FFW_BENCH_JSON_DIR
  std::string dir = FFW_BENCH_JSON_DIR;
#else
  std::string dir = ".";
#endif
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + name + ".json";
}

/// Streaming emitter for the benchmark JSON result files: nested
/// objects/arrays with automatic comma and indent handling, so the
/// benches never hand-format separators. Scopes still open when the
/// writer is destroyed (or close()d) are closed for it, so a bench can
/// return early and still leave valid JSON behind. Not a general
/// serializer — keys are emitted verbatim (no escaping), which the
/// fixed bench field names never need.
class JsonWriter {
 public:
  /// Opens `json_output_path(name)` and the top-level object. A failed
  /// open degrades to a warning; every later call is a no-op and the
  /// bench keeps running.
  explicit JsonWriter(const std::string& name)
      : path_(json_output_path(name)), f_(std::fopen(path_.c_str(), "w")) {
    if (f_ == nullptr) {
      std::printf("json: could not open %s for writing\n", path_.c_str());
      return;
    }
    std::fputc('{', f_);
    scopes_.push_back({'}', true});
  }
  ~JsonWriter() { close(); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool ok() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }

  void begin_object(const std::string& key = {}) { open(key, '{', '}'); }
  void begin_array(const std::string& key = {}) { open(key, '[', ']'); }
  /// Closes the innermost still-open object or array.
  void end() {
    if (f_ == nullptr || scopes_.empty()) return;
    const Scope s = scopes_.back();
    scopes_.pop_back();
    if (!s.first) indent();
    std::fputc(s.closer, f_);
  }

  void field(const std::string& key, const std::string& v) {
    if (prefix(key)) std::fprintf(f_, "\"%s\"", v.c_str());
  }
  void field(const std::string& key, const char* v) {
    field(key, std::string(v));
  }
  void field(const std::string& key, double v) {
    if (prefix(key)) std::fprintf(f_, "%.6e", v);
  }
  void field(const std::string& key, int v) {
    if (prefix(key)) std::fprintf(f_, "%d", v);
  }
  void field(const std::string& key, std::uint64_t v) {
    if (prefix(key)) {
      std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
    }
  }
  void field(const std::string& key, bool v) {
    if (prefix(key)) std::fputs(v ? "true" : "false", f_);
  }

  /// Closes all open scopes and the file, then reports the path.
  void close() {
    if (f_ == nullptr) return;
    while (!scopes_.empty()) end();
    std::fputc('\n', f_);
    std::fclose(f_);
    f_ = nullptr;
    std::printf("json: %s\n", path_.c_str());
  }

 private:
  struct Scope {
    char closer;
    bool first;  // no element written yet -> next one skips the comma
  };

  void indent() {
    std::fputc('\n', f_);
    for (std::size_t i = 0; i < scopes_.size(); ++i) std::fputs("  ", f_);
  }
  /// Comma/newline/key bookkeeping shared by fields and scope openers.
  bool prefix(const std::string& key) {
    if (f_ == nullptr) return false;
    if (!scopes_.empty()) {
      if (!scopes_.back().first) std::fputc(',', f_);
      scopes_.back().first = false;
    }
    indent();
    if (!key.empty()) std::fprintf(f_, "\"%s\": ", key.c_str());
    return true;
  }
  void open(const std::string& key, char opener, char closer) {
    if (!prefix(key)) return;
    std::fputc(opener, f_);
    scopes_.push_back({closer, true});
  }

  std::string path_;
  std::FILE* f_;
  std::vector<Scope> scopes_;
};

}  // namespace ffw::bench
