// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of the paper: it runs the
// real solver (and, where the paper's scale exceeds this machine, the
// calibrated performance model — see DESIGN.md Sec. 2), prints the same
// rows/series the paper reports side by side with the paper's values,
// and writes a CSV next to the binary for external plotting.
#pragma once

#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "io/csv.hpp"

namespace ffw::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Destination for a benchmark's machine-readable JSON result file.
/// The directory is the FFW_BENCH_JSON_DIR CMake cache variable
/// (default ".", i.e. the working directory of the run).
inline std::string json_output_path(const std::string& name) {
#ifdef FFW_BENCH_JSON_DIR
  std::string dir = FFW_BENCH_JSON_DIR;
#else
  std::string dir = ".";
#endif
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + name + ".json";
}

}  // namespace ffw::bench
