// Figure 1: reconstruction of a high-contrast homogeneous annular object
// with the single-scattering (linear Born) and multiple-scattering
// (nonlinear DBIM) approaches.
//
// The paper shows images; the quantitative content is that the linear
// image of a high-contrast annulus is badly distorted while the DBIM
// image is faithful. We run both solvers on the same synthetic data at
// laptop scale (the mechanism is contrast-driven, not size-driven),
// report image RMSE for a low- and a high-contrast annulus, and write
// the four PGM images.
#include "bench_common.hpp"
#include "dbim/born.hpp"
#include "dbim/dbim.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

namespace {

struct Row {
  double contrast;
  double born_rmse;
  double dbim_rmse;
};

Row run_case(double contrast, const char* label) {
  ScenarioConfig cfg;
  cfg.nx = 64;  // 6.4 lambda
  cfg.num_transmitters = 16;
  cfg.num_receivers = 48;
  Grid grid(cfg.nx);
  Scenario scene(cfg, annulus(grid, 1.2, 2.0, cplx{contrast, 0.0}));

  BornOptions bopts;
  bopts.max_iterations = 30;
  const BornResult born =
      born_reconstruct(scene.grid(), scene.transceivers(),
                       scene.measurements(), bopts);

  DbimOptions dopts;
  dopts.max_iterations = 20;
  const DbimResult dbim = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), dopts);

  write_pgm(std::string("fig01_true_") + label + ".pgm", scene.grid(),
            scene.true_contrast());
  write_pgm(std::string("fig01_linear_") + label + ".pgm", scene.grid(),
            born.contrast);
  write_pgm(std::string("fig01_nonlinear_") + label + ".pgm", scene.grid(),
            dbim.contrast);

  return Row{contrast, image_rmse(born.contrast, scene.true_contrast()),
             image_rmse(dbim.contrast, scene.true_contrast())};
}

}  // namespace

int main() {
  bench::banner("Fig. 1 — high-contrast annulus, linear vs nonlinear",
                "paper Fig. 1 (Sec. II): single-scattering reconstruction "
                "fails at high contrast, DBIM does not");
  Timer timer;

  const Row low = run_case(0.005, "low");
  const Row high = run_case(0.08, "high");

  Table t({"annulus contrast", "linear (Born) RMSE", "nonlinear (DBIM) RMSE",
           "nonlinear wins"});
  for (const Row& r : {low, high}) {
    t.add_row({fmt_fixed(r.contrast, 3), fmt_fixed(r.born_rmse, 3),
               fmt_fixed(r.dbim_rmse, 3),
               r.dbim_rmse < r.born_rmse ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double degradation_linear = high.born_rmse / low.born_rmse;
  const double degradation_dbim = high.dbim_rmse / low.dbim_rmse;
  std::printf("Born RMSE degradation (low -> high contrast): %.2fx\n",
              degradation_linear);
  std::printf("DBIM RMSE degradation (low -> high contrast): %.2fx\n",
              degradation_dbim);
  std::printf("Paper's qualitative claim holds: %s\n",
              (high.dbim_rmse < high.born_rmse &&
               degradation_linear > degradation_dbim)
                  ? "YES (linear image collapses at high contrast, "
                    "nonlinear stays faithful)"
                  : "NO");

  write_csv("fig01_annulus.csv",
            {{"contrast", {low.contrast, high.contrast}},
             {"born_rmse", {low.born_rmse, high.born_rmse}},
             {"dbim_rmse", {low.dbim_rmse, high.dbim_rmse}}});
  bench::note("images written to fig01_*.pgm, series to fig01_annulus.csv");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
