// CBS/MLFMA crossover: sweeps object contrast x grid size and times the
// same multi-RHS forward solve on both backends — the convergent Born
// series (padded-FFT Richardson, forward/cbs.hpp) against
// MLFMA+BiCGStab — at equal solution accuracy. The two engines
// discretise the same Richmond-kernel system, so their converged fields
// must agree to ~1e-6 relative; the sweep locates the contrast where
// the CBS iteration count (which grows as the series' spectral radius
// approaches 1) erases its cheap-iteration advantage, which is the
// threshold DbimOptions::backend = kAuto ships with.
//
// Writes BENCH_cbs_crossover.json (see FFW_BENCH_JSON_DIR).
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dbim/dbim.hpp"
#include "forward/cbs.hpp"
#include "forward/forward.hpp"
#include "greens/transceivers.hpp"
#include "linalg/kernels.hpp"
#include "phantom/phantom.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

namespace {

constexpr std::size_t kNrhs = 8;
constexpr double kTol = 1e-9;

struct SolveTiming {
  bool converged = false;
  double seconds = 0.0;        // best of the timed repetitions
  std::size_t iterations = 0;  // Krylov or Born iterations of that rep
  cvec solution;
};

cvec incident_panel(const Grid& grid) {
  Transceivers trx(grid, ring_positions(kNrhs, grid.domain()),
                   ring_positions(4, grid.domain()));
  cvec rhs(grid.num_pixels() * kNrhs);
  for (std::size_t t = 0; t < kNrhs; ++t) {
    const cvec inc = trx.incident_field(t);
    std::copy(inc.begin(), inc.end(),
              rhs.begin() + static_cast<std::ptrdiff_t>(t * inc.size()));
  }
  return rhs;
}

template <typename Solve>
SolveTiming time_solve(const Grid& grid, ccspan rhs, Solve&& solve) {
  SolveTiming out;
  out.solution.assign(rhs.size(), cplx{});
  // First rep warms plan caches and page-faults the workspaces; the
  // reported time is the best cold-start (x = 0) solve after that.
  out.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    std::fill(out.solution.begin(), out.solution.end(), cplx{});
    Timer t;
    const bool ok = solve(out.solution);
    const double s = t.seconds();
    if (!ok) return SolveTiming{};  // diverged: report as such
    if (rep > 0 && s < out.seconds) out.seconds = s;
    out.converged = true;
  }
  (void)grid;
  return out;
}

}  // namespace

int main() {
  bench::banner("CBS / MLFMA forward-solve crossover",
                "ROADMAP item 5 (fast weak-scatterer backend); "
                "Lee et al. arXiv:2109.02637");
  Timer total;

  bench::JsonWriter json("BENCH_cbs_crossover");
  json.field("bench", "cbs_crossover");
  json.field("nrhs", static_cast<std::uint64_t>(kNrhs));
  json.field("tol", kTol);

  const std::vector<double> contrasts = {0.01, 0.02, 0.05, 0.1,
                                         0.2,  0.35, 0.5};
  Table t({"nx", "permittivity", "max|O|/k0^2", "CBS ms", "CBS iters",
           "MLFMA ms", "BiCGS iters", "speedup", "mismatch"});

  json.begin_array("sweep");
  double weak_speedup_128 = 0.0;
  std::vector<std::pair<int, double>> crossovers;
  for (const int nx : {64, 128}) {
    Grid grid(nx);
    QuadTree tree(grid);
    MlfmaEngine engine(tree);
    BicgstabOptions bopts;
    bopts.tol = kTol;
    ForwardSolver fs(engine, bopts);
    CbsEngine cbs(grid);
    const cvec rhs = incident_panel(grid);

    double prev_eps = 0.0, prev_speedup = 0.0, crossover = 0.0;
    for (const double eps : contrasts) {
      const cvec contrast = contrast_from_permittivity(
          grid, disks(grid, {{Vec2{0, 0}, 2.0, cplx{eps, 0.0}}}));
      fs.set_contrast(contrast);
      cbs.set_contrast(contrast);
      double omax = 0.0;
      for (const cplx& v : contrast) omax = std::max(omax, std::abs(v));
      const double strength = omax / (grid.k0() * grid.k0());

      std::size_t cbs_iters = 0;
      const SolveTiming c = time_solve(grid, rhs, [&](cspan x) {
        const bool ok = cbs.solve_panel(rhs, x, kNrhs, kTol);
        cbs_iters = cbs.last_info().iterations;
        return ok;
      });
      std::size_t krylov_before = 0;
      const SolveTiming m = time_solve(grid, rhs, [&](cspan x) {
        krylov_before = fs.stats().bicgs_iterations;
        return fs.solve_panel(rhs, x, kNrhs, kTol);
      });
      const std::size_t krylov_iters =
          m.converged ? fs.stats().bicgs_iterations - krylov_before : 0;

      const bool both = c.converged && m.converged;
      const double mismatch =
          both ? rel_l2_diff(c.solution, m.solution)
               : std::numeric_limits<double>::quiet_NaN();
      const double speedup =
          both ? m.seconds / c.seconds
               : (c.converged ? std::numeric_limits<double>::infinity() : 0.0);
      if (nx == 128 && eps == contrasts.front()) weak_speedup_128 = speedup;
      // Crossover: first contrast where MLFMA overtakes CBS, located by
      // log-linear interpolation between the bracketing sweep points. A
      // CBS divergence also ends CBS territory.
      if (crossover == 0.0 && prev_speedup > 1.0 &&
          (!c.converged || speedup < 1.0)) {
        if (!c.converged || speedup <= 0.0) {
          crossover = prev_eps;
        } else {
          const double f = std::log(prev_speedup) /
                           (std::log(prev_speedup) - std::log(speedup));
          crossover = prev_eps + f * (eps - prev_eps);
        }
      }
      prev_eps = eps;
      prev_speedup = speedup;

      auto ms = [](const SolveTiming& v) {
        return v.converged ? fmt_fixed(v.seconds * 1e3, 2)
                           : std::string("diverged");
      };
      t.add_row({std::to_string(nx), fmt_fixed(eps, 2), fmt_fixed(strength, 3),
                 ms(c), std::to_string(cbs_iters), ms(m),
                 std::to_string(krylov_iters),
                 both ? fmt_fixed(speedup, 2) + "x" : "-",
                 both ? fmt_sci(mismatch, 1) : "-"});
      json.begin_object();
      json.field("nx", nx);
      json.field("contrast", eps);
      json.field("contrast_natural", strength);
      json.field("cbs_converged", c.converged);
      json.field("cbs_s", c.converged
                              ? c.seconds
                              : std::numeric_limits<double>::quiet_NaN());
      json.field("cbs_iterations", static_cast<std::uint64_t>(cbs_iters));
      json.field("mlfma_converged", m.converged);
      json.field("mlfma_s", m.converged
                                ? m.seconds
                                : std::numeric_limits<double>::quiet_NaN());
      json.field("bicgs_iterations", static_cast<std::uint64_t>(krylov_iters));
      json.field("speedup", both ? speedup
                                 : std::numeric_limits<double>::quiet_NaN());
      json.field("mismatch_rel", mismatch);
      json.field("backend", backend_name(BackendKind::kCbs));
      json.field("baseline_backend", backend_name(BackendKind::kMlfma));
      json.end();
    }
    if (crossover == 0.0 && prev_speedup > 1.0) {
      crossover = std::numeric_limits<double>::quiet_NaN();  // never crossed
    }
    crossovers.emplace_back(nx, crossover);
  }
  json.end();

  json.begin_array("crossover");
  for (const auto& [nx, eps] : crossovers) {
    json.begin_object();
    json.field("nx", nx);
    json.field("crossover_contrast", eps);  // null: CBS won the whole sweep
    json.end();
  }
  json.end();
  json.field("weak_contrast_speedup_128", weak_speedup_128);

  // End-to-end check of the kAuto routing: a full weak-contrast DBIM
  // reconstruction on MLFMA only vs backend = kAuto (which should stay
  // on CBS throughout). Same measurements, same outer iterations — the
  // acceptance gate is RMSE parity within 0.1% at a measurable
  // end-to-end speedup.
  ScenarioConfig cfg;
  cfg.nx = 64;
  Scenario scene(cfg,
                 gaussian_blob(Grid(cfg.nx), Vec2{0.3, -0.2}, 0.5,
                               cplx{0.01, 0.0}));
  DbimOptions mopts;
  mopts.max_iterations = 8;
  struct DbimRun {
    double seconds = 0.0, rmse = 0.0;
    bool escalated = false;
  };
  const auto run_dbim = [&](const DbimOptions& o) {
    Timer dt;
    const DbimResult res = dbim_reconstruct(scene.engine(),
                                            scene.transceivers(),
                                            scene.measurements(), o,
                                            cfg.forward);
    return DbimRun{dt.seconds(),
                   image_rmse(res.contrast, scene.true_contrast()),
                   res.history.cbs_escalated};
  };
  const DbimRun mlfma_run = run_dbim(mopts);
  DbimOptions aopts = mopts;
  aopts.backend = BackendKind::kAuto;
  const DbimRun auto_run = run_dbim(aopts);
  const double rmse_rel_diff =
      mlfma_run.rmse > 0.0
          ? std::abs(auto_run.rmse - mlfma_run.rmse) / mlfma_run.rmse
          : 0.0;
  json.begin_object("dbim_end_to_end");
  json.field("nx", cfg.nx);
  json.field("dbim_iterations",
             static_cast<std::uint64_t>(mopts.max_iterations));
  json.field("mlfma_s", mlfma_run.seconds);
  json.field("auto_s", auto_run.seconds);
  json.field("speedup", mlfma_run.seconds / auto_run.seconds);
  json.field("rmse_mlfma", mlfma_run.rmse);
  json.field("rmse_auto", auto_run.rmse);
  json.field("rmse_rel_diff", rmse_rel_diff);
  json.field("cbs_escalated", auto_run.escalated);
  json.end();
  std::printf(
      "dbim end-to-end (64^2 weak blob, 8 iterations): mlfma %.2f s, "
      "kAuto %.2f s (%.2fx), RMSE %.6f vs %.6f (rel diff %.2e%s)\n",
      mlfma_run.seconds, auto_run.seconds,
      mlfma_run.seconds / auto_run.seconds, mlfma_run.rmse, auto_run.rmse,
      rmse_rel_diff, auto_run.escalated ? "; ESCALATED" : "");
  json.close();

  std::printf("%s\n", t.to_string().c_str());
  for (const auto& [nx, eps] : crossovers) {
    if (std::isnan(eps)) {
      std::printf("crossover (nx=%d): none within the sweep — CBS wins "
                  "through eps=%.2f\n",
                  nx, contrasts.back());
    } else {
      std::printf("crossover (nx=%d): eps ~= %.3f\n", nx, eps);
    }
  }
  std::printf(
      "reading: both backends solve the identical discrete system, so\n"
      "the mismatch column is a live cross-validation (expect ~1e-7 at\n"
      "tol 1e-9). Below CbsOptions::precond_threshold CBS runs the plain\n"
      "Born-Orthomin mode (one padded-panel FFT round trip per\n"
      "iteration); the shifted preconditioner doubles that above the\n"
      "gate. The iteration count tracks the series' spectral radius, so\n"
      "the speedup column decays toward the crossover as the contrast\n"
      "grows. DbimOptions::backend = kAuto routes each job by comparing\n"
      "max|O|/k0^2 (third column) against auto_contrast_threshold.\n");
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
