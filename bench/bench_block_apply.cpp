// Multi-RHS (blocked) MLFMA apply throughput: per-RHS time of
// apply_block over nrhs in {1, 2, 4, 8, 16, 32} on a fixed tree.
//
// The blocked apply streams each translation diagonal, interpolation
// stencil, shift vector and near-field block once for all columns, so
// per-RHS time should drop well below the nrhs=1 baseline as the width
// grows (the operator tables stop dominating the memory traffic).
// Writes bench_block_apply.json (see FFW_BENCH_JSON_DIR) with the raw
// numbers for regression tracking.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/block.hpp"
#include "mlfma/engine.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 256;
  bench::banner("Blocked MLFMA apply — per-RHS speedup vs block width",
                "multi-RHS extension of paper Sec. IV (one inverse "
                "iteration solves every illumination)");

  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);
  const std::size_t n = grid.num_pixels();
  std::printf("grid %dx%d (%zu unknowns), %d far-field levels\n\n", nx, nx,
              n, tree.num_levels());

  const std::vector<std::size_t> widths = {1, 2, 4, 8, 16, 32};
  const std::size_t max_w = widths.back();
  const BlockLayout lo_max{static_cast<std::size_t>(tree.pixels_per_leaf()),
                           max_w, tree.num_leaves()};
  cvec x(lo_max.size()), y(lo_max.size());
  Rng rng(42);
  rng.fill_cnormal(x);

  struct Row {
    std::size_t nrhs;
    double total_s, per_rhs_s, speedup;
  };
  std::vector<Row> rows;
  double base_per_rhs = 0.0;

  for (const std::size_t w : widths) {
    const BlockLayout lo{lo_max.panel, w, lo_max.npanels};
    // Warm-up: first call at each width grows the spectra panels.
    engine.apply_block(ccspan{x.data(), lo.size()},
                       cspan{y.data(), lo.size()}, w);
    // Enough repetitions for ~comparable total work at every width.
    const int reps = std::max(2, static_cast<int>(16 / w));
    Timer timer;
    for (int rep = 0; rep < reps; ++rep) {
      engine.apply_block(ccspan{x.data(), lo.size()},
                         cspan{y.data(), lo.size()}, w);
    }
    const double total = timer.seconds() / reps;
    const double per_rhs = total / static_cast<double>(w);
    if (w == 1) base_per_rhs = per_rhs;
    rows.push_back({w, total, per_rhs, base_per_rhs / per_rhs});
  }

  Table t({"nrhs", "block apply [ms]", "per-RHS [ms]", "speedup vs nrhs=1"});
  for (const Row& r : rows) {
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.2f", 1e3 * r.total_s);
    std::snprintf(b, sizeof b, "%.2f", 1e3 * r.per_rhs_s);
    std::snprintf(c, sizeof c, "%.2fx", r.speedup);
    t.add_row({std::to_string(r.nrhs), a, b, c});
  }
  std::printf("%s\n", t.to_string().c_str());

  const std::string path = bench::json_output_path("bench_block_apply");
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"block_apply\",\n  \"nx\": %d,\n"
                 "  \"unknowns\": %zu,\n  \"rows\": [\n", nx, n);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"nrhs\": %zu, \"block_apply_s\": %.6e, "
                   "\"per_rhs_s\": %.6e, \"speedup\": %.4f}%s\n",
                   r.nrhs, r.total_s, r.per_rhs_s, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json: %s\n", path.c_str());
  } else {
    std::printf("json: could not open %s for writing\n", path.c_str());
  }

  bench::note("per-RHS speedup at nrhs>=8 should exceed 1.5x: the "
              "translation/interpolation tables are loaded once per "
              "cluster instead of once per illumination.");
  return 0;
}
