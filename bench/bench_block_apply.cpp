// Multi-RHS (blocked) MLFMA apply throughput: per-RHS time of
// apply_block over nrhs in {1, 2, 4, 8, 16, 32} on a fixed tree, for
// both the fp64 reference engine and the Precision::kMixed engine
// (fp32 tables and spectra panels, fp64 accumulation at the dense
// expansion boundaries).
//
// The blocked apply streams each translation diagonal, interpolation
// stencil, shift vector and near-field block once for all columns, so
// per-RHS time should drop well below the nrhs=1 baseline as the width
// grows (the operator tables stop dominating the memory traffic). The
// mixed engine then halves the bytes behind every one of those streams,
// which compounds with the blocking.
// Writes bench_block_apply.json (see FFW_BENCH_JSON_DIR) with the raw
// numbers for regression tracking.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "forward/backend.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/block.hpp"
#include "mlfma/engine.hpp"

using namespace ffw;

namespace {

struct SweepResult {
  std::vector<double> total_s;    // blocked apply time per width
  std::vector<double> per_rhs_s;  // total_s / nrhs
  std::uint64_t engine_bytes = 0;
};

SweepResult sweep(const QuadTree& tree, Precision precision,
                  const std::vector<std::size_t>& widths, ccspan x, cspan y) {
  MlfmaParams params;
  params.precision = precision;
  MlfmaEngine engine(tree, params);
  SweepResult out;
  for (const std::size_t w : widths) {
    const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), w,
                         tree.num_leaves()};
    // Warm-up: first call at each width grows the spectra panels.
    engine.apply_block(ccspan{x.data(), lo.size()},
                       cspan{y.data(), lo.size()}, w);
    // Best-of-N: the min is the schedule-noise-free estimate, and N
    // keeps total work ~comparable at every width.
    const int reps = std::max(6, static_cast<int>(64 / w));
    double total = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
      Timer timer;
      engine.apply_block(ccspan{x.data(), lo.size()},
                         cspan{y.data(), lo.size()}, w);
      total = std::min(total, timer.seconds());
    }
    out.total_s.push_back(total);
    out.per_rhs_s.push_back(total / static_cast<double>(w));
  }
  out.engine_bytes = engine.bytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TraceOptions trace = bench::parse_trace_flag(argc, argv);
  const int nx = argc > 1 ? std::atoi(argv[1]) : 256;
  bench::banner("Blocked MLFMA apply — per-RHS speedup vs block width",
                "multi-RHS extension of paper Sec. IV (one inverse "
                "iteration solves every illumination), plus the "
                "fp32-table mixed-precision engine");

  Grid grid(nx);
  QuadTree tree(grid);
  const std::size_t n = grid.num_pixels();
  std::printf("grid %dx%d (%zu unknowns), %d far-field levels\n\n", nx, nx,
              n, tree.num_levels());

  const std::vector<std::size_t> widths = {1, 2, 4, 8, 16, 32};
  const std::size_t max_w = widths.back();
  const BlockLayout lo_max{static_cast<std::size_t>(tree.pixels_per_leaf()),
                           max_w, tree.num_leaves()};
  cvec x(lo_max.size()), y(lo_max.size());
  Rng rng(42);
  rng.fill_cnormal(x);

  const SweepResult f64 = sweep(tree, Precision::kDouble, widths, x, y);
  const SweepResult mix = sweep(tree, Precision::kMixed, widths, x, y);

  Table t({"nrhs", "fp64/RHS [ms]", "mixed/RHS [ms]", "mixed speedup",
           "vs fp64 nrhs=1"});
  for (std::size_t i = 0; i < widths.size(); ++i) {
    char a[32], b[32], c[32], d[32];
    std::snprintf(a, sizeof a, "%.2f", 1e3 * f64.per_rhs_s[i]);
    std::snprintf(b, sizeof b, "%.2f", 1e3 * mix.per_rhs_s[i]);
    std::snprintf(c, sizeof c, "%.2fx", f64.per_rhs_s[i] / mix.per_rhs_s[i]);
    std::snprintf(d, sizeof d, "%.2fx", f64.per_rhs_s[0] / mix.per_rhs_s[i]);
    t.add_row({std::to_string(widths[i]), a, b, c, d});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("engine footprint: fp64 %.1f MB, mixed %.1f MB\n\n",
              static_cast<double>(f64.engine_bytes) / 1048576.0,
              static_cast<double>(mix.engine_bytes) / 1048576.0);

  bench::JsonWriter json("bench_block_apply");
  json.field("bench", "block_apply");
  json.field("backend", backend_name(BackendKind::kMlfma));
  json.field("nx", nx);
  json.field("unknowns", static_cast<std::uint64_t>(n));
  json.field("engine_bytes_fp64", f64.engine_bytes);
  json.field("engine_bytes_mixed", mix.engine_bytes);
  json.begin_array("rows");
  for (std::size_t i = 0; i < widths.size(); ++i) {
    json.begin_object();
    json.field("nrhs", static_cast<std::uint64_t>(widths[i]));
    json.field("block_apply_s", f64.total_s[i]);
    json.field("per_rhs_s", f64.per_rhs_s[i]);
    json.field("speedup", f64.per_rhs_s[0] / f64.per_rhs_s[i]);
    json.field("mixed_block_apply_s", mix.total_s[i]);
    json.field("mixed_per_rhs_s", mix.per_rhs_s[i]);
    json.field("mixed_speedup", f64.per_rhs_s[i] / mix.per_rhs_s[i]);
    json.end();
  }
  json.end();
  json.close();

  bench::write_trace(trace);

  bench::note("per-RHS speedup at nrhs>=8 should exceed 1.5x for the "
              "blocked fp64 apply vs nrhs=1, and the mixed engine should "
              "add a further table-bandwidth factor on top: the "
              "translation/interpolation tables are loaded once per "
              "cluster instead of once per illumination, at half the "
              "bytes per entry.");
  return 0;
}
