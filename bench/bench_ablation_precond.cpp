// Ablation / future-work extension: Jacobi preconditioning of the
// forward system (paper Sec. VIII: "We also plan to apply resonance-free
// integral formulations and preconditioning of the system").
//
// Sweeps the object contrast and reports BiCGStab iteration counts with
// and without the diagonal right preconditioner, on real solves.
#include "bench_common.hpp"
#include "forward/forward.hpp"
#include "greens/transceivers.hpp"
#include "phantom/phantom.hpp"

using namespace ffw;

namespace {

int iterations_for(MlfmaEngine& engine, ccspan contrast, bool precond) {
  BicgstabOptions opts;
  opts.tol = 1e-6;
  opts.max_iterations = 400;
  ForwardSolver fs(engine, opts);
  fs.set_jacobi_preconditioner(precond);
  fs.set_contrast(contrast);
  const Grid& grid = engine.tree().grid();
  Transceivers trx(grid, ring_positions(1, grid.domain()),
                   ring_positions(4, grid.domain()));
  const cvec inc = trx.incident_field(0);
  cvec phi(grid.num_pixels(), cplx{});
  const BicgstabResult r = fs.solve(inc, phi);
  return r.converged ? r.iterations : -1;
}

}  // namespace

int main() {
  bench::banner("Ablation — Jacobi preconditioning vs contrast",
                "paper Sec. VIII future work (preconditioning near "
                "resonances)");
  Timer total;

  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);

  Table t({"permittivity contrast", "plain BiCGS iters", "Jacobi iters",
           "lossy (eps'' = 0.3 eps')", "Jacobi (lossy)"});
  std::vector<double> c_col, plain_col, prec_col;
  for (double eps : {0.05, 0.15, 0.3, 0.5}) {
    const cvec lossless = contrast_from_permittivity(
        grid, disks(grid, {{Vec2{0, 0}, 2.0, cplx{eps, 0.0}}}));
    const cvec lossy = contrast_from_permittivity(
        grid, disks(grid, {{Vec2{0, 0}, 2.0, cplx{eps, -0.3 * eps}}}));
    const int p0 = iterations_for(engine, lossless, false);
    const int p1 = iterations_for(engine, lossless, true);
    const int l0 = iterations_for(engine, lossy, false);
    const int l1 = iterations_for(engine, lossy, true);
    auto show = [](int v) {
      return v < 0 ? std::string("diverged") : std::to_string(v);
    };
    t.add_row({fmt_fixed(eps, 2), show(p0), show(p1), show(l0), show(l1)});
    c_col.push_back(eps);
    plain_col.push_back(p0);
    prec_col.push_back(p1);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "reading (an honest null result): for this volume formulation the\n"
      "system diagonal 1 - G0_nn O_n is nearly *constant* over the\n"
      "object, so Jacobi scaling barely changes the spectrum and the\n"
      "iteration counts are identical. The paper's future-work item\n"
      "really needs the resonance-free *formulations* it mentions\n"
      "alongside preconditioning (a different integral operator, out of\n"
      "scope here); a useful preconditioner for this operator must be\n"
      "non-diagonal. The feature stays in the library because it is the\n"
      "plumbing any such preconditioner would use, and it is tested to\n"
      "leave solutions unchanged.\n");
  write_csv("ablation_precond.csv", {{"contrast", c_col},
                                     {"plain_iters", plain_col},
                                     {"jacobi_iters", prec_col}});
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
