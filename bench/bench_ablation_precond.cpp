// Ablation / future-work extension: preconditioning of the forward
// system (paper Sec. VIII: "We also plan to apply resonance-free
// integral formulations and preconditioning of the system").
//
// Sweeps the object contrast and reports BiCGStab iteration counts for
// three preconditioners on real solves: none, diagonal Jacobi, and the
// per-leaf near-field self-block Jacobi (forward/precond.hpp).
//
// Writes BENCH_ablation_precond.json (see FFW_BENCH_JSON_DIR).
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "forward/forward.hpp"
#include "greens/transceivers.hpp"
#include "phantom/phantom.hpp"

using namespace ffw;

namespace {

enum class Mode { kPlain, kJacobi, kBlock };

struct SolveCost {
  int iterations = -1;        // -1 = diverged
  double setup_seconds = 0.0; // preconditioner factor time
};

SolveCost cost_for(MlfmaEngine& engine, ccspan contrast, Mode mode) {
  BicgstabOptions opts;
  opts.tol = 1e-6;
  opts.max_iterations = 400;
  ForwardSolver fs(engine, opts);
  if (mode == Mode::kJacobi) fs.set_jacobi_preconditioner(true);
  if (mode == Mode::kBlock) fs.set_near_preconditioner(true);
  fs.set_contrast(contrast);
  const Grid& grid = engine.tree().grid();
  Transceivers trx(grid, ring_positions(1, grid.domain()),
                   ring_positions(4, grid.domain()));
  const cvec inc = trx.incident_field(0);
  cvec phi(grid.num_pixels(), cplx{});
  const BicgstabResult r = fs.solve(inc, phi);
  SolveCost out;
  out.iterations = r.converged ? r.iterations : -1;
  out.setup_seconds = fs.stats().precond_setup_seconds;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation — forward-system preconditioning vs contrast",
                "paper Sec. VIII future work (preconditioning near "
                "resonances)");
  Timer total;

  Grid grid(64);
  QuadTree tree(grid);
  MlfmaEngine engine(tree);

  bench::JsonWriter json("BENCH_ablation_precond");
  json.field("bench", "ablation_precond");
  json.field("backend", backend_name(BackendKind::kMlfma));
  json.field("nx", 64);
  json.field("tol", 1e-6);

  Table t({"permittivity contrast", "plain BiCGS iters", "Jacobi iters",
           "self-block iters", "plain (lossy)", "self-block (lossy)"});
  std::vector<double> c_col, plain_col, jacobi_col, block_col;
  double setup_s = 0.0;
  json.begin_array("sweep");
  for (double eps : {0.05, 0.15, 0.3, 0.5}) {
    const cvec lossless = contrast_from_permittivity(
        grid, disks(grid, {{Vec2{0, 0}, 2.0, cplx{eps, 0.0}}}));
    const cvec lossy = contrast_from_permittivity(
        grid, disks(grid, {{Vec2{0, 0}, 2.0, cplx{eps, -0.3 * eps}}}));
    const SolveCost p0 = cost_for(engine, lossless, Mode::kPlain);
    const SolveCost p1 = cost_for(engine, lossless, Mode::kJacobi);
    const SolveCost pb = cost_for(engine, lossless, Mode::kBlock);
    const SolveCost l0 = cost_for(engine, lossy, Mode::kPlain);
    const SolveCost lb = cost_for(engine, lossy, Mode::kBlock);
    setup_s = pb.setup_seconds;
    auto show = [](const SolveCost& v) {
      return v.iterations < 0 ? std::string("diverged")
                              : std::to_string(v.iterations);
    };
    t.add_row({fmt_fixed(eps, 2), show(p0), show(p1), show(pb), show(l0),
               show(lb)});
    c_col.push_back(eps);
    plain_col.push_back(p0.iterations);
    jacobi_col.push_back(p1.iterations);
    block_col.push_back(pb.iterations);
    json.begin_object();
    json.field("contrast", eps);
    json.field("plain_iters", p0.iterations);
    json.field("jacobi_iters", p1.iterations);
    json.field("block_iters", pb.iterations);
    json.field("plain_lossy_iters", l0.iterations);
    json.field("block_lossy_iters", lb.iterations);
    json.field("block_setup_s", pb.setup_seconds);
    json.end();
  }
  json.end();
  json.field("block_setup_s_last", setup_s);
  json.close();
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "reading: the Jacobi column is an honest null result — for this\n"
      "volume formulation the system diagonal 1 - G0_nn O_n is nearly\n"
      "*constant* over the object, so diagonal scaling barely changes\n"
      "the spectrum and its iteration counts match plain BiCGStab. The\n"
      "useful preconditioner for this operator is the next structure up:\n"
      "the per-leaf *self block* I - A_self diag(O_c) (the intra-leaf\n"
      "multiple scattering the near-field tables already encode), LU-\n"
      "factored once per contrast update. Its per-solve cut is modest —\n"
      "~15%% at the strongest contrasts here, nothing at weak contrast —\n"
      "but it is the piece of the DESIGN.md Sec. 13 stack that works at\n"
      "exactly the contrasts where the others degrade; the setup cost\n"
      "(block_setup_s in the JSON) is amortised over every solve of a\n"
      "DBIM iteration.\n");
  write_csv("ablation_precond.csv", {{"contrast", c_col},
                                     {"plain_iters", plain_col},
                                     {"jacobi_iters", jacobi_col},
                                     {"block_iters", block_col}});
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
