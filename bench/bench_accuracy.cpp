// Solver parameters (paper Sec. V-B): "the MLFMA parameters are chosen
// such that each matrix-vector multiplication has at most 1e-5 error,
// relative to naive direct O(N^2) multiplication". This bench sweeps the
// requested accuracy digits and tree depths and reports the measured
// matvec error against the direct product, together with the truncation
// orders and sample counts chosen by the plan.
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"
#include "mlfma/engine.hpp"

using namespace ffw;

namespace {

double measure_error(int nx, double digits) {
  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaParams params;
  params.digits = digits;
  MlfmaEngine engine(tree, params);
  const std::size_t n = grid.num_pixels();

  Rng rng(1234 + nx);
  cvec x_nat(n), x_clu(n), y_clu(n), y_nat(n);
  rng.fill_cnormal(x_nat);
  tree.to_cluster_order(x_nat, x_clu);
  engine.apply(x_clu, y_clu);
  tree.to_natural_order(y_clu, y_nat);

  const std::size_t nrows = std::min<std::size_t>(n, 2048);
  std::vector<std::uint32_t> rows(nrows);
  for (std::size_t i = 0; i < nrows; ++i)
    rows[i] = static_cast<std::uint32_t>(rng.next_u64() % n);
  const cvec y_ref = dense_g0_apply_rows(grid, x_nat, rows);
  cvec y_sub(nrows);
  for (std::size_t i = 0; i < nrows; ++i) y_sub[i] = y_nat[rows[i]];
  return rel_l2_diff(y_sub, y_ref);
}

}  // namespace

int main() {
  bench::banner("MLFMA matvec accuracy vs direct O(N^2) product",
                "paper Sec. V-B solver parameters (1e-5 target)");
  Timer timer;

  Table t({"digits d0", "domain", "levels", "L (leaf)", "Q (leaf)",
           "measured rel. error", "meets 10^-d0"});
  std::vector<double> d_col, e_col;
  for (double digits : {3.0, 4.0, 5.0, 6.0}) {
    for (int nx : {64, 128}) {
      Grid grid(nx);
      QuadTree tree(grid);
      MlfmaParams params;
      params.digits = digits;
      MlfmaPlan plan(tree, params);
      const double err = measure_error(nx, digits);
      t.add_row({fmt_fixed(digits, 0),
                 fmt_fixed(nx / 10.0, 1) + " lambda",
                 std::to_string(tree.num_levels()),
                 std::to_string(plan.level(0).truncation),
                 std::to_string(plan.level(0).samples), fmt_sci(err, 2),
                 err < 3.0 * std::pow(10.0, -digits) ? "yes" : "NO"});
      d_col.push_back(digits);
      e_col.push_back(err);
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Paper setting (d0 = 5): every multiplication must be below "
              "1e-5 — see rows above.\n");
  write_csv("accuracy_sweep.csv", {{"digits", d_col}, {"error", e_col}});
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
