// Frequency continuation (ROADMAP item 3): quantifies when the
// frequency-hopping ladder (dbim/continuation.hpp) is *necessary* — not
// merely faster — and what the third parallel axis buys.
//
// Section 1 sweeps object contrast on a fixed wide scatterer and runs
// single-frequency DBIM head to head against a three-rung ladder
// (quarter, half, full frequency). Past the Born-linearization horizon
// the single-frequency solver stalls — its normal equations point
// nowhere useful from a zero initial guess — while each coarse rung
// keeps the same object under one wavelength of phase error, so the
// ladder hands every stage a guess inside the basin of attraction
// (Borges-Gillman-Greengard, arXiv:1608.06871). The acceptance gate
// (FFW_CHECK) requires the ladder to beat single frequency by >= 10x
// RMSE — or the single-frequency run to have stalled outright — at the
// highest contrast, and the ladder to win at every swept contrast.
//
// Section 2 times the band-parallel driver
// (dbim/continuation_parallel.hpp) against the serial ladder on the
// same problem and checks the single-rank-group bit-parity contract.
//
// Section 3 asks the calibrated performance model for the best
// 3-D (frequency x illumination x subtree) shape at paper scale
// (perfmodel/freq_model.hpp) and reports the pipeline-fill speedup over
// serial-ladder scheduling of the same resources.
//
// Writes BENCH_freq_continuation.json (see FFW_BENCH_JSON_DIR).
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_scaling_common.hpp"
#include "dbim/continuation.hpp"
#include "dbim/continuation_parallel.hpp"
#include "dbim/dbim.hpp"
#include "json_check.hpp"
#include "perfmodel/freq_model.hpp"
#include "phantom/phantom.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

namespace {

constexpr int kNx = 64;
constexpr int kIterations = 8;  // per stage, and for the single-freq run

struct RunSummary {
  double rmse = 0.0;
  double seconds = 0.0;
  double final_residual = 0.0;
  bool stalled = false;
};

/// A run "stalled" when its data residual never left the O(1) regime
/// (the model explains less than 75% of the measurements after the full
/// iteration budget) or plateaued — under 5% total improvement across
/// the last three iterations, the same criterion the ladder's per-band
/// stopping uses.
bool stalled_residuals(const std::vector<double>& r) {
  return r.empty() || r.back() > 0.25 || continuation_plateau(r, 3, 0.05);
}

}  // namespace

int main() {
  bench::banner("Frequency continuation vs single-frequency DBIM",
                "ROADMAP item 3 (frequency hopping); "
                "Borges-Gillman-Greengard arXiv:1608.06871, "
                "Gaggioli-Bruno arXiv:2202.09421");
  Timer total;

  const std::string json_path =
      bench::json_output_path("BENCH_freq_continuation");
  {
    bench::JsonWriter json("BENCH_freq_continuation");
    json.field("bench", "freq_continuation");
    json.field("nx", kNx);
    json.field("iterations_per_stage",
               static_cast<std::uint64_t>(kIterations));

    // ---- Section 1: the contrast sweep.
    const Grid grid(kNx);
    const std::vector<double> contrasts = {0.05, 0.15, 0.30, 1.00};
    const FrequencyLadder ladder = FrequencyLadder::geometric(3, kIterations);

    Table t({"permittivity", "single RMSE", "single res.", "ladder RMSE",
             "ladder res.", "RMSE ratio", "single s", "ladder s"});
    json.begin_array("contrast_sweep");
    double top_ratio = 0.0;
    bool top_stalled = false;
    bool ladder_wins_everywhere = true;
    for (const double eps : contrasts) {
      ScenarioConfig cfg;
      cfg.nx = kNx;
      const cvec truth = disks(grid, {{Vec2{0.0, 0.0}, 1.4, cplx{eps, 0.0}}});

      Timer lt;
      const ContinuationResult mf = continuation_reconstruct(cfg, truth,
                                                             ladder);
      RunSummary lad;
      lad.seconds = lt.seconds();
      const cvec mf_contrast =
          contrast_from_permittivity(grid, mf.permittivity);

      Timer st;
      Scenario scene(cfg, truth);
      DbimOptions opts;
      opts.max_iterations = kIterations;
      const DbimResult single = dbim_reconstruct(
          scene.engine(), scene.transceivers(), scene.measurements(), opts,
          cfg.forward);
      RunSummary sin;
      sin.seconds = st.seconds();

      lad.rmse = image_rmse(mf_contrast, scene.true_contrast());
      lad.final_residual = mf.stages.back().history.relative_residual.back();
      lad.stalled =
          stalled_residuals(mf.stages.back().history.relative_residual);
      sin.rmse = image_rmse(single.contrast, scene.true_contrast());
      sin.final_residual = single.history.relative_residual.back();
      sin.stalled = stalled_residuals(single.history.relative_residual);

      const double ratio = sin.rmse / lad.rmse;
      if (eps == contrasts.back()) {
        top_ratio = ratio;
        top_stalled = sin.stalled;
      }
      if (sin.rmse <= lad.rmse) ladder_wins_everywhere = false;

      t.add_row({fmt_fixed(eps, 2), fmt_sci(sin.rmse, 2),
                 fmt_fixed(sin.final_residual, 3), fmt_sci(lad.rmse, 2),
                 fmt_fixed(lad.final_residual, 3), fmt_fixed(ratio, 1) + "x",
                 fmt_fixed(sin.seconds, 1), fmt_fixed(lad.seconds, 1)});
      json.begin_object();
      json.field("contrast", eps);
      json.field("single_rmse", sin.rmse);
      json.field("single_final_residual", sin.final_residual);
      json.field("single_stalled", sin.stalled);
      json.field("single_s", sin.seconds);
      json.field("ladder_rmse", lad.rmse);
      json.field("ladder_final_residual", lad.final_residual);
      json.field("ladder_s", lad.seconds);
      json.field("rmse_ratio", ratio);
      json.begin_array("ladder_stages");
      for (const StageReport& r : mf.stages) {
        json.begin_object();
        json.field("nx", r.nx);
        json.field("iterations", r.iterations);
        json.field("stop", to_string(r.stop));
        json.end();
      }
      json.end();
      json.end();
    }
    json.end();
    std::printf("%s\n", t.to_string().c_str());

    // Acceptance gates: continuation must genuinely rescue the
    // reconstruction, not shave a few percent.
    FFW_CHECK_MSG(ladder_wins_everywhere,
                  "ladder RMSE must beat single-frequency at every "
                  "contrast");
    FFW_CHECK_MSG(top_stalled || top_ratio >= 10.0,
                  "at the highest contrast, single-frequency DBIM must "
                  "stall or trail the ladder by >= 10x RMSE");
    std::printf("gate: highest contrast ratio %.1fx%s\n\n", top_ratio,
                top_stalled ? " (single-frequency stalled)" : "");
    json.field("gate_top_rmse_ratio", top_ratio);
    json.field("gate_top_single_stalled", top_stalled);

    // ---- Section 2: band-parallel ladder vs serial, same arithmetic.
    {
      ScenarioConfig cfg;
      cfg.nx = kNx;
      const cvec truth =
          disks(grid, {{Vec2{0.0, 0.0}, 1.4, cplx{contrasts[1], 0.0}}});
      Timer st;
      const ContinuationResult serial =
          continuation_reconstruct(cfg, truth, ladder);
      const double serial_s = st.seconds();

      VCluster vc(3);  // 3 bands -> 3 single-rank band groups, pipelined
      Timer pt;
      const ContinuationResult par =
          continuation_reconstruct_parallel(vc, cfg, truth, ladder);
      const double par_s = pt.seconds();
      const double parity = image_rmse(par.permittivity, serial.permittivity);
      FFW_CHECK_MSG(parity <= 1e-12,
                    "single-rank band groups must reproduce the serial "
                    "ladder bit-for-bit");
      std::printf("band-parallel (3 ranks, 1 per band): serial %.1f s, "
                  "pipelined %.1f s (%.2fx), parity RMSE %.1e\n\n",
                  serial_s, par_s, serial_s / par_s, parity);
      json.begin_object("band_parallel");
      json.field("ranks", 3);
      json.field("serial_s", serial_s);
      json.field("pipelined_s", par_s);
      json.field("speedup", serial_s / par_s);
      json.field("parity_rmse", parity);
      json.end();
    }

    // ---- Section 3: the 3-D partition at paper scale (model).
    const ScalingModel& model = bench::calibrated_model();
    // A three-octave paper-scale ladder: the coarse rungs are cheap but
    // not free, and their setup (tree + tables + synthesis) pipelines
    // behind the previous band's reconstruction.
    const std::vector<FreqBandSpec> bands = {
        {256, 64, 10}, {512, 128, 10}, {1024, 256, 10}};
    Table pt({"nodes", "freq groups", "illum groups", "tree ranks",
              "model time", "serial-ladder time", "pipeline gain"});
    json.begin_array("partition_model");
    for (const int nodes : {4, 16, 64}) {
      const Freq3dChoice c = choose_freq_partition(model, bands, nodes,
                                                   false);
      const double flat =
          freq_pipeline_time(model, bands, 1, nodes, 1, false);
      FFW_CHECK_MSG(c.time_s <= flat + 1e-12,
                    "3-D choice must never lose to flat illumination "
                    "parallelism");
      pt.add_row({std::to_string(nodes), std::to_string(c.freq_groups),
                  std::to_string(c.illum_groups),
                  std::to_string(c.tree_ranks), fmt_fixed(c.time_s, 1) + " s",
                  fmt_fixed(flat, 1) + " s", fmt_fixed(flat / c.time_s, 2) +
                  "x"});
      json.begin_object();
      json.field("nodes", nodes);
      json.field("freq_groups", c.freq_groups);
      json.field("illum_groups", c.illum_groups);
      json.field("tree_ranks", c.tree_ranks);
      json.field("model_time_s", c.time_s);
      json.field("flat_illum_time_s", flat);
      json.field("pipeline_gain", flat / c.time_s);
      json.end();
    }
    json.end();
    std::printf("%s\n", pt.to_string().c_str());
    json.close();
  }

  // Re-validate the emitted file against the strict RFC 8259 grammar.
  {
    std::ifstream in(json_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    FFW_CHECK_MSG(testing::json_valid(buf.str()),
                  "BENCH_freq_continuation.json is not valid RFC 8259 JSON");
    std::printf("BENCH_freq_continuation.json: valid JSON\n");
  }

  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
