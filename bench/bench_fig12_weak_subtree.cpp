// Figure 12: weak scaling across MLFMA sub-trees — the imaging domain
// (and hence the tree) grows 4x with each 4x increase in nodes, keeping
// the sub-tree size per node constant.
//
// Paper result: 73.3% real efficiency, 94.7% adjusted, at 1,024 nodes
// (16M unknowns); the scaling factor must be 4 because the domain is
// square.
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Fig. 12 — weak scaling across MLFMA sub-trees",
                "paper Fig. 12 / Sec. V-D2 (domain grows 4x per step: "
                "1M -> 4M -> 16M unknowns)");

  const ScalingModel& model = bench::calibrated_model();

  const int base_illum = 64;
  struct Step {
    int nodes;
    int nx;
    int p_tree;
  };
  const std::vector<Step> steps = {{64, 1024, 1}, {256, 2048, 4},
                                   {1024, 4096, 16}};

  std::vector<ScalingPoint> pts;
  for (const Step& s : steps) {
    const auto paper = bench::make_paper_tree(s.nx);
    ProblemSpec spec;
    spec.nx = s.nx;
    spec.transmitters = 1024;
    spec.dbim_iterations = 50;
    ScalingPoint p;
    p.nodes = s.nodes;
    p.time_s = model.reconstruction_time(spec, paper->tree, paper->plan,
                                         base_illum, s.p_tree, true, false);
    p.adjusted_time_s = model.reconstruction_time(
        spec, paper->tree, paper->plan, base_illum, s.p_tree, true, true);
    pts.push_back(p);
  }
  const double t0 = pts.front().time_s, a0 = pts.front().adjusted_time_s;
  for (auto& p : pts) {
    p.efficiency = t0 / p.time_s;
    p.adjusted_efficiency = a0 / p.adjusted_time_s;
  }

  bench::print_scaling("fig12_weak_subtree.csv", pts, {}, /*weak=*/true);
  std::printf("model: real eff. %.1f%% vs adjusted eff. %.1f%% at 1,024 "
              "nodes  (paper: 73.3%% vs 94.7%%)\n",
              100.0 * pts.back().efficiency,
              100.0 * pts.back().adjusted_efficiency);
  const bool shape =
      pts.back().adjusted_efficiency > pts.back().efficiency;
  std::printf("shape holds (gap mostly explained by iteration variation): "
              "%s\n", shape ? "YES" : "NO");
  return 0;
}
