// Figure 13: monochromatic reconstruction of the Shepp-Logan head
// phantom with 0.02 maximum contrast.
//
// Paper setup: 204.8 x 204.8 lambda (4M unknowns), 1,024 transmitters,
// 2,048 receivers, 4,096 GPU nodes, 50 DBIM iterations; relative
// residual drops 59.3% -> 0.03%, total time 126.9 s, 153,600 forward
// solutions, 13.4 MLFMA multiplications per solution.
//
// We run the *real* reconstruction at reduced scale (the physics —
// residual trajectory shape, solve statistics — transfers), then apply
// the calibrated model to the paper-scale configuration for the time
// and solve-count comparison.
#include "bench_scaling_common.hpp"
#include "dbim/dbim.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

int main(int argc, char** argv) {
  const bool large = argc > 1 && std::string(argv[1]) == "--large";
  bench::banner("Fig. 13 — Shepp-Logan phantom reconstruction",
                "paper Fig. 13 / Sec. V-F (204.8 lambda, 4M unknowns, "
                "1,024 Tx, 2,048 Rx)");
  Timer total;

  // --- Real reconstruction at reduced scale.
  ScenarioConfig cfg;
  cfg.nx = large ? 128 : 64;
  cfg.num_transmitters = large ? 32 : 16;
  cfg.num_receivers = large ? 64 : 32;
  Grid grid(cfg.nx);
  std::printf("real run: %.1f lambda domain (%zu unknowns), %d Tx, %d Rx\n",
              grid.domain(), grid.num_pixels(), cfg.num_transmitters,
              cfg.num_receivers);
  Scenario scene(cfg, shepp_logan(grid, 0.02));

  DbimOptions opts;
  opts.max_iterations = large ? 30 : 20;
  opts.progress = [](int iter, double relres) {
    std::printf("  DBIM iter %2d: relative residual %6.2f%%\n", iter,
                100.0 * relres);
  };
  const DbimResult res = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), opts);

  const double first = res.history.relative_residual.front();
  const double last = res.history.relative_residual.back();
  std::printf("\nresidual drop: %.1f%% -> %.3f%%  (paper at 4M/50 iters: "
              "59.3%% -> 0.03%%)\n", 100.0 * first, 100.0 * last);
  std::printf("image RMSE vs truth: %.3f\n",
              image_rmse(res.contrast, scene.true_contrast()));
  std::printf("forward solves: %llu, MLFMA mults: %llu (%.1f per solve; "
              "paper: 13.4)\n",
              static_cast<unsigned long long>(res.history.forward_solves),
              static_cast<unsigned long long>(res.history.operator_applications),
              static_cast<double>(res.history.operator_applications) /
                  static_cast<double>(res.history.forward_solves));

  write_pgm("fig13_true.pgm", grid, scene.true_contrast());
  write_pgm("fig13_reconstruction.pgm", grid, res.contrast);
  {
    std::vector<double> iters, resid;
    for (std::size_t i = 0; i < res.history.relative_residual.size(); ++i) {
      iters.push_back(static_cast<double>(i));
      resid.push_back(res.history.relative_residual[i]);
    }
    write_csv("fig13_residual.csv", {{"iteration", iters},
                                     {"relative_residual", resid}});
  }

  // --- Model extrapolation to the paper-scale configuration.
  std::printf("\npaper-scale projection (calibrated model):\n");
  const ScalingModel& model = bench::calibrated_model();
  const auto paper = bench::make_paper_tree(2048);  // 4M unknowns
  ProblemSpec spec;
  spec.nx = 2048;
  spec.transmitters = 1024;
  spec.dbim_iterations = 50;
  // 4,096 nodes = 1,024 illumination groups x 4 sub-trees per solver.
  const double t4096 = model.reconstruction_time(
      spec, paper->tree, paper->plan, 1024, 4, true, false);
  const double solves = 3.0 * spec.transmitters * spec.dbim_iterations;
  std::printf("  projected time on 4,096 GPU nodes: %.1f s "
              "(paper: 126.9 s)\n", t4096);
  std::printf("  forward solutions: %.0f (paper: 153,600)\n", solves);
  std::printf("  MLFMA multiplications: %.0f (paper: 2,054,312)\n",
              solves * model.rates().mlfma_per_solve);

  std::printf("\nshape checks:\n");
  std::printf("  residual drops by >2 orders of magnitude: %s\n",
              last < 0.01 * first ? "YES" : "NO");
  std::printf("  near-real-time at 4,096 nodes (~2 minutes): %s\n",
              t4096 < 240.0 ? "YES" : "NO");
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
