// Figure 9: strong scaling when illuminations are distributed across
// additional nodes (each node runs one full MLFMA solver).
//
// Paper setup: 102.4 x 102.4 lambda (1M unknowns), 1,024 illuminations,
// 64 -> 1,024 XK7 GPU nodes. Paper result: 13.8x speedup at 16x nodes =
// 86.1% efficiency, the gap attributed to forward-solver iteration
// variation that stops averaging out when each node has one
// illumination.
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Fig. 9 — strong scaling across illuminations",
                "paper Fig. 9 / Sec. V-C1 (1M unknowns, 1,024 "
                "illuminations, GPU nodes)");

  const ScalingModel& model = bench::calibrated_model();
  const auto paper = bench::make_paper_tree(1024);  // 1M unknowns

  ProblemSpec spec;
  spec.nx = 1024;
  spec.transmitters = 1024;
  spec.dbim_iterations = 50;

  const auto pts = model.strong_scaling_illuminations(
      spec, paper->tree, paper->plan, {64, 128, 256, 512, 1024}, true);
  // Paper reports the endpoints: 1,960 s at 64 nodes (Table IV, 32.7
  // min) and 142 s at 1,024 nodes.
  bench::print_scaling("fig09_strong_illum.csv", pts,
                       {1960.0, 0, 0, 0, 142.0}, /*weak=*/false);

  const double eff = pts.back().efficiency;
  std::printf("model efficiency at 1,024 nodes: %.1f%%  (paper: 86.1%%)\n",
              100.0 * eff);
  std::printf("shape holds (high efficiency, >75%%, variation-driven gap): "
              "%s\n", eff > 0.75 && eff < 1.0 ? "YES" : "NO");
  return 0;
}
