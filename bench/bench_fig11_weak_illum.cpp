// Figure 11: weak scaling across illuminations — the number of
// illuminations grows with the node count (one illumination per node).
//
// Paper result: 77.2% real efficiency at 1,024 nodes but 89.9% after
// adjusting for forward-solver iteration variation, showing the gap is a
// property of the algorithm (some illuminations simply need more BiCGS
// iterations), not of the parallelisation.
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Fig. 11 — weak scaling across illuminations",
                "paper Fig. 11 / Sec. V-D1 (one illumination per node)");

  const ScalingModel& model = bench::calibrated_model();
  const auto paper = bench::make_paper_tree(1024);

  ProblemSpec base;
  base.nx = 1024;
  base.dbim_iterations = 50;

  const auto pts = model.weak_scaling_illuminations(
      base, paper->tree, paper->plan, {64, 128, 256, 512, 1024}, true);
  bench::print_scaling("fig11_weak_illum.csv", pts, {}, /*weak=*/true);

  std::printf("model: real eff. %.1f%% vs adjusted eff. %.1f%% at 1,024 "
              "nodes  (paper: 77.2%% vs 89.9%%)\n",
              100.0 * pts.back().efficiency,
              100.0 * pts.back().adjusted_efficiency);
  const bool shape = pts.back().adjusted_efficiency >
                     pts.back().efficiency + 0.02;
  std::printf("shape holds (adjusting out iteration variation recovers "
              "most of the gap): %s\n", shape ? "YES" : "NO");
  return 0;
}
