// Communication/computation overlap ablation (paper Fig. 8): the
// blocking-ordered distributed apply (fixed peer-and-level drain order,
// no local work while waiting) vs. the overlapped schedule (local-first
// with arrival-order halo draining) across 4/8/16 ranks, with a
// randomized per-message delivery delay standing in for interconnect
// latency. Both schedules move exactly the same bytes — asserted per
// edge and per tag via the vcluster traffic counters — so any wall-time
// difference is purely scheduling.
//
// Writes bench_overlap.json (see FFW_BENCH_JSON_DIR).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mlfma/partitioned.hpp"

using namespace ffw;

namespace {

/// Deterministic pseudo-random delay in [lo_us, hi_us) (splitmix64 over
/// an atomic counter; thread-safe, identical stream for both schedules
/// only in distribution, which is all the ablation needs).
int hashed_delay_us(int lo_us, int hi_us) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) *
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return lo_us +
         static_cast<int>(z % static_cast<std::uint64_t>(hi_us - lo_us));
}

double timed_apply(VCluster& vc, const PartitionedMlfma& dist,
                   const QuadTree& tree, ccspan x, std::size_t nrhs,
                   ApplySchedule sched, int reps) {
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    vc.run([&](Comm& comm) {
      const std::size_t b = dist.leaf_begin(comm.rank()) * np * nrhs;
      const std::size_t sz = dist.local_pixels(comm.rank()) * nrhs;
      cvec y_local(sz);
      dist.apply_block(comm, ccspan{x.data() + b, sz}, y_local, nrhs, 0,
                       sched);
    });
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::size_t nrhs = argc > 2
                               ? static_cast<std::size_t>(std::atoi(argv[2]))
                               : 8;
  // The delay range models interconnect latency. On this one-core
  // machine the OS already hides one rank's blocking wait behind other
  // ranks' compute, so the delay must be comparable to the per-apply
  // compute for the schedule difference to surface (a real cluster
  // shows it at any latency — every rank has its own core to idle).
  const int delay_lo_us = argc > 3 ? std::atoi(argv[3]) : 30000;
  const int delay_hi_us = argc > 4 ? std::atoi(argv[4]) : 60000;
  const int reps = 3;
  bench::banner("Overlap ablation — blocking-ordered vs arrival-order apply",
                "paper Fig. 8 (communication/computation overlap of the "
                "partitioned MLFMA)");

  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaParams params;
  std::printf("grid %dx%d, nrhs=%zu, injected delay %d-%d us/message, "
              "best of %d\n\n",
              nx, nx, nrhs, delay_lo_us, delay_hi_us, reps);

  struct Row {
    int ranks;
    double blocking_s, overlapped_s, speedup;
    std::uint64_t halo_bytes;
  };
  std::vector<Row> rows;

  for (const int p : {4, 8, 16}) {
    PartitionedMlfma dist(tree, params, p);
    const std::size_t n = grid.num_pixels() * nrhs;
    Rng rng(42);
    cvec x(n);
    rng.fill_cnormal(x);

    VCluster vc(p);
    vc.set_send_delay([delay_lo_us, delay_hi_us](int, int, int) {
      return hashed_delay_us(delay_lo_us, delay_hi_us);
    });

    const double t_block = timed_apply(vc, dist, tree, x, nrhs,
                                       ApplySchedule::kBlockingOrdered, reps);
    const TrafficStats traffic_block = vc.traffic();
    const auto tags_block = vc.traffic_by_tag();
    vc.reset_traffic();
    const double t_over = timed_apply(vc, dist, tree, x, nrhs,
                                      ApplySchedule::kOverlapped, reps);
    const TrafficStats traffic_over = vc.traffic();
    const auto tags_over = vc.traffic_by_tag();

    // The ablation's control variable: identical wire traffic, per edge
    // and per tag. Any wall-time gap is scheduling, not volume.
    FFW_CHECK_MSG(traffic_block.bytes == traffic_over.bytes,
                  "per-edge byte volume differs between schedules");
    FFW_CHECK_MSG(traffic_block.messages == traffic_over.messages,
                  "per-edge message count differs between schedules");
    FFW_CHECK_MSG(tags_block == tags_over,
                  "per-tag traffic differs between schedules");

    rows.push_back({p, t_block, t_over, t_block / t_over,
                    traffic_over.total_bytes() / static_cast<std::uint64_t>(reps)});
  }

  Table t({"ranks", "blocking [ms]", "overlapped [ms]", "speedup",
           "halo bytes/apply"});
  for (const Row& r : rows) {
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.2f", 1e3 * r.blocking_s);
    std::snprintf(b, sizeof b, "%.2f", 1e3 * r.overlapped_s);
    std::snprintf(c, sizeof c, "%.2fx", r.speedup);
    t.add_row({std::to_string(r.ranks), a, b, c,
               std::to_string(r.halo_bytes)});
  }
  std::printf("%s\n", t.to_string().c_str());

  bench::JsonWriter json("bench_overlap");
  json.field("bench", "overlap");
  json.field("nx", nx);
  json.field("nrhs", static_cast<std::uint64_t>(nrhs));
  json.begin_array("delay_us");
  json.field("", delay_lo_us);
  json.field("", delay_hi_us);
  json.end();
  json.begin_array("rows");
  for (const Row& r : rows) {
    json.begin_object();
    json.field("ranks", r.ranks);
    json.field("blocking_s", r.blocking_s);
    json.field("overlapped_s", r.overlapped_s);
    json.field("speedup", r.speedup);
    json.field("halo_bytes_per_apply", r.halo_bytes);
    json.end();
  }
  json.end();
  json.close();

  bench::note("the overlapped schedule should beat blocking-ordered at >= 8 "
              "ranks: interior near-field + local translations hide the "
              "injected halo latency that the baseline spends parked in "
              "recv, and arrival-order draining decouples peers.");
  return 0;
}
