// Communication/computation overlap ablation (paper Fig. 8): the
// blocking-ordered distributed apply (fixed peer-and-level drain order,
// no local work while waiting) vs. the overlapped schedule (local-first
// with arrival-order halo draining) across 4/8/16 ranks, with a
// randomized per-message delivery delay standing in for interconnect
// latency. Both schedules move exactly the same bytes — asserted per
// edge and per tag via the vcluster traffic counters — so any wall-time
// difference is purely scheduling.
//
// Writes bench_overlap.json (see FFW_BENCH_JSON_DIR).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "forward/backend.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mlfma/partitioned.hpp"
#include "obs/summary.hpp"
#include "vcluster/fault.hpp"

using namespace ffw;

namespace {

/// Deterministic pseudo-random delay in [lo_us, hi_us) (splitmix64 over
/// an atomic counter; thread-safe, identical stream for both schedules
/// only in distribution, which is all the ablation needs).
int hashed_delay_us(int lo_us, int hi_us) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) *
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return lo_us +
         static_cast<int>(z % static_cast<std::uint64_t>(hi_us - lo_us));
}

/// out.json -> out-p4.json: one chrome trace per rank count, so each
/// file holds exactly one cluster configuration's timelines.
std::string per_rank_count_path(const std::string& path, int p) {
  const std::size_t dot = path.rfind('.');
  const std::string suffix = "-p" + std::to_string(p);
  return dot == std::string::npos ? path + suffix
                                  : path.substr(0, dot) + suffix +
                                        path.substr(dot);
}

double timed_apply(VCluster& vc, const PartitionedMlfma& dist,
                   const QuadTree& tree, ccspan x, std::size_t nrhs,
                   ApplySchedule sched, int reps) {
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    vc.run([&](Comm& comm) {
      const std::size_t b = dist.leaf_begin(comm.rank()) * np * nrhs;
      const std::size_t sz = dist.local_pixels(comm.rank()) * nrhs;
      cvec y_local(sz);
      dist.apply_block(comm, ccspan{x.data() + b, sz}, y_local, nrhs, 0,
                       sched);
    });
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TraceOptions trace = bench::parse_trace_flag(argc, argv);
  // `--chaos`: run both schedules under deterministic fault injection
  // (message duplication + reordering — never drops or corruption, which
  // would abort the apply) and re-assert the traffic-ledger invariants.
  // Duplicates are deduplicated and reorders recommitted by the per-edge
  // sequence numbers, so the wire accounting must stay byte-identical to
  // the clean run of the same schedule.
  const bool chaos = bench::parse_bool_flag(argc, argv, "--chaos");
  const int nx = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::size_t nrhs = argc > 2
                               ? static_cast<std::size_t>(std::atoi(argv[2]))
                               : 8;
  // The delay range models interconnect latency. On this one-core
  // machine the OS already hides one rank's blocking wait behind other
  // ranks' compute, so the delay must be comparable to the per-apply
  // compute for the schedule difference to surface (a real cluster
  // shows it at any latency — every rank has its own core to idle).
  const int delay_lo_us = argc > 3 ? std::atoi(argv[3]) : 30000;
  const int delay_hi_us = argc > 4 ? std::atoi(argv[4]) : 60000;
  const int reps = 3;
  bench::banner("Overlap ablation — blocking-ordered vs arrival-order apply",
                "paper Fig. 8 (communication/computation overlap of the "
                "partitioned MLFMA)");

  Grid grid(nx);
  QuadTree tree(grid);
  MlfmaParams params;
  std::printf("grid %dx%d, nrhs=%zu, injected delay %d-%d us/message, "
              "best of %d\n\n",
              nx, nx, nrhs, delay_lo_us, delay_hi_us, reps);

  struct Row {
    int ranks;
    double blocking_s, overlapped_s, speedup;
    std::uint64_t halo_bytes;
    std::uint64_t wait_block_ns = 0, wait_over_ns = 0;
  };
  std::vector<Row> rows;

  for (const int p : {4, 8, 16}) {
    PartitionedMlfma dist(tree, params, p);
    const std::size_t n = grid.num_pixels() * nrhs;
    Rng rng(42);
    cvec x(n);
    rng.fill_cnormal(x);

    VCluster vc(p);
    vc.set_send_delay([delay_lo_us, delay_hi_us](int, int, int) {
      return hashed_delay_us(delay_lo_us, delay_hi_us);
    });
    if (chaos) {
      FaultPlan plan;
      plan.seed = 7;
      plan.all.duplicate = 0.05;
      plan.all.reorder = 0.05;
      plan.all.reorder_hold_us = delay_hi_us;
      vc.install_fault_plan(plan);
    }

    // Cluster-wide halo-wait nanoseconds recorded so far (reads the obs
    // registry from the driver thread; all rank threads have joined).
    auto total_halo_wait = [&] {
      std::uint64_t s = 0;
      for (int r = 0; r < p; ++r)
        s += obs::counter_totals(
            r)[static_cast<std::size_t>(obs::Counter::kHaloWaitNs)];
      return s;
    };
    if (trace.enabled) obs::reset();  // per-rank-count trace/summary

    const double t_block = timed_apply(vc, dist, tree, x, nrhs,
                                       ApplySchedule::kBlockingOrdered, reps);
    const TrafficStats traffic_block = vc.traffic();
    const auto tags_block = vc.traffic_by_tag();
    const std::uint64_t w_block = trace.enabled ? total_halo_wait() : 0;
    vc.reset_traffic();
    const double t_over = timed_apply(vc, dist, tree, x, nrhs,
                                      ApplySchedule::kOverlapped, reps);
    const TrafficStats traffic_over = vc.traffic();
    const auto tags_over = vc.traffic_by_tag();
    const std::uint64_t w_over =
        trace.enabled ? total_halo_wait() - w_block : 0;

    // The ablation's control variable: identical wire traffic, per edge
    // and per tag. Any wall-time gap is scheduling, not volume.
    FFW_CHECK_MSG(traffic_block.bytes == traffic_over.bytes,
                  "per-edge byte volume differs between schedules");
    FFW_CHECK_MSG(traffic_block.messages == traffic_over.messages,
                  "per-edge message count differs between schedules");
    FFW_CHECK_MSG(tags_block == tags_over,
                  "per-tag traffic differs between schedules");
    if (chaos) {
      const FaultStats fs = vc.fault_stats();
      FFW_CHECK_MSG(fs.duplicates + fs.reorders > 0,
                    "--chaos requested but no fault fired");
      std::printf("chaos @ %d ranks: %llu duplicates, %llu reorders — "
                  "ledger identical to the clean run by construction "
                  "(accounting at deposit; dedup/recommit at recv)\n",
                  p, static_cast<unsigned long long>(fs.duplicates),
                  static_cast<unsigned long long>(fs.reorders));
    }

    rows.push_back({p, t_block, t_over, t_block / t_over,
                    traffic_over.total_bytes() / static_cast<std::uint64_t>(reps),
                    w_block, w_over});

    if (trace.enabled) {
      // Cross-rank phase/counter summary via the Comm collectives.
      // Recording is paused so the collection's own traffic and spans
      // don't contaminate what it reports, and the injected delay is
      // lifted so the collectives don't crawl.
      obs::set_enabled(false);
      vc.set_send_delay(nullptr);
      obs::ClusterSummary sum;
      vc.run([&](Comm& comm) {
        obs::ClusterSummary s = obs::collect_summary(comm);
        if (comm.rank() == 0) sum = std::move(s);
      });
      std::printf("-- %d ranks: per-rank phase summary (both schedules) --\n%s",
                  p, obs::format_summary(sum).c_str());
      const double red =
          w_block > 0 ? 100.0 * (1.0 - static_cast<double>(w_over) /
                                           static_cast<double>(w_block))
                      : 0.0;
      std::printf("halo-wait: blocking %.1f ms -> overlapped %.1f ms "
                  "(%.0f%% reduction)\n",
                  1e-6 * static_cast<double>(w_block),
                  1e-6 * static_cast<double>(w_over), red);
      obs::write_chrome_trace(per_rank_count_path(trace.path, p));
      std::printf("\n");
      obs::set_enabled(true);
    }
  }

  Table t({"ranks", "blocking [ms]", "overlapped [ms]", "speedup",
           "halo bytes/apply"});
  for (const Row& r : rows) {
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.2f", 1e3 * r.blocking_s);
    std::snprintf(b, sizeof b, "%.2f", 1e3 * r.overlapped_s);
    std::snprintf(c, sizeof c, "%.2fx", r.speedup);
    t.add_row({std::to_string(r.ranks), a, b, c,
               std::to_string(r.halo_bytes)});
  }
  std::printf("%s\n", t.to_string().c_str());

  bench::JsonWriter json("bench_overlap");
  json.field("bench", "overlap");
  json.field("backend", backend_name(BackendKind::kMlfma));
  json.field("chaos", chaos);
  json.field("nx", nx);
  json.field("nrhs", static_cast<std::uint64_t>(nrhs));
  json.begin_array("delay_us");
  json.field("", delay_lo_us);
  json.field("", delay_hi_us);
  json.end();
  json.begin_array("rows");
  for (const Row& r : rows) {
    json.begin_object();
    json.field("ranks", r.ranks);
    json.field("blocking_s", r.blocking_s);
    json.field("overlapped_s", r.overlapped_s);
    json.field("speedup", r.speedup);
    json.field("halo_bytes_per_apply", r.halo_bytes);
    if (trace.enabled) {
      json.field("halo_wait_blocking_ns", r.wait_block_ns);
      json.field("halo_wait_overlapped_ns", r.wait_over_ns);
    }
    json.end();
  }
  json.end();
  json.close();

  // Per-rank-count traces were already written inside the sweep; the
  // shared write_trace() would only duplicate the last one.
  if (trace.enabled) obs::set_enabled(false);

  bench::note("the overlapped schedule should beat blocking-ordered at >= 8 "
              "ranks: interior near-field + local translations hide the "
              "injected halo latency that the baseline spends parked in "
              "recv, and arrival-order draining decouples peers.");
  return 0;
}
