// Figure 10: strong scaling when MLFMA sub-trees are distributed across
// additional nodes (the 64-node run is the baseline; extra nodes split
// each solver's tree over up to 16 nodes).
//
// Paper result: 7.45x at 16x nodes = 46.6% efficiency — notably lower
// than Fig. 9 because per-node GPU work shrinks (kernel-efficiency loss)
// and translation/near-field halos must be exchanged.
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Fig. 10 — strong scaling across MLFMA sub-trees",
                "paper Fig. 10 / Sec. V-C2 (64 solvers, tree split over "
                "up to 16 nodes each)");

  const ScalingModel& model = bench::calibrated_model();
  const auto paper = bench::make_paper_tree(1024);

  ProblemSpec spec;
  spec.nx = 1024;
  spec.transmitters = 1024;
  spec.dbim_iterations = 50;

  const auto pts = model.strong_scaling_subtrees(
      spec, paper->tree, paper->plan, 64, {64, 128, 256, 512, 1024}, true);
  bench::print_scaling("fig10_strong_subtree.csv", pts,
                       {1960.0, 0, 0, 0, 263.0}, /*weak=*/false);

  const double eff = pts.back().efficiency;
  std::printf("model efficiency at 1,024 nodes: %.1f%%  (paper: 46.6%%)\n",
              100.0 * eff);
  std::printf("shape holds (sub-tree dimension clearly less efficient than "
              "illumination dimension): %s\n",
              eff < 0.75 ? "YES" : "NO");
  std::printf("\npaper's scheduling advice reproduced: partition "
              "illuminations first, then sub-trees (Sec. V-C2).\n");
  return 0;
}
