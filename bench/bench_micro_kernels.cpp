// google-benchmark microbenchmarks of the kernels behind Table I: the
// batched dense expansions, the band-diagonal interpolation, the
// diagonal translations, and the 9-type near-field pass — plus the full
// MLFMA apply and one forward solve.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/fft2.hpp"
#include "forward/forward.hpp"
#include "greens/nearfield.hpp"
#include "linalg/gemm.hpp"
#include "mlfma/engine.hpp"
#include "phantom/phantom.hpp"

using namespace ffw;

namespace {

struct Fixture {
  Grid grid;
  QuadTree tree;
  MlfmaEngine engine;
  explicit Fixture(int nx) : grid(nx), tree(grid), engine(tree) {}
};

Fixture& fixture128() {
  static Fixture f(128);
  return f;
}

}  // namespace

static void BM_MlfmaApply(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)));
  const std::size_t n = f.grid.num_pixels();
  Rng rng(1);
  cvec x(n), y(n);
  rng.fill_cnormal(x);
  for (auto _ : state) {
    f.engine.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MlfmaApply)->Arg(64)->Arg(128)->Arg(256)->Complexity();

static void BM_ExpansionGemm(benchmark::State& state) {
  Fixture& f = fixture128();
  const auto& e = f.engine.operators().expansion();
  const std::size_t nleaf = f.tree.num_leaves();
  CMatrix x(static_cast<std::size_t>(f.tree.pixels_per_leaf()), nleaf),
      s(e.rows(), nleaf);
  Rng rng(2);
  rng.fill_cnormal(cspan{x.data(), x.size()});
  for (auto _ : state) {
    gemm(cplx{1.0}, e, x, cplx{0.0}, s);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_ExpansionGemm);

static void BM_Interpolation(benchmark::State& state) {
  Fixture& f = fixture128();
  const auto& w = f.engine.operators().level(0).interp;
  cvec x(w.cols()), y(w.rows());
  Rng rng(3);
  rng.fill_cnormal(x);
  for (auto _ : state) {
    w.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Interpolation);

static void BM_TranslationDiag(benchmark::State& state) {
  Fixture& f = fixture128();
  const auto& trans = f.engine.operators().level(0).translations[0];
  cvec s(trans.size()), g(trans.size(), cplx{});
  Rng rng(4);
  rng.fill_cnormal(s);
  for (auto _ : state) {
    for (std::size_t i = 0; i < trans.size(); ++i) g[i] += trans[i] * s[i];
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_TranslationDiag);

static void BM_NearFieldPass(benchmark::State& state) {
  Fixture& f = fixture128();
  NearFieldOperators near(f.tree);
  const std::size_t n = f.grid.num_pixels();
  Rng rng(5);
  cvec x(n), y(n, cplx{});
  rng.fill_cnormal(x);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), cplx{});
    near.apply(f.tree, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_NearFieldPass);

// The 1-D FFT through the shared plan cache (what fft()/ifft() do now)
// against a fresh plan per call (what they used to do: twiddle tables or
// the Bluestein chirp recomputed every time). Arg 96 exercises the
// Bluestein path, where the setup dwarfs the transform itself.
static void BM_FftPlanCached(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  cvec x(n);
  rng.fill_cnormal(x);
  (void)fft_plan(n);  // warm the cache: steady-state hit cost
  for (auto _ : state) {
    fft_plan(n)->forward(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_FftPlanCached)->Arg(128)->Arg(96)->Arg(254);

static void BM_FftPlanPerCall(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  cvec x(n);
  rng.fill_cnormal(x);
  for (auto _ : state) {
    Fft1Plan<double> plan(n);
    plan.forward(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_FftPlanPerCall)->Arg(128)->Arg(96)->Arg(254);

// The CBS hot loop's unit of work: one batched 2-D round trip over a
// padded multi-RHS panel (256 = padded side for a 128x128 grid).
static void BM_Fft2PanelRoundTrip(benchmark::State& state) {
  const std::size_t p = 256, nrhs = static_cast<std::size_t>(state.range(0));
  Fft2Plan<double> plan(p, p);
  Rng rng(9);
  cvec panels(p * p * nrhs);
  rng.fill_cnormal(panels);
  for (auto _ : state) {
    plan.forward(panels, nrhs);
    plan.inverse(panels, nrhs);
    benchmark::DoNotOptimize(panels.data());
  }
}
BENCHMARK(BM_Fft2PanelRoundTrip)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_ForwardSolve(benchmark::State& state) {
  Fixture& f = fixture128();
  ForwardSolver fs(f.engine);
  const cvec deps =
      gaussian_blob(f.grid, Vec2{0.0, 0.0}, 2.0, cplx{0.01, 0.0});
  fs.set_contrast(contrast_from_permittivity(f.grid, deps));
  const std::size_t n = f.grid.num_pixels();
  Rng rng(6);
  cvec rhs(n), phi(n);
  rng.fill_cnormal(rhs);
  for (auto _ : state) {
    std::fill(phi.begin(), phi.end(), cplx{});
    const auto res = fs.solve(rhs, phi);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_ForwardSolve)->Unit(benchmark::kMillisecond);
