// Ablation: communication buffer aggregation (paper Sec. IV-B: "To
// minimize the number of handshakes, small communication buffers are
// aggregated into larger ones before communication takes place").
//
// The partitioned engine sends one buffer per (peer, level); the naive
// alternative sends one message per ghost cluster. Volume is identical —
// the win is handshakes, i.e. latency. This bench counts both from the
// real interaction lists and prices them with the network model, per
// MLFMA application and per full reconstruction.
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Ablation — halo buffer aggregation",
                "paper Sec. IV-B communication optimisation");

  Table t({"unknowns", "ranks", "aggregated msgs", "per-cluster msgs",
           "reduction", "latency/apply (agg)", "latency/apply (naive)"});
  const MachineParams machine;
  for (int nx : {128, 512, 1024}) {
    Grid grid(nx);
    QuadTree tree(grid);
    MlfmaPlan plan(tree, {});
    for (int p : {4, 16}) {
      const CommCensus c = census_halo(tree, plan, p);
      const double lat_agg = static_cast<double>(c.messages) *
                             machine.net_latency_s * 1e6;
      const double lat_naive = static_cast<double>(c.unbuffered_messages) *
                               machine.net_latency_s * 1e6;
      t.add_row({std::to_string(grid.num_pixels()), std::to_string(p),
                 std::to_string(c.messages),
                 std::to_string(c.unbuffered_messages),
                 fmt_speedup(static_cast<double>(c.unbuffered_messages) /
                             static_cast<double>(c.messages)),
                 fmt_fixed(lat_agg, 1) + " us",
                 fmt_fixed(lat_naive, 1) + " us"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Price it over a full paper-scale reconstruction (2M+ MLFMA products).
  Grid grid(1024);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  const CommCensus c = census_halo(tree, plan, 16);
  const double applies = 2.0e6 / 64.0;  // per solver group (64 groups)
  const double saved = applies *
                       static_cast<double>(c.unbuffered_messages -
                                           c.messages) *
                       machine.net_latency_s;
  std::printf("at paper scale (1M unknowns, 16-way trees, ~2M MLFMA "
              "products across 64 solver groups), aggregation saves "
              "~%.0f s of pure handshake latency per group — without it "
              "the Fig. 10 curve would flatten far earlier.\n", saved);
  return 0;
}
