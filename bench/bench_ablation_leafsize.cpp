// Ablation: leaf cluster size. The paper fixes 0.8-lambda (8x8-pixel)
// leaves (Sec. V-C); this bench shows why that is the sweet spot: small
// leaves push work into many far-field levels (more samples, more
// translations), large leaves make the 9-type dense near-field pass
// quadratic in the leaf area. Classic MLFMA tree tuning (cf. the
// buffering literature the paper cites, ref. [32]).
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "mlfma/engine.hpp"
#include "perfmodel/census.hpp"

using namespace ffw;

int main() {
  bench::banner("Ablation — leaf cluster size",
                "paper Sec. V-C setup choice (0.8-lambda leaves)");
  Timer total;

  Grid grid(256);  // 25.6 lambda, 65k unknowns
  Table t({"leaf (pixels)", "leaf width", "levels", "near-field cmacs",
           "far-field cmacs", "matvec time", "operator memory"});
  std::vector<double> leaf_col, time_col;
  for (int leaf : {4, 8, 16, 32}) {
    QuadTree tree(grid, leaf);
    MlfmaEngine engine(tree);
    const std::size_t n = grid.num_pixels();
    Rng rng(leaf);
    cvec x(n), y(n);
    rng.fill_cnormal(x);
    engine.apply(x, y);  // warm-up
    Timer timer;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) engine.apply(x, y);
    const double ms = 1e3 * timer.seconds() / reps;

    const WorkCensus work = census_work(tree, engine.plan());
    const double near =
        work.cmacs[static_cast<std::size_t>(MlfmaPhase::kNearField)];
    const double far = work.total() - near;
    t.add_row({std::to_string(leaf) + "x" + std::to_string(leaf),
               fmt_fixed(leaf * grid.h(), 1) + " lambda",
               std::to_string(tree.num_levels()),
               fmt_fixed(near / 1e6, 1) + " M",
               fmt_fixed(far / 1e6, 1) + " M",
               fmt_fixed(ms, 1) + " ms",
               fmt_fixed((engine.bytes()) / 1048576.0, 1) + " MB"});
    leaf_col.push_back(leaf);
    time_col.push_back(ms);
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "reading: near-field work grows ~leaf^2 per pixel while far-field\n"
      "work shrinks slowly, so beyond 8x8 the dense near-field pass\n"
      "dominates catastrophically (16x16 is ~3x slower, 32x32 ~20x). In\n"
      "*this CPU build* 4x4 leaves are actually fastest — our diagonal\n"
      "translation kernels are cheap per cmac — at the price of ~2x the\n"
      "operator-table memory and an extra tree level. The paper's 0.8-\n"
      "lambda (8x8) choice matches its GPU implementation, where the\n"
      "64-pixel dense near-field/expansion blocks are what keep the SMX\n"
      "units fed (Table III shows dense ops with the best GPU speedups);\n"
      "tree tuning is hardware-dependent, which is exactly why the knob\n"
      "exists.\n");
  write_csv("ablation_leafsize.csv",
            {{"leaf", leaf_col}, {"matvec_ms", time_col}});
  std::printf("elapsed: %.1f s\n", total.seconds());
  return 0;
}
