// Transport self-benchmark: latency/bandwidth of each byte-moving
// backend (in-process mailbox, shm rings, TCP loopback) measured with
// the linkbench ping-pong, then fed into the performance model via
// MachineParams::apply_measured_link — the alpha-beta network term runs
// on measured numbers for this host instead of the documented
// Gemini-like constants.
//
//     ./bench/bench_transport                # threads mode, all backends
//     ./tools/ffw_launch -n 2 -- ./bench/bench_transport   # real processes
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "perfmodel/linkbench.hpp"
#include "vcluster/bootstrap.hpp"

using namespace ffw;

int main(int, char**) {
  // Under ffw_launch, benchmark the one real cross-process transport we
  // were launched over; standalone, sweep the threads-mode backends.
  const std::optional<ProcessBootstrap> bs = bootstrap_from_env();
  if (!bs || bs->rank == 0) {
    bench::banner("Transport link self-benchmark",
                  "machine model inputs (DESIGN.md Sec. 2 / Sec. 16)");
  }
  if (bs) {
    std::unique_ptr<VCluster> vc = make_worker_cluster(*bs);
    const LinkParams link = measure_link(*vc);
    if (bs->rank == 0) {
      std::printf("%-10s latency %8.2f us   bandwidth %8.2f MB/s\n",
                  vc->transport().name(), link.latency_s * 1e6,
                  link.bandwidth_bps / 1e6);
      MachineParams machine;
      machine.apply_measured_link(link);
      std::printf("model: net_latency_s=%.3e net_bandwidth_bps=%.3e\n",
                  machine.net_latency_s, machine.net_bandwidth_bps);
    }
    return 0;
  }

  bench::JsonWriter json("bench_transport");
  json.begin_object();
  json.begin_array("backends");
  std::printf("%-10s %14s %16s %14s\n", "backend", "latency (us)",
              "bandwidth (MB/s)", "wire (MB)");
  LinkParams measured;  // last physical backend wins (shm, then tcp)
  for (const char* backend : {"inproc", "shm", "tcp"}) {
    auto transport = make_transport(backend, 2);
    VCluster vc(2, transport);
    const LinkParams link = measure_link(vc);
    const TransportCounters tc = transport->counters();
    std::printf("%-10s %14.2f %16.2f %14.2f\n", backend,
                link.latency_s * 1e6, link.bandwidth_bps / 1e6,
                static_cast<double>(tc.wire_bytes) / 1048576.0);
    json.begin_object();
    json.field("backend", backend);
    json.field("latency_s", link.latency_s);
    json.field("bandwidth_bps", link.bandwidth_bps);
    json.field("wire_bytes", tc.wire_bytes);
    json.field("syscalls", tc.syscalls);
    json.end();
    if (std::string(backend) != "inproc") measured = link;
  }
  json.end();

  // What the scaling predictions will now assume for this host. The
  // in-process numbers are deliberately not used: a mailbox move is not
  // a network, which is exactly why the physical backends exist.
  MachineParams machine;
  const double doc_lat = machine.net_latency_s;
  const double doc_bw = machine.net_bandwidth_bps;
  machine.apply_measured_link(measured);
  std::printf("\nmachine model network term:\n");
  std::printf("  documented: alpha %.3e s, beta %.3e B/s\n", doc_lat, doc_bw);
  std::printf("  measured:   alpha %.3e s, beta %.3e B/s\n",
              machine.net_latency_s, machine.net_bandwidth_bps);
  json.begin_object("machine");
  json.field("net_latency_s", machine.net_latency_s);
  json.field("net_bandwidth_bps", machine.net_bandwidth_bps);
  json.end();
  json.end();
  return 0;
}
