// Table IV: whole-application GPU speedup at 64 / 256 / 1,024 / 4,096
// nodes. Scaling to 1,024 nodes distributes illuminations; 1,024 ->
// 4,096 splits each solver's tree over 4 nodes (paper Sec. V-E2).
//
// Paper values: CPU 8,216 / 2,107 / 558 / 151 s; GPU 1,960 / 516 / 142 /
// 40.2 s; speedups 4.19x / 4.08x / 3.92x / 3.77x (mildly declining with
// scale as per-node GPU work shrinks).
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Table IV — whole-application GPU speedup",
                "paper Table IV / Sec. V-E2 (1M unknowns, 1,024 "
                "illuminations)");

  const ScalingModel& model = bench::calibrated_model();
  const auto paper = bench::make_paper_tree(1024);

  ProblemSpec spec;
  spec.nx = 1024;
  spec.transmitters = 1024;
  spec.dbim_iterations = 50;

  struct Point {
    int nodes, p_illum, p_tree;
    double paper_cpu, paper_gpu;
  };
  const std::vector<Point> points = {{64, 64, 1, 8216.0, 1960.0},
                                     {256, 256, 1, 2107.0, 516.0},
                                     {1024, 1024, 1, 558.0, 142.0},
                                     {4096, 1024, 4, 151.0, 40.2}};

  Table t({"Nodes", "CPU time", "(paper)", "GPU time", "(paper)",
           "GPU speedup", "(paper)"});
  std::vector<double> nodes_col, cpu_col, gpu_col;
  double first_speedup = 0, last_speedup = 0;
  for (const Point& p : points) {
    const double cpu = model.reconstruction_time(
        spec, paper->tree, paper->plan, p.p_illum, p.p_tree, false, false);
    const double gpu = model.reconstruction_time(
        spec, paper->tree, paper->plan, p.p_illum, p.p_tree, true, false);
    t.add_row({std::to_string(p.nodes), fmt_fixed(cpu, 0) + " s",
               fmt_fixed(p.paper_cpu, 0) + " s", fmt_fixed(gpu, 1) + " s",
               fmt_fixed(p.paper_gpu, 1) + " s", fmt_speedup(cpu / gpu),
               fmt_speedup(p.paper_cpu / p.paper_gpu)});
    nodes_col.push_back(p.nodes);
    cpu_col.push_back(cpu);
    gpu_col.push_back(gpu);
    if (first_speedup == 0) first_speedup = cpu / gpu;
    last_speedup = cpu / gpu;
  }
  std::printf("%s\n", t.to_string().c_str());
  write_csv("table4_app_speedup.csv", {{"nodes", nodes_col},
                                       {"cpu_s", cpu_col},
                                       {"gpu_s", gpu_col}});

  std::printf("shape checks:\n");
  std::printf("  GPU speedup ~4x and mildly declining with node count: "
              "%s (%.2fx -> %.2fx; paper 4.19x -> 3.77x)\n",
              (first_speedup > 2.5 && last_speedup <= first_speedup)
                  ? "YES" : "NO",
              first_speedup, last_speedup);
  std::printf("  4,096-node GPU run under a minute: %s (%.1f s; paper "
              "40.2 s)\n", gpu_col.back() < 60.0 ? "YES" : "NO",
              gpu_col.back());
  return 0;
}
