// Table III: per-operation GPU speedups of a single MLFMA multiplication
// on a 409.6 x 409.6 lambda (16M unknowns) domain, 1 node and 16 nodes.
//
// All speedups are normalised to the 1-node CPU time of each operation,
// exactly as in the paper. The per-phase work split and the halo volumes
// are the real censuses at 16M unknowns; GPU throughput ratios are the
// documented roofline parameters of the machine model (we have no K20x);
// the 16-node GPU column shows the overlap effect the paper highlights
// (GPU nodes scale better because the CPU hides communication).
#include "bench_scaling_common.hpp"

using namespace ffw;

int main() {
  bench::banner("Table III — individual MLFMA operations GPU speedups",
                "paper Table III / Sec. V-E1 (16M unknowns, 1 vs 16 nodes)");

  const ScalingModel& model = bench::calibrated_model();
  const auto paper = bench::make_paper_tree(4096);  // 16M unknowns

  struct PaperRow {
    const char* name;
    double gpu1, cpu16, gpu16;
  };
  const PaperRow paper_rows[] = {
      {"Multipole Expansion", 5.05, 16.30, 79.95},
      {"Aggregation", 5.92, 15.42, 78.71},
      {"Translation", 2.90, 12.86, 44.80},
      {"Disaggregation", 2.82, 13.77, 38.22},
      {"Local Expansion", 5.48, 15.55, 86.51},
      {"Near-Field Interactions", 3.92, 15.75, 62.76},
  };

  Table t({"MLFMA Operation", "GPU 1-node", "(paper)", "CPU 16-node",
           "(paper)", "GPU 16-node", "(paper)"});
  double cpu1_total = 0, gpu1_total = 0, cpu16_total = 0, gpu16_total = 0;
  for (int p = 0; p < static_cast<int>(MlfmaPhase::kCount); ++p) {
    const auto phase = static_cast<MlfmaPhase>(p);
    const auto ts = model.phase_scaling(paper->tree, paper->plan, phase, 16);
    cpu1_total += ts.cpu1;
    gpu1_total += ts.gpu1;
    cpu16_total += ts.cpu16;
    gpu16_total += ts.gpu16;
    t.add_row({phase_name(phase), fmt_speedup(ts.cpu1 / ts.gpu1),
               fmt_speedup(paper_rows[p].gpu1),
               fmt_speedup(ts.cpu1 / ts.cpu16),
               fmt_speedup(paper_rows[p].cpu16),
               fmt_speedup(ts.cpu1 / ts.gpu16),
               fmt_speedup(paper_rows[p].gpu16)});
  }
  t.add_row({"Overall", fmt_speedup(cpu1_total / gpu1_total),
             fmt_speedup(3.91), fmt_speedup(cpu1_total / cpu16_total),
             fmt_speedup(14.54), fmt_speedup(cpu1_total / gpu16_total),
             fmt_speedup(60.08)});
  std::printf("%s\n", t.to_string().c_str());

  const double overall_gpu1 = cpu1_total / gpu1_total;
  const double overall_cpu16 = cpu1_total / cpu16_total;
  const double overall_gpu16 = cpu1_total / gpu16_total;
  std::printf("shape checks:\n");
  std::printf("  dense ops speed up more than diagonal ops on GPU: %s\n",
              "YES (by construction of the roofline model — see "
              "machine.hpp)");
  const double gpu_node_scaling = overall_gpu16 / overall_gpu1;
  std::printf("  GPU nodes scale near-linearly to 16 nodes thanks to "
              "communication overlap: %s (%.2fx of 16; paper: 15.36x "
              "GPU vs 14.54x CPU)\n",
              gpu_node_scaling > 14.0 ? "YES" : "NO", gpu_node_scaling);
  std::printf("  overall GPU 1-node speedup %.2fx (paper 3.91x), "
              "CPU 16-node %.2fx (paper 14.54x), GPU 16-node %.2fx "
              "(paper 60.08x)\n",
              overall_gpu1, overall_cpu16, overall_gpu16);
  return 0;
}
