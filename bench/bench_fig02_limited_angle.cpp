// Figure 2: transmitters and receivers on a limited arc. Waves that
// single-scatter off the far side of the object miss the receivers, so
// the linear image loses those parts; multiple scattering redirects
// energy into the detectors and DBIM recovers them (paper Sec. II and
// ref. [12]).
//
// We place both arrays on a 90-degree arc on the +x side and image two
// scatterers: one facing the arrays, one in their shadow. The paper's
// claim is reproduced if the shadow-side object is recovered by DBIM
// markedly better than by the linear method.
#include "bench_common.hpp"
#include "dbim/born.hpp"
#include "dbim/dbim.hpp"
#include "io/image.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

namespace {

/// Mean recovered (real) contrast over one half of the object disk,
/// as a fraction of the true level — "how much of this part of the
/// object does the image actually show?".
double half_recovery(const Grid& grid, ccspan rec, double radius,
                     bool shadow_side, double true_level) {
  cplx s{};
  int n = 0;
  for (int iy = 0; iy < grid.nx(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      if (norm(p) > radius) continue;
      // Skip a band around the diameter so the halves are cleanly split.
      if (shadow_side ? p.x > -0.3 : p.x < 0.3) continue;
      s += rec[grid.pixel_index(ix, iy)];
      ++n;
    }
  }
  return (s.real() / n) / true_level;
}

}  // namespace

int main() {
  bench::banner("Fig. 2 — limited-angle arrays, linear vs nonlinear",
                "paper Fig. 2 (Sec. II): multiple scattering is critical "
                "for parts of the object whose single-scattered waves miss "
                "the detectors");
  Timer timer;

  ScenarioConfig cfg;
  cfg.nx = 64;
  cfg.num_transmitters = 16;
  cfg.num_receivers = 48;
  // Both arrays on the +x half circle (paper Fig. 2 geometry: detectors
  // exposed to the object at a limited angle).
  cfg.tx_angle_begin = -pi / 2;
  cfg.tx_angle_end = pi / 2;
  cfg.rx_angle_begin = -pi / 2;
  cfg.rx_angle_end = pi / 2;

  Grid grid(cfg.nx);
  // One extended, strongly scattering object: its +x half faces the
  // arrays; single-scattered waves from the -x half propagate away from
  // every detector, so only multiple scattering can reveal it.
  const double r_obj = 2.0;
  const double eps = 0.12;
  const cvec truth = disks(grid, {{Vec2{0, 0}, r_obj, cplx{eps, 0.0}}});
  Scenario scene(cfg, truth);
  const double true_level = eps * grid.k0() * grid.k0();

  BornOptions bopts;
  bopts.max_iterations = 40;
  const BornResult born = born_reconstruct(
      scene.grid(), scene.transceivers(), scene.measurements(), bopts);

  DbimOptions dopts;
  dopts.max_iterations = 35;
  const DbimResult dbim = dbim_reconstruct(
      scene.engine(), scene.transceivers(), scene.measurements(), dopts);

  const double born_front =
      half_recovery(grid, born.contrast, r_obj, false, true_level);
  const double born_shadow =
      half_recovery(grid, born.contrast, r_obj, true, true_level);
  const double dbim_front =
      half_recovery(grid, dbim.contrast, r_obj, false, true_level);
  const double dbim_shadow =
      half_recovery(grid, dbim.contrast, r_obj, true, true_level);

  Table t({"object half", "linear (Born) recovery", "nonlinear (DBIM) recovery"});
  t.add_row({"front half (faces arrays)",
             fmt_fixed(100.0 * born_front, 1) + "%",
             fmt_fixed(100.0 * dbim_front, 1) + "%"});
  t.add_row({"shadow half (hidden side)",
             fmt_fixed(100.0 * born_shadow, 1) + "%",
             fmt_fixed(100.0 * dbim_shadow, 1) + "%"});
  t.add_row({"whole-image RMSE",
             fmt_fixed(image_rmse(born.contrast, scene.true_contrast()), 3),
             fmt_fixed(image_rmse(dbim.contrast, scene.true_contrast()), 3)});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Shadow-side recovery advantage (DBIM / Born): %.2fx\n",
              dbim_shadow / born_shadow);
  std::printf("Paper's qualitative claim holds: %s\n",
              (dbim_shadow > born_shadow && dbim_front > born_front)
                  ? "YES (DBIM recovers more of the object everywhere, "
                    "including the hidden side)"
                  : "NO");

  write_pgm("fig02_true.pgm", grid, scene.true_contrast());
  write_pgm("fig02_linear.pgm", grid, born.contrast);
  write_pgm("fig02_nonlinear.pgm", grid, dbim.contrast);
  write_csv("fig02_limited_angle.csv",
            {{"born_front", {born_front}},
             {"born_shadow", {born_shadow}},
             {"dbim_front", {dbim_front}},
             {"dbim_shadow", {dbim_shadow}}});
  bench::note("images written to fig02_*.pgm");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  return 0;
}
