// Table I: the key MLFMA operators in matrix form — structure and number
// of types. Generated from the *real* operator factory, not hard-coded:
// the counts are read off the built tables, and the structural claims
// (dense / band-diagonal / diagonal) are what the implementation
// actually stores.
#include "bench_common.hpp"
#include "greens/nearfield.hpp"
#include "mlfma/operators.hpp"

using namespace ffw;

int main() {
  bench::banner("Table I — key MLFMA operators in matrix form",
                "paper Table I (Sec. IV-D)");

  Grid grid(128);
  QuadTree tree(grid);
  MlfmaPlan plan(tree, {});
  MlfmaOperators ops(tree, plan);
  NearFieldOperators near(tree);

  // Counts read from the built tables (per level where applicable).
  const int near_types = NearFieldOperators::kNumTypes;
  const int expansion_types = 1;  // one shared Q0 x 64 matrix
  const int interp_types = 1;     // one band matrix per level transition
  const std::size_t up_shift_types = ops.level(0).up_shift.size();
  const std::size_t trans_types = ops.level(0).translations.size();
  const std::size_t down_shift_types = ops.level(0).down_shift.size();
  const int local_types = 1;

  Table t({"MLFMA Operator", "Structure", "# Types", "paper"});
  t.add_row({"Near-Field Interactions", "Dense", std::to_string(near_types),
             "9"});
  t.add_row({"Multipole Expansion", "Dense", std::to_string(expansion_types),
             "1"});
  t.add_row({"Interpolations", "Band-Diagonal", std::to_string(interp_types),
             "1"});
  t.add_row({"Multipole Shiftings", "Diagonal",
             std::to_string(up_shift_types), "4"});
  t.add_row({"Translations", "Diagonal", std::to_string(trans_types), "40"});
  t.add_row({"Local Shiftings", "Diagonal",
             std::to_string(down_shift_types), "4"});
  t.add_row({"Anterpolations", "Band-Diagonal", std::to_string(interp_types),
             "1"});
  t.add_row({"Local Expansions", "Dense", std::to_string(local_types), "1"});
  std::printf("%s\n", t.to_string().c_str());

  // Structural facts backing the "Structure" column.
  std::printf("evidence:\n");
  std::printf("  expansion matrix: %zu x %zu dense complex\n",
              ops.expansion().rows(), ops.expansion().cols());
  std::printf("  local expansion: %zu x %zu dense complex\n",
              ops.local_expansion().rows(), ops.local_expansion().cols());
  std::printf("  near-field type 0: %zu x %zu dense complex (9 types)\n",
              near.type(0).rows(), near.type(0).cols());
  std::printf("  level-0 interpolation: %zu x %zu periodic band, width %zu\n",
              ops.level(0).interp.rows(), ops.level(0).interp.cols(),
              ops.level(0).interp.width());
  std::printf("  level-0 translation diagonals: %zu types x %d samples\n",
              ops.level(0).translations.size(), ops.level(0).samples);
  std::printf("  shared-table memory: %.2f MB (vs %.1f GB for a dense G0)\n",
              static_cast<double>(ops.bytes() + near.bytes()) / (1 << 20),
              static_cast<double>(grid.num_pixels()) * grid.num_pixels() *
                  sizeof(cplx) / (1 << 30));

  const bool ok = near_types == 9 && up_shift_types == 4 &&
                  trans_types == 40 && down_shift_types == 4;
  std::printf("\nAll type counts match paper Table I: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
