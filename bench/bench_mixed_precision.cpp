// Mixed-precision MLFMA ablation: the Precision::kMixed engine (fp32
// operator tables, fp32 spectra panels, fp32 halo wire format, fp64
// accumulation at the dense expansion boundaries) against the fp64
// reference, end to end:
//
//   1. serial blocked apply — per-phase wall times, per-RHS time, and
//      operator + workspace footprint for both engines;
//   2. partitioned apply at 4 ranks — per-tag halo traffic, asserting
//      the fp32 wire format moves exactly half the bytes of fp64 in the
//      same number of messages;
//   3. DBIM reconstruction at 64x64 — an unpreconditioned fixed-
//      tolerance fp64 baseline against the Krylov-acceleration stack
//      (near-field block preconditioner + Eisenstat-Walker forcing +
//      recycling) in fp64 and in mixed-precision iterative refinement
//      (forward/refined.hpp). Asserts the stack's >= 2x cut in total
//      BiCGStab iterations and that mixed is strictly faster than fp64
//      at equal (<= +0.001%) reconstruction RMSE.
//
// Writes BENCH_mixed_precision.json (see FFW_BENCH_JSON_DIR).
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "forward/backend.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dbim/dbim.hpp"
#include "linalg/block.hpp"
#include "mlfma/partitioned.hpp"
#include "phantom/setup.hpp"

using namespace ffw;

namespace {

struct ApplyProfile {
  PhaseTimes times;            // summed over `reps` applies
  double seconds_per_apply = 0.0;
  std::uint64_t engine_bytes = 0;
  std::uint64_t shrunk_bytes = 0;  // after shrink_workspace()
};

ApplyProfile profile_apply(const QuadTree& tree, Precision precision,
                           std::size_t nrhs, ccspan x, cspan y, int reps) {
  MlfmaParams params;
  params.precision = precision;
  MlfmaEngine engine(tree, params);
  engine.apply_block(x, y, nrhs);  // warm-up grows the spectra panels
  engine.clear_phase_times();
  Timer timer;
  for (int rep = 0; rep < reps; ++rep) engine.apply_block(x, y, nrhs);
  ApplyProfile out;
  out.seconds_per_apply = timer.seconds() / reps;
  out.times = engine.phase_times();
  out.engine_bytes = engine.bytes();
  engine.shrink_workspace();
  out.shrunk_bytes = engine.bytes();
  return out;
}

struct WireProfile {
  std::uint64_t bytes = 0, messages = 0;
  int edges = 0;  // directed (src, dst) pairs that exchanged halo data
  std::map<int, TagTraffic> by_tag;
};

WireProfile profile_wire(const QuadTree& tree, Precision precision, int ranks,
                         std::size_t nrhs, ccspan x) {
  MlfmaParams params;
  params.precision = precision;
  PartitionedMlfma dist(tree, params, ranks);
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  VCluster vc(ranks);
  vc.run([&](Comm& comm) {
    const std::size_t b = dist.leaf_begin(comm.rank()) * np * nrhs;
    const std::size_t sz = dist.local_pixels(comm.rank()) * nrhs;
    cvec y_local(sz);
    dist.apply_block(comm, ccspan{x.data() + b, sz}, y_local, nrhs, 0,
                     ApplySchedule::kOverlapped);
  });
  const TrafficStats traffic = vc.traffic();
  WireProfile out;
  out.bytes = traffic.total_bytes();
  out.messages = traffic.total_messages();
  for (const std::uint64_t b : traffic.bytes)
    if (b > 0) ++out.edges;
  out.by_tag = vc.traffic_by_tag();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TraceOptions trace = bench::parse_trace_flag(argc, argv);
  const int nx = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::size_t nrhs = argc > 2
                               ? static_cast<std::size_t>(std::atoi(argv[2]))
                               : 8;
  bench::banner("Mixed-precision MLFMA — fp32 tables/panels/wire vs fp64",
                "precision extension of paper Sec. IV: fp32 storage and "
                "streaming with fp64 accumulation and an fp64-refined "
                "Krylov outer loop");

  bench::JsonWriter json("BENCH_mixed_precision");
  json.field("bench", "mixed_precision");
  json.field("backend", backend_name(BackendKind::kMlfma));

  // --- 1. Serial blocked apply: per-phase times and footprint.
  Grid grid(nx);
  QuadTree tree(grid);
  const BlockLayout lo{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                       tree.num_leaves()};
  std::printf("apply: grid %dx%d (%zu unknowns), nrhs=%zu\n\n", nx, nx,
              grid.num_pixels(), nrhs);
  cvec x(lo.size()), y(lo.size());
  Rng rng(42);
  rng.fill_cnormal(x);
  const int reps = 5;
  const ApplyProfile f64 =
      profile_apply(tree, Precision::kDouble, nrhs, x, y, reps);
  const ApplyProfile mix =
      profile_apply(tree, Precision::kMixed, nrhs, x, y, reps);

  Table t({"phase", "fp64 [ms]", "mixed [ms]", "speedup"});
  for (std::size_t p = 0; p < static_cast<std::size_t>(MlfmaPhase::kCount);
       ++p) {
    const double a = f64.times.seconds[p] / reps;
    const double b = mix.times.seconds[p] / reps;
    char sa[32], sb[32], sc[32];
    std::snprintf(sa, sizeof sa, "%.2f", 1e3 * a);
    std::snprintf(sb, sizeof sb, "%.2f", 1e3 * b);
    std::snprintf(sc, sizeof sc, "%.2fx", b > 0 ? a / b : 0.0);
    t.add_row({phase_name(static_cast<MlfmaPhase>(p)), sa, sb, sc});
  }
  {
    char sa[32], sb[32], sc[32];
    std::snprintf(sa, sizeof sa, "%.2f", 1e3 * f64.seconds_per_apply);
    std::snprintf(sb, sizeof sb, "%.2f", 1e3 * mix.seconds_per_apply);
    std::snprintf(sc, sizeof sc, "%.2fx",
                  f64.seconds_per_apply / mix.seconds_per_apply);
    t.add_row({"total block apply", sa, sb, sc});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("engine bytes: fp64 %.1f MB (%.1f MB shrunk), "
              "mixed %.1f MB (%.1f MB shrunk)\n\n",
              f64.engine_bytes / 1048576.0, f64.shrunk_bytes / 1048576.0,
              mix.engine_bytes / 1048576.0, mix.shrunk_bytes / 1048576.0);

  json.begin_object("apply");
  json.field("nx", nx);
  json.field("nrhs", static_cast<std::uint64_t>(nrhs));
  json.field("reps", reps);
  json.field("fp64_block_apply_s", f64.seconds_per_apply);
  json.field("mixed_block_apply_s", mix.seconds_per_apply);
  json.field("speedup", f64.seconds_per_apply / mix.seconds_per_apply);
  json.field("fp64_engine_bytes", f64.engine_bytes);
  json.field("mixed_engine_bytes", mix.engine_bytes);
  json.field("fp64_shrunk_bytes", f64.shrunk_bytes);
  json.field("mixed_shrunk_bytes", mix.shrunk_bytes);
  json.begin_array("phases");
  for (std::size_t p = 0; p < static_cast<std::size_t>(MlfmaPhase::kCount);
       ++p) {
    json.begin_object();
    json.field("phase", phase_name(static_cast<MlfmaPhase>(p)));
    json.field("fp64_s", f64.times.seconds[p] / reps);
    json.field("mixed_s", mix.times.seconds[p] / reps);
    json.end();
  }
  json.end();
  json.end();

  // --- 2. Partitioned apply: fp32 halo wire format at 4 ranks.
  const int ranks = 4;
  const std::size_t wire_nrhs = 4;
  cvec xw(grid.num_pixels() * wire_nrhs);
  Rng rng2(7);
  rng2.fill_cnormal(xw);
  const WireProfile w64 =
      profile_wire(tree, Precision::kDouble, ranks, wire_nrhs, xw);
  const WireProfile w32 =
      profile_wire(tree, Precision::kMixed, ranks, wire_nrhs, xw);
  FFW_CHECK_MSG(w64.messages == w32.messages,
                "precision must not change the halo message pattern");
  FFW_CHECK_MSG(w64.bytes == 2 * w32.bytes,
                "fp32 wire format must move exactly half the fp64 bytes");

  std::printf("wire (%d ranks, nrhs=%zu): fp64 %llu bytes, mixed %llu bytes "
              "in %llu messages over %d edges (%.1f KB/edge -> %.1f KB/edge)\n",
              ranks, wire_nrhs, static_cast<unsigned long long>(w64.bytes),
              static_cast<unsigned long long>(w32.bytes),
              static_cast<unsigned long long>(w32.messages), w32.edges,
              w64.bytes / 1024.0 / w64.edges, w32.bytes / 1024.0 / w32.edges);
  Table wt({"tag", "fp64 bytes", "mixed bytes", "messages"});
  for (const auto& [tag, tt] : w64.by_tag) {
    const TagTraffic mt = w32.by_tag.at(tag);
    wt.add_row({std::to_string(tag), std::to_string(tt.bytes),
                std::to_string(mt.bytes), std::to_string(mt.messages)});
  }
  std::printf("%s\n", wt.to_string().c_str());

  json.begin_object("wire");
  json.field("ranks", ranks);
  json.field("nrhs", static_cast<std::uint64_t>(wire_nrhs));
  json.field("edges", w32.edges);
  json.field("fp64_bytes", w64.bytes);
  json.field("mixed_bytes", w32.bytes);
  json.field("messages", w32.messages);
  json.field("fp64_bytes_per_edge",
             static_cast<double>(w64.bytes) / w64.edges);
  json.field("mixed_bytes_per_edge",
             static_cast<double>(w32.bytes) / w32.edges);
  json.begin_array("tags");
  for (const auto& [tag, tt] : w64.by_tag) {
    const TagTraffic mt = w32.by_tag.at(tag);
    json.begin_object();
    json.field("tag", tag);
    json.field("fp64_bytes", tt.bytes);
    json.field("mixed_bytes", mt.bytes);
    json.field("messages", mt.messages);
    json.end();
  }
  json.end();
  json.end();

  // --- 3. DBIM reconstruction: unpreconditioned fixed-tolerance fp64
  // baseline vs the full Krylov-acceleration stack (near-field block
  // preconditioner + Eisenstat-Walker forcing + recycling) in fp64 and
  // in mixed precision. Two acceptance gates live here:
  //   * the accelerated fp64 run must spend <= half the baseline's total
  //     BiCGStab iterations at the same base tolerance;
  //   * the mixed accelerated run must be strictly faster than the fp64
  //     accelerated run at equal RMSE (<= +0.001% relative).
  ScenarioConfig cfg;
  cfg.nx = 128;
  cfg.num_transmitters = 16;
  cfg.num_receivers = 32;
  cfg.forward.tol = 1e-6;  // base (and baseline's fixed) Krylov tolerance
  Scenario scene(cfg, shepp_logan(Grid(cfg.nx), 0.02));
  std::printf("dbim: grid %dx%d, %d Tx, %d Rx, Shepp-Logan 0.02, "
              "base tol %.0e\n",
              cfg.nx, cfg.nx, cfg.num_transmitters, cfg.num_receivers,
              cfg.forward.tol);

  MlfmaParams mixed_params = cfg.mlfma;
  mixed_params.precision = Precision::kMixed;
  MlfmaEngine mixed_engine(scene.tree(), mixed_params);

  struct DbimRun {
    DbimResult res;
    double seconds = 0.0;
    double rmse = 0.0;
  };
  const auto run_dbim = [&](const DbimOptions& o) {
    DbimRun out;
    Timer t;
    out.res = dbim_reconstruct(scene.engine(), scene.transceivers(),
                               scene.measurements(), o, cfg.forward);
    out.seconds = t.seconds();
    out.rmse = image_rmse(out.res.contrast, scene.true_contrast());
    return out;
  };

  DbimOptions plain_opts;
  plain_opts.max_iterations = 10;
  DbimOptions accel_opts = plain_opts;
  accel_opts.near_precondition = true;
  accel_opts.adaptive_forcing = true;
  accel_opts.recycle_depth = 2;
  DbimOptions mixed_opts = accel_opts;
  mixed_opts.mixed_engine = &mixed_engine;

  const DbimRun plain = run_dbim(plain_opts);
  const DbimRun accel = run_dbim(accel_opts);
  const DbimRun mixed = run_dbim(mixed_opts);

  const double iter_cut =
      static_cast<double>(plain.res.history.bicgstab_iterations) /
      static_cast<double>(accel.res.history.bicgstab_iterations);
  const double rmse_rel_diff =
      accel.rmse > 0 ? (mixed.rmse - accel.rmse) / accel.rmse : 0.0;

  Table dt({"run", "BiCGS iters", "precond setup [ms]", "RMSE vs truth",
            "residual [%]", "time [s]"});
  const auto dbim_row = [&](const char* name, const DbimRun& r) {
    char si[32], sp[32], sr[32], se[32], st[32];
    std::snprintf(si, sizeof si, "%llu",
                  static_cast<unsigned long long>(
                      r.res.history.bicgstab_iterations));
    std::snprintf(sp, sizeof sp, "%.1f",
                  1e3 * r.res.history.precond_setup_seconds);
    std::snprintf(sr, sizeof sr, "%.6f", r.rmse);
    std::snprintf(se, sizeof se, "%.4f",
                  100.0 * r.res.history.relative_residual.back());
    std::snprintf(st, sizeof st, "%.2f", r.seconds);
    dt.add_row({name, si, sp, sr, se, st});
  };
  dbim_row("fp64 plain (baseline)", plain);
  dbim_row("fp64 accelerated", accel);
  dbim_row("mixed accelerated", mixed);
  std::printf("%s\n", dt.to_string().c_str());
  std::printf("  BiCGStab iteration cut (plain / accelerated): %.2fx "
              "(must be >= 2x)\n",
              iter_cut);
  std::printf("  mixed vs fp64 accelerated: %.2fx time, RMSE %+.6f%% "
              "(must be <= +0.001%%)\n\n",
              accel.seconds / mixed.seconds, 100.0 * rmse_rel_diff);

  FFW_CHECK_MSG(iter_cut >= 2.0,
                "acceleration stack cut BiCGStab iterations by < 2x");
  FFW_CHECK_MSG(mixed.seconds < accel.seconds,
                "mixed-precision accelerated DBIM not faster than fp64");
  FFW_CHECK_MSG(rmse_rel_diff <= 1e-5,
                "mixed-precision DBIM reconstruction drifted > 0.001% "
                "above the fp64 RMSE");

  json.begin_object("dbim");
  json.field("nx", cfg.nx);
  json.field("transmitters", cfg.num_transmitters);
  json.field("receivers", cfg.num_receivers);
  json.field("iterations", plain_opts.max_iterations);
  json.field("base_tol", cfg.forward.tol);
  json.begin_array("runs");
  const auto dbim_json = [&](const char* name, const DbimRun& r) {
    json.begin_object();
    json.field("run", name);
    json.field("seconds", r.seconds);
    json.field("rmse", r.rmse);
    json.field("final_residual", r.res.history.relative_residual.back());
    json.field("bicgstab_total_iters", r.res.history.bicgstab_iterations);
    json.field("precond_setup_s", r.res.history.precond_setup_seconds);
    json.field("forward_solves", r.res.history.forward_solves);
    json.field("operator_applications", r.res.history.operator_applications);
    json.end();
  };
  dbim_json("fp64_plain", plain);
  dbim_json("fp64_accel", accel);
  dbim_json("mixed_accel", mixed);
  json.end();
  json.field("iter_cut_vs_baseline", iter_cut);
  json.field("mixed_speedup_vs_fp64_accel", accel.seconds / mixed.seconds);
  json.field("mixed_rmse_rel_diff", rmse_rel_diff);
  json.end();
  json.close();

  bench::write_trace(trace);

  bench::note("the mixed engine halves every operator-table, spectra-panel "
              "and halo-wire byte; with fp64 kept only at the dense "
              "expansion boundaries and in the refined Krylov outer loop, "
              "the reconstruction is indistinguishable from pure fp64 — "
              "and the acceleration stack (self-block preconditioner, "
              "adaptive forcing, recycling) halves the Krylov work on top.");
  return 0;
}
