// Sec. III-C: O(N) computational and storage complexity. Measures the
// wall time of a full MLFMA application over a sweep of domain sizes
// (so the number of unknowns N grows 4x per step), fits the scaling
// exponent, and contrasts MLFMA storage with the dense interaction
// matrix the paper says would need 16 TB at 1M unknowns.
#include <cmath>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "mlfma/engine.hpp"
#include "perfmodel/census.hpp"

using namespace ffw;

int main() {
  bench::banner("MLFMA O(N) complexity sweep",
                "paper Sec. III-C (computational and storage complexity)");
  Timer total;

  Table t({"domain", "N (pixels)", "levels", "matvec time",
           "time / N (ns)", "MLFMA memory", "dense G0 memory"});
  std::vector<double> ns, times;
  for (int nx : {64, 128, 256, 512}) {
    Grid grid(nx);
    QuadTree tree(grid);
    MlfmaEngine engine(tree);
    const std::size_t n = grid.num_pixels();
    Rng rng(nx);
    cvec x(n), y(n);
    rng.fill_cnormal(x);
    engine.apply(x, y);  // warm up
    Timer timer;
    const int reps = nx <= 128 ? 5 : 2;
    for (int r = 0; r < reps; ++r) engine.apply(x, y);
    const double secs = timer.seconds() / reps;

    MlfmaPlan plan(tree, {});
    const MemoryCensus mem = census_memory(tree, plan);
    t.add_row({fmt_fixed(nx / 10.0, 1) + " lambda", std::to_string(n),
               std::to_string(tree.num_levels()),
               fmt_fixed(secs * 1e3, 1) + " ms",
               fmt_fixed(secs / n * 1e9, 1),
               fmt_fixed((mem.operator_bytes + mem.panel_bytes) / 1048576.0,
                         1) + " MB",
               fmt_fixed(mem.dense_equivalent_bytes / 1073741824.0, 2) +
                   " GB"});
    ns.push_back(static_cast<double>(n));
    times.push_back(secs);
  }
  std::printf("%s\n", t.to_string().c_str());

  // Least-squares slope of log(time) vs log(N).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const double lx = std::log(ns[i]), ly = std::log(times[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double m = static_cast<double>(ns.size());
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  std::printf("fitted scaling exponent: time ~ N^%.2f  (paper: O(N), "
              "i.e. exponent ~1; direct product would be 2)\n", slope);

  // Paper's storage headline: 1M unknowns -> 16 TB dense; 16M -> 4 PB.
  for (int nx : {1024, 4096}) {
    Grid grid(nx);
    QuadTree tree(grid);
    MlfmaPlan plan(tree, {});
    const MemoryCensus mem = census_memory(tree, plan);
    std::printf("at %5.1f lambda (%3.0fM unknowns): dense G0 = %.1f TB, "
                "MLFMA tables+panels = %.1f GB\n", nx / 10.0,
                grid.num_pixels() / 1048576.0,
                mem.dense_equivalent_bytes / 1.0995116e12,
                (mem.operator_bytes + mem.panel_bytes) / 1.0737418e9);
  }
  std::printf("(paper quotes 16 TB at 1M and 4 PB at 16M with "
              "double-precision complex)\n");

  write_csv("complexity_sweep.csv", {{"N", ns}, {"seconds", times}});
  std::printf("elapsed: %.1f s\n", total.seconds());
  const bool ok = slope < 1.35;
  std::printf("O(N)-like scaling confirmed: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
