// Rank-level tracing and counters (observability subsystem).
//
// PRs 1-3 shipped three stacked performance claims (blocked apply,
// overlap scheduling, mixed precision) justified by end-to-end bench
// timings only; the paper argues from per-phase breakdowns (Fig. 8's
// overlap ablation, Table III's operator timings). This module provides
// the per-rank, per-thread evidence: scoped spans on a ring buffer plus
// a small set of fixed counters, exportable as chrome://tracing JSON and
// as a per-rank summary (obs/summary.hpp aggregates it across ranks with
// the existing Comm collectives).
//
// Design constraints (DESIGN.md Sec. 11):
//  * Disabled cost is one relaxed atomic load + branch per call site —
//    tracing defaults to off and tier-1 timings are unaffected.
//  * Each thread records into its own fixed-capacity ring buffer (oldest
//    events are overwritten, a drop counter keeps the loss visible), so
//    recording never allocates in steady state and never contends with
//    other threads except with a snapshotting reader (per-log mutex).
//  * Ranks are vcluster threads: VCluster::run tags each rank thread via
//    set_rank(), so spans and counters attribute to the rank that
//    recorded them, and the wire-byte counter is bridged straight from
//    the vcluster send path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ffw::obs {

/// Fixed counter set. Nanosecond counters are fed by spans constructed
/// with an `accumulate` counter (e.g. halo-wait vs compute time of the
/// partitioned apply); the rest are bumped explicitly at the event site.
enum class Counter : int {
  kBicgstabIterations = 0,  // block BiCGStab iterations (forward/)
  kRefinementRounds,        // mixed-precision refinement rounds
  kMlfmaApplications,       // per-RHS operator applications
  kHaloWaitNs,              // time blocked on halo recv / wait_any
  kComputeNs,               // time in local translate/near/downward work
  kWireBytes,               // bytes sent (bridged from vcluster)
  kFaultsInjected,          // fault-injection actions fired (vcluster)
  kCrcFailures,             // corrupt frames detected at recv
  kDeadlineAborts,          // waits that expired into DeadlineExceeded
  kBicgstabTotalIters,      // per-column BiCGStab iterations (all RHS)
  kPrecondSetupNs,          // near-field block preconditioner factor time
  kPrecondApplyNs,          // preconditioner triangular-solve time
  kRecycleHits,             // Krylov-recycled initial guesses applied
  kCbsIterations,           // convergent Born series iterations (forward/cbs)
  kFftNs,                   // time in padded-FFT convolutions (CBS backend)
  kFftPlanHits,             // fp64 1-D FFT plan-cache hits (fft/fft2)
  kFftPlanMisses,           // fp64 1-D FFT plan-cache misses (plans built)
  kTableCacheHits,          // OperatorTableCache hits (service/table_cache)
  kTableCacheMisses,        // OperatorTableCache misses (artifacts built)
  kTableCacheEvictions,     // OperatorTableCache LRU evictions
  kTableBuildNs,            // time building cached operator-table artifacts
  kTransportSyscalls,       // futex/socket syscalls issued by a transport
  kRingFullStalls,          // shm-ring producer backoffs on a full ring
  kTransportWireBytes,      // physical transport bytes incl. envelopes
  kCount
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
const char* counter_name(Counter c);

inline constexpr std::int64_t kNoArg = -1;

namespace detail {
extern std::atomic<bool> g_enabled;

/// One closed span. `name` must have static storage duration (call
/// sites pass string literals); `arg` is a free slot for the MLFMA
/// level or similar.
struct SpanEvent {
  const char* name;
  std::int64_t arg;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::uint16_t depth;
};

std::uint64_t now_ns();
/// Enters a nesting level; returns the depth the span runs at.
std::uint16_t enter_span();
/// Records the closed span into the calling thread's ring buffer and
/// leaves the nesting level opened by the matching enter_span().
void record_span(const char* name, std::int64_t arg, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::uint16_t depth);
void add_counter(Counter c, std::uint64_t v);
}  // namespace detail

/// Master switch. Off by default; every recording call site reduces to a
/// single branch while disabled.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Tags the calling thread with the vcluster rank it executes (no-op
/// while disabled). VCluster::run calls this on every rank thread.
void set_rank(int rank);

/// Drops all recorded events, counters and drop counts on every thread
/// (registrations stay). Call only while no thread is recording.
void reset();

/// Ring capacity (span events per thread) applied to logs as they fill;
/// lowering it below a log's current size stops its growth. Default 1<<15.
void set_ring_capacity(std::size_t events);

/// Bumps a counter on the calling thread (attributed to its rank).
inline void add(Counter c, std::uint64_t v) {
  if (!enabled()) return;
  detail::add_counter(c, v);
}

/// RAII span. Records begin/end on destruction; optionally accumulates
/// its own duration into a nanosecond counter (kHaloWaitNs / kComputeNs).
class SpanScope {
 public:
  explicit SpanScope(const char* name, std::int64_t arg = kNoArg,
                     Counter accumulate = Counter::kCount)
      : name_(name), arg_(arg), acc_(accumulate), live_(enabled()) {
    if (!live_) return;
    depth_ = detail::enter_span();
    begin_ = detail::now_ns();
  }
  ~SpanScope() {
    if (!live_) return;
    const std::uint64_t end = detail::now_ns();
    detail::record_span(name_, arg_, begin_, end, depth_);
    if (acc_ != Counter::kCount) detail::add_counter(acc_, end - begin_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  Counter acc_;
  std::uint64_t begin_ = 0;
  std::uint16_t depth_ = 0;
  bool live_;
};

#define FFW_OBS_CONCAT_(a, b) a##b
#define FFW_OBS_CONCAT(a, b) FFW_OBS_CONCAT_(a, b)
/// Scoped span: FFW_TRACE_SPAN("translate", level) — records from here
/// to the end of the enclosing block when tracing is enabled.
#define FFW_TRACE_SPAN(...) \
  ::ffw::obs::SpanScope FFW_OBS_CONCAT(ffw_trace_span_, __LINE__){__VA_ARGS__}

// ---- Read side (export and aggregation inputs) ----

/// Copy of one thread's log, taken under that log's mutex.
struct ThreadSnapshot {
  int rank = 0;
  std::uint64_t tid = 0;
  std::uint64_t dropped = 0;
  std::vector<detail::SpanEvent> events;
  std::array<std::uint64_t, kNumCounters> counters{};
};
std::vector<ThreadSnapshot> snapshot();

/// Total wall-nanoseconds and span count per span name, summed over all
/// threads tagged with `rank`, sorted by name. The per-rank input of the
/// cross-rank summary (obs/summary.hpp).
struct PhaseTotal {
  std::string name;
  std::uint64_t ns = 0;
  std::uint64_t count = 0;
};
std::vector<PhaseTotal> phase_totals(int rank);

/// Counter totals over all threads tagged with `rank`.
std::array<std::uint64_t, kNumCounters> counter_totals(int rank);

/// Writes every recorded span as a chrome://tracing "traceEvents" JSON
/// file (pid = rank, tid = per-thread registration index, complete "X"
/// events in microseconds). Returns false if the file cannot be opened.
bool write_chrome_trace(const std::string& path);

}  // namespace ffw::obs
