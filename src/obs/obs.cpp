#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "io/json.hpp"

namespace ffw::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kBicgstabIterations: return "bicgstab_iterations";
    case Counter::kRefinementRounds: return "refinement_rounds";
    case Counter::kMlfmaApplications: return "mlfma_applications";
    case Counter::kHaloWaitNs: return "halo_wait_ns";
    case Counter::kComputeNs: return "compute_ns";
    case Counter::kWireBytes: return "wire_bytes";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kCrcFailures: return "crc_failures";
    case Counter::kDeadlineAborts: return "deadline_aborts";
    case Counter::kBicgstabTotalIters: return "bicgstab_total_iters";
    case Counter::kPrecondSetupNs: return "precond_setup_ns";
    case Counter::kPrecondApplyNs: return "precond_apply_ns";
    case Counter::kRecycleHits: return "recycle_hits";
    case Counter::kCbsIterations: return "cbs_iterations";
    case Counter::kFftNs: return "fft_ns";
    case Counter::kFftPlanHits: return "fft_plan_hits";
    case Counter::kFftPlanMisses: return "fft_plan_misses";
    case Counter::kTableCacheHits: return "table_cache_hits";
    case Counter::kTableCacheMisses: return "table_cache_misses";
    case Counter::kTableCacheEvictions: return "table_cache_evictions";
    case Counter::kTableBuildNs: return "table_build_ns";
    case Counter::kTransportSyscalls: return "transport_syscalls";
    case Counter::kRingFullStalls: return "ring_full_stalls";
    case Counter::kTransportWireBytes: return "transport_wire_bytes";
    default: return "?";
  }
}

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

std::atomic<std::size_t> g_ring_capacity{std::size_t{1} << 15};

/// One thread's recording state. The mutex only ever contends with a
/// snapshotting reader (snapshot/reset/export) — recording threads each
/// own their log, so lock acquisition is uncontended in steady state.
struct ThreadLog {
  std::mutex mu;
  int rank = 0;
  std::uint64_t tid = 0;
  std::uint16_t depth = 0;
  std::uint64_t dropped = 0;
  std::size_t head = 0;  // overwrite cursor once the ring is full
  std::vector<SpanEvent> events;
  std::array<std::uint64_t, kNumCounters> counters{};
};

/// Owns every ThreadLog for the process lifetime: rank threads die with
/// each VCluster::run, but their logs must survive for export, and the
/// surviving threads' thread_local pointers must stay valid across
/// reset(). Logs are therefore never deallocated, only cleared.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during exit
  return *r;
}

ThreadLog& local_log() {
  thread_local ThreadLog* log = nullptr;
  if (log == nullptr) {
    Registry& reg = registry();
    std::lock_guard lk(reg.mu);
    reg.logs.push_back(std::make_unique<ThreadLog>());
    log = reg.logs.back().get();
    log->tid = reg.logs.size() - 1;
  }
  return *log;
}

}  // namespace

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

std::uint16_t enter_span() {
  ThreadLog& log = local_log();
  std::lock_guard lk(log.mu);
  return log.depth++;
}

void record_span(const char* name, std::int64_t arg, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::uint16_t depth) {
  ThreadLog& log = local_log();
  std::lock_guard lk(log.mu);
  if (log.depth > 0) --log.depth;
  const SpanEvent ev{name, arg, begin_ns, end_ns, depth};
  const std::size_t cap = g_ring_capacity.load(std::memory_order_relaxed);
  if (log.events.size() < cap) {
    log.events.push_back(ev);
    return;
  }
  // Ring full: overwrite the oldest slot and account the loss.
  if (log.events.empty()) return;  // capacity forced to zero
  log.events[log.head] = ev;
  log.head = (log.head + 1) % log.events.size();
  ++log.dropped;
}

void add_counter(Counter c, std::uint64_t v) {
  ThreadLog& log = local_log();
  std::lock_guard lk(log.mu);
  log.counters[static_cast<std::size_t>(c)] += v;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_rank(int rank) {
  if (!enabled()) return;
  detail::ThreadLog& log = detail::local_log();
  std::lock_guard lk(log.mu);
  log.rank = rank;
}

void reset() {
  detail::Registry& reg = detail::registry();
  std::lock_guard lk(reg.mu);
  for (auto& log : reg.logs) {
    std::lock_guard llk(log->mu);
    log->events.clear();
    log->events.shrink_to_fit();
    log->head = 0;
    log->dropped = 0;
    log->depth = 0;
    log->counters.fill(0);
  }
}

void set_ring_capacity(std::size_t events) {
  detail::g_ring_capacity.store(events, std::memory_order_relaxed);
}

std::vector<ThreadSnapshot> snapshot() {
  detail::Registry& reg = detail::registry();
  std::lock_guard lk(reg.mu);
  std::vector<ThreadSnapshot> out;
  out.reserve(reg.logs.size());
  for (auto& log : reg.logs) {
    std::lock_guard llk(log->mu);
    ThreadSnapshot s;
    s.rank = log->rank;
    s.tid = log->tid;
    s.dropped = log->dropped;
    s.events = log->events;
    s.counters = log->counters;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<PhaseTotal> phase_totals(int rank) {
  std::map<std::string, PhaseTotal> acc;
  for (const ThreadSnapshot& s : snapshot()) {
    if (s.rank != rank) continue;
    for (const detail::SpanEvent& ev : s.events) {
      PhaseTotal& t = acc[ev.name];
      t.ns += ev.end_ns - ev.begin_ns;
      t.count += 1;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(acc.size());
  for (auto& [name, t] : acc) {
    t.name = name;
    out.push_back(std::move(t));
  }
  return out;  // std::map iteration is already name-sorted
}

std::array<std::uint64_t, kNumCounters> counter_totals(int rank) {
  std::array<std::uint64_t, kNumCounters> out{};
  for (const ThreadSnapshot& s : snapshot()) {
    if (s.rank != rank) continue;
    for (std::size_t i = 0; i < kNumCounters; ++i) out[i] += s.counters[i];
  }
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<ThreadSnapshot> snaps = snapshot();
  JsonWriter json(path);
  if (!json.ok()) return false;
  json.begin_array("traceEvents");
  // Process metadata: one "process" per rank so chrome://tracing groups
  // rank timelines.
  std::vector<int> ranks;
  for (const ThreadSnapshot& s : snaps) ranks.push_back(s.rank);
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  for (const int r : ranks) {
    json.begin_object();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", r);
    json.begin_object("args");
    json.field("name", "rank " + std::to_string(r));
    json.end();
    json.end();
  }
  for (const ThreadSnapshot& s : snaps) {
    for (const detail::SpanEvent& ev : s.events) {
      json.begin_object();
      json.field("name", ev.name);
      json.field("ph", "X");
      json.field("pid", s.rank);
      json.field("tid", static_cast<std::uint64_t>(s.tid));
      json.field("ts", static_cast<double>(ev.begin_ns) * 1e-3);
      json.field("dur", static_cast<double>(ev.end_ns - ev.begin_ns) * 1e-3);
      if (ev.arg != kNoArg) {
        json.begin_object("args");
        json.field("arg", static_cast<std::int64_t>(ev.arg));
        json.end();
      }
      json.end();
    }
  }
  json.end();
  json.close();
  return true;
}

}  // namespace ffw::obs
