// Cross-rank aggregation of the obs spans and counters.
//
// collect_summary() is a *collective*: every rank of the communicator
// contributes its local per-phase wall-time totals and counter values,
// and every rank returns the identical min/median/max-across-ranks
// table. The exchange uses only the existing Comm collectives
// (allreduce_sum / allreduce_max), so it runs inside a VCluster::run
// exactly like the solver's own reductions and its traffic shows up in
// the same per-edge accounting — call it after obs::set_enabled(false)
// if the collection itself must not perturb the wire-byte counter.
//
// Ranks may record different span-name sets (a rank whose halos all
// arrive during local work never parks in wait_any, for example): the
// summary is built over the union of names, with zero rows for phases
// a rank never entered.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "vcluster/comm.hpp"

namespace ffw::obs {

/// Per-phase wall-time distribution across ranks (totals per rank).
struct PhaseStats {
  std::string name;
  double min_ms = 0.0;
  double med_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t count = 0;  // span count summed over ranks
};

/// Per-counter distribution across ranks.
struct CounterStats {
  Counter counter = Counter::kCount;
  std::uint64_t min = 0;
  std::uint64_t med = 0;
  std::uint64_t max = 0;
  std::uint64_t total = 0;
};

struct ClusterSummary {
  int nranks = 0;
  std::vector<PhaseStats> phases;
  std::vector<CounterStats> counters;
};

/// Collective over `comm` (all ranks must call). Aggregates the calling
/// rank's obs data under rank id `comm.rank() - rank_base` and returns
/// the same summary on every rank.
ClusterSummary collect_summary(Comm& comm, int rank_base = 0);

/// Fixed-width text table (phases then counters) for bench output.
std::string format_summary(const ClusterSummary& s);

}  // namespace ffw::obs
