#include "obs/summary.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/table.hpp"

namespace ffw::obs {

namespace {

constexpr int kTagSummary = -3000;  // reserved by convention (< collectives)

/// NUL-joined serialization of a sorted name list (names never contain
/// NUL — they are C++ string literals at the call sites).
std::string join_names(const std::vector<PhaseTotal>& totals) {
  std::string out;
  for (const PhaseTotal& t : totals) {
    out += t.name;
    out += '\0';
  }
  return out;
}

std::vector<std::string> split_names(const std::vector<char>& joined) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < joined.size(); ++i) {
    if (joined[i] == '\0') {
      out.emplace_back(joined.data() + begin, i - begin);
      begin = i + 1;
    }
  }
  return out;
}

/// min/median/max of one row-set column. `vals` is modified (sorted).
template <typename T>
void min_med_max(std::vector<T>& vals, T& mn, T& md, T& mx) {
  std::sort(vals.begin(), vals.end());
  mn = vals.front();
  mx = vals.back();
  md = vals[vals.size() / 2];
}

}  // namespace

ClusterSummary collect_summary(Comm& comm, int rank_base) {
  const int p = comm.size();
  const int rank = comm.rank() - rank_base;
  FFW_CHECK(rank >= 0 && rank < p);

  ClusterSummary out;
  out.nranks = p;

  // --- Phase name union. Ranks may legitimately record different span
  // sets (a rank whose halos all arrive during local work never parks
  // in wait_any, so it has no halo-wait span): rank 0 gathers every
  // rank's sorted name list, forms the sorted union, and distributes it
  // — the same gather-to-0 + fan-out shape Comm::allreduce_max uses —
  // so the (rank x phase) matrix below is aligned on all ranks, with
  // zero rows for phases a rank never entered.
  const std::vector<PhaseTotal> local = phase_totals(rank);
  std::vector<std::string> names;
  if (comm.rank() == rank_base) {
    std::set<std::string> uni;
    for (const PhaseTotal& t : local) uni.insert(t.name);
    for (int r = 1; r < p; ++r) {
      const std::vector<char> theirs =
          comm.recv<char>(rank_base + r, kTagSummary);
      for (std::string& n : split_names(theirs)) uni.insert(std::move(n));
    }
    names.assign(uni.begin(), uni.end());
    std::string joined;
    for (const std::string& n : names) {
      joined += n;
      joined += '\0';
    }
    for (int r = 1; r < p; ++r) {
      comm.send(rank_base + r, kTagSummary - 1,
                std::span<const char>(joined.data(), joined.size()));
    }
  } else {
    const std::string mine = join_names(local);
    comm.send(rank_base, kTagSummary,
              std::span<const char>(mine.data(), mine.size()));
    names = split_names(comm.recv<char>(rank_base, kTagSummary - 1));
  }

  const std::size_t nnames = names.size();
  if (nnames > 0) {
    // One allreduce assembles the full (rank x phase) matrix everywhere:
    // each rank owns one row, the rest are zero.
    rvec ns(static_cast<std::size_t>(p) * nnames, 0.0);
    rvec counts(nnames, 0.0);
    for (const PhaseTotal& t : local) {
      const auto it = std::lower_bound(names.begin(), names.end(), t.name);
      const std::size_t i =
          static_cast<std::size_t>(std::distance(names.begin(), it));
      ns[static_cast<std::size_t>(rank) * nnames + i] =
          static_cast<double>(t.ns);
      counts[i] = static_cast<double>(t.count);
    }
    comm.allreduce_sum(rspan{ns});
    comm.allreduce_sum(rspan{counts});
    out.phases.resize(nnames);
    std::vector<double> col(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < nnames; ++i) {
      for (int r = 0; r < p; ++r)
        col[static_cast<std::size_t>(r)] =
            ns[static_cast<std::size_t>(r) * nnames + i];
      PhaseStats& st = out.phases[i];
      st.name = names[i];
      double mn, md, mx;
      min_med_max(col, mn, md, mx);
      st.min_ms = mn * 1e-6;
      st.med_ms = md * 1e-6;
      st.max_ms = mx * 1e-6;
      st.count = static_cast<std::uint64_t>(std::llround(counts[i]));
    }
  }

  // --- Counter table: the counter set is fixed, so no name exchange.
  const std::array<std::uint64_t, kNumCounters> mine = counter_totals(rank);
  rvec cm(static_cast<std::size_t>(p) * kNumCounters, 0.0);
  for (std::size_t i = 0; i < kNumCounters; ++i)
    cm[static_cast<std::size_t>(rank) * kNumCounters + i] =
        static_cast<double>(mine[i]);
  comm.allreduce_sum(rspan{cm});
  out.counters.resize(kNumCounters);
  std::vector<std::uint64_t> col(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r) {
      col[static_cast<std::size_t>(r)] = static_cast<std::uint64_t>(
          std::llround(cm[static_cast<std::size_t>(r) * kNumCounters + i]));
      total += col[static_cast<std::size_t>(r)];
    }
    CounterStats& st = out.counters[i];
    st.counter = static_cast<Counter>(i);
    min_med_max(col, st.min, st.med, st.max);
    st.total = total;
  }
  return out;
}

std::string format_summary(const ClusterSummary& s) {
  std::string out;
  if (!s.phases.empty()) {
    Table t({"phase", "count", "min [ms]", "median [ms]", "max [ms]"});
    for (const PhaseStats& ph : s.phases) {
      t.add_row({ph.name, std::to_string(ph.count), fmt_fixed(ph.min_ms, 2),
                 fmt_fixed(ph.med_ms, 2), fmt_fixed(ph.max_ms, 2)});
    }
    out += t.to_string();
    out += "\n";
  }
  Table c({"counter", "min/rank", "median/rank", "max/rank", "total"});
  for (const CounterStats& ct : s.counters) {
    if (ct.total == 0) continue;  // unused counters stay out of the table
    c.add_row({counter_name(ct.counter), std::to_string(ct.min),
               std::to_string(ct.med), std::to_string(ct.max),
               std::to_string(ct.total)});
  }
  out += c.to_string();
  return out;
}

}  // namespace ffw::obs
