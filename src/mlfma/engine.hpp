// Serial / within-node MLFMA engine: O(N) application of the dense
// interaction matrix G0 (paper Sec. III-B, bottom of Fig. 4).
//
// apply() runs the four phases — aggregation (with the leaf multipole
// expansion), translation, disaggregation (with the leaf local
// expansion) and the near-field pass — over Morton-ordered per-level
// sample arrays. Leaf expansions are batched into single GEMMs across
// all clusters (Sec. IV-D), aggregation/disaggregation stream each
// parent's four children through the shared band-diagonal interpolator
// and diagonal shift tables, and translation is a diagonal
// multiply-accumulate per interaction-list entry.
//
// Phase wall-times are accumulated in `phase_times()`; they are the
// measured inputs for the Table III / Table IV reproduction and the
// scaling model.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "common/timer.hpp"
#include "greens/nearfield.hpp"
#include "grid/quadtree.hpp"
#include "mlfma/operators.hpp"
#include "mlfma/plan.hpp"
#include "mlfma/tables.hpp"

namespace ffw {

enum class MlfmaPhase {
  kExpansion = 0,      // leaf multipole expansion (dense GEMM)
  kAggregation,        // interpolate + shift up the tree
  kTranslation,        // diagonal far-field translations
  kDisaggregation,     // shift + anterpolate down the tree
  kLocalExpansion,     // leaf local expansion (dense GEMM)
  kNearField,          // 9-type dense near-field pass
  kCount
};

const char* phase_name(MlfmaPhase p);

struct PhaseTimes {
  std::array<double, static_cast<std::size_t>(MlfmaPhase::kCount)> seconds{};
  std::uint64_t applications = 0;

  double total() const;
  void clear();
};

class MlfmaEngine {
 public:
  /// Convenience constructor: builds a private OperatorTables artifact
  /// for this engine (the classic one-engine-one-job path).
  MlfmaEngine(const QuadTree& tree, const MlfmaParams& params = {});

  /// Shares a prebuilt read-only table artifact (mlfma/tables.hpp) —
  /// typically handed out by OperatorTableCache. Construction then costs
  /// only the per-engine workspace (spectra panels, scratch), so many
  /// jobs over the same configuration amortise one table build. The
  /// tables are immutable; engines sharing them may run concurrently.
  explicit MlfmaEngine(std::shared_ptr<const OperatorTables> tables);

  /// y = G0 * x; x and y are pixel vectors in *cluster order*
  /// (QuadTree::to_cluster_order), y is overwritten. Equivalent to
  /// apply_block with nrhs = 1.
  void apply(ccspan x, cspan y);

  /// y = G0^H * x. G0 is complex-symmetric (reciprocity), so
  /// G0^H x = conj(G0 conj(x)); used by the adjoint Frechet operator.
  void apply_herm(ccspan x, cspan y);

  /// Multi-RHS apply: Y_r = G0 * X_r for all nrhs columns at once. X and
  /// Y are block vectors of size N * nrhs in the leaf-interleaved block
  /// layout (linalg/block.hpp with panel = pixels_per_leaf): every
  /// operator table — translation diagonals, interpolation stencils,
  /// shift vectors, near-field blocks — is streamed from memory once per
  /// apply and reused across all columns, and the leaf expansions become
  /// (q0 x np) x (np x nleaf*nrhs) GEMMs.
  void apply_block(ccspan x, cspan y, std::size_t nrhs);

  /// Y_r = G0^H * X_r for all columns (conjugation symmetry).
  void apply_herm_block(ccspan x, cspan y, std::size_t nrhs);

  /// Runs only the upward pass (expansion + aggregation) for `x` and
  /// returns the top-level outgoing spectra panel (Q_top x 16,
  /// column-major, Morton order). Used by the fast receiver operator
  /// (greens/fast_receivers.hpp) to evaluate exterior fields in
  /// O(N + R sqrt(N)) instead of O(R N).
  ccspan upward_only(ccspan x);

  const QuadTree& tree() const { return *tree_; }
  const MlfmaPlan& plan() const { return plan_; }
  const MlfmaOperators& operators() const { return ops_; }
  const NearFieldOperators& nearfield() const { return near_; }
  /// The shared table artifact (for handing to further engines).
  const std::shared_ptr<const OperatorTables>& tables() const {
    return tables_;
  }

  const PhaseTimes& phase_times() const { return times_; }
  void clear_phase_times() { times_.clear(); }

  /// Arithmetic policy (from MlfmaParams::precision). Under kMixed the
  /// operator tables, spectra panels and near-field blocks are fp32 with
  /// fp64 accumulation at the leaf local-expansion / near-field GEMM
  /// boundaries; x/y stay fp64 at the API.
  Precision precision() const { return plan_.params().precision; }

  /// Releases the per-level spectra panels plus all scratch buffers
  /// (grown to the largest nrhs seen) and re-reserves them for nrhs = 1.
  /// Call between solve stages with very different block widths to return
  /// the O(N * nrhs) workspace to the allocator.
  void shrink_workspace();

  /// Precomputed-table + workspace storage (the O(N) memory census).
  /// Engines sharing one OperatorTables each report the full table
  /// footprint; dedupe via tables() when summing across a job pool.
  std::size_t bytes() const;

 private:
  void ensure_block_capacity(std::size_t nrhs);
  void ensure_thread_scratch();

  // Pass bodies are templated over the panel scalar T: T = double is the
  // reference path, T = float the mixed path (fp32 tables + panels, fp64
  // y accumulation in downward/near passes).
  template <typename T>
  void upward_pass_t(const std::complex<T>* x, std::size_t nrhs);
  template <typename T>
  void translation_pass_t(std::size_t nrhs);
  template <typename T>
  void downward_pass_t(cspan y, std::size_t nrhs);
  template <typename T>
  void near_pass_t(const std::complex<T>* x, cspan y, std::size_t nrhs);

  // Scalar-selected views of the width-specific buffers.
  template <typename T>
  std::vector<std::vector<std::complex<T>>>& s_panels();
  template <typename T>
  std::vector<std::vector<std::complex<T>>>& g_panels();
  template <typename T>
  std::vector<std::vector<std::complex<T>>>& scratch();

  // Immutable shared state (tables_) with reference aliases so the pass
  // bodies keep their member-style access; per-engine mutable workspace
  // below.
  std::shared_ptr<const OperatorTables> tables_;
  const QuadTree* tree_;
  const MlfmaPlan& plan_;
  const MlfmaOperators& ops_;
  const NearFieldOperators& near_;

  // Per-level outgoing (s_) and incoming (g_) sample panels. For a block
  // apply with nrhs columns, cluster c's panel is the Q_l x nrhs
  // column-major block at offset c * Q_l * nrhs (Morton cluster order);
  // nrhs == 1 recovers the plain Q_l x num_clusters(l) panel. Buffers are
  // grown to the largest nrhs seen (block_capacity_) and reused. Only the
  // set matching precision() is ever allocated.
  std::vector<cvec> s_, g_;
  std::vector<cvec32> s32_, g32_;
  std::size_t block_capacity_ = 1;

  // Per-thread aggregation/disaggregation scratch, reused across applies
  // (hoisted out of the hot per-parent loops).
  std::vector<cvec> thread_scratch_;
  std::vector<cvec32> thread_scratch32_;
  // Conjugated-input scratch for apply_herm / apply_herm_block.
  cvec herm_scratch_;
  // Narrowed input block (kMixed) and widened top-level panel returned by
  // upward_only under kMixed.
  cvec32 x32_;
  cvec upward_widened_;

  PhaseTimes times_;
};

template <>
inline std::vector<cvec>& MlfmaEngine::s_panels<double>() { return s_; }
template <>
inline std::vector<cvec32>& MlfmaEngine::s_panels<float>() { return s32_; }
template <>
inline std::vector<cvec>& MlfmaEngine::g_panels<double>() { return g_; }
template <>
inline std::vector<cvec32>& MlfmaEngine::g_panels<float>() { return g32_; }
template <>
inline std::vector<cvec>& MlfmaEngine::scratch<double>() {
  return thread_scratch_;
}
template <>
inline std::vector<cvec32>& MlfmaEngine::scratch<float>() {
  return thread_scratch32_;
}

}  // namespace ffw
