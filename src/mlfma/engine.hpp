// Serial / within-node MLFMA engine: O(N) application of the dense
// interaction matrix G0 (paper Sec. III-B, bottom of Fig. 4).
//
// apply() runs the four phases — aggregation (with the leaf multipole
// expansion), translation, disaggregation (with the leaf local
// expansion) and the near-field pass — over Morton-ordered per-level
// sample arrays. Leaf expansions are batched into single GEMMs across
// all clusters (Sec. IV-D), aggregation/disaggregation stream each
// parent's four children through the shared band-diagonal interpolator
// and diagonal shift tables, and translation is a diagonal
// multiply-accumulate per interaction-list entry.
//
// Phase wall-times are accumulated in `phase_times()`; they are the
// measured inputs for the Table III / Table IV reproduction and the
// scaling model.
#pragma once

#include <array>
#include <string>

#include "common/timer.hpp"
#include "greens/nearfield.hpp"
#include "grid/quadtree.hpp"
#include "mlfma/operators.hpp"
#include "mlfma/plan.hpp"

namespace ffw {

enum class MlfmaPhase {
  kExpansion = 0,      // leaf multipole expansion (dense GEMM)
  kAggregation,        // interpolate + shift up the tree
  kTranslation,        // diagonal far-field translations
  kDisaggregation,     // shift + anterpolate down the tree
  kLocalExpansion,     // leaf local expansion (dense GEMM)
  kNearField,          // 9-type dense near-field pass
  kCount
};

const char* phase_name(MlfmaPhase p);

struct PhaseTimes {
  std::array<double, static_cast<std::size_t>(MlfmaPhase::kCount)> seconds{};
  std::uint64_t applications = 0;

  double total() const;
  void clear();
};

class MlfmaEngine {
 public:
  MlfmaEngine(const QuadTree& tree, const MlfmaParams& params = {});

  /// y = G0 * x; x and y are pixel vectors in *cluster order*
  /// (QuadTree::to_cluster_order), y is overwritten.
  void apply(ccspan x, cspan y);

  /// y = G0^H * x. G0 is complex-symmetric (reciprocity), so
  /// G0^H x = conj(G0 conj(x)); used by the adjoint Frechet operator.
  void apply_herm(ccspan x, cspan y);

  /// Runs only the upward pass (expansion + aggregation) for `x` and
  /// returns the top-level outgoing spectra panel (Q_top x 16,
  /// column-major, Morton order). Used by the fast receiver operator
  /// (greens/fast_receivers.hpp) to evaluate exterior fields in
  /// O(N + R sqrt(N)) instead of O(R N).
  ccspan upward_only(ccspan x);

  const QuadTree& tree() const { return *tree_; }
  const MlfmaPlan& plan() const { return plan_; }
  const MlfmaOperators& operators() const { return ops_; }
  const NearFieldOperators& nearfield() const { return near_; }

  const PhaseTimes& phase_times() const { return times_; }
  void clear_phase_times() { times_.clear(); }

  /// Precomputed-table + workspace storage (the O(N) memory census).
  std::size_t bytes() const;

 private:
  void upward_pass(ccspan x);
  void translation_pass();
  void downward_pass(cspan y);

  const QuadTree* tree_;
  MlfmaPlan plan_;
  MlfmaOperators ops_;
  NearFieldOperators near_;

  // Per-level outgoing (s_) and incoming (g_) sample panels, Q_l rows by
  // num_clusters(l) columns, column-major, Morton column order.
  std::vector<cvec> s_, g_;

  PhaseTimes times_;
};

}  // namespace ffw
