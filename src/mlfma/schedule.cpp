#include "mlfma/schedule.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ffw {

namespace {

/// Splits one interaction phase (far-field level or leaf near field)
/// into per-rank local/remote work lists. The interaction list is given
/// in the tree's CSR form: entries of destination cluster c are
/// entries[begin[c] .. begin[c+1]), each with a source cluster id and an
/// operator-type index (projected out by `src_of` / `type_of` so the
/// same code serves FarEntry and NearEntry).
template <typename Entry, typename SrcOf, typename TypeOf>
std::vector<PhaseSchedule> split_phase(const std::vector<std::uint32_t>& begin,
                                       const std::vector<Entry>& entries,
                                       std::size_t num_clusters, int nranks,
                                       SrcOf src_of, TypeOf type_of) {
  const std::size_t p = static_cast<std::size_t>(nranks);
  const auto owner = [&](std::size_t c) {
    return static_cast<int>(c * p / num_clusters);
  };
  std::vector<PhaseSchedule> out(p);

  // Pass 1 per rank: owned range, sorted ghost list, per-peer recv
  // groups (contiguous slot runs — ownership is monotone in the Morton
  // index, so sorting ghosts globally groups them by peer).
  for (std::size_t r = 0; r < p; ++r) {
    PhaseSchedule& ps = out[r];
    ps.owned_begin = num_clusters * r / p;
    ps.owned_end = num_clusters * (r + 1) / p;
    std::vector<std::uint32_t> ghosts;
    for (std::size_t c = ps.owned_begin; c < ps.owned_end; ++c) {
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const std::uint32_t s = src_of(entries[e]);
        if (owner(s) != static_cast<int>(r)) ghosts.push_back(s);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    ps.num_ghosts = ghosts.size();

    for (std::size_t i = 0; i < ghosts.size();) {
      const int peer = owner(ghosts[i]);
      std::size_t j = i + 1;
      while (j < ghosts.size() && owner(ghosts[j]) == peer) ++j;
      PeerRecv pr;
      pr.peer = peer;
      pr.slot_begin = static_cast<std::uint32_t>(i);
      pr.count = static_cast<std::uint32_t>(j - i);
      ps.recvs.push_back(std::move(pr));
      i = j;
    }

    // Pass 2: resolve every entry to compact slots.
    const auto ghost_slot = [&](std::uint32_t s) {
      const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), s);
      FFW_DCHECK(it != ghosts.end() && *it == s);
      return static_cast<std::uint32_t>(it - ghosts.begin());
    };
    const auto recv_of = [&](std::uint32_t slot) -> PeerRecv& {
      for (PeerRecv& pr : ps.recvs) {
        if (slot >= pr.slot_begin && slot < pr.slot_begin + pr.count)
          return pr;
      }
      FFW_CHECK_MSG(false, "ghost slot outside every peer group");
      return ps.recvs.front();
    };
    for (std::size_t c = ps.owned_begin; c < ps.owned_end; ++c) {
      const auto dst_slot = static_cast<std::uint32_t>(c - ps.owned_begin);
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const std::uint32_t s = src_of(entries[e]);
        const std::uint16_t t = type_of(entries[e]);
        if (owner(s) == static_cast<int>(r)) {
          ps.local.push_back(
              {dst_slot,
               static_cast<std::uint32_t>(s - ps.owned_begin), t});
        } else {
          const std::uint32_t slot = ghost_slot(s);
          recv_of(slot).work.push_back({dst_slot, slot, t});
        }
      }
    }

    // Sends are filled from the receiving side below; stash the ghost
    // ids temporarily in the recv groups' unused `slots` order via a
    // second sweep over `ghosts` (cheap — done once at plan time).
    for (PeerRecv& pr : ps.recvs) {
      PeerSend ghost_ids;  // reuse the container: global ids, slot order
      ghost_ids.peer = static_cast<int>(r);
      ghost_ids.slots.assign(ghosts.begin() + pr.slot_begin,
                             ghosts.begin() + pr.slot_begin + pr.count);
      // The peer (pr.peer) must send exactly these clusters to rank r.
      out[static_cast<std::size_t>(pr.peer)].sends.push_back(
          std::move(ghost_ids));
    }
  }

  // Convert the stashed global ids into the sender's owned-panel slots.
  // (Safe only after every rank's owned_begin is known — it is, pass 1
  // computed them all; senders with lower rank were filled before their
  // own pass ran, hence the separate fix-up sweep.)
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t ob = num_clusters * r / p;
    for (PeerSend& s : out[r].sends) {
      for (std::uint32_t& c : s.slots) {
        FFW_DCHECK(c >= ob && c < num_clusters * (r + 1) / p);
        c = static_cast<std::uint32_t>(c - ob);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<RankSchedule> build_apply_schedule(const QuadTree& tree,
                                               int nranks) {
  FFW_CHECK(nranks >= 1);
  std::vector<RankSchedule> out(static_cast<std::size_t>(nranks));
  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    auto split = split_phase(
        lvl.far_begin, lvl.far, lvl.num_clusters, nranks,
        [](const FarEntry& e) { return e.src; },
        [](const FarEntry& e) { return e.trans_type; });
    for (int r = 0; r < nranks; ++r) {
      out[static_cast<std::size_t>(r)].levels.push_back(
          std::move(split[static_cast<std::size_t>(r)]));
    }
  }
  {
    auto split = split_phase(
        tree.near_begin(), tree.near(), tree.num_leaves(), nranks,
        [](const NearEntry& e) { return e.src; },
        [](const NearEntry& e) { return e.near_type; });
    for (int r = 0; r < nranks; ++r) {
      out[static_cast<std::size_t>(r)].near =
          std::move(split[static_cast<std::size_t>(r)]);
    }
  }
  return out;
}

}  // namespace ffw
