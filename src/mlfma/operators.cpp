#include "mlfma/operators.hpp"

#include <cmath>

#include "common/check.hpp"
#include "greens/greens.hpp"
#include "special/bessel.hpp"

namespace ffw {

cvec make_translation_diag(double k, Vec2 x, int truncation, int samples) {
  FFW_CHECK(truncation >= 0 && samples >= 2 * truncation + 1);
  const double kx = k * norm(x);
  const double theta_x = angle_of(x);
  cvec hm(static_cast<std::size_t>(truncation) + 1);
  hankel1_array(kx, hm);
  cvec t(static_cast<std::size_t>(samples));
  for (int q = 0; q < samples; ++q) {
    const double alpha = 2.0 * pi * q / samples;
    const double psi = alpha - theta_x - 0.5 * pi;
    // m and -m paired: H_{-m} = (-1)^m H_m.
    cplx acc = hm[0];
    for (int m = 1; m <= truncation; ++m) {
      const cplx e{std::cos(m * psi), std::sin(m * psi)};
      const double sgn = (m % 2 == 0) ? 1.0 : -1.0;
      acc += hm[static_cast<std::size_t>(m)] * (e + sgn * std::conj(e));
    }
    t[static_cast<std::size_t>(q)] = acc;
  }
  return t;
}

PeriodicBandMatrix make_interpolation(int src_samples, int dst_samples,
                                      int width) {
  FFW_CHECK(src_samples >= 2 && dst_samples >= src_samples);
  width = std::min(width, src_samples);
  PeriodicBandMatrix w(static_cast<std::size_t>(dst_samples),
                       static_cast<std::size_t>(src_samples),
                       static_cast<std::size_t>(width));
  const double ratio = static_cast<double>(src_samples) / dst_samples;
  for (int r = 0; r < dst_samples; ++r) {
    // Target angle in units of the source grid spacing.
    const double pos = r * ratio;
    // Stencil of `width` consecutive source nodes centred on pos.
    const int start = static_cast<int>(std::floor(pos)) - (width - 1) / 2;
    const std::size_t first =
        static_cast<std::size_t>(((start % src_samples) + src_samples) %
                                 src_samples);
    w.set_first(static_cast<std::size_t>(r), first);
    // Lagrange weights on the (unwrapped) integer nodes start..start+width-1.
    for (int j = 0; j < width; ++j) {
      double lj = 1.0;
      for (int i = 0; i < width; ++i) {
        if (i == j) continue;
        lj *= (pos - (start + i)) / static_cast<double>(j - i);
      }
      w.coeff(static_cast<std::size_t>(r), static_cast<std::size_t>(j)) = lj;
    }
  }
  return w;
}

namespace {

cvec32 round32(const cvec& v) {
  cvec32 out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = narrow(v[i]);
  return out;
}

std::vector<cvec32> round32(const std::vector<cvec>& vs) {
  std::vector<cvec32> out;
  out.reserve(vs.size());
  for (const auto& v : vs) out.push_back(round32(v));
  return out;
}

}  // namespace

void LevelOperators::build_f32(bool drop_f64) {
  translations32 = round32(translations);
  up_shift32 = round32(up_shift);
  down_shift32 = round32(down_shift);
  if (interp.rows() > 0) interp.build_f32(drop_f64);
  if (drop_f64) {
    std::vector<cvec>{}.swap(translations);
    std::vector<cvec>{}.swap(up_shift);
    std::vector<cvec>{}.swap(down_shift);
  }
}

std::size_t LevelOperators::bytes() const {
  std::size_t s = 0;
  for (const auto& t : translations) s += t.size() * sizeof(cplx);
  for (const auto& t : up_shift) s += t.size() * sizeof(cplx);
  for (const auto& t : down_shift) s += t.size() * sizeof(cplx);
  for (const auto& t : translations32) s += t.size() * sizeof(cplx32);
  for (const auto& t : up_shift32) s += t.size() * sizeof(cplx32);
  for (const auto& t : down_shift32) s += t.size() * sizeof(cplx32);
  s += interp.bytes();
  return s;
}

MlfmaOperators::MlfmaOperators(const QuadTree& tree, const MlfmaPlan& plan)
    : precision_(plan.params().precision) {
  const double k = tree.grid().k0();
  const int nlev = tree.num_levels();
  if (nlev == 0) return;  // near-field-only degenerate domain

  const int q0 = plan.level(0).samples;
  const int np = tree.pixels_per_leaf();

  // Leaf multipole expansion E[q, p] = e^{-i k_hat(alpha_q) . u_p}.
  expansion_ = CMatrix(static_cast<std::size_t>(q0),
                       static_cast<std::size_t>(np));
  local_ = CMatrix(static_cast<std::size_t>(np),
                   static_cast<std::size_t>(q0));
  const cplx recv_pref =
      0.25 * iu * source_factor(tree.grid()) / static_cast<double>(q0);
  for (int q = 0; q < q0; ++q) {
    const double alpha = 2.0 * pi * q / q0;
    const Vec2 khat{std::cos(alpha), std::sin(alpha)};
    for (int p = 0; p < np; ++p) {
      const double phase = k * dot(khat, tree.local_pixel_offset(p));
      expansion_(static_cast<std::size_t>(q), static_cast<std::size_t>(p)) =
          cplx{std::cos(phase), -std::sin(phase)};
      local_(static_cast<std::size_t>(p), static_cast<std::size_t>(q)) =
          recv_pref * cplx{std::cos(phase), std::sin(phase)};
    }
  }

  levels_.resize(static_cast<std::size_t>(nlev));
  const auto& offsets = QuadTree::translation_offsets();
  for (int l = 0; l < nlev; ++l) {
    LevelOperators& ops = levels_[static_cast<std::size_t>(l)];
    ops.truncation = plan.level(l).truncation;
    ops.samples = plan.level(l).samples;
    const double w = tree.level(l).width;

    ops.translations.reserve(offsets.size());
    for (const auto& [dx, dy] : offsets) {
      ops.translations.push_back(make_translation_diag(
          k, Vec2{dx * w, dy * w}, ops.truncation, ops.samples));
    }

    if (l + 1 < nlev) {
      const int qp = plan.level(l + 1).samples;
      ops.interp = make_interpolation(ops.samples, qp, plan.interp_width());
      // Child position j (bit0 -> +x, bit1 -> +y): child centre relative
      // to parent centre is (+-w/2, +-w/2) with w the *child* width.
      ops.up_shift.resize(4);
      ops.down_shift.resize(4);
      for (int j = 0; j < 4; ++j) {
        const Vec2 d{(j & 1) ? 0.5 * w : -0.5 * w,
                     (j & 2) ? 0.5 * w : -0.5 * w};
        cvec up(static_cast<std::size_t>(qp)), down(static_cast<std::size_t>(qp));
        for (int q = 0; q < qp; ++q) {
          const double alpha = 2.0 * pi * q / qp;
          const double phase =
              k * (std::cos(alpha) * d.x + std::sin(alpha) * d.y);
          // outgoing recentring child -> parent: e^{-i k_hat . (c_ch - c_p)}
          up[static_cast<std::size_t>(q)] = {std::cos(phase), -std::sin(phase)};
          // incoming recentring parent -> child: e^{+i k_hat . (c_ch - c_p)}
          down[static_cast<std::size_t>(q)] = {std::cos(phase), std::sin(phase)};
        }
        ops.up_shift[static_cast<std::size_t>(j)] = std::move(up);
        ops.down_shift[static_cast<std::size_t>(j)] = std::move(down);
      }
    }
  }

  if (precision_ == Precision::kMixed) {
    // Round once, then drop the fp64 copies: the halved bytes() is the
    // real footprint, not an upper bound over two resident table sets.
    expansion32_.resize(expansion_.rows() * expansion_.cols());
    for (std::size_t i = 0; i < expansion32_.size(); ++i)
      expansion32_[i] = narrow(expansion_.data()[i]);
    local32_.resize(local_.rows() * local_.cols());
    for (std::size_t i = 0; i < local32_.size(); ++i)
      local32_[i] = narrow(local_.data()[i]);
    expansion_ = CMatrix{};
    local_ = CMatrix{};
    for (auto& l : levels_) l.build_f32(/*drop_f64=*/true);
  }
}

std::size_t MlfmaOperators::bytes() const {
  std::size_t s = expansion_.bytes() + local_.bytes();
  s += expansion32_.size() * sizeof(cplx32);
  s += local32_.size() * sizeof(cplx32);
  for (const auto& l : levels_) s += l.bytes();
  return s;
}

}  // namespace ffw
