#include "mlfma/tables.hpp"

namespace ffw {

OperatorTables::OperatorTables(const QuadTree& tree, const MlfmaParams& params)
    : tree_(&tree), plan_(tree, params), ops_(tree, plan_),
      near_(tree, params.precision) {
  build_seconds_ = build_timer_.seconds();
}

OperatorTables::OperatorTables(const Grid& grid, int leaf_pixel_side,
                               const MlfmaParams& params)
    : owned_tree_(std::make_unique<QuadTree>(grid, leaf_pixel_side)),
      tree_(owned_tree_.get()), plan_(*tree_, params), ops_(*tree_, plan_),
      near_(*tree_, params.precision) {
  build_seconds_ = build_timer_.seconds();
}

std::size_t OperatorTables::bytes() const {
  return ops_.bytes() + near_.bytes();
}

}  // namespace ffw
