// Read-only MLFMA operator-table artifact: everything about the
// interaction operator G0 that depends only on (grid, wavelength,
// accuracy, precision) and never on a particular reconstruction —
// the sampling plan, translation/interp/shift tables, leaf expansion
// matrices and the nine near-field block types.
//
// Historically this state was welded into each MlfmaEngine /
// PartitionedMlfma instance, so every job (and every stage of the
// multi-frequency driver) rebuilt identical tables from scratch. The
// artifact is immutable after construction, so any number of engines —
// including engines stepping concurrently on different threads — can
// share one instance through a shared_ptr; OperatorTableCache
// (service/table_cache.hpp) keys and amortises these builds across a
// whole job mix.
#pragma once

#include <memory>

#include "common/timer.hpp"
#include "greens/nearfield.hpp"
#include "grid/quadtree.hpp"
#include "mlfma/operators.hpp"
#include "mlfma/plan.hpp"

namespace ffw {

class OperatorTables {
 public:
  /// Builds on an externally-owned tree (the caller keeps `tree` alive
  /// for the artifact's lifetime). This is the legacy single-job path
  /// the MlfmaEngine / PartitionedMlfma convenience constructors use.
  explicit OperatorTables(const QuadTree& tree, const MlfmaParams& params = {});

  /// Self-contained build: owns its QuadTree (constructed from `grid`),
  /// so the artifact has no external lifetime dependencies — the form
  /// OperatorTableCache hands out to concurrent jobs.
  OperatorTables(const Grid& grid, int leaf_pixel_side,
                 const MlfmaParams& params);

  OperatorTables(const OperatorTables&) = delete;
  OperatorTables& operator=(const OperatorTables&) = delete;

  const QuadTree& tree() const { return *tree_; }
  const MlfmaPlan& plan() const { return plan_; }
  const MlfmaOperators& ops() const { return ops_; }
  const NearFieldOperators& nearfield() const { return near_; }
  const MlfmaParams& params() const { return plan_.params(); }
  Precision precision() const { return plan_.params().precision; }

  /// Precomputed-table storage (translation/interp/shift/expansion +
  /// near-field blocks). The cache's byte budget counts this.
  std::size_t bytes() const;
  /// Wall time the construction took — the cost a cache hit saves.
  double build_seconds() const { return build_seconds_; }

 private:
  std::unique_ptr<QuadTree> owned_tree_;  // null when the tree is borrowed
  const QuadTree* tree_;
  Timer build_timer_;  // starts before the table members construct
  MlfmaPlan plan_;
  MlfmaOperators ops_;
  NearFieldOperators near_;
  double build_seconds_ = 0.0;
};

}  // namespace ffw
