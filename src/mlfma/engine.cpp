#include "mlfma/engine.hpp"

#include <algorithm>

#include "linalg/gemm.hpp"
#include "linalg/kernels.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"

namespace ffw {

const char* phase_name(MlfmaPhase p) {
  switch (p) {
    case MlfmaPhase::kExpansion: return "Multipole Expansion";
    case MlfmaPhase::kAggregation: return "Aggregation";
    case MlfmaPhase::kTranslation: return "Translation";
    case MlfmaPhase::kDisaggregation: return "Disaggregation";
    case MlfmaPhase::kLocalExpansion: return "Local Expansion";
    case MlfmaPhase::kNearField: return "Near-Field Interactions";
    default: return "?";
  }
}

double PhaseTimes::total() const {
  double s = 0.0;
  for (double v : seconds) s += v;
  return s;
}

void PhaseTimes::clear() {
  seconds.fill(0.0);
  applications = 0;
}

namespace {
class PhaseTimerScope {
 public:
  PhaseTimerScope(PhaseTimes& t, MlfmaPhase p)
      : acc_(t.seconds[static_cast<std::size_t>(p)]) {}
  ~PhaseTimerScope() { acc_ += timer_.seconds(); }

 private:
  double& acc_;
  Timer timer_;
};
}  // namespace

MlfmaEngine::MlfmaEngine(const QuadTree& tree, const MlfmaParams& params)
    : MlfmaEngine(std::make_shared<const OperatorTables>(tree, params)) {}

MlfmaEngine::MlfmaEngine(std::shared_ptr<const OperatorTables> tables)
    : tables_(std::move(tables)), tree_(&tables_->tree()),
      plan_(tables_->plan()), ops_(tables_->ops()),
      near_(tables_->nearfield()) {
  const std::size_t nlev = static_cast<std::size_t>(tree_->num_levels());
  s_.resize(nlev);
  g_.resize(nlev);
  s32_.resize(nlev);
  g32_.resize(nlev);
  ensure_block_capacity(1);
}

void MlfmaEngine::ensure_block_capacity(std::size_t nrhs) {
  const bool mixed = precision() == Precision::kMixed;
  block_capacity_ = std::max(block_capacity_, nrhs);
  for (int l = 0; l < tree_->num_levels(); ++l) {
    const std::size_t li = static_cast<std::size_t>(l);
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    const std::size_t need =
        q * tree_->level(l).num_clusters * block_capacity_;
    if (mixed) {
      if (s32_[li].size() < need) s32_[li].resize(need);
      if (g32_[li].size() < need) g32_[li].resize(need);
    } else {
      if (s_[li].size() < need) s_[li].resize(need);
      if (g_[li].size() < need) g_[li].resize(need);
    }
  }
}

void MlfmaEngine::ensure_thread_scratch() {
  const std::size_t nt = static_cast<std::size_t>(num_threads());
  if (precision() == Precision::kMixed) {
    if (thread_scratch32_.size() < nt) thread_scratch32_.resize(nt);
  } else {
    if (thread_scratch_.size() < nt) thread_scratch_.resize(nt);
  }
}

void MlfmaEngine::shrink_workspace() {
  auto drop_all = [](auto& vecs) {
    for (auto& v : vecs) {
      v.clear();
      v.shrink_to_fit();
    }
  };
  drop_all(s_);
  drop_all(g_);
  drop_all(s32_);
  drop_all(g32_);
  drop_all(thread_scratch_);
  drop_all(thread_scratch32_);
  herm_scratch_.clear();
  herm_scratch_.shrink_to_fit();
  x32_.clear();
  x32_.shrink_to_fit();
  upward_widened_.clear();
  upward_widened_.shrink_to_fit();
  block_capacity_ = 1;
  ensure_block_capacity(1);
}

std::size_t MlfmaEngine::bytes() const {
  std::size_t s = tables_->bytes();
  for (const auto& v : s_) s += v.size() * sizeof(cplx);
  for (const auto& v : g_) s += v.size() * sizeof(cplx);
  for (const auto& v : s32_) s += v.size() * sizeof(cplx32);
  for (const auto& v : g32_) s += v.size() * sizeof(cplx32);
  for (const auto& v : thread_scratch_) s += v.size() * sizeof(cplx);
  for (const auto& v : thread_scratch32_) s += v.size() * sizeof(cplx32);
  s += herm_scratch_.size() * sizeof(cplx);
  s += x32_.size() * sizeof(cplx32);
  s += upward_widened_.size() * sizeof(cplx);
  return s;
}

template <typename T>
void MlfmaEngine::upward_pass_t(const std::complex<T>* x, std::size_t nrhs) {
  using C = std::complex<T>;
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t nleaf = tree_->num_leaves();
  const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
  auto& s = s_panels<T>();

  {
    PhaseTimerScope t(times_, MlfmaPhase::kExpansion);
    FFW_TRACE_SPAN("mlfma.expand");
    // S0 = E (q0 x np) * X (np x nleaf*nrhs): one batched GEMM over a
    // column range per thread. In the block layout consecutive leaves'
    // np x nrhs input panels are contiguous, so a leaf range is just a
    // wider GEMM.
    const std::size_t nthreads =
        std::min<std::size_t>(static_cast<std::size_t>(num_threads()), nleaf);
    const std::size_t chunk = (nleaf + nthreads - 1) / nthreads;
    parallel_for(0, nthreads, [&](std::size_t tid) {
      const std::size_t c0 = tid * chunk;
      const std::size_t c1 = std::min(nleaf, c0 + chunk);
      if (c0 >= c1) return;
      if constexpr (std::is_same_v<T, float>) {
        // fp64-accumulation boundary: the np-term quadrature sums are
        // chunk-promoted into an fp64 tile (gemm_expand_mixed) and
        // round once into the fp32 spectra panel, so the panel never
        // carries an fp32-accumulated chain of length np.
        gemm_expand_mixed(q0, (c1 - c0) * nrhs, np,
                          ops_.expansion_data<float>(), q0,
                          x + c0 * np * nrhs, np,
                          s[0].data() + c0 * q0 * nrhs, q0);
      } else {
        gemm_raw_t<T, T>(q0, (c1 - c0) * nrhs, np, C{T(1)},
                         ops_.expansion_data<T>(), q0, x + c0 * np * nrhs, np,
                         C{}, s[0].data() + c0 * q0 * nrhs, q0);
      }
    });
  }

  PhaseTimerScope t(times_, MlfmaPhase::kAggregation);
  for (int l = 0; l + 1 < tree_->num_levels(); ++l) {
    FFW_TRACE_SPAN("mlfma.aggregate", l);
    const LevelOperators& ops = ops_.level(l);
    const std::size_t qc = static_cast<std::size_t>(ops.samples);
    const std::size_t qp =
        static_cast<std::size_t>(plan_.level(l + 1).samples);
    const std::size_t nparents = tree_->level(l + 1).num_clusters;
    const C* src = s[static_cast<std::size_t>(l)].data();
    C* dst = s[static_cast<std::size_t>(l) + 1].data();
    parallel_for(0, nparents, [&](std::size_t p) {
      C* sp = dst + p * qp * nrhs;
      std::fill(sp, sp + qp * nrhs, C{});
      auto& ws = scratch<T>()[static_cast<std::size_t>(thread_rank())];
      if (ws.size() < qp * nrhs) ws.resize(qp * nrhs);
      C* tmp = ws.data();
      for (int j = 0; j < 4; ++j) {
        // Child Morton index = 4p + j; bit0/bit1 of j give the child's
        // +-x/+-y position, matching the shift-table construction.
        const C* sc = src + (4 * p + static_cast<std::size_t>(j)) * qc * nrhs;
        ops.interp.apply_batch(sc, qc, tmp, qp, nrhs);
        // Explicit real arithmetic (cf. translation_pass_t): same values,
        // but the shift MAC vectorizes.
        const auto& sh = ops.up<T>()[static_cast<std::size_t>(j)];
        const T* shp = reinterpret_cast<const T*>(sh.data());
        for (std::size_t r = 0; r < nrhs; ++r) {
          T* spr = reinterpret_cast<T*>(sp + r * qp);
          const T* tr = reinterpret_cast<const T*>(tmp + r * qp);
#ifdef _OPENMP
#pragma omp simd
#endif
          for (std::size_t q = 0; q < qp; ++q) {
            const T ar = shp[2 * q], ai = shp[2 * q + 1];
            const T br = tr[2 * q], bi = tr[2 * q + 1];
            spr[2 * q] += ar * br - ai * bi;
            spr[2 * q + 1] += ar * bi + ai * br;
          }
        }
      }
    });
  }
}

template <typename T>
void MlfmaEngine::translation_pass_t(std::size_t nrhs) {
  using C = std::complex<T>;
  PhaseTimerScope t(times_, MlfmaPhase::kTranslation);
  for (int l = 0; l < tree_->num_levels(); ++l) {
    FFW_TRACE_SPAN("mlfma.translate", l);
    const TreeLevel& lvl = tree_->level(l);
    const LevelOperators& ops = ops_.level(l);
    const std::size_t q = static_cast<std::size_t>(ops.samples);
    const C* src = s_panels<T>()[static_cast<std::size_t>(l)].data();
    C* dst = g_panels<T>()[static_cast<std::size_t>(l)].data();
    parallel_for_dynamic(0, lvl.num_clusters, [&](std::size_t c) {
      C* gc = dst + c * q * nrhs;
      std::fill(gc, gc + q * nrhs, C{});
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const FarEntry& fe = lvl.far[e];
        const C* sc = src + static_cast<std::size_t>(fe.src) * q * nrhs;
        // One translation diagonal read amortised over all nrhs spectra.
        // Explicit real arithmetic: identical to the complex multiply on
        // finite values but free of its NaN-recovery branch, so the
        // diagonal MAC vectorizes.
        const auto& trans = ops.trans<T>()[fe.trans_type];
        const T* tp = reinterpret_cast<const T*>(trans.data());
        for (std::size_t r = 0; r < nrhs; ++r) {
          T* gr = reinterpret_cast<T*>(gc + r * q);
          const T* sr = reinterpret_cast<const T*>(sc + r * q);
#ifdef _OPENMP
#pragma omp simd
#endif
          for (std::size_t i = 0; i < q; ++i) {
            const T ar = tp[2 * i], ai = tp[2 * i + 1];
            const T br = sr[2 * i], bi = sr[2 * i + 1];
            gr[2 * i] += ar * br - ai * bi;
            gr[2 * i + 1] += ar * bi + ai * br;
          }
        }
      }
    });
  }
}

template <typename T>
void MlfmaEngine::downward_pass_t(cspan y, std::size_t nrhs) {
  using C = std::complex<T>;
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t nleaf = tree_->num_leaves();
  auto& g = g_panels<T>();

  {
    PhaseTimerScope t(times_, MlfmaPhase::kDisaggregation);
    for (int l = tree_->num_levels() - 1; l >= 1; --l) {
      FFW_TRACE_SPAN("mlfma.disaggregate", l);
      const LevelOperators& child_ops = ops_.level(l - 1);
      const std::size_t qp = static_cast<std::size_t>(plan_.level(l).samples);
      const std::size_t qc = static_cast<std::size_t>(child_ops.samples);
      const std::size_t nparents = tree_->level(l).num_clusters;
      const C* src = g[static_cast<std::size_t>(l)].data();
      C* dst = g[static_cast<std::size_t>(l) - 1].data();
      // Anterpolation scale: quadrature-consistent resampling down to the
      // child rate (see DESIGN.md Sec. 5).
      const T scale = static_cast<T>(qc) / static_cast<T>(qp);
      parallel_for(0, nparents, [&](std::size_t p) {
        const C* gp = src + p * qp * nrhs;
        auto& ws = scratch<T>()[static_cast<std::size_t>(thread_rank())];
        if (ws.size() < (qp + qc) * nrhs) ws.resize((qp + qc) * nrhs);
        C* shifted = ws.data();
        C* down = ws.data() + qp * nrhs;
        for (int j = 0; j < 4; ++j) {
          // Explicit real arithmetic (cf. translation_pass_t): vectorizes.
          const auto& sh = child_ops.down<T>()[static_cast<std::size_t>(j)];
          const T* shp = reinterpret_cast<const T*>(sh.data());
          for (std::size_t r = 0; r < nrhs; ++r) {
            T* sr = reinterpret_cast<T*>(shifted + r * qp);
            const T* gr = reinterpret_cast<const T*>(gp + r * qp);
#ifdef _OPENMP
#pragma omp simd
#endif
            for (std::size_t q = 0; q < qp; ++q) {
              const T ar = shp[2 * q], ai = shp[2 * q + 1];
              const T br = gr[2 * q], bi = gr[2 * q + 1];
              sr[2 * q] = ar * br - ai * bi;
              sr[2 * q + 1] = ar * bi + ai * br;
            }
          }
          child_ops.interp.apply_adjoint_batch(shifted, qp, down, qc, nrhs);
          C* gc = dst + (4 * p + static_cast<std::size_t>(j)) * qc * nrhs;
          for (std::size_t i = 0; i < qc * nrhs; ++i)
            gc[i] += scale * down[i];
        }
      });
    }
  }

  PhaseTimerScope t(times_, MlfmaPhase::kLocalExpansion);
  FFW_TRACE_SPAN("mlfma.local_expand");
  const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
  const std::size_t nthreads =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads()), nleaf);
  const std::size_t chunk = (nleaf + nthreads - 1) / nthreads;
  parallel_for(0, nthreads, [&](std::size_t tid) {
    const std::size_t c0 = tid * chunk;
    const std::size_t c1 = std::min(nleaf, c0 + chunk);
    if (c0 >= c1) return;
    // Y(np x cols) += R (np x q0) * G0 (q0 x cols), cols = leaves * nrhs.
    // On the mixed path (T = float) this is the fp64-accumulation
    // boundary: fp32 tables/panels stream through gemm_raw_t<float,
    // double> and land in the fp64 output block.
    gemm_raw_t<T, double>(np, (c1 - c0) * nrhs, q0, cplx{1.0},
                          ops_.local_expansion_data<T>(), np,
                          g[0].data() + c0 * q0 * nrhs, q0, cplx{1.0},
                          y.data() + c0 * np * nrhs, np);
  });
}

template <typename T>
void MlfmaEngine::near_pass_t(const std::complex<T>* x, cspan y,
                              std::size_t nrhs) {
  PhaseTimerScope t(times_, MlfmaPhase::kNearField);
  FFW_TRACE_SPAN("mlfma.nearfield");
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const auto& begin = tree_->near_begin();
  const auto& entries = tree_->near();
  parallel_for_dynamic(0, tree_->num_leaves(), [&](std::size_t c) {
    cplx* yd = y.data() + c * np * nrhs;
    if constexpr (std::is_same_v<T, float>) {
      // The near pass runs entirely in fp32: each 64x64 block product
      // lands in a per-thread fp32 staging panel and widens into the
      // fp64 output per entry, so every MAC is single-precision but the
      // cross-source summation stays fp64 (the widen is ~1/np of the
      // MACs).
      auto& ws = scratch<float>()[static_cast<std::size_t>(thread_rank())];
      if (ws.size() < np * nrhs) ws.resize(np * nrhs);
      cplx32* acc = ws.data();
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const NearEntry& ne = entries[e];
        const cplx32* xs = x + static_cast<std::size_t>(ne.src) * np * nrhs;
        gemm_raw_t<float, float>(np, nrhs, np, cplx32{1.0f},
                                 near_.type_data<float>(ne.near_type), np, xs,
                                 np, cplx32{}, acc, np);
        for (std::size_t i = 0; i < np * nrhs; ++i) yd[i] += widen(acc[i]);
      }
    } else {
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const NearEntry& ne = entries[e];
        const std::complex<T>* xs =
            x + static_cast<std::size_t>(ne.src) * np * nrhs;
        gemm_raw_t<T, double>(np, nrhs, np, cplx{1.0},
                              near_.type_data<T>(ne.near_type), np, xs, np,
                              cplx{1.0}, yd, np);
      }
    }
  });
}

void MlfmaEngine::apply(ccspan x, cspan y) { apply_block(x, y, 1); }

void MlfmaEngine::apply_block(ccspan x, cspan y, std::size_t nrhs) {
  const std::size_t n = tree_->grid().num_pixels();
  FFW_CHECK(nrhs >= 1);
  FFW_CHECK(x.size() == n * nrhs && y.size() == n * nrhs);
  ensure_block_capacity(nrhs);
  ensure_thread_scratch();
  std::fill(y.begin(), y.end(), cplx{});

  if (precision() == Precision::kMixed) {
    {
      // Narrow the input block once per apply; counted with the leaf
      // expansion since it is the pipeline's entry stage.
      PhaseTimerScope t(times_, MlfmaPhase::kExpansion);
      if (x32_.size() < x.size()) x32_.resize(x.size());
      narrow(x, cspan32{x32_.data(), x.size()});
    }
    if (tree_->num_levels() > 0) {
      upward_pass_t<float>(x32_.data(), nrhs);
      translation_pass_t<float>(nrhs);
      downward_pass_t<float>(y, nrhs);
    }
    near_pass_t<float>(x32_.data(), y, nrhs);
  } else {
    if (tree_->num_levels() > 0) {
      upward_pass_t<double>(x.data(), nrhs);
      translation_pass_t<double>(nrhs);
      downward_pass_t<double>(y, nrhs);
    }
    near_pass_t<double>(x.data(), y, nrhs);
  }
  times_.applications += static_cast<std::uint64_t>(nrhs);
  obs::add(obs::Counter::kMlfmaApplications, static_cast<std::uint64_t>(nrhs));
}

ccspan MlfmaEngine::upward_only(ccspan x) {
  const std::size_t n = tree_->grid().num_pixels();
  FFW_CHECK(x.size() == n);
  FFW_CHECK_MSG(tree_->num_levels() > 0,
                "upward_only needs at least one far-field level");
  ensure_block_capacity(1);
  ensure_thread_scratch();
  const int top = tree_->num_levels() - 1;
  const std::size_t top_len =
      static_cast<std::size_t>(plan_.level(top).samples) *
      tree_->level(top).num_clusters;
  if (precision() == Precision::kMixed) {
    if (x32_.size() < n) x32_.resize(n);
    narrow(x, cspan32{x32_.data(), n});
    upward_pass_t<float>(x32_.data(), 1);
    // Consumers (fast receiver operator) are fp64; widen the top panel.
    if (upward_widened_.size() < top_len) upward_widened_.resize(top_len);
    widen(ccspan32{s32_.back().data(), top_len},
          cspan{upward_widened_.data(), top_len});
    return ccspan{upward_widened_.data(), top_len};
  }
  upward_pass_t<double>(x.data(), 1);
  return ccspan{s_.back().data(), top_len};
}

void MlfmaEngine::apply_herm(ccspan x, cspan y) { apply_herm_block(x, y, 1); }

void MlfmaEngine::apply_herm_block(ccspan x, cspan y, std::size_t nrhs) {
  // G0 is complex-symmetric: G0^T = G0, hence G0^H = conj(G0) and
  // G0^H x = conj(G0 conj(x)). The conjugated copy lives in a member
  // scratch buffer reused across calls.
  if (herm_scratch_.size() < x.size()) herm_scratch_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    herm_scratch_[i] = std::conj(x[i]);
  apply_block(ccspan{herm_scratch_.data(), x.size()}, y, nrhs);
  for (auto& v : y) v = std::conj(v);
}

}  // namespace ffw
