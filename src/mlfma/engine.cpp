#include "mlfma/engine.hpp"

#include <algorithm>

#include "linalg/gemm.hpp"
#include "parallel/parallel_for.hpp"

namespace ffw {

const char* phase_name(MlfmaPhase p) {
  switch (p) {
    case MlfmaPhase::kExpansion: return "Multipole Expansion";
    case MlfmaPhase::kAggregation: return "Aggregation";
    case MlfmaPhase::kTranslation: return "Translation";
    case MlfmaPhase::kDisaggregation: return "Disaggregation";
    case MlfmaPhase::kLocalExpansion: return "Local Expansion";
    case MlfmaPhase::kNearField: return "Near-Field Interactions";
    default: return "?";
  }
}

double PhaseTimes::total() const {
  double s = 0.0;
  for (double v : seconds) s += v;
  return s;
}

void PhaseTimes::clear() {
  seconds.fill(0.0);
  applications = 0;
}

namespace {
class PhaseTimerScope {
 public:
  PhaseTimerScope(PhaseTimes& t, MlfmaPhase p)
      : acc_(t.seconds[static_cast<std::size_t>(p)]) {}
  ~PhaseTimerScope() { acc_ += timer_.seconds(); }

 private:
  double& acc_;
  Timer timer_;
};
}  // namespace

MlfmaEngine::MlfmaEngine(const QuadTree& tree, const MlfmaParams& params)
    : tree_(&tree), plan_(tree, params), ops_(tree, plan_), near_(tree) {
  s_.resize(static_cast<std::size_t>(tree.num_levels()));
  g_.resize(static_cast<std::size_t>(tree.num_levels()));
  for (int l = 0; l < tree.num_levels(); ++l) {
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    s_[static_cast<std::size_t>(l)].resize(q * tree.level(l).num_clusters);
    g_[static_cast<std::size_t>(l)].resize(q * tree.level(l).num_clusters);
  }
}

std::size_t MlfmaEngine::bytes() const {
  std::size_t s = ops_.bytes() + near_.bytes();
  for (const auto& v : s_) s += v.size() * sizeof(cplx);
  for (const auto& v : g_) s += v.size() * sizeof(cplx);
  return s;
}

void MlfmaEngine::upward_pass(ccspan x) {
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t nleaf = tree_->num_leaves();
  const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);

  {
    PhaseTimerScope t(times_, MlfmaPhase::kExpansion);
    // S0 = E (q0 x 64) * X (64 x nleaf): one batched GEMM over a column
    // range per thread.
    const std::size_t nthreads =
        std::min<std::size_t>(static_cast<std::size_t>(num_threads()), nleaf);
    const std::size_t chunk = (nleaf + nthreads - 1) / nthreads;
    parallel_for(0, nthreads, [&](std::size_t tid) {
      const std::size_t c0 = tid * chunk;
      const std::size_t c1 = std::min(nleaf, c0 + chunk);
      if (c0 >= c1) return;
      gemm_raw(q0, c1 - c0, np, cplx{1.0}, ops_.expansion().data(), q0,
               x.data() + c0 * np, np, cplx{0.0}, s_[0].data() + c0 * q0, q0);
    });
  }

  PhaseTimerScope t(times_, MlfmaPhase::kAggregation);
  for (int l = 0; l + 1 < tree_->num_levels(); ++l) {
    const LevelOperators& ops = ops_.level(l);
    const std::size_t qc = static_cast<std::size_t>(ops.samples);
    const std::size_t qp =
        static_cast<std::size_t>(plan_.level(l + 1).samples);
    const std::size_t nparents = tree_->level(l + 1).num_clusters;
    const cplx* src = s_[static_cast<std::size_t>(l)].data();
    cplx* dst = s_[static_cast<std::size_t>(l) + 1].data();
    parallel_for(0, nparents, [&](std::size_t p) {
      cplx* sp = dst + p * qp;
      std::fill(sp, sp + qp, cplx{});
      cvec tmp(qp);
      for (int j = 0; j < 4; ++j) {
        // Child Morton index = 4p + j; bit0/bit1 of j give the child's
        // +-x/+-y position, matching the shift-table construction.
        const cplx* sc = src + (4 * p + static_cast<std::size_t>(j)) * qc;
        ops.interp.apply(ccspan{sc, qc}, tmp);
        const cvec& sh = ops.up_shift[static_cast<std::size_t>(j)];
        for (std::size_t q = 0; q < qp; ++q) sp[q] += sh[q] * tmp[q];
      }
    });
  }
}

void MlfmaEngine::translation_pass() {
  PhaseTimerScope t(times_, MlfmaPhase::kTranslation);
  for (int l = 0; l < tree_->num_levels(); ++l) {
    const TreeLevel& lvl = tree_->level(l);
    const LevelOperators& ops = ops_.level(l);
    const std::size_t q = static_cast<std::size_t>(ops.samples);
    const cplx* src = s_[static_cast<std::size_t>(l)].data();
    cplx* dst = g_[static_cast<std::size_t>(l)].data();
    parallel_for_dynamic(0, lvl.num_clusters, [&](std::size_t c) {
      cplx* gc = dst + c * q;
      std::fill(gc, gc + q, cplx{});
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const FarEntry& fe = lvl.far[e];
        const cplx* sc = src + static_cast<std::size_t>(fe.src) * q;
        const cvec& trans = ops.translations[fe.trans_type];
        for (std::size_t i = 0; i < q; ++i) gc[i] += trans[i] * sc[i];
      }
    });
  }
}

void MlfmaEngine::downward_pass(cspan y) {
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t nleaf = tree_->num_leaves();

  {
    PhaseTimerScope t(times_, MlfmaPhase::kDisaggregation);
    for (int l = tree_->num_levels() - 1; l >= 1; --l) {
      const LevelOperators& child_ops = ops_.level(l - 1);
      const std::size_t qp = static_cast<std::size_t>(plan_.level(l).samples);
      const std::size_t qc = static_cast<std::size_t>(child_ops.samples);
      const std::size_t nparents = tree_->level(l).num_clusters;
      const cplx* src = g_[static_cast<std::size_t>(l)].data();
      cplx* dst = g_[static_cast<std::size_t>(l) - 1].data();
      // Anterpolation scale: quadrature-consistent resampling down to the
      // child rate (see DESIGN.md Sec. 5).
      const double scale = static_cast<double>(qc) / static_cast<double>(qp);
      parallel_for(0, nparents, [&](std::size_t p) {
        const cplx* gp = src + p * qp;
        cvec shifted(qp), down(qc);
        for (int j = 0; j < 4; ++j) {
          const cvec& sh = child_ops.down_shift[static_cast<std::size_t>(j)];
          for (std::size_t q = 0; q < qp; ++q) shifted[q] = sh[q] * gp[q];
          child_ops.interp.apply_adjoint(shifted, down);
          cplx* gc = dst + (4 * p + static_cast<std::size_t>(j)) * qc;
          for (std::size_t q = 0; q < qc; ++q) gc[q] += scale * down[q];
        }
      });
    }
  }

  PhaseTimerScope t(times_, MlfmaPhase::kLocalExpansion);
  const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
  const std::size_t nthreads =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads()), nleaf);
  const std::size_t chunk = (nleaf + nthreads - 1) / nthreads;
  parallel_for(0, nthreads, [&](std::size_t tid) {
    const std::size_t c0 = tid * chunk;
    const std::size_t c1 = std::min(nleaf, c0 + chunk);
    if (c0 >= c1) return;
    // y(64 x cols) += R (64 x q0) * G0 (q0 x cols)
    gemm_raw(np, c1 - c0, q0, cplx{1.0}, ops_.local_expansion().data(), np,
             g_[0].data() + c0 * q0, q0, cplx{1.0}, y.data() + c0 * np, np);
  });
}

void MlfmaEngine::apply(ccspan x, cspan y) {
  const std::size_t n = tree_->grid().num_pixels();
  FFW_CHECK(x.size() == n && y.size() == n);
  std::fill(y.begin(), y.end(), cplx{});

  if (tree_->num_levels() > 0) {
    upward_pass(x);
    translation_pass();
    downward_pass(y);
  }

  {
    PhaseTimerScope t(times_, MlfmaPhase::kNearField);
    const std::size_t np =
        static_cast<std::size_t>(tree_->pixels_per_leaf());
    const auto& begin = tree_->near_begin();
    const auto& entries = tree_->near();
    parallel_for_dynamic(0, tree_->num_leaves(), [&](std::size_t c) {
      cplx* yd = y.data() + c * np;
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const NearEntry& ne = entries[e];
        const CMatrix& m = near_.type(ne.near_type);
        const cplx* xs = x.data() + static_cast<std::size_t>(ne.src) * np;
        gemm_raw(np, 1, np, cplx{1.0}, m.data(), np, xs, np, cplx{1.0}, yd,
                 np);
      }
    });
  }
  ++times_.applications;
}

ccspan MlfmaEngine::upward_only(ccspan x) {
  const std::size_t n = tree_->grid().num_pixels();
  FFW_CHECK(x.size() == n);
  FFW_CHECK_MSG(tree_->num_levels() > 0,
                "upward_only needs at least one far-field level");
  upward_pass(x);
  return ccspan{s_.back()};
}

void MlfmaEngine::apply_herm(ccspan x, cspan y) {
  // G0 is complex-symmetric: G0^T = G0, hence G0^H = conj(G0) and
  // G0^H x = conj(G0 conj(x)).
  cvec xc(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = std::conj(x[i]);
  apply(xc, y);
  for (auto& v : y) v = std::conj(v);
}

}  // namespace ffw
