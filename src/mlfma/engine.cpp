#include "mlfma/engine.hpp"

#include <algorithm>

#include "linalg/gemm.hpp"
#include "parallel/parallel_for.hpp"

namespace ffw {

const char* phase_name(MlfmaPhase p) {
  switch (p) {
    case MlfmaPhase::kExpansion: return "Multipole Expansion";
    case MlfmaPhase::kAggregation: return "Aggregation";
    case MlfmaPhase::kTranslation: return "Translation";
    case MlfmaPhase::kDisaggregation: return "Disaggregation";
    case MlfmaPhase::kLocalExpansion: return "Local Expansion";
    case MlfmaPhase::kNearField: return "Near-Field Interactions";
    default: return "?";
  }
}

double PhaseTimes::total() const {
  double s = 0.0;
  for (double v : seconds) s += v;
  return s;
}

void PhaseTimes::clear() {
  seconds.fill(0.0);
  applications = 0;
}

namespace {
class PhaseTimerScope {
 public:
  PhaseTimerScope(PhaseTimes& t, MlfmaPhase p)
      : acc_(t.seconds[static_cast<std::size_t>(p)]) {}
  ~PhaseTimerScope() { acc_ += timer_.seconds(); }

 private:
  double& acc_;
  Timer timer_;
};
}  // namespace

MlfmaEngine::MlfmaEngine(const QuadTree& tree, const MlfmaParams& params)
    : tree_(&tree), plan_(tree, params), ops_(tree, plan_), near_(tree) {
  s_.resize(static_cast<std::size_t>(tree.num_levels()));
  g_.resize(static_cast<std::size_t>(tree.num_levels()));
  ensure_block_capacity(1);
}

void MlfmaEngine::ensure_block_capacity(std::size_t nrhs) {
  if (nrhs <= block_capacity_ && !s_.empty() &&
      (tree_->num_levels() == 0 || !s_[0].empty())) {
    return;
  }
  block_capacity_ = std::max(block_capacity_, nrhs);
  for (int l = 0; l < tree_->num_levels(); ++l) {
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    const std::size_t need =
        q * tree_->level(l).num_clusters * block_capacity_;
    if (s_[static_cast<std::size_t>(l)].size() < need)
      s_[static_cast<std::size_t>(l)].resize(need);
    if (g_[static_cast<std::size_t>(l)].size() < need)
      g_[static_cast<std::size_t>(l)].resize(need);
  }
}

std::size_t MlfmaEngine::bytes() const {
  std::size_t s = ops_.bytes() + near_.bytes();
  for (const auto& v : s_) s += v.size() * sizeof(cplx);
  for (const auto& v : g_) s += v.size() * sizeof(cplx);
  for (const auto& v : thread_scratch_) s += v.size() * sizeof(cplx);
  s += herm_scratch_.size() * sizeof(cplx);
  return s;
}

void MlfmaEngine::upward_pass(ccspan x, std::size_t nrhs) {
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t nleaf = tree_->num_leaves();
  const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);

  {
    PhaseTimerScope t(times_, MlfmaPhase::kExpansion);
    // S0 = E (q0 x np) * X (np x nleaf*nrhs): one batched GEMM over a
    // column range per thread. In the block layout consecutive leaves'
    // np x nrhs input panels are contiguous, so a leaf range is just a
    // wider GEMM.
    const std::size_t nthreads =
        std::min<std::size_t>(static_cast<std::size_t>(num_threads()), nleaf);
    const std::size_t chunk = (nleaf + nthreads - 1) / nthreads;
    parallel_for(0, nthreads, [&](std::size_t tid) {
      const std::size_t c0 = tid * chunk;
      const std::size_t c1 = std::min(nleaf, c0 + chunk);
      if (c0 >= c1) return;
      gemm_raw(q0, (c1 - c0) * nrhs, np, cplx{1.0}, ops_.expansion().data(),
               q0, x.data() + c0 * np * nrhs, np, cplx{0.0},
               s_[0].data() + c0 * q0 * nrhs, q0);
    });
  }

  PhaseTimerScope t(times_, MlfmaPhase::kAggregation);
  for (int l = 0; l + 1 < tree_->num_levels(); ++l) {
    const LevelOperators& ops = ops_.level(l);
    const std::size_t qc = static_cast<std::size_t>(ops.samples);
    const std::size_t qp =
        static_cast<std::size_t>(plan_.level(l + 1).samples);
    const std::size_t nparents = tree_->level(l + 1).num_clusters;
    const cplx* src = s_[static_cast<std::size_t>(l)].data();
    cplx* dst = s_[static_cast<std::size_t>(l) + 1].data();
    parallel_for(0, nparents, [&](std::size_t p) {
      cplx* sp = dst + p * qp * nrhs;
      std::fill(sp, sp + qp * nrhs, cplx{});
      cvec& ws = thread_scratch_[static_cast<std::size_t>(thread_rank())];
      if (ws.size() < qp * nrhs) ws.resize(qp * nrhs);
      cplx* tmp = ws.data();
      for (int j = 0; j < 4; ++j) {
        // Child Morton index = 4p + j; bit0/bit1 of j give the child's
        // +-x/+-y position, matching the shift-table construction.
        const cplx* sc =
            src + (4 * p + static_cast<std::size_t>(j)) * qc * nrhs;
        ops.interp.apply_batch(sc, qc, tmp, qp, nrhs);
        const cvec& sh = ops.up_shift[static_cast<std::size_t>(j)];
        for (std::size_t r = 0; r < nrhs; ++r) {
          cplx* spr = sp + r * qp;
          const cplx* tr = tmp + r * qp;
          for (std::size_t q = 0; q < qp; ++q) spr[q] += sh[q] * tr[q];
        }
      }
    });
  }
}

void MlfmaEngine::translation_pass(std::size_t nrhs) {
  PhaseTimerScope t(times_, MlfmaPhase::kTranslation);
  for (int l = 0; l < tree_->num_levels(); ++l) {
    const TreeLevel& lvl = tree_->level(l);
    const LevelOperators& ops = ops_.level(l);
    const std::size_t q = static_cast<std::size_t>(ops.samples);
    const cplx* src = s_[static_cast<std::size_t>(l)].data();
    cplx* dst = g_[static_cast<std::size_t>(l)].data();
    parallel_for_dynamic(0, lvl.num_clusters, [&](std::size_t c) {
      cplx* gc = dst + c * q * nrhs;
      std::fill(gc, gc + q * nrhs, cplx{});
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const FarEntry& fe = lvl.far[e];
        const cplx* sc = src + static_cast<std::size_t>(fe.src) * q * nrhs;
        // One translation diagonal read amortised over all nrhs spectra.
        const cvec& trans = ops.translations[fe.trans_type];
        for (std::size_t r = 0; r < nrhs; ++r) {
          cplx* gr = gc + r * q;
          const cplx* sr = sc + r * q;
          for (std::size_t i = 0; i < q; ++i) gr[i] += trans[i] * sr[i];
        }
      }
    });
  }
}

void MlfmaEngine::downward_pass(cspan y, std::size_t nrhs) {
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t nleaf = tree_->num_leaves();

  {
    PhaseTimerScope t(times_, MlfmaPhase::kDisaggregation);
    for (int l = tree_->num_levels() - 1; l >= 1; --l) {
      const LevelOperators& child_ops = ops_.level(l - 1);
      const std::size_t qp = static_cast<std::size_t>(plan_.level(l).samples);
      const std::size_t qc = static_cast<std::size_t>(child_ops.samples);
      const std::size_t nparents = tree_->level(l).num_clusters;
      const cplx* src = g_[static_cast<std::size_t>(l)].data();
      cplx* dst = g_[static_cast<std::size_t>(l) - 1].data();
      // Anterpolation scale: quadrature-consistent resampling down to the
      // child rate (see DESIGN.md Sec. 5).
      const double scale = static_cast<double>(qc) / static_cast<double>(qp);
      parallel_for(0, nparents, [&](std::size_t p) {
        const cplx* gp = src + p * qp * nrhs;
        cvec& ws = thread_scratch_[static_cast<std::size_t>(thread_rank())];
        if (ws.size() < (qp + qc) * nrhs) ws.resize((qp + qc) * nrhs);
        cplx* shifted = ws.data();
        cplx* down = ws.data() + qp * nrhs;
        for (int j = 0; j < 4; ++j) {
          const cvec& sh = child_ops.down_shift[static_cast<std::size_t>(j)];
          for (std::size_t r = 0; r < nrhs; ++r) {
            cplx* sr = shifted + r * qp;
            const cplx* gr = gp + r * qp;
            for (std::size_t q = 0; q < qp; ++q) sr[q] = sh[q] * gr[q];
          }
          child_ops.interp.apply_adjoint_batch(shifted, qp, down, qc, nrhs);
          cplx* gc =
              dst + (4 * p + static_cast<std::size_t>(j)) * qc * nrhs;
          for (std::size_t i = 0; i < qc * nrhs; ++i)
            gc[i] += scale * down[i];
        }
      });
    }
  }

  PhaseTimerScope t(times_, MlfmaPhase::kLocalExpansion);
  const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
  const std::size_t nthreads =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads()), nleaf);
  const std::size_t chunk = (nleaf + nthreads - 1) / nthreads;
  parallel_for(0, nthreads, [&](std::size_t tid) {
    const std::size_t c0 = tid * chunk;
    const std::size_t c1 = std::min(nleaf, c0 + chunk);
    if (c0 >= c1) return;
    // Y(np x cols) += R (np x q0) * G0 (q0 x cols), cols = leaves * nrhs
    gemm_raw(np, (c1 - c0) * nrhs, q0, cplx{1.0},
             ops_.local_expansion().data(), np,
             g_[0].data() + c0 * q0 * nrhs, q0, cplx{1.0},
             y.data() + c0 * np * nrhs, np);
  });
}

void MlfmaEngine::apply(ccspan x, cspan y) { apply_block(x, y, 1); }

void MlfmaEngine::apply_block(ccspan x, cspan y, std::size_t nrhs) {
  const std::size_t n = tree_->grid().num_pixels();
  FFW_CHECK(nrhs >= 1);
  FFW_CHECK(x.size() == n * nrhs && y.size() == n * nrhs);
  ensure_block_capacity(nrhs);
  if (thread_scratch_.size() < static_cast<std::size_t>(num_threads()))
    thread_scratch_.resize(static_cast<std::size_t>(num_threads()));
  std::fill(y.begin(), y.end(), cplx{});

  if (tree_->num_levels() > 0) {
    upward_pass(x, nrhs);
    translation_pass(nrhs);
    downward_pass(y, nrhs);
  }

  {
    PhaseTimerScope t(times_, MlfmaPhase::kNearField);
    const std::size_t np =
        static_cast<std::size_t>(tree_->pixels_per_leaf());
    const auto& begin = tree_->near_begin();
    const auto& entries = tree_->near();
    parallel_for_dynamic(0, tree_->num_leaves(), [&](std::size_t c) {
      cplx* yd = y.data() + c * np * nrhs;
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const NearEntry& ne = entries[e];
        const CMatrix& m = near_.type(ne.near_type);
        const cplx* xs =
            x.data() + static_cast<std::size_t>(ne.src) * np * nrhs;
        gemm_raw(np, nrhs, np, cplx{1.0}, m.data(), np, xs, np, cplx{1.0},
                 yd, np);
      }
    });
  }
  times_.applications += static_cast<std::uint64_t>(nrhs);
}

ccspan MlfmaEngine::upward_only(ccspan x) {
  const std::size_t n = tree_->grid().num_pixels();
  FFW_CHECK(x.size() == n);
  FFW_CHECK_MSG(tree_->num_levels() > 0,
                "upward_only needs at least one far-field level");
  if (thread_scratch_.size() < static_cast<std::size_t>(num_threads()))
    thread_scratch_.resize(static_cast<std::size_t>(num_threads()));
  upward_pass(x, 1);
  const int top = tree_->num_levels() - 1;
  const std::size_t q_top =
      static_cast<std::size_t>(plan_.level(top).samples);
  return ccspan{s_.back().data(), q_top * tree_->level(top).num_clusters};
}

void MlfmaEngine::apply_herm(ccspan x, cspan y) { apply_herm_block(x, y, 1); }

void MlfmaEngine::apply_herm_block(ccspan x, cspan y, std::size_t nrhs) {
  // G0 is complex-symmetric: G0^T = G0, hence G0^H = conj(G0) and
  // G0^H x = conj(G0 conj(x)). The conjugated copy lives in a member
  // scratch buffer reused across calls.
  if (herm_scratch_.size() < x.size()) herm_scratch_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    herm_scratch_[i] = std::conj(x[i]);
  apply_block(ccspan{herm_scratch_.data(), x.size()}, y, nrhs);
  for (auto& v : y) v = std::conj(v);
}

}  // namespace ffw
