// Distributed-memory MLFMA: the paper's second parallelisation dimension
// (Sec. IV-A/IV-B), executed over the virtual cluster.
//
// The 16 sub-trees rooted at the top computed level (4x4 clusters) are
// distributed over P <= 16 ranks in Morton order; because a cluster and
// all of its descendants share a Morton prefix, every rank owns a
// contiguous range of clusters at *every* level, and:
//
//   * the leaf multipole/local expansions, aggregation and
//     disaggregation are entirely local (no communication);
//   * the translation phase at each level needs the outgoing spectra of
//     remote interaction-list sources — exchanged once per level with
//     one aggregated buffer per peer (Sec. IV-B: "small communication
//     buffers are aggregated into larger ones");
//   * the near-field phase needs ghost leaf values of boundary
//     neighbours — likewise one buffer per peer.
//
// Communication/computation overlap (paper Fig. 8) is realised by a
// dependency-split schedule computed once at construction
// (mlfma/schedule.hpp): each rank posts its near-field halo *before*
// the upward pass and each level's spectra right after that level is
// aggregated; it then runs everything that depends only on owned data —
// the interior near field and every local translation — while halo
// messages are in flight, and drains peer messages in *arrival* order
// (Comm::wait_any), running each peer's remote work the moment its
// message lands. The blocking-ordered schedule (fixed peer-and-level
// drain order, no local work while waiting) is kept as the ablation
// baseline for the Fig. 8 reproduction (bench_overlap).
//
// All per-apply spectra panels are compact: owned clusters plus the
// ghost clusters this rank actually consumes, O(local share) instead of
// O(global tree) memory (asserted in tests/overlap_test.cpp).
//
// Rank-local vectors are the rank's contiguous leaf slice in cluster
// order (64 pixels per leaf). Equality with the serial engine is
// asserted bit-for-bit-modulo-rounding in tests/partitioned_test.cpp;
// equality under randomized message delays (out-of-order arrival) in
// tests/overlap_test.cpp.
#pragma once

#include <memory>

#include "greens/nearfield.hpp"
#include "mlfma/operators.hpp"
#include "mlfma/plan.hpp"
#include "mlfma/schedule.hpp"
#include "mlfma/tables.hpp"
#include "vcluster/comm.hpp"

namespace ffw {

/// Drain strategy of the distributed apply (Fig. 8 ablation axis).
enum class ApplySchedule {
  /// Local-first with arrival-order halo draining (the default).
  kOverlapped,
  /// Fixed peer-and-level receive order, no local work while waiting —
  /// the pre-overlap baseline, kept for the Fig. 8 ablation bench.
  kBlockingOrdered,
};

class PartitionedMlfma {
 public:
  /// `nranks` must divide the top-level cluster count (1, 2, 4, 8 or 16
  /// for trees reaching the 4x4 top level). Builds a private
  /// OperatorTables artifact for this instance.
  PartitionedMlfma(const QuadTree& tree, const MlfmaParams& params,
                   int nranks);

  /// Shares a prebuilt read-only table artifact (mlfma/tables.hpp) —
  /// only the per-rank dependency-split schedule is built per instance,
  /// so repeated parallel reconstructions over the same configuration
  /// amortise the table cost through OperatorTableCache.
  PartitionedMlfma(std::shared_ptr<const OperatorTables> tables, int nranks);

  int nranks() const { return nranks_; }
  const QuadTree& tree() const { return *tree_; }
  const MlfmaPlan& plan() const { return plan_; }

  /// Leaf-cluster ownership range of `rank`.
  std::size_t leaf_begin(int rank) const;
  std::size_t leaf_end(int rank) const;
  /// Pixel count of the rank's slice.
  std::size_t local_pixels(int rank) const {
    return (leaf_end(rank) - leaf_begin(rank)) *
           static_cast<std::size_t>(tree_->pixels_per_leaf());
  }

  /// y_local = (G0 x)|_rank, given x_local = x|_rank. Collective: every
  /// rank in [rank_base, rank_base + nranks) must call this inside the
  /// same VCluster::run; the tree rank is comm.rank() - rank_base. The
  /// 2-D DBIM driver uses rank_base = group * tree_ranks so several
  /// illumination groups run independent distributed MLFMAs in the same
  /// cluster (paper Fig. 6).
  void apply(Comm& comm, ccspan x_local, cspan y_local,
             int rank_base = 0) const;

  /// y_local = (G0^H x)|_rank (via conjugation symmetry, still
  /// collective).
  void apply_herm(Comm& comm, ccspan x_local, cspan y_local,
                  int rank_base = 0) const;

  /// Multi-RHS apply on the rank-local block slice (leaf-interleaved
  /// layout of linalg/block.hpp restricted to the rank's leaves, panel =
  /// pixels_per_leaf). One message per peer per level carries all nrhs
  /// spectra — the same byte volume as nrhs single applies in 1/nrhs the
  /// messages (fewer, fatter vcluster messages). `sched` picks the halo
  /// drain strategy; both produce identical results (same arithmetic,
  /// accumulation reordered within rounding) with identical traffic.
  void apply_block(Comm& comm, ccspan x_local, cspan y_local,
                   std::size_t nrhs, int rank_base = 0,
                   ApplySchedule sched = ApplySchedule::kOverlapped) const;

  /// Blocked Hermitian apply (conjugation symmetry, collective).
  void apply_herm_block(Comm& comm, ccspan x_local, cspan y_local,
                        std::size_t nrhs, int rank_base = 0,
                        ApplySchedule sched = ApplySchedule::kOverlapped) const;

  /// Per-apply spectra-panel footprint of `rank` in complex elements per
  /// right-hand side: sum over levels of Q_l * (owned + ghost) for the
  /// outgoing panel plus Q_l * owned for the incoming panel, plus the
  /// near-field ghost leaf panel. Multiply by nrhs * sizeof(cplx) for
  /// bytes. The pre-compaction implementation held 2 * Q_l * N_l global
  /// elements instead (`global_panel_elements`).
  std::size_t panel_elements(int rank) const;
  std::size_t global_panel_elements() const;

  /// The plan-time dependency split (exposed for tests/benches).
  const RankSchedule& schedule(int rank) const {
    return schedule_[static_cast<std::size_t>(rank)];
  }

  /// Shared near-field operator tables — the per-leaf self block
  /// (type 4) feeds the rank-local block-Jacobi preconditioner of the
  /// parallel DBIM driver (forward/precond.hpp).
  const NearFieldOperators& nearfield() const { return near_; }

 private:
  std::size_t cluster_begin(int level, int rank) const;
  std::size_t cluster_end(int level, int rank) const;
  int owner_of(int level, std::size_t cluster) const;

  // Scalar-templated apply body: T = double is the reference path, T =
  // float the Precision::kMixed path. Under T = float every spectra
  // panel, ghost buffer and *wire message* (near-field halo + per-level
  // spectra, same tags) is cplx32 — the typed vcluster send/recv makes
  // the per-edge halo bytes exactly half the fp64 run's — while y_local
  // still accumulates in fp64 at the local-expansion/near-field GEMMs.
  template <typename T>
  void apply_block_impl(Comm& comm, const std::complex<T>* x_local,
                        cspan y_local, std::size_t nrhs, int rank_base,
                        ApplySchedule sched) const;

  // Immutable shared tables with reference aliases (cf. MlfmaEngine).
  std::shared_ptr<const OperatorTables> tables_;
  const QuadTree* tree_;
  const MlfmaPlan& plan_;
  const MlfmaOperators& ops_;
  const NearFieldOperators& near_;
  int nranks_;

  // schedule_[rank]: per-level + near-field dependency split.
  std::vector<RankSchedule> schedule_;
};

}  // namespace ffw
