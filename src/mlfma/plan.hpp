// MLFMA sampling plan: truncation orders, sample counts and workspace
// sizes per quad-tree level.
//
// The outgoing/incoming fields of a cluster of width w are band-limited
// (to working precision) to harmonic order
//
//   L(w) = ceil( k d + 1.8 * d0^(2/3) * (k d)^(1/3) ),   d = w * sqrt(2),
//
// the classic "excess bandwidth" rule, with d0 the requested number of
// accurate digits (paper Sec. V-B targets 1e-5 => d0 = 5). Each level
// stores Q >= oversample * (2L+1) uniform angular samples; the
// oversampling (default 2x) is what lets the *local* band-diagonal
// Lagrange interpolation of Sec. IV-D reach the target accuracy instead
// of requiring exact (global FFT) resampling.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "grid/quadtree.hpp"

namespace ffw {

struct MlfmaParams {
  /// Requested accurate digits of the matvec relative to the dense
  /// reference (paper: 5).
  double digits = 5.0;
  /// Angular oversampling factor for each level's sample grid.
  double oversample = 2.0;
  /// Width (points) of the band-diagonal interpolation stencil;
  /// 0 = choose from `digits`.
  int interp_width = 0;
  /// Arithmetic policy for the apply pipeline. kMixed builds the operator
  /// tables in fp64, rounds them once to fp32 at setup (halving the table
  /// footprint), streams all spectra panels in fp32 and accumulates in
  /// fp64 only at the dense leaf-expansion boundaries (Sec. "Precision
  /// policy" in DESIGN.md). Matvec accuracy is ~3e-6 relative, well under
  /// the paper's 1e-5 target.
  Precision precision = Precision::kDouble;
};

/// Truncation order for a cluster of width `w` (wavelength units) at
/// wavenumber k.
int truncation_order(double k, double w, double digits);

struct LevelPlan {
  int truncation = 0;   // L
  int samples = 0;      // Q (uniform angles 2*pi*q/Q)
};

class MlfmaPlan {
 public:
  MlfmaPlan(const QuadTree& tree, const MlfmaParams& params);

  const MlfmaParams& params() const { return params_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const LevelPlan& level(int l) const { return levels_[static_cast<std::size_t>(l)]; }

  /// Effective interpolation stencil width.
  int interp_width() const { return interp_width_; }

 private:
  MlfmaParams params_;
  std::vector<LevelPlan> levels_;
  int interp_width_;
};

}  // namespace ffw
