// Plan-time dependency split of the distributed MLFMA apply (paper
// Sec. IV-B / Fig. 8).
//
// The partitioned apply has exactly two kinds of data dependencies:
//
//   * a translation at level l reads the outgoing spectrum of a source
//     cluster — owned by this rank (ready right after the upward pass)
//     or by a peer (ready when that peer's level-l halo message lands);
//   * a near-field block at the leaf level reads a source leaf's pixel
//     values — owned (ready immediately) or a ghost (ready when the
//     peer's near-field halo message lands).
//
// This module resolves those dependencies once, at construction time,
// into flat work lists:
//
//   * `local` entries depend only on owned data and can run while halo
//     messages are still in flight — they are the latency-hiding work of
//     the overlapped schedule;
//   * `recvs` groups the remaining entries by the single peer message
//     that unlocks them, so the apply can drain messages in *arrival*
//     order and run each group the moment its message lands.
//
// Slots, not global indices: every entry addresses compact per-rank
// panels. Owned clusters of a level map to slots [0, owned_count) in
// Morton order (slot = cluster - owned_begin); ghost clusters map to
// slots [0, num_ghosts) of a separate ghost panel, sorted by global
// index. Because rank ownership is a monotone partition of the Morton
// order, each peer's ghost contribution is a *contiguous* slot range —
// halo payloads are received straight into the ghost panel with no
// scatter pass. Per-apply panel memory is O(owned + ghost) instead of
// O(global tree).
#pragma once

#include <cstdint>
#include <vector>

#include "grid/quadtree.hpp"

namespace ffw {

/// One resolved unit of halo-dependent work. For translations:
/// g_owned[dst_slot] += T[type] ∘ s[src_slot] (type = translation-
/// operator index). For near field: y[dst_slot] += N[type] x[src_slot]
/// (type = near-operator index). In a `local` list src_slot indexes the
/// owned panel (spectra resp. x_local); in a peer's `work` list it
/// indexes the ghost panel.
struct HaloWork {
  std::uint32_t dst_slot;
  std::uint32_t src_slot;
  std::uint16_t type;
};

/// Outgoing halo to one peer: owned-panel slots to pack, in the order
/// the peer stores them in its ghost panel.
struct PeerSend {
  int peer = -1;
  std::vector<std::uint32_t> slots;
};

/// One inbound peer message and the work it unlocks. The payload is
/// `count` clusters received contiguously into ghost-panel slots
/// [slot_begin, slot_begin + count).
struct PeerRecv {
  int peer = -1;
  std::uint32_t slot_begin = 0;
  std::uint32_t count = 0;
  std::vector<HaloWork> work;
};

/// Dependency split of one interaction phase (one far-field level, or
/// the leaf near field) for one rank.
struct PhaseSchedule {
  std::size_t owned_begin = 0, owned_end = 0;  // global cluster range
  std::size_t num_ghosts = 0;                  // ghost panel width
  std::vector<HaloWork> local;
  std::vector<PeerSend> sends;
  std::vector<PeerRecv> recvs;
};

/// The full dependency-split apply schedule of one rank: one phase per
/// far-field level plus the leaf near-field phase.
struct RankSchedule {
  std::vector<PhaseSchedule> levels;
  PhaseSchedule near;
};

/// Builds the schedule for every rank of a `nranks`-way partition
/// (ownership = contiguous Morton ranges: owner(c) = c * nranks / N_l).
/// `nranks` must divide the top-level cluster count.
std::vector<RankSchedule> build_apply_schedule(const QuadTree& tree,
                                               int nranks);

}  // namespace ffw
