#include "mlfma/partitioned.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "linalg/gemm.hpp"
#include "linalg/kernels.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {
constexpr int kTagNear = 1;
constexpr int kTagLevel = 10;  // + level
}  // namespace

PartitionedMlfma::PartitionedMlfma(const QuadTree& tree,
                                   const MlfmaParams& params, int nranks)
    : PartitionedMlfma(std::make_shared<const OperatorTables>(tree, params),
                       nranks) {}

PartitionedMlfma::PartitionedMlfma(std::shared_ptr<const OperatorTables> tables,
                                   int nranks)
    : tables_(std::move(tables)), tree_(&tables_->tree()),
      plan_(tables_->plan()), ops_(tables_->ops()),
      near_(tables_->nearfield()), nranks_(nranks) {
  FFW_CHECK_MSG(tree_->num_levels() >= 1,
                "partitioned MLFMA needs at least one far-field level");
  const std::size_t top_clusters =
      tree_->level(tree_->num_levels() - 1).num_clusters;
  FFW_CHECK_MSG(nranks >= 1 &&
                    top_clusters % static_cast<std::size_t>(nranks) == 0,
                "rank count must divide the top-level cluster count (16)");
  schedule_ = build_apply_schedule(*tree_, nranks);
}

std::size_t PartitionedMlfma::cluster_begin(int level, int rank) const {
  return tree_->level(level).num_clusters * static_cast<std::size_t>(rank) /
         static_cast<std::size_t>(nranks_);
}

std::size_t PartitionedMlfma::cluster_end(int level, int rank) const {
  return cluster_begin(level, rank + 1);
}

int PartitionedMlfma::owner_of(int level, std::size_t cluster) const {
  return static_cast<int>(cluster * static_cast<std::size_t>(nranks_) /
                          tree_->level(level).num_clusters);
}

std::size_t PartitionedMlfma::leaf_begin(int rank) const {
  return cluster_begin(0, rank);
}

std::size_t PartitionedMlfma::leaf_end(int rank) const {
  return cluster_end(0, rank);
}

std::size_t PartitionedMlfma::panel_elements(int rank) const {
  const RankSchedule& rs = schedule_[static_cast<std::size_t>(rank)];
  std::size_t n = 0;
  for (int l = 0; l < tree_->num_levels(); ++l) {
    const PhaseSchedule& ls = rs.levels[static_cast<std::size_t>(l)];
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    n += q * (2 * (ls.owned_end - ls.owned_begin) + ls.num_ghosts);
  }
  n += rs.near.num_ghosts *
       static_cast<std::size_t>(tree_->pixels_per_leaf());
  return n;
}

std::size_t PartitionedMlfma::global_panel_elements() const {
  std::size_t n = 0;
  for (int l = 0; l < tree_->num_levels(); ++l) {
    n += 2 * static_cast<std::size_t>(plan_.level(l).samples) *
         tree_->level(l).num_clusters;
  }
  n += tree_->num_leaves() * static_cast<std::size_t>(tree_->pixels_per_leaf());
  return n;
}

void PartitionedMlfma::apply(Comm& comm, ccspan x_local, cspan y_local,
                             int rank_base) const {
  apply_block(comm, x_local, y_local, 1, rank_base);
}

void PartitionedMlfma::apply_block(Comm& comm, ccspan x_local, cspan y_local,
                                   std::size_t nrhs, int rank_base,
                                   ApplySchedule sched) const {
  const int rank = comm.rank() - rank_base;
  FFW_CHECK(rank >= 0 && rank < nranks_);
  FFW_CHECK(nrhs >= 1);
  const RankSchedule& rs = schedule_[static_cast<std::size_t>(rank)];
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t lb = rs.near.owned_begin, le = rs.near.owned_end;
  const std::size_t nlocal = (le - lb) * np * nrhs;
  FFW_CHECK(x_local.size() == nlocal && y_local.size() == nlocal);

  if (plan_.params().precision == Precision::kMixed) {
    // Narrowed per-rank input copy (thread_local is per-rank: ranks live
    // on distinct VCluster threads). Everything downstream — panels,
    // wire, tables — is fp32 from here.
    static thread_local cvec32 xn;
    xn.resize(x_local.size());
    narrow(x_local, cspan32{xn.data(), xn.size()});
    apply_block_impl<float>(comm, xn.data(), y_local, nrhs, rank_base, sched);
  } else {
    apply_block_impl<double>(comm, x_local.data(), y_local, nrhs, rank_base,
                             sched);
  }
}

template <typename T>
void PartitionedMlfma::apply_block_impl(Comm& comm,
                                        const std::complex<T>* x_local,
                                        cspan y_local, std::size_t nrhs,
                                        int rank_base,
                                        ApplySchedule sched) const {
  using C = std::complex<T>;
  using CV = std::vector<C>;
  const int rank = comm.rank() - rank_base;
  const RankSchedule& rs = schedule_[static_cast<std::size_t>(rank)];
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t lb = rs.near.owned_begin, le = rs.near.owned_end;
  const int nlev = tree_->num_levels();

  // --- Post near-field halo sends first (overlap with the whole upward
  // pass, paper Fig. 8). One message per peer regardless of nrhs.
  for (const PeerSend& ps : rs.near.sends) {
    CV buf(ps.slots.size() * np * nrhs);
    for (std::size_t i = 0; i < ps.slots.size(); ++i) {
      std::copy_n(x_local + ps.slots[i] * np * nrhs, np * nrhs,
                  buf.data() + i * np * nrhs);
    }
    comm.send(rank_base + ps.peer, kTagNear, std::span<const C>{buf});
  }

  // Compact per-level spectra panels: the outgoing panel holds owned
  // clusters (slot = cluster - owned_begin) with a separate ghost panel
  // for the consumed remote spectra; the incoming panel holds owned
  // clusters only. O(local share x nrhs) memory — see panel_elements().
  std::vector<CV> s_own(static_cast<std::size_t>(nlev)),
      s_gh(static_cast<std::size_t>(nlev)), g_own(static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    const PhaseSchedule& ls = rs.levels[static_cast<std::size_t>(l)];
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    const std::size_t owned = ls.owned_end - ls.owned_begin;
    s_own[static_cast<std::size_t>(l)].assign(q * owned * nrhs, C{});
    s_gh[static_cast<std::size_t>(l)].resize(q * ls.num_ghosts * nrhs);
    g_own[static_cast<std::size_t>(l)].assign(q * owned * nrhs, C{});
  }

  auto send_level_halo = [&](int l) {
    const std::size_t q =
        static_cast<std::size_t>(plan_.level(l).samples) * nrhs;
    for (const PeerSend& ps : rs.levels[static_cast<std::size_t>(l)].sends) {
      CV buf(ps.slots.size() * q);
      for (std::size_t i = 0; i < ps.slots.size(); ++i) {
        std::copy_n(s_own[static_cast<std::size_t>(l)].data() + ps.slots[i] * q,
                    q, buf.data() + i * q);
      }
      comm.send(rank_base + ps.peer, kTagLevel + l, std::span<const C>{buf});
    }
  };

  obs::add(obs::Counter::kMlfmaApplications, nrhs);

  // --- Upward pass on the owned sub-trees (communication-free), posting
  // each level's spectra to peers as soon as that level is complete.
  std::optional<obs::SpanScope> upward_span;
  upward_span.emplace("dist.upward", obs::kNoArg, obs::Counter::kComputeNs);
  {  // leaf multipole expansion for owned leaves
    const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
    if constexpr (std::is_same_v<T, float>) {
      // fp64-accumulation boundary (matches MlfmaEngine): the quadrature
      // sums are chunk-promoted into fp64 (gemm_expand_mixed) and round
      // once into the fp32 panel.
      gemm_expand_mixed(q0, (le - lb) * nrhs, np, ops_.expansion_data<float>(),
                        q0, x_local, np, s_own[0].data(), q0);
    } else {
      gemm_raw_t<T, T>(q0, (le - lb) * nrhs, np, C{T(1)},
                       ops_.expansion_data<T>(), q0, x_local, np, C{},
                       s_own[0].data(), q0);
    }
    send_level_halo(0);
  }
  for (int l = 0; l + 1 < nlev; ++l) {
    const LevelOperators& lops = ops_.level(l);
    const std::size_t qc = static_cast<std::size_t>(lops.samples);
    const std::size_t qp = static_cast<std::size_t>(plan_.level(l + 1).samples);
    const std::size_t pb = rs.levels[static_cast<std::size_t>(l) + 1].owned_begin,
                      pe = rs.levels[static_cast<std::size_t>(l) + 1].owned_end;
    // Ranks divide every level's cluster count, so a parent's children
    // slots are 4*(p - pb) + j in the child level's owned panel.
    FFW_DCHECK(rs.levels[static_cast<std::size_t>(l)].owned_begin == 4 * pb);
    CV tmp(qp * nrhs);
    for (std::size_t p = pb; p < pe; ++p) {
      C* sp = s_own[static_cast<std::size_t>(l) + 1].data() +
              (p - pb) * qp * nrhs;
      for (int j = 0; j < 4; ++j) {
        const C* sc = s_own[static_cast<std::size_t>(l)].data() +
                      (4 * (p - pb) + static_cast<std::size_t>(j)) * qc * nrhs;
        lops.interp.apply_batch(sc, qc, tmp.data(), qp, nrhs);
        // Explicit real arithmetic (cf. MlfmaEngine): same values on
        // finite inputs, but the shift MAC vectorizes.
        const auto& sh = lops.up<T>()[static_cast<std::size_t>(j)];
        const T* shp = reinterpret_cast<const T*>(sh.data());
        for (std::size_t r = 0; r < nrhs; ++r) {
          T* spr = reinterpret_cast<T*>(sp + r * qp);
          const T* tr = reinterpret_cast<const T*>(tmp.data() + r * qp);
#ifdef _OPENMP
#pragma omp simd
#endif
          for (std::size_t q = 0; q < qp; ++q) {
            const T ar = shp[2 * q], ai = shp[2 * q + 1];
            const T br = tr[2 * q], bi = tr[2 * q + 1];
            spr[2 * q] += ar * br - ai * bi;
            spr[2 * q + 1] += ar * bi + ai * br;
          }
        }
      }
    }
    send_level_halo(l + 1);
  }
  upward_span.reset();

  // --- Dependency-resolved workers. y_local accumulates the near field
  // and, at the end, the disaggregated far field (all beta = 1 against a
  // zero fill, so phases can run in completion order). y_local stays
  // fp64 on both paths; T = float crosses into it only through
  // gemm_raw_t<float, double> (the fp64-accumulation boundary).
  std::fill(y_local.begin(), y_local.end(), cplx{});
  CV x_gh(rs.near.num_ghosts * np * nrhs);

  auto run_trans = [&](int l, const std::vector<HaloWork>& work,
                       const CV& src_panel) {
    obs::SpanScope span("dist.translate", l, obs::Counter::kComputeNs);
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    const LevelOperators& lops = ops_.level(l);
    for (const HaloWork& w : work) {
      C* gc = g_own[static_cast<std::size_t>(l)].data() +
              w.dst_slot * q * nrhs;
      const C* sc = src_panel.data() + w.src_slot * q * nrhs;
      const auto& trans = lops.trans<T>()[w.type];
      const T* tp = reinterpret_cast<const T*>(trans.data());
      for (std::size_t r = 0; r < nrhs; ++r) {
        T* gr = reinterpret_cast<T*>(gc + r * q);
        const T* sr = reinterpret_cast<const T*>(sc + r * q);
#ifdef _OPENMP
#pragma omp simd
#endif
        for (std::size_t i = 0; i < q; ++i) {
          const T ar = tp[2 * i], ai = tp[2 * i + 1];
          const T br = sr[2 * i], bi = sr[2 * i + 1];
          gr[2 * i] += ar * br - ai * bi;
          gr[2 * i + 1] += ar * bi + ai * br;
        }
      }
    }
  };
  auto run_near = [&](const std::vector<HaloWork>& work,
                      const C* src_panel) {
    obs::SpanScope span("dist.near", obs::kNoArg, obs::Counter::kComputeNs);
    if constexpr (std::is_same_v<T, float>) {
      // Entirely-fp32 near field: each 64x64 block product runs in
      // single precision into a rank-local staging panel and widens
      // into the fp64 output once (the widen is ~1/np of the MACs).
      static thread_local cvec32 tmp;
      if (tmp.size() < np * nrhs) tmp.resize(np * nrhs);
      for (const HaloWork& w : work) {
        gemm_raw_t<float, float>(np, nrhs, np, cplx32{1.0f},
                                 near_.type_data<float>(w.type), np,
                                 src_panel + w.src_slot * np * nrhs, np,
                                 cplx32{}, tmp.data(), np);
        cplx* yd = y_local.data() + w.dst_slot * np * nrhs;
        for (std::size_t i = 0; i < np * nrhs; ++i) yd[i] += widen(tmp[i]);
      }
    } else {
      for (const HaloWork& w : work) {
        gemm_raw_t<T, double>(np, nrhs, np, cplx{1.0},
                              near_.type_data<T>(w.type), np,
                              src_panel + w.src_slot * np * nrhs, np,
                              cplx{1.0},
                              y_local.data() + w.dst_slot * np * nrhs, np);
      }
    }
  };
  // Halo payloads land contiguously in the ghost panels — no scatter.
  auto recv_level_payload = [&](int l, const PeerRecv& pr) {
    obs::SpanScope span("dist.halo_recv", l, obs::Counter::kHaloWaitNs);
    const std::size_t q =
        static_cast<std::size_t>(plan_.level(l).samples) * nrhs;
    comm.recv_into(rank_base + pr.peer, kTagLevel + l,
                   std::span<C>{s_gh[static_cast<std::size_t>(l)].data() +
                                    pr.slot_begin * q,
                                pr.count * q});
  };
  auto recv_near_payload = [&](const PeerRecv& pr) {
    obs::SpanScope span("dist.halo_recv", obs::kNoArg,
                        obs::Counter::kHaloWaitNs);
    comm.recv_into(rank_base + pr.peer, kTagNear,
                   std::span<C>{x_gh.data() + pr.slot_begin * np * nrhs,
                                pr.count * np * nrhs});
  };

  // --- Downward pass + leaf local expansion (communication-free on the
  // owned sub-trees; requires every level's translations to be done).
  auto run_downward = [&] {
    obs::SpanScope span("dist.downward", obs::kNoArg,
                        obs::Counter::kComputeNs);
    for (int l = nlev - 1; l >= 1; --l) {
      const LevelOperators& child_ops = ops_.level(l - 1);
      const std::size_t qp = static_cast<std::size_t>(plan_.level(l).samples);
      const std::size_t qc = static_cast<std::size_t>(child_ops.samples);
      const T scale = static_cast<T>(qc) / static_cast<T>(qp);
      const std::size_t pb = rs.levels[static_cast<std::size_t>(l)].owned_begin,
                        pe = rs.levels[static_cast<std::size_t>(l)].owned_end;
      CV shifted(qp * nrhs), down(qc * nrhs);
      for (std::size_t p = pb; p < pe; ++p) {
        const C* gp = g_own[static_cast<std::size_t>(l)].data() +
                      (p - pb) * qp * nrhs;
        for (int j = 0; j < 4; ++j) {
          const auto& sh = child_ops.down<T>()[static_cast<std::size_t>(j)];
          const T* shp = reinterpret_cast<const T*>(sh.data());
          for (std::size_t r = 0; r < nrhs; ++r) {
            T* sr = reinterpret_cast<T*>(shifted.data() + r * qp);
            const T* gr = reinterpret_cast<const T*>(gp + r * qp);
#ifdef _OPENMP
#pragma omp simd
#endif
            for (std::size_t q = 0; q < qp; ++q) {
              const T ar = shp[2 * q], ai = shp[2 * q + 1];
              const T br = gr[2 * q], bi = gr[2 * q + 1];
              sr[2 * q] = ar * br - ai * bi;
              sr[2 * q + 1] = ar * bi + ai * br;
            }
          }
          child_ops.interp.apply_adjoint_batch(shifted.data(), qp, down.data(),
                                               qc, nrhs);
          C* gc = g_own[static_cast<std::size_t>(l) - 1].data() +
                  (4 * (p - pb) + static_cast<std::size_t>(j)) * qc * nrhs;
          for (std::size_t i = 0; i < qc * nrhs; ++i) gc[i] += scale * down[i];
        }
      }
    }
    const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
    gemm_raw_t<T, double>(np, (le - lb) * nrhs, q0, cplx{1.0},
                          ops_.local_expansion_data<T>(), np, g_own[0].data(),
                          q0, cplx{1.0}, y_local.data(), np);
  };

  if (sched == ApplySchedule::kBlockingOrdered) {
    // Baseline (Fig. 8 "no overlap"): drain receives in strict
    // peer-and-level order, performing no local work while waiting —
    // the pre-split implementation's schedule, kept for the ablation.
    for (int l = 0; l < nlev; ++l) {
      const PhaseSchedule& ls = rs.levels[static_cast<std::size_t>(l)];
      for (const PeerRecv& pr : ls.recvs) recv_level_payload(l, pr);
      run_trans(l, ls.local, s_own[static_cast<std::size_t>(l)]);
      for (const PeerRecv& pr : ls.recvs)
        run_trans(l, pr.work, s_gh[static_cast<std::size_t>(l)]);
    }
    run_downward();
    for (const PeerRecv& pr : rs.near.recvs) recv_near_payload(pr);
    run_near(rs.near.local, x_local);
    for (const PeerRecv& pr : rs.near.recvs) run_near(pr.work, x_gh.data());
    return;
  }

  // --- Overlapped schedule: run everything that depends only on owned
  // data, polling for arrived halos between chunks; then park on
  // wait_any and service the remaining messages in arrival order.
  struct Pending {
    int tag;
    int level;  // -1 for the near-field message
    const PeerRecv* pr;
  };
  std::vector<Pending> pending;
  for (int l = 0; l < nlev; ++l) {
    for (const PeerRecv& pr : rs.levels[static_cast<std::size_t>(l)].recvs)
      pending.push_back({kTagLevel + l, l, &pr});
  }
  for (const PeerRecv& pr : rs.near.recvs)
    pending.push_back({kTagNear, -1, &pr});

  auto service = [&](std::size_t i) {
    const Pending pd = pending[i];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    if (pd.level >= 0) {
      recv_level_payload(pd.level, *pd.pr);
      run_trans(pd.level, pd.pr->work,
                s_gh[static_cast<std::size_t>(pd.level)]);
    } else {
      recv_near_payload(*pd.pr);
      run_near(pd.pr->work, x_gh.data());
    }
  };
  auto poll = [&] {
    for (std::size_t i = 0; i < pending.size();) {
      if (comm.probe(rank_base + pending[i].pr->peer, pending[i].tag)) {
        service(i);  // erases i; the next candidate slides into its place
      } else {
        ++i;
      }
    }
  };

  // Local work, biggest latency-hiding chunk first: the interior near
  // field is independent of the whole far-field pipeline.
  poll();
  run_near(rs.near.local, x_local);
  poll();
  for (int l = 0; l < nlev; ++l) {
    run_trans(l, rs.levels[static_cast<std::size_t>(l)].local,
              s_own[static_cast<std::size_t>(l)]);
    poll();
  }
  // Arrival-order drain of whatever is still in flight. Only the park on
  // wait_any counts as halo wait; the service (recv + work) is accounted
  // by its own spans so compute done during the drain stays compute.
  std::vector<std::pair<int, int>> keys;
  while (!pending.empty()) {
    keys.clear();
    for (const Pending& pd : pending)
      keys.emplace_back(rank_base + pd.pr->peer, pd.tag);
    std::size_t hit;
    {
      obs::SpanScope wait("dist.halo_wait",
                          static_cast<std::int64_t>(pending.size()),
                          obs::Counter::kHaloWaitNs);
      hit = comm.wait_any(keys);
    }
    service(hit);
  }
  run_downward();
}

void PartitionedMlfma::apply_herm(Comm& comm, ccspan x_local, cspan y_local,
                                  int rank_base) const {
  apply_herm_block(comm, x_local, y_local, 1, rank_base);
}

void PartitionedMlfma::apply_herm_block(Comm& comm, ccspan x_local,
                                        cspan y_local, std::size_t nrhs,
                                        int rank_base,
                                        ApplySchedule sched) const {
  // Per-rank conjugation scratch, reused across the DBIM adjoint hot
  // loop. Ranks live on distinct VCluster threads, so thread_local is
  // naturally per-rank and race-free even when several illumination
  // groups share one PartitionedMlfma (2-D driver).
  static thread_local cvec xc;
  xc.resize(x_local.size());
  for (std::size_t i = 0; i < xc.size(); ++i) xc[i] = std::conj(x_local[i]);
  apply_block(comm, xc, y_local, nrhs, rank_base, sched);
  for (auto& v : y_local) v = std::conj(v);
}

}  // namespace ffw
