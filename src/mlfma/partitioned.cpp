#include "mlfma/partitioned.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "linalg/gemm.hpp"

namespace ffw {

namespace {
constexpr int kTagNear = 1;
constexpr int kTagLevel = 10;  // + level
}  // namespace

PartitionedMlfma::PartitionedMlfma(const QuadTree& tree,
                                   const MlfmaParams& params, int nranks)
    : tree_(&tree), plan_(tree, params), ops_(tree, plan_), near_(tree),
      nranks_(nranks) {
  FFW_CHECK_MSG(tree.num_levels() >= 1,
                "partitioned MLFMA needs at least one far-field level");
  const std::size_t top_clusters =
      tree.level(tree.num_levels() - 1).num_clusters;
  FFW_CHECK_MSG(nranks >= 1 &&
                    top_clusters % static_cast<std::size_t>(nranks) == 0,
                "rank count must divide the top-level cluster count (16)");

  // Build per-level exchange lists: need[dest_rank][src_rank] = clusters.
  level_exchange_.resize(static_cast<std::size_t>(tree.num_levels()));
  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    std::map<std::pair<int, int>, std::set<std::uint32_t>> need;
    for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
      const int rd = owner_of(l, c);
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const std::uint32_t src = lvl.far[e].src;
        const int rs = owner_of(l, src);
        if (rs != rd) need[{rd, rs}].insert(src);
      }
    }
    auto& per_rank = level_exchange_[static_cast<std::size_t>(l)];
    per_rank.resize(static_cast<std::size_t>(nranks));
    for (const auto& [key, clusters] : need) {
      const auto [rd, rs] = key;
      const std::vector<std::uint32_t> list(clusters.begin(), clusters.end());
      // rd receives `list` from rs; rs sends `list` to rd.
      {
        PeerExchange ex;
        ex.peer = rs;
        ex.recv_clusters = list;
        per_rank[static_cast<std::size_t>(rd)].push_back(std::move(ex));
      }
      {
        PeerExchange ex;
        ex.peer = rd;
        ex.send_clusters = list;
        per_rank[static_cast<std::size_t>(rs)].push_back(std::move(ex));
      }
    }
  }

  // Near-field leaf ghost exchanges.
  {
    std::map<std::pair<int, int>, std::set<std::uint32_t>> need;
    const auto& begin = tree.near_begin();
    const auto& entries = tree.near();
    for (std::size_t c = 0; c < tree.num_leaves(); ++c) {
      const int rd = owner_of(0, c);
      for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
        const int rs = owner_of(0, entries[e].src);
        if (rs != rd) need[{rd, rs}].insert(entries[e].src);
      }
    }
    near_exchange_.resize(static_cast<std::size_t>(nranks));
    for (const auto& [key, clusters] : need) {
      const auto [rd, rs] = key;
      const std::vector<std::uint32_t> list(clusters.begin(), clusters.end());
      {
        PeerExchange ex;
        ex.peer = rs;
        ex.recv_clusters = list;
        near_exchange_[static_cast<std::size_t>(rd)].push_back(std::move(ex));
      }
      {
        PeerExchange ex;
        ex.peer = rd;
        ex.send_clusters = list;
        near_exchange_[static_cast<std::size_t>(rs)].push_back(std::move(ex));
      }
    }
  }
}

std::size_t PartitionedMlfma::cluster_begin(int level, int rank) const {
  return tree_->level(level).num_clusters * static_cast<std::size_t>(rank) /
         static_cast<std::size_t>(nranks_);
}

std::size_t PartitionedMlfma::cluster_end(int level, int rank) const {
  return cluster_begin(level, rank + 1);
}

int PartitionedMlfma::owner_of(int level, std::size_t cluster) const {
  return static_cast<int>(cluster * static_cast<std::size_t>(nranks_) /
                          tree_->level(level).num_clusters);
}

std::size_t PartitionedMlfma::leaf_begin(int rank) const {
  return cluster_begin(0, rank);
}

std::size_t PartitionedMlfma::leaf_end(int rank) const {
  return cluster_end(0, rank);
}

void PartitionedMlfma::apply(Comm& comm, ccspan x_local, cspan y_local,
                             int rank_base) const {
  apply_block(comm, x_local, y_local, 1, rank_base);
}

void PartitionedMlfma::apply_block(Comm& comm, ccspan x_local, cspan y_local,
                                   std::size_t nrhs, int rank_base) const {
  const int rank = comm.rank() - rank_base;
  FFW_CHECK(rank >= 0 && rank < nranks_);
  FFW_CHECK(nrhs >= 1);
  const std::size_t np = static_cast<std::size_t>(tree_->pixels_per_leaf());
  const std::size_t lb = leaf_begin(rank), le = leaf_end(rank);
  const std::size_t nlocal = (le - lb) * np * nrhs;
  FFW_CHECK(x_local.size() == nlocal && y_local.size() == nlocal);
  const int nlev = tree_->num_levels();

  // --- Post near-field halo sends first (overlap with the whole upward
  // pass, paper Fig. 8). One message per peer regardless of nrhs.
  for (const PeerExchange& ex : near_exchange_[static_cast<std::size_t>(rank)]) {
    if (ex.send_clusters.empty()) continue;
    cvec buf(ex.send_clusters.size() * np * nrhs);
    for (std::size_t i = 0; i < ex.send_clusters.size(); ++i) {
      const std::size_t c = ex.send_clusters[i];
      std::copy_n(x_local.data() + (c - lb) * np * nrhs, np * nrhs,
                  buf.data() + i * np * nrhs);
    }
    comm.send(rank_base + ex.peer, kTagNear, ccspan{buf});
  }

  // Per-level sample panels (full-size index space; only owned + ghost
  // columns are populated — a real MPI build would compact these, which
  // only changes indexing, not communication or arithmetic).
  std::vector<cvec> s(static_cast<std::size_t>(nlev)),
      g(static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    s[static_cast<std::size_t>(l)].assign(
        q * tree_->level(l).num_clusters * nrhs, cplx{});
    g[static_cast<std::size_t>(l)].assign(
        q * tree_->level(l).num_clusters * nrhs, cplx{});
  }

  // --- Upward pass on the owned sub-trees (communication-free), posting
  // each level's spectra to peers as soon as that level is complete.
  auto send_level_halo = [&](int l) {
    const std::size_t q =
        static_cast<std::size_t>(plan_.level(l).samples) * nrhs;
    for (const PeerExchange& ex :
         level_exchange_[static_cast<std::size_t>(l)][static_cast<std::size_t>(rank)]) {
      if (ex.send_clusters.empty()) continue;
      cvec buf(ex.send_clusters.size() * q);
      for (std::size_t i = 0; i < ex.send_clusters.size(); ++i) {
        std::copy_n(s[static_cast<std::size_t>(l)].data() +
                        ex.send_clusters[i] * q,
                    q, buf.data() + i * q);
      }
      comm.send(rank_base + ex.peer, kTagLevel + l, ccspan{buf});
    }
  };

  {  // leaf multipole expansion for owned leaves
    const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
    gemm_raw(q0, (le - lb) * nrhs, np, cplx{1.0}, ops_.expansion().data(), q0,
             x_local.data(), np, cplx{0.0}, s[0].data() + lb * q0 * nrhs, q0);
    send_level_halo(0);
  }
  for (int l = 0; l + 1 < nlev; ++l) {
    const LevelOperators& lops = ops_.level(l);
    const std::size_t qc = static_cast<std::size_t>(lops.samples);
    const std::size_t qp = static_cast<std::size_t>(plan_.level(l + 1).samples);
    const std::size_t pb = cluster_begin(l + 1, rank),
                      pe = cluster_end(l + 1, rank);
    cvec tmp(qp * nrhs);
    for (std::size_t p = pb; p < pe; ++p) {
      cplx* sp = s[static_cast<std::size_t>(l) + 1].data() + p * qp * nrhs;
      for (int j = 0; j < 4; ++j) {
        const cplx* sc = s[static_cast<std::size_t>(l)].data() +
                         (4 * p + static_cast<std::size_t>(j)) * qc * nrhs;
        lops.interp.apply_batch(sc, qc, tmp.data(), qp, nrhs);
        const cvec& sh = lops.up_shift[static_cast<std::size_t>(j)];
        for (std::size_t r = 0; r < nrhs; ++r) {
          cplx* spr = sp + r * qp;
          const cplx* tr = tmp.data() + r * qp;
          for (std::size_t q = 0; q < qp; ++q) spr[q] += sh[q] * tr[q];
        }
      }
    }
    send_level_halo(l + 1);
  }

  // --- Translation: receive each level's ghosts, then translate owned
  // clusters.
  for (int l = 0; l < nlev; ++l) {
    const std::size_t q = static_cast<std::size_t>(plan_.level(l).samples);
    for (const PeerExchange& ex :
         level_exchange_[static_cast<std::size_t>(l)][static_cast<std::size_t>(rank)]) {
      if (ex.recv_clusters.empty()) continue;
      const cvec buf = comm.recv<cplx>(rank_base + ex.peer, kTagLevel + l);
      FFW_CHECK(buf.size() == ex.recv_clusters.size() * q * nrhs);
      for (std::size_t i = 0; i < ex.recv_clusters.size(); ++i) {
        std::copy_n(buf.data() + i * q * nrhs, q * nrhs,
                    s[static_cast<std::size_t>(l)].data() +
                        ex.recv_clusters[i] * q * nrhs);
      }
    }
    const TreeLevel& lvl = tree_->level(l);
    const LevelOperators& lops = ops_.level(l);
    for (std::size_t c = cluster_begin(l, rank); c < cluster_end(l, rank);
         ++c) {
      cplx* gc = g[static_cast<std::size_t>(l)].data() + c * q * nrhs;
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const FarEntry& fe = lvl.far[e];
        const cplx* sc = s[static_cast<std::size_t>(l)].data() +
                         static_cast<std::size_t>(fe.src) * q * nrhs;
        const cvec& trans = lops.translations[fe.trans_type];
        for (std::size_t r = 0; r < nrhs; ++r) {
          cplx* gr = gc + r * q;
          const cplx* sr = sc + r * q;
          for (std::size_t i = 0; i < q; ++i) gr[i] += trans[i] * sr[i];
        }
      }
    }
  }

  // --- Downward pass (communication-free on owned sub-trees).
  for (int l = nlev - 1; l >= 1; --l) {
    const LevelOperators& child_ops = ops_.level(l - 1);
    const std::size_t qp = static_cast<std::size_t>(plan_.level(l).samples);
    const std::size_t qc = static_cast<std::size_t>(child_ops.samples);
    const double scale = static_cast<double>(qc) / static_cast<double>(qp);
    cvec shifted(qp * nrhs), down(qc * nrhs);
    for (std::size_t p = cluster_begin(l, rank); p < cluster_end(l, rank);
         ++p) {
      const cplx* gp = g[static_cast<std::size_t>(l)].data() + p * qp * nrhs;
      for (int j = 0; j < 4; ++j) {
        const cvec& sh = child_ops.down_shift[static_cast<std::size_t>(j)];
        for (std::size_t r = 0; r < nrhs; ++r) {
          cplx* sr = shifted.data() + r * qp;
          const cplx* gr = gp + r * qp;
          for (std::size_t q = 0; q < qp; ++q) sr[q] = sh[q] * gr[q];
        }
        child_ops.interp.apply_adjoint_batch(shifted.data(), qp, down.data(),
                                             qc, nrhs);
        cplx* gc = g[static_cast<std::size_t>(l) - 1].data() +
                   (4 * p + static_cast<std::size_t>(j)) * qc * nrhs;
        for (std::size_t i = 0; i < qc * nrhs; ++i) gc[i] += scale * down[i];
      }
    }
  }
  {  // leaf local expansion into y_local
    const std::size_t q0 = static_cast<std::size_t>(plan_.level(0).samples);
    gemm_raw(np, (le - lb) * nrhs, q0, cplx{1.0},
             ops_.local_expansion().data(), np,
             g[0].data() + lb * q0 * nrhs, q0, cplx{0.0}, y_local.data(), np);
  }

  // --- Near field: assemble ghost leaf values, then the 9-type pass.
  cvec x_ghost(tree_->num_leaves() * np * nrhs, cplx{});
  std::copy_n(x_local.data(), nlocal, x_ghost.data() + lb * np * nrhs);
  for (const PeerExchange& ex : near_exchange_[static_cast<std::size_t>(rank)]) {
    if (ex.recv_clusters.empty()) continue;
    const cvec buf = comm.recv<cplx>(rank_base + ex.peer, kTagNear);
    FFW_CHECK(buf.size() == ex.recv_clusters.size() * np * nrhs);
    for (std::size_t i = 0; i < ex.recv_clusters.size(); ++i) {
      std::copy_n(buf.data() + i * np * nrhs, np * nrhs,
                  x_ghost.data() + ex.recv_clusters[i] * np * nrhs);
    }
  }
  const auto& begin = tree_->near_begin();
  const auto& entries = tree_->near();
  for (std::size_t c = lb; c < le; ++c) {
    cplx* yd = y_local.data() + (c - lb) * np * nrhs;
    for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
      const NearEntry& ne = entries[e];
      const CMatrix& m = near_.type(ne.near_type);
      const cplx* xs =
          x_ghost.data() + static_cast<std::size_t>(ne.src) * np * nrhs;
      gemm_raw(np, nrhs, np, cplx{1.0}, m.data(), np, xs, np, cplx{1.0}, yd,
               np);
    }
  }
}

void PartitionedMlfma::apply_herm(Comm& comm, ccspan x_local, cspan y_local,
                                  int rank_base) const {
  apply_herm_block(comm, x_local, y_local, 1, rank_base);
}

void PartitionedMlfma::apply_herm_block(Comm& comm, ccspan x_local,
                                        cspan y_local, std::size_t nrhs,
                                        int rank_base) const {
  cvec xc(x_local.size());
  for (std::size_t i = 0; i < xc.size(); ++i) xc[i] = std::conj(x_local[i]);
  apply_block(comm, xc, y_local, nrhs, rank_base);
  for (auto& v : y_local) v = std::conj(v);
}

}  // namespace ffw
