// The precomputed MLFMA operator tables of paper Table I:
//
//   | operator                | structure     | # types        |
//   |-------------------------|---------------|----------------|
//   | near-field interactions | dense         | 9  (greens/)   |
//   | multipole expansion     | dense         | 1              |
//   | interpolations          | band-diagonal | 1 per level    |
//   | multipole shiftings     | diagonal      | 4 per level    |
//   | translations            | diagonal      | 40 per level   |
//   | local shiftings         | diagonal      | 4 per level    |
//   | anterpolations          | band-diagonal | 1 per level    |
//   | local expansion         | dense         | 1              |
//
// All tables are built once in the setup stage and reused for every
// matvec of every forward solution (Sec. IV-D: "Matrices for these
// operators are generated ahead of time ... and stored as lookup
// tables"). The regular grid makes each table independent of the cluster
// position, which is the whole memory story of the paper.
#pragma once

#include <vector>

#include "grid/quadtree.hpp"
#include "linalg/banded.hpp"
#include "linalg/cmatrix.hpp"
#include "mlfma/plan.hpp"

namespace ffw {

/// Diagonal translation operator samples T_X(alpha_q), q = 0..Q-1, for
/// translation vector X, truncation L:
///   T_L(alpha) = sum_{m=-L..L} H_m^(1)(k|X|) e^{i m (alpha - theta_X - pi/2)}.
/// This realises the diagonalised 2-D addition theorem in the form
///   (1/Q) sum_q T_L(alpha_q; X) e^{i k_hat(alpha_q) . d} = H0^(1)(k|X - d|),
/// (Gegenbauer/Graf, |d| < |X|), so the engine passes X = c_src - c_dest:
/// with d = u_dest - v_src the right-hand side becomes
/// H0(k |(c_dest + u) - (c_src + v)|), the pixel-pair kernel. Validated
/// against direct H0 evaluation in tests/mlfma_translation_test.cpp.
cvec make_translation_diag(double k, Vec2 x, int truncation, int samples);

/// Band-diagonal Lagrange interpolation matrix resampling a periodic
/// band-limited function from `src_samples` to `dst_samples` uniform
/// points with a `width`-point local stencil.
PeriodicBandMatrix make_interpolation(int src_samples, int dst_samples,
                                      int width);

struct LevelOperators {
  int truncation = 0;
  int samples = 0;
  /// translations[t] — one diagonal (length Q) per 40 offsets.
  std::vector<cvec> translations;
  /// Upward (multipole) shift diagonals for the 4 child positions, at the
  /// *parent* sample rate; empty at the top level.
  std::vector<cvec> up_shift;
  /// Downward (local) shift diagonals = conj(up_shift), kept explicitly
  /// (Table I counts them as their own 4 types).
  std::vector<cvec> down_shift;
  /// Interpolation: this level's rate -> parent rate (empty at top).
  PeriodicBandMatrix interp;

  std::size_t bytes() const;
};

class MlfmaOperators {
 public:
  MlfmaOperators(const QuadTree& tree, const MlfmaPlan& plan);

  /// Dense leaf multipole-expansion matrix (Q0 x 64):
  /// E[q, p] = e^{-i k_hat(alpha_q) . u_p}.
  const CMatrix& expansion() const { return expansion_; }

  /// Dense leaf local-expansion matrix (64 x Q0) with the leaf quadrature
  /// weight 1/Q0 and the kernel prefactor (i/4)*source_factor folded in:
  /// R[p, q] = pref/Q0 * e^{+i k_hat(alpha_q) . u_p}.
  const CMatrix& local_expansion() const { return local_; }

  const LevelOperators& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Total precomputed-table footprint (Sec. IV-D memory optimisation).
  std::size_t bytes() const;

 private:
  CMatrix expansion_;
  CMatrix local_;
  std::vector<LevelOperators> levels_;
};

}  // namespace ffw
