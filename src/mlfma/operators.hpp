// The precomputed MLFMA operator tables of paper Table I:
//
//   | operator                | structure     | # types        |
//   |-------------------------|---------------|----------------|
//   | near-field interactions | dense         | 9  (greens/)   |
//   | multipole expansion     | dense         | 1              |
//   | interpolations          | band-diagonal | 1 per level    |
//   | multipole shiftings     | diagonal      | 4 per level    |
//   | translations            | diagonal      | 40 per level   |
//   | local shiftings         | diagonal      | 4 per level    |
//   | anterpolations          | band-diagonal | 1 per level    |
//   | local expansion         | dense         | 1              |
//
// All tables are built once in the setup stage and reused for every
// matvec of every forward solution (Sec. IV-D: "Matrices for these
// operators are generated ahead of time ... and stored as lookup
// tables"). The regular grid makes each table independent of the cluster
// position, which is the whole memory story of the paper.
#pragma once

#include <vector>

#include "grid/quadtree.hpp"
#include "linalg/banded.hpp"
#include "linalg/cmatrix.hpp"
#include "mlfma/plan.hpp"

namespace ffw {

/// Diagonal translation operator samples T_X(alpha_q), q = 0..Q-1, for
/// translation vector X, truncation L:
///   T_L(alpha) = sum_{m=-L..L} H_m^(1)(k|X|) e^{i m (alpha - theta_X - pi/2)}.
/// This realises the diagonalised 2-D addition theorem in the form
///   (1/Q) sum_q T_L(alpha_q; X) e^{i k_hat(alpha_q) . d} = H0^(1)(k|X - d|),
/// (Gegenbauer/Graf, |d| < |X|), so the engine passes X = c_src - c_dest:
/// with d = u_dest - v_src the right-hand side becomes
/// H0(k |(c_dest + u) - (c_src + v)|), the pixel-pair kernel. Validated
/// against direct H0 evaluation in tests/mlfma_translation_test.cpp.
cvec make_translation_diag(double k, Vec2 x, int truncation, int samples);

/// Band-diagonal Lagrange interpolation matrix resampling a periodic
/// band-limited function from `src_samples` to `dst_samples` uniform
/// points with a `width`-point local stencil.
PeriodicBandMatrix make_interpolation(int src_samples, int dst_samples,
                                      int width);

struct LevelOperators {
  int truncation = 0;
  int samples = 0;
  /// translations[t] — one diagonal (length Q) per 40 offsets.
  std::vector<cvec> translations;
  /// Upward (multipole) shift diagonals for the 4 child positions, at the
  /// *parent* sample rate; empty at the top level.
  std::vector<cvec> up_shift;
  /// Downward (local) shift diagonals = conj(up_shift), kept explicitly
  /// (Table I counts them as their own 4 types).
  std::vector<cvec> down_shift;
  /// Interpolation: this level's rate -> parent rate (empty at top).
  PeriodicBandMatrix interp;

  /// fp32 mirrors for Precision::kMixed, rounded once from the fp64
  /// tables at setup (never recomputed in single precision — the table
  /// *generation* stays fp64 so the only fp32 error is the final
  /// rounding, ~6e-8 per entry).
  std::vector<cvec32> translations32;
  std::vector<cvec32> up_shift32;
  std::vector<cvec32> down_shift32;

  /// Round all diagonals + the interp stencil to fp32. With `drop_f64`
  /// the fp64 tables are released afterwards, halving the footprint.
  void build_f32(bool drop_f64);

  /// Scalar-generic table access for the templated engine passes.
  template <typename T>
  const std::vector<std::vector<std::complex<T>>>& trans() const;
  template <typename T>
  const std::vector<std::vector<std::complex<T>>>& up() const;
  template <typename T>
  const std::vector<std::vector<std::complex<T>>>& down() const;

  std::size_t bytes() const;
};

template <>
inline const std::vector<cvec>& LevelOperators::trans<double>() const {
  return translations;
}
template <>
inline const std::vector<cvec32>& LevelOperators::trans<float>() const {
  return translations32;
}
template <>
inline const std::vector<cvec>& LevelOperators::up<double>() const {
  return up_shift;
}
template <>
inline const std::vector<cvec32>& LevelOperators::up<float>() const {
  return up_shift32;
}
template <>
inline const std::vector<cvec>& LevelOperators::down<double>() const {
  return down_shift;
}
template <>
inline const std::vector<cvec32>& LevelOperators::down<float>() const {
  return down_shift32;
}

class MlfmaOperators {
 public:
  /// Builds the tables. All generation happens in fp64; when
  /// plan.params().precision == Precision::kMixed the tables are rounded
  /// once to fp32 and the fp64 copies are dropped, so bytes() reports the
  /// halved footprint and the fp64 accessors become invalid.
  MlfmaOperators(const QuadTree& tree, const MlfmaPlan& plan);

  Precision precision() const { return precision_; }

  /// Dense leaf multipole-expansion matrix (Q0 x 64):
  /// E[q, p] = e^{-i k_hat(alpha_q) . u_p}.
  const CMatrix& expansion() const { return expansion_; }

  /// Dense leaf local-expansion matrix (64 x Q0) with the leaf quadrature
  /// weight 1/Q0 and the kernel prefactor (i/4)*source_factor folded in:
  /// R[p, q] = pref/Q0 * e^{+i k_hat(alpha_q) . u_p}.
  const CMatrix& local_expansion() const { return local_; }

  /// fp32 copies of the expansion matrices, column-major with the same
  /// dimensions (only populated under Precision::kMixed).
  const cplx32* expansion32() const { return expansion32_.data(); }
  const cplx32* local_expansion32() const { return local32_.data(); }

  /// Scalar-generic expansion access for the templated engine passes.
  template <typename T>
  const std::complex<T>* expansion_data() const;
  template <typename T>
  const std::complex<T>* local_expansion_data() const;

  const LevelOperators& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Total precomputed-table footprint (Sec. IV-D memory optimisation).
  std::size_t bytes() const;

 private:
  Precision precision_ = Precision::kDouble;
  CMatrix expansion_;
  CMatrix local_;
  cvec32 expansion32_;
  cvec32 local32_;
  std::vector<LevelOperators> levels_;
};

template <>
inline const cplx* MlfmaOperators::expansion_data<double>() const {
  return expansion_.data();
}
template <>
inline const cplx32* MlfmaOperators::expansion_data<float>() const {
  return expansion32_.data();
}
template <>
inline const cplx* MlfmaOperators::local_expansion_data<double>() const {
  return local_.data();
}
template <>
inline const cplx32* MlfmaOperators::local_expansion_data<float>() const {
  return local32_.data();
}

}  // namespace ffw
