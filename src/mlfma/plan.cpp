#include "mlfma/plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ffw {

int truncation_order(double k, double w, double digits) {
  FFW_CHECK(k > 0 && w > 0 && digits > 0);
  const double kd = k * w * std::sqrt(2.0);
  const double excess = 1.8 * std::pow(digits, 2.0 / 3.0) * std::cbrt(kd);
  return static_cast<int>(std::ceil(kd + excess));
}

MlfmaPlan::MlfmaPlan(const QuadTree& tree, const MlfmaParams& params)
    : params_(params) {
  FFW_CHECK(params.oversample >= 1.0);
  const double k = tree.grid().k0();
  levels_.reserve(static_cast<std::size_t>(tree.num_levels()));
  for (int l = 0; l < tree.num_levels(); ++l) {
    const double w = tree.level(l).width;
    LevelPlan lp;
    lp.truncation = truncation_order(k, w, params.digits);
    const int qmin = static_cast<int>(
        std::ceil(params.oversample * (2.0 * lp.truncation + 1.0)));
    lp.samples = qmin + (qmin % 2);  // even sample counts
    levels_.push_back(lp);
  }
  interp_width_ = params.interp_width > 0
                      ? params.interp_width
                      : 2 * std::max(3, static_cast<int>(std::ceil(
                                            0.9 * params.digits)));
}

}  // namespace ffw
