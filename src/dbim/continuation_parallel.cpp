#include "dbim/continuation_parallel.hpp"

#include <memory>
#include <utility>

#include "common/timer.hpp"
#include "dbim/parallel_driver.hpp"
#include "phantom/phantom.hpp"
#include "phantom/resample.hpp"
#include "service/table_cache.hpp"

namespace ffw {

namespace {

double k2_of(int nx) {
  const Grid grid(nx);
  return grid.k0() * grid.k0();
}

/// Leader-to-rank-0 stage report, packed as doubles: [rmse,
/// setup_seconds, seconds, nres, residuals...]. Band identity travels
/// in the tag; everything derivable from (residuals, band) — the stop
/// reason, the iteration count — is recomputed at the receiver through
/// the same pure functions the serial driver uses.
std::vector<double> pack_report(double rmse, double setup_seconds,
                                double seconds,
                                const std::vector<double>& residuals) {
  std::vector<double> pack{rmse, setup_seconds, seconds,
                           static_cast<double>(residuals.size())};
  pack.insert(pack.end(), residuals.begin(), residuals.end());
  return pack;
}

StageReport unpack_report(int band, int nx,
                          const std::vector<double>& pack,
                          const FrequencyBand& spec) {
  FFW_CHECK(pack.size() >= 4);
  StageReport rep;
  rep.band = band;
  rep.nx = nx;
  rep.k0 = Grid(nx).k0();
  rep.rmse = pack[0];
  rep.setup_seconds = pack[1];
  rep.seconds = pack[2];
  const std::size_t nres = static_cast<std::size_t>(pack[3]);
  FFW_CHECK(pack.size() == 4 + nres);
  rep.history.relative_residual.assign(pack.begin() + 4, pack.end());
  rep.iterations = static_cast<int>(nres);
  rep.stop = continuation_stop_reason(rep.history.relative_residual, spec);
  return rep;
}

}  // namespace

ContinuationResult continuation_reconstruct_parallel(
    VCluster& vc, const ScenarioConfig& config, ccspan true_permittivity,
    const FrequencyLadder& ladder, const BandParallelOptions& options) {
  ladder.validate(config.nx);
  const Grid final_grid(config.nx);
  FFW_CHECK(true_permittivity.size() == final_grid.num_pixels());
  const ContinuationOptions& copt = options.continuation;
  FFW_CHECK_MSG(!copt.mixed_precision,
                "band-parallel continuation runs the fp64 partitioned "
                "engine only");
  FFW_CHECK_MSG(copt.stop_after_stage < 0,
                "stop_after_stage is a serial-driver test hook");
  FFW_CHECK_MSG(copt.dbim.mixed_engine == nullptr &&
                    copt.dbim.resume == nullptr && !copt.dbim.checkpoint,
                "band-parallel continuation: per-scene DBIM pointers are "
                "owned by the ladder");
  FFW_CHECK(copt.dbim.incident_panel.empty());

  const int nbands = static_cast<int>(ladder.bands.size());
  const FreqPartition part = make_freq_partition(
      vc.size(), nbands, options.freq_groups, options.tree_ranks);
  FFW_CHECK_MSG(part.nranks() == vc.size(),
                "band-parallel continuation: partition does not cover the "
                "cluster");

  // Resume state is loaded ONCE, before any rank runs — a fast group
  // could otherwise overwrite the file mid-load. Process-mode workers
  // each load it at entry, before their first band completes (the same
  // relaunch-window assumption dbim_reconstruct_parallel makes).
  int resume_stage = 0;
  int resume_nx = 0;
  cvec resume_contrast;
  if (copt.resume_from_checkpoint && !copt.checkpoint_path.empty()) {
    continuation_checkpoint_load(copt.checkpoint_path, ladder, config.nx,
                                 &resume_stage, &resume_nx, &resume_contrast);
  }

  ContinuationResult out_result;  // assembled on global rank 0
  out_result.first_stage = resume_stage;

  // Every band already checkpointed: nothing to run, finish the final
  // image from the saved state (same arithmetic as the serial driver).
  if (resume_stage >= nbands) {
    cvec eps(resume_contrast.size());
    const double k2 = k2_of(resume_nx);
    for (std::size_t i = 0; i < eps.size(); ++i)
      eps[i] = resume_contrast[i] / k2;
    for (int cur = resume_nx; cur < config.nx; cur *= 2)
      eps = upsample2(eps, cur);
    out_result.permittivity = std::move(eps);
    return out_result;
  }

  const auto rank_program = [&](Comm& comm) {
    const int me = comm.rank();
    const int g = part.group_of(me);
    const BandGroup grp = part.groups[static_cast<std::size_t>(g)];
    const int leader = grp.base;
    const std::vector<int> wranks = part.ranks(g);

    // Stage reports this rank produced as a leader (rank 0 keeps its
    // own out of the message stream — no self-sends).
    std::vector<std::pair<int, std::vector<double>>> local_reports;
    cvec local_final;  // final-band image when this rank is its leader

    // Result of the last band THIS group ran (replicated on all window
    // ranks by the windowed driver): same-group warm starts need no
    // message at all.
    cvec last_contrast;
    int last_band = -1;

    for (int s = resume_stage; s < nbands; ++s) {
      if (part.owner_of_band(s) != g) continue;
      const FrequencyBand& band = ladder.bands[s];
      const int nx = config.nx >> band.halvings;
      const Grid grid(nx);
      const double k2 = grid.k0() * grid.k0();
      Timer stage_timer;

      // ---- Band setup: independent of every earlier band, so it
      // overlaps other groups' reconstructions (the pipeline fill the
      // perfmodel's schedule simulation accounts for).
      cvec eps_stage(true_permittivity.begin(), true_permittivity.end());
      for (int h = 0, cur = config.nx; h < band.halvings; ++h, cur /= 2)
        eps_stage = downsample2(eps_stage, cur);
      const cvec true_contrast = contrast_from_permittivity(grid, eps_stage);

      const double radius = config.ring_radius_factor * grid.domain();
      std::vector<Vec2> tx =
          ring_positions(config.num_transmitters, radius,
                         config.tx_angle_begin, config.tx_angle_end);
      std::vector<Vec2> rx =
          ring_positions(config.num_receivers, radius, config.rx_angle_begin,
                         config.rx_angle_end);

      std::shared_ptr<const OperatorTables> tables;
      std::shared_ptr<const TransceiverTables> trx_tables;
      std::unique_ptr<QuadTree> tree_owned;
      std::unique_ptr<Transceivers> trx_owned;
      const QuadTree* tree = nullptr;
      const Transceivers* trx = nullptr;
      if (config.table_cache != nullptr) {
        tables = config.table_cache->mlfma_tables(
            grid, config.leaf_pixel_side, config.mlfma);
        tree = &tables->tree();
        trx_tables = config.table_cache->transceiver_tables(grid, tx, rx);
        trx = &trx_tables->trx;
      } else {
        tree_owned = std::make_unique<QuadTree>(grid, config.leaf_pixel_side);
        tree = tree_owned.get();
        trx_owned = std::make_unique<Transceivers>(grid, std::move(tx),
                                                   std::move(rx));
        trx = trx_owned.get();
      }
      // Measurements: the window leader runs the exact serial synthesis
      // path (one engine, one sequential noise stream per band — same
      // calls the Scenario constructor makes, so serial and parallel
      // ladders see bit-identical data), then broadcasts over the
      // window.
      const std::uint64_t seed =
          copt.per_stage_noise_seeds
              ? mix_seed(config.noise_seed, static_cast<std::uint64_t>(s))
              : config.noise_seed;
      CMatrix measured(static_cast<std::size_t>(config.num_receivers),
                       static_cast<std::size_t>(config.num_transmitters));
      if (me == leader) {
        MlfmaEngine engine = tables != nullptr
                                 ? MlfmaEngine(tables)
                                 : MlfmaEngine(*tree, config.mlfma);
        ForwardSolver solver(engine, config.forward);
        measured = synthesize_measurements(solver, *trx, true_contrast,
                                           config.measurement_noise, seed);
      }
      comm.group_bcast(cspan{measured.data(), measured.size()}, wranks);
      const double setup_seconds = stage_timer.seconds();

      // ---- Warm start: the only inter-band dependency.
      cvec guess;
      if (s == resume_stage && resume_stage > 0) {
        guess = continuation_warm_start(resume_contrast, resume_nx, nx,
                                        k2_of(resume_nx), k2);
      } else if (s > 0) {
        const int prev_nx = config.nx >> ladder.bands[s - 1].halvings;
        if (part.owner_of_band(s - 1) == g) {
          FFW_CHECK(last_band == s - 1);
          guess = continuation_warm_start(last_contrast, prev_nx, nx,
                                          k2_of(prev_nx), k2);
        } else {
          if (me == leader) {
            const int prev_leader =
                part.groups[static_cast<std::size_t>(
                                part.owner_of_band(s - 1))].base;
            const cvec prev =
                comm.recv<cplx>(prev_leader, kTagFreqWarm - s);
            guess = continuation_warm_start(prev, prev_nx, nx,
                                            k2_of(prev_nx), k2);
          }
          guess.resize(grid.num_pixels());
          comm.group_bcast(cspan{guess}, wranks);
        }
      }

      // ---- The band's DBIM over this group's window.
      DbimResult res;
      if (wranks.size() == 1) {
        // Single-rank band group: run the serial stage verbatim — same
        // engine construction, stepper and plateau loop as
        // continuation_reconstruct — so a band-parallel ladder over
        // 1-rank groups is bit-identical to the serial ladder. This
        // also sidesteps the partitioned engine's far-field-level
        // requirement on very coarse rungs.
        MlfmaEngine engine = tables != nullptr
                                 ? MlfmaEngine(tables)
                                 : MlfmaEngine(*tree, config.mlfma);
        DbimOptions opts = copt.dbim;
        opts.max_iterations = band.max_iterations;
        opts.residual_tol = band.residual_tol;
        if (config.table_cache != nullptr) {
          opts.table_cache = config.table_cache;
          opts.incident_panel = trx_tables->incident();
        }
        DbimStepper stepper(engine, *trx, measured, opts, config.forward,
                            guess);
        std::vector<double> residuals;
        while (!stepper.done()) {
          stepper.step();
          residuals.push_back(stepper.last_residual());
          if (continuation_plateau(residuals, band.plateau_window,
                                   band.plateau_rtol)) {
            break;
          }
        }
        res = stepper.result();
      } else {
        const PartitionedMlfma pm =
            tables != nullptr ? PartitionedMlfma(tables, grp.tree_ranks)
                              : PartitionedMlfma(*tree, config.mlfma,
                                                 grp.tree_ranks);
        WindowedDbimConfig wcfg;
        wcfg.rank_base = grp.base;
        wcfg.illum_groups = grp.illum_groups;
        wcfg.tree_ranks = grp.tree_ranks;
        wcfg.dbim = copt.dbim;
        wcfg.dbim.max_iterations = band.max_iterations;
        wcfg.dbim.residual_tol = band.residual_tol;
        wcfg.forward = config.forward;
        wcfg.plateau_window = band.plateau_window;
        wcfg.plateau_rtol = band.plateau_rtol;
        res = dbim_reconstruct_windowed(comm, pm, *tree, *trx, measured,
                                        wcfg, guess);
      }

      // ---- Hand-offs (leader only). Checkpoint BEFORE the warm-start
      // send: the next band cannot complete — and overwrite the file —
      // until its warm start arrives, so stage checkpoints are strictly
      // ordered even across concurrently-running groups.
      if (me == leader) {
        if (!copt.checkpoint_path.empty()) {
          continuation_checkpoint_save(copt.checkpoint_path, ladder,
                                       config.nx, s + 1, nx, res.contrast);
        }
        if (s + 1 < nbands && part.owner_of_band(s + 1) != g) {
          const int next_leader =
              part.groups[static_cast<std::size_t>(
                              part.owner_of_band(s + 1))].base;
          comm.send(next_leader, kTagFreqWarm - (s + 1), ccspan{res.contrast});
        }
        const double rmse = image_rmse(res.contrast, true_contrast);
        std::vector<double> pack =
            pack_report(rmse, setup_seconds, stage_timer.seconds(),
                        res.history.relative_residual);
        if (me == 0) {
          local_reports.emplace_back(s, std::move(pack));
        } else {
          comm.send(0, kTagFreqReport - s, std::span<const double>(pack));
        }
        if (s == nbands - 1) {
          cvec eps(res.contrast.size());
          for (std::size_t i = 0; i < eps.size(); ++i)
            eps[i] = res.contrast[i] / k2;
          for (int cur = nx; cur < config.nx; cur *= 2)
            eps = upsample2(eps, cur);
          if (me == 0) {
            local_final = std::move(eps);
          } else {
            comm.send(0, kTagFreqFinal, ccspan{eps});
          }
        }
      }

      last_contrast = std::move(res.contrast);
      last_band = s;
    }

    // ---- Global rank 0 assembles the result in band order.
    if (me == 0) {
      std::size_t local_at = 0;
      for (int s = resume_stage; s < nbands; ++s) {
        const int owner_leader =
            part.groups[static_cast<std::size_t>(part.owner_of_band(s))].base;
        std::vector<double> pack;
        if (owner_leader == 0) {
          FFW_CHECK(local_at < local_reports.size() &&
                    local_reports[local_at].first == s);
          pack = std::move(local_reports[local_at++].second);
        } else {
          pack = comm.recv<double>(owner_leader, kTagFreqReport - s);
        }
        out_result.stages.push_back(unpack_report(
            s, config.nx >> ladder.bands[static_cast<std::size_t>(s)].halvings,
            pack, ladder.bands[static_cast<std::size_t>(s)]));
      }
      const int last_leader =
          part.groups[static_cast<std::size_t>(
                          part.owner_of_band(nbands - 1))].base;
      if (last_leader == 0) {
        out_result.permittivity = std::move(local_final);
      } else {
        out_result.permittivity = comm.recv<cplx>(last_leader, kTagFreqFinal);
      }
      FFW_CHECK(out_result.permittivity.size() == final_grid.num_pixels());
    }
  };

  vc.run(rank_program);
  return out_result;
}

}  // namespace ffw
