// The Frechet (functional-derivative) operator F of paper Sec. VI-C.
//
// At background contrast O_b with per-illumination background field
// phi_b = [I - G0 O_b]^{-1} phi_inc, the derivative of the scattered
// field at the receivers w.r.t. the contrast is
//
//   F v  = G_R ( v .* phi_b  +  O_b .* w ),
//   w    = [I - G0 O_b]^{-1} G0 (v .* phi_b),
//
// i.e. one *forward* solve per application; the Hermitian transpose is
//
//   F^H u = conj(phi_b) .* ( g + G0^H [I - G0 O_b]^{-H} (conj(O_b) .* g) ),
//   g     = G_R^H u,
//
// one *adjoint* forward solve per application. (Note: eq. (6) in the
// paper drops the G0 factor inside the braces — a typo; the form above
// follows from the variational derivation and is validated against
// finite differences in tests/dbim_frechet_test.cpp.)
#pragma once

#include "forward/forward.hpp"
#include "greens/transceivers.hpp"

namespace ffw {

class FrechetOperator {
 public:
  /// `solver` must already hold the background contrast O_b;
  /// `background_field` is phi_b for one illumination (natural order).
  /// Both are borrowed; the caller keeps them alive.
  FrechetOperator(ForwardSolver& solver, const Transceivers& trx,
                  ccspan background_field);

  /// y (length R) = F v (v: pixel vector).
  void apply(ccspan v, cspan y);

  /// y (pixel vector) = F^H u (u: length R).
  void apply_adjoint(ccspan u, cspan y);

 private:
  ForwardSolver* solver_;
  const Transceivers* trx_;
  ccspan phi_b_;
  cvec work1_, work2_, work3_;
};

}  // namespace ffw
