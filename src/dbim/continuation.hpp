// Multi-frequency continuation driver (ROADMAP item 3): recursive
// linearization in the spirit of Borges-Gillman-Greengard
// (arXiv:1608.06871). Reconstruct the object at a low operating
// frequency first — where the scattering problem is only mildly
// nonlinear and the DBIM basin of convergence is wide — then use each
// band's image to warm-start the next, higher band, until the final
// resolution is reached. At high contrast, in limited-aperture or noisy
// scenarios, single-frequency DBIM stalls in a local minimum while the
// continuation walks down the ladder (bench_freq_continuation measures
// exactly this).
//
// In our lambda = 1 units a lower frequency is the same physical object
// on a coarser grid (the domain spans fewer wavelengths), so band k
// runs at nx_final / 2^halvings. Measurements are synthesised per band:
// physically, independent experiments at each operating frequency, each
// with its own noise realization (per-band seeds via mix_seed).
//
// Unlike the fixed-iteration multifrequency stub this module replaces
// as the primary interface, each band stops on its own criterion —
// residual tolerance, residual *plateau* (no meaningful progress over a
// trailing window; the natural criterion for "this band has given all
// it can at its resolution"), or an iteration cap — and the stage index
// is checkpointed so a crash mid-ladder resumes bit-identically
// (tests/multifrequency_test.cpp). The band dimension is also a
// parallel axis: dbim/continuation_parallel.hpp runs the same ladder
// over band groups of a VCluster.
#pragma once

#include <string>

#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {

/// One rung of the frequency ladder.
struct FrequencyBand {
  /// Grid halvings below the final grid (1 => nx_final/2, i.e. half the
  /// operating frequency). Bands must run coarse to fine
  /// (non-increasing halvings); equal-resolution repeats are allowed
  /// and warm-start bit-exactly (the raw contrast is passed verbatim —
  /// no k2 round trip).
  int halvings = 0;
  int max_iterations = 10;
  /// Absolute relative-residual stop for this band (0 = off).
  double residual_tol = 0.0;
  /// Plateau stop: end the band once the relative residual improved by
  /// less than plateau_rtol (relative) over the last plateau_window
  /// iterations. 0 disables. This is the recommended per-band stopping
  /// rule: a band should hand over as soon as it stops making progress
  /// at its resolution, not burn a fixed iteration budget.
  int plateau_window = 0;
  double plateau_rtol = 0.02;
};

/// The continuation schedule: bands, coarse to fine.
struct FrequencyLadder {
  std::vector<FrequencyBand> bands;

  /// Geometric ladder: `nstages` bands at halvings nstages-1 .. 0, each
  /// with the same iteration budget and plateau rule.
  static FrequencyLadder geometric(int nstages, int iterations_per_stage,
                                   int plateau_window = 0,
                                   double plateau_rtol = 0.02);

  /// Aborts unless the ladder is well-formed for a final grid of
  /// `final_nx` pixels per side: at least one band, coarse-to-fine
  /// order, and every band's grid coarse enough for the MLFMA tree.
  void validate(int final_nx) const;

  /// Band b's grid side on a final grid of `final_nx`.
  int band_nx(std::size_t b, int final_nx) const {
    return final_nx >> bands[b].halvings;
  }
};

/// Why a band stopped.
enum class StageStop {
  kIterations,   // iteration budget exhausted
  kResidualTol,  // band.residual_tol reached
  kPlateau,      // no progress over the trailing window
  kDegenerate,   // CG update degenerated (zero gradient / step)
};
const char* to_string(StageStop stop);

struct StageReport {
  int band = 0;
  int nx = 0;
  double k0 = 0.0;
  int iterations = 0;
  StageStop stop = StageStop::kIterations;
  /// Image RMSE vs the (box-filtered) truth on this band's grid.
  double rmse = 0.0;
  double seconds = 0.0;
  double setup_seconds = 0.0;
  DbimHistory history;
};

struct ContinuationOptions {
  /// Base DBIM options threaded into every band. The driver overrides
  /// only the per-band stopping fields (max_iterations, residual_tol),
  /// the table cache and the incident panel; everything else — backend
  /// routing (kAuto/CBS), adaptive forcing, regularization, recycling —
  /// applies inside every band exactly as configured. Per-scene
  /// pointers (mixed_engine, resume, checkpoint callback) must be
  /// unset: they cannot mean anything across a multi-grid ladder. Use
  /// `mixed_precision` below for mixed-precision bands.
  DbimOptions dbim;
  /// Build a Precision::kMixed engine per band and run every band's
  /// Krylov solves through mixed-precision iterative refinement.
  bool mixed_precision = false;
  /// Derive each band's measurement-noise seed from
  /// ScenarioConfig::noise_seed and the band index (mix_seed), so the
  /// per-band experiments carry independent noise realizations. False
  /// reproduces the legacy correlated-noise behaviour (one seed across
  /// all bands) for comparison studies only.
  bool per_stage_noise_seeds = true;
  /// When non-empty, the completed-stage state (stage index + raw
  /// contrast) is saved here atomically after every band, and
  /// `resume_from_checkpoint` restarts a crashed ladder at the first
  /// unfinished band — bit-identical to the uninterrupted run.
  std::string checkpoint_path;
  bool resume_from_checkpoint = false;
  /// Test hook: abandon the ladder after this band completes (and after
  /// its checkpoint is saved), simulating a crash mid-ladder. -1 = off.
  int stop_after_stage = -1;
};

struct ContinuationResult {
  /// Reconstructed delta_eps on the final grid. When stop_after_stage
  /// cut the ladder short this is the last completed band's image
  /// upsampled — a valid (coarse) reconstruction, flagged by
  /// `completed` = false.
  cvec permittivity;
  /// Reports for the bands this call actually ran (a resumed call
  /// reports only the bands it resumed; `first_stage` says where).
  std::vector<StageReport> stages;
  int first_stage = 0;
  bool completed = true;
};

/// True when `residuals` shows less than `rtol` relative improvement
/// over the last `window` entries (the per-band plateau criterion).
bool continuation_plateau(const std::vector<double>& residuals, int window,
                          double rtol);

/// Initial contrast for a band's grid from the previous band's raw
/// result. Equal resolution: the raw contrast verbatim — bit-exact, no
/// (divide by k2, multiply by k2) round trip. Coarser to finer:
/// delta_eps = contrast / k2_prev, bilinear upsample, scale by k2_next.
/// Shared by the legacy ladder, the serial continuation driver, the
/// band-parallel driver and the service's band jobs, so every path
/// derives identical warm starts.
cvec continuation_warm_start(ccspan contrast_prev, int prev_nx, int nx,
                             double k2_prev, double k2_next);

/// Classifies why a band's DBIM loop ended, from its residual history
/// and stopping parameters — a pure function of the history, so the
/// serial and band-parallel drivers always agree.
StageStop continuation_stop_reason(const std::vector<double>& residuals,
                                   const FrequencyBand& band);

/// Stage-level checkpoint round trip (shared by the serial and
/// band-parallel drivers): atomically records that `completed_stages`
/// bands are done with raw result `contrast` on a prev_nx grid, guarded
/// by a ladder fingerprint. Load returns false when the file is absent
/// or malformed and aborts when it belongs to a different ladder.
void continuation_checkpoint_save(const std::string& path,
                                  const FrequencyLadder& ladder, int final_nx,
                                  int completed_stages, int prev_nx,
                                  ccspan contrast);
bool continuation_checkpoint_load(const std::string& path,
                                  const FrequencyLadder& ladder, int final_nx,
                                  int* completed_stages, int* prev_nx,
                                  cvec* contrast);

/// Runs the ladder coarse-to-fine on this process. `config` describes
/// the final-band scenario (its nx, geometry, tolerances, cache);
/// `true_permittivity` is the object on the final grid, box-filtered to
/// synthesise each band's measurements.
ContinuationResult continuation_reconstruct(
    const ScenarioConfig& config, ccspan true_permittivity,
    const FrequencyLadder& ladder, const ContinuationOptions& options = {});

}  // namespace ffw
