// Gauss-Newton DBIM variant — the "Newton-type optimisation" the paper
// compares against in Sec. VI-B ("We prefer nonlinear conjugate-gradient
// iterations because they take fewer total matrix-vector multiplications
// than Newton-type optimization"). Implemented so that claim can be
// measured rather than quoted: each outer iteration solves the
// linearised least-squares problem
//
//     min_d  sum_t || F_t d + b_t ||^2  (+ lambda ||d||^2)
//
// with CGNR (conjugate gradients on the normal equations), where every
// CGNR iteration costs one F and one F^H application *per illumination*
// — i.e. two inner forward solves per illumination, versus the NLCG
// driver's fixed three per outer iteration. The Gauss-Newton direction
// is better, but far more expensive per step.
#pragma once

#include "dbim/dbim.hpp"

namespace ffw {

struct GaussNewtonOptions {
  int max_iterations = 10;       // outer (linearisation) iterations
  int cg_iterations = 4;         // CGNR iterations per outer step
  double residual_tol = 0.0;
  double tikhonov = 0.0;         // Levenberg-style damping
  std::function<void(int, double)> progress;
};

/// Same inputs/outputs as dbim_reconstruct; history counts every forward
/// solve so the matvec economics can be compared head to head.
DbimResult gauss_newton_reconstruct(MlfmaEngine& engine,
                                    const Transceivers& trx,
                                    const CMatrix& measured,
                                    const GaussNewtonOptions& opts = {},
                                    const BicgstabOptions& fw_opts = {});

}  // namespace ffw
