// Single-scattering (Born approximation) linear baseline, paper Sec. II.
//
// Under the Born approximation the total field inside the object is
// replaced by the incident field, so the data model becomes linear:
//   phi_t^sca ~= G_R diag(phi_t^inc) O   =: A_t O.
// Conventional diffraction tomography solves the least-squares problem
//   min_O sum_t || A_t O - phi_t^mea ||^2
// which we do with conjugate gradients on the normal equations (CGNR),
// early-terminated — iteration count is the regulariser, as in the
// paper's reconstructions. This is the "linear" image of Figs. 1 and 2.
#pragma once

#include "greens/transceivers.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

struct BornOptions {
  int max_iterations = 30;
  double tol = 1e-6;  // relative normal-equation residual
};

struct BornResult {
  cvec contrast;
  std::vector<double> relative_residual;  // data-space, per iteration
};

BornResult born_reconstruct(const Grid& grid, const Transceivers& trx,
                            const CMatrix& measured,
                            const BornOptions& opts = {});

}  // namespace ffw
