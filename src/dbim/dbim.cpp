#include "dbim/dbim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/kernels.hpp"
#include "obs/obs.hpp"
#include "service/table_cache.hpp"

namespace ffw {

DbimWorkspace::DbimWorkspace(MlfmaEngine& engine, const Transceivers& trx,
                             const CMatrix& measured,
                             const BicgstabOptions& fw_opts)
    : trx_(&trx), measured_(&measured), solver_(engine, fw_opts),
      active_(&solver_), npix_(engine.tree().grid().num_pixels()) {
  FFW_CHECK(measured.rows() == static_cast<std::size_t>(trx.num_receivers()));
  FFW_CHECK(measured.cols() == static_cast<std::size_t>(trx.num_transmitters()));
  meas_norm2_ = 0.0;
  for (std::size_t t = 0; t < measured.cols(); ++t) {
    const double nn = nrm2(measured.col(t));
    meas_norm2_ += nn * nn;
  }
  phi_b_ = CMatrix(npix_, measured.cols());
  phi_b_valid_.assign(measured.cols(), false);
  scratch_r_.assign(measured.rows(), cplx{});
}

int DbimWorkspace::num_illuminations() const {
  return trx_->num_transmitters();
}

void DbimWorkspace::set_backend(BackendKind policy, const CbsOptions& cbs_opts,
                                double contrast_threshold,
                                double escalation_rate,
                                std::shared_ptr<const CbsTables> tables) {
  policy_ = policy;
  auto_threshold_ = contrast_threshold;
  auto_escalation_rate_ = escalation_rate;
  escalated_ = false;
  if (policy == BackendKind::kMlfma) {
    cbs_.reset();
    active_ = &solver_;
    return;
  }
  if (tables) {
    FFW_CHECK(tables->grid.nx() == solver_.tree().grid().nx());
    cbs_ = std::make_unique<CbsEngine>(std::move(tables), cbs_opts);
  } else {
    cbs_ = std::make_unique<CbsEngine>(solver_.tree().grid(), cbs_opts);
  }
  active_ = policy == BackendKind::kCbs ? static_cast<ForwardBackend*>(cbs_.get())
                                        : &solver_;
}

void DbimWorkspace::set_background(ccspan contrast, bool keep_fields) {
  solver_.set_contrast(contrast);
  if (cbs_) {
    cbs_->set_contrast(contrast);
    if (policy_ == BackendKind::kCbs) {
      active_ = cbs_.get();
    } else if (policy_ == BackendKind::kAuto) {
      // Contrast gate, re-evaluated for every new background: CBS while
      // the strongest pixel stays below the threshold (in permittivity
      // units), MLFMA otherwise. An escalation is permanent — once the
      // series has struggled on this reconstruction, trust MLFMA.
      double omax = 0.0;
      for (const cplx& o : contrast) omax = std::max(omax, std::abs(o));
      const double k0 = solver_.tree().grid().k0();
      const bool weak = omax / (k0 * k0) < auto_threshold_;
      active_ = (weak && !escalated_)
                    ? static_cast<ForwardBackend*>(cbs_.get())
                    : &solver_;
    }
  }
  if (!keep_fields) {
    std::fill(phi_b_valid_.begin(), phi_b_valid_.end(), false);
    // Recycle snapshots follow the same reset policy as the warm-started
    // fields: a run that restarts its fields (e.g. crash recovery)
    // re-derives its Krylov seeds from scratch, keeping the recovered
    // trajectory identical to the fault-free one.
    rec_grad_.clear();
    rec_step_.clear();
  }
  // Otherwise background fields stay as warm starts for the next
  // residual pass.
}

void DbimWorkspace::set_recycling(std::size_t depth, double ridge) {
  rec_grad_ = KrylovRecycler(RecycleOptions{depth, ridge});
  rec_step_ = KrylovRecycler(RecycleOptions{depth, ridge});
}

ccspan DbimWorkspace::incident_column(int t, cvec& storage) const {
  if (!incident_panel_.empty()) {
    FFW_DCHECK(incident_panel_.size() >=
               (static_cast<std::size_t>(t) + 1) * npix_);
    return incident_panel_.subspan(static_cast<std::size_t>(t) * npix_, npix_);
  }
  storage = trx_->incident_field(t);
  return storage;
}

double DbimWorkspace::residual_pass(int t, cspan residual) {
  FFW_CHECK(residual.size() == measured_->rows());
  const std::size_t tc = static_cast<std::size_t>(t);
  cvec inc_storage;
  const ccspan inc = incident_column(t, inc_storage);
  cspan phi = phi_b_.col(tc);
  if (!phi_b_valid_[tc]) {
    copy(inc, phi);  // first iteration: incident field as initial guess
    phi_b_valid_[tc] = true;
  }
  const BicgstabResult res = solver_.solve(inc, phi);
  FFW_CHECK_MSG(res.converged, "DBIM residual-pass forward solve diverged");
  // phi_sca = G_R (O_b .* phi); residual = phi_sca - phi_mea.
  cvec ophi(npix_);
  diag_mul(solver_.contrast_natural(), ccspan{phi.data(), npix_}, ophi);
  trx_->apply_gr(ophi, residual);
  sub(residual, measured_->col(tc), residual);
  const double rn = nrm2(ccspan{residual.data(), residual.size()});
  return rn * rn;
}

void DbimWorkspace::gradient_pass(int t, ccspan residual, cspan grad_accum) {
  FFW_CHECK(grad_accum.size() == npix_);
  FrechetOperator f(solver_, *trx_,
                    ccspan{phi_b_.col(static_cast<std::size_t>(t)).data(),
                           npix_});
  cvec g(npix_);
  f.apply_adjoint(residual, g);
  axpy(cplx{1.0}, g, grad_accum);
}

double DbimWorkspace::step_pass(int t, ccspan direction) {
  FFW_CHECK(direction.size() == npix_);
  FrechetOperator f(solver_, *trx_,
                    ccspan{phi_b_.col(static_cast<std::size_t>(t)).data(),
                           npix_});
  f.apply(direction, scratch_r_);
  const double fn = nrm2(scratch_r_);
  return fn * fn;
}

bool DbimWorkspace::block_solve(ccspan rhs, cspan x, std::size_t nrhs,
                                bool adjoint) {
  // Eisenstat-Walker forcing: a positive forcing tolerance (always >=
  // the solver's base tolerance, the driver clamps) loosens the target
  // of every Krylov solve of this DBIM iteration. The ForwardBackend
  // panel API threads the per-call tolerance through either engine.
  const double base = solver_.options().tol;
  const double tol = forcing_tol_ > 0.0 ? std::max(forcing_tol_, base) : base;
  if (active_ == cbs_.get() && cbs_) {
    const bool ok = adjoint ? cbs_->solve_adjoint_panel(rhs, x, nrhs, tol)
                            : cbs_->solve_panel(rhs, x, nrhs, tol);
    if (ok) {
      if (policy_ == BackendKind::kAuto &&
          cbs_->last_info().convergence_rate > auto_escalation_rate_) {
        // Converged, but the series is slowing down: escalate *before*
        // the watchdog has to abort a solve mid-reconstruction.
        escalated_ = true;
        active_ = &solver_;
      }
      return true;
    }
    if (policy_ != BackendKind::kAuto) return false;
    // Watchdog tripped under kAuto: permanently hand the reconstruction
    // to MLFMA and redo this panel there (the partial CBS iterate left
    // in x is a serviceable warm start).
    escalated_ = true;
    active_ = &solver_;
  }
  return adjoint ? solver_.solve_adjoint_panel(rhs, x, nrhs, tol)
                 : solver_.solve_panel(rhs, x, nrhs, tol);
}

double DbimWorkspace::residual_pass_all(cspan residuals) {
  const std::size_t tc = measured_->cols();
  const std::size_t nr = measured_->rows();
  FFW_CHECK(residuals.size() == nr * tc);
  // RHS panel: all incident fields; warm-start guesses live directly in
  // the phi_b_ columns, which the block solve updates in place.
  cvec rhs(npix_ * tc);
  cvec inc_storage;
  for (std::size_t t = 0; t < tc; ++t) {
    const ccspan inc = incident_column(static_cast<int>(t), inc_storage);
    std::copy(inc.begin(), inc.end(), rhs.begin() +
              static_cast<std::ptrdiff_t>(t * npix_));
    if (!phi_b_valid_[t]) {
      copy(inc, phi_b_.col(t));  // first iteration: incident field guess
      phi_b_valid_[t] = true;
    }
  }
  FFW_CHECK_MSG(block_solve(rhs, cspan{phi_b_.data(), npix_ * tc}, tc,
                            /*adjoint=*/false),
                "DBIM residual-pass block solve diverged");
  double cost = 0.0;
  cvec ophi(npix_);
  for (std::size_t t = 0; t < tc; ++t) {
    cspan residual{residuals.data() + t * nr, nr};
    diag_mul(solver_.contrast_natural(),
             ccspan{phi_b_.col(t).data(), npix_}, ophi);
    trx_->apply_gr(ophi, residual);
    sub(residual, measured_->col(t), residual);
    const double rn = nrm2(ccspan{residual.data(), nr});
    cost += rn * rn;
  }
  return cost;
}

void DbimWorkspace::gradient_pass_all(ccspan residuals, cspan grad_accum) {
  const std::size_t tc = measured_->cols();
  const std::size_t nr = measured_->rows();
  FFW_CHECK(residuals.size() == nr * tc && grad_accum.size() == npix_);
  // Blocked adjoint Frechet: g_t = G_R^H b_t, one block adjoint solve of
  // [I - G0 O]^H for all t, then the G0^H products as one blocked apply.
  cvec g1(npix_ * tc), w2(npix_ * tc), w3(npix_ * tc, cplx{}),
      w4(npix_ * tc);
  for (std::size_t t = 0; t < tc; ++t) {
    trx_->apply_gr_herm(ccspan{residuals.data() + t * nr, nr},
                        cspan{g1.data() + t * npix_, npix_});
    diag_mul_conj(solver_.contrast_natural(),
                  ccspan{g1.data() + t * npix_, npix_},
                  cspan{w2.data() + t * npix_, npix_});
  }
  // Column-major natural-order panels are the npanels == 1 block layout;
  // the recycler seeds each transmitter's column independently.
  const BlockLayout lon{npix_, tc, 1};
  rec_grad_.seed(w2, w3, lon);
  FFW_CHECK_MSG(block_solve(w2, w3, tc, /*adjoint=*/true),
                "DBIM gradient-pass block solve diverged");
  rec_grad_.store(w2, w3, lon);
  active_->apply_g0_herm_panel(w3, w4, tc);
  for (std::size_t t = 0; t < tc; ++t) {
    const cplx* phi = phi_b_.col(t).data();
    const cplx* g1t = g1.data() + t * npix_;
    const cplx* w4t = w4.data() + t * npix_;
    for (std::size_t i = 0; i < npix_; ++i)
      grad_accum[i] += std::conj(phi[i]) * (g1t[i] + w4t[i]);
  }
}

double DbimWorkspace::step_pass_all(ccspan direction) {
  const std::size_t tc = measured_->cols();
  FFW_CHECK(direction.size() == npix_);
  // Blocked Frechet apply: u_t = d .* phi_b,t, one blocked G0 apply, one
  // block forward solve, then the receiver projections per column.
  cvec u1(npix_ * tc), u2(npix_ * tc), w(npix_ * tc, cplx{});
  for (std::size_t t = 0; t < tc; ++t) {
    diag_mul(direction, ccspan{phi_b_.col(t).data(), npix_},
             cspan{u1.data() + t * npix_, npix_});
  }
  active_->apply_g0_panel(u1, u2, tc);
  const BlockLayout lon{npix_, tc, 1};
  rec_step_.seed(u2, w, lon);
  FFW_CHECK_MSG(block_solve(u2, w, tc, /*adjoint=*/false),
                "DBIM step-pass block solve diverged");
  rec_step_.store(u2, w, lon);
  double denom = 0.0;
  for (std::size_t t = 0; t < tc; ++t) {
    diag_mul_acc(solver_.contrast_natural(),
                 ccspan{w.data() + t * npix_, npix_},
                 cspan{u1.data() + t * npix_, npix_});
    trx_->apply_gr(ccspan{u1.data() + t * npix_, npix_}, scratch_r_);
    const double fn = nrm2(scratch_r_);
    denom += fn * fn;
  }
  return denom;
}

DbimStepper::DbimStepper(MlfmaEngine& engine, const Transceivers& trx,
                         const CMatrix& measured, const DbimOptions& opts,
                         const BicgstabOptions& fw_opts,
                         ccspan initial_contrast)
    : opts_(opts),
      fw_opts_(fw_opts),
      ws_(engine, trx, measured, fw_opts),
      n_(ws_.num_pixels()) {
  if (opts.mixed_engine != nullptr) {
    ws_.solver().set_mixed_engine(opts.mixed_engine);
  }
  if (opts.near_precondition) {
    ws_.solver().set_near_preconditioner(
        true, opts.mixed_engine != nullptr ? Precision::kMixed
                                           : Precision::kDouble);
  }
  if (opts.recycle_depth > 0) {
    ws_.set_recycling(static_cast<std::size_t>(opts.recycle_depth),
                      opts.recycle_ridge);
  }
  if (opts.backend != BackendKind::kMlfma) {
    // Shared cache (when wired) hands every sharing job the same CBS
    // kernel spectrum and FFT plans; otherwise build privately.
    std::shared_ptr<const CbsTables> ctab;
    if (opts.table_cache != nullptr) {
      ctab = opts.table_cache->cbs_tables(engine.tree().grid(),
                                          opts.cbs.precision);
    }
    ws_.set_backend(opts.backend, opts.cbs, opts.auto_contrast_threshold,
                    opts.auto_escalation_rate, std::move(ctab));
  }
  if (!opts.incident_panel.empty()) {
    ws_.set_incident_panel(opts.incident_panel);
  }
  const int t_count = ws_.num_illuminations();

  DbimResult& out = out_;
  out.contrast.assign(n_, cplx{});
  if (!initial_contrast.empty()) {
    FFW_CHECK(initial_contrast.size() == n_);
    copy(initial_contrast, out.contrast);
  }

  grad_.assign(n_, cplx{});
  grad_prev_.assign(n_, cplx{});
  direction_.assign(n_, cplx{});
  residuals_.assign(measured.rows() * static_cast<std::size_t>(t_count),
                    cplx{});
  cvec& grad_prev = grad_prev_;
  cvec& direction = direction_;
  double& grad_prev_norm2 = grad_prev_norm2_;
  const std::size_t n = n_;
  int start_iter = 0;
  if (opts.resume) {
    // Refuse to resume across a precision-policy change: the checkpoint
    // records whether the run used a mixed-precision engine, and picking
    // up its trajectory under a different policy silently alters the
    // convergence history the checkpoint's residuals describe.
    FFW_CHECK_MSG(
        opts.resume->mixed_precision == (opts.mixed_engine != nullptr),
        "DBIM resume: checkpoint precision policy (mixed vs fp64) does not "
        "match DbimOptions::mixed_engine");
    // Same contract for the forward-backend policy: a checkpoint from a
    // CBS or kAuto run resumed under a different routing would hand the
    // remaining solves to a different engine than the residual history
    // describes — fail loudly instead.
    FFW_CHECK_MSG(opts.resume->backend == opts.backend,
                  "DBIM resume: checkpoint backend policy does not match "
                  "DbimOptions::backend");
    FFW_CHECK(opts.resume->contrast.size() == n);
    out.contrast = opts.resume->contrast;
    grad_prev = opts.resume->gradient_prev;
    direction = opts.resume->direction;
    if (grad_prev.size() == n) {
      grad_prev_norm2 = std::pow(nrm2(grad_prev), 2);
    } else {
      grad_prev.assign(n, cplx{});
    }
    if (direction.size() != n) direction.assign(n, cplx{});
    start_iter = opts.resume->iteration;
    out.history.relative_residual.assign(
        opts.resume->residual_history.begin(),
        opts.resume->residual_history.end());
  }
  iter_ = start_iter;
  done_ = iter_ >= opts_.max_iterations;
  opts_.resume = nullptr;  // consumed above; don't keep the borrow alive
}

double DbimStepper::last_residual() const {
  return out_.history.relative_residual.empty()
             ? std::numeric_limits<double>::quiet_NaN()
             : out_.history.relative_residual.back();
}

bool DbimStepper::step() {
  if (done_) return false;
  const DbimOptions& opts = opts_;
  DbimWorkspace& ws = ws_;
  DbimResult& out = out_;
  cvec& grad = grad_;
  cvec& grad_prev = grad_prev_;
  cvec& direction = direction_;
  const std::size_t n = n_;
  const int iter = iter_;

  FFW_TRACE_SPAN("dbim.iteration", iter);
  if (opts.adaptive_forcing) {
    // Lagged Eisenstat-Walker forcing: every solve of this iteration
    // targets c * (last outer residual), clamped to [base_tol, cap].
    // On resume the lagged residual comes from the checkpointed
    // history, so the recovered tolerances are bit-identical.
    const auto& hist = out.history.relative_residual;
    const double base = fw_opts_.tol;
    double ftol = std::max(base, opts.forcing_cap);
    if (!hist.empty()) {
      ftol = std::clamp(opts.forcing_c * hist.back(), base,
                        std::max(base, opts.forcing_cap));
    }
    ws.set_forcing_tolerance(ftol);
  }
  ws.set_background(out.contrast, opts.warm_start_fields);

  // Pass 1+2: residuals and gradient, each as one blocked solve over
  // the whole illumination set (shared-operator multi-RHS structure).
  std::fill(grad.begin(), grad.end(), cplx{});
  double cost;
  {
    FFW_TRACE_SPAN("dbim.residual_pass", iter);
    cost = ws.residual_pass_all(residuals_);
  }
  {
    FFW_TRACE_SPAN("dbim.gradient_pass", iter);
    ws.gradient_pass_all(residuals_, grad);
  }
  const double relres = std::sqrt(cost / ws.measurement_norm2());
  out.history.relative_residual.push_back(relres);
  if (opts.progress) opts.progress(iter, relres);
  if (opts.residual_tol > 0.0 && relres < opts.residual_tol) {
    done_ = true;
    return false;
  }

  // Tikhonov term: grad(lambda ||O||^2) = lambda * O (Wirtinger
  // convention, matching the data-term gradient F^H b).
  if (opts.tikhonov > 0.0) {
    axpy(cplx{opts.tikhonov}, ccspan{out.contrast}, grad);
  }

  // Conjugate direction (Polak-Ribiere+ with automatic restart).
  const double gnorm2 = std::pow(nrm2(grad), 2);
  if (gnorm2 == 0.0) {
    done_ = true;
    return false;
  }
  double beta = 0.0;
  if (opts.conjugate_gradient && iter > 0 && grad_prev_norm2_ > 0.0) {
    cplx num{};
    for (std::size_t i = 0; i < n; ++i)
      num += std::conj(grad[i]) * (grad[i] - grad_prev[i]);
    beta = std::max(0.0, num.real() / grad_prev_norm2_);
  }
  if (beta == 0.0) {
    for (std::size_t i = 0; i < n; ++i) direction[i] = -grad[i];
  } else {
    for (std::size_t i = 0; i < n; ++i)
      direction[i] = -grad[i] + beta * direction[i];
  }

  // Pass 3: quadratic-fit step length (paper eq. 5 generalised to CG
  // directions), one blocked solve for all illuminations.
  double denom;
  {
    FFW_TRACE_SPAN("dbim.step_pass", iter);
    denom = ws.step_pass_all(direction);
  }
  if (opts.tikhonov > 0.0) {
    denom += opts.tikhonov * std::pow(nrm2(direction), 2);
  }
  if (denom == 0.0) {
    done_ = true;
    return false;
  }
  double num = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    num -= (std::conj(grad[i]) * direction[i]).real();
  const double alpha = num / denom;
  axpy(cplx{alpha}, direction, out.contrast);

  copy(grad, grad_prev);
  grad_prev_norm2_ = gnorm2;
  ++iter_;

  if (opts.checkpoint) {
    DbimCheckpoint state;
    state.iteration = iter_;
    state.mixed_precision = opts.mixed_engine != nullptr;
    state.backend = opts.backend;
    state.contrast = out.contrast;
    state.gradient_prev = grad_prev;
    state.direction = direction;
    state.residual_history.assign(out.history.relative_residual.begin(),
                                  out.history.relative_residual.end());
    opts.checkpoint(state);
  }
  if (iter_ >= opts.max_iterations) done_ = true;
  return !done_;
}

DbimResult DbimStepper::result() {
  // Both engines may have contributed solves (kAuto switches mid-run);
  // the history totals span whatever mix actually executed.
  const ForwardStats& ms = ws_.solver().stats();
  out_.history.forward_solves = ms.solves;
  out_.history.operator_applications = ms.operator_applications;
  out_.history.bicgstab_iterations = ms.bicgs_iterations;
  out_.history.precond_setup_seconds = ms.precond_setup_seconds;
  if (ws_.cbs() != nullptr) {
    const ForwardStats& cs = ws_.cbs()->stats();
    out_.history.forward_solves += cs.solves;
    out_.history.operator_applications += cs.operator_applications;
    out_.history.bicgstab_iterations += cs.bicgs_iterations;
  }
  out_.history.backend = opts_.backend;
  out_.history.cbs_escalated = ws_.cbs_escalated();
  return std::move(out_);
}

DbimResult dbim_reconstruct(MlfmaEngine& engine, const Transceivers& trx,
                            const CMatrix& measured, const DbimOptions& opts,
                            const BicgstabOptions& fw_opts,
                            ccspan initial_contrast) {
  DbimStepper stepper(engine, trx, measured, opts, fw_opts, initial_contrast);
  while (stepper.step()) {
  }
  return stepper.result();
}

}  // namespace ffw
