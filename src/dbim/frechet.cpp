#include "dbim/frechet.hpp"

#include "linalg/kernels.hpp"

namespace ffw {

FrechetOperator::FrechetOperator(ForwardSolver& solver,
                                 const Transceivers& trx,
                                 ccspan background_field)
    : solver_(&solver), trx_(&trx), phi_b_(background_field) {
  const std::size_t n = phi_b_.size();
  work1_.assign(n, cplx{});
  work2_.assign(n, cplx{});
  work3_.assign(n, cplx{});
}

void FrechetOperator::apply(ccspan v, cspan y) {
  const std::size_t n = phi_b_.size();
  FFW_CHECK(v.size() == n && y.size() ==
            static_cast<std::size_t>(trx_->num_receivers()));
  // work1 = v .* phi_b
  diag_mul(v, phi_b_, work1_);
  // work2 = G0 work1  (note: apply_g0_contrast multiplies by O first, so
  // use the engine path with a unit contrast trick instead: we need the
  // raw G0 product here).
  {
    const QuadTree& tree = solver_->tree();
    cvec xc(n), yc(n);
    tree.to_cluster_order(work1_, xc);
    solver_->engine().apply(xc, yc);
    tree.to_natural_order(yc, work2_);
  }
  // work3 = [I - G0 O_b]^{-1} work2  (forward solve, zero initial guess)
  std::fill(work3_.begin(), work3_.end(), cplx{});
  solver_->solve(work2_, work3_);
  // work1 += O_b .* work3, then y = G_R work1
  diag_mul_acc(solver_->contrast_natural(), work3_, work1_);
  trx_->apply_gr(work1_, y);
}

void FrechetOperator::apply_adjoint(ccspan u, cspan y) {
  const std::size_t n = phi_b_.size();
  FFW_CHECK(y.size() == n && u.size() ==
            static_cast<std::size_t>(trx_->num_receivers()));
  // work1 = g = G_R^H u
  trx_->apply_gr_herm(u, work1_);
  // work2 = conj(O_b) .* g
  diag_mul_conj(solver_->contrast_natural(), work1_, work2_);
  // work3 = [I - G0 O_b]^{-H} work2  (adjoint solve)
  std::fill(work3_.begin(), work3_.end(), cplx{});
  solver_->solve_adjoint(work2_, work3_);
  // work2 = G0^H work3
  {
    const QuadTree& tree = solver_->tree();
    cvec xc(n), yc(n);
    tree.to_cluster_order(work3_, xc);
    solver_->engine().apply_herm(xc, yc);
    tree.to_natural_order(yc, work2_);
  }
  // y = conj(phi_b) .* (g + work2)
  for (std::size_t i = 0; i < n; ++i)
    y[i] = std::conj(phi_b_[i]) * (work1_[i] + work2_[i]);
}

}  // namespace ffw
