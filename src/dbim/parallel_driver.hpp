// Two-dimensional distributed DBIM driver — the paper's headline
// parallelisation (Fig. 6): ranks form an illum_groups x tree_ranks
// grid. Each *illumination group* owns a subset of transmitters (round
// robin); within a group the image and MLFMA tree are partitioned over
// `tree_ranks` ranks (PartitionedMlfma). Synchronisation across
// illumination groups happens exactly twice per DBIM iteration — the
// gradient combine and the step-length combine — matching Fig. 4.
//
// This runs on the virtual cluster (threads as ranks, see DESIGN.md
// Sec. 2): the algorithm, message pattern and traffic volumes are those
// of the MPI implementation; only wall-clock speedup cannot manifest on
// a single machine (the performance model covers that).
#pragma once

#include "dbim/dbim.hpp"
#include "mlfma/partitioned.hpp"

namespace ffw {

struct ParallelDbimConfig {
  int illum_groups = 1;  // parallelisation dimension 1 (illuminations)
  int tree_ranks = 1;    // parallelisation dimension 2 (MLFMA sub-trees)
  DbimOptions dbim;
  BicgstabOptions forward;
  MlfmaParams mlfma;

  /// Shared operator-table cache (borrowed, may be null): the
  /// PartitionedMlfma then shares the cached MLFMA tables for
  /// (tree.grid(), tree.leaf_pixel_side(), mlfma) instead of building a
  /// private set — repeated parallel reconstructions over one
  /// configuration (the service's common case) pay the tables once.
  OperatorTableCache* table_cache = nullptr;

  /// When non-empty, global rank 0 gathers the outer-loop state
  /// (contrast, CG memory, residual history — natural pixel order, same
  /// DbimCheckpoint format the serial driver emits) from the group-0
  /// tree ranks and saves it here, atomically, every `checkpoint_every`
  /// completed iterations. Required for crash recovery.
  std::string checkpoint_path;
  int checkpoint_every = 1;
  /// Supervisor restarts: when a rank fails mid-run (e.g. an injected
  /// RankFailure, see vcluster/fault.hpp), the driver calls
  /// VCluster::recover(), reloads the last checkpoint and reruns the
  /// cluster from that iteration — at most this many times, after which
  /// (or when 0) the CommFailure propagates to the caller. In process
  /// mode (a VCluster hosting one rank) the in-driver supervisor is
  /// disabled — failures propagate so the process can exit and the
  /// process-tree supervisor (ffw_launch) relaunches the whole world.
  int max_restarts = 0;
  /// Resume from `checkpoint_path` at entry if it loads (process-mode
  /// relaunch path: ffw_launch restarted the world after a rank died,
  /// so every worker rejoins at the last completed iteration instead of
  /// iteration 0). Ignored when the file does not exist yet.
  bool resume_from_checkpoint = false;
};

/// Collective reconstruction over `vc` (vc.size() must equal
/// illum_groups * tree_ranks). Returns the same result as the serial
/// dbim_reconstruct (validated in tests/parallel_dbim_test.cpp). With
/// checkpoint_path + max_restarts set, the run survives rank crashes:
/// each restart resumes from the last atomically-saved iteration (or
/// from scratch when none completed yet).
DbimResult dbim_reconstruct_parallel(VCluster& vc, const QuadTree& tree,
                                     const Transceivers& trx,
                                     const CMatrix& measured,
                                     const ParallelDbimConfig& config);

/// A 2-D DBIM grid occupying only a *window* of the cluster's ranks:
/// ranks [rank_base, rank_base + illum_groups * tree_ranks) form the
/// illumination x sub-tree grid while the rest of the cluster runs
/// something else — other frequency bands of a continuation ladder
/// (dbim/continuation_parallel.hpp), concurrently. Every collective is
/// a group primitive over explicit window rank lists; the global
/// barrier/allreduce are never touched, so disjoint windows cannot
/// interfere (or deadlock) with each other.
struct WindowedDbimConfig {
  int rank_base = 0;     // first global rank of the window
  int illum_groups = 1;
  int tree_ranks = 1;    // must equal the PartitionedMlfma's nranks
  DbimOptions dbim;
  BicgstabOptions forward;
  /// Per-band plateau stop (dbim/continuation.hpp semantics): end the
  /// run once the relative residual improved by less than plateau_rtol
  /// over the last plateau_window iterations. 0 disables.
  int plateau_window = 0;
  double plateau_rtol = 0.0;
};

/// Collective over the window's ranks only — every rank of the window
/// must call it with the same arguments (and a PartitionedMlfma built
/// over tree_ranks sub-trees of the same tree). `initial_contrast`
/// (natural order, may be empty) seeds the outer loop — the warm-start
/// hand-off of the frequency ladder. Returns the full natural-order
/// image on every window rank. Stage-level checkpointing is the
/// caller's job; this driver has no supervisor of its own.
DbimResult dbim_reconstruct_windowed(Comm& comm, const PartitionedMlfma& pm,
                                     const QuadTree& tree,
                                     const Transceivers& trx,
                                     const CMatrix& measured,
                                     const WindowedDbimConfig& config,
                                     ccspan initial_contrast = {});

}  // namespace ffw
