// Two-dimensional distributed DBIM driver — the paper's headline
// parallelisation (Fig. 6): ranks form an illum_groups x tree_ranks
// grid. Each *illumination group* owns a subset of transmitters (round
// robin); within a group the image and MLFMA tree are partitioned over
// `tree_ranks` ranks (PartitionedMlfma). Synchronisation across
// illumination groups happens exactly twice per DBIM iteration — the
// gradient combine and the step-length combine — matching Fig. 4.
//
// This runs on the virtual cluster (threads as ranks, see DESIGN.md
// Sec. 2): the algorithm, message pattern and traffic volumes are those
// of the MPI implementation; only wall-clock speedup cannot manifest on
// a single machine (the performance model covers that).
#pragma once

#include "dbim/dbim.hpp"
#include "mlfma/partitioned.hpp"

namespace ffw {

struct ParallelDbimConfig {
  int illum_groups = 1;  // parallelisation dimension 1 (illuminations)
  int tree_ranks = 1;    // parallelisation dimension 2 (MLFMA sub-trees)
  DbimOptions dbim;
  BicgstabOptions forward;
  MlfmaParams mlfma;
};

/// Collective reconstruction over `vc` (vc.size() must equal
/// illum_groups * tree_ranks). Returns the same result as the serial
/// dbim_reconstruct (validated in tests/parallel_dbim_test.cpp).
DbimResult dbim_reconstruct_parallel(VCluster& vc, const QuadTree& tree,
                                     const Transceivers& trx,
                                     const CMatrix& measured,
                                     const ParallelDbimConfig& config);

}  // namespace ffw
