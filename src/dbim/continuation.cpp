#include "dbim/continuation.hpp"

#include <cmath>
#include <memory>

#include "common/timer.hpp"
#include "phantom/resample.hpp"

namespace ffw {

FrequencyLadder FrequencyLadder::geometric(int nstages,
                                           int iterations_per_stage,
                                           int plateau_window,
                                           double plateau_rtol) {
  FFW_CHECK(nstages >= 1);
  FrequencyLadder ladder;
  for (int s = 0; s < nstages; ++s) {
    FrequencyBand band;
    band.halvings = nstages - 1 - s;
    band.max_iterations = iterations_per_stage;
    band.plateau_window = plateau_window;
    band.plateau_rtol = plateau_rtol;
    ladder.bands.push_back(band);
  }
  return ladder;
}

void FrequencyLadder::validate(int final_nx) const {
  FFW_CHECK_MSG(!bands.empty(), "frequency ladder has no bands");
  int prev_halvings = bands.front().halvings;
  for (const FrequencyBand& band : bands) {
    FFW_CHECK(band.halvings >= 0 && band.max_iterations >= 0);
    FFW_CHECK_MSG(band.halvings <= prev_halvings,
                  "ladder bands must run coarse to fine");
    prev_halvings = band.halvings;
    const int nx = final_nx >> band.halvings;
    FFW_CHECK_MSG(nx >= 16 && nx % 8 == 0,
                  "band grid too coarse for the MLFMA tree");
    FFW_CHECK(band.plateau_window >= 0 && band.plateau_rtol >= 0.0);
  }
}

const char* to_string(StageStop stop) {
  switch (stop) {
    case StageStop::kIterations: return "iterations";
    case StageStop::kResidualTol: return "residual_tol";
    case StageStop::kPlateau: return "plateau";
    case StageStop::kDegenerate: return "degenerate";
  }
  return "?";
}

bool continuation_plateau(const std::vector<double>& residuals, int window,
                          double rtol) {
  if (window <= 0 ||
      residuals.size() <= static_cast<std::size_t>(window)) {
    return false;
  }
  const double then = residuals[residuals.size() - 1 -
                               static_cast<std::size_t>(window)];
  return residuals.back() > (1.0 - rtol) * then;
}

cvec continuation_warm_start(ccspan contrast_prev, int prev_nx, int nx,
                             double k2_prev, double k2_next) {
  FFW_CHECK(prev_nx <= nx && prev_nx > 0);
  if (prev_nx == nx) {
    // Same operating frequency: hand the raw contrast over verbatim.
    // Going through delta_eps — (divide by k2, multiply back) — is not
    // bit-exact in floating point and would drift the warm start on
    // every equal-resolution rung.
    return cvec(contrast_prev.begin(), contrast_prev.end());
  }
  cvec eps(contrast_prev.size());
  for (std::size_t i = 0; i < eps.size(); ++i)
    eps[i] = contrast_prev[i] / k2_prev;
  for (int cur = prev_nx; cur < nx; cur *= 2) eps = upsample2(eps, cur);
  for (auto& v : eps) v *= k2_next;
  return eps;
}

StageStop continuation_stop_reason(const std::vector<double>& residuals,
                                   const FrequencyBand& band) {
  if (band.residual_tol > 0.0 && !residuals.empty() &&
      residuals.back() < band.residual_tol) {
    return StageStop::kResidualTol;
  }
  if (continuation_plateau(residuals, band.plateau_window,
                           band.plateau_rtol)) {
    return StageStop::kPlateau;
  }
  if (static_cast<int>(residuals.size()) >= band.max_iterations)
    return StageStop::kIterations;
  return StageStop::kDegenerate;
}

namespace {

/// Fingerprint array guarding stage checkpoints against a resume under
/// a different ladder (which would silently change the trajectory).
cvec ladder_fingerprint(const FrequencyLadder& ladder, int final_nx) {
  cvec fp;
  fp.emplace_back(static_cast<double>(final_nx),
                  static_cast<double>(ladder.bands.size()));
  for (const FrequencyBand& band : ladder.bands) {
    fp.emplace_back(static_cast<double>(band.halvings),
                    static_cast<double>(band.max_iterations));
  }
  return fp;
}

}  // namespace

void continuation_checkpoint_save(const std::string& path,
                                  const FrequencyLadder& ladder, int final_nx,
                                  int completed_stages, int prev_nx,
                                  ccspan contrast) {
  Checkpoint ck;
  ck.put("ladder", ladder_fingerprint(ladder, final_nx));
  ck.put_scalar("stage", static_cast<double>(completed_stages));
  ck.put_scalar("prev_nx", static_cast<double>(prev_nx));
  ck.put("contrast", contrast);
  FFW_CHECK_MSG(ck.save(path), "continuation: stage checkpoint save failed");
}

bool continuation_checkpoint_load(const std::string& path,
                                  const FrequencyLadder& ladder, int final_nx,
                                  int* completed_stages, int* prev_nx,
                                  cvec* contrast) {
  Checkpoint ck;
  if (!ck.load(path)) return false;
  FFW_CHECK_MSG(ck.contains("ladder") && ck.contains("contrast"),
                "continuation: malformed stage checkpoint");
  const cvec fp = ladder_fingerprint(ladder, final_nx);
  const cvec& got = ck.get("ladder");
  FFW_CHECK_MSG(got == fp,
                "continuation: checkpoint was written by a different "
                "frequency ladder");
  *completed_stages = static_cast<int>(ck.get_scalar("stage"));
  *prev_nx = static_cast<int>(ck.get_scalar("prev_nx"));
  *contrast = ck.get("contrast");
  FFW_CHECK(*completed_stages >= 1 &&
            *completed_stages <= static_cast<int>(ladder.bands.size()));
  return true;
}

ContinuationResult continuation_reconstruct(const ScenarioConfig& config,
                                            ccspan true_permittivity,
                                            const FrequencyLadder& ladder,
                                            const ContinuationOptions& options) {
  ladder.validate(config.nx);
  const Grid final_grid(config.nx);
  FFW_CHECK(true_permittivity.size() == final_grid.num_pixels());
  // Per-scene pointers cannot mean anything across a multi-grid ladder
  // — the driver wires per-band engines, panels and checkpoints itself.
  FFW_CHECK_MSG(options.dbim.mixed_engine == nullptr,
                "continuation: set ContinuationOptions::mixed_precision "
                "instead of DbimOptions::mixed_engine");
  FFW_CHECK_MSG(options.dbim.resume == nullptr && !options.dbim.checkpoint,
                "continuation: per-band DBIM resume/checkpoint hooks are "
                "owned by the ladder (use checkpoint_path)");
  FFW_CHECK(options.dbim.incident_panel.empty());

  ContinuationResult out;
  const int nbands = static_cast<int>(ladder.bands.size());
  cvec contrast_prev;  // raw result of the last completed band
  int prev_nx = 0;
  double k2_prev = 0.0;
  int first = 0;
  if (options.resume_from_checkpoint && !options.checkpoint_path.empty() &&
      continuation_checkpoint_load(options.checkpoint_path, ladder, config.nx,
                                   &first, &prev_nx, &contrast_prev)) {
    k2_prev = Grid(prev_nx).k0() * Grid(prev_nx).k0();
  }
  out.first_stage = first;

  for (int s = first; s < nbands; ++s) {
    const FrequencyBand& band = ladder.bands[s];
    const int nx = config.nx >> band.halvings;

    // Object at this band's frequency: box-filtered truth.
    cvec eps_stage(true_permittivity.begin(), true_permittivity.end());
    for (int h = 0, cur = config.nx; h < band.halvings; ++h, cur /= 2)
      eps_stage = downsample2(eps_stage, cur);

    ScenarioConfig stage_config = config;
    stage_config.nx = nx;
    if (options.per_stage_noise_seeds)
      stage_config.noise_seed = mix_seed(config.noise_seed,
                                         static_cast<std::uint64_t>(s));

    Timer stage_timer;
    Scenario scene(stage_config, eps_stage);
    const double setup_seconds = stage_timer.seconds();
    const Grid& grid = scene.grid();
    const double k2 = grid.k0() * grid.k0();

    cvec guess;
    if (!contrast_prev.empty())
      guess = continuation_warm_start(contrast_prev, prev_nx, nx, k2_prev, k2);

    DbimOptions opts = options.dbim;
    opts.max_iterations = band.max_iterations;
    opts.residual_tol = band.residual_tol;
    if (config.table_cache != nullptr) opts.table_cache = config.table_cache;
    opts.incident_panel = scene.incident_panel();
    std::unique_ptr<MlfmaEngine> mixed;
    if (options.mixed_precision) {
      MlfmaParams mp = stage_config.mlfma;
      mp.precision = Precision::kMixed;
      mixed = config.table_cache != nullptr
                  ? std::make_unique<MlfmaEngine>(config.table_cache->
                        mlfma_tables(grid, stage_config.leaf_pixel_side, mp))
                  : std::make_unique<MlfmaEngine>(scene.tree(), mp);
      opts.mixed_engine = mixed.get();
    }

    DbimStepper stepper(scene.engine(), scene.transceivers(),
                        scene.measurements(), opts, config.forward, guess);
    std::vector<double> residuals;
    while (!stepper.done()) {
      stepper.step();
      residuals.push_back(stepper.last_residual());
      if (continuation_plateau(residuals, band.plateau_window,
                               band.plateau_rtol)) {
        break;
      }
    }

    StageReport rep;
    rep.band = s;
    rep.nx = nx;
    rep.k0 = grid.k0();
    rep.iterations = stepper.iteration();
    DbimResult res = stepper.result();
    rep.stop = continuation_stop_reason(res.history.relative_residual, band);
    rep.rmse = image_rmse(res.contrast, scene.true_contrast());
    rep.history = std::move(res.history);
    rep.setup_seconds = setup_seconds;
    rep.seconds = stage_timer.seconds();
    out.stages.push_back(std::move(rep));

    contrast_prev = std::move(res.contrast);
    prev_nx = nx;
    k2_prev = k2;
    if (!options.checkpoint_path.empty()) {
      continuation_checkpoint_save(options.checkpoint_path, ladder, config.nx,
                                   s + 1, prev_nx, contrast_prev);
    }
    if (options.stop_after_stage == s) {
      out.completed = false;
      break;
    }
  }

  cvec eps(contrast_prev.size());
  for (std::size_t i = 0; i < eps.size(); ++i)
    eps[i] = contrast_prev[i] / k2_prev;
  for (int cur = prev_nx; cur < config.nx; cur *= 2)
    eps = upsample2(eps, cur);
  out.permittivity = std::move(eps);
  return out;
}

}  // namespace ffw
