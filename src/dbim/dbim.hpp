// Distorted Born iterative method: the paper's core inverse solver
// (Fig. 4, Sec. VI-B).
//
// Minimises Phi(O) = sum_t || phi_t^sca(O) - phi_t^mea ||^2 with
// nonlinear conjugate-gradient steps. Each iteration costs three forward
// solutions per transmitter:
//   1. residual pass     — solve (E1) for phi_b,t, evaluate (E2);
//   2. gradient pass     — adjoint Frechet solve (E3/E4), summed over t;
//   3. step-length pass  — F_t d solves (E3/E5) for the quadratic fit
//      alpha* = -Re<grad, d> / sum_t ||F_t d||^2  (paper eq. 5 when
//      d = -grad).
//
// The per-pass, per-illumination members of DbimWorkspace are shared by
// the serial driver below and the vcluster 2-D-parallel driver
// (dbim/parallel_driver.hpp), which distributes illuminations across
// ranks and allreduces (cost, gradient, step denominator) exactly where
// the paper synchronises (Fig. 4, "twice per iteration").
#pragma once

#include <functional>
#include <vector>

#include "dbim/frechet.hpp"
#include "forward/cbs.hpp"
#include "forward/recycle.hpp"
#include "io/checkpoint.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

class OperatorTableCache;

struct DbimOptions {
  int max_iterations = 50;  // paper Sec. V-B: 50 nonlinear CG steps
  /// Stop early when the relative residual drops below this (0 = never;
  /// the paper regularises by early termination only).
  double residual_tol = 0.0;
  /// Polak-Ribiere conjugate directions (true) or steepest descent.
  bool conjugate_gradient = true;
  /// Warm-start each residual-pass forward solve from the previous DBIM
  /// iteration's background field (true) or from the incident field
  /// every time (false). On by default; the ablation bench quantifies
  /// the saved MLFMA products.
  bool warm_start_fields = true;
  /// Tikhonov regularisation weight: minimises
  /// Phi(O) + tikhonov * ||O||^2. Zero (the paper's setting — it
  /// regularises by early termination only) disables it; positive values
  /// damp noise amplification (cf. the sparsity-regularised DBIM line of
  /// work the paper cites as ref. [22]).
  double tikhonov = 0.0;
  /// Optional per-iteration observer (iteration, relative residual).
  std::function<void(int, double)> progress;
  /// Called after every completed iteration with resumable outer-loop
  /// state (contrast, CG memory, residual history). Wire this to
  /// DbimCheckpoint::save for fault tolerance on long runs.
  std::function<void(const DbimCheckpoint&)> checkpoint;
  /// Resume from a previously saved outer-loop state (overrides any
  /// initial-contrast argument). Borrowed pointer; caller keeps it
  /// alive for the duration of the call.
  const DbimCheckpoint* resume = nullptr;
  /// Optional Precision::kMixed engine on the same tree (borrowed, not
  /// owned): when set, every block solve of the inversion — forward,
  /// adjoint-Frechet and step-length — runs mixed-precision iterative
  /// refinement (forward/refined.hpp) with the fp32 engine doing the
  /// Krylov sweeps and the fp64 engine only the outer residuals.
  MlfmaEngine* mixed_engine = nullptr;
  /// Near-field block-Jacobi right preconditioning of every Krylov solve
  /// (forward/precond.hpp). Factor storage follows the precision policy:
  /// fp32 under a mixed engine, fp64 otherwise.
  bool near_precondition = false;
  /// Eisenstat-Walker adaptive forcing: the inner Krylov tolerance of
  /// DBIM iteration k is clamp(forcing_c * relres_{k-1}, base_tol,
  /// forcing_cap) — loose while the Gauss-Newton residual is large,
  /// tightening as it shrinks, so early iterations stop over-solving.
  /// Deliberately *lagged* (all three passes of iteration k use the
  /// previous iteration's residual): the tolerance is then a pure
  /// function of the checkpointed residual history, so a crash-recovered
  /// run re-derives bit-identical tolerances.
  bool adaptive_forcing = false;
  double forcing_c = 0.1;
  double forcing_cap = 1e-2;
  /// Krylov recycling depth: retain this many (rhs, solution) block
  /// snapshots of the gradient and step-length solves and seed each new
  /// solve from their least-squares combination (forward/recycle.hpp).
  /// 0 disables. Recycle state is never checkpointed; drivers clear it
  /// whenever the background fields reset, which keeps crash-recovered
  /// runs on the fault-free trajectory.
  int recycle_depth = 0;
  double recycle_ridge = 1e-12;
  /// Forward engine routing (forward/backend.hpp). kMlfma is the
  /// classic MLFMA+BiCGStab path; kCbs runs every solve on the FFT
  /// convergent Born series backend; kAuto starts on CBS while the
  /// background contrast is weak (max|Delta eps| below
  /// auto_contrast_threshold) and escalates permanently to MLFMA when
  /// the contrast crosses the threshold, the series fails, or its
  /// measured convergence rate degrades past auto_escalation_rate.
  BackendKind backend = BackendKind::kMlfma;
  /// kAuto contrast gate, in permittivity-contrast units
  /// (max|O| / k0^2): CBS below, MLFMA at or above.
  double auto_contrast_threshold = 0.25;
  /// kAuto rate gate: a *converged* CBS solve whose trailing
  /// geometric-mean residual reduction exceeds this triggers escalation
  /// before the series degrades into the watchdog.
  double auto_escalation_rate = 0.95;
  /// CBS configuration used by kCbs / kAuto (tolerance comes from the
  /// forward BicgstabOptions + forcing, like every other solve).
  CbsOptions cbs;
  /// Precomputed incident-field panel (n x T, column t at offset t * n;
  /// borrowed). When set, the residual passes read their per-transmitter
  /// incident fields here instead of re-evaluating T Hankel passes every
  /// DBIM iteration — the service wires the shared TransceiverTables
  /// panel through this. Values must equal trx.incident_field(t) bit for
  /// bit (they do when both come from the same Transceivers geometry).
  ccspan incident_panel = {};
  /// Shared operator-table cache (borrowed; service/table_cache.hpp).
  /// When set, a kCbs / kAuto run obtains its CBS kernel spectrum and
  /// FFT plans from the cache instead of building privately.
  OperatorTableCache* table_cache = nullptr;
};

struct DbimHistory {
  /// sqrt(Phi)/||phi_mea|| after each iteration (the quantity behind the
  /// paper's "59.3% -> 0.03%" in Fig. 13).
  std::vector<double> relative_residual;
  std::uint64_t forward_solves = 0;
  std::uint64_t operator_applications = 0;
  /// Total BiCGStab iterations spent across every Krylov solve of the
  /// reconstruction — the cost metric the iteration-reduction layer
  /// (preconditioning + forcing + recycling) targets.
  std::uint64_t bicgstab_iterations = 0;
  /// Wall time spent LU-factoring the near-field block preconditioner
  /// (zero when near_precondition is off).
  double precond_setup_seconds = 0.0;
  /// Backend policy the run was configured with, and whether a kAuto run
  /// escalated from CBS to MLFMA along the way.
  BackendKind backend = BackendKind::kMlfma;
  bool cbs_escalated = false;
};

struct DbimResult {
  cvec contrast;       // reconstructed O (natural order)
  DbimHistory history;
};

/// Per-illumination work shared by serial and distributed drivers.
class DbimWorkspace {
 public:
  DbimWorkspace(MlfmaEngine& engine, const Transceivers& trx,
                const CMatrix& measured, const BicgstabOptions& fw_opts);

  /// Install the current background contrast (natural order).
  /// `keep_fields` retains the previous background fields as warm
  /// starts for the next residual pass.
  void set_background(ccspan contrast, bool keep_fields = true);

  /// Residual pass for illumination t: solves for the background field
  /// (kept for later passes), returns the residual b_t = phi_sca - phi_mea
  /// in `residual` and the squared cost contribution.
  double residual_pass(int t, cspan residual);

  /// Gradient pass: grad += F_t^H b_t.
  void gradient_pass(int t, ccspan residual, cspan grad_accum);

  /// Step pass: returns ||F_t d||^2.
  double step_pass(int t, ccspan direction);

  /// Blocked residual pass over *all* illuminations: one block forward
  /// solve shares every MLFMA table stream across the transmitter set.
  /// Fills `residuals` (R x T, column-major) and returns the total
  /// squared cost.
  double residual_pass_all(cspan residuals);

  /// Blocked gradient pass: grad += sum_t F_t^H b_t with a single block
  /// adjoint solve.
  void gradient_pass_all(ccspan residuals, cspan grad_accum);

  /// Blocked step pass: returns sum_t ||F_t d||^2 with a single block
  /// forward solve.
  double step_pass_all(ccspan direction);

  /// Norm^2 of all measurements (for relative residual).
  double measurement_norm2() const { return meas_norm2_; }

  /// Background total field of illumination t from the latest residual
  /// pass (natural order; valid until the next set_background).
  ccspan background_field(int t) const {
    return ccspan{phi_b_.col(static_cast<std::size_t>(t)).data(), npix_};
  }

  ForwardSolver& solver() { return solver_; }
  const Transceivers& transceivers() const { return *trx_; }
  int num_illuminations() const;
  std::size_t num_pixels() const { return npix_; }

  /// Eisenstat-Walker hook: inner Krylov tolerance for subsequent block
  /// solves (0 = use the solver's base tolerance). The base tolerance
  /// always acts as a floor.
  void set_forcing_tolerance(double tol) { forcing_tol_ = tol; }

  /// Installs a precomputed incident panel (DbimOptions::incident_panel
  /// contract); empty span reverts to per-call evaluation.
  void set_incident_panel(ccspan panel) { incident_panel_ = panel; }

  /// Enables Krylov recycling of the gradient and step-length block
  /// solves (depth 0 disables). Snapshots are cleared whenever
  /// set_background drops the warm-started fields.
  void set_recycling(std::size_t depth, double ridge);

  /// Installs the forward-backend routing policy (DbimOptions::backend
  /// et al.). kCbs / kAuto construct the CBS engine on the solver's
  /// grid — from the shared `tables` artifact when one is supplied;
  /// call before the first set_background.
  void set_backend(BackendKind policy, const CbsOptions& cbs_opts,
                   double contrast_threshold, double escalation_rate,
                   std::shared_ptr<const CbsTables> tables = nullptr);
  /// Backend the next block solve will run on (kAuto resolves to the
  /// chosen engine).
  BackendKind active_backend() const { return active_->kind(); }
  /// True once a kAuto run has permanently switched from CBS to MLFMA.
  bool cbs_escalated() const { return escalated_; }
  CbsEngine* cbs() { return cbs_.get(); }

 private:
  /// Block solve routed through mixed-precision refinement when a mixed
  /// engine is registered on the solver; returns convergence.
  bool block_solve(ccspan rhs, cspan x, std::size_t nrhs, bool adjoint);

  /// Incident field of transmitter t: a view into the installed panel,
  /// or freshly evaluated into `storage`.
  ccspan incident_column(int t, cvec& storage) const;

  const Transceivers* trx_;
  const CMatrix* measured_;
  ForwardSolver solver_;
  // Backend routing: `active_` answers the block solves and raw G0
  // panel products of the blocked passes. Defaults to the MLFMA solver;
  // set_backend may point it at cbs_, and kAuto re-picks on every
  // set_background until an escalation pins it back on MLFMA for good.
  std::unique_ptr<CbsEngine> cbs_;
  ForwardBackend* active_ = nullptr;
  BackendKind policy_ = BackendKind::kMlfma;
  double auto_threshold_ = 0.25;
  double auto_escalation_rate_ = 0.95;
  bool escalated_ = false;
  std::size_t npix_;
  double meas_norm2_;
  // Background total fields per illumination (column t), warm-started
  // across DBIM iterations.
  CMatrix phi_b_;
  std::vector<bool> phi_b_valid_;
  cvec scratch_r_;
  double forcing_tol_ = 0.0;
  ccspan incident_panel_ = {};  // borrowed; empty = evaluate per call
  // Recycled (rhs, solution) snapshots of the gradient / step-length
  // block solves across DBIM iterations (residual passes warm-start from
  // phi_b_ instead). Disabled at depth 0.
  KrylovRecycler rec_grad_{RecycleOptions{0, 1e-12}};
  KrylovRecycler rec_step_{RecycleOptions{0, 1e-12}};
};

/// Resumable single-iteration DBIM driver: the outer loop of
/// dbim_reconstruct exposed one nonlinear-CG iteration at a time, so a
/// scheduler can interleave many reconstructions over one rank pool
/// (service/service.hpp) with per-step accounting and cancellation
/// between steps. Run to completion, the trajectory is bit-identical to
/// dbim_reconstruct with the same arguments (asserted in
/// tests/service_test.cpp) — dbim_reconstruct is itself implemented as
/// `while (stepper.step()) {}`.
class DbimStepper {
 public:
  DbimStepper(MlfmaEngine& engine, const Transceivers& trx,
              const CMatrix& measured, const DbimOptions& opts = {},
              const BicgstabOptions& fw_opts = {},
              ccspan initial_contrast = {});

  /// Runs one DBIM iteration (three blocked passes + CG update +
  /// checkpoint hook). Returns true while further steps remain; false
  /// once the run has finished (iteration budget exhausted, residual
  /// tolerance met, or the CG update degenerated).
  bool step();

  bool done() const { return done_; }
  /// Next iteration index step() would run (== completed count).
  int iteration() const { return iter_; }
  /// Latest relative residual (NaN before the first step).
  double last_residual() const;
  ccspan contrast() const { return out_.contrast; }

  /// Finalises the history totals and hands out the result; call once,
  /// after stepping is finished (or abandoned mid-run — the result then
  /// reflects the last completed iteration).
  DbimResult result();

  DbimWorkspace& workspace() { return ws_; }

 private:
  DbimOptions opts_;
  BicgstabOptions fw_opts_;
  DbimWorkspace ws_;
  DbimResult out_;
  std::size_t n_;
  cvec grad_, grad_prev_, direction_, residuals_;
  double grad_prev_norm2_ = 0.0;
  int iter_ = 0;
  bool done_ = false;
};

/// Serial DBIM driver (all illuminations on this process).
DbimResult dbim_reconstruct(MlfmaEngine& engine, const Transceivers& trx,
                            const CMatrix& measured,
                            const DbimOptions& opts = {},
                            const BicgstabOptions& fw_opts = {},
                            ccspan initial_contrast = {});

}  // namespace ffw
