// Band-parallel frequency continuation: the ladder of
// dbim/continuation.hpp run over a VCluster partitioned into band
// groups (parallel/freq_partition.hpp) — frequency as the third
// parallel axis next to the paper's illuminations x sub-trees.
//
// Execution model: bands are assigned to groups round-robin. Within a
// group, each band runs the windowed 2-D DBIM driver
// (dbim_reconstruct_windowed) over the group's illum_groups x
// tree_ranks grid. The parts of a band that do NOT depend on earlier
// bands — operator-table builds, transceiver setup, measurement
// synthesis (independent experiments per frequency, cf. Gaggioli-Bruno
// arXiv:2202.09421) — start immediately and overlap other groups'
// reconstructions; only the DBIM itself waits for the previous band's
// warm start, which travels leader-to-leader as a point-to-point
// message. All traffic is group collectives and point-to-point sends in
// a reserved tag namespace; the cluster-global barrier/allreduce are
// never used, so concurrent windows cannot interfere.
//
// Determinism: measurement synthesis and the warm-start arithmetic are
// the exact code paths of the serial driver, so the serial and
// band-parallel ladders agree to reduction-order rounding
// (tests/multifrequency_test.cpp asserts image RMSE <= 1e-10 at
// p in {2, 4}).
#pragma once

#include "dbim/continuation.hpp"
#include "parallel/freq_partition.hpp"
#include "vcluster/comm.hpp"

namespace ffw {

/// Reserved tag namespace of the frequency dimension: warm-start
/// hand-offs use kTagFreqWarm - band, stage reports kTagFreqReport -
/// band, the final image kTagFreqFinal. (Collectives use -1000..,
/// groups -2000.., checkpoints -4000.., barriers -5000.., linkbench
/// -7000.)
inline constexpr int kTagFreqWarm = -8000;
inline constexpr int kTagFreqReport = -8100;
inline constexpr int kTagFreqFinal = -8200;

struct BandParallelOptions {
  /// Ladder-level options (per-stage seeds, checkpoint/resume,
  /// stop_after_stage is unsupported here). mixed_precision must be
  /// false: the windowed driver runs the fp64 partitioned engine.
  ContinuationOptions continuation;
  /// Band groups: 0 = auto (largest divisor of the pool <= band count).
  int freq_groups = 0;
  /// Sub-tree ranks per band group.
  int tree_ranks = 1;
};

/// Collective over the whole cluster; vc.size() must match the implied
/// partition. Global rank 0 returns the assembled result (stage reports
/// in band order + the final-grid image); other process-mode workers
/// return an empty result, like dbim_reconstruct_parallel.
ContinuationResult continuation_reconstruct_parallel(
    VCluster& vc, const ScenarioConfig& config, ccspan true_permittivity,
    const FrequencyLadder& ladder, const BandParallelOptions& options = {});

}  // namespace ffw
