// Multi-frequency (frequency-hopping) DBIM — an extension in the spirit
// of the multi-frequency DBIM literature the paper builds on (its
// refs [6], [24]): reconstruct at a low frequency first, where the
// problem is less nonlinear (the object is fewer wavelengths across),
// then use that image to seed reconstructions at successively higher
// frequencies for resolution. This widens the basin of convergence at
// high contrast, where single-frequency DBIM stalls.
//
// In our lambda = 1 units a "lower frequency" is simply the same
// physical object represented on a coarser grid (the domain spans fewer
// wavelengths), so each stage halves/doubles the grid: stages run at
// nx_final / 2^k. Measurements are synthesised per stage — physically,
// separate experiments at each operating frequency.
#pragma once

#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {

struct FrequencyStage {
  /// Grid halvings below the final grid (1 => nx_final/2, i.e. half the
  /// operating frequency). Must keep nx/8 a power of two >= 1.
  int halvings = 0;
  int dbim_iterations = 10;
};

struct MultiFrequencyResult {
  cvec permittivity;  // reconstructed delta_eps on the final grid
  /// Per-stage relative-residual histories.
  std::vector<std::vector<double>> stage_residuals;
  /// Per-stage image RMSE vs the (downsampled) truth.
  std::vector<double> stage_rmse;
  /// Per-stage wall time, total and scene-setup share. The setup share
  /// is what ScenarioConfig::table_cache amortises when several runs
  /// (or repeated stages at one frequency) share a configuration.
  std::vector<double> stage_seconds;
  std::vector<double> stage_setup_seconds;
  /// Full per-stage DBIM histories (backend, Krylov iteration counts,
  /// escalations) — the evidence that the caller's options actually
  /// reached every stage.
  std::vector<DbimHistory> stage_history;
};

struct MultiFrequencyOptions {
  /// Base DBIM options threaded into *every* stage. The ladder
  /// overrides only max_iterations (per stage), the table cache and the
  /// incident panel; the caller's backend routing (kAuto/CBS), adaptive
  /// forcing, regularization, recycling etc. apply inside each stage as
  /// configured. Per-scene pointers (mixed_engine, resume, checkpoint
  /// callback) must be unset — they cannot thread through a multi-grid
  /// ladder; use `mixed_precision` below instead.
  DbimOptions dbim;
  /// Build a Precision::kMixed engine per stage and run that stage's
  /// Krylov solves through mixed-precision iterative refinement.
  bool mixed_precision = false;
  /// Derive each stage's measurement-noise seed from
  /// ScenarioConfig::noise_seed and the stage index (mix_seed), so the
  /// per-stage experiments — physically independent measurements at
  /// different operating frequencies — carry independent noise
  /// realizations. False reproduces the legacy correlated-noise
  /// behaviour (every stage reuses the one seed) for comparison only.
  bool per_stage_noise_seeds = true;
};

/// Runs the stages coarse-to-fine. `config` describes the final-grid
/// scenario (its nx, arrays, tolerances); `true_permittivity` is the
/// object on the final grid, used to synthesise each stage's
/// measurements (and for the per-stage RMSE diagnostics). A
/// config.table_cache routes every stage's MLFMA tables and transceiver
/// operators (and the cached incident panel) through the shared cache,
/// so concurrent multi-frequency runs — or repeated runs over the same
/// frequency ladder — pay each stage's setup once.
///
/// Equal-resolution consecutive stages warm-start bit-exactly: the raw
/// contrast is handed over verbatim instead of round-tripping through
/// delta_eps (continuation_warm_start).
///
/// This fixed-iteration ladder is kept as the minimal interface; the
/// full continuation driver (per-band stopping rules, checkpoint/
/// resume, band parallelism) lives in dbim/continuation.hpp.
MultiFrequencyResult multifrequency_reconstruct(
    const ScenarioConfig& config, ccspan true_permittivity,
    const std::vector<FrequencyStage>& stages,
    const MultiFrequencyOptions& options = {});

}  // namespace ffw
