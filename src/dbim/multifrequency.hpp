// Multi-frequency (frequency-hopping) DBIM — an extension in the spirit
// of the multi-frequency DBIM literature the paper builds on (its
// refs [6], [24]): reconstruct at a low frequency first, where the
// problem is less nonlinear (the object is fewer wavelengths across),
// then use that image to seed reconstructions at successively higher
// frequencies for resolution. This widens the basin of convergence at
// high contrast, where single-frequency DBIM stalls.
//
// In our lambda = 1 units a "lower frequency" is simply the same
// physical object represented on a coarser grid (the domain spans fewer
// wavelengths), so each stage halves/doubles the grid: stages run at
// nx_final / 2^k. Measurements are synthesised per stage — physically,
// separate experiments at each operating frequency.
#pragma once

#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {

struct FrequencyStage {
  /// Grid halvings below the final grid (1 => nx_final/2, i.e. half the
  /// operating frequency). Must keep nx/8 a power of two >= 1.
  int halvings = 0;
  int dbim_iterations = 10;
};

struct MultiFrequencyResult {
  cvec permittivity;  // reconstructed delta_eps on the final grid
  /// Per-stage relative-residual histories.
  std::vector<std::vector<double>> stage_residuals;
  /// Per-stage image RMSE vs the (downsampled) truth.
  std::vector<double> stage_rmse;
  /// Per-stage wall time, total and scene-setup share. The setup share
  /// is what ScenarioConfig::table_cache amortises when several runs
  /// (or repeated stages at one frequency) share a configuration.
  std::vector<double> stage_seconds;
  std::vector<double> stage_setup_seconds;
};

/// Runs the stages coarse-to-fine. `config` describes the final-grid
/// scenario (its nx, arrays, tolerances); `true_permittivity` is the
/// object on the final grid, used to synthesise each stage's
/// measurements (and for the per-stage RMSE diagnostics). A
/// config.table_cache routes every stage's MLFMA tables and transceiver
/// operators (and the cached incident panel) through the shared cache,
/// so concurrent multi-frequency runs — or repeated runs over the same
/// frequency ladder — pay each stage's setup once.
MultiFrequencyResult multifrequency_reconstruct(
    const ScenarioConfig& config, ccspan true_permittivity,
    const std::vector<FrequencyStage>& stages);

}  // namespace ffw
