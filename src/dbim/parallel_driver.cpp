#include "dbim/parallel_driver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "forward/precond.hpp"
#include "forward/recycle.hpp"
#include "linalg/kernels.hpp"
#include "service/table_cache.hpp"

namespace ffw {

namespace {

/// Rank-local state and sub-operations for one rank of the 2-D grid.
/// Shared by the cluster-wide driver (dbim_reconstruct_parallel) and
/// the windowed driver (dbim_reconstruct_windowed), whose 2-D grid
/// occupies only a window of the cluster's ranks.
struct RankCtx {
  Comm* comm;
  const PartitionedMlfma* pm;
  const Transceivers* trx;
  const CMatrix* measured;
  BicgstabOptions fw_opts;

  int group = 0;       // illumination group index
  int tree_rank = 0;   // rank within the tree group
  int rank_base = 0;   // first global rank of this tree group
  std::vector<int> tree_group;    // global ranks sharing this MLFMA
  std::vector<int> column_group;  // same tree_rank across illum groups
  std::vector<int> all_ranks;

  std::size_t nloc = 0;                  // local pixel count
  std::vector<std::uint32_t> nat_idx;    // natural pixel index per local q
  cvec o_loc;                            // background contrast slice
  // Iteration-reduction state (ISSUE 6): the Eisenstat-Walker tolerance
  // of the current iteration, the rank-local near-field block-Jacobi
  // (communication-free: it only inverts leaf self blocks this rank
  // owns), and the Krylov recycling histories of the gradient and
  // step-length solves.
  double forcing_tol = 0.0;
  std::unique_ptr<NearFieldBlockJacobi> precond;
  KrylovRecycler rec_grad, rec_step;
  // Background fields of all local transmitters as ONE block vector in
  // the leaf-interleaved layout (panel = pixels_per_leaf, one column per
  // local illumination), so the residual pass is a single block solve.
  cvec phi_b;
  std::vector<int> local_t;              // transmitters of this group
  BlockLayout lo;                        // local block layout (nrhs = |local_t|)

  DotReducer tree_reduce() {
    return DotReducer{
        [this](cplx v) {
          double buf[2] = {v.real(), v.imag()};
          comm->group_allreduce_sum(rspan{buf, 2}, tree_group);
          return cplx{buf[0], buf[1]};
        },
        [this](double v) {
          return comm->group_allreduce_sum(v, tree_group);
        },
        [this](cspan v) { comm->group_allreduce_sum(v, tree_group); },
        [this](rspan v) { comm->group_allreduce_sum(v, tree_group); }};
  }

  /// Y = [I - G0 O] X on local block slices (collective over the tree
  /// group; one halo message per peer per level for all columns).
  void forward_op_block(ccspan x, cspan y) {
    cvec ox(lo.size());
    block_diag_mul(lo, o_loc, x, ox);
    pm->apply_block(*comm, ox, y, lo.nrhs, rank_base);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = x[i] - y[i];
  }

  /// Y = [I - G0 O]^H X.
  void adjoint_op_block(ccspan x, cspan y) {
    pm->apply_herm_block(*comm, x, y, lo.nrhs, rank_base);
    for (std::size_t c = 0; c < lo.npanels; ++c) {
      const cplx* op = o_loc.data() + c * lo.panel;
      for (std::size_t r = 0; r < lo.nrhs; ++r) {
        const cplx* xp = x.data() + lo.at(c, r);
        cplx* yp = y.data() + lo.at(c, r);
        for (std::size_t i = 0; i < lo.panel; ++i)
          yp[i] = xp[i] - std::conj(op[i]) * yp[i];
      }
    }
  }

  /// Per-iteration Krylov options: the base tolerance loosened to the
  /// Eisenstat-Walker forcing tolerance when one is active.
  BicgstabOptions krylov_opts() const {
    BicgstabOptions o = fw_opts;
    if (forcing_tol > 0.0) o.tol = std::max(forcing_tol, o.tol);
    return o;
  }

  BlockBicgstabResult solve_forward_block(ccspan rhs, cspan x) {
    return block_bicgstab(
        [this](ccspan in, cspan out) { forward_op_block(in, out); }, rhs, x,
        lo, krylov_opts(), tree_reduce(),
        PrecondContext{precond.get(), lo, /*herm=*/false});
  }

  BlockBicgstabResult solve_adjoint_block(ccspan rhs, cspan x) {
    return block_bicgstab(
        [this](ccspan in, cspan out) { adjoint_op_block(in, out); }, rhs, x,
        lo, krylov_opts(), tree_reduce(),
        PrecondContext{precond.get(), lo, /*herm=*/true});
  }

  /// G_R projections of all block columns at once: cols[t] = G_R v_t,
  /// replicated within the tree group after ONE batched allreduce
  /// (instead of one per transmitter).
  void gr_full_block(ccspan v_block, cspan cols) {
    const std::size_t nr = static_cast<std::size_t>(trx->num_receivers());
    FFW_CHECK(cols.size() == nr * lo.nrhs);
    std::fill(cols.begin(), cols.end(), cplx{});
    cvec v(nloc);
    for (std::size_t t = 0; t < lo.nrhs; ++t) {
      block_col_get(lo, v_block, t, v);
      trx->apply_gr_subset(v, nat_idx, cspan{cols.data() + t * nr, nr});
    }
    comm->group_allreduce_sum(cols, tree_group);
  }

  /// (Re)load the incident fields of the local illuminations into the
  /// phi_b block: the initial state, and — with warm_start_fields off —
  /// the start of every residual pass, so each iterate is a pure
  /// function of the outer-loop state (which is what the checkpoint
  /// stores; the crash-recovery e2e test relies on this).
  void reset_phi_to_incident() {
    cvec inc(nloc);
    for (std::size_t i = 0; i < lo.nrhs; ++i) {
      trx->incident_field_subset(local_t[i], nat_idx, inc);
      block_col_set(lo, phi_b, i, inc);
    }
  }

  /// Residual pass over all local illuminations as one block solve:
  /// returns sum_t ||b_t||^2 and fills `residuals` (R x |local_t|).
  double residual_pass_all(cspan residuals) {
    const std::size_t nr = static_cast<std::size_t>(trx->num_receivers());
    cvec rhs(lo.size()), inc(nloc);
    for (std::size_t i = 0; i < lo.nrhs; ++i) {
      trx->incident_field_subset(local_t[i], nat_idx, inc);
      block_col_set(lo, rhs, i, inc);
    }
    const BlockBicgstabResult res = solve_forward_block(rhs, phi_b);
    FFW_CHECK_MSG(res.converged, "parallel DBIM forward solve diverged");
    cvec v(lo.size());
    block_diag_mul(lo, o_loc, phi_b, v);
    gr_full_block(v, residuals);
    double cost = 0.0;
    for (std::size_t i = 0; i < lo.nrhs; ++i) {
      cspan residual{residuals.data() + i * nr, nr};
      sub(residual, measured->col(static_cast<std::size_t>(local_t[i])),
          residual);
      const double rn = nrm2(ccspan{residual.data(), nr});
      cost += rn * rn;
    }
    return cost;
  }

  /// grad_loc += sum_t F_t^H b_t with one block adjoint solve.
  void gradient_pass_all(ccspan residuals, cspan grad_loc) {
    const std::size_t nr = static_cast<std::size_t>(trx->num_receivers());
    cvec g1(lo.size()), w2(lo.size()), w3(lo.size(), cplx{}), w4(lo.size());
    cvec g(nloc);
    for (std::size_t i = 0; i < lo.nrhs; ++i) {
      trx->apply_gr_herm_subset(ccspan{residuals.data() + i * nr, nr},
                                nat_idx, g);
      block_col_set(lo, g1, i, g);
    }
    block_diag_mul_conj(lo, o_loc, g1, w2);
    // Krylov recycling: seed from the least-squares combination of the
    // retained (rhs, solution) pairs — collective over the tree group,
    // one batched reduction.
    rec_grad.seed(w2, w3, lo, tree_reduce());
    FFW_CHECK(solve_adjoint_block(w2, w3).converged);
    rec_grad.store(w2, w3, lo);
    pm->apply_herm_block(*comm, w3, w4, lo.nrhs, rank_base);
    for (std::size_t c = 0; c < lo.npanels; ++c) {
      cplx* gq = grad_loc.data() + c * lo.panel;
      for (std::size_t r = 0; r < lo.nrhs; ++r) {
        const cplx* phi = phi_b.data() + lo.at(c, r);
        const cplx* g1p = g1.data() + lo.at(c, r);
        const cplx* w4p = w4.data() + lo.at(c, r);
        for (std::size_t i = 0; i < lo.panel; ++i)
          gq[i] += std::conj(phi[i]) * (g1p[i] + w4p[i]);
      }
    }
  }

  /// sum_t ||F_t d||^2 with one block forward solve.
  double step_pass_all(ccspan d_loc) {
    const std::size_t nr = static_cast<std::size_t>(trx->num_receivers());
    cvec u1(lo.size()), u2(lo.size()), w(lo.size(), cplx{});
    block_diag_mul(lo, d_loc, phi_b, u1);
    pm->apply_block(*comm, u1, u2, lo.nrhs, rank_base);
    rec_step.seed(u2, w, lo, tree_reduce());
    FFW_CHECK(solve_forward_block(u2, w).converged);
    rec_step.store(u2, w, lo);
    for (std::size_t c = 0; c < lo.npanels; ++c) {
      const cplx* op = o_loc.data() + c * lo.panel;
      for (std::size_t r = 0; r < lo.nrhs; ++r) {
        const cplx* wp = w.data() + lo.at(c, r);
        cplx* up = u1.data() + lo.at(c, r);
        for (std::size_t i = 0; i < lo.panel; ++i) up[i] += op[i] * wp[i];
      }
    }
    cvec sc(nr * lo.nrhs);
    gr_full_block(u1, sc);
    double denom = 0.0;
    for (std::size_t i = 0; i < lo.nrhs; ++i) {
      const double fn = nrm2(ccspan{sc.data() + i * nr, nr});
      denom += fn * fn;
    }
    return denom;
  }
};

}  // namespace

DbimResult dbim_reconstruct_parallel(VCluster& vc, const QuadTree& tree,
                                     const Transceivers& trx,
                                     const CMatrix& measured,
                                     const ParallelDbimConfig& config) {
  const int ig = config.illum_groups, tr = config.tree_ranks;
  FFW_CHECK(vc.size() == ig * tr);
  const PartitionedMlfma pm =
      config.table_cache != nullptr
          ? PartitionedMlfma(
                config.table_cache->mlfma_tables(
                    tree.grid(), tree.leaf_pixel_side(), config.mlfma),
                tr)
          : PartitionedMlfma(tree, config.mlfma, tr);
  const std::size_t npix = tree.grid().num_pixels();
  const int t_count = trx.num_transmitters();

  double meas_norm2 = 0.0;
  for (std::size_t t = 0; t < measured.cols(); ++t) {
    const double nn = nrm2(measured.col(t));
    meas_norm2 += nn * nn;
  }

  // Shared result buffers (group 0 / rank 0 write disjoint parts).
  cvec out_cluster(npix, cplx{});
  std::vector<double> history;
  std::atomic<std::uint64_t> total_matvecs{0};

  // Crash-recovery state: set between (re)runs by the supervisor loop
  // below, read-only while rank threads are live.
  DbimCheckpoint resume_state;
  bool have_resume = false;

  const auto rank_program = [&](Comm& comm) {
    RankCtx ctx;
    ctx.comm = &comm;
    ctx.pm = &pm;
    ctx.trx = &trx;
    ctx.measured = &measured;
    ctx.fw_opts = config.forward;
    ctx.group = comm.rank() / tr;
    ctx.tree_rank = comm.rank() % tr;
    ctx.rank_base = ctx.group * tr;
    for (int r = 0; r < tr; ++r) ctx.tree_group.push_back(ctx.rank_base + r);
    for (int g = 0; g < ig; ++g)
      ctx.column_group.push_back(g * tr + ctx.tree_rank);
    for (int r = 0; r < vc.size(); ++r) ctx.all_ranks.push_back(r);

    ctx.nloc = pm.local_pixels(ctx.tree_rank);
    const std::size_t q0 =
        pm.leaf_begin(ctx.tree_rank) *
        static_cast<std::size_t>(tree.pixels_per_leaf());
    ctx.nat_idx.resize(ctx.nloc);
    for (std::size_t q = 0; q < ctx.nloc; ++q)
      ctx.nat_idx[q] = tree.perm()[q0 + q];

    for (int t = ctx.group; t < t_count; t += ig) ctx.local_t.push_back(t);
    ctx.o_loc.assign(ctx.nloc, cplx{});
    const std::size_t np =
        static_cast<std::size_t>(tree.pixels_per_leaf());
    ctx.lo = BlockLayout{np, ctx.local_t.size(), ctx.nloc / np};
    ctx.phi_b.assign(ctx.lo.size(), cplx{});
    ctx.reset_phi_to_incident();
    if (config.dbim.recycle_depth > 0) {
      const RecycleOptions ro{
          static_cast<std::size_t>(config.dbim.recycle_depth),
          config.dbim.recycle_ridge};
      ctx.rec_grad = KrylovRecycler(ro);
      ctx.rec_step = KrylovRecycler(ro);
    }
    if (config.dbim.near_precondition) {
      FFW_CHECK_MSG(pm.nearfield().precision() == Precision::kDouble,
                    "parallel DBIM near-field preconditioner needs fp64 "
                    "near-field tables");
    }
    FFW_CHECK_MSG(config.dbim.backend == BackendKind::kMlfma,
                  "parallel DBIM runs on the partitioned MLFMA engine only; "
                  "CBS/auto backend routing is a serial-driver feature");

    cvec grad(ctx.nloc), grad_prev(ctx.nloc), direction(ctx.nloc),
        residuals(measured.rows() * ctx.local_t.size());
    double grad_prev_norm2 = 0.0;
    // Lagged Eisenstat-Walker state: the outer residual of the previous
    // completed iteration (< 0 = none yet). On resume it is recovered
    // from the checkpointed residual history — binary doubles, so the
    // recovered forcing tolerances are bit-identical to the fault-free
    // run's.
    double prev_relres = -1.0;
    int start_iter = 0;
    if (have_resume) {
      // The checkpoint stores full natural-order arrays, so every rank
      // (the contrast and CG memory are replicated across illumination
      // groups) restores its cluster-order slice through nat_idx.
      FFW_CHECK_MSG(!resume_state.mixed_precision,
                    "parallel DBIM resume: checkpoint precision policy "
                    "(mixed) does not match this fp64 driver");
      FFW_CHECK_MSG(resume_state.backend == BackendKind::kMlfma,
                    "parallel DBIM resume: checkpoint backend policy is not "
                    "MLFMA; this driver cannot continue a CBS/auto run");
      FFW_CHECK(resume_state.contrast.size() == npix &&
                resume_state.gradient_prev.size() == npix &&
                resume_state.direction.size() == npix);
      for (std::size_t q = 0; q < ctx.nloc; ++q) {
        ctx.o_loc[q] = resume_state.contrast[ctx.nat_idx[q]];
        grad_prev[q] = resume_state.gradient_prev[ctx.nat_idx[q]];
        direction[q] = resume_state.direction[ctx.nat_idx[q]];
      }
      grad_prev_norm2 = std::pow(nrm2(resume_state.gradient_prev), 2);
      start_iter = resume_state.iteration;
      if (!resume_state.residual_history.empty())
        prev_relres = resume_state.residual_history.back();
    }
    DotReducer red = ctx.tree_reduce();

    for (int iter = start_iter; iter < config.dbim.max_iterations; ++iter) {
      // Rebuild the rank-local block-Jacobi for the current background
      // contrast: rank-local leaf self blocks only, so the factorisation
      // is communication-free.
      if (config.dbim.near_precondition) {
        ctx.precond = std::make_unique<NearFieldBlockJacobi>(
            pm.nearfield().type(4), ccspan{ctx.o_loc}, Precision::kDouble);
      }
      if (config.dbim.adaptive_forcing) {
        const double base = config.forward.tol;
        const double cap = std::max(base, config.dbim.forcing_cap);
        ctx.forcing_tol =
            prev_relres >= 0.0
                ? std::clamp(config.dbim.forcing_c * prev_relres, base, cap)
                : cap;
      }
      // Pass 1 + 2: residual and gradient, each as one block solve over
      // the whole local illumination set.
      std::fill(grad.begin(), grad.end(), cplx{});
      double cost_loc = 0.0;
      if (!ctx.local_t.empty()) {
        // Mirror the serial driver's warm-start policy: with
        // warm_start_fields off the block solve restarts from the
        // incident fields instead of the previous background fields, and
        // the recycle histories reset with them (keeps every iterate a
        // pure function of the checkpointed outer-loop state).
        if (!config.dbim.warm_start_fields) {
          ctx.reset_phi_to_incident();
          ctx.rec_grad.clear();
          ctx.rec_step.clear();
        }
        cost_loc = ctx.residual_pass_all(residuals);
        ctx.gradient_pass_all(residuals, grad);
      }
      // Cost: each illumination's cost is replicated tr times.
      double buf[1] = {cost_loc};
      comm.allreduce_sum(rspan{buf, 1});
      const double cost = buf[0] / tr;
      // Gradient combine across illumination groups (paper Fig. 4 sync 1).
      comm.group_allreduce_sum(cspan{grad}, ctx.column_group);
      if (config.dbim.tikhonov > 0.0) {
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          grad[q] += config.dbim.tikhonov * ctx.o_loc[q];
      }

      const double relres = std::sqrt(cost / meas_norm2);
      prev_relres = relres;
      if (comm.rank() == 0) history.push_back(relres);
      if (config.dbim.progress && comm.rank() == 0)
        config.dbim.progress(iter, relres);
      if (config.dbim.residual_tol > 0.0 && relres < config.dbim.residual_tol)
        break;

      // Conjugate direction (identical scalars on every rank).
      double gn_loc = 0.0;
      for (const auto& v : grad) gn_loc += std::norm(v);
      const double gnorm2 = red.sum_double(gn_loc);
      if (gnorm2 == 0.0) break;
      double beta = 0.0;
      if (config.dbim.conjugate_gradient && iter > 0 &&
          grad_prev_norm2 > 0.0) {
        cplx num_loc{};
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          num_loc += std::conj(grad[q]) * (grad[q] - grad_prev[q]);
        beta = std::max(0.0, red.sum_cplx(num_loc).real() / grad_prev_norm2);
      }
      if (beta == 0.0) {
        for (std::size_t q = 0; q < ctx.nloc; ++q) direction[q] = -grad[q];
      } else {
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          direction[q] = -grad[q] + beta * direction[q];
      }

      // Pass 3: step length (paper Fig. 4 sync 2), one block solve.
      double denom_loc =
          ctx.local_t.empty() ? 0.0 : ctx.step_pass_all(direction);
      double dbuf[1] = {denom_loc};
      comm.allreduce_sum(rspan{dbuf, 1});
      double denom = dbuf[0] / tr;
      if (config.dbim.tikhonov > 0.0) {
        double dn_loc = 0.0;
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          dn_loc += std::norm(direction[q]);
        denom += config.dbim.tikhonov * red.sum_double(dn_loc);
      }
      if (denom == 0.0) break;
      cplx num_loc{};
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        num_loc += std::conj(grad[q]) * direction[q];
      const double alpha = -red.sum_cplx(num_loc).real() / denom;
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        ctx.o_loc[q] += alpha * direction[q];

      copy(grad, grad_prev);
      grad_prev_norm2 = gnorm2;

      // Atomic checkpoint of the completed iteration: group-0 tree ranks
      // ship their cluster-order slices to global rank 0, which scatters
      // them into natural order (via the tree permutation, per sender)
      // and saves the same DbimCheckpoint format the serial driver
      // emits. Every rank restores from it on a supervisor restart.
      if (!config.checkpoint_path.empty() && ctx.group == 0 &&
          (iter + 1) % std::max(1, config.checkpoint_every) == 0) {
        constexpr int kTagCkpt = -4000;  // reserved: checkpoint gather
        const std::size_t npl =
            static_cast<std::size_t>(tree.pixels_per_leaf());
        if (comm.rank() != 0) {
          cvec pack(3 * ctx.nloc);
          std::copy(ctx.o_loc.begin(), ctx.o_loc.end(), pack.begin());
          std::copy(grad_prev.begin(), grad_prev.end(),
                    pack.begin() + static_cast<std::ptrdiff_t>(ctx.nloc));
          std::copy(direction.begin(), direction.end(),
                    pack.begin() + static_cast<std::ptrdiff_t>(2 * ctx.nloc));
          comm.send(0, kTagCkpt, ccspan{pack});
        } else {
          DbimCheckpoint state;
          state.iteration = iter + 1;
          state.mixed_precision = false;
          state.contrast.assign(npix, cplx{});
          state.gradient_prev.assign(npix, cplx{});
          state.direction.assign(npix, cplx{});
          const auto scatter = [&](int r, ccspan o, ccspan g, ccspan d) {
            const std::size_t q0r = pm.leaf_begin(r) * npl;
            for (std::size_t q = 0; q < o.size(); ++q) {
              const std::uint32_t nat = tree.perm()[q0r + q];
              state.contrast[nat] = o[q];
              state.gradient_prev[nat] = g[q];
              state.direction[nat] = d[q];
            }
          };
          scatter(0, ctx.o_loc, grad_prev, direction);
          for (int r = 1; r < tr; ++r) {
            const cvec pack = comm.recv<cplx>(r, kTagCkpt);
            const std::size_t nl = pm.local_pixels(r);
            FFW_CHECK(pack.size() == 3 * nl);
            scatter(r, ccspan{pack.data(), nl}, ccspan{pack.data() + nl, nl},
                    ccspan{pack.data() + 2 * nl, nl});
          }
          state.residual_history.assign(history.begin(), history.end());
          FFW_CHECK_MSG(state.save(config.checkpoint_path),
                        "parallel DBIM: checkpoint save failed");
        }
      }
    }

    if (ctx.group == 0) {
      std::copy(ctx.o_loc.begin(), ctx.o_loc.end(),
                out_cluster.begin() +
                    static_cast<std::ptrdiff_t>(
                        pm.leaf_begin(ctx.tree_rank) *
                        static_cast<std::size_t>(tree.pixels_per_leaf())));
    }
    // Real-process ranks share no out_cluster: group-0 slices travel to
    // global rank 0 by message instead, so the process hosting rank 0
    // assembles the full image (the only process whose DbimResult
    // carries it).
    if (!vc.hosts_all()) {
      constexpr int kTagResult = -4100;  // reserved: result gather
      const std::size_t npl =
          static_cast<std::size_t>(tree.pixels_per_leaf());
      if (comm.rank() == 0) {
        for (int r = 1; r < tr; ++r) {
          const cvec slice = comm.recv<cplx>(r, kTagResult);
          FFW_CHECK(slice.size() == pm.local_pixels(r));
          std::copy(slice.begin(), slice.end(),
                    out_cluster.begin() +
                        static_cast<std::ptrdiff_t>(pm.leaf_begin(r) * npl));
        }
      } else if (ctx.group == 0) {
        comm.send(0, kTagResult, ccspan{ctx.o_loc});
      }
    }
  };

  // Supervisor: a failed run (e.g. an injected RankFailure) is caught
  // here; the cluster is recovered and the ranks rerun from the last
  // atomically-saved checkpoint (or from scratch when the crash landed
  // before the first save). Consumed crash triggers do not re-fire
  // (VCluster keeps the cumulative send counters across recover()).
  if (config.resume_from_checkpoint && !config.checkpoint_path.empty() &&
      resume_state.load(config.checkpoint_path)) {
    have_resume = true;
    history.assign(resume_state.residual_history.begin(),
                   resume_state.residual_history.end());
  }
  int restarts = 0;
  for (;;) {
    try {
      vc.run(rank_program);
      break;
    } catch (const CommFailure&) {
      // Process mode cannot restart locally — the failure means a peer
      // *process* is gone, and only the process-tree supervisor
      // (ffw_launch) can bring a whole consistent world back.
      if (!vc.hosts_all() || restarts >= config.max_restarts) throw;
      ++restarts;
      vc.recover();
      have_resume = !config.checkpoint_path.empty() &&
                    resume_state.load(config.checkpoint_path);
      history.clear();
      if (have_resume) {
        history.assign(resume_state.residual_history.begin(),
                       resume_state.residual_history.end());
      }
      std::fill(out_cluster.begin(), out_cluster.end(), cplx{});
    }
  }

  DbimResult out;
  out.contrast.assign(npix, cplx{});
  tree.to_natural_order(out_cluster, out.contrast);
  out.history.relative_residual = std::move(history);
  out.history.forward_solves = static_cast<std::uint64_t>(
      3 * t_count * config.dbim.max_iterations);
  out.history.operator_applications = total_matvecs.load();
  return out;
}

DbimResult dbim_reconstruct_windowed(Comm& comm, const PartitionedMlfma& pm,
                                     const QuadTree& tree,
                                     const Transceivers& trx,
                                     const CMatrix& measured,
                                     const WindowedDbimConfig& config,
                                     ccspan initial_contrast) {
  const int ig = config.illum_groups, tr = config.tree_ranks;
  FFW_CHECK(ig >= 1 && tr >= 1 && pm.nranks() == tr);
  const int window = ig * tr;
  const int wrank = comm.rank() - config.rank_base;
  FFW_CHECK_MSG(wrank >= 0 && wrank < window,
                "windowed DBIM: calling rank outside its window");
  FFW_CHECK(config.rank_base + window <= comm.size());
  FFW_CHECK_MSG(config.dbim.backend == BackendKind::kMlfma,
                "windowed DBIM runs on the partitioned MLFMA engine only");
  FFW_CHECK_MSG(config.dbim.mixed_engine == nullptr &&
                    config.dbim.resume == nullptr && !config.dbim.checkpoint,
                "windowed DBIM: per-scene DBIM pointers are unsupported "
                "(stage-level checkpointing is the ladder's job)");
  if (config.dbim.near_precondition) {
    FFW_CHECK_MSG(pm.nearfield().precision() == Precision::kDouble,
                  "windowed DBIM near-field preconditioner needs fp64 "
                  "near-field tables");
  }
  const std::size_t npix = tree.grid().num_pixels();
  const int t_count = trx.num_transmitters();

  double meas_norm2 = 0.0;
  for (std::size_t t = 0; t < measured.cols(); ++t) {
    const double nn = nrm2(measured.col(t));
    meas_norm2 += nn * nn;
  }

  RankCtx ctx;
  ctx.comm = &comm;
  ctx.pm = &pm;
  ctx.trx = &trx;
  ctx.measured = &measured;
  ctx.fw_opts = config.forward;
  ctx.group = wrank / tr;
  ctx.tree_rank = wrank % tr;
  ctx.rank_base = config.rank_base + ctx.group * tr;
  for (int r = 0; r < tr; ++r) ctx.tree_group.push_back(ctx.rank_base + r);
  for (int g = 0; g < ig; ++g)
    ctx.column_group.push_back(config.rank_base + g * tr + ctx.tree_rank);
  // Window ranks, NOT the whole cluster: every collective below runs on
  // group primitives over explicit rank lists, never on the global
  // barrier/allreduce (which would deadlock against the other band
  // groups running their own windows concurrently).
  std::vector<int> window_ranks;
  for (int r = 0; r < window; ++r)
    window_ranks.push_back(config.rank_base + r);

  ctx.nloc = pm.local_pixels(ctx.tree_rank);
  const std::size_t npl = static_cast<std::size_t>(tree.pixels_per_leaf());
  const std::size_t q0 = pm.leaf_begin(ctx.tree_rank) * npl;
  ctx.nat_idx.resize(ctx.nloc);
  for (std::size_t q = 0; q < ctx.nloc; ++q)
    ctx.nat_idx[q] = tree.perm()[q0 + q];

  for (int t = ctx.group; t < t_count; t += ig) ctx.local_t.push_back(t);
  ctx.o_loc.assign(ctx.nloc, cplx{});
  if (!initial_contrast.empty()) {
    FFW_CHECK(initial_contrast.size() == npix);
    for (std::size_t q = 0; q < ctx.nloc; ++q)
      ctx.o_loc[q] = initial_contrast[ctx.nat_idx[q]];
  }
  ctx.lo = BlockLayout{npl, ctx.local_t.size(), ctx.nloc / npl};
  ctx.phi_b.assign(ctx.lo.size(), cplx{});
  ctx.reset_phi_to_incident();
  if (config.dbim.recycle_depth > 0) {
    const RecycleOptions ro{
        static_cast<std::size_t>(config.dbim.recycle_depth),
        config.dbim.recycle_ridge};
    ctx.rec_grad = KrylovRecycler(ro);
    ctx.rec_step = KrylovRecycler(ro);
  }

  cvec grad(ctx.nloc), grad_prev(ctx.nloc), direction(ctx.nloc),
      residuals(measured.rows() * ctx.local_t.size());
  std::vector<double> history;
  double grad_prev_norm2 = 0.0;
  double prev_relres = -1.0;
  DotReducer red = ctx.tree_reduce();

  for (int iter = 0; iter < config.dbim.max_iterations; ++iter) {
    if (config.dbim.near_precondition) {
      ctx.precond = std::make_unique<NearFieldBlockJacobi>(
          pm.nearfield().type(4), ccspan{ctx.o_loc}, Precision::kDouble);
    }
    if (config.dbim.adaptive_forcing) {
      const double base = config.forward.tol;
      const double cap = std::max(base, config.dbim.forcing_cap);
      ctx.forcing_tol =
          prev_relres >= 0.0
              ? std::clamp(config.dbim.forcing_c * prev_relres, base, cap)
              : cap;
    }
    std::fill(grad.begin(), grad.end(), cplx{});
    double cost_loc = 0.0;
    if (!ctx.local_t.empty()) {
      if (!config.dbim.warm_start_fields) {
        ctx.reset_phi_to_incident();
        ctx.rec_grad.clear();
        ctx.rec_step.clear();
      }
      cost_loc = ctx.residual_pass_all(residuals);
      ctx.gradient_pass_all(residuals, grad);
    }
    // Cost: each illumination's cost is replicated tr times; reduced
    // over the window ranks only.
    double buf[1] = {cost_loc};
    comm.group_allreduce_sum(rspan{buf, 1}, window_ranks);
    const double cost = buf[0] / tr;
    comm.group_allreduce_sum(cspan{grad}, ctx.column_group);
    if (config.dbim.tikhonov > 0.0) {
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        grad[q] += config.dbim.tikhonov * ctx.o_loc[q];
    }

    const double relres = std::sqrt(cost / meas_norm2);
    prev_relres = relres;
    history.push_back(relres);
    if (config.dbim.progress && wrank == 0) config.dbim.progress(iter, relres);
    if (config.dbim.residual_tol > 0.0 && relres < config.dbim.residual_tol)
      break;

    double gn_loc = 0.0;
    for (const auto& v : grad) gn_loc += std::norm(v);
    const double gnorm2 = red.sum_double(gn_loc);
    if (gnorm2 == 0.0) break;
    double beta = 0.0;
    if (config.dbim.conjugate_gradient && iter > 0 && grad_prev_norm2 > 0.0) {
      cplx num_loc{};
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        num_loc += std::conj(grad[q]) * (grad[q] - grad_prev[q]);
      beta = std::max(0.0, red.sum_cplx(num_loc).real() / grad_prev_norm2);
    }
    if (beta == 0.0) {
      for (std::size_t q = 0; q < ctx.nloc; ++q) direction[q] = -grad[q];
    } else {
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        direction[q] = -grad[q] + beta * direction[q];
    }

    double denom_loc = ctx.local_t.empty() ? 0.0 : ctx.step_pass_all(direction);
    double dbuf[1] = {denom_loc};
    comm.group_allreduce_sum(rspan{dbuf, 1}, window_ranks);
    double denom = dbuf[0] / tr;
    if (config.dbim.tikhonov > 0.0) {
      double dn_loc = 0.0;
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        dn_loc += std::norm(direction[q]);
      denom += config.dbim.tikhonov * red.sum_double(dn_loc);
    }
    if (denom == 0.0) break;
    cplx num_loc{};
    for (std::size_t q = 0; q < ctx.nloc; ++q)
      num_loc += std::conj(grad[q]) * direction[q];
    const double alpha = -red.sum_cplx(num_loc).real() / denom;
    for (std::size_t q = 0; q < ctx.nloc; ++q)
      ctx.o_loc[q] += alpha * direction[q];

    copy(grad, grad_prev);
    grad_prev_norm2 = gnorm2;

    // Per-band plateau stop, after the update so the serial stepper
    // (update inside step(), plateau checked by the caller between
    // steps) and this driver cut the band at the identical state. The
    // decision is a pure function of the replicated history — every
    // window rank reaches the same verdict with no extra message.
    if (config.plateau_window > 0 &&
        history.size() > static_cast<std::size_t>(config.plateau_window)) {
      const double then =
          history[history.size() - 1 -
                  static_cast<std::size_t>(config.plateau_window)];
      if (history.back() > (1.0 - config.plateau_rtol) * then) break;
    }
  }

  // Assemble the full natural-order image on every window rank: the
  // group-0 tree ranks hold the authoritative slices (the contrast is
  // replicated across illumination groups); gather them to the window
  // leader by message — works identically for thread and process ranks
  // — then broadcast over the window.
  constexpr int kTagWindowResult = -4150;  // reserved: windowed gather
  cvec out_cluster(npix, cplx{});
  if (wrank == 0) {
    std::copy(ctx.o_loc.begin(), ctx.o_loc.end(), out_cluster.begin());
    for (int r = 1; r < tr; ++r) {
      const cvec slice =
          comm.recv<cplx>(config.rank_base + r, kTagWindowResult);
      FFW_CHECK(slice.size() == pm.local_pixels(r));
      std::copy(slice.begin(), slice.end(),
                out_cluster.begin() +
                    static_cast<std::ptrdiff_t>(pm.leaf_begin(r) * npl));
    }
  } else if (ctx.group == 0) {
    comm.send(config.rank_base, kTagWindowResult, ccspan{ctx.o_loc});
  }
  comm.group_bcast(cspan{out_cluster}, window_ranks);

  DbimResult out;
  out.contrast.assign(npix, cplx{});
  tree.to_natural_order(out_cluster, out.contrast);
  out.history.relative_residual = std::move(history);
  out.history.forward_solves = static_cast<std::uint64_t>(
      3 * t_count * static_cast<int>(out.history.relative_residual.size()));
  return out;
}

}  // namespace ffw
