#include "dbim/parallel_driver.hpp"

#include <atomic>
#include <cmath>

#include "linalg/kernels.hpp"

namespace ffw {

namespace {

/// Rank-local state and sub-operations for one rank of the 2-D grid.
struct RankCtx {
  Comm* comm;
  const PartitionedMlfma* pm;
  const Transceivers* trx;
  const CMatrix* measured;
  const ParallelDbimConfig* cfg;

  int group = 0;       // illumination group index
  int tree_rank = 0;   // rank within the tree group
  int rank_base = 0;   // first global rank of this tree group
  std::vector<int> tree_group;    // global ranks sharing this MLFMA
  std::vector<int> column_group;  // same tree_rank across illum groups
  std::vector<int> all_ranks;

  std::size_t nloc = 0;                  // local pixel count
  std::vector<std::uint32_t> nat_idx;    // natural pixel index per local q
  cvec o_loc;                            // background contrast slice
  std::vector<cvec> phi_b;               // background fields, local t order
  std::vector<int> local_t;              // transmitters of this group

  DotReducer tree_reduce() {
    return DotReducer{
        [this](cplx v) {
          double buf[2] = {v.real(), v.imag()};
          comm->group_allreduce_sum(rspan{buf, 2}, tree_group);
          return cplx{buf[0], buf[1]};
        },
        [this](double v) {
          return comm->group_allreduce_sum(v, tree_group);
        }};
  }

  /// y = [I - G0 O] x on local slices (collective over the tree group).
  void forward_op(ccspan x, cspan y) {
    cvec ox(nloc);
    diag_mul(o_loc, x, ox);
    pm->apply(*comm, ox, y, rank_base);
    for (std::size_t i = 0; i < nloc; ++i) y[i] = x[i] - y[i];
  }

  /// y = [I - G0 O]^H x.
  void adjoint_op(ccspan x, cspan y) {
    pm->apply_herm(*comm, x, y, rank_base);
    for (std::size_t i = 0; i < nloc; ++i)
      y[i] = x[i] - std::conj(o_loc[i]) * y[i];
  }

  BicgstabResult solve_forward(ccspan rhs, cspan x) {
    return bicgstab([this](ccspan in, cspan out) { forward_op(in, out); },
                    rhs, x, cfg->forward, tree_reduce());
  }

  BicgstabResult solve_adjoint(ccspan rhs, cspan x) {
    return bicgstab([this](ccspan in, cspan out) { adjoint_op(in, out); },
                    rhs, x, cfg->forward, tree_reduce());
  }

  /// Full receiver vector G_R v from a local slice (replicated within
  /// the tree group after the allreduce).
  void gr_full(ccspan v_loc, cspan y) {
    std::fill(y.begin(), y.end(), cplx{});
    trx->apply_gr_subset(v_loc, nat_idx, y);
    comm->group_allreduce_sum(y, tree_group);
  }

  /// Residual pass for local illumination index i: returns ||b||^2 and
  /// fills `residual` (length R).
  double residual_pass(std::size_t i, cspan residual) {
    const int t = local_t[i];
    cvec inc(nloc);
    trx->incident_field_subset(t, nat_idx, inc);
    cspan phi{phi_b[i]};
    const BicgstabResult res = solve_forward(inc, phi);
    FFW_CHECK_MSG(res.converged, "parallel DBIM forward solve diverged");
    cvec v(nloc);
    diag_mul(o_loc, ccspan{phi.data(), nloc}, v);
    gr_full(v, residual);
    sub(residual, measured->col(static_cast<std::size_t>(t)), residual);
    const double rn = nrm2(ccspan{residual.data(), residual.size()});
    return rn * rn;
  }

  /// grad_loc += F_t^H b for local illumination i.
  void gradient_pass(std::size_t i, ccspan residual, cspan grad_loc) {
    cvec g1(nloc), w2(nloc), w3(nloc, cplx{}), w4(nloc);
    trx->apply_gr_herm_subset(residual, nat_idx, g1);
    diag_mul_conj(o_loc, g1, w2);
    FFW_CHECK(solve_adjoint(w2, w3).converged);
    pm->apply_herm(*comm, w3, w4, rank_base);
    const cvec& phi = phi_b[i];
    for (std::size_t q = 0; q < nloc; ++q)
      grad_loc[q] += std::conj(phi[q]) * (g1[q] + w4[q]);
  }

  /// ||F_t d||^2 for local illumination i.
  double step_pass(std::size_t i, ccspan d_loc) {
    cvec u1(nloc), u2(nloc), w(nloc, cplx{});
    const cvec& phi = phi_b[i];
    diag_mul(d_loc, ccspan{phi.data(), nloc}, u1);
    pm->apply(*comm, u1, u2, rank_base);
    FFW_CHECK(solve_forward(u2, w).converged);
    for (std::size_t q = 0; q < nloc; ++q) u1[q] += o_loc[q] * w[q];
    cvec sc(static_cast<std::size_t>(trx->num_receivers()));
    gr_full(u1, sc);
    const double fn = nrm2(sc);
    return fn * fn;
  }
};

}  // namespace

DbimResult dbim_reconstruct_parallel(VCluster& vc, const QuadTree& tree,
                                     const Transceivers& trx,
                                     const CMatrix& measured,
                                     const ParallelDbimConfig& config) {
  const int ig = config.illum_groups, tr = config.tree_ranks;
  FFW_CHECK(vc.size() == ig * tr);
  const PartitionedMlfma pm(tree, config.mlfma, tr);
  const std::size_t npix = tree.grid().num_pixels();
  const int t_count = trx.num_transmitters();

  double meas_norm2 = 0.0;
  for (std::size_t t = 0; t < measured.cols(); ++t) {
    const double nn = nrm2(measured.col(t));
    meas_norm2 += nn * nn;
  }

  // Shared result buffers (group 0 / rank 0 write disjoint parts).
  cvec out_cluster(npix, cplx{});
  std::vector<double> history;
  std::atomic<std::uint64_t> total_matvecs{0};

  vc.run([&](Comm& comm) {
    RankCtx ctx;
    ctx.comm = &comm;
    ctx.pm = &pm;
    ctx.trx = &trx;
    ctx.measured = &measured;
    ctx.cfg = &config;
    ctx.group = comm.rank() / tr;
    ctx.tree_rank = comm.rank() % tr;
    ctx.rank_base = ctx.group * tr;
    for (int r = 0; r < tr; ++r) ctx.tree_group.push_back(ctx.rank_base + r);
    for (int g = 0; g < ig; ++g)
      ctx.column_group.push_back(g * tr + ctx.tree_rank);
    for (int r = 0; r < vc.size(); ++r) ctx.all_ranks.push_back(r);

    ctx.nloc = pm.local_pixels(ctx.tree_rank);
    const std::size_t q0 =
        pm.leaf_begin(ctx.tree_rank) *
        static_cast<std::size_t>(tree.pixels_per_leaf());
    ctx.nat_idx.resize(ctx.nloc);
    for (std::size_t q = 0; q < ctx.nloc; ++q)
      ctx.nat_idx[q] = tree.perm()[q0 + q];

    for (int t = ctx.group; t < t_count; t += ig) ctx.local_t.push_back(t);
    ctx.o_loc.assign(ctx.nloc, cplx{});
    ctx.phi_b.resize(ctx.local_t.size());
    for (std::size_t i = 0; i < ctx.local_t.size(); ++i) {
      ctx.phi_b[i].assign(ctx.nloc, cplx{});
      trx.incident_field_subset(ctx.local_t[i], ctx.nat_idx, ctx.phi_b[i]);
    }

    cvec grad(ctx.nloc), grad_prev(ctx.nloc), direction(ctx.nloc),
        residual(measured.rows());
    double grad_prev_norm2 = 0.0;
    DotReducer red = ctx.tree_reduce();

    for (int iter = 0; iter < config.dbim.max_iterations; ++iter) {
      // Pass 1 + 2: residual and gradient over local illuminations.
      std::fill(grad.begin(), grad.end(), cplx{});
      double cost_loc = 0.0;
      for (std::size_t i = 0; i < ctx.local_t.size(); ++i) {
        cost_loc += ctx.residual_pass(i, residual);
        ctx.gradient_pass(i, residual, grad);
      }
      // Cost: each illumination's cost is replicated tr times.
      double buf[1] = {cost_loc};
      comm.allreduce_sum(rspan{buf, 1});
      const double cost = buf[0] / tr;
      // Gradient combine across illumination groups (paper Fig. 4 sync 1).
      comm.group_allreduce_sum(cspan{grad}, ctx.column_group);
      if (config.dbim.tikhonov > 0.0) {
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          grad[q] += config.dbim.tikhonov * ctx.o_loc[q];
      }

      const double relres = std::sqrt(cost / meas_norm2);
      if (comm.rank() == 0) history.push_back(relres);
      if (config.dbim.progress && comm.rank() == 0)
        config.dbim.progress(iter, relres);
      if (config.dbim.residual_tol > 0.0 && relres < config.dbim.residual_tol)
        break;

      // Conjugate direction (identical scalars on every rank).
      double gn_loc = 0.0;
      for (const auto& v : grad) gn_loc += std::norm(v);
      const double gnorm2 = red.sum_double(gn_loc);
      if (gnorm2 == 0.0) break;
      double beta = 0.0;
      if (config.dbim.conjugate_gradient && iter > 0 &&
          grad_prev_norm2 > 0.0) {
        cplx num_loc{};
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          num_loc += std::conj(grad[q]) * (grad[q] - grad_prev[q]);
        beta = std::max(0.0, red.sum_cplx(num_loc).real() / grad_prev_norm2);
      }
      if (beta == 0.0) {
        for (std::size_t q = 0; q < ctx.nloc; ++q) direction[q] = -grad[q];
      } else {
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          direction[q] = -grad[q] + beta * direction[q];
      }

      // Pass 3: step length (paper Fig. 4 sync 2).
      double denom_loc = 0.0;
      for (std::size_t i = 0; i < ctx.local_t.size(); ++i)
        denom_loc += ctx.step_pass(i, direction);
      double dbuf[1] = {denom_loc};
      comm.allreduce_sum(rspan{dbuf, 1});
      double denom = dbuf[0] / tr;
      if (config.dbim.tikhonov > 0.0) {
        double dn_loc = 0.0;
        for (std::size_t q = 0; q < ctx.nloc; ++q)
          dn_loc += std::norm(direction[q]);
        denom += config.dbim.tikhonov * red.sum_double(dn_loc);
      }
      if (denom == 0.0) break;
      cplx num_loc{};
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        num_loc += std::conj(grad[q]) * direction[q];
      const double alpha = -red.sum_cplx(num_loc).real() / denom;
      for (std::size_t q = 0; q < ctx.nloc; ++q)
        ctx.o_loc[q] += alpha * direction[q];

      copy(grad, grad_prev);
      grad_prev_norm2 = gnorm2;
    }

    if (ctx.group == 0) {
      std::copy(ctx.o_loc.begin(), ctx.o_loc.end(),
                out_cluster.begin() +
                    static_cast<std::ptrdiff_t>(
                        pm.leaf_begin(ctx.tree_rank) *
                        static_cast<std::size_t>(tree.pixels_per_leaf())));
    }
  });

  DbimResult out;
  out.contrast.assign(npix, cplx{});
  tree.to_natural_order(out_cluster, out.contrast);
  out.history.relative_residual = std::move(history);
  out.history.forward_solves = static_cast<std::uint64_t>(
      3 * t_count * config.dbim.max_iterations);
  out.history.mlfma_applications = total_matvecs.load();
  return out;
}

}  // namespace ffw
