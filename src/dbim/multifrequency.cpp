#include "dbim/multifrequency.hpp"

#include <memory>

#include "common/timer.hpp"
#include "dbim/continuation.hpp"
#include "phantom/resample.hpp"

namespace ffw {

MultiFrequencyResult multifrequency_reconstruct(
    const ScenarioConfig& config, ccspan true_permittivity,
    const std::vector<FrequencyStage>& stages,
    const MultiFrequencyOptions& options) {
  FFW_CHECK(!stages.empty());
  Grid final_grid(config.nx);
  FFW_CHECK(true_permittivity.size() == final_grid.num_pixels());
  FFW_CHECK_MSG(options.dbim.mixed_engine == nullptr,
                "multifrequency: set MultiFrequencyOptions::mixed_precision "
                "instead of DbimOptions::mixed_engine");
  FFW_CHECK_MSG(options.dbim.resume == nullptr,
                "multifrequency: a single-grid resume state cannot thread "
                "through a multi-grid ladder");
  FFW_CHECK(options.dbim.incident_panel.empty());

  MultiFrequencyResult out;
  cvec contrast_prev;  // raw reconstruction on the previous stage's grid
  int prev_nx = 0;
  double k2_prev = 0.0;

  for (std::size_t s = 0; s < stages.size(); ++s) {
    const FrequencyStage& stage = stages[s];
    const int nx = config.nx >> stage.halvings;
    FFW_CHECK_MSG(nx >= 16 && nx % 8 == 0,
                  "stage grid too coarse for the MLFMA tree");

    // Object at this stage's frequency: box-filtered truth.
    cvec eps_stage(true_permittivity.begin(), true_permittivity.end());
    for (int h = 0, cur = config.nx; h < stage.halvings; ++h, cur /= 2) {
      eps_stage = downsample2(eps_stage, cur);
    }

    ScenarioConfig stage_config = config;
    stage_config.nx = nx;
    // Each stage is an independent experiment at its own operating
    // frequency: give it an independent noise realization instead of
    // replaying the final-grid seed (which correlated the noise across
    // stages and biased the continuation).
    if (options.per_stage_noise_seeds) {
      stage_config.noise_seed =
          mix_seed(config.noise_seed, static_cast<std::uint64_t>(s));
    }
    // Scene setup (table + transceiver builds, measurement synthesis) is
    // timed separately: with config.table_cache set, the operator share
    // of it amortises across runs and the split shows exactly that.
    Timer stage_timer;
    Scenario scene(stage_config, eps_stage);
    const double setup_seconds = stage_timer.seconds();
    const Grid& grid = scene.grid();
    const double k2 = grid.k0() * grid.k0();

    // Initial guess: previous stage's raw contrast, resampled when the
    // resolution grows — or verbatim (bit-exact) when it repeats.
    cvec contrast_guess;
    if (!contrast_prev.empty()) {
      FFW_CHECK_MSG(prev_nx <= nx, "stages must run coarse to fine");
      contrast_guess =
          continuation_warm_start(contrast_prev, prev_nx, nx, k2_prev, k2);
    }

    // The caller's DbimOptions are the base for every stage; only the
    // iteration budget and the per-stage artifacts are overridden.
    DbimOptions opts = options.dbim;
    opts.max_iterations = stage.dbim_iterations;
    if (config.table_cache != nullptr) opts.table_cache = config.table_cache;
    opts.incident_panel = scene.incident_panel();
    std::unique_ptr<MlfmaEngine> mixed;
    if (options.mixed_precision) {
      MlfmaParams mp = stage_config.mlfma;
      mp.precision = Precision::kMixed;
      mixed = config.table_cache != nullptr
                  ? std::make_unique<MlfmaEngine>(config.table_cache->
                        mlfma_tables(grid, stage_config.leaf_pixel_side, mp))
                  : std::make_unique<MlfmaEngine>(scene.tree(), mp);
      opts.mixed_engine = mixed.get();
    }
    const DbimResult res = dbim_reconstruct(
        scene.engine(), scene.transceivers(), scene.measurements(), opts,
        config.forward, contrast_guess);

    out.stage_residuals.push_back(res.history.relative_residual);
    out.stage_rmse.push_back(image_rmse(res.contrast, scene.true_contrast()));
    out.stage_setup_seconds.push_back(setup_seconds);
    out.stage_seconds.push_back(stage_timer.seconds());
    out.stage_history.push_back(res.history);

    contrast_prev = res.contrast;
    prev_nx = nx;
    k2_prev = k2;
  }

  // Bring the last stage's permittivity to the final grid if needed.
  cvec eps_guess(contrast_prev.size());
  for (std::size_t i = 0; i < contrast_prev.size(); ++i)
    eps_guess[i] = contrast_prev[i] / k2_prev;
  for (int cur = prev_nx; cur < config.nx; cur *= 2) {
    eps_guess = upsample2(eps_guess, cur);
  }
  out.permittivity = std::move(eps_guess);
  return out;
}

}  // namespace ffw
