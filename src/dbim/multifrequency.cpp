#include "dbim/multifrequency.hpp"

#include "common/timer.hpp"
#include "phantom/resample.hpp"

namespace ffw {

MultiFrequencyResult multifrequency_reconstruct(
    const ScenarioConfig& config, ccspan true_permittivity,
    const std::vector<FrequencyStage>& stages) {
  FFW_CHECK(!stages.empty());
  Grid final_grid(config.nx);
  FFW_CHECK(true_permittivity.size() == final_grid.num_pixels());

  MultiFrequencyResult out;
  cvec eps_guess;  // reconstructed delta_eps on the previous stage's grid
  int prev_nx = 0;

  for (const FrequencyStage& stage : stages) {
    const int nx = config.nx >> stage.halvings;
    FFW_CHECK_MSG(nx >= 16 && nx % 8 == 0,
                  "stage grid too coarse for the MLFMA tree");

    // Object at this stage's frequency: box-filtered truth.
    cvec eps_stage(true_permittivity.begin(), true_permittivity.end());
    for (int h = 0, cur = config.nx; h < stage.halvings; ++h, cur /= 2) {
      eps_stage = downsample2(eps_stage, cur);
    }

    ScenarioConfig stage_config = config;
    stage_config.nx = nx;
    // Scene setup (table + transceiver builds, measurement synthesis) is
    // timed separately: with config.table_cache set, the operator share
    // of it amortises across runs and the split shows exactly that.
    Timer stage_timer;
    Scenario scene(stage_config, eps_stage);
    const double setup_seconds = stage_timer.seconds();
    const Grid& grid = scene.grid();
    const double k2 = grid.k0() * grid.k0();

    // Initial guess: previous stage's permittivity, resampled.
    cvec contrast_guess;
    if (!eps_guess.empty()) {
      FFW_CHECK_MSG(prev_nx <= nx, "stages must run coarse to fine");
      cvec eps_up = eps_guess;
      for (int cur = prev_nx; cur < nx; cur *= 2) {
        eps_up = upsample2(eps_up, cur);
      }
      contrast_guess.resize(eps_up.size());
      for (std::size_t i = 0; i < eps_up.size(); ++i)
        contrast_guess[i] = k2 * eps_up[i];
    }

    DbimOptions opts;
    opts.max_iterations = stage.dbim_iterations;
    opts.table_cache = config.table_cache;
    opts.incident_panel = scene.incident_panel();
    const DbimResult res = dbim_reconstruct(
        scene.engine(), scene.transceivers(), scene.measurements(), opts,
        config.forward, contrast_guess);

    out.stage_residuals.push_back(res.history.relative_residual);
    out.stage_rmse.push_back(image_rmse(res.contrast, scene.true_contrast()));
    out.stage_setup_seconds.push_back(setup_seconds);
    out.stage_seconds.push_back(stage_timer.seconds());

    eps_guess.resize(res.contrast.size());
    for (std::size_t i = 0; i < res.contrast.size(); ++i)
      eps_guess[i] = res.contrast[i] / k2;
    prev_nx = nx;
  }

  // Bring the last stage's permittivity to the final grid if needed.
  for (int cur = prev_nx; cur < config.nx; cur *= 2) {
    eps_guess = upsample2(eps_guess, cur);
  }
  out.permittivity = std::move(eps_guess);
  return out;
}

}  // namespace ffw
