#include "dbim/gauss_newton.hpp"

#include <cmath>

#include "linalg/kernels.hpp"

namespace ffw {

DbimResult gauss_newton_reconstruct(MlfmaEngine& engine,
                                    const Transceivers& trx,
                                    const CMatrix& measured,
                                    const GaussNewtonOptions& opts,
                                    const BicgstabOptions& fw_opts) {
  DbimWorkspace ws(engine, trx, measured, fw_opts);
  const std::size_t n = ws.num_pixels();
  const int t_count = ws.num_illuminations();

  DbimResult out;
  out.contrast.assign(n, cplx{});

  // Residuals per illumination (kept for the whole outer iteration).
  std::vector<cvec> b(static_cast<std::size_t>(t_count),
                      cvec(measured.rows()));

  // J^H J d as a matrix-free operator over the current linearisation
  // point (the workspace holds phi_b per illumination after the
  // residual pass).
  auto apply_normal = [&](ccspan d, cspan outv) {
    std::fill(outv.begin(), outv.end(), cplx{});
    cvec fd(measured.rows()), g(n);
    for (int t = 0; t < t_count; ++t) {
      FrechetOperator f(ws.solver(), trx, ws.background_field(t));
      f.apply(d, fd);
      f.apply_adjoint(fd, g);
      axpy(cplx{1.0}, g, outv);
    }
    if (opts.tikhonov > 0.0) axpy(cplx{opts.tikhonov}, d, outv);
  };

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ws.set_background(out.contrast);
    double cost = 0.0;
    for (int t = 0; t < t_count; ++t) {
      cost += ws.residual_pass(t, b[static_cast<std::size_t>(t)]);
    }
    const double relres = std::sqrt(cost / ws.measurement_norm2());
    out.history.relative_residual.push_back(relres);
    if (opts.progress) opts.progress(iter, relres);
    if (opts.residual_tol > 0.0 && relres < opts.residual_tol) break;

    // rhs = -J^H b (the Gauss-Newton gradient direction).
    cvec rhs(n, cplx{}), g(n);
    for (int t = 0; t < t_count; ++t) {
      FrechetOperator f(ws.solver(), trx, ws.background_field(t));
      f.apply_adjoint(b[static_cast<std::size_t>(t)], g);
      axpy(cplx{-1.0}, g, rhs);
    }

    // CGNR on (J^H J + lambda I) d = rhs.
    cvec d(n, cplx{}), r(rhs.begin(), rhs.end()), p(rhs.begin(), rhs.end()),
        ap(n);
    double rr = std::pow(nrm2(r), 2);
    if (rr == 0.0) break;
    for (int it = 0; it < opts.cg_iterations; ++it) {
      apply_normal(p, ap);
      const cplx pap = cdot(p, ap);
      if (std::abs(pap) == 0.0) break;
      const cplx alpha = rr / pap;
      axpy(alpha, p, d);
      axpy(-alpha, ap, r);
      const double rr_new = std::pow(nrm2(r), 2);
      if (rr_new < 1e-24) break;
      xpay(r, cplx{rr_new / rr}, p);
      rr = rr_new;
    }
    axpy(cplx{1.0}, d, out.contrast);
  }

  out.history.forward_solves = ws.solver().stats().solves;
  out.history.operator_applications = ws.solver().stats().operator_applications;
  return out;
}

}  // namespace ffw
