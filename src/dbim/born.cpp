#include "dbim/born.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/kernels.hpp"

namespace ffw {

BornResult born_reconstruct(const Grid& grid, const Transceivers& trx,
                            const CMatrix& measured, const BornOptions& opts) {
  const std::size_t n = grid.num_pixels();
  const int t_count = trx.num_transmitters();
  const std::size_t r_count = measured.rows();
  FFW_CHECK(measured.cols() == static_cast<std::size_t>(t_count));

  // Precompute incident fields (columns).
  CMatrix inc(n, static_cast<std::size_t>(t_count));
  for (int t = 0; t < t_count; ++t) {
    const cvec f = trx.incident_field(t);
    copy(f, inc.col(static_cast<std::size_t>(t)));
  }

  // A o: stacked over t; A^H A o computed illumination by illumination.
  auto apply_normal = [&](ccspan o, cspan out) {
    std::fill(out.begin(), out.end(), cplx{});
    cvec v(n), r(r_count), g(n);
    for (int t = 0; t < t_count; ++t) {
      const auto it = inc.col(static_cast<std::size_t>(t));
      diag_mul(ccspan{it.data(), n}, o, v);
      trx.apply_gr(v, r);
      trx.apply_gr_herm(r, g);
      for (std::size_t i = 0; i < n; ++i)
        out[i] += std::conj(it[i]) * g[i];
    }
  };

  // b = A^H phi_mea.
  cvec b(n, cplx{});
  {
    cvec g(n);
    for (int t = 0; t < t_count; ++t) {
      trx.apply_gr_herm(measured.col(static_cast<std::size_t>(t)), g);
      const auto it = inc.col(static_cast<std::size_t>(t));
      for (std::size_t i = 0; i < n; ++i) b[i] += std::conj(it[i]) * g[i];
    }
  }

  double meas_norm2 = 0.0;
  for (std::size_t t = 0; t < measured.cols(); ++t) {
    const double nn = nrm2(measured.col(t));
    meas_norm2 += nn * nn;
  }

  // CG on A^H A o = b (Hermitian positive semidefinite).
  BornResult out;
  out.contrast.assign(n, cplx{});
  cvec r(b.begin(), b.end()), p(b.begin(), b.end()), ap(n);
  double rr = std::pow(nrm2(r), 2);
  const double b0 = std::sqrt(rr);
  auto data_residual = [&](ccspan o) {
    double c = 0.0;
    cvec v(n), s(r_count);
    for (int t = 0; t < t_count; ++t) {
      const auto it = inc.col(static_cast<std::size_t>(t));
      diag_mul(ccspan{it.data(), n}, o, v);
      trx.apply_gr(v, s);
      sub(s, measured.col(static_cast<std::size_t>(t)), s);
      c += std::pow(nrm2(s), 2);
    }
    return std::sqrt(c / meas_norm2);
  };

  for (int it = 0; it < opts.max_iterations; ++it) {
    apply_normal(p, ap);
    const cplx pap = cdot(p, ap);
    if (std::abs(pap) == 0.0) break;
    const cplx alpha = rr / pap;
    axpy(alpha, p, out.contrast);
    axpy(-alpha, ap, r);
    const double rr_new = std::pow(nrm2(r), 2);
    out.relative_residual.push_back(data_residual(out.contrast));
    if (std::sqrt(rr_new) / b0 < opts.tol) break;
    xpay(r, cplx{rr_new / rr}, p);
    rr = rr_new;
  }
  return out;
}

}  // namespace ffw
