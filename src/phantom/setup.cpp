#include "phantom/setup.hpp"

#include "linalg/kernels.hpp"

namespace ffw {

CMatrix synthesize_measurements(ForwardSolver& solver, const Transceivers& trx,
                                ccspan contrast, double noise_std,
                                std::uint64_t noise_seed) {
  const std::size_t n = contrast.size();
  const int t_count = trx.num_transmitters();
  const int r_count = trx.num_receivers();
  solver.set_contrast(contrast);
  CMatrix measured(static_cast<std::size_t>(r_count),
                   static_cast<std::size_t>(t_count));
  cvec phi(n), ophi(n);
  Rng rng(noise_seed);
  for (int t = 0; t < t_count; ++t) {
    const cvec inc = trx.incident_field(t);
    copy(inc, phi);  // incident field as the initial guess
    const BicgstabResult res = solver.solve(inc, phi);
    FFW_CHECK_MSG(res.converged, "measurement synthesis forward solve failed");
    diag_mul(contrast, phi, ophi);
    trx.apply_gr(ophi, measured.col(static_cast<std::size_t>(t)));
    if (noise_std > 0.0) {
      // Additive complex Gaussian noise scaled to the per-illumination
      // RMS signal level.
      auto col = measured.col(static_cast<std::size_t>(t));
      const double rms =
          nrm2(col) / std::sqrt(static_cast<double>(r_count));
      for (auto& v : col) {
        v += noise_std * rms * 0.70710678118654752 * rng.cnormal();
      }
    }
  }
  return measured;
}

Scenario::Scenario(const ScenarioConfig& config, cvec true_permittivity)
    : config_(config), grid_(config.nx) {
  FFW_CHECK(true_permittivity.size() == grid_.num_pixels());
  const double radius = config.ring_radius_factor * grid_.domain();
  std::vector<Vec2> tx = ring_positions(config.num_transmitters, radius,
                                        config.tx_angle_begin,
                                        config.tx_angle_end);
  std::vector<Vec2> rx = ring_positions(config.num_receivers, radius,
                                        config.rx_angle_begin,
                                        config.rx_angle_end);
  if (config.table_cache != nullptr) {
    // Shared path: scenes over the same (grid, leaf, mlfma, geometry)
    // configuration reference one immutable table artifact each.
    tables_ = config.table_cache->mlfma_tables(grid_, config.leaf_pixel_side,
                                               config.mlfma);
    engine_ = std::make_unique<MlfmaEngine>(tables_);
    trx_tables_ = config.table_cache->transceiver_tables(grid_, tx, rx);
    trx_ = &trx_tables_->trx;
  } else {
    tree_ = std::make_unique<QuadTree>(grid_, config.leaf_pixel_side);
    engine_ = std::make_unique<MlfmaEngine>(*tree_, config.mlfma);
    trx_owned_ = std::make_unique<Transceivers>(grid_, std::move(tx),
                                                std::move(rx));
    trx_ = trx_owned_.get();
  }
  true_contrast_ = contrast_from_permittivity(grid_, true_permittivity);

  ForwardSolver solver(*engine_, config.forward);
  measured_ = synthesize_measurements(solver, *trx_, true_contrast_,
                                      config.measurement_noise,
                                      config.noise_seed);
}

}  // namespace ffw
