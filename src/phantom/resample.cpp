#include "phantom/resample.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ffw {

cvec downsample2(ccspan values, int nx) {
  FFW_CHECK(nx % 2 == 0 &&
            values.size() == static_cast<std::size_t>(nx) * nx);
  const int half = nx / 2;
  cvec out(static_cast<std::size_t>(half) * half);
  for (int iy = 0; iy < half; ++iy) {
    for (int ix = 0; ix < half; ++ix) {
      const std::size_t base =
          static_cast<std::size_t>(2 * iy) * nx + 2 * ix;
      out[static_cast<std::size_t>(iy) * half + ix] =
          0.25 * (values[base] + values[base + 1] +
                  values[base + nx] + values[base + nx + 1]);
    }
  }
  return out;
}

cvec upsample2(ccspan values, int nx_coarse) {
  FFW_CHECK(values.size() ==
            static_cast<std::size_t>(nx_coarse) * nx_coarse);
  const int nx = 2 * nx_coarse;
  cvec out(static_cast<std::size_t>(nx) * nx);
  auto at = [&](int ix, int iy) {
    ix = std::clamp(ix, 0, nx_coarse - 1);
    iy = std::clamp(iy, 0, nx_coarse - 1);
    return values[static_cast<std::size_t>(iy) * nx_coarse + ix];
  };
  for (int iy = 0; iy < nx; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      // Fine pixel centre relative to the coarse grid: coarse index and
      // the +-1/4-cell offset direction.
      const int cx = ix / 2, cy = iy / 2;
      const int dx = (ix % 2 == 0) ? -1 : 1;
      const int dy = (iy % 2 == 0) ? -1 : 1;
      out[static_cast<std::size_t>(iy) * nx + ix] =
          (9.0 / 16.0) * at(cx, cy) + (3.0 / 16.0) * at(cx + dx, cy) +
          (3.0 / 16.0) * at(cx, cy + dy) +
          (1.0 / 16.0) * at(cx + dx, cy + dy);
    }
  }
  return out;
}

}  // namespace ffw
