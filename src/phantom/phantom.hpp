// Numerical phantoms (true objects) for reconstruction experiments.
//
// All generators return the *relative permittivity contrast*
// delta_eps_r(r) per pixel (natural order); convert to the solver's
// contrast function O(r) = k0^2 * delta_eps_r(r) with
// contrast_from_permittivity().
//
//  * shepp_logan(): the classic head-section benchmark of paper Fig. 13
//    (Shepp & Logan 1974), 10 ellipses, values rescaled to a requested
//    maximum contrast (the paper uses 0.02).
//  * annulus(): the high-contrast homogeneous ring of paper Fig. 1.
//  * disks(): a configurable set of homogeneous cylinders (used for the
//    limited-angle study of Fig. 2 and for Mie-series validation).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "grid/grid.hpp"

namespace ffw {

/// O = k0^2 * delta_eps (elementwise).
cvec contrast_from_permittivity(const Grid& grid, ccspan delta_eps);

/// Shepp-Logan head phantom scaled to `fill` of the domain half-width,
/// with the peak |contrast| normalised to `max_contrast`.
cvec shepp_logan(const Grid& grid, double max_contrast, double fill = 0.9);

/// Homogeneous annulus: contrast inside r_in <= r < r_out, 0 elsewhere.
cvec annulus(const Grid& grid, double r_in, double r_out, cplx contrast);

struct Disk {
  Vec2 center;
  double radius = 0.0;
  cplx contrast;
};

/// Union of homogeneous disks (later disks overwrite earlier ones).
cvec disks(const Grid& grid, const std::vector<Disk>& list);

/// Smooth Gaussian blob: c * exp(-|r - c0|^2 / (2 sigma^2)).
cvec gaussian_blob(const Grid& grid, Vec2 center, double sigma, cplx peak);

/// Root-mean-square error between two pixel maps, relative to the RMS of
/// the reference: the image-quality metric for Figs. 1, 2, 13.
double image_rmse(ccspan reconstructed, ccspan reference);

}  // namespace ffw
