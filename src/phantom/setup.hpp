// Experiment scenario assembly: imaging geometry + synthetic
// measurements (paper Fig. 3 / Fig. 4 inputs).
//
// The paper's measured field phi^mea comes from physical receivers; we
// synthesise it by running the forward solver on the *true* phantom
// (the standard inverse-crime-aware practice: the synthesis can use a
// different accuracy / solver path than the reconstruction, and optional
// additive noise).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "forward/forward.hpp"
#include "greens/transceivers.hpp"
#include "linalg/cmatrix.hpp"
#include "phantom/phantom.hpp"
#include "service/table_cache.hpp"

namespace ffw {

struct ScenarioConfig {
  int nx = 64;                   // pixels per side (multiple of 8, /8 pow2)
  int leaf_pixel_side = 8;       // MLFMA leaf size (QuadTree constraint)
  int num_transmitters = 16;
  int num_receivers = 32;
  double ring_radius_factor = 1.0;  // ring radius = factor * D
  // Arc limits for limited-angle studies (paper Fig. 2); full ring by
  // default.
  double tx_angle_begin = 0.0, tx_angle_end = 2.0 * pi;
  double rx_angle_begin = 0.0, rx_angle_end = 2.0 * pi;
  MlfmaParams mlfma;             // reconstruction-side accuracy
  BicgstabOptions forward;       // paper: tol 1e-4
  double measurement_noise = 0.0;  // additive Gaussian noise std (relative)
  std::uint64_t noise_seed = 42;
  /// Shared operator-table cache (borrowed, may be null). When set, the
  /// scenario obtains its MLFMA tables and transceiver operators from
  /// the cache — scenes sharing a configuration share one artifact —
  /// and exposes the cached incident panel for DbimOptions.
  OperatorTableCache* table_cache = nullptr;
};

/// A ready-to-reconstruct scene: geometry, operators, true object, and
/// the synthetic measured scattered field (R x T).
class Scenario {
 public:
  Scenario(const ScenarioConfig& config, cvec true_permittivity);

  const Grid& grid() const { return grid_; }
  const QuadTree& tree() const { return engine_->tree(); }
  MlfmaEngine& engine() { return *engine_; }
  const Transceivers& transceivers() const { return *trx_; }
  const ScenarioConfig& config() const { return config_; }

  /// Shared MLFMA tables (null when built without a cache).
  const std::shared_ptr<const OperatorTables>& tables() const {
    return tables_;
  }
  /// Precomputed incident panel from the cached transceiver artifact
  /// (empty without a cache) — wire into DbimOptions::incident_panel.
  ccspan incident_panel() const {
    return trx_tables_ ? trx_tables_->incident() : ccspan{};
  }

  /// True contrast O = k0^2 * delta_eps (natural order).
  ccspan true_contrast() const { return true_contrast_; }

  /// Measured scattered field, column t = receivers' data for
  /// transmitter t.
  const CMatrix& measurements() const { return measured_; }

 private:
  ScenarioConfig config_;
  Grid grid_;
  // Cached path: shared artifacts. Private path: owned tree + trx.
  std::shared_ptr<const OperatorTables> tables_;
  std::shared_ptr<const TransceiverTables> trx_tables_;
  std::unique_ptr<QuadTree> tree_;
  std::unique_ptr<MlfmaEngine> engine_;
  std::unique_ptr<Transceivers> trx_owned_;
  const Transceivers* trx_ = nullptr;
  cvec true_contrast_;
  CMatrix measured_;
};

/// Synthesise phi^mea for every transmitter: solve the forward problem
/// on `contrast` and evaluate G_R (O .* phi) at the receivers.
CMatrix synthesize_measurements(ForwardSolver& solver, const Transceivers& trx,
                                ccspan contrast, double noise_std = 0.0,
                                std::uint64_t noise_seed = 42);

}  // namespace ffw
