#include "phantom/phantom.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ffw {

cvec contrast_from_permittivity(const Grid& grid, ccspan delta_eps) {
  const double k2 = grid.k0() * grid.k0();
  cvec out(delta_eps.size());
  for (std::size_t i = 0; i < delta_eps.size(); ++i) out[i] = k2 * delta_eps[i];
  return out;
}

namespace {
struct Ellipse {
  double value, a, b, x0, y0, phi_deg;
};

// Shepp & Logan (1974) parameters on the unit square [-1, 1]^2.
constexpr Ellipse kSheppLogan[] = {
    {2.0, 0.69, 0.92, 0.0, 0.0, 0.0},
    {-0.98, 0.6624, 0.8740, 0.0, -0.0184, 0.0},
    {-0.02, 0.1100, 0.3100, 0.22, 0.0, -18.0},
    {-0.02, 0.1600, 0.4100, -0.22, 0.0, 18.0},
    {0.01, 0.2100, 0.2500, 0.0, 0.35, 0.0},
    {0.01, 0.0460, 0.0460, 0.0, 0.10, 0.0},
    {0.01, 0.0460, 0.0460, 0.0, -0.10, 0.0},
    {0.01, 0.0460, 0.0230, -0.08, -0.605, 0.0},
    {0.01, 0.0230, 0.0230, 0.0, -0.606, 0.0},
    {0.01, 0.0230, 0.0460, 0.06, -0.605, 0.0},
};
}  // namespace

cvec shepp_logan(const Grid& grid, double max_contrast, double fill) {
  FFW_CHECK(fill > 0.0 && fill <= 1.0);
  const int nx = grid.nx();
  const double scale = fill * 0.5 * grid.domain();
  cvec out(grid.num_pixels(), cplx{});
  double peak = 0.0;
  for (int iy = 0; iy < nx; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      const double x = p.x / scale, y = p.y / scale;
      double v = 0.0;
      for (const Ellipse& e : kSheppLogan) {
        const double phi = e.phi_deg * pi / 180.0;
        const double c = std::cos(phi), s = std::sin(phi);
        const double xr = c * (x - e.x0) + s * (y - e.y0);
        const double yr = -s * (x - e.x0) + c * (y - e.y0);
        if ((xr * xr) / (e.a * e.a) + (yr * yr) / (e.b * e.b) <= 1.0)
          v += e.value;
      }
      out[grid.pixel_index(ix, iy)] = v;
      peak = std::max(peak, std::fabs(v));
    }
  }
  if (peak > 0.0) {
    const double rescale = max_contrast / peak;
    for (auto& v : out) v *= rescale;
  }
  return out;
}

cvec annulus(const Grid& grid, double r_in, double r_out, cplx contrast) {
  FFW_CHECK(0.0 <= r_in && r_in < r_out);
  const int nx = grid.nx();
  cvec out(grid.num_pixels(), cplx{});
  for (int iy = 0; iy < nx; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const double r = norm(grid.pixel_center(ix, iy));
      if (r >= r_in && r < r_out) out[grid.pixel_index(ix, iy)] = contrast;
    }
  }
  return out;
}

cvec disks(const Grid& grid, const std::vector<Disk>& list) {
  const int nx = grid.nx();
  cvec out(grid.num_pixels(), cplx{});
  for (int iy = 0; iy < nx; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      for (const Disk& d : list) {
        if (norm(p - d.center) <= d.radius)
          out[grid.pixel_index(ix, iy)] = d.contrast;
      }
    }
  }
  return out;
}

cvec gaussian_blob(const Grid& grid, Vec2 center, double sigma, cplx peak) {
  FFW_CHECK(sigma > 0.0);
  const int nx = grid.nx();
  cvec out(grid.num_pixels());
  for (int iy = 0; iy < nx; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const Vec2 p = grid.pixel_center(ix, iy);
      const double d2 = dot(p - center, p - center);
      out[grid.pixel_index(ix, iy)] = peak * std::exp(-d2 / (2 * sigma * sigma));
    }
  }
  return out;
}

double image_rmse(ccspan reconstructed, ccspan reference) {
  FFW_CHECK(reconstructed.size() == reference.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    num += std::norm(reconstructed[i] - reference[i]);
    den += std::norm(reference[i]);
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace ffw
