// Pixel-map resampling between grids of different resolution (the same
// physical domain sampled at different frequencies). Used by the
// multi-frequency DBIM extension: a reconstruction on a coarse
// (low-frequency) grid seeds the next, finer stage.
#pragma once

#include "common/types.hpp"
#include "grid/grid.hpp"

namespace ffw {

/// 2x downsample by 2x2 box averaging. nx must be even; the output is
/// (nx/2) x (nx/2), row-major like the input.
cvec downsample2(ccspan values, int nx);

/// 2x upsample with bilinear interpolation (cell-centred grids: the
/// fine pixel centres sit at +-1/4 of a coarse cell, so the weights are
/// 9/16, 3/16, 3/16, 1/16; edges clamp).
cvec upsample2(ccspan values, int nx_coarse);

}  // namespace ffw
