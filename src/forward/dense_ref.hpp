// Dense (LU-based) reference forward solver — the O(N^3) direct approach
// the paper's Sec. I calls prohibitive at scale. Used to validate the
// MLFMA+BiCGStab path on small problems and as the exact oracle for
// Frechet-derivative tests.
#pragma once

#include <memory>

#include "grid/grid.hpp"
#include "linalg/lu.hpp"

namespace ffw {

class DenseForwardSolver {
 public:
  /// Factors [I - G0 diag(contrast)] once; O(N^3).
  DenseForwardSolver(const Grid& grid, ccspan contrast);

  /// phi = [I - G0 O]^{-1} rhs (natural order).
  cvec solve(ccspan rhs) const;

  /// psi = [I - G0 O]^{-H} rhs.
  cvec solve_adjoint(ccspan rhs) const;

  const Grid& grid() const { return *grid_; }

 private:
  const Grid* grid_;
  std::unique_ptr<LuFactors> lu_;
};

}  // namespace ffw
