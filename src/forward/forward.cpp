#include "forward/forward.hpp"

#include "common/timer.hpp"
#include "greens/greens.hpp"
#include "linalg/kernels.hpp"

namespace ffw {

ForwardSolver::ForwardSolver(MlfmaEngine& engine, const BicgstabOptions& opts)
    : engine_(&engine), opts_(opts) {
  const std::size_t n = engine.tree().grid().num_pixels();
  contrast_nat_.assign(n, cplx{});
  contrast_clu_.assign(n, cplx{});
  work_.assign(n, cplx{});
}

void ForwardSolver::set_contrast(ccspan contrast) {
  FFW_CHECK(contrast.size() == contrast_nat_.size());
  copy(contrast, contrast_nat_);
  engine_->tree().to_cluster_order(contrast, contrast_clu_);
  refresh_preconditioner();
}

void ForwardSolver::set_jacobi_preconditioner(bool enable) {
  FFW_CHECK_MSG(!(enable && use_near_),
                "diagonal Jacobi and near-field block preconditioners are "
                "mutually exclusive");
  use_jacobi_ = enable;
  refresh_preconditioner();
}

void ForwardSolver::set_near_preconditioner(bool enable, Precision storage) {
  FFW_CHECK_MSG(!(enable && use_jacobi_),
                "diagonal Jacobi and near-field block preconditioners are "
                "mutually exclusive");
  use_near_ = enable;
  near_storage_ = storage;
  refresh_preconditioner();
}

void ForwardSolver::refresh_preconditioner() {
  if (use_near_) {
    FFW_CHECK_MSG(engine_->nearfield().precision() == Precision::kDouble,
                  "near-field block preconditioner needs the fp64 reference "
                  "engine's near-field tables");
    Timer t;
    near_precond_ = std::make_unique<NearFieldBlockJacobi>(
        engine_->nearfield().type(4), ccspan{contrast_clu_}, near_storage_);
    stats_.precond_setup_seconds += t.seconds();
  } else {
    near_precond_.reset();
  }
  if (!use_jacobi_) {
    minv_clu_.clear();
    return;
  }
  const cplx g_self = self_term(engine_->tree().grid());
  minv_clu_.resize(contrast_clu_.size());
  for (std::size_t i = 0; i < contrast_clu_.size(); ++i) {
    const cplx d = 1.0 - g_self * contrast_clu_[i];
    FFW_CHECK_MSG(std::abs(d) > 1e-12, "singular Jacobi diagonal");
    minv_clu_[i] = 1.0 / d;
  }
}

PrecondContext ForwardSolver::precond_ctx(std::size_t nrhs, bool herm) const {
  if (near_precond_ == nullptr) return {};
  return PrecondContext{near_precond_.get(), block_layout(nrhs), herm};
}

void ForwardSolver::op_forward(ccspan x, cspan y) {
  // y = x - G0 (O .* x), cluster order. With Jacobi preconditioning the
  // operand is M^{-1} x (right preconditioning).
  if (use_jacobi_) {
    cvec xm(x.size());
    diag_mul(minv_clu_, x, xm);
    diag_mul(contrast_clu_, ccspan{xm}, work_);
    engine_->apply(work_, y);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = xm[i] - y[i];
    return;
  }
  diag_mul(contrast_clu_, x, work_);
  engine_->apply(work_, y);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x[i] - y[i];
}

void ForwardSolver::op_adjoint(ccspan x, cspan y) {
  // y = x - conj(O) .* (G0^H x), cluster order.
  engine_->apply_herm(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] = x[i] - std::conj(contrast_clu_[i]) * y[i];
}

BlockLayout ForwardSolver::block_layout(std::size_t nrhs) const {
  const QuadTree& tree = engine_->tree();
  return BlockLayout{static_cast<std::size_t>(tree.pixels_per_leaf()), nrhs,
                     tree.num_leaves()};
}

void ForwardSolver::op_forward_block(ccspan x, cspan y,
                                     const BlockLayout& lo) {
  // Blocked y = x - G0 (O .* x): the diagonal contrast is indexed per
  // cluster pixel and reused across all columns of a panel.
  if (use_jacobi_) {
    if (block_work_.size() < lo.size()) block_work_.resize(lo.size());
    cspan work{block_work_.data(), lo.size()};
    cvec xm(lo.size());
    block_diag_mul(lo, minv_clu_, x, xm);
    block_diag_mul(lo, contrast_clu_, ccspan{xm}, work);
    engine_->apply_block(work, y, lo.nrhs);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = xm[i] - y[i];
    return;
  }
  op_forward_block_on(*engine_, x, y, lo);
}

void ForwardSolver::op_forward_block_on(MlfmaEngine& eng, ccspan x, cspan y,
                                        const BlockLayout& lo) {
  if (block_work_.size() < lo.size()) block_work_.resize(lo.size());
  cspan work{block_work_.data(), lo.size()};
  block_diag_mul(lo, contrast_clu_, x, work);
  eng.apply_block(work, y, lo.nrhs);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x[i] - y[i];
}

void ForwardSolver::set_mixed_engine(MlfmaEngine* mixed) {
  if (mixed != nullptr) {
    FFW_CHECK_MSG(mixed->tree().grid().num_pixels() ==
                      engine_->tree().grid().num_pixels(),
                  "mixed engine must cover the same grid");
  }
  mixed_ = mixed;
}

RefinedResult ForwardSolver::solve_block_refined(ccspan rhs, cspan phi,
                                                 std::size_t nrhs,
                                                 const RefinedOptions& opts) {
  FFW_CHECK_MSG(mixed_ != nullptr,
                "solve_block_refined needs set_mixed_engine first");
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(rhs.size() == n * nrhs && phi.size() == n * nrhs);
  const QuadTree& tree = engine_->tree();
  const BlockLayout lo = block_layout(nrhs);
  cvec b(lo.size()), x(lo.size());
  block_pack_natural(lo, tree.perm(), rhs, b);
  block_pack_natural(lo, tree.perm(), ccspan{phi.data(), phi.size()}, x);
  const std::uint64_t before = engine_->phase_times().applications +
                               mixed_->phase_times().applications;
  const RefinedResult res = refined_block_bicgstab(
      [this, &lo](ccspan in, cspan out) {
        op_forward_block_on(*engine_, in, out, lo);
      },
      [this, &lo](ccspan in, cspan out) {
        op_forward_block_on(*mixed_, in, out, lo);
      },
      b, x, lo, opts, {}, precond_ctx(nrhs, /*herm=*/false));
  stats_.solves += nrhs;
  stats_.bicgs_iterations += res.inner_iterations + res.fallback_iterations;
  stats_.operator_applications += engine_->phase_times().applications +
                               mixed_->phase_times().applications - before;
  block_unpack_natural(lo, tree.perm(), x, phi);
  return res;
}

RefinedResult ForwardSolver::solve_adjoint_block_refined(
    ccspan rhs, cspan psi, std::size_t nrhs, const RefinedOptions& opts) {
  FFW_CHECK_MSG(mixed_ != nullptr,
                "solve_adjoint_block_refined needs set_mixed_engine first");
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(rhs.size() == n * nrhs && psi.size() == n * nrhs);
  const QuadTree& tree = engine_->tree();
  const BlockLayout lo = block_layout(nrhs);
  cvec b(lo.size()), x(lo.size());
  block_pack_natural(lo, tree.perm(), rhs, b);
  block_pack_natural(lo, tree.perm(), ccspan{psi.data(), psi.size()}, x);
  const std::uint64_t before = engine_->phase_times().applications +
                               mixed_->phase_times().applications;
  const RefinedResult res = refined_block_bicgstab(
      [this, &lo](ccspan in, cspan out) {
        op_adjoint_block_on(*engine_, in, out, lo);
      },
      [this, &lo](ccspan in, cspan out) {
        op_adjoint_block_on(*mixed_, in, out, lo);
      },
      b, x, lo, opts, {}, precond_ctx(nrhs, /*herm=*/true));
  stats_.solves += nrhs;
  stats_.bicgs_iterations += res.inner_iterations + res.fallback_iterations;
  stats_.operator_applications += engine_->phase_times().applications +
                               mixed_->phase_times().applications - before;
  block_unpack_natural(lo, tree.perm(), x, psi);
  return res;
}

void ForwardSolver::op_adjoint_block(ccspan x, cspan y,
                                     const BlockLayout& lo) {
  op_adjoint_block_on(*engine_, x, y, lo);
}

void ForwardSolver::op_adjoint_block_on(MlfmaEngine& eng, ccspan x, cspan y,
                                        const BlockLayout& lo) {
  eng.apply_herm_block(x, y, lo.nrhs);
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const cplx* dp = contrast_clu_.data() + c * lo.panel;
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      const cplx* xp = x.data() + lo.at(c, r);
      cplx* yp = y.data() + lo.at(c, r);
      for (std::size_t i = 0; i < lo.panel; ++i)
        yp[i] = xp[i] - std::conj(dp[i]) * yp[i];
    }
  }
}

void ForwardSolver::record_block_stats(const BlockBicgstabResult& res,
                                       std::uint64_t applications_before) {
  stats_.solves += res.rhs.size();
  stats_.bicgs_iterations += res.total_iterations();
  stats_.operator_applications +=
      engine_->phase_times().applications - applications_before;
  for (const auto& r : res.rhs) {
    stats_.per_solve_iterations.push_back(
        static_cast<std::uint16_t>(r.iterations));
  }
}

BlockBicgstabResult ForwardSolver::solve_block(ccspan rhs, cspan phi,
                                               std::size_t nrhs) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(rhs.size() == n * nrhs && phi.size() == n * nrhs);
  const QuadTree& tree = engine_->tree();
  const BlockLayout lo = block_layout(nrhs);
  cvec b(lo.size()), x(lo.size());
  block_pack_natural(lo, tree.perm(), rhs, b);
  block_pack_natural(lo, tree.perm(), ccspan{phi.data(), phi.size()}, x);
  const std::uint64_t before = engine_->phase_times().applications;
  if (use_jacobi_) {
    // The Krylov unknown is y = M x per column; convert the initial
    // guess in and the solution out.
    for (std::size_t c = 0; c < lo.npanels; ++c) {
      const cplx* mp = minv_clu_.data() + c * lo.panel;
      for (std::size_t r = 0; r < nrhs; ++r) {
        cplx* xp = x.data() + lo.at(c, r);
        for (std::size_t i = 0; i < lo.panel; ++i) xp[i] /= mp[i];
      }
    }
  }
  const BlockBicgstabResult res = block_bicgstab(
      [this, &lo](ccspan in, cspan out) { op_forward_block(in, out, lo); },
      b, x, lo, opts_, {}, precond_ctx(nrhs, /*herm=*/false));
  if (use_jacobi_) block_diag_mul(lo, minv_clu_, cvec(x.begin(), x.end()), x);
  record_block_stats(res, before);
  block_unpack_natural(lo, tree.perm(), x, phi);
  return res;
}

BlockBicgstabResult ForwardSolver::solve_adjoint_block(ccspan rhs, cspan psi,
                                                       std::size_t nrhs) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(rhs.size() == n * nrhs && psi.size() == n * nrhs);
  const QuadTree& tree = engine_->tree();
  const BlockLayout lo = block_layout(nrhs);
  cvec b(lo.size()), x(lo.size());
  block_pack_natural(lo, tree.perm(), rhs, b);
  block_pack_natural(lo, tree.perm(), ccspan{psi.data(), psi.size()}, x);
  const std::uint64_t before = engine_->phase_times().applications;
  const BlockBicgstabResult res = block_bicgstab(
      [this, &lo](ccspan in, cspan out) { op_adjoint_block(in, out, lo); },
      b, x, lo, opts_, {}, precond_ctx(nrhs, /*herm=*/true));
  record_block_stats(res, before);
  block_unpack_natural(lo, tree.perm(), x, psi);
  return res;
}

BicgstabResult ForwardSolver::solve(ccspan rhs, cspan phi) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(rhs.size() == n && phi.size() == n);
  const QuadTree& tree = engine_->tree();
  cvec b(n), x(n);
  tree.to_cluster_order(rhs, b);
  tree.to_cluster_order(ccspan{phi.data(), n}, x);
  const std::uint64_t before = engine_->phase_times().applications;
  if (use_jacobi_) {
    // The Krylov unknown is y = M x; convert the initial guess in and
    // the solution out.
    for (std::size_t i = 0; i < x.size(); ++i) x[i] /= minv_clu_[i];
  }
  const BicgstabResult res =
      bicgstab([this](ccspan in, cspan out) { op_forward(in, out); }, b, x,
               opts_, {}, precond_ctx(1, /*herm=*/false));
  if (use_jacobi_) diag_mul(minv_clu_, cvec(x.begin(), x.end()), x);
  ++stats_.solves;
  stats_.bicgs_iterations += static_cast<std::uint64_t>(res.iterations);
  stats_.operator_applications += engine_->phase_times().applications - before;
  stats_.per_solve_iterations.push_back(
      static_cast<std::uint16_t>(res.iterations));
  tree.to_natural_order(x, phi);
  return res;
}

BicgstabResult ForwardSolver::solve_adjoint(ccspan rhs, cspan psi) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(rhs.size() == n && psi.size() == n);
  const QuadTree& tree = engine_->tree();
  cvec b(n), x(n);
  tree.to_cluster_order(rhs, b);
  tree.to_cluster_order(ccspan{psi.data(), n}, x);
  const std::uint64_t before = engine_->phase_times().applications;
  const BicgstabResult res =
      bicgstab([this](ccspan in, cspan out) { op_adjoint(in, out); }, b, x,
               opts_, {}, precond_ctx(1, /*herm=*/true));
  ++stats_.solves;
  stats_.bicgs_iterations += static_cast<std::uint64_t>(res.iterations);
  stats_.operator_applications += engine_->phase_times().applications - before;
  stats_.per_solve_iterations.push_back(
      static_cast<std::uint16_t>(res.iterations));
  tree.to_natural_order(x, psi);
  return res;
}

void ForwardSolver::apply_system(ccspan x, cspan y) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(x.size() == n && y.size() == n);
  const QuadTree& tree = engine_->tree();
  cvec xc(n), yc(n);
  tree.to_cluster_order(x, xc);
  op_forward(xc, yc);
  tree.to_natural_order(yc, y);
}

void ForwardSolver::apply_g0_contrast(ccspan x, cspan y) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(x.size() == n && y.size() == n);
  const QuadTree& tree = engine_->tree();
  cvec xc(n), yc(n);
  tree.to_cluster_order(x, xc);
  diag_mul(contrast_clu_, xc, work_);
  engine_->apply(work_, yc);
  tree.to_natural_order(yc, y);
}

void ForwardSolver::apply_g0_block(ccspan x, cspan y, std::size_t nrhs) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(x.size() == n * nrhs && y.size() == n * nrhs);
  const QuadTree& tree = engine_->tree();
  const BlockLayout lo = block_layout(nrhs);
  cvec xb(lo.size()), yb(lo.size());
  block_pack_natural(lo, tree.perm(), x, xb);
  engine_->apply_block(xb, yb, nrhs);
  block_unpack_natural(lo, tree.perm(), yb, y);
}

void ForwardSolver::apply_g0_herm_block(ccspan x, cspan y, std::size_t nrhs) {
  const std::size_t n = contrast_nat_.size();
  FFW_CHECK(x.size() == n * nrhs && y.size() == n * nrhs);
  const QuadTree& tree = engine_->tree();
  const BlockLayout lo = block_layout(nrhs);
  cvec xb(lo.size()), yb(lo.size());
  block_pack_natural(lo, tree.perm(), x, xb);
  engine_->apply_herm_block(xb, yb, nrhs);
  block_unpack_natural(lo, tree.perm(), yb, y);
}

bool ForwardSolver::panel_solve_impl(ccspan rhs, cspan x, std::size_t nrhs,
                                     double tol, bool adjoint) {
  const double base = opts_.tol;
  const double target = tol > 0.0 ? std::max(tol, base) : base;
  if (mixed_ != nullptr) {
    RefinedOptions ro;
    ro.tol = target;
    // A loose outer target makes ultra-tight inner sweeps pointless:
    // keep the inner tolerance at least as loose as the outer one.
    ro.inner.tol = std::max(ro.inner.tol, target);
    const RefinedResult res = adjoint
                                  ? solve_adjoint_block_refined(rhs, x, nrhs, ro)
                                  : solve_block_refined(rhs, x, nrhs, ro);
    return res.converged;
  }
  opts_.tol = target;
  const BlockBicgstabResult res =
      adjoint ? solve_adjoint_block(rhs, x, nrhs) : solve_block(rhs, x, nrhs);
  opts_.tol = base;
  return res.converged;
}

bool ForwardSolver::solve_panel(ccspan rhs, cspan phi, std::size_t nrhs,
                                double tol) {
  return panel_solve_impl(rhs, phi, nrhs, tol, /*adjoint=*/false);
}

bool ForwardSolver::solve_adjoint_panel(ccspan rhs, cspan psi, std::size_t nrhs,
                                        double tol) {
  return panel_solve_impl(rhs, psi, nrhs, tol, /*adjoint=*/true);
}

}  // namespace ffw
