// Forward scattering solver: given the contrast O, solve the volume
// integral equation [I - G0 diag(O)] phi = phi_inc for the total field
// (paper eq. 3), with the G0 products supplied by MLFMA.
//
// All public vectors are in natural (row-major) pixel order; the solver
// converts to/from the MLFMA engine's cluster order internally.
#pragma once

#include <memory>

#include "forward/backend.hpp"
#include "forward/bicgstab.hpp"
#include "forward/block_bicgstab.hpp"
#include "forward/precond.hpp"
#include "forward/refined.hpp"
#include "mlfma/engine.hpp"

namespace ffw {

class ForwardSolver : public ForwardBackend {
 public:
  /// The engine is shared (not owned): the DBIM driver reuses one engine
  /// across illuminations and across the three solves per iteration.
  ForwardSolver(MlfmaEngine& engine, const BicgstabOptions& opts = {});

  /// Jacobi (diagonal) right preconditioning: solve A M^{-1} y = b with
  /// M = diag(A) = 1 - G0_nn * O_n, then x = M^{-1} y. The paper lists
  /// preconditioning against (near-)resonant systems as future work
  /// (Sec. VIII); the diagonal grows away from 1 exactly when the
  /// contrast is strong, which is when BiCGStab needs the help.
  void set_jacobi_preconditioner(bool enable);
  bool jacobi_preconditioner() const { return use_jacobi_; }

  /// Near-field block-Jacobi right preconditioning (forward/precond.hpp):
  /// the per-leaf self blocks I - A_self diag(O_c) are LU-factored on
  /// every set_contrast and applied inside every solve — forward,
  /// adjoint, blocked, and the mixed-precision refined solves. `storage`
  /// = Precision::kMixed keeps the factors in fp32 (pairs with a mixed
  /// inner engine; final accuracy is unaffected — the preconditioner
  /// only steers the Krylov space). Mutually exclusive with the diagonal
  /// Jacobi preconditioner.
  void set_near_preconditioner(bool enable,
                               Precision storage = Precision::kDouble);
  const NearFieldBlockJacobi* near_preconditioner() const {
    return near_precond_.get();
  }

  /// Adjusts the BiCGStab relative tolerance of subsequent plain solves
  /// (the DBIM driver's Eisenstat-Walker forcing hooks in here).
  void set_tolerance(double tol) { opts_.tol = tol; }

  /// Set the contrast vector O (natural order, length N).
  void set_contrast(ccspan contrast) override;
  ccspan contrast_natural() const override { return contrast_nat_; }

  /// Solve [I - G0 O] phi = rhs. `phi` carries the initial guess in and
  /// the solution out (natural order).
  BicgstabResult solve(ccspan rhs, cspan phi);

  /// Solve the Hermitian-transposed system [I - G0 O]^H psi = rhs
  /// (needed by the adjoint Frechet operator).
  BicgstabResult solve_adjoint(ccspan rhs, cspan psi);

  /// Multi-RHS solve: [I - G0 O] phi_r = rhs_r for all nrhs columns in
  /// one block BiCGStab (one blocked MLFMA apply per Krylov iteration
  /// for the whole transmitter set). `rhs` and `phi` are column-major
  /// natural-order panels (N rows, nrhs columns, column stride N); `phi`
  /// carries initial guesses in and solutions out.
  BlockBicgstabResult solve_block(ccspan rhs, cspan phi, std::size_t nrhs);

  /// Multi-RHS adjoint solve: [I - G0 O]^H psi_r = rhs_r.
  BlockBicgstabResult solve_adjoint_block(ccspan rhs, cspan psi,
                                          std::size_t nrhs);

  /// Registers a Precision::kMixed engine on the *same tree* as the fp32
  /// accelerator for solve_block_refined (not owned; pass nullptr to
  /// detach). The primary engine stays the fp64 reference.
  void set_mixed_engine(MlfmaEngine* mixed);
  MlfmaEngine* mixed_engine() const { return mixed_; }

  /// Mixed-precision iterative refinement solve of [I - G0 O] phi = rhs
  /// over all columns: inner block-BiCGStab sweeps run on the registered
  /// mixed engine, outer residuals/masking in fp64 on the primary
  /// engine, automatic pure-fp64 fallback on stall (forward/refined.hpp).
  /// Reaches fp64-level tolerances (default 1e-8) at mixed-engine speed.
  /// The diagonal Jacobi setting is ignored; the near-field block
  /// preconditioner (if enabled) right-preconditions the inner sweeps
  /// and the fallback.
  RefinedResult solve_block_refined(ccspan rhs, cspan phi, std::size_t nrhs,
                                    const RefinedOptions& opts = {});

  /// Mixed-precision refinement of the Hermitian-transposed system
  /// [I - G0 O]^H psi = rhs (the adjoint Frechet solves of DBIM run at
  /// mixed speed too — G0 is complex-symmetric, so the mixed engine's
  /// conjugated apply serves as the inner adjoint operator).
  RefinedResult solve_adjoint_block_refined(ccspan rhs, cspan psi,
                                            std::size_t nrhs,
                                            const RefinedOptions& opts = {});

  /// y = [I - G0 O] x without solving (for residual checks / tests).
  void apply_system(ccspan x, cspan y);

  /// y = G0 * (O .* x) — the scattered-field operator on pixels.
  void apply_g0_contrast(ccspan x, cspan y);

  /// Y_r = G0 * X_r over natural-order column-major panels (raw kernel,
  /// no contrast; the blocked Frechet passes need it).
  void apply_g0_block(ccspan x, cspan y, std::size_t nrhs);

  /// Y_r = G0^H * X_r over natural-order column-major panels.
  void apply_g0_herm_block(ccspan x, cspan y, std::size_t nrhs);

  // --- ForwardBackend interface (forward/backend.hpp) --------------------
  // The panel entry points route to the refined mixed-precision block
  // solves when a mixed engine is registered, and to the plain block
  // BiCGStab otherwise — the same dispatch the DBIM workspace used to
  // hand-roll. `tol` overrides the configured tolerance for this call
  // only (0 keeps it), which is how Eisenstat-Walker forcing flows
  // through the backend-neutral API.
  BackendKind kind() const override { return BackendKind::kMlfma; }
  bool solve_panel(ccspan rhs, cspan phi, std::size_t nrhs,
                   double tol) override;
  bool solve_adjoint_panel(ccspan rhs, cspan psi, std::size_t nrhs,
                           double tol) override;
  void apply_g0_panel(ccspan x, cspan y, std::size_t nrhs) override {
    apply_g0_block(x, y, nrhs);
  }
  void apply_g0_herm_panel(ccspan x, cspan y, std::size_t nrhs) override {
    apply_g0_herm_block(x, y, nrhs);
  }

  const ForwardStats& stats() const override { return stats_; }
  void clear_stats() override { stats_.clear(); }

  MlfmaEngine& engine() { return *engine_; }
  const QuadTree& tree() const { return engine_->tree(); }
  const BicgstabOptions& options() const { return opts_; }

 private:
  void op_forward(ccspan x, cspan y);  // cluster order
  void op_adjoint(ccspan x, cspan y);  // cluster order
  // Blocked variants over the leaf-interleaved block layout.
  void op_forward_block(ccspan x, cspan y, const BlockLayout& lo);
  void op_adjoint_block(ccspan x, cspan y, const BlockLayout& lo);
  // Unpreconditioned blocked forward operator on an explicit engine (the
  // refined solve runs it against both the fp64 and the mixed engine).
  void op_forward_block_on(MlfmaEngine& eng, ccspan x, cspan y,
                           const BlockLayout& lo);
  void op_adjoint_block_on(MlfmaEngine& eng, ccspan x, cspan y,
                           const BlockLayout& lo);
  BlockLayout block_layout(std::size_t nrhs) const;
  bool panel_solve_impl(ccspan rhs, cspan x, std::size_t nrhs, double tol,
                        bool adjoint);
  void record_block_stats(const BlockBicgstabResult& res,
                          std::uint64_t applications_before);
  /// Handle for the Krylov solvers: the active near-field block
  /// preconditioner over `nrhs` columns, or empty (identity) when
  /// disabled.
  PrecondContext precond_ctx(std::size_t nrhs, bool herm) const;

  MlfmaEngine* engine_;
  MlfmaEngine* mixed_ = nullptr;  // optional fp32 accelerator (not owned)
  BicgstabOptions opts_;
  void refresh_preconditioner();

  cvec contrast_nat_;   // natural order
  cvec contrast_clu_;   // cluster order
  cvec work_;           // cluster-order scratch
  cvec block_work_;     // block-layout scratch (grown to N * nrhs)
  bool use_jacobi_ = false;
  cvec minv_clu_;       // 1 / diag(A), cluster order (empty if disabled)
  bool use_near_ = false;
  Precision near_storage_ = Precision::kDouble;
  std::unique_ptr<NearFieldBlockJacobi> near_precond_;
  ForwardStats stats_;
};

}  // namespace ffw
