#include "forward/block_bicgstab.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {

/// Applies `fn(base_offset, len)` to every contiguous chunk of column r.
template <typename F>
void for_col(const BlockLayout& lo, std::size_t r, F&& fn) {
  for (std::size_t c = 0; c < lo.npanels; ++c) fn(lo.at(c, r), lo.panel);
}

}  // namespace

BlockBicgstabResult block_bicgstab(const BlockLinearOp& a, ccspan b, cspan x,
                                   const BlockLayout& lo,
                                   const BicgstabOptions& opts,
                                   const DotReducer& reduce,
                                   const PrecondContext& pc) {
  const std::size_t nrhs = lo.nrhs;
  const std::size_t total = lo.size();
  FFW_CHECK(b.size() == total && x.size() == total && nrhs >= 1);
  FFW_CHECK(!pc || (pc.lo.panel == lo.panel && pc.lo.nrhs == lo.nrhs &&
                    pc.lo.npanels == lo.npanels));

  BlockBicgstabResult res;
  res.rhs.resize(nrhs);

  cvec r(total), rhat(total), p(total), v(total, cplx{}), s(total), t(total),
      tmp(total);
  // Flexible right preconditioning: phat = M^{-1} p, shat = M^{-1} s are
  // computed block-wide (frozen columns are solved too but never read —
  // their alpha/omega updates are masked out below). Without pc the
  // spans alias p/s and the iteration is bit-identical.
  cvec phat_store, shat_store;
  if (pc) {
    phat_store.assign(total, cplx{});
    shat_store.assign(total, cplx{});
  }
  std::vector<char> active(nrhs, 1);
  std::vector<double> bnorm(nrhs), scal_d(nrhs);
  cvec rho(nrhs), alpha(nrhs), omega(nrhs), scal_c(2 * nrhs);

  // ||b_r|| for every column in one reduction.
  for (std::size_t j = 0; j < nrhs; ++j)
    scal_d[j] = block_col_nrm2_sq(lo, b, j);
  reduce.sum_double_vec(rspan{scal_d});
  for (std::size_t j = 0; j < nrhs; ++j) {
    bnorm[j] = std::sqrt(scal_d[j]);
    if (bnorm[j] == 0.0) {
      for_col(lo, j, [&](std::size_t o, std::size_t n) {
        std::fill(x.begin() + static_cast<std::ptrdiff_t>(o),
                  x.begin() + static_cast<std::ptrdiff_t>(o + n), cplx{});
      });
      res.rhs[j].converged = true;
      active[j] = 0;
    }
  }

  auto any_active = [&] {
    for (std::size_t j = 0; j < nrhs; ++j)
      if (active[j]) return true;
    return false;
  };

  // r = b - A x (one blocked matvec covers every column).
  a(x, tmp);
  ++res.block_matvecs;
  for (std::size_t j = 0; j < nrhs; ++j)
    if (active[j]) ++res.rhs[j].matvecs;
  for (std::size_t i = 0; i < total; ++i) r[i] = b[i] - tmp[i];
  std::copy(r.begin(), r.end(), rhat.begin());
  std::copy(r.begin(), r.end(), p.begin());

  // rho_r = <rhat_r, r_r> and ||r_r|| batched.
  for (std::size_t j = 0; j < nrhs; ++j) {
    rho[j] = active[j] ? block_col_dot(lo, rhat, r, j) : cplx{};
    scal_d[j] = active[j] ? block_col_nrm2_sq(lo, r, j) : 0.0;
  }
  reduce.sum_cplx_vec(cspan{rho});
  reduce.sum_double_vec(rspan{scal_d});
  for (std::size_t j = 0; j < nrhs; ++j) {
    if (!active[j]) continue;
    const double rnorm = std::sqrt(scal_d[j]);
    if (rnorm / bnorm[j] < opts.tol) {
      res.rhs[j].converged = true;
      res.rhs[j].relres = rnorm / bnorm[j];
      active[j] = 0;
    }
  }

  for (int it = 0; it < opts.max_iterations && any_active(); ++it) {
    res.iterations = it + 1;
    obs::add(obs::Counter::kBicgstabIterations, 1);
    ccspan phat{p};
    if (pc) {
      pc(p, phat_store);
      phat = phat_store;
    }
    a(phat, v);
    ++res.block_matvecs;

    // alpha_r = rho_r / <rhat_r, v_r>, batched.
    for (std::size_t j = 0; j < nrhs; ++j)
      scal_c[j] = active[j] ? block_col_dot(lo, rhat, v, j) : cplx{};
    reduce.sum_cplx_vec(cspan{scal_c.data(), nrhs});
    for (std::size_t j = 0; j < nrhs; ++j) {
      if (!active[j]) continue;
      ++res.rhs[j].matvecs;
      FFW_CHECK_MSG(std::abs(scal_c[j]) > 0.0,
                    "block BiCGStab breakdown: <rhat, v> = 0");
      alpha[j] = rho[j] / scal_c[j];
      const cplx al = alpha[j];
      for_col(lo, j, [&](std::size_t o, std::size_t n) {
        for (std::size_t i = o; i < o + n; ++i) s[i] = r[i] - al * v[i];
      });
      ++res.rhs[j].iterations;
    }

    // Early exit on the half-step residual s, per column.
    for (std::size_t j = 0; j < nrhs; ++j)
      scal_d[j] = active[j] ? block_col_nrm2_sq(lo, s, j) : 0.0;
    reduce.sum_double_vec(rspan{scal_d});
    for (std::size_t j = 0; j < nrhs; ++j) {
      if (!active[j]) continue;
      const double snorm = std::sqrt(scal_d[j]);
      if (snorm / bnorm[j] < opts.tol) {
        const cplx al = alpha[j];
        for_col(lo, j, [&](std::size_t o, std::size_t n) {
          for (std::size_t i = o; i < o + n; ++i) x[i] += al * phat[i];
        });
        res.rhs[j].relres = snorm / bnorm[j];
        res.rhs[j].converged = true;
        active[j] = 0;
      }
    }
    if (!any_active()) break;

    ccspan shat{s};
    if (pc) {
      pc(s, shat_store);
      shat = shat_store;
    }
    a(shat, t);
    ++res.block_matvecs;

    // omega_r = <t_r, s_r> / <t_r, t_r>, both dots in one reduction.
    for (std::size_t j = 0; j < nrhs; ++j) {
      scal_c[2 * j] = active[j] ? block_col_dot(lo, t, t, j) : cplx{};
      scal_c[2 * j + 1] = active[j] ? block_col_dot(lo, t, s, j) : cplx{};
    }
    reduce.sum_cplx_vec(cspan{scal_c.data(), 2 * nrhs});
    for (std::size_t j = 0; j < nrhs; ++j) {
      if (!active[j]) continue;
      ++res.rhs[j].matvecs;
      FFW_CHECK_MSG(std::abs(scal_c[2 * j]) > 0.0,
                    "block BiCGStab breakdown: ||t|| = 0");
      omega[j] = scal_c[2 * j + 1] / scal_c[2 * j];
      const cplx al = alpha[j], om = omega[j];
      for_col(lo, j, [&](std::size_t o, std::size_t n) {
        for (std::size_t i = o; i < o + n; ++i) {
          x[i] += al * phat[i] + om * shat[i];
          r[i] = s[i] - om * t[i];
        }
      });
    }

    // Full-step residual norms, batched.
    for (std::size_t j = 0; j < nrhs; ++j)
      scal_d[j] = active[j] ? block_col_nrm2_sq(lo, r, j) : 0.0;
    reduce.sum_double_vec(rspan{scal_d});
    for (std::size_t j = 0; j < nrhs; ++j) {
      if (!active[j]) continue;
      res.rhs[j].relres = std::sqrt(scal_d[j]) / bnorm[j];
      if (res.rhs[j].relres < opts.tol) {
        res.rhs[j].converged = true;
        active[j] = 0;
      }
    }

    // rho update + new search direction, batched.
    for (std::size_t j = 0; j < nrhs; ++j)
      scal_c[j] = active[j] ? block_col_dot(lo, rhat, r, j) : cplx{};
    reduce.sum_cplx_vec(cspan{scal_c.data(), nrhs});
    for (std::size_t j = 0; j < nrhs; ++j) {
      if (!active[j]) continue;
      const cplx rho_next = scal_c[j];
      FFW_CHECK_MSG(std::abs(rho_next) > 0.0,
                    "block BiCGStab breakdown: rho = 0");
      const cplx beta = (rho_next / rho[j]) * (alpha[j] / omega[j]);
      rho[j] = rho_next;
      const cplx om = omega[j];
      for_col(lo, j, [&](std::size_t o, std::size_t n) {
        for (std::size_t i = o; i < o + n; ++i)
          p[i] = r[i] + beta * (p[i] - om * v[i]);
      });
    }
  }

  res.converged = true;
  for (std::size_t j = 0; j < nrhs; ++j)
    res.converged = res.converged && res.rhs[j].converged;
  obs::add(obs::Counter::kBicgstabTotalIters, res.total_iterations());
  return res;
}

}  // namespace ffw
