// Block (multi-RHS) BiCGStab: all right-hand sides of a shared operator
// iterate together so every operator application is a blocked MLFMA
// apply (one streaming of the translation/interp/near-field tables for
// all columns) and every inner-product sync point is one batched
// reduction instead of nrhs separate ones.
//
// Mathematically this runs nrhs *independent* BiCGStab recurrences in
// lockstep — the Krylov spaces are not mixed, so each column's iterates
// match the single-vector solver's (up to blocked-GEMM rounding). A
// column that converges is *masked*: its x/r/p state freezes at the
// converged iterate (exactly what the single-vector solver would have
// returned) and it stops contributing scalar work, but it stays in the
// block so the remaining columns keep their shared matvec.
#pragma once

#include "forward/bicgstab.hpp"
#include "linalg/block.hpp"

namespace ffw {

/// Y = A X over a whole block (layout fixed by the caller); must fully
/// overwrite Y.
using BlockLinearOp = std::function<void(ccspan x, cspan y)>;

struct BlockBicgstabResult {
  /// Per-column outcome, indexed like the block columns. `iterations`
  /// and `relres` match what a standalone BiCGStab on that column would
  /// report.
  std::vector<BicgstabResult> rhs;
  int iterations = 0;     // block iterations until the last column finished
  int block_matvecs = 0;  // blocked operator applications
  bool converged = false; // all columns converged

  std::uint64_t total_iterations() const {
    std::uint64_t s = 0;
    for (const auto& r : rhs) s += static_cast<std::uint64_t>(r.iterations);
    return s;
  }
};

/// Solves A x_r = b_r for all columns of the block vectors b/x (layout
/// `lo`, lo.size() elements each). `x` carries initial guesses in and
/// solutions out. With a non-default `reduce`, b/x are rank-local slices
/// and the solve is collective over the reducing group. A non-empty `pc`
/// applies flexible right preconditioning exactly as in `bicgstab`:
/// residuals stay true residuals, the identity default is bit-identical,
/// and column masking is unaffected (M^{-1} is block-diagonal over the
/// layout, so frozen columns stay frozen).
BlockBicgstabResult block_bicgstab(const BlockLinearOp& a, ccspan b, cspan x,
                                   const BlockLayout& lo,
                                   const BicgstabOptions& opts = {},
                                   const DotReducer& reduce = {},
                                   const PrecondContext& pc = {});

}  // namespace ffw
