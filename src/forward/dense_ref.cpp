#include "forward/dense_ref.hpp"

#include "common/check.hpp"
#include "greens/greens.hpp"

namespace ffw {

DenseForwardSolver::DenseForwardSolver(const Grid& grid, ccspan contrast)
    : grid_(&grid) {
  const std::size_t n = grid.num_pixels();
  FFW_CHECK(contrast.size() == n);
  CMatrix a = build_dense_g0(grid);
  // A = I - G0 * diag(O): scale column j by -O_j, then add identity.
  for (std::size_t j = 0; j < n; ++j) {
    const cplx oj = contrast[j];
    for (std::size_t i = 0; i < n; ++i) a(i, j) *= -oj;
    a(j, j) += 1.0;
  }
  lu_ = std::make_unique<LuFactors>(std::move(a));
}

cvec DenseForwardSolver::solve(ccspan rhs) const { return lu_->solve(rhs); }

cvec DenseForwardSolver::solve_adjoint(ccspan rhs) const {
  return lu_->solve_herm(rhs);
}

}  // namespace ffw
