// Forward-solver backend interface: the contract DBIM (and any other
// inversion driver) programs against, extracted from ForwardSolver so a
// reconstruction can route per-job between operator engines —
// MLFMA+BiCGStab for strong multiple scattering, the FFT-based
// convergent Born series (forward/cbs.hpp) for weak-to-moderate
// contrast, or automatic selection (DbimOptions::backend).
//
// Every backend solves the same discrete volume integral equation
// [I - G0 diag(O)] phi = rhs on natural-order (row-major pixel)
// column-major multi-RHS panels, and exposes the raw G0 panel products
// the Frechet passes need. All sizes are num_pixels * nrhs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ffw {

/// Which forward engine a reconstruction uses. kAuto picks the CBS
/// backend below a contrast threshold and falls back to (or escalates
/// mid-reconstruction onto) MLFMA when the series stops converging.
enum class BackendKind : int { kMlfma = 0, kCbs = 1, kAuto = 2 };

inline const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kMlfma: return "mlfma";
    case BackendKind::kCbs: return "cbs";
    case BackendKind::kAuto: return "auto";
  }
  return "?";
}

/// Backend-neutral solve statistics. `operator_applications` counts
/// per-RHS applications of the expensive structured operator — MLFMA
/// tree traversals for the kMlfma backend, padded-FFT Green's
/// convolutions for kCbs; `bicgs_iterations` counts inner solver
/// iterations (BiCGStab sweeps or Born-series iterations).
struct ForwardStats {
  std::uint64_t solves = 0;
  std::uint64_t bicgs_iterations = 0;
  std::uint64_t operator_applications = 0;
  /// Per-solve iteration counts: the raw samples behind the paper's
  /// "iteration variation" discussion (Sec. V-D) and the scaling model's
  /// load-imbalance term.
  std::vector<std::uint16_t> per_solve_iterations;
  /// Accumulated wall time factoring the near-field block preconditioner
  /// (one rebuild per set_contrast when enabled; MLFMA backend only).
  double precond_setup_seconds = 0.0;

  /// The paper reports 13.4 MLFMA multiplications per forward solution.
  double operator_per_solve() const {
    return solves ? static_cast<double>(operator_applications) / solves : 0.0;
  }
  void clear() { *this = ForwardStats{}; }

  // Deprecated aliases (pre-multi-backend names; MLFMA-specific).
  std::uint64_t mlfma_applications() const { return operator_applications; }
  double mlfma_per_solve() const { return operator_per_solve(); }
};

class ForwardBackend {
 public:
  virtual ~ForwardBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Install the contrast vector O (natural order, length N).
  virtual void set_contrast(ccspan contrast) = 0;
  virtual ccspan contrast_natural() const = 0;

  /// Multi-RHS forward solve [I - G0 O] phi_c = rhs_c over natural-order
  /// column-major panels to relative tolerance `tol` (0 = the backend's
  /// configured default). `phi` carries initial guesses in and solutions
  /// out. Returns true when every column converged.
  virtual bool solve_panel(ccspan rhs, cspan phi, std::size_t nrhs,
                           double tol) = 0;

  /// Multi-RHS Hermitian-transposed solve [I - G0 O]^H psi_c = rhs_c.
  virtual bool solve_adjoint_panel(ccspan rhs, cspan psi, std::size_t nrhs,
                                   double tol) = 0;

  /// Y_c = G0 * X_c over natural-order column-major panels (raw kernel,
  /// no contrast; the blocked Frechet passes need it).
  virtual void apply_g0_panel(ccspan x, cspan y, std::size_t nrhs) = 0;

  /// Y_c = G0^H * X_c over natural-order column-major panels.
  virtual void apply_g0_herm_panel(ccspan x, cspan y, std::size_t nrhs) = 0;

  virtual const ForwardStats& stats() const = 0;
  virtual void clear_stats() = 0;
};

}  // namespace ffw
