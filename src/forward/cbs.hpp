// Convergent Born series (CBS) forward backend: solves the volume
// integral equation [I - G0 diag(O)] phi = rhs with FFT-applied
// operators on a zero-padded uniform grid instead of MLFMA+Krylov.
//
// The plain Born series phi_{k+1} = rhs + G0 O phi_k diverges as soon
// as the scattering is non-weak. Osnabrugge et al. (J. Comput. Phys.
// 2016) fix this by shifting the background wavenumber into the complex
// plane, k_eps^2 = k0^2 + i eps, and preconditioning with
// gamma = 1 + i O / eps; the resulting series converges for contrast of
// any magnitude provided eps >= max|O|. We run that scheme as a
// preconditioned Richardson iteration on the *exact discrete* system:
//
//   x_{k+1} = x_k + M r_k,   r_k = rhs - A x_k,   A = I - G0 diag(O),
//   M r = gamma .* F^{-1}[ t/(t - i eps) .* F r ],  t = |xi|^2 - k0^2,
//
// where A uses the pixel-integrated Richmond kernel of the rest of the
// code base (applied as an exact aperiodic convolution via FFT zero
// padding), while the attenuation-shifted factor t/(t - i eps) — the
// symbol of I + i eps G_eps — lives purely inside the preconditioner.
// The fixed point is therefore the same discrete solution MLFMA's
// BiCGStab converges to (enabling 1e-6-level cross-validation), and the
// iteration matrix I - M A equals the classic CBS operator
// gamma G_eps V + 1 - gamma up to the (spectrally small) difference
// between the discrete and continuum G0 — the shift only sets the
// convergence rate, never the answer. A minimal-residual line search
// (Orthomin(1)) on top is the default and is never slower than the
// unit step.
//
// The shift is insurance against strong scattering, not a free lunch:
// its damping of the modes near the Ewald shell |xi| = k0 caps the
// preconditioned rate near 0.4/iteration *regardless of how weak the
// contrast is*, and M costs a second FFT round trip per iteration. At
// weak contrast A is already a small perturbation of the identity, so
// the engine drops the preconditioner there (M = I): plain
// Orthomin-accelerated Born, one round trip per iteration, converging
// in ~6 iterations at max|O|/k0^2 = 0.01 versus ~21 for the shifted
// scheme. The shifted preconditioner switches in above
// CbsOptions::precond_threshold — or mid-solve, automatically, if the
// plain series stalls against the divergence watchdog.
//
// Cost per iteration: one padded-panel FFT round trip (plus a second
// for the preconditioner when it is on), batched over all right-hand
// sides. At strong contrast the rate approaches 1 and MLFMA wins —
// DbimOptions::backend = kAuto arbitrates.
#pragma once

#include <memory>

#include "fft/fft2.hpp"
#include "forward/backend.hpp"
#include "grid/grid.hpp"

namespace ffw {

struct CbsOptions {
  /// Per-column relative residual target ||rhs - A x|| / ||rhs||.
  double tol = 1e-8;
  std::size_t max_iterations = 600;
  /// eps = max(eps_floor * k0^2, eps_factor * max|O|). Convergence needs
  /// eps >= max|O|; a little headroom is cheap insurance against the
  /// discrete/continuum kernel mismatch.
  double eps_factor = 1.1;
  double eps_floor = 0.05;
  /// Orthomin(1) step: alpha_c = <w,r>/<w,w> per column instead of the
  /// unit CBS step. Monotone in the residual; keep on.
  bool minimal_residual = true;
  /// Contrast gate for the shifted-kernel preconditioner: it switches in
  /// when max|O| > precond_threshold * k0^2. Below that the plain
  /// Born-Orthomin iteration (M = I, half the FFT work per step) is
  /// strictly faster; a mid-solve stall still falls back to the
  /// preconditioned mode automatically.
  double precond_threshold = 0.15;
  /// Divergence watchdog: if the geometric-mean residual reduction over
  /// the trailing `rate_window` iterations exceeds this, give up (the
  /// caller falls back to MLFMA).
  double divergence_rate = 0.999;
  std::size_t rate_window = 8;
  /// kMixed runs the FFT pipeline (pad, transform, symbol multiply) in
  /// fp32 while x and r accumulate in fp64, with a true fp64 residual
  /// refresh every `fp64_refresh` iterations and an fp64 verification
  /// before declaring convergence.
  Precision precision = Precision::kDouble;
  std::size_t fp64_refresh = 8;
};

/// Read-only, shareable CBS table artifact: the contrast-independent
/// state of the backend — the padded-FFT plans and the Richmond-kernel
/// spectrum g0hat (plus their fp32 mirrors under kMixed). Everything
/// contrast-dependent (gamma, the shift symbol mhat, scratch) stays in
/// the engine, so any number of concurrent CbsEngines can share one
/// artifact; OperatorTableCache amortises the build across jobs.
struct CbsTables {
  /// Precision selects whether the fp32 pipeline state (plan32/g0hat32)
  /// is built; fp64 engines can use either flavour.
  explicit CbsTables(const Grid& grid, Precision precision = Precision::kDouble);
  ~CbsTables();
  CbsTables(const CbsTables&) = delete;
  CbsTables& operator=(const CbsTables&) = delete;

  Grid grid;
  Precision precision;
  std::size_t pad_n = 0;  // padded side P = bit_ceil(2 nx - 1)
  cvec g0hat;             // FFT of the wrapped Richmond kernel, P x P
  std::unique_ptr<Fft2Plan<double>> plan;
  cvec32 g0hat32;                           // kMixed only
  std::unique_ptr<Fft2Plan<float>> plan32;  // kMixed only
  double build_seconds = 0.0;

  std::size_t bytes() const;
};

/// Diagnostics of the most recent panel solve.
struct CbsSolveInfo {
  bool converged = false;
  std::size_t iterations = 0;
  /// Max over columns of the final relative residual (fp64).
  double final_residual = 0.0;
  /// Geometric-mean per-iteration residual reduction over the trailing
  /// rate_window iterations (over the whole run when shorter; 0 when the
  /// initial guess already met the tolerance). The kAuto escalation
  /// policy watches this.
  double convergence_rate = 0.0;
  /// Whether the shifted-kernel preconditioner was active by the end of
  /// the solve (contrast above the gate, or the plain series stalled).
  bool preconditioned = false;
};

class CbsEngine final : public ForwardBackend {
 public:
  /// Convenience constructor: builds a private CbsTables artifact.
  explicit CbsEngine(const Grid& grid, const CbsOptions& opts = {});
  /// Shares a prebuilt artifact (see CbsTables); construction then costs
  /// only the contrast-dependent per-engine state. kMixed options
  /// require an artifact built with Precision::kMixed.
  explicit CbsEngine(std::shared_ptr<const CbsTables> tables,
                     const CbsOptions& opts = {});
  ~CbsEngine() override;

  BackendKind kind() const override { return BackendKind::kCbs; }
  void set_contrast(ccspan contrast) override;
  ccspan contrast_natural() const override { return contrast_nat_; }

  bool solve_panel(ccspan rhs, cspan phi, std::size_t nrhs,
                   double tol) override;
  bool solve_adjoint_panel(ccspan rhs, cspan psi, std::size_t nrhs,
                           double tol) override;

  /// Exact (aperiodic) Richmond-kernel products via padded FFT — match
  /// dense_g0_apply / MLFMA to rounding.
  void apply_g0_panel(ccspan x, cspan y, std::size_t nrhs) override;
  void apply_g0_herm_panel(ccspan x, cspan y, std::size_t nrhs) override;

  /// y = [I - G0 O] x (forward) or [I - G0 O]^H x (adjoint) over panels;
  /// the residual operator of the iteration, exposed for tests.
  void apply_system_panel(ccspan x, cspan y, std::size_t nrhs,
                          bool adjoint = false);

  const ForwardStats& stats() const override { return stats_; }
  void clear_stats() override { stats_.clear(); }

  const Grid& grid() const { return grid_; }
  const CbsOptions& options() const { return opts_; }
  CbsOptions& options() { return opts_; }
  const CbsSolveInfo& last_info() const { return info_; }
  /// Attenuation shift of the current contrast (set_contrast updates it).
  double epsilon() const { return eps_; }
  /// Padded transform side length P = bit_ceil(2 nx - 1).
  std::size_t padded() const { return pad_n_; }

 private:
  struct Fp32Pipeline;  // fp32 shift symbol + scratch (kMixed only)

  /// y_panel = crop(IFFT(symbol .* FFT(pad(premul .* x_panel)))) for all
  /// columns; conjugate applies conj(symbol) (the Hermitian-transposed
  /// kernel — valid because the even kernel's spectrum satisfies
  /// FFT(conj k) = conj FFT(k)). The optional per-pixel premul diagonal
  /// (null = identity) is folded into the zero-padding pack, saving a
  /// separate panel-sized multiply pass.
  void convolve(ccspan x, cspan y, std::size_t nrhs, const cvec& symbol,
                bool conjugate, const cplx* premul = nullptr);
  void convolve32(ccspan x, cspan y, std::size_t nrhs, const cvec32& symbol,
                  bool conjugate, const cplx* premul = nullptr);
  /// Dispatches to the fp32 pipeline under kMixed, fp64 otherwise.
  void convolve_fast(ccspan x, cspan y, std::size_t nrhs, bool green,
                     bool conjugate, const cplx* premul = nullptr);
  /// r = rhs - A x in fp64 (the truth the iteration is judged against).
  void true_residual(ccspan rhs, ccspan x, cspan r, std::size_t nrhs,
                     bool adjoint);
  void build_shift_symbol();
  bool solve_impl(ccspan rhs, cspan x, std::size_t nrhs, double tol,
                  bool adjoint);

  // Immutable shared tables (kernel spectrum + FFT plans); everything
  // below them is per-engine, contrast-dependent state.
  std::shared_ptr<const CbsTables> tables_;
  Grid grid_;
  CbsOptions opts_;
  std::size_t n_ = 0;      // pixels
  std::size_t pad_n_ = 0;  // padded side P (power of two)
  double eps_ = 0.0;
  double omax_ = 0.0;  // max|O| of the current contrast

  cvec contrast_nat_;  // O, natural order
  cvec gamma_;         // 1 + i O / eps
  cvec mhat_;          // t / (t - i eps), P x P (depends on eps)
  cvec pad_;           // padded panel scratch, P*P*nrhs (grown on demand)
  std::unique_ptr<Fp32Pipeline> fp32_;  // null unless kMixed

  ForwardStats stats_;
  CbsSolveInfo info_;
};

}  // namespace ffw
