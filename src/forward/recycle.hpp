// Krylov subspace recycling across DBIM iterations (ISSUE 6 tentpole;
// DESIGN.md Sec. 13).
//
// DBIM re-solves nearly the same forward / adjoint systems every
// Gauss-Newton iteration: the operator changes only through the contrast
// update (a few percent per iteration after the first), and the
// right-hand sides (incident fields, residual back-projections) drift
// slowly. A full deflation-style recycled-Krylov method (GCRO-DR) would
// need to orthogonalise against the operator image of the retained
// space every iteration; here the operator apply is the dominant cost,
// so we use the cheapest variant that captures most of the win:
// *solution recycling*. We retain the last `depth` (rhs, solution)
// block pairs and, before each new solve, seed the initial guess with
// the least-squares combination of retained solutions whose rhs
// combination best matches the new rhs:
//
//   min_a || b_new - sum_i a_i b_i ||   =>   x0 = sum_i a_i x_i
//
// Since x_i ~= A_i^{-1} b_i and A changes slowly, x0 ~= A^{-1} b_new up
// to the operator drift — typically 1-2 digits of the solve for free,
// which BiCGStab then refines at the usual rate.
//
// Determinism: the Gram system is formed from per-column block dots that
// are batched into a single reducer call, so serial and parallel runs
// (and reruns) see bit-identical coefficients. Recycle state is *not*
// checkpointed — drivers clear it whenever background fields reset, so a
// crash-recovered run re-derives identical iterates (see dbim/).
#pragma once

#include <deque>

#include "forward/bicgstab.hpp"
#include "linalg/block.hpp"

namespace ffw {

struct RecycleOptions {
  /// Retained (rhs, solution) snapshot pairs; 0 disables recycling.
  std::size_t depth = 2;
  /// Relative Tikhonov ridge on the Gram diagonal — keeps the tiny
  /// least-squares solve stable when retained rhs are nearly parallel
  /// (e.g. consecutive DBIM iterations of the same transmitter).
  double ridge = 1e-12;
};

class KrylovRecycler {
 public:
  explicit KrylovRecycler(const RecycleOptions& opts = {}) : opts_(opts) {}

  /// Writes the recycled initial guess for rhs block `b` into `x`
  /// (fully overwritten; zeroed when nothing can be seeded). Returns the
  /// number of columns seeded. Collective over `reduce`'s group: every
  /// rank must call with its local slice and the same snapshot history.
  std::size_t seed(ccspan b, cspan x, const BlockLayout& lo,
                   const DotReducer& reduce = {}) const;

  /// Retains (b, x) as a snapshot pair; evicts the oldest beyond
  /// `depth`. No-op when depth == 0.
  void store(ccspan b, ccspan x, const BlockLayout& lo);

  void clear() { snaps_.clear(); }
  std::size_t size() const { return snaps_.size(); }
  const RecycleOptions& options() const { return opts_; }

 private:
  struct Snapshot {
    cvec b, x;
  };
  RecycleOptions opts_;
  std::deque<Snapshot> snaps_;
};

}  // namespace ffw
