#include "forward/refined.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace ffw {

RefinedResult refined_block_bicgstab(const BlockLinearOp& a_outer,
                                     const BlockLinearOp& a_inner, ccspan b,
                                     cspan x, const BlockLayout& lo,
                                     const RefinedOptions& opts,
                                     const DotReducer& reduce,
                                     const PrecondContext& pc) {
  FFW_CHECK(b.size() == lo.size() && x.size() == lo.size());
  const std::size_t nrhs = lo.nrhs;
  RefinedResult res;

  // Loose-tolerance regime: the caller's tol is far above the fp32
  // operator error, so solve directly on the inner operator (fp64
  // recurrences, fp32 applies) and skip the refinement scaffolding.
  if (opts.direct_tol > 0.0 && opts.tol >= opts.direct_tol) {
    BicgstabOptions dopts;
    dopts.tol = opts.tol;
    dopts.max_iterations = opts.fallback_max_iterations;
    const BlockBicgstabResult direct =
        block_bicgstab(a_inner, b, x, lo, dopts, reduce, pc);
    res.inner_iterations = direct.total_iterations();
    res.relres = 0.0;
    for (const BicgstabResult& col : direct.rhs)
      res.relres = std::max(res.relres, col.relres);
    res.converged = direct.converged;
    return res;
  }

  cvec r(lo.size()), d(lo.size());
  std::vector<double> bnorm(nrhs), rnorm(nrhs), partial(nrhs);

  auto reduced_col_norms = [&](ccspan v, std::vector<double>& out) {
    for (std::size_t c = 0; c < nrhs; ++c)
      partial[c] = block_col_nrm2_sq(lo, v, c);
    reduce.sum_double_vec(rspan{partial.data(), nrhs});
    for (std::size_t c = 0; c < nrhs; ++c) out[c] = std::sqrt(partial[c]);
  };
  reduced_col_norms(b, bnorm);

  // Worst-column fp64 relative residual; recomputes r = b - A64 x.
  auto residual = [&] {
    a_outer(x, r);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    reduced_col_norms(r, rnorm);
    double worst = 0.0;
    for (std::size_t c = 0; c < nrhs; ++c)
      if (bnorm[c] > 0.0) worst = std::max(worst, rnorm[c] / bnorm[c]);
    return worst;
  };
  auto column_converged = [&](std::size_t c) {
    return bnorm[c] == 0.0 || rnorm[c] <= opts.tol * bnorm[c];
  };

  double worst = residual();
  res.relres = worst;
  if (worst <= opts.tol) {
    res.converged = true;
    return res;
  }

  // Best iterate seen so far: a stalled round can *increase* the
  // residual (fp32 operator error exciting a bad mode), and the fallback
  // then must not start from — or return — anything worse than the best
  // x already computed.
  cvec x_best(x.begin(), x.end());
  double worst_best = worst;
  auto remember_best = [&] {
    if (worst < worst_best) {
      worst_best = worst;
      std::copy(x.begin(), x.end(), x_best.begin());
    }
  };
  auto restore_best = [&] {
    if (worst > worst_best) {
      std::copy(x_best.begin(), x_best.end(), x.begin());
      worst = worst_best;
    }
  };

  for (int k = 0; k < opts.max_refinements; ++k) {
    // fp64 convergence masking: a converged column's residual is zeroed,
    // so the inner solver freezes it immediately (zero-b mask) and it
    // costs no further scalar work while the block keeps iterating.
    for (std::size_t c = 0; c < nrhs; ++c) {
      if (!column_converged(c)) continue;
      for (std::size_t p = 0; p < lo.npanels; ++p)
        std::fill_n(r.data() + lo.at(p, c), lo.panel, cplx{});
    }

    std::fill(d.begin(), d.end(), cplx{});
    const BlockBicgstabResult inner =
        block_bicgstab(a_inner, r, d, lo, opts.inner, reduce, pc);
    res.inner_iterations += inner.total_iterations();
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += d[i];
    ++res.refinements;
    obs::add(obs::Counter::kRefinementRounds, 1);

    const double prev = worst;
    worst = residual();
    res.relres = worst;
    if (worst <= opts.tol) {
      res.converged = true;
      return res;
    }
    remember_best();
    if (worst > opts.stall_factor * prev) break;  // stalled -> fallback
  }

  // Refinement stalled (or ran out of rounds) above tol: finish with the
  // reference-precision solver from the *best* iterate seen, not the
  // possibly-worsened last one.
  restore_best();
  res.fell_back = true;
  BicgstabOptions fo;
  fo.tol = opts.tol;
  fo.max_iterations = opts.fallback_max_iterations;
  const BlockBicgstabResult fb =
      block_bicgstab(a_outer, b, x, lo, fo, reduce, pc);
  res.fallback_iterations = fb.total_iterations();
  worst = residual();
  restore_best();  // a capped fallback must not end worse than it began
  res.relres = worst;
  res.converged = res.relres <= opts.tol;
  return res;
}

}  // namespace ffw
