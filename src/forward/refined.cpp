#include "forward/refined.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace ffw {

RefinedResult refined_block_bicgstab(const BlockLinearOp& a_outer,
                                     const BlockLinearOp& a_inner, ccspan b,
                                     cspan x, const BlockLayout& lo,
                                     const RefinedOptions& opts,
                                     const DotReducer& reduce) {
  FFW_CHECK(b.size() == lo.size() && x.size() == lo.size());
  const std::size_t nrhs = lo.nrhs;
  RefinedResult res;

  cvec r(lo.size()), d(lo.size());
  std::vector<double> bnorm(nrhs), rnorm(nrhs), partial(nrhs);

  auto reduced_col_norms = [&](ccspan v, std::vector<double>& out) {
    for (std::size_t c = 0; c < nrhs; ++c)
      partial[c] = block_col_nrm2_sq(lo, v, c);
    reduce.sum_double_vec(rspan{partial.data(), nrhs});
    for (std::size_t c = 0; c < nrhs; ++c) out[c] = std::sqrt(partial[c]);
  };
  reduced_col_norms(b, bnorm);

  // Worst-column fp64 relative residual; recomputes r = b - A64 x.
  auto residual = [&] {
    a_outer(x, r);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    reduced_col_norms(r, rnorm);
    double worst = 0.0;
    for (std::size_t c = 0; c < nrhs; ++c)
      if (bnorm[c] > 0.0) worst = std::max(worst, rnorm[c] / bnorm[c]);
    return worst;
  };
  auto column_converged = [&](std::size_t c) {
    return bnorm[c] == 0.0 || rnorm[c] <= opts.tol * bnorm[c];
  };

  double worst = residual();
  res.relres = worst;
  if (worst <= opts.tol) {
    res.converged = true;
    return res;
  }

  for (int k = 0; k < opts.max_refinements; ++k) {
    // fp64 convergence masking: a converged column's residual is zeroed,
    // so the inner solver freezes it immediately (zero-b mask) and it
    // costs no further scalar work while the block keeps iterating.
    for (std::size_t c = 0; c < nrhs; ++c) {
      if (!column_converged(c)) continue;
      for (std::size_t p = 0; p < lo.npanels; ++p)
        std::fill_n(r.data() + lo.at(p, c), lo.panel, cplx{});
    }

    std::fill(d.begin(), d.end(), cplx{});
    const BlockBicgstabResult inner =
        block_bicgstab(a_inner, r, d, lo, opts.inner, reduce);
    res.inner_iterations += inner.total_iterations();
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += d[i];
    ++res.refinements;
    obs::add(obs::Counter::kRefinementRounds, 1);

    const double prev = worst;
    worst = residual();
    res.relres = worst;
    if (worst <= opts.tol) {
      res.converged = true;
      return res;
    }
    if (worst > opts.stall_factor * prev) break;  // stalled -> fallback
  }

  // Refinement stalled (or ran out of rounds) above tol: finish with the
  // reference-precision solver from the current iterate.
  res.fell_back = true;
  BicgstabOptions fo;
  fo.tol = opts.tol;
  fo.max_iterations = opts.fallback_max_iterations;
  const BlockBicgstabResult fb = block_bicgstab(a_outer, b, x, lo, fo, reduce);
  res.fallback_iterations = fb.total_iterations();
  res.relres = residual();
  res.converged = res.relres <= opts.tol;
  return res;
}

}  // namespace ffw
