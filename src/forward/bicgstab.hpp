// Matrix-free biconjugate gradient stabilised solver (paper Sec. III-A:
// "We use the biconjugate gradient stabilized method (BiCGS) for the
// forward solver ... The dominant operation in BiCGS is a matrix-vector
// multiplication that occurs twice per iteration").
#pragma once

#include <functional>

#include "common/types.hpp"
#include "forward/precond.hpp"

namespace ffw {

/// y = A x; y is pre-zeroed by the caller contract? No: the callback must
/// fully overwrite y.
using LinearOp = std::function<void(ccspan x, cspan y)>;

struct BicgstabOptions {
  /// Relative residual tolerance (paper Sec. V-B: 1e-4).
  double tol = 1e-4;
  int max_iterations = 1000;
};

struct BicgstabResult {
  int iterations = 0;   // BiCGS iterations
  int matvecs = 0;      // operator applications (2 per iteration + setup)
  double relres = 0.0;  // final relative residual norm
  bool converged = false;
};

/// Reduction hooks for a distributed solve: each rank holds a slice of
/// the vectors; the solver's inner products reduce local partials with
/// these callbacks (identity by default, i.e. serial). The vector forms
/// reduce many partials in one collective — the block solver batches all
/// per-RHS dots of an iteration into a single message per sync point.
struct DotReducer {
  std::function<cplx(cplx)> sum_cplx = [](cplx v) { return v; };
  std::function<double(double)> sum_double = [](double v) { return v; };
  std::function<void(cspan)> sum_cplx_vec = [](cspan) {};
  std::function<void(rspan)> sum_double_vec = [](rspan) {};
};

/// Solves A x = b. `x` holds the initial guess on entry and the solution
/// on exit. With a non-default `reduce`, b/x are rank-local slices and
/// the solve is collective over the reducing group. With a non-empty
/// `pc` the solve is *flexibly right-preconditioned*: residuals stay
/// true residuals of A (convergence tests unchanged) and M^{-1} is
/// applied to the search directions only, so the default identity
/// leaves the iteration bit-identical to the unpreconditioned solver.
BicgstabResult bicgstab(const LinearOp& a, ccspan b, cspan x,
                        const BicgstabOptions& opts = {},
                        const DotReducer& reduce = {},
                        const PrecondContext& pc = {});

}  // namespace ffw
