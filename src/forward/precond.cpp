#include "forward/precond.hpp"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "common/check.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {

/// In-place solve of one packed LU block (column-major, unit-lower L
/// with the multipliers below the diagonal, pivot row per step). The
/// scalar T is the factor storage precision; the right-hand side is
/// narrowed in / widened out by the caller.
template <typename T>
void lu_solve_packed(const std::complex<T>* lu, const std::uint32_t* piv,
                     std::size_t n, std::complex<T>* x) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t p = piv[k];
    if (p != k) std::swap(x[k], x[p]);
  }
  for (std::size_t k = 0; k < n; ++k) {  // L y = P b (unit lower)
    const std::complex<T> xk = x[k];
    const std::complex<T>* col = lu + k * n;
    for (std::size_t r = k + 1; r < n; ++r) x[r] -= col[r] * xk;
  }
  for (std::size_t k = n; k-- > 0;) {  // U x = y
    std::complex<T> acc = x[k];
    for (std::size_t c = k + 1; c < n; ++c) acc -= lu[c * n + k] * x[c];
    x[k] = acc / lu[k * n + k];
  }
}

/// In-place solve with the Hermitian transpose of one packed block:
/// A = P^T L U  =>  A^H = U^H L^H P (mirrors LuFactors::solve_herm).
template <typename T>
void lu_solve_herm_packed(const std::complex<T>* lu, const std::uint32_t* piv,
                          std::size_t n, std::complex<T>* x) {
  for (std::size_t k = 0; k < n; ++k) {  // U^H y = b (lower triangular)
    std::complex<T> acc = x[k];
    const std::complex<T>* col = lu + k * n;
    for (std::size_t c = 0; c < k; ++c) acc -= std::conj(col[c]) * x[c];
    x[k] = acc / std::conj(col[k]);
  }
  for (std::size_t k = n; k-- > 0;) {  // L^H z = y (unit upper)
    std::complex<T> acc = x[k];
    for (std::size_t r = k + 1; r < n; ++r)
      acc -= std::conj(lu[k * n + r]) * x[r];
    x[k] = acc;
  }
  for (std::size_t k = n; k-- > 0;) {  // x = P^T z
    const std::uint32_t p = piv[k];
    if (p != k) std::swap(x[k], x[p]);
  }
}

}  // namespace

NearFieldBlockJacobi::NearFieldBlockJacobi(const CMatrix& self_block,
                                           ccspan contrast_clu,
                                           Precision storage)
    : storage_(storage) {
  FFW_TRACE_SPAN("precond.setup", obs::kNoArg, obs::Counter::kPrecondSetupNs);
  np_ = self_block.rows();
  FFW_CHECK_MSG(np_ > 0 && self_block.cols() == np_,
                "near-field self block must be square");
  FFW_CHECK_MSG(contrast_clu.size() % np_ == 0,
                "contrast slice must cover whole leaf panels");
  nblocks_ = contrast_clu.size() / np_;
  piv_.resize(nblocks_ * np_);
  if (storage_ == Precision::kMixed) {
    lu32_.resize(nblocks_ * np_ * np_);
  } else {
    lu64_.resize(nblocks_ * np_ * np_);
  }

  CMatrix m(np_, np_);
  for (std::size_t c = 0; c < nblocks_; ++c) {
    // M_c = I - A_self * diag(O_c): column j is e_j - O_c[j] * A_self[:,j].
    const cplx* o = contrast_clu.data() + c * np_;
    for (std::size_t j = 0; j < np_; ++j) {
      const cplx oj = o[j];
      for (std::size_t i = 0; i < np_; ++i)
        m(i, j) = (i == j ? cplx{1.0} : cplx{}) - self_block(i, j) * oj;
    }
    const LuFactors f(m);  // factor in fp64, always
    const CMatrix& lu = f.factors();
    const auto& piv = f.pivots();
    for (std::size_t k = 0; k < np_; ++k)
      piv_[c * np_ + k] = static_cast<std::uint32_t>(piv[k]);
    if (storage_ == Precision::kMixed) {
      cplx32* dst = lu32_.data() + c * np_ * np_;
      for (std::size_t i = 0; i < np_ * np_; ++i) dst[i] = narrow(lu.data()[i]);
    } else {
      std::copy(lu.data(), lu.data() + np_ * np_, lu64_.data() + c * np_ * np_);
    }
  }
}

template <typename T, bool Herm>
void NearFieldBlockJacobi::solve_all(ccspan x, cspan z,
                                     const BlockLayout& lo) const {
  FFW_CHECK(lo.panel == np_ && lo.npanels == nblocks_);
  FFW_CHECK(x.size() == lo.size() && z.size() == lo.size());
  const std::complex<T>* lu_base;
  if constexpr (std::is_same_v<T, float>) {
    lu_base = lu32_.data();
  } else {
    lu_base = lu64_.data();
  }
  std::vector<std::complex<T>> w(np_);
  for (std::size_t c = 0; c < nblocks_; ++c) {
    const std::complex<T>* lu = lu_base + c * np_ * np_;
    const std::uint32_t* piv = piv_.data() + c * np_;
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      const cplx* xs = x.data() + lo.at(c, r);
      cplx* zs = z.data() + lo.at(c, r);
      for (std::size_t i = 0; i < np_; ++i) w[i] = to_scalar<T>(xs[i]);
      if constexpr (Herm) {
        lu_solve_herm_packed(lu, piv, np_, w.data());
      } else {
        lu_solve_packed(lu, piv, np_, w.data());
      }
      for (std::size_t i = 0; i < np_; ++i)
        zs[i] = cplx{w[i].real(), w[i].imag()};
    }
  }
}

void NearFieldBlockJacobi::apply(ccspan x, cspan z,
                                 const BlockLayout& lo) const {
  FFW_TRACE_SPAN("precond.apply", obs::kNoArg, obs::Counter::kPrecondApplyNs);
  if (storage_ == Precision::kMixed) {
    solve_all<float, false>(x, z, lo);
  } else {
    solve_all<double, false>(x, z, lo);
  }
}

void NearFieldBlockJacobi::apply_herm(ccspan x, cspan z,
                                      const BlockLayout& lo) const {
  FFW_TRACE_SPAN("precond.apply", obs::kNoArg, obs::Counter::kPrecondApplyNs);
  if (storage_ == Precision::kMixed) {
    solve_all<float, true>(x, z, lo);
  } else {
    solve_all<double, true>(x, z, lo);
  }
}

std::size_t NearFieldBlockJacobi::bytes() const {
  return lu64_.size() * sizeof(cplx) + lu32_.size() * sizeof(cplx32) +
         piv_.size() * sizeof(std::uint32_t);
}

}  // namespace ffw
