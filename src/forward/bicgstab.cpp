#include "forward/bicgstab.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/kernels.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {
double nrm2_sq(ccspan x) {
  double s = 0.0;
  for (const cplx& v : x) s += std::norm(v);
  return s;
}

BicgstabResult bicgstab_impl(const LinearOp& a, ccspan b, cspan x,
                             const BicgstabOptions& opts,
                             const DotReducer& reduce,
                             const PrecondContext& pc) {
  const std::size_t n = b.size();
  FFW_CHECK(x.size() == n);
  FFW_CHECK(!pc || pc.lo.size() == n);
  BicgstabResult res;

  auto dot = [&](ccspan u, ccspan v) { return reduce.sum_cplx(cdot(u, v)); };
  auto norm = [&](ccspan u) {
    return std::sqrt(reduce.sum_double(nrm2_sq(u)));
  };

  const double bnorm = norm(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), cplx{});
    res.converged = true;
    return res;
  }

  cvec r(n), rhat(n), p(n), v(n, cplx{}), s(n), t(n), tmp(n);
  // Flexible right preconditioning: phat = M^{-1} p and shat = M^{-1} s
  // replace p/s only inside the operator application and the x update;
  // with no preconditioner the spans alias p/s and nothing changes.
  cvec phat_store, shat_store;
  if (pc) {
    phat_store.assign(n, cplx{});
    shat_store.assign(n, cplx{});
  }
  a(x, tmp);
  ++res.matvecs;
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - tmp[i];
  copy(r, rhat);
  copy(r, p);

  cplx rho = dot(rhat, r);
  double rnorm = norm(r);
  if (rnorm / bnorm < opts.tol) {
    res.converged = true;
    res.relres = rnorm / bnorm;
    return res;
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    ccspan phat{p};
    if (pc) {
      pc(p, phat_store);
      phat = phat_store;
    }
    a(phat, v);
    ++res.matvecs;
    const cplx rhat_v = dot(rhat, v);
    FFW_CHECK_MSG(std::abs(rhat_v) > 0.0, "BiCGStab breakdown: <rhat, v> = 0");
    const cplx alpha = rho / rhat_v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    ++res.iterations;
    const double snorm = norm(s);
    if (snorm / bnorm < opts.tol) {
      axpy(alpha, phat, x);
      res.relres = snorm / bnorm;
      res.converged = true;
      return res;
    }

    ccspan shat{s};
    if (pc) {
      pc(s, shat_store);
      shat = shat_store;
    }
    a(shat, t);
    ++res.matvecs;
    const cplx tt = dot(t, t);
    FFW_CHECK_MSG(std::abs(tt) > 0.0, "BiCGStab breakdown: ||t|| = 0");
    const cplx omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }

    rnorm = norm(r);
    res.relres = rnorm / bnorm;
    if (res.relres < opts.tol) {
      res.converged = true;
      return res;
    }

    const cplx rho_next = dot(rhat, r);
    FFW_CHECK_MSG(std::abs(rho_next) > 0.0, "BiCGStab breakdown: rho = 0");
    const cplx beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
  }
  return res;  // not converged
}

}  // namespace

BicgstabResult bicgstab(const LinearOp& a, ccspan b, cspan x,
                        const BicgstabOptions& opts, const DotReducer& reduce,
                        const PrecondContext& pc) {
  const BicgstabResult res = bicgstab_impl(a, b, x, opts, reduce, pc);
  obs::add(obs::Counter::kBicgstabTotalIters,
           static_cast<std::uint64_t>(res.iterations));
  return res;
}

}  // namespace ffw
