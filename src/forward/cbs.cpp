#include "forward/cbs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "greens/greens.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"

namespace ffw {

struct CbsEngine::Fp32Pipeline {
  cvec32 mhat;  // narrowed shift spectrum
  cvec32 pad;   // padded panel scratch
};

CbsTables::CbsTables(const Grid& g, Precision prec) : grid(g), precision(prec) {
  Timer timer;
  FFW_TRACE_SPAN("cbs.kernel_fft", static_cast<std::int64_t>(grid.nx()));
  const std::size_t nx = static_cast<std::size_t>(grid.nx());
  // Zero padding to P >= 2 nx - 1 makes the circular convolution exact
  // over the domain; bit_ceil keeps every transform on the fast
  // power-of-two path (P = 2 nx for power-of-two nx).
  pad_n = std::bit_ceil(2 * nx - 1);
  const std::size_t p = pad_n;
  plan = std::make_unique<Fft2Plan<double>>(p, p);
  const double h = grid.h();
  const double k0 = grid.k0();
  const double sf = source_factor(grid);
  const cplx self = self_term(grid);
  g0hat.assign(p * p, cplx{});
  // Embed the Richmond kernel k(dx, dy) wrapped: negative offsets land
  // at the top of the padded grid, exactly the layout circular
  // convolution needs to reproduce the aperiodic product on the crop.
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(nx) - 1;
  parallel_for(0, 2 * nx - 1, [&](std::size_t i) {
    const std::ptrdiff_t dy = static_cast<std::ptrdiff_t>(i) - m;
    const std::size_t row =
        static_cast<std::size_t>((dy + static_cast<std::ptrdiff_t>(p)) %
                                 static_cast<std::ptrdiff_t>(p)) *
        p;
    for (std::ptrdiff_t dx = -m; dx <= m; ++dx) {
      const std::size_t col = static_cast<std::size_t>(
          (dx + static_cast<std::ptrdiff_t>(p)) % static_cast<std::ptrdiff_t>(p));
      const double r = h * std::hypot(static_cast<double>(dx),
                                      static_cast<double>(dy));
      g0hat[row + col] = (dx == 0 && dy == 0) ? self : sf * g0_point(k0, r);
    }
  });
  plan->forward(g0hat);
  if (precision == Precision::kMixed) {
    plan32 = std::make_unique<Fft2Plan<float>>(p, p);
    g0hat32.resize(g0hat.size());
    for (std::size_t i = 0; i < g0hat.size(); ++i) {
      g0hat32[i] = narrow(g0hat[i]);
    }
  }
  build_seconds = timer.seconds();
}

CbsTables::~CbsTables() = default;

std::size_t CbsTables::bytes() const {
  return g0hat.size() * sizeof(cplx) + g0hat32.size() * sizeof(cplx32);
}

CbsEngine::CbsEngine(const Grid& grid, const CbsOptions& opts)
    : CbsEngine(std::make_shared<const CbsTables>(grid, opts.precision), opts) {}

CbsEngine::CbsEngine(std::shared_ptr<const CbsTables> tables,
                     const CbsOptions& opts)
    : tables_(std::move(tables)),
      grid_(tables_->grid),
      opts_(opts),
      n_(grid_.num_pixels()),
      pad_n_(tables_->pad_n) {
  if (opts_.precision == Precision::kMixed) {
    FFW_CHECK_MSG(tables_->plan32 != nullptr,
                  "kMixed CbsEngine requires CbsTables built with kMixed");
    fp32_ = std::make_unique<Fp32Pipeline>();
  }
}

CbsEngine::~CbsEngine() = default;

void CbsEngine::build_shift_symbol() {
  const std::size_t p = pad_n_;
  const double k0 = grid_.k0();
  const double dxi = 2.0 * pi / (static_cast<double>(p) * grid_.h());
  mhat_.resize(p * p);
  parallel_for(0, p, [&](std::size_t sy) {
    const double fy =
        dxi * static_cast<double>(sy <= p / 2 ? static_cast<std::ptrdiff_t>(sy)
                                              : static_cast<std::ptrdiff_t>(sy) -
                                                    static_cast<std::ptrdiff_t>(p));
    for (std::size_t sx = 0; sx < p; ++sx) {
      const double fx = dxi * static_cast<double>(
                                  sx <= p / 2
                                      ? static_cast<std::ptrdiff_t>(sx)
                                      : static_cast<std::ptrdiff_t>(sx) -
                                            static_cast<std::ptrdiff_t>(p));
      const double t = fx * fx + fy * fy - k0 * k0;
      // Symbol of I + i eps G_eps: |t / (t - i eps)| <= 1 with the lone
      // zero on the k0 shell — the attenuation that tames the series.
      mhat_[sy * p + sx] = t / cplx{t, -eps_};
    }
  });
  if (fp32_) {
    fp32_->mhat.resize(mhat_.size());
    for (std::size_t i = 0; i < mhat_.size(); ++i) {
      fp32_->mhat[i] = narrow(mhat_[i]);
    }
  }
}

void CbsEngine::set_contrast(ccspan contrast) {
  FFW_CHECK(contrast.size() == n_);
  contrast_nat_.assign(contrast.begin(), contrast.end());
  double omax = 0.0;
  for (const cplx& o : contrast_nat_) omax = std::max(omax, std::abs(o));
  omax_ = omax;
  const double k0 = grid_.k0();
  eps_ = std::max(opts_.eps_floor * k0 * k0, opts_.eps_factor * omax);
  gamma_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    gamma_[i] = 1.0 + iu * contrast_nat_[i] / eps_;
  }
  build_shift_symbol();
}

void CbsEngine::convolve(ccspan x, cspan y, std::size_t nrhs,
                         const cvec& symbol, bool conjugate,
                         const cplx* premul) {
  const std::size_t nx = static_cast<std::size_t>(grid_.nx());
  const std::size_t p = pad_n_;
  const std::size_t pp = p * p;
  FFW_DCHECK(x.size() == n_ * nrhs && y.size() == n_ * nrhs);
  // Over-allocate so the panels can start on a 64-byte boundary: the
  // butterfly kernels use full-width vector loads and the default
  // 16-byte vector alignment makes every one cross a cache line.
  if (pad_.size() < pp * nrhs + 3) pad_.resize(pp * nrhs + 3);
  cplx* pad = pad_.data();
  pad += (64 - reinterpret_cast<std::uintptr_t>(pad) % 64) % 64 / sizeof(cplx);
  parallel_for(0, nrhs * p, [&](std::size_t i) {
    const std::size_t c = i / p, row = i % p;
    cplx* dst = pad + c * pp + row * p;
    if (row < nx) {
      const cplx* src = x.data() + c * n_ + row * nx;
      if (premul) {
        const cplx* o = premul + row * nx;
        for (std::size_t j = 0; j < nx; ++j) {
          const double ar = src[j].real(), ai = src[j].imag();
          const double br = o[j].real(), bi = o[j].imag();
          dst[j] = {ar * br - ai * bi, ar * bi + ai * br};
        }
      } else {
        std::copy(src, src + nx, dst);
      }
      std::fill(dst + nx, dst + p, cplx{});
    } else {
      std::fill(dst, dst + p, cplx{});
    }
  });
  {
    FFW_TRACE_SPAN("cbs.fft", static_cast<std::int64_t>(nrhs),
                   obs::Counter::kFftNs);
    // Rows >= nx of each padded panel are zero-filled above: prune them.
    tables_->plan->forward_top(std::span<cplx>{pad, pp * nrhs}, nrhs, nx);
  }
  const cplx* sym = symbol.data();
  parallel_for(0, nrhs * p, [&](std::size_t i) {
    const std::size_t c = i / p, row = i % p;
    cplx* line = pad + c * pp + row * p;
    const cplx* s = sym + row * p;
    // Explicit real arithmetic: keeps __muldc3 out of the hot loop.
    if (conjugate) {
      for (std::size_t j = 0; j < p; ++j) {
        const double ar = line[j].real(), ai = line[j].imag();
        const double br = s[j].real(), bi = -s[j].imag();
        line[j] = {ar * br - ai * bi, ar * bi + ai * br};
      }
    } else {
      for (std::size_t j = 0; j < p; ++j) {
        const double ar = line[j].real(), ai = line[j].imag();
        const double br = s[j].real(), bi = s[j].imag();
        line[j] = {ar * br - ai * bi, ar * bi + ai * br};
      }
    }
  });
  {
    FFW_TRACE_SPAN("cbs.fft", static_cast<std::int64_t>(nrhs),
                   obs::Counter::kFftNs);
    // Only the nx-row crop below is read: prune the inverse row pass.
    tables_->plan->inverse_top(std::span<cplx>{pad, pp * nrhs}, nrhs, nx);
  }
  parallel_for(0, nrhs * nx, [&](std::size_t i) {
    const std::size_t c = i / nx, row = i % nx;
    const cplx* src = pad + c * pp + row * p;
    std::copy(src, src + nx, y.data() + c * n_ + row * nx);
  });
}

void CbsEngine::convolve32(ccspan x, cspan y, std::size_t nrhs,
                           const cvec32& symbol, bool conjugate,
                           const cplx* premul) {
  const std::size_t nx = static_cast<std::size_t>(grid_.nx());
  const std::size_t p = pad_n_;
  const std::size_t pp = p * p;
  FFW_DCHECK(x.size() == n_ * nrhs && y.size() == n_ * nrhs);
  if (fp32_->pad.size() < pp * nrhs + 7) fp32_->pad.resize(pp * nrhs + 7);
  cplx32* pad = fp32_->pad.data();
  pad += (64 - reinterpret_cast<std::uintptr_t>(pad) % 64) % 64 / sizeof(cplx32);
  parallel_for(0, nrhs * p, [&](std::size_t i) {
    const std::size_t c = i / p, row = i % p;
    cplx32* dst = pad + c * pp + row * p;
    if (row < nx) {
      const cplx* src = x.data() + c * n_ + row * nx;
      if (premul) {
        const cplx* o = premul + row * nx;
        for (std::size_t j = 0; j < nx; ++j) {
          const double ar = src[j].real(), ai = src[j].imag();
          const double br = o[j].real(), bi = o[j].imag();
          dst[j] = {static_cast<float>(ar * br - ai * bi),
                    static_cast<float>(ar * bi + ai * br)};
        }
      } else {
        for (std::size_t j = 0; j < nx; ++j) dst[j] = narrow(src[j]);
      }
      std::fill(dst + nx, dst + p, cplx32{});
    } else {
      std::fill(dst, dst + p, cplx32{});
    }
  });
  {
    FFW_TRACE_SPAN("cbs.fft", static_cast<std::int64_t>(nrhs),
                   obs::Counter::kFftNs);
    tables_->plan32->forward_top(std::span<cplx32>{pad, pp * nrhs}, nrhs, nx);
  }
  const cplx32* sym = symbol.data();
  parallel_for(0, nrhs * p, [&](std::size_t i) {
    const std::size_t c = i / p, row = i % p;
    cplx32* line = pad + c * pp + row * p;
    const cplx32* s = sym + row * p;
    if (conjugate) {
      for (std::size_t j = 0; j < p; ++j) {
        const float ar = line[j].real(), ai = line[j].imag();
        const float br = s[j].real(), bi = -s[j].imag();
        line[j] = {ar * br - ai * bi, ar * bi + ai * br};
      }
    } else {
      for (std::size_t j = 0; j < p; ++j) {
        const float ar = line[j].real(), ai = line[j].imag();
        const float br = s[j].real(), bi = s[j].imag();
        line[j] = {ar * br - ai * bi, ar * bi + ai * br};
      }
    }
  });
  {
    FFW_TRACE_SPAN("cbs.fft", static_cast<std::int64_t>(nrhs),
                   obs::Counter::kFftNs);
    tables_->plan32->inverse_top(std::span<cplx32>{pad, pp * nrhs}, nrhs, nx);
  }
  parallel_for(0, nrhs * nx, [&](std::size_t i) {
    const std::size_t c = i / nx, row = i % nx;
    const cplx32* src = pad + c * pp + row * p;
    cplx* dst = y.data() + c * n_ + row * nx;
    for (std::size_t j = 0; j < nx; ++j) dst[j] = widen(src[j]);
  });
}

void CbsEngine::convolve_fast(ccspan x, cspan y, std::size_t nrhs, bool green,
                              bool conjugate, const cplx* premul) {
  if (fp32_) {
    convolve32(x, y, nrhs, green ? tables_->g0hat32 : fp32_->mhat, conjugate,
               premul);
  } else {
    convolve(x, y, nrhs, green ? tables_->g0hat : mhat_, conjugate, premul);
  }
}

void CbsEngine::apply_g0_panel(ccspan x, cspan y, std::size_t nrhs) {
  convolve(x, y, nrhs, tables_->g0hat, /*conjugate=*/false);
}

void CbsEngine::apply_g0_herm_panel(ccspan x, cspan y, std::size_t nrhs) {
  convolve(x, y, nrhs, tables_->g0hat, /*conjugate=*/true);
}

void CbsEngine::apply_system_panel(ccspan x, cspan y, std::size_t nrhs,
                                   bool adjoint) {
  FFW_CHECK_MSG(contrast_nat_.size() == n_, "set_contrast before apply");
  FFW_CHECK(x.size() == n_ * nrhs && y.size() == n_ * nrhs);
  const cplx* o = contrast_nat_.data();
  if (!adjoint) {
    convolve(x, y, nrhs, tables_->g0hat, /*conjugate=*/false, /*premul=*/o);
    parallel_for(0, nrhs, [&](std::size_t c) {
      for (std::size_t i = 0; i < n_; ++i) {
        y[c * n_ + i] = x[c * n_ + i] - y[c * n_ + i];
      }
    });
  } else {
    cvec tmp(n_ * nrhs);
    convolve(x, tmp, nrhs, tables_->g0hat, /*conjugate=*/true);
    parallel_for(0, nrhs, [&](std::size_t c) {
      for (std::size_t i = 0; i < n_; ++i) {
        y[c * n_ + i] = x[c * n_ + i] - std::conj(o[i]) * tmp[c * n_ + i];
      }
    });
  }
}

void CbsEngine::true_residual(ccspan rhs, ccspan x, cspan r, std::size_t nrhs,
                              bool adjoint) {
  apply_system_panel(x, r, nrhs, adjoint);
  parallel_for(0, nrhs, [&](std::size_t c) {
    for (std::size_t i = 0; i < n_; ++i) {
      r[c * n_ + i] = rhs[c * n_ + i] - r[c * n_ + i];
    }
  });
  stats_.operator_applications += nrhs;
}

bool CbsEngine::solve_panel(ccspan rhs, cspan phi, std::size_t nrhs,
                            double tol) {
  return solve_impl(rhs, phi, nrhs, tol, /*adjoint=*/false);
}

bool CbsEngine::solve_adjoint_panel(ccspan rhs, cspan psi, std::size_t nrhs,
                                    double tol) {
  return solve_impl(rhs, psi, nrhs, tol, /*adjoint=*/true);
}

bool CbsEngine::solve_impl(ccspan rhs, cspan x, std::size_t nrhs, double tol,
                           bool adjoint) {
  FFW_CHECK_MSG(contrast_nat_.size() == n_, "set_contrast before solve");
  FFW_CHECK(rhs.size() == n_ * nrhs && x.size() == n_ * nrhs);
  FFW_TRACE_SPAN("cbs.solve", static_cast<std::int64_t>(nrhs));
  const double target = tol > 0.0 ? tol : opts_.tol;
  const bool mixed = fp32_ != nullptr;

  std::vector<double> bnorm(nrhs, 0.0), rel(nrhs, 0.0);
  parallel_for(0, nrhs, [&](std::size_t c) {
    double s = 0.0;
    for (std::size_t i = 0; i < n_; ++i) s += std::norm(rhs[c * n_ + i]);
    bnorm[c] = std::sqrt(s);
  });

  // d (preconditioned search direction) and t1 (adjoint scratch) are
  // only allocated on the paths that use them; the plain forward mode
  // runs the whole solve out of r and w.
  cvec r(n_ * nrhs), w(n_ * nrhs), d, t1;
  if (adjoint) t1.resize(n_ * nrhs);

  auto column_residuals = [&]() {
    parallel_for(0, nrhs, [&](std::size_t c) {
      double s = 0.0;
      for (std::size_t i = 0; i < n_; ++i) s += std::norm(r[c * n_ + i]);
      rel[c] = bnorm[c] > 0.0 ? std::sqrt(s) / bnorm[c] : 0.0;
    });
    double m = 0.0;
    for (std::size_t c = 0; c < nrhs; ++c) m = std::max(m, rel[c]);
    return m;
  };

  // Warm starts ride in through x; the fp64 residual anchors the
  // iteration to the exact discrete system from the first step. The
  // common cold start (x = 0) skips that A-apply: r is exactly rhs and
  // every active column starts at relative residual 1.
  bool xzero = true;
  for (const cplx& v : x) {
    if (v.real() != 0.0 || v.imag() != 0.0) {
      xzero = false;
      break;
    }
  }
  double rel_max;
  if (xzero) {
    std::copy(rhs.begin(), rhs.end(), r.begin());
    rel_max = 0.0;
    for (std::size_t c = 0; c < nrhs; ++c) {
      rel[c] = bnorm[c] > 0.0 ? 1.0 : 0.0;
      rel_max = std::max(rel_max, rel[c]);
    }
  } else {
    true_residual(rhs, x, r, nrhs, adjoint);
    rel_max = column_residuals();
  }
  std::vector<double> history;
  history.reserve(opts_.max_iterations + 1);
  history.push_back(std::max(rel_max, 1e-300));

  const cplx* o = contrast_nat_.data();
  const cplx* g = gamma_.data();
  bool converged = rel_max <= target;
  double rate = 1.0;
  std::size_t it = 0;
  // The shifted preconditioner's Ewald-shell damping caps its rate near
  // 0.4 no matter how weak the contrast is, and M costs a second FFT
  // round trip per iteration — so below the contrast gate run plain
  // Born-Orthomin (M = I, half the work, far fewer iterations). If the
  // plain series stalls against the watchdog, switch the preconditioner
  // on mid-solve instead of failing.
  const double k0 = grid_.k0();
  bool precond = omax_ > opts_.precond_threshold * k0 * k0;
  std::size_t mode_anchor = 0;  // iteration of the last mode switch
  if (precond) d.resize(n_ * nrhs);

  while (!converged && it < opts_.max_iterations) {
    ++it;
    obs::add(obs::Counter::kCbsIterations, 1);
    // d = M r (forward: gamma .* conv_mhat r; adjoint: the Hermitian
    // transpose conv_conj(mhat) applied after the conj(gamma) diagonal,
    // run in place through d). Plain mode: M = I, so the search
    // direction aliases r directly — no copy, no second round trip.
    if (precond) {
      if (!adjoint) {
        convolve_fast(r, d, nrhs, /*green=*/false, /*conjugate=*/false);
        parallel_for(0, nrhs, [&](std::size_t c) {
          for (std::size_t i = 0; i < n_; ++i) d[c * n_ + i] *= g[i];
        });
      } else {
        parallel_for(0, nrhs, [&](std::size_t c) {
          for (std::size_t i = 0; i < n_; ++i) {
            d[c * n_ + i] = std::conj(g[i]) * r[c * n_ + i];
          }
        });
        convolve_fast(d, d, nrhs, /*green=*/false, /*conjugate=*/true);
      }
    }
    const cplx* dv = precond ? d.data() : r.data();
    // w = A d (or A^H d), with the diag(O) premultiply folded into the
    // convolution's zero-padding pack (forward) and the trailing
    // subtraction fused into the Orthomin epilogue below.
    if (!adjoint) {
      convolve_fast(ccspan{dv, n_ * nrhs}, w, nrhs, /*green=*/true,
                    /*conjugate=*/false, /*premul=*/o);
    } else {
      convolve_fast(ccspan{dv, n_ * nrhs}, t1, nrhs, /*green=*/true,
                    /*conjugate=*/true);
    }
    stats_.operator_applications += (precond ? 2 : 1) * nrhs;
    // Per-column epilogue, two fused passes: finish w = d - G0 O d while
    // accumulating the Orthomin(1) dots <w,r> and <w,w>, then the axpy
    // x += alpha d, r -= alpha w with the residual norm folded in.
    // Converged columns freeze (skipped entirely). In plain mode d
    // aliases r, so each axpy element reads d[i] (= old r[i]) before the
    // residual update overwrites it. Explicit real arithmetic keeps
    // __muldc3 out of the loops.
    parallel_for(0, nrhs, [&](std::size_t c) {
      if (rel[c] <= target) return;
      const cplx* dc = dv + c * n_;
      cplx* wc = w.data() + c * n_;
      cplx* rc = r.data() + c * n_;
      cplx* xc = x.data() + c * n_;
      const cplx* tc = adjoint ? t1.data() + c * n_ : nullptr;
      double nre = 0.0, nim = 0.0, den = 0.0;
      if (!adjoint) {
        for (std::size_t i = 0; i < n_; ++i) {
          const double wr = dc[i].real() - wc[i].real();
          const double wi = dc[i].imag() - wc[i].imag();
          wc[i] = {wr, wi};
          const double rr = rc[i].real(), ri = rc[i].imag();
          nre += wr * rr + wi * ri;  // Re <w, r>
          nim += wr * ri - wi * rr;  // Im <w, r>
          den += wr * wr + wi * wi;
        }
      } else {
        for (std::size_t i = 0; i < n_; ++i) {
          const double or_ = o[i].real(), oi = o[i].imag();
          const double tr = tc[i].real(), ti = tc[i].imag();
          const double wr = dc[i].real() - (or_ * tr + oi * ti);
          const double wi = dc[i].imag() - (or_ * ti - oi * tr);
          wc[i] = {wr, wi};
          const double rr = rc[i].real(), ri = rc[i].imag();
          nre += wr * rr + wi * ri;
          nim += wr * ri - wi * rr;
          den += wr * wr + wi * wi;
        }
      }
      // Orthomin(1) alpha = <w,r>/<w,w> (monotone), or the classic unit
      // CBS step.
      double ar = 1.0, ai = 0.0;
      if (opts_.minimal_residual) {
        ar = den > 0.0 ? nre / den : 0.0;
        ai = den > 0.0 ? nim / den : 0.0;
      }
      double s = 0.0;
      for (std::size_t i = 0; i < n_; ++i) {
        const double dr = dc[i].real(), di = dc[i].imag();
        xc[i] = {xc[i].real() + ar * dr - ai * di,
                 xc[i].imag() + ar * di + ai * dr};
        const double wr = wc[i].real(), wi = wc[i].imag();
        const double rr = rc[i].real() - (ar * wr - ai * wi);
        const double ri = rc[i].imag() - (ar * wi + ai * wr);
        rc[i] = {rr, ri};
        s += rr * rr + ri * ri;
      }
      rel[c] = bnorm[c] > 0.0 ? std::sqrt(s) / bnorm[c] : 0.0;
    });
    // Mixed precision: the fp32 pipeline drifts the incremental residual;
    // periodically re-anchor to the fp64 truth.
    if (mixed && it % opts_.fp64_refresh == 0) {
      true_residual(rhs, x, r, nrhs, adjoint);
      rel_max = column_residuals();
    } else {
      rel_max = 0.0;
      for (std::size_t c = 0; c < nrhs; ++c) rel_max = std::max(rel_max, rel[c]);
    }
    history.push_back(std::max(rel_max, 1e-300));
    if (rel_max <= target) {
      if (mixed && it % opts_.fp64_refresh != 0) {
        // Verify apparent convergence against the fp64 operator before
        // declaring victory.
        true_residual(rhs, x, r, nrhs, adjoint);
        rel_max = column_residuals();
        history.back() = std::max(rel_max, 1e-300);
        if (rel_max > target) continue;
      }
      converged = true;
      break;
    }
    if (it >= mode_anchor + opts_.rate_window) {
      rate = std::pow(history[it] / history[it - opts_.rate_window],
                      1.0 / static_cast<double>(opts_.rate_window));
      if (rate > opts_.divergence_rate) {
        // Plain Born stalled: engage the shifted preconditioner and give
        // it a fresh watchdog window before judging again.
        if (!precond) {
          precond = true;
          mode_anchor = it;
          if (d.size() != n_ * nrhs) d.resize(n_ * nrhs);
          continue;
        }
        // Stalled or diverging with the preconditioner on: hand the
        // panel back (kAuto escalates to MLFMA; a direct caller sees
        // the failure).
        break;
      }
    }
  }

  // Reported rate spans the trailing window, or the whole (short) run —
  // a solve that converged in two iterations has an excellent rate, not
  // an unknown one (kAuto escalates on this number).
  if (it > 0) {
    const std::size_t win = std::min(it, opts_.rate_window);
    rate = std::pow(history[it] / history[it - win],
                    1.0 / static_cast<double>(win));
  } else {
    rate = 0.0;
  }
  info_ = {converged, it, rel_max, rate, precond};
  stats_.solves += nrhs;
  stats_.bicgs_iterations += it;
  for (std::size_t c = 0; c < nrhs; ++c) {
    stats_.per_solve_iterations.push_back(
        static_cast<std::uint16_t>(std::min<std::size_t>(it, 0xffff)));
  }
  return converged;
}

}  // namespace ffw
