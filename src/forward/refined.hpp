// Mixed-precision iterative refinement around the block BiCGStab solver.
//
// The classic accelerator pattern: the *inner* solver runs cheap sweeps
// against the fp32 (Precision::kMixed) operator, while the *outer* loop
// computes true fp64 residuals r = b - A64 x against the reference
// operator, re-solves A32 d = r and updates x += d. Krylov recurrences,
// Gram reductions and convergence decisions all happen in fp64 (inside
// block_bicgstab and in the outer masking here); the fp32 operator only
// ever sees well-scaled residual right-hand sides, so the attainable
// outer residual is set by fp64 arithmetic, not by the fp32 tables.
//
// Each refinement round shrinks the worst-column residual by roughly
// max(inner tol, fp32 operator error ~ 3e-6); reaching 1e-8 from O(1)
// takes 2-3 rounds at the default inner tol of 1e-4. If a round fails to
// shrink the worst residual by `stall_factor` (a near-resonant system
// where the fp32 operator error excites a badly-conditioned mode), the
// solve falls back to pure fp64 block BiCGStab from the current iterate
// — correctness never depends on the accelerator.
#pragma once

#include "forward/block_bicgstab.hpp"

namespace ffw {

struct RefinedOptions {
  /// Outer (fp64-residual) relative tolerance per column.
  double tol = 1e-8;
  /// Maximum refinement rounds before the fp64 fallback engages.
  int max_refinements = 10;
  /// Inner mixed-operator sweep: loose tolerance, bounded iterations.
  BicgstabOptions inner{1e-4, 200};
  /// A round must shrink the worst column residual by at least this
  /// factor, else refinement is declared stalled and the solve falls
  /// back to pure fp64.
  double stall_factor = 0.25;
  /// Iteration cap of the pure-fp64 fallback solve.
  int fallback_max_iterations = 1000;
  /// Loose-tolerance shortcut: when `tol >= direct_tol`, the solve runs
  /// *entirely* on the inner (mixed) operator — no fp64 residuals, no
  /// refinement rounds. The requested inexactness then dwarfs the fp32
  /// operator error (~3e-6 relative, Sec. 10), so the fp64 safety net
  /// is pure overhead: Eisenstat-Walker-forced DBIM solves
  /// (DbimOptions::adaptive_forcing) spend most of the reconstruction
  /// in this regime. The default keeps a 100x margin above the operator
  /// error; set 0 to force the refinement path at every tolerance.
  double direct_tol = 3e-4;
};

struct RefinedResult {
  int refinements = 0;                    // outer correction rounds run
  std::uint64_t inner_iterations = 0;     // summed inner BiCGStab iterations
  std::uint64_t fallback_iterations = 0;  // fp64 iterations if fell back
  double relres = 0.0;                    // worst column fp64 relres
  bool converged = false;
  bool fell_back = false;                 // pure-fp64 fallback engaged
};

/// Solves A x_r = b_r for all block columns to `opts.tol` in the fp64
/// residual, using `a_inner` (the mixed-precision operator) for the
/// Krylov sweeps and `a_outer` (the fp64 reference operator, same layout)
/// for residuals and the stall fallback. `x` carries initial guesses in
/// and solutions out. With a non-default `reduce`, b/x are rank-local
/// slices and the solve is collective. A non-empty `pc` right-
/// preconditions both the inner sweeps and the fp64 fallback; it never
/// changes the fp64 residuals the convergence tests see. A stall (or
/// exhausted rounds, or a fallback that diverges) can never *worsen* the
/// result: the best iterate seen across all rounds is restored before
/// returning, so `relres` is monotone in what was observed.
RefinedResult refined_block_bicgstab(const BlockLinearOp& a_outer,
                                     const BlockLinearOp& a_inner, ccspan b,
                                     cspan x, const BlockLayout& lo,
                                     const RefinedOptions& opts = {},
                                     const DotReducer& reduce = {},
                                     const PrecondContext& pc = {});

}  // namespace ffw
