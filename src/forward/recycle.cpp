#include "forward/recycle.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"

namespace ffw {

std::size_t KrylovRecycler::seed(ccspan b, cspan x, const BlockLayout& lo,
                                 const DotReducer& reduce) const {
  FFW_CHECK(b.size() == lo.size() && x.size() == lo.size());
  std::fill(x.begin(), x.end(), cplx{});
  const std::size_t m = snaps_.size();
  if (m == 0) return 0;
  for (const Snapshot& s : snaps_) FFW_CHECK(s.b.size() == lo.size());

  // All Gram entries and projections of every column in ONE reduction:
  // per column r the m x m Gram G(i,j) = <b_i, b_j>_r row-major, then the
  // m projections c_i = <b_i, b_new>_r. Batching keeps the collective
  // count independent of depth and the coefficients bit-identical across
  // serial, parallel, and rerun executions.
  const std::size_t per_col = m * m + m;
  cvec dots(lo.nrhs * per_col);
  for (std::size_t r = 0; r < lo.nrhs; ++r) {
    cplx* d = dots.data() + r * per_col;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        d[i * m + j] = block_col_dot(lo, snaps_[i].b, snaps_[j].b, r);
    for (std::size_t i = 0; i < m; ++i)
      d[m * m + i] = block_col_dot(lo, snaps_[i].b, b, r);
  }
  reduce.sum_cplx_vec(cspan{dots});

  std::size_t seeded = 0;
  CMatrix g(m, m);
  cvec c(m);
  for (std::size_t r = 0; r < lo.nrhs; ++r) {
    const cplx* d = dots.data() + r * per_col;
    double trace = 0.0;
    for (std::size_t i = 0; i < m; ++i) trace += d[i * m + i].real();
    if (!(trace > 0.0)) continue;  // degenerate history for this column
    const double ridge = opts_.ridge * trace / static_cast<double>(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) g(i, j) = d[i * m + j];
      g(i, i) += ridge;
      c[i] = d[m * m + i];
    }
    const cvec a = lu_solve(g, c);
    for (std::size_t i = 0; i < m; ++i) {
      const cplx ai = a[i];
      const cvec& xi = snaps_[i].x;
      for (std::size_t p = 0; p < lo.npanels; ++p) {
        const std::size_t o = lo.at(p, r);
        for (std::size_t k = 0; k < lo.panel; ++k) x[o + k] += ai * xi[o + k];
      }
    }
    ++seeded;
    obs::add(obs::Counter::kRecycleHits, 1);
  }
  return seeded;
}

void KrylovRecycler::store(ccspan b, ccspan x, const BlockLayout& lo) {
  if (opts_.depth == 0) return;
  FFW_CHECK(b.size() == lo.size() && x.size() == lo.size());
  snaps_.push_back(Snapshot{cvec(b.begin(), b.end()), cvec(x.begin(), x.end())});
  while (snaps_.size() > opts_.depth) snaps_.pop_front();
}

}  // namespace ffw
