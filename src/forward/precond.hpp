// Preconditioning of the forward volume-integral system (ISSUE 6
// tentpole; DESIGN.md Sec. 13).
//
// The per-iteration cost of DBIM is Krylov iterations x MLFMA applies,
// and the near-field pass dominates each apply. bench_ablation_precond
// showed (honestly) that *diagonal* scaling is useless here — the system
// diagonal 1 - G0_nn O_n is nearly constant over the object — so the
// cheapest preconditioner that actually moves the spectrum is the next
// structure up: the per-leaf *self block* I - G0_self diag(O_c), i.e.
// the intra-leaf multiple scattering that the near-field tables already
// encode. Inverting it exactly (dense LU per leaf, 64x64 at the default
// leaf size) removes the strongest off-identity coupling from the
// preconditioned operator at ~2/9 of the near-field pass's cost per
// application.
//
// `Preconditioner` is the right-preconditioning interface used by
// bicgstab/block_bicgstab: the solvers keep *true* residuals and apply
// M^{-1} only to search directions (flexible right preconditioning), so
// an identity / absent preconditioner leaves every existing call site
// bit-identical, and an fp32-stored M (Precision::kMixed) costs no final
// accuracy — it only steers the Krylov space.
#pragma once

#include "common/types.hpp"
#include "linalg/block.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M^{-1} x over a block vector in layout `lo`; z is fully
  /// overwritten (x and z may not alias).
  virtual void apply(ccspan x, cspan z, const BlockLayout& lo) const = 0;

  /// z = M^{-H} x — the right preconditioner of the Hermitian-transposed
  /// (adjoint Frechet) system.
  virtual void apply_herm(ccspan x, cspan z, const BlockLayout& lo) const = 0;

  /// Factor storage (memory census).
  virtual std::size_t bytes() const = 0;
};

/// Preconditioner handle the Krylov solvers accept: which M (nullptr =
/// identity — the default leaves every existing call site bit-identical,
/// no extra buffers or applies), the block layout of the solver's
/// vectors, and whether the solve targets the Hermitian-transposed
/// system (selects apply_herm, i.e. M^{-H}).
struct PrecondContext {
  const Preconditioner* m = nullptr;
  BlockLayout lo{};
  bool herm = false;

  explicit operator bool() const { return m != nullptr; }
  void operator()(ccspan x, cspan z) const {
    if (herm) {
      m->apply_herm(x, z, lo);
    } else {
      m->apply(x, z, lo);
    }
  }
};

/// Block-Jacobi over the leaf self blocks: M = diag_c(I - A_self O_c)
/// with A_self the shared np x np near-field self matrix
/// (NearFieldOperators::type(4)) and O_c the contrast diagonal of leaf
/// panel c. Factored once per contrast update with the dense LU of
/// linalg/lu; under Precision::kMixed the factors are stored (and the
/// triangular solves run) in fp32 — half the streamed bytes, and exactly
/// the precision regime of the mixed inner Krylov sweeps they
/// precondition.
class NearFieldBlockJacobi final : public Preconditioner {
 public:
  /// `contrast_clu` is the cluster-ordered contrast covering the leaves
  /// to precondition (length = npanels * np, a rank-local slice in the
  /// partitioned drivers); one LU is factored per np-sized panel.
  NearFieldBlockJacobi(const CMatrix& self_block, ccspan contrast_clu,
                       Precision storage = Precision::kDouble);

  void apply(ccspan x, cspan z, const BlockLayout& lo) const override;
  void apply_herm(ccspan x, cspan z, const BlockLayout& lo) const override;
  std::size_t bytes() const override;

  Precision storage() const { return storage_; }
  std::size_t num_blocks() const { return nblocks_; }
  std::size_t block_dim() const { return np_; }

 private:
  template <typename T, bool Herm>
  void solve_all(ccspan x, cspan z, const BlockLayout& lo) const;

  std::size_t np_ = 0;       // block dimension (pixels per leaf)
  std::size_t nblocks_ = 0;  // leaf panels covered
  Precision storage_ = Precision::kDouble;
  // Packed LU factors, np x np column-major per block, and pivot rows
  // (np per block). Only the vector matching `storage_` is populated.
  cvec lu64_;
  cvec32 lu32_;
  std::vector<std::uint32_t> piv_;
};

}  // namespace ffw
